package ldvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PooledRetain tracks byte views derived from pooled, recycled block
// buffers and reports any escape of a view past the scope the pooling
// contract grants it. PR 6's zero-allocation ingestion threads []byte
// slices of stream.OrderedRecycledBlocks buffers through every scanner;
// those buffers are recycled the moment the per-block callback returns, so
// a view that outlives the callback — stored in a struct field or package
// variable, captured by a goroutine, sent on a channel, returned up the
// stack from a non-view function — silently aliases the NEXT block's bytes.
// That is a use-after-recycle corruption bug that runtime tests only catch
// probabilistically; this analyzer makes it a lint failure.
//
// The contract is expressed with //ldvet:pooled markers on function
// declarations (doc comment or the line above): a pooled function's viewish
// parameters and results are valid only until the dynamic extent of the
// call ends. Taint seeds at those parameters and at the results of calls to
// pooled functions, and propagates through assignments, field/index
// selection, slicing, composite literals, append of view-typed elements,
// and closures that capture tainted variables. Materializing copies break
// the taint: string(b) conversions, byte-wise append (the destination owns
// fresh bytes), and any call whose result type carries no views.
//
// Violations are suppressed with //ldvet:allow pooled-retain on the line
// (or the line above) with a rationale for why the store is actually a
// copy or otherwise safe.
var PooledRetain = &Analyzer{
	Name: "pooledretain",
	Doc: "report pooled block-buffer byte views escaping their scope\n" +
		"(//ldvet:pooled contract); suppress with //ldvet:allow pooled-retain",
	Run: runPooledRetain,
}

const pooledMarker = "ldvet:pooled"

func runPooledRetain(pass *Pass) {
	pr := &pooledAnalysis{
		pass:       pass,
		localDecls: make(map[*types.Func]bool),
		pooledMemo: make(map[*types.Func]bool),
		viewMemo:   make(map[types.Type]int),
	}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if funcHasMarker(pass.Fset, file, fd, pooledMarker) {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pr.localDecls[fn] = true
				}
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				pr.checkFunc(file, fd)
			}
		}
	}
}

// pooledAnalysis is the per-package analyzer state.
type pooledAnalysis struct {
	pass       *Pass
	localDecls map[*types.Func]bool // this package's //ldvet:pooled functions
	pooledMemo map[*types.Func]bool // cross-package pooledness, memoized
	viewMemo   map[types.Type]int   // 1 = clean, 2 = viewish
}

// funcHasMarker reports whether fd carries the marker in its doc comment or
// on the line directly above the declaration.
func funcHasMarker(fset *token.FileSet, file *ast.File, fd *ast.FuncDecl, marker string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return hasMarker(fset, file, fd.Pos(), marker)
}

// viewish reports whether values of type t can carry a pooled byte view:
// []byte itself, and module-local named structs (recursively) with viewish
// fields, plus slices/arrays/pointers/maps thereof. Strings are always
// clean (immutable copies), and named types from outside the module are
// trusted not to alias caller bytes.
func (pr *pooledAnalysis) viewish(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := pr.viewMemo[t]; ok {
		return v == 2
	}
	pr.viewMemo[t] = 1 // cycle guard: assume clean while computing
	res := pr.viewish1(t)
	if res {
		pr.viewMemo[t] = 2
	}
	return res
}

func (pr *pooledAnalysis) viewish1(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		if b, ok := t.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Uint8 // []byte and named equivalents
		}
		return pr.viewish(t.Elem())
	case *types.Array:
		return pr.viewish(t.Elem())
	case *types.Pointer:
		return pr.viewish(t.Elem())
	case *types.Map:
		return pr.viewish(t.Key()) || pr.viewish(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil || !pr.moduleLocal(obj.Pkg().Path()) {
			return false
		}
		return pr.viewish(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if pr.viewish(t.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

func (pr *pooledAnalysis) moduleLocal(path string) bool {
	m := pr.pass.Pkg.Module
	return path == m || strings.HasPrefix(path, m+"/")
}

// funcPooled reports whether fn's declaration carries //ldvet:pooled,
// resolving cross-package targets through the loader's shared FileSet.
func (pr *pooledAnalysis) funcPooled(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if v, ok := pr.pooledMemo[fn]; ok {
		return v
	}
	res := false
	if fn.Pkg() == pr.pass.Pkg.Types {
		res = pr.localDecls[fn]
	} else if dep := pr.pass.Dep(fn.Pkg().Path()); dep != nil {
		if file, fd := findFuncDecl(pr.pass.Fset, dep, fn.Pos()); fd != nil {
			res = funcHasMarker(pr.pass.Fset, file, fd, pooledMarker)
		}
	}
	pr.pooledMemo[fn] = res
	return res
}

// findFuncDecl locates the FuncDecl whose name sits at pos in one of pkg's
// files. pos comes from a *types.Func loaded by the same Loader, so the
// positions are comparable.
func findFuncDecl(fset *token.FileSet, pkg *Package, pos token.Pos) (*ast.File, *ast.FuncDecl) {
	for _, file := range pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == pos {
				return file, fd
			}
		}
	}
	return nil, nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions and indirect calls through variables.
func (pr *pooledAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pr.pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// checkFunc runs the taint fixpoint over one function body, then a final
// reporting pass once the tainted set is stable.
func (pr *pooledAnalysis) checkFunc(file *ast.File, fd *ast.FuncDecl) {
	fc := &funcCheck{
		pr:      pr,
		file:    file,
		decl:    fd,
		pooled:  funcHasMarker(pr.pass.Fset, file, fd, pooledMarker),
		tainted: make(map[types.Object]bool),
		params:  make(map[types.Object]bool),
		seeds:   make(map[types.Object]bool),
		fresh:   make(map[types.Object]bool),
	}
	fc.collectParams()
	fc.computeFresh()
	if fc.pooled {
		// Seed the declared parameters only: the receiver is the callee's
		// own long-lived state, not a view of the pooled buffer (copying
		// bytes INTO it — EventBatch.Append — is exactly the sanctioned
		// materialization).
		for obj := range fc.seeds {
			if pr.viewish(obj.Type()) {
				fc.tainted[obj] = true
			}
		}
	}
	for i := 0; i < 16; i++ { // fixpoint: taint only grows, so this converges
		fc.changed = false
		fc.walkStmts(fd.Body.List, fc.pooled)
		if !fc.changed {
			break
		}
	}
	fc.reporting = true
	fc.walkStmts(fd.Body.List, fc.pooled)
}

// funcCheck is the per-function taint state.
type funcCheck struct {
	pr        *pooledAnalysis
	file      *ast.File
	decl      *ast.FuncDecl
	pooled    bool
	tainted   map[types.Object]bool
	params    map[types.Object]bool // parameter and receiver objects
	seeds     map[types.Object]bool // declared parameters (no receiver): pooled taint seeds
	fresh     map[types.Object]bool // ref-typed locals only ever assigned fresh allocations
	changed   bool
	reporting bool
}

func (fc *funcCheck) info() *types.Info { return fc.pr.pass.Pkg.Info }

func (fc *funcCheck) objOf(id *ast.Ident) types.Object {
	if o := fc.info().Uses[id]; o != nil {
		return o
	}
	return fc.info().Defs[id]
}

func (fc *funcCheck) collectParams() {
	add := func(fl *ast.FieldList, seed bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := fc.info().Defs[name]; obj != nil {
					fc.params[obj] = true
					if seed {
						fc.seeds[obj] = true
					}
				}
			}
		}
	}
	add(fc.decl.Recv, false)
	add(fc.decl.Type.Params, true)
}

// computeFresh marks ref-typed locals (pointer/slice/map) that are only
// ever assigned freshly allocated storage — composite literals, &lit, new,
// make, self-append — so a store through them stays function-local. A
// single assignment from anything else (a call result, a field, an index)
// makes the variable an alias of caller-visible storage.
func (fc *funcCheck) computeFresh() {
	notFresh := make(map[types.Object]bool)
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := fc.objOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		if rhs != nil && !fc.freshExpr(rhs, obj) {
			notFresh[obj] = true
		}
	}
	ast.Inspect(fc.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						mark(id, n.Rhs[i])
					}
				}
			} else { // multi-value: call results are never fresh
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						mark(id, n.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				} // no value: zero value, fresh
			}
		case *ast.RangeStmt:
			if id, ok := unparen(orNil(n.Value)).(*ast.Ident); ok && id != nil {
				mark(id, n.X) // range values alias the container
			}
		}
		return true
	})
	ast.Inspect(fc.decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := fc.info().Defs[id]; obj != nil && !notFresh[obj] {
				if _, isVar := obj.(*types.Var); isVar {
					fc.fresh[obj] = true
				}
			}
		}
		return true
	})
}

func orNil(e ast.Expr) ast.Expr { return e }

// freshExpr reports whether e denotes freshly allocated storage when
// assigned to self (the variable being assigned, for self-append).
func (fc *funcCheck) freshExpr(e ast.Expr, self types.Object) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, lit := unparen(e.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			switch {
			case fc.isBuiltin(id, "new"), fc.isBuiltin(id, "make"):
				return true
			case fc.isBuiltin(id, "append"):
				if len(e.Args) == 0 {
					return false
				}
				dst := unparen(e.Args[0])
				for {
					if s, ok := dst.(*ast.SliceExpr); ok {
						dst = unparen(s.X)
						continue
					}
					break
				}
				if id, ok := dst.(*ast.Ident); ok && fc.objOf(id) == self {
					return true // self-append preserves freshness
				}
				return fc.freshExpr(e.Args[0], self)
			}
		}
		// Conversions from string allocate a fresh copy.
		if tv, ok := fc.info().Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if at := fc.info().Types[e.Args[0]].Type; at != nil {
				if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return true
				}
			}
			if id, ok := unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}

func (fc *funcCheck) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	b, ok := fc.info().Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// taint marks obj tainted, recording the change for the fixpoint loop.
func (fc *funcCheck) taint(obj types.Object) {
	if obj == nil || fc.tainted[obj] {
		return
	}
	fc.tainted[obj] = true
	fc.changed = true
}

func (fc *funcCheck) violation(pos token.Pos, format string, args ...any) {
	if !fc.reporting {
		return
	}
	if fc.pr.pass.Allowed(fc.file, pos, "pooled-retain") {
		return
	}
	fc.pr.pass.Reportf(pos, format, args...)
}
