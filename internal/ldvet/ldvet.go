// Package ldvet implements logdiver's custom static analyzers and the
// small driver framework they run on. The analyzers protect the taxonomy
// hot path against two recurring bug classes:
//
//   - exhaustive: a switch over an enum-like type (taxonomy.Category,
//     taxonomy.Severity, ...) that silently misses members. Adding a
//     category before the numCategories sentinel and forgetting one switch
//     reclassifies events without any compile error; this analyzer makes
//     that a lint failure. Switches with a default clause are considered
//     intentionally partial unless annotated //ldvet:exhaustive.
//   - regexpcompile: regexp.MustCompile calls inside function bodies, which
//     recompile the pattern on every call. On the message-classification
//     hot path a stray per-call compile dominates the profile; patterns
//     belong in package-level var blocks. Intentional call-site compiles
//     are annotated //ldvet:allow regexp-compile.
//   - packagedoc: packages without a package doc comment. The repo's
//     documentation (DESIGN.md module table, OPERATIONS.md) leans on godoc
//     staying truthful; a package that never introduces itself is where
//     that contract starts to rot.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic, a multichecker driver in cmd/ldvet, and a
// want-comment test harness) but is built purely on the standard library's
// go/ast, go/types and go/importer: this module is dependency-free and must
// build in hermetic environments with no module proxy, so vendoring x/tools
// is not an option. If the module ever grows a dependency budget, the
// analyzers port to x/tools analyzers nearly mechanically.
package ldvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by cmd/ldvet -help.
	Doc string
	// Run inspects one type-checked package and reports findings via the
	// pass.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) execution. It mirrors
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// File/Line/Column duplicate Pos for JSON output.
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers over the packages and returns all diagnostics
// sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
		diags[i].Column = diags[i].Pos.Column
	}
	return diags
}

// Analyzers returns all analyzers the multichecker runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{Exhaustive, PackageDoc, RegexpCompile}
}

// hasMarker reports whether a //ldvet:... marker comment containing the
// given text sits on the same line as pos or on the line directly above it
// — the two placements gofmt preserves for statement annotations.
func hasMarker(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) bool {
	line := fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			cl := fset.Position(c.Slash).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}
