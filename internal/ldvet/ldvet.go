// Package ldvet implements logdiver's custom static analyzers and the
// small driver framework they run on. The analyzers protect the taxonomy
// hot path against two recurring bug classes:
//
//   - exhaustive: a switch over an enum-like type (taxonomy.Category,
//     taxonomy.Severity, ...) that silently misses members. Adding a
//     category before the numCategories sentinel and forgetting one switch
//     reclassifies events without any compile error; this analyzer makes
//     that a lint failure. Switches with a default clause are considered
//     intentionally partial unless annotated //ldvet:exhaustive.
//   - regexpcompile: regexp.MustCompile calls inside function bodies, which
//     recompile the pattern on every call. On the message-classification
//     hot path a stray per-call compile dominates the profile; patterns
//     belong in package-level var blocks. Intentional call-site compiles
//     are annotated //ldvet:allow regexp-compile.
//   - packagedoc: packages without a package doc comment. The repo's
//     documentation (DESIGN.md module table, OPERATIONS.md) leans on godoc
//     staying truthful; a package that never introduces itself is where
//     that contract starts to rot.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic, a multichecker driver in cmd/ldvet, and a
// want-comment test harness) but is built purely on the standard library's
// go/ast, go/types and go/importer: this module is dependency-free and must
// build in hermetic environments with no module proxy, so vendoring x/tools
// is not an option. If the module ever grows a dependency budget, the
// analyzers port to x/tools analyzers nearly mechanically.
package ldvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by cmd/ldvet -help.
	Doc string
	// Run inspects one type-checked package and reports findings via the
	// pass.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) execution. It mirrors
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	loader *Loader
	state  *runState
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Dep returns the already-loaded module-local package with the given import
// path, or nil. Analyzers use it to inspect the syntax (and markers) of a
// dependency's declarations: the loader parses module-local imports from
// source into the same FileSet, so positions resolve across packages.
func (p *Pass) Dep(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.pkgs[path]
}

// Allowed reports whether a //ldvet:allow <what> suppression comment covers
// pos (same line or the line directly above), and records the suppression
// as used so the suppress audit does not flag it as stale.
func (p *Pass) Allowed(file *ast.File, pos token.Pos, what string) bool {
	line := p.Fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			tok, ok := allowToken(c.Text)
			if !ok || tok != what {
				continue
			}
			cl := p.Fset.Position(c.Slash).Line
			if cl == line || cl == line-1 {
				if p.state != nil {
					p.state.used[c] = true
				}
				return true
			}
		}
	}
	return false
}

// runState is shared by every Pass of one Run invocation. It records which
// suppression comments were actually consulted, so the suppress audit can
// flag the stale ones.
type runState struct {
	used map[*ast.Comment]bool
}

// allowToken extracts the suppression token from a //ldvet:allow comment:
// the first whitespace-delimited word after the marker ("regexp-compile" in
// "//ldvet:allow regexp-compile — rationale"). Like //go: directives, the
// marker must start the comment — a prose mention of the syntax elsewhere
// in a comment is not a suppression. ok is false for comments that are not
// allow markers at all.
func allowToken(text string) (tok string, ok bool) {
	rest, found := strings.CutPrefix(text, "//ldvet:allow")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true // bare "//ldvet:allow": an allow marker with no token
	}
	return fields[0], true
}

// Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// File/Line/Column duplicate Pos for JSON output.
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers over the packages (all loaded by l, whose
// FileSet resolves every position) and returns all diagnostics sorted by
// position. When the Suppress analyzer is among the analyzers, each package
// is additionally audited for stale or unknown //ldvet:allow markers after
// the real analyzers have consulted them.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	fset := l.Fset()
	var diags []Diagnostic
	state := &runState{used: make(map[*ast.Comment]bool)}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				loader:   l,
				state:    state,
				report:   report,
			}
			a.Run(pass)
		}
		if ran[Suppress.Name] {
			auditSuppressions(fset, pkg, state, ran, report)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
		diags[i].Column = diags[i].Pos.Column
	}
	return diags
}

// Analyzers returns all analyzers the multichecker runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{Exhaustive, Hotalloc, PackageDoc, PooledRetain, RegexpCompile, Suppress}
}

// hasMarker reports whether a //ldvet:... marker comment containing the
// given text sits on the same line as pos or on the line directly above it
// — the two placements gofmt preserves for statement annotations.
func hasMarker(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) bool {
	line := fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			cl := fset.Position(c.Slash).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}
