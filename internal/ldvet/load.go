package ldvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path; Dir the directory it was loaded from.
	Path string
	Dir  string
	// Module is the path of the module this package belongs to. Analyzers
	// use it to scope checks to module-local types.
	Module string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results the analyzers consume.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker errors. Analysis results for a
	// package with type errors are unreliable; the driver treats them as
	// failures.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module, resolving
// module-local imports itself and standard-library imports through the
// compiler's source importer — both work offline, so ldvet runs in the same
// hermetic environments the build does.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	pkgs       map[string]*Package
	loading    map[string]bool
	std        types.Importer
}

// NewLoader returns a loader for the module rooted at moduleRoot with the
// given module path.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModule locates the enclosing go.mod starting at dir and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("ldvet: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("ldvet: no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer: module-local packages are loaded from
// source by this loader, everything else is delegated to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.load(filepath.Join(l.moduleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel maps an import path inside the module to its directory
// relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.modulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// LoadDir loads the package in the directory rel (relative to the module
// root; "." for the root package).
func (l *Loader) LoadDir(rel string) (*Package, error) {
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(filepath.Join(l.moduleRoot, rel), path)
}

// LoadAll loads every buildable package under the module root, skipping
// testdata, vendor and hidden directories. Directories without buildable Go
// files are silently skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(p, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return nil // unbuildable dir: not ours to diagnose
		}
		rel, err := filepath.Rel(l.moduleRoot, p)
		if err != nil {
			return err
		}
		pkg, err := l.LoadDir(rel)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// load parses and type-checks the package in dir under the given import
// path, memoized per path.
func (l *Loader) load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("ldvet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("ldvet: %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Module: l.modulePath}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("ldvet: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}
