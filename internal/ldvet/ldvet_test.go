package ldvet_test

import (
	"path/filepath"
	"strings"
	"testing"

	"logdiver/internal/ldvet"
)

// checkWants runs one analyzer over a testdata package and fails the test
// with every want mismatch.
func checkWants(t *testing.T, pkg string, analyzers ...*ldvet.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	errs, err := ldvet.CheckWants(dir, analyzers...)
	if err != nil {
		t.Fatalf("CheckWants(%s): %v", dir, err)
	}
	for _, e := range errs {
		t.Errorf("%s", e)
	}
}

func TestExhaustive(t *testing.T) {
	checkWants(t, "exhaustive", ldvet.Exhaustive)
}

func TestRegexpCompile(t *testing.T) {
	checkWants(t, "regexpcompile", ldvet.RegexpCompile)
}

func TestPooledRetain(t *testing.T) {
	checkWants(t, "pooledretain", ldvet.PooledRetain)
}

func TestHotalloc(t *testing.T) {
	checkWants(t, "hotalloc", ldvet.Hotalloc)
}

// TestSuppressAudit runs a real analyzer plus the suppress audit: a marker
// the analyzer consulted stays silent, a stale marker and an unknown token
// are reported.
func TestSuppressAudit(t *testing.T) {
	checkWants(t, "unusedsuppress", ldvet.RegexpCompile, ldvet.Suppress)
}

func TestPackageDoc(t *testing.T) {
	// A directive-only comment above a package clause does not count as
	// documentation; the diagnostic fires once, on the first file.
	checkWants(t, "packagedoc", ldvet.PackageDoc)
	// One documented file covers the whole package.
	checkWants(t, "packagedocok", ldvet.PackageDoc)
}

// TestRepoClean runs the full analyzer suite over this repository and
// requires zero diagnostics — the same invariant the CI lint job enforces
// via cmd/ldvet. If this fails after adding a switch or a MustCompile call,
// either fix the site or annotate it (see the package doc).
func TestRepoClean(t *testing.T) {
	root, path, err := ldvet.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := ldvet.NewLoader(root, path)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("LoadAll found only %d packages, expected the whole module", len(pkgs))
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("type error in %s: %v", p.Path, terr)
		}
	}
	diags := ldvet.Run(l, pkgs, ldvet.Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestFindModule pins the module identity so loader-path regressions show
// up as a readable failure rather than import errors downstream.
func TestFindModule(t *testing.T) {
	root, path, err := ldvet.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "logdiver" {
		t.Errorf("module path = %q, want logdiver", path)
	}
	if !strings.HasSuffix(filepath.ToSlash(root), "repo") && root == "" {
		t.Errorf("suspicious module root %q", root)
	}
}
