package ldvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RegexpCompile flags regexp.MustCompile (and MustCompilePOSIX) calls
// inside function bodies. Pattern compilation is expensive; on the
// message-classification hot path a per-call compile dominates the profile,
// and the panic-on-error contract of MustCompile only makes sense for
// patterns fixed at init time anyway. Patterns belong in package-level var
// blocks. Call sites where a per-call compile is the point (Classifier.Clone
// recompiling for worker isolation, rule constructors) carry a
// //ldvet:allow regexp-compile annotation.
var RegexpCompile = &Analyzer{
	Name: "regexpcompile",
	Doc: "flag regexp.MustCompile outside package-level var blocks (per-call\n" +
		"compiles on hot paths); suppress with //ldvet:allow regexp-compile",
	Run: runRegexpCompile,
}

func runRegexpCompile(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Collect the source ranges of all function bodies; a call outside
		// every body belongs to a package-level initializer, which is the
		// sanctioned place to compile patterns.
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			}
			return true
		})
		inFunction := func(pos token.Pos) bool {
			for _, b := range bodies {
				if b.Pos() <= pos && pos < b.End() {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "regexp" {
				return true
			}
			if name := fn.Name(); name != "MustCompile" && name != "MustCompilePOSIX" {
				return true
			}
			if !inFunction(call.Pos()) {
				return true
			}
			if pass.Allowed(file, call.Pos(), "regexp-compile") {
				return true
			}
			pass.Reportf(call.Pos(),
				"regexp.%s inside a function compiles the pattern on every call; hoist it to a package-level var, or annotate the line with //ldvet:allow regexp-compile if a per-call compile is intended",
				fn.Name())
			return true
		})
	}
}
