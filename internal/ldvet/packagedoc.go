package ldvet

import (
	"go/ast"
	"strings"
)

// PackageDoc flags packages without a package doc comment. The module's
// documentation contract (DESIGN.md's module table, OPERATIONS.md) leans on
// godoc: every internal package and both binaries must open with a package
// comment explaining what the package is for, or the table drifts from the
// code the first time someone greps for a package that never introduced
// itself. The check is presence-only — content is reviewed by humans — but
// a comment consisting solely of //go:directive or //nolint-style marker
// lines does not count.
var PackageDoc = &Analyzer{
	Name: "packagedoc",
	Doc: "flag packages that lack a package doc comment; every package must\n" +
		"open with a `// Package x ...` (or `// Command x ...`) comment",
	Run: runPackageDoc,
}

func runPackageDoc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if docText(file.Doc) != "" {
			return // some file documents the package: done
		}
	}
	if len(pass.Pkg.Files) == 0 {
		return
	}
	// Anchor the diagnostic on the package clause of the first file (the
	// loader appends files in sorted order, so this is stable).
	first := pass.Pkg.Files[0]
	pass.Reportf(first.Package,
		"package %s has no package doc comment; add one above a package clause (conventionally `// Package %s ...`)",
		first.Name.Name, first.Name.Name)
}

// docText returns the doc comment's effective text: directive-only comments
// (//go:build, //go:generate, //ldvet:... markers) do not document anything
// and count as absent.
func docText(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	var parts []string
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
		text = strings.TrimSpace(text)
		if text == "" || strings.HasPrefix(text, "go:") || strings.HasPrefix(text, "ldvet:") {
			continue
		}
		parts = append(parts, text)
	}
	return strings.Join(parts, " ")
}
