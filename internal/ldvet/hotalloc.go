package ldvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc flags allocation-introducing constructs inside functions marked
// //ldvet:hotpath. PR 6 drove the per-line ingestion path to zero
// allocations and gated it with testing.AllocsPerRun; those gates catch a
// regression only after it lands and only in aggregate. This analyzer turns
// the same invariant into per-position diagnostics:
//
//   - string(b) conversions of byte slices, except the compiler-optimized
//     forms (map index m[string(b)], string comparisons) and conversions on
//     error paths;
//   - calls into fmt, the allocating strings helpers (Split, Fields, Join,
//     Replace, ToLower, ...) and regexp package-level functions (compiled
//     *Regexp METHOD calls are the sanctioned confirmation step and are not
//     flagged);
//   - make of maps and channels, and 2-arg slice make (the repo's amortized
//     buffers use the 3-arg form with an explicit capacity);
//   - map and non-empty slice composite literals, &T{} and new(T);
//   - append to a slice variable declared without preallocated capacity
//     (var x []T / x := []T{}), which reallocates as it grows;
//   - interface boxing: passing a concrete non-pointer value to an
//     interface parameter.
//
// Error paths are cold by convention: any construct inside a call whose
// results include an error (strconv fallbacks, parse.Errorf, fmt.Errorf)
// is exempt — by the time an error is being built, the allocation-free
// budget no longer applies. Deliberate allocations (amortized per-block
// buffers, first-sight cache fills) carry //ldvet:allow hotpath-alloc with
// a rationale.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-introducing constructs in //ldvet:hotpath functions\n" +
		"(string(b) conversions, fmt/strings/regexp calls, map/slice literals,\n" +
		"unpreallocated append, interface boxing); suppress with\n" +
		"//ldvet:allow hotpath-alloc",
	Run: runHotalloc,
}

const hotpathMarker = "ldvet:hotpath"

// allocStringsFuncs are the strings helpers that always allocate.
var allocStringsFuncs = map[string]bool{
	"Split": true, "SplitN": true, "SplitAfter": true, "SplitAfterN": true,
	"Fields": true, "FieldsFunc": true, "Join": true, "Repeat": true,
	"Replace": true, "ReplaceAll": true, "ToLower": true, "ToUpper": true,
	"Title": true, "ToTitle": true, "Map": true, "Clone": true,
}

func runHotalloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !funcHasMarker(pass.Fset, file, fd, hotpathMarker) {
				continue
			}
			ha := &hotCheck{pass: pass, file: file}
			ha.prepare(fd)
			ha.check(fd)
		}
	}
}

type hotCheck struct {
	pass    *Pass
	file    *ast.File
	parent  map[ast.Node]ast.Node
	cold    []ast.Node            // error-returning call exprs: their subtrees are cold
	bareVar map[types.Object]bool // slice locals declared without capacity
}

func (ha *hotCheck) info() *types.Info { return ha.pass.Pkg.Info }

// prepare builds the parent map, the cold (error-path) call list and the
// set of slice locals declared without preallocated capacity.
func (ha *hotCheck) prepare(fd *ast.FuncDecl) {
	ha.parent = make(map[ast.Node]ast.Node)
	ha.bareVar = make(map[types.Object]bool)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			ha.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch n := n.(type) {
		case *ast.CallExpr:
			if ha.returnsError(n) {
				ha.cold = append(ha.cold, n)
			}
		case *ast.ValueSpec:
			// var x []T (no value, no capacity)
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					if obj := ha.info().Defs[name]; obj != nil && isPlainSlice(obj.Type()) {
						ha.bareVar[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := ha.info().Defs[id]
				if obj == nil || !isPlainSlice(obj.Type()) {
					continue
				}
				if lit, ok := unparen(n.Rhs[i]).(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
					ha.bareVar[obj] = true // x := []T{}
				}
			}
		}
		return true
	})
}

func isPlainSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// returnsError reports whether the call's results include an
// error-implementing type: building an error is the cold path.
func (ha *hotCheck) returnsError(call *ast.CallExpr) bool {
	tv, ok := ha.info().Types[call]
	if !ok || tv.IsType() {
		return false
	}
	check := func(t types.Type) bool {
		return t != nil && types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(tv.Type)
}

// coldPath reports whether n sits inside an error-returning call's
// argument subtree (or is such a call itself).
func (ha *hotCheck) coldPath(n ast.Node) bool {
	for _, c := range ha.cold {
		if c.Pos() <= n.Pos() && n.End() <= c.End() {
			return true
		}
	}
	return false
}

func (ha *hotCheck) flag(n ast.Node, format string, args ...any) {
	if ha.coldPath(n) {
		return
	}
	if ha.pass.Allowed(ha.file, n.Pos(), "hotpath-alloc") {
		return
	}
	ha.pass.Reportf(n.Pos(), format, args...)
}

func (ha *hotCheck) check(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ha.checkCall(n)
		case *ast.CompositeLit:
			ha.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok && !ha.coldPath(n) {
					ha.flag(n, "&composite literal allocates on every call in a //ldvet:hotpath function; hoist it, reuse a buffer, or annotate //ldvet:allow hotpath-alloc")
				}
			}
		}
		return true
	})
}

func (ha *hotCheck) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := ha.info().Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		ha.flag(lit, "map literal allocates on every call in a //ldvet:hotpath function; hoist it to a package var or reuse a map")
	case *types.Slice:
		if len(lit.Elts) > 0 { // empty literals are caught at the appends that grow them
			ha.flag(lit, "slice literal allocates on every call in a //ldvet:hotpath function; hoist it or reuse a preallocated buffer")
		}
	}
}

func (ha *hotCheck) checkCall(call *ast.CallExpr) {
	info := ha.info()
	// Conversions: string(byteSlice).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		ha.checkStringConv(call, tv.Type)
		return
	}
	// Builtins: make, new, append.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				ha.checkMake(call)
			case "new":
				ha.flag(call, "new(T) allocates on every call in a //ldvet:hotpath function; reuse a value or hoist it")
			case "append":
				ha.checkAppend(call)
			}
			return
		}
	}
	// Named functions: fmt / allocating strings helpers / regexp
	// package-level functions.
	if fn := ha.calleeFunc(call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			ha.flag(call, "fmt.%s allocates (formatting + boxing) in a //ldvet:hotpath function; use manual byte formatting or move it off the hot path", fn.Name())
			return
		case "strings":
			if allocStringsFuncs[fn.Name()] {
				ha.flag(call, "strings.%s allocates its result in a //ldvet:hotpath function; use index-based scanning over the bytes instead", fn.Name())
				return
			}
		case "regexp":
			if fn.Type().(*types.Signature).Recv() == nil {
				ha.flag(call, "regexp.%s compiles/allocates per call in a //ldvet:hotpath function; use a package-level compiled pattern's methods", fn.Name())
				return
			}
		}
	}
	ha.checkBoxing(call)
}

func (ha *hotCheck) checkStringConv(call *ast.CallExpr, target types.Type) {
	bt, ok := target.Underlying().(*types.Basic)
	if !ok || bt.Info()&types.IsString == 0 || len(call.Args) != 1 {
		return
	}
	at := ha.info().Types[call.Args[0]].Type
	if at == nil {
		return
	}
	st, ok := at.Underlying().(*types.Slice)
	if !ok {
		return
	}
	if eb, ok := st.Elem().Underlying().(*types.Basic); !ok || eb.Kind() != types.Uint8 {
		return
	}
	// Compiler-optimized forms do not allocate: m[string(b)] lookups and
	// string(b) in comparisons.
	switch p := ha.parent[call].(type) {
	case *ast.IndexExpr:
		if p.Index == call {
			if _, isMap := ha.info().Types[p.X].Type.Underlying().(*types.Map); isMap {
				return
			}
		}
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return
		}
	}
	ha.flag(call, "string(b) materializes a copy on every call in a //ldvet:hotpath function; keep the bytes, or batch the copy (errlog.EventBatch / an intern cache) and annotate //ldvet:allow hotpath-alloc")
}

func (ha *hotCheck) checkMake(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := ha.info().Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		ha.flag(call, "make(map) allocates on every call in a //ldvet:hotpath function; reuse a map or move construction off the hot path")
	case *types.Chan:
		ha.flag(call, "make(chan) allocates on every call in a //ldvet:hotpath function; channels belong in setup code")
	case *types.Slice:
		if len(call.Args) == 2 {
			ha.flag(call, "2-arg make([]T, n) allocates without an amortization capacity in a //ldvet:hotpath function; use make([]T, 0, cap) sized per block, or reuse a buffer")
		}
	}
}

func (ha *hotCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := unparen(call.Args[0])
	for {
		if s, ok := dst.(*ast.SliceExpr); ok {
			dst = unparen(s.X)
			continue
		}
		break
	}
	id, ok := dst.(*ast.Ident)
	if !ok {
		return
	}
	obj := ha.info().Uses[id]
	if obj == nil {
		obj = ha.info().Defs[id]
	}
	if obj != nil && ha.bareVar[obj] {
		ha.flag(call, "append to %s grows an unpreallocated slice in a //ldvet:hotpath function; declare it with make([]T, 0, cap) to amortize", id.Name)
	}
}

// checkBoxing flags concrete non-pointer arguments passed to interface
// parameters: the conversion heap-allocates the value.
func (ha *hotCheck) checkBoxing(call *ast.CallExpr) {
	tv, ok := ha.info().Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // a ...spread passes the slice, no boxing per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := ha.info().Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil { // constants: skip
			continue
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature:
			continue // no heap allocation for these
		}
		if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		ha.flag(arg, "passing %s by value to an interface parameter boxes it (heap allocation) in a //ldvet:hotpath function; pass a pointer or avoid the interface on the hot path",
			types.TypeString(atv.Type, types.RelativeTo(ha.pass.Pkg.Types)))
	}
}

// calleeFunc resolves the called *types.Func, or nil.
func (ha *hotCheck) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := ha.pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}
