package ldvet_test

import (
	"go/build"
	"path/filepath"
	"testing"

	"logdiver/internal/ldvet"
)

// fileNames returns the base names of the files the loader selected for pkg.
func fileNames(t *testing.T, l *ldvet.Loader, pkg *ldvet.Package) map[string]bool {
	t.Helper()
	names := make(map[string]bool, len(pkg.Files))
	for _, f := range pkg.Files {
		names[filepath.Base(l.Fset().Position(f.Package).Filename)] = true
	}
	return names
}

// TestLoadBuildTags loads a testdata package whose two impl files declare
// the same function under complementary //go:build constraints. If the
// loader ignored build tags it would parse both, and the package would fail
// to type-check with a redeclaration error.
func TestLoadBuildTags(t *testing.T) {
	dir := filepath.Join("testdata", "src", "buildtags")
	l := ldvet.NewLoader(dir, "wanttest")
	pkg, err := l.LoadDir(".")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("type error (build tags ignored?): %v", terr)
	}

	names := fileNames(t, l, pkg)
	wantFile, otherFile := "impl_other.go", "impl_unix.go"
	if unixGOOS[build.Default.GOOS] {
		wantFile, otherFile = otherFile, wantFile
	}
	if !names[wantFile] {
		t.Errorf("loader did not select %s for GOOS=%s; loaded %v", wantFile, build.Default.GOOS, names)
	}
	if names[otherFile] {
		t.Errorf("loader selected %s despite its build constraint on GOOS=%s", otherFile, build.Default.GOOS)
	}
}

// unixGOOS mirrors the platforms matched by the `unix` build constraint
// that this module actually targets in CI and development.
var unixGOOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true,
	"openbsd": true, "dragonfly": true, "solaris": true, "aix": true,
}

// TestLoadStoreTailPair pins the real build-tagged pair in the module:
// internal/store ships tail_unix.go and tail_other.go, and the loader must
// pick exactly one so the repo-wide lint run type-checks the store package
// the same way the compiler does.
func TestLoadStoreTailPair(t *testing.T) {
	root, path, err := ldvet.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := ldvet.NewLoader(root, path)
	pkg, err := l.LoadDir(filepath.Join("internal", "store"))
	if err != nil {
		t.Fatalf("LoadDir(internal/store): %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("type error in internal/store: %v", terr)
	}

	names := fileNames(t, l, pkg)
	if names["tail_unix.go"] == names["tail_other.go"] {
		t.Errorf("loader selected tail_unix.go=%v tail_other.go=%v; want exactly one",
			names["tail_unix.go"], names["tail_other.go"])
	}
	if unixGOOS[build.Default.GOOS] && !names["tail_unix.go"] {
		t.Errorf("on GOOS=%s the loader should pick tail_unix.go; loaded %v", build.Default.GOOS, names)
	}
}
