package ldvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive flags switch statements over enum-like types that miss
// members. An enum-like type is a defined integer type with at least two
// package-level constants of that exact type in its defining package —
// taxonomy.Category, taxonomy.Severity and taxonomy.Group all qualify.
//
// Policy, tuned to the bug class this repo actually has (adding a category
// before the numCategories sentinel and missing a switch):
//
//   - a switch with no default clause must cover every member;
//   - a switch with a default clause is considered intentionally partial
//     (predicates like Category.Benign) unless annotated with a
//     //ldvet:exhaustive comment on or directly above the switch, in which
//     case the default may remain as an out-of-range safety net but every
//     member must still have a case;
//   - constants whose name starts with "num"/"Num" are sentinels, not
//     members;
//   - only enums defined in this module are checked. External enums (e.g.
//     regexp/syntax.Op) often carry unexported members that an importing
//     package cannot name, so exhaustiveness is not achievable there.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "flag non-exhaustive switches over enum-like types (all members required\n" +
		"when there is no default clause, or when annotated //ldvet:exhaustive)",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			if defPath := named.Obj().Pkg().Path(); defPath != pass.Pkg.Module &&
				!strings.HasPrefix(defPath, pass.Pkg.Module+"/") {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			members := enumMembers(named)
			if len(members) < 2 {
				return true
			}

			hasDefault := false
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if etv, ok := pass.Pkg.Info.Types[e]; ok && etv.Value != nil {
						covered[etv.Value.ExactString()] = true
					}
				}
			}
			annotated := hasMarker(pass.Fset, file, sw.Pos(), "ldvet:exhaustive")
			if hasDefault && !annotated {
				return true
			}
			var missing []string
			for _, m := range members {
				if !covered[m.val] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			reason := "the switch has no default clause"
			if annotated {
				reason = "the switch is marked //ldvet:exhaustive"
			}
			pass.Reportf(sw.Pos(), "switch on %s.%s is not exhaustive (%s): missing %s",
				named.Obj().Pkg().Name(), named.Obj().Name(), reason, strings.Join(missing, ", "))
			return true
		})
	}
}

type enumMember struct {
	name string
	val  string // exact constant value, the coverage key
	ord  constant.Value
}

// enumMembers lists the package-level constants of the named type in its
// defining package, skipping "num"/"Num" sentinels, ordered by value.
func enumMembers(named *types.Named) []enumMember {
	scope := named.Obj().Pkg().Scope()
	var out []enumMember
	for _, nm := range scope.Names() {
		c, ok := scope.Lookup(nm).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(nm, "num") || strings.HasPrefix(nm, "Num") {
			continue
		}
		out = append(out, enumMember{name: nm, val: c.Val().ExactString(), ord: c.Val()})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return constant.Compare(out[i].ord, token.LSS, out[j].ord)
	})
	return out
}
