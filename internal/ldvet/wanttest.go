package ldvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// WantError describes a mismatch between expected and actual diagnostics
// in a want-comment test run.
type WantError struct {
	Pos     string
	Message string
}

func (e WantError) String() string { return e.Pos + ": " + e.Message }

var wantRE = regexp.MustCompile(`//\s*want\s+(".*"|` + "`.*`" + `)\s*$`)

// CheckWants runs the analyzers over the single package rooted at dir
// (loaded as its own module) and compares the diagnostics against the
// `// want "regexp"` comments in its sources, exactly like
// golang.org/x/tools/go/analysis/analysistest: every want comment must be
// matched by a diagnostic on its line, and every diagnostic must be
// expected. It returns the list of mismatches (empty on success).
func CheckWants(dir string, analyzers ...*Analyzer) ([]WantError, error) {
	l := NewLoader(dir, "wanttest")
	pkg, err := l.LoadDir(".")
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("ldvet: test package %s does not type-check: %v", dir, pkg.TypeErrors[0])
	}
	diags := Run(l, []*Package{pkg}, analyzers)

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Files {
		collectWants(l.Fset(), f, func(pos token.Position, pattern string) error {
			re, err := regexp.Compile(pattern)
			if err != nil {
				return fmt.Errorf("%s: bad want pattern %q: %w", pos, pattern, err)
			}
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			wants[key] = append(wants[key], &want{re: re, raw: pattern})
			return nil
		})
	}

	var errs []WantError
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, WantError{
				Pos:     d.Pos.String(),
				Message: fmt.Sprintf("unexpected diagnostic: %s: %s", d.Analyzer, d.Message),
			})
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				errs = append(errs, WantError{
					Pos:     key,
					Message: fmt.Sprintf("expected diagnostic matching %q did not fire", w.raw),
				})
			}
		}
	}
	return errs, nil
}

// collectWants invokes fn for every `// want "..."` comment with the
// position of the line it annotates.
func collectWants(fset *token.FileSet, f *ast.File, fn func(token.Position, string) error) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			raw := m[1]
			var pattern string
			if raw[0] == '`' {
				pattern = raw[1 : len(raw)-1]
			} else if p, err := strconv.Unquote(raw); err == nil {
				pattern = p
			} else {
				pattern = strings.Trim(raw, `"`)
			}
			if err := fn(fset.Position(c.Slash), pattern); err != nil {
				// Bad pattern: surface it as an unmatched want.
				_ = fn(fset.Position(c.Slash), regexp.QuoteMeta(err.Error()))
			}
		}
	}
}
