package ldvet

import (
	"go/token"
	"sort"
)

// Suppress audits //ldvet:allow suppression markers. A suppression that no
// analyzer consulted is stale: either the code it excused was fixed or
// moved (so the marker now silences nothing and will hide the next real
// finding on that line), or its token is misspelled and it never worked at
// all. Mirroring staticcheck's //lint:ignore check, both conditions are
// diagnostics:
//
//   - an unknown token is always an error (the marker cannot work);
//   - an unused known token is reported when its owning analyzer ran, so a
//     partial `ldvet -run`-style invocation does not flag markers whose
//     analyzer simply was not asked to run.
//
// The audit itself runs as an epilogue inside Run after the real analyzers
// have recorded which markers they matched; this Analyzer value only
// registers the check (and its documentation) in the driver.
var Suppress = &Analyzer{
	Name: "suppress",
	Doc: "flag stale //ldvet:allow markers that no analyzer consulted, and\n" +
		"markers whose token names no known check",
}

// allowOwner maps each valid //ldvet:allow token to the analyzer that
// consults it. New suppressible analyzers must register their token here or
// every use of it is reported as unknown.
var allowOwner = map[string]string{
	"regexp-compile": RegexpCompile.Name,
	"pooled-retain":  PooledRetain.Name,
	"hotpath-alloc":  Hotalloc.Name,
}

// auditSuppressions reports stale and unknown //ldvet:allow markers in one
// package. ran is the set of analyzer names in this run; state.used holds
// the comments analyzers matched while running over this package.
func auditSuppressions(fset *token.FileSet, pkg *Package, state *runState, ran map[string]bool, report func(Diagnostic)) {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				tok, ok := allowToken(c.Text)
				if !ok {
					continue
				}
				owner, known := allowOwner[tok]
				switch {
				case !known:
					diags = append(diags, Diagnostic{
						Analyzer: Suppress.Name,
						Pos:      fset.Position(c.Slash),
						Message: "//ldvet:allow " + tok +
							" names no known check; valid tokens: " + allowTokenList(),
					})
				case ran[owner] && !state.used[c]:
					diags = append(diags, Diagnostic{
						Analyzer: Suppress.Name,
						Pos:      fset.Position(c.Slash),
						Message: "unused suppression: no " + owner +
							" diagnostic on this line needs //ldvet:allow " + tok + "; remove the stale marker",
					})
				}
			}
		}
	}
	for _, d := range diags {
		report(d)
	}
}

// allowTokenList renders the valid tokens, sorted, for diagnostics.
func allowTokenList() string {
	toks := make([]string, 0, len(allowOwner))
	for t := range allowOwner {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	s := ""
	for i, t := range toks {
		if i > 0 {
			s += ", "
		}
		s += t
	}
	return s
}
