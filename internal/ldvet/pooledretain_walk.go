package ldvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the statement/expression walker behind PooledRetain: taint
// propagation for one pass over a function body (checkFunc iterates it to a
// fixpoint, then once more with reporting enabled).

func (fc *funcCheck) walkStmts(list []ast.Stmt, retOK bool) {
	for _, s := range list {
		fc.walkStmt(s, retOK)
	}
}

func (fc *funcCheck) walkStmt(s ast.Stmt, retOK bool) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		fc.assign(s)
		for _, e := range s.Rhs {
			fc.scanExpr(e)
		}
		for _, e := range s.Lhs {
			fc.scanExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && fc.exprTainted(vs.Values[i]) {
						fc.taint(fc.objOf(name))
					}
				}
				for _, v := range vs.Values {
					fc.scanExpr(v)
				}
			}
		}
	case *ast.ExprStmt:
		fc.scanExpr(s.X)
	case *ast.GoStmt:
		fc.goViolations(s.Call)
		fc.scanExpr(s.Call)
	case *ast.DeferStmt:
		fc.scanExpr(s.Call)
	case *ast.SendStmt:
		if fc.exprTainted(s.Value) {
			fc.violation(s.Arrow,
				"sends a pooled block-buffer view on a channel; the receiver reads it after the buffer is recycled — copy first (string(b) or append)")
		}
		fc.scanExpr(s.Chan)
		fc.scanExpr(s.Value)
	case *ast.ReturnStmt:
		if !retOK {
			fc.returnViolations(s)
		}
		for _, r := range s.Results {
			fc.scanExpr(r)
		}
	case *ast.IfStmt:
		fc.walkStmt(s.Init, retOK)
		fc.scanExpr(s.Cond)
		fc.walkStmt(s.Body, retOK)
		fc.walkStmt(s.Else, retOK)
	case *ast.ForStmt:
		fc.walkStmt(s.Init, retOK)
		if s.Cond != nil {
			fc.scanExpr(s.Cond)
		}
		fc.walkStmt(s.Post, retOK)
		fc.walkStmt(s.Body, retOK)
	case *ast.RangeStmt:
		fc.rangeTaint(s)
		fc.scanExpr(s.X)
		fc.walkStmt(s.Body, retOK)
	case *ast.SwitchStmt:
		fc.walkStmt(s.Init, retOK)
		if s.Tag != nil {
			fc.scanExpr(s.Tag)
		}
		fc.walkStmt(s.Body, retOK)
	case *ast.TypeSwitchStmt:
		fc.walkStmt(s.Init, retOK)
		fc.typeSwitch(s)
		fc.walkStmt(s.Body, retOK)
	case *ast.SelectStmt:
		fc.walkStmt(s.Body, retOK)
	case *ast.CommClause:
		fc.walkStmt(s.Comm, retOK)
		fc.walkStmts(s.Body, retOK)
	case *ast.CaseClause:
		for _, e := range s.List {
			fc.scanExpr(e)
		}
		fc.walkStmts(s.Body, retOK)
	case *ast.BlockStmt:
		fc.walkStmts(s.List, retOK)
	case *ast.LabeledStmt:
		fc.walkStmt(s.Stmt, retOK)
	case *ast.IncDecStmt:
		fc.scanExpr(s.X)
	}
}

// assign propagates taint through one assignment and reports stores of
// tainted values into storage that outlives the function.
func (fc *funcCheck) assign(a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			if fc.exprTainted(a.Rhs[i]) {
				fc.storeTainted(lhs)
			}
		}
		return
	}
	// Multi-value: x, y := f() / v, ok := m[k] — taint every viewish LHS
	// when the single RHS is tainted.
	if len(a.Rhs) == 1 && fc.exprTainted(a.Rhs[0]) {
		for _, lhs := range a.Lhs {
			if fc.viewishExpr(lhs) {
				fc.storeTainted(lhs)
			}
		}
	}
}

// storeTainted handles "lhs = <tainted>": taint local destinations,
// report stores into caller-visible storage.
func (fc *funcCheck) storeTainted(lhs ast.Expr) {
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := fc.objOf(id)
		if obj == nil {
			return
		}
		if fc.pkgLevel(obj) {
			fc.violation(id.Pos(),
				"assigns a pooled block-buffer view to package variable %s; the buffer is recycled after the block callback returns — copy first", id.Name)
			return
		}
		fc.taint(obj)
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		fc.violation(lhs.Pos(),
			"stores a pooled block-buffer view through an expression the analyzer cannot prove local; copy first or annotate //ldvet:allow pooled-retain")
		return
	}
	obj := fc.objOf(root)
	if obj == nil {
		return
	}
	if fc.localRoot(obj) {
		fc.taint(obj)
		return
	}
	switch {
	case fc.pkgLevel(obj):
		fc.violation(lhs.Pos(),
			"stores a pooled block-buffer view into package-level %s; the buffer is recycled after the block callback returns — copy first", root.Name)
	case fc.params[obj]:
		fc.violation(lhs.Pos(),
			"stores a pooled block-buffer view into %s, which the caller retains past this call; copy first (string(b), append, or errlog.EventBatch)", root.Name)
	default:
		fc.violation(lhs.Pos(),
			"stores a pooled block-buffer view into %s, which aliases storage that outlives this function; copy first", root.Name)
	}
}

// localRoot reports whether stores through obj stay function-local: value
// typed locals always, ref-typed locals only when every assignment gave
// them fresh storage. Parameters, receivers and package vars never.
func (fc *funcCheck) localRoot(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || fc.pkgLevel(obj) {
		return false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return !fc.params[obj] && fc.fresh[obj]
	}
	return !fc.params[obj] || !isRefParam(v) // value params are local copies
}

func isRefParam(v *types.Var) bool {
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func (fc *funcCheck) pkgLevel(obj types.Object) bool {
	return obj.Parent() == fc.pr.pass.Pkg.Types.Scope()
}

// rootIdent unwraps selectors, indexing, slicing and dereferences down to
// the base identifier of an lvalue, or nil when the base is not an ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (fc *funcCheck) goViolations(call *ast.CallExpr) {
	for _, a := range call.Args {
		if fc.exprTainted(a) {
			fc.violation(a.Pos(),
				"passes a pooled block-buffer view to a goroutine, which runs after the buffer is recycled; copy first")
		}
	}
	if fc.exprTainted(call.Fun) {
		fc.violation(call.Fun.Pos(),
			"starts a goroutine that captures a pooled block-buffer view; the goroutine runs after the buffer is recycled — copy into a local first")
	}
}

func (fc *funcCheck) returnViolations(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		if fc.exprTainted(r) {
			fc.violation(r.Pos(),
				"returns a pooled block-buffer view from a function not marked //ldvet:pooled; the caller has no recycling contract — copy, or mark the function //ldvet:pooled")
		}
	}
	if len(s.Results) == 0 && fc.decl.Type.Results != nil { // naked return
		for _, f := range fc.decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := fc.info().Defs[name]; obj != nil && fc.tainted[obj] {
					fc.violation(s.Pos(),
						"naked return of tainted named result %s from a function not marked //ldvet:pooled; copy, or mark the function //ldvet:pooled", name.Name)
				}
			}
		}
	}
}

func (fc *funcCheck) rangeTaint(s *ast.RangeStmt) {
	if !fc.exprTainted(s.X) {
		return
	}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		if id, ok := unparen(e).(*ast.Ident); ok && fc.viewishExpr(id) {
			fc.taint(fc.objOf(id))
		}
	}
}

func (fc *funcCheck) typeSwitch(s *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(a.X).(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil || !fc.exprTainted(x) {
		return
	}
	for _, stmt := range s.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := fc.info().Implicits[clause]; obj != nil && fc.pr.viewish(obj.Type()) {
			fc.taint(obj)
		}
	}
}

// scanExpr walks an expression to find nested function literals (analyzing
// their bodies in the shared taint context, seeding callback parameters
// when the callee is pooled or a sibling argument is tainted) and nested
// calls.
func (fc *funcCheck) scanExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		pooled := fc.pr.funcPooled(fc.pr.calleeFunc(e))
		anyTainted := false
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && fc.exprTainted(sel.X) {
			anyTainted = true
		}
		for _, a := range e.Args {
			if _, isLit := unparen(a).(*ast.FuncLit); !isLit && fc.exprTainted(a) {
				anyTainted = true
			}
		}
		if lit, ok := unparen(e.Fun).(*ast.FuncLit); ok {
			if anyTainted {
				fc.seedParams(lit)
			}
			fc.analyzeFuncLit(lit)
		} else {
			fc.scanExpr(e.Fun)
		}
		for _, a := range e.Args {
			if lit, ok := unparen(a).(*ast.FuncLit); ok {
				if pooled || anyTainted {
					fc.seedParams(lit)
				}
				fc.analyzeFuncLit(lit)
			} else {
				fc.scanExpr(a)
			}
		}
	case *ast.FuncLit:
		fc.analyzeFuncLit(e)
	case *ast.ParenExpr:
		fc.scanExpr(e.X)
	case *ast.SelectorExpr:
		fc.scanExpr(e.X)
	case *ast.IndexExpr:
		fc.scanExpr(e.X)
		fc.scanExpr(e.Index)
	case *ast.IndexListExpr:
		fc.scanExpr(e.X)
		for _, i := range e.Indices {
			fc.scanExpr(i)
		}
	case *ast.SliceExpr:
		fc.scanExpr(e.X)
		fc.scanExpr(e.Low)
		fc.scanExpr(e.High)
		fc.scanExpr(e.Max)
	case *ast.StarExpr:
		fc.scanExpr(e.X)
	case *ast.UnaryExpr:
		fc.scanExpr(e.X)
	case *ast.BinaryExpr:
		fc.scanExpr(e.X)
		fc.scanExpr(e.Y)
	case *ast.KeyValueExpr:
		fc.scanExpr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			fc.scanExpr(el)
		}
	case *ast.TypeAssertExpr:
		fc.scanExpr(e.X)
	}
}

// seedParams taints the viewish parameters of a callback literal: the
// caller hands it views of the current pooled block.
func (fc *funcCheck) seedParams(lit *ast.FuncLit) {
	if lit.Type.Params == nil {
		return
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := fc.info().Defs[name]; obj != nil && fc.pr.viewish(obj.Type()) {
				fc.taint(obj)
			}
		}
	}
}

// analyzeFuncLit walks a literal's body in the shared context. Returns of
// tainted values from a literal are legal — the escape is caught where the
// closure VALUE escapes (it is tainted by capture, so storing it globally,
// returning it, or launching it as a goroutine reports).
func (fc *funcCheck) analyzeFuncLit(lit *ast.FuncLit) {
	fc.walkStmts(lit.Body.List, true)
}

// exprTainted reports whether evaluating e can yield a pooled view.
func (fc *funcCheck) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := fc.objOf(e)
		return obj != nil && fc.tainted[obj]
	case *ast.ParenExpr:
		return fc.exprTainted(e.X)
	case *ast.SelectorExpr:
		return fc.viewishExpr(e) && fc.exprTainted(e.X)
	case *ast.IndexExpr:
		return fc.viewishExpr(e) && fc.exprTainted(e.X)
	case *ast.SliceExpr:
		return fc.exprTainted(e.X)
	case *ast.StarExpr:
		return fc.exprTainted(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fc.exprTainted(e.X)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if fc.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return fc.callTainted(e)
	case *ast.TypeAssertExpr:
		return fc.viewishExpr(e) && fc.exprTainted(e.X)
	case *ast.FuncLit:
		return fc.capturesTainted(e)
	}
	return false
}

func (fc *funcCheck) viewishExpr(e ast.Expr) bool {
	tv, ok := fc.info().Types[e]
	if !ok {
		if id, isID := e.(*ast.Ident); isID {
			if obj := fc.objOf(id); obj != nil {
				return fc.pr.viewish(obj.Type())
			}
		}
		return false
	}
	return fc.pr.viewish(tv.Type)
}

// callTainted classifies call results. Conversions to string and byte-wise
// appends materialize copies (clean); view-typed results are tainted when
// the callee is pooled or any input is tainted.
func (fc *funcCheck) callTainted(call *ast.CallExpr) bool {
	// Conversion T(x).
	if tv, ok := fc.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !fc.pr.viewish(tv.Type) {
			return false // string(b) and friends: a fresh copy
		}
		return fc.exprTainted(call.Args[0])
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fc.info().Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) == 0 {
					return false
				}
				if st, ok := fc.info().Types[call.Args[0]].Type.Underlying().(*types.Slice); ok {
					if bt, ok := st.Elem().Underlying().(*types.Basic); ok && bt.Kind() == types.Uint8 {
						// Appending bytes copies them into dst; the result
						// aliases only the destination.
						return fc.exprTainted(call.Args[0])
					}
				}
				for _, a := range call.Args {
					if fc.exprTainted(a) {
						return true
					}
				}
			}
			return false
		}
	}
	// Regular call: only view-carrying results can be tainted.
	rt := fc.info().Types[call].Type
	viewResult := false
	if tuple, ok := rt.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if fc.pr.viewish(tuple.At(i).Type()) {
				viewResult = true
			}
		}
	} else {
		viewResult = fc.pr.viewish(rt)
	}
	if !viewResult {
		return false
	}
	if fc.pr.funcPooled(fc.pr.calleeFunc(call)) {
		return true
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && fc.exprTainted(sel.X) {
		return true
	}
	for _, a := range call.Args {
		if fc.exprTainted(a) {
			return true
		}
	}
	return false
}

// capturesTainted reports whether a function literal references a tainted
// variable declared outside itself.
func (fc *funcCheck) capturesTainted(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fc.info().Uses[id]
		if obj == nil || !fc.tainted[obj] {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			found = true
		}
		return true
	})
	return found
}
