// Package exhaustive exercises the ldvet exhaustive analyzer. It mirrors
// the taxonomy.Category enum shape: a defined integer type, iota constants,
// and a num-prefixed sentinel that must NOT be treated as a member.
package exhaustive

type Category int

const (
	Unclassified Category = iota
	HardwareMemoryUE
	KernelPanic
	NodeRecovered
	numCategories // sentinel, never required in a switch
)

// Severity has fewer than two constants through a second type to keep the
// enum detection honest: single-constant types are not enums.
type Severity int

const OnlySeverity Severity = 1

// missingNoDefault omits NodeRecovered and has no default clause: flagged.
func missingNoDefault(c Category) string {
	switch c { // want "switch on exhaustive.Category is not exhaustive \\(the switch has no default clause\\): missing NodeRecovered"
	case Unclassified:
		return "unclassified"
	case HardwareMemoryUE:
		return "ue"
	case KernelPanic:
		return "panic"
	}
	return ""
}

// partialWithDefault misses members but has a default clause and no
// annotation: intentionally partial, not flagged.
func partialWithDefault(c Category) bool {
	switch c {
	case HardwareMemoryUE, KernelPanic:
		return true
	default:
		return false
	}
}

// annotatedWithDefault has a default clause but is marked //ldvet:exhaustive,
// so the missing member is still flagged.
func annotatedWithDefault(c Category) string {
	//ldvet:exhaustive
	switch c { // want "switch on exhaustive.Category is not exhaustive \\(the switch is marked //ldvet:exhaustive\\): missing Unclassified"
	case HardwareMemoryUE:
		return "ue"
	case KernelPanic:
		return "panic"
	case NodeRecovered:
		return "recovered"
	default:
		return "?"
	}
}

// fullCoverage names every member (the sentinel is not required): clean.
func fullCoverage(c Category) int {
	switch c {
	case Unclassified:
		return 0
	case HardwareMemoryUE:
		return 1
	case KernelPanic:
		return 2
	case NodeRecovered:
		return 3
	}
	return -1
}

// annotatedFull covers everything under the annotation: clean.
func annotatedFull(c Category) int {
	//ldvet:exhaustive
	switch c {
	case Unclassified, HardwareMemoryUE, KernelPanic, NodeRecovered:
		return 1
	default:
		return 0
	}
}

// notAnEnum switches over a single-constant type: ignored by the analyzer.
func notAnEnum(s Severity) bool {
	switch s {
	case OnlySeverity:
		return true
	}
	return false
}

// plainInt switches over a built-in type: ignored.
func plainInt(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

var _ = []any{
	missingNoDefault, partialWithDefault, annotatedWithDefault,
	fullCoverage, annotatedFull, notAnEnum, plainInt,
}
