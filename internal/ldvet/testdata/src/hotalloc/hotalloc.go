// Package hotalloc exercises the hotalloc analyzer: functions marked
// //ldvet:hotpath must not introduce per-call allocations, with sanctioned
// exceptions (compiler-optimized string(b) forms, error paths, explicit
// //ldvet:allow hotpath-alloc markers).
package hotalloc

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

var lookup = map[string]int{"a": 1}

var linePattern = regexp.MustCompile(`^[a-z]+`)

type counter struct {
	seen map[string]int
}

// --- violations ---

//ldvet:hotpath
func convAlloc(b []byte) string {
	return string(b) // want `string\(b\) materializes a copy on every call`
}

//ldvet:hotpath
func fmtCall(b []byte) string {
	return fmt.Sprintf("%d", len(b)) // want `fmt.Sprintf allocates`
}

//ldvet:hotpath
func stringsCall(s string) []string {
	return strings.Split(s, ",") // want `strings.Split allocates its result`
}

//ldvet:hotpath
func regexpCall(b []byte) bool {
	return regexp.MustCompile(`^[a-z]+`).Match(b) // want `regexp.MustCompile compiles/allocates per call`
}

//ldvet:hotpath
func mapMake() map[string]int {
	return make(map[string]int) // want `make\(map\) allocates on every call`
}

//ldvet:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates on every call`
}

//ldvet:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates on every call`
}

//ldvet:hotpath
func twoArgMake(n int) []byte {
	return make([]byte, n) // want `2-arg make\(\[\]T, n\) allocates without an amortization capacity`
}

//ldvet:hotpath
func ptrLit(n int) *counter {
	return &counter{} // want `&composite literal allocates on every call`
}

//ldvet:hotpath
func newAlloc() *int {
	return new(int) // want `new\(T\) allocates on every call`
}

//ldvet:hotpath
func growAppend(b []byte) []int {
	var out []int
	for _, c := range b {
		out = append(out, int(c)) // want `append to out grows an unpreallocated slice`
	}
	return out
}

func takeAny(v any) {}

type pair struct{ a, b int }

//ldvet:hotpath
func boxing(p pair) {
	takeAny(p) // want `passing pair by value to an interface parameter boxes it`
}

// --- clean code: optimized forms, error paths, amortized buffers ---

//ldvet:hotpath
func mapIndex(b []byte) int {
	return lookup[string(b)] // compiler-optimized: no allocation
}

//ldvet:hotpath
func compare(b []byte, s string) bool {
	return string(b) == s // compiler-optimized comparison
}

//ldvet:hotpath
func errorPath(b []byte) (int, error) {
	n, err := strconv.Atoi(string(b)) // error-returning call: cold by convention
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", string(b), err) // error construction is cold
	}
	return n, nil
}

//ldvet:hotpath
func amortized(n int) []byte {
	buf := make([]byte, 0, n) // 3-arg make: preallocated capacity
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i))
	}
	return buf
}

//ldvet:hotpath
func compiledPattern(b []byte) bool {
	return linePattern.Match(b) // method on a hoisted pattern: sanctioned
}

//ldvet:hotpath
func pointerArg(c *counter) {
	takeAny(c) // pointers do not heap-allocate when boxed
}

//ldvet:hotpath
func structValue(a, b int) pair {
	return pair{a: a, b: b} // struct VALUE literal: stack, not heap
}

//ldvet:hotpath
func suppressed(b []byte) string {
	//ldvet:allow hotpath-alloc — first-sight cache fill, amortized across the run
	return string(b)
}

// coldHelper is NOT marked hotpath: nothing here is flagged.
func coldHelper(b []byte) string {
	return fmt.Sprintf("%s", strings.ToUpper(string(b)))
}
