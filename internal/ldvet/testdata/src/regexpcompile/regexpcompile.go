// Package regexpcompile exercises the ldvet regexpcompile analyzer.
package regexpcompile

import "regexp"

// Package-level compiles are the sanctioned pattern: clean.
var hoisted = regexp.MustCompile(`kernel panic`)

var grouped = struct{ re *regexp.Regexp }{
	re: regexp.MustCompile(`machine check`),
}

// perCall recompiles on every invocation: flagged.
func perCall(msg string) bool {
	re := regexp.MustCompile(`lbug`) // want "regexp.MustCompile inside a function compiles the pattern on every call"
	return re.MatchString(msg)
}

// posixPerCall uses the POSIX variant: flagged too.
func posixPerCall(msg string) bool {
	return regexp.MustCompilePOSIX(`oops`).MatchString(msg) // want "regexp.MustCompilePOSIX inside a function compiles the pattern on every call"
}

// inClosure hides the call inside a function literal: still a function body.
var inClosure = func() *regexp.Regexp {
	return regexp.MustCompile(`heartbeat fault`) // want "regexp.MustCompile inside a function"
}

// allowedSameLine opts out with the marker on the call line: clean.
func allowedSameLine(pat string) *regexp.Regexp {
	return regexp.MustCompile(pat) //ldvet:allow regexp-compile — caller supplies the pattern
}

// allowedLineAbove opts out with the marker on the line above: clean.
func allowedLineAbove(pat string) *regexp.Regexp {
	//ldvet:allow regexp-compile
	re := regexp.MustCompile(pat)
	return re
}

// compileNotMust uses regexp.Compile, which returns an error instead of
// panicking; that is a deliberate runtime-pattern API and not flagged.
func compileNotMust(pat string) (*regexp.Regexp, error) {
	return regexp.Compile(pat)
}

var _ = []any{
	hoisted, grouped, perCall, posixPerCall, inClosure,
	allowedSameLine, allowedLineAbove, compileNotMust,
}
