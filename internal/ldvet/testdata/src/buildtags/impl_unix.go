//go:build unix

package buildtags

// platform is redeclared in impl_other.go under the complementary build
// constraint: loading both files into one package is a redeclaration type
// error, so the loader test fails loudly if tags are ever ignored.
func platform() string { return "unix" }
