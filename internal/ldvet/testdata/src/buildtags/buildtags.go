// Package buildtags exercises the loader's build-constraint handling: the
// two impl files declare the same function under complementary //go:build
// lines, so the package only type-checks if exactly one is selected.
package buildtags

var _ = platform
