//go:build !unix

package buildtags

func platform() string { return "other" }
