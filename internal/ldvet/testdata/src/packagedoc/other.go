//go:generate true
package wanttest
