package wanttest // want `package wanttest has no package doc comment`

func unused() {}
