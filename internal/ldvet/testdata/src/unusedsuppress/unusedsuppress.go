// Package unusedsuppress exercises the suppress audit: a //ldvet:allow
// marker that no analyzer consulted is stale, and a token naming no known
// check never worked.
package unusedsuppress

import "regexp"

func used(p string) *regexp.Regexp {
	//ldvet:allow regexp-compile — a per-call compile is the point here
	return regexp.MustCompile(p)
}

func stale() int {
	//ldvet:allow regexp-compile // want `unused suppression: no regexpcompile diagnostic`
	return 42
}

//ldvet:allow no-such-check // want `//ldvet:allow no-such-check names no known check`
var answer = 42
