package wanttest

func unused() {}
