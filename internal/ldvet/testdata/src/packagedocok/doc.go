// Package wanttest is documented, so packagedoc stays silent even though
// the other file in the package has a bare package clause.
package wanttest
