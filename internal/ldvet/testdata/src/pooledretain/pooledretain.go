// Package pooledretain exercises the pooledretain analyzer: functions
// marked //ldvet:pooled hand out byte views of a recycled buffer, and any
// escape of a view past the call's dynamic extent must be reported.
package pooledretain

var (
	global       []byte
	globalStr    string
	globalBuf    []byte
	globalMap    = map[string][]byte{}
	globalBlocks = make([]Block, 1)
	globalRecs   []Record
	globalIDs    []string
	hook         func() int
	ch           = make(chan []byte, 1)
)

// Block mimics a pooled block carrier: a module-local struct with a view
// field is itself viewish.
type Block struct {
	Data []byte
}

// Record carries a view field plus clean fields.
type Record struct {
	ID  []byte
	Seq int
}

var scratch [64]byte

// currentLine returns a view of the shared scratch buffer, valid only
// until the next call.
//
//ldvet:pooled
func currentLine() []byte {
	return scratch[:]
}

// forEachLine is a pooled iterator: the callback's view argument is only
// valid for the duration of one invocation.
//
//ldvet:pooled
func forEachLine(data []byte, fn func(line []byte)) {
	fn(data)
}

func process(b []byte) int { return len(b) }

// --- violations ---

//ldvet:pooled
func storeGlobal(view []byte) {
	global = view // want `assigns a pooled block-buffer view to package variable global`
}

// sink demonstrates the struct-field retention case.
type sink struct {
	view []byte
}

//ldvet:pooled
func (s *sink) retain(view []byte) {
	s.view = view // want `stores a pooled block-buffer view into s, which the caller retains`
}

//ldvet:pooled
func stashMap(key string, view []byte) {
	globalMap[key] = view // want `stores a pooled block-buffer view into package-level globalMap`
}

//ldvet:pooled
func stashSlice(view []byte) {
	globalBlocks[0].Data = view // want `stores a pooled block-buffer view into package-level globalBlocks`
}

//ldvet:pooled
func spawn(view []byte) {
	go func() { // want `starts a goroutine that captures a pooled block-buffer view`
		global = append([]byte(nil), view...)
	}()
}

//ldvet:pooled
func spawnArg(view []byte) {
	go process(view) // want `passes a pooled block-buffer view to a goroutine`
}

//ldvet:pooled
func send(view []byte) {
	ch <- view // want `sends a pooled block-buffer view on a channel`
}

// leak returns a view from a function without a pooling contract: its
// caller has no way to know the bytes go stale.
func leak() []byte {
	line := currentLine()
	return line // want `returns a pooled block-buffer view from a function not marked`
}

// install demonstrates the closure-capture case: the closure outlives the
// view it closed over.
//
//ldvet:pooled
func install(view []byte) {
	hook = func() int { // want `assigns a pooled block-buffer view to package variable hook`
		return len(view)
	}
}

func leakFromCallback() {
	forEachLine(currentLine(), func(line []byte) {
		global = line // want `assigns a pooled block-buffer view to package variable global`
	})
}

type record struct{ Data []byte }

type table struct{ recs map[string]*record }

//ldvet:pooled
func (t *table) fillAliased(key string, view []byte) {
	r := t.recs[key] // r aliases storage the table retains
	r.Data = view    // want `stores a pooled block-buffer view into r, which aliases storage`
}

//ldvet:pooled
func (t *table) insert(key string, view []byte) {
	r := &record{}
	r.Data = view   // fine so far: r is fresh and local
	t.recs[key] = r // want `stores a pooled block-buffer view into t, which the caller retains`
}

// collect shows taint riding inside a view-carrying struct.
func collect() {
	rec := Record{ID: currentLine()}
	globalRecs = append(globalRecs, rec) // want `assigns a pooled block-buffer view to package variable globalRecs`
}

// --- clean code: explicit copies, local work, pooled returns ---

//ldvet:pooled
func okCopies(view []byte) {
	globalStr = string(view)                 // string() materializes a copy
	globalBuf = append([]byte(nil), view...) // byte append copies into fresh storage
	n := globalMap[string(view)]             // map index conversion is a lookup, not a store
	local := view
	tail := local[1:]
	_, _ = n, tail
}

//ldvet:pooled
func subfield(view []byte) []byte {
	i := 0
	for i < len(view) && view[i] != ' ' {
		i++
	}
	return view[:i] // a pooled function may hand the view onward
}

func sumLines() int {
	total := 0
	forEachLine(currentLine(), func(line []byte) {
		total += len(line) // reading in the callback is the intended use
	})
	return total
}

func collectSafe() {
	rec := Record{ID: currentLine()}
	globalIDs = append(globalIDs, string(rec.ID)) // copy before the store
}

//ldvet:pooled
func (t *table) insertCopy(key string, view []byte) {
	r := &record{Data: append([]byte(nil), view...)}
	t.recs[key] = r // r carries only fresh bytes
}

//ldvet:pooled
func suppressed(view []byte) {
	//ldvet:allow pooled-retain — exercising the suppression marker
	global = view
}
