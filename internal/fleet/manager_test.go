package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/store"
)

// thinFleet returns k fast small-machine fixtures.
func thinFleet(t testing.TB, k int) []gen.FleetMachine {
	t.Helper()
	machines := gen.Fleet(k, 1, 11)
	for i := range machines {
		machines[i].Config.Workload.JobsPerDay = 60
	}
	return machines
}

// writeWindow appends window w of machine m to its archive dir.
func writeWindow(t testing.TB, dir string, m gen.FleetMachine, w int) {
	t.Helper()
	ds, err := gen.Generate(m.Window(w))
	if err != nil {
		t.Fatal(err)
	}
	appendTo := func(name string, write func(*strings.Builder) error) {
		var b strings.Builder
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(b.String()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	appendTo(store.AccountingFile, func(b *strings.Builder) error { return ds.WriteAccounting(b) })
	appendTo(store.ApsysFile, func(b *strings.Builder) error { return ds.WriteApsys(b) })
	appendTo(store.SyslogFile, func(b *strings.Builder) error { return ds.WriteErrorLog(b) })
}

// testFleet lays out archive and state dirs for the machines under root and
// returns the parsed config.
func testFleet(t testing.TB, root string, machines []gen.FleetMachine, withState bool) *Config {
	t.Helper()
	var b strings.Builder
	for _, m := range machines {
		dir := filepath.Join(root, m.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeWindow(t, dir, m, 0)
		fmt.Fprintf(&b, "[shard %s]\narchive-dir = %s\nmachine = small\n", m.Name, dir)
		if withState {
			fmt.Fprintf(&b, "state-dir = %s\n", filepath.Join(root, "state", m.Name))
		}
	}
	cfg, err := ParseConfig(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestManagerLifecycle(t *testing.T) {
	machines := thinFleet(t, 3)
	root := t.TempDir()
	cfg := testFleet(t, root, machines, false)
	mgr, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// Before the first round: no merged snapshot, every shard waiting.
	v := mgr.View()
	if v.Merged != nil || !v.Partial {
		t.Fatalf("pre-sync view: merged=%v partial=%v", v.Merged, v.Partial)
	}
	for _, st := range v.Shards {
		if st.Status != "waiting" {
			t.Fatalf("shard %s status %q before first round", st.Name, st.Status)
		}
	}

	round := mgr.SyncRound(context.Background())
	if !round.Installed || round.FleetEpoch != 1 {
		t.Fatalf("round 1: installed=%v fleet epoch=%d", round.Installed, round.FleetEpoch)
	}
	v = mgr.View()
	if v.Merged == nil || v.Partial {
		t.Fatalf("post-sync view: merged=%v partial=%v", v.Merged, v.Partial)
	}
	var total int
	for i, st := range v.Shards {
		if st.Status != "ok" || st.Epoch != 1 {
			t.Fatalf("shard %s: status=%q epoch=%d", st.Name, st.Status, st.Epoch)
		}
		if want := (store.ShardEpoch{Machine: st.Name, Epoch: 1}); v.Merged.Shards[i] != want {
			t.Fatalf("vector[%d] = %+v, want %+v", i, v.Merged.Shards[i], want)
		}
		total += st.Runs
	}
	if v.Merged.TotalRuns() != total {
		t.Fatalf("merged runs %d != shard sum %d", v.Merged.TotalRuns(), total)
	}
	if v.Merged.Partial {
		t.Fatal("full fleet marked partial")
	}

	// A data-less round installs nothing and keeps the fleet epoch.
	round = mgr.SyncRound(context.Background())
	if round.Installed || round.FleetEpoch != 1 {
		t.Fatalf("idle round: installed=%v fleet epoch=%d", round.Installed, round.FleetEpoch)
	}

	// Appending a window to one shard advances only that shard's epoch —
	// and the fleet epoch, because the vector changed.
	writeWindow(t, filepath.Join(root, machines[1].Name), machines[1], 1)
	round = mgr.SyncRound(context.Background())
	if !round.Installed || round.FleetEpoch != 2 {
		t.Fatalf("append round: installed=%v fleet epoch=%d", round.Installed, round.FleetEpoch)
	}
	v = mgr.View()
	for i, st := range v.Shards {
		wantEpoch := uint64(1)
		if st.Name == machines[1].Name {
			wantEpoch = 2
		}
		if st.Epoch != wantEpoch {
			t.Fatalf("shard %s epoch %d, want %d", st.Name, st.Epoch, wantEpoch)
		}
		if v.Merged.Shards[i].Epoch != wantEpoch {
			t.Fatalf("vector epoch for %s = %d, want %d", st.Name, v.Merged.Shards[i].Epoch, wantEpoch)
		}
	}
}

func TestManagerDegradedShard(t *testing.T) {
	machines := thinFleet(t, 3)
	root := t.TempDir()
	cfg := testFleet(t, root, machines, false)
	mgr, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(context.Background())
	healthyRuns := mgr.View().Merged.TotalRuns()

	// Kill one shard's syslog: replace the file with a directory, which
	// stats fine but fails to read. The shard must fail; the fleet must
	// keep serving the other shards plus this shard's last good snapshot,
	// marked partial.
	victim := machines[2].Name
	syslog := filepath.Join(root, victim, store.SyslogFile)
	if err := os.Remove(syslog); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(syslog, 0o755); err != nil {
		t.Fatal(err)
	}
	round := mgr.SyncRound(context.Background())
	if !round.Installed {
		t.Fatal("partial transition did not install a new merged snapshot")
	}
	v := mgr.View()
	if !v.Partial || v.Merged == nil || !v.Merged.Partial {
		t.Fatalf("degraded fleet: partial=%v merged partial=%v", v.Partial, v.Merged != nil && v.Merged.Partial)
	}
	if v.Merged.TotalRuns() != healthyRuns {
		t.Fatalf("degraded fleet dropped runs: %d, want last-good %d", v.Merged.TotalRuns(), healthyRuns)
	}
	for _, st := range v.Shards {
		if st.Name == victim {
			if st.Status != "failed" || st.LastError == "" || st.Snap == nil {
				t.Fatalf("victim shard: status=%q err=%q snap=%v", st.Status, st.LastError, st.Snap != nil)
			}
		} else if st.Status != "ok" {
			t.Fatalf("healthy shard %s degraded to %q", st.Name, st.Status)
		}
	}
	// Stable degraded state: no new install while nothing changes.
	round = mgr.SyncRound(context.Background())
	if round.Installed {
		t.Fatal("degraded steady state reinstalled the merged snapshot")
	}
}

func TestManagerWarmRestart(t *testing.T) {
	machines := thinFleet(t, 2)
	root := t.TempDir()
	cfg := testFleet(t, root, machines, true)
	mgr, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(context.Background())
	writeWindow(t, filepath.Join(root, machines[0].Name), machines[0], 1)
	mgr.SyncRound(context.Background())
	v1 := mgr.View()
	mgr.PersistAll()

	mgr2, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range mgr2.View().Shards {
		if st.Restore.Mode != "warm" {
			t.Fatalf("shard %s restore mode %q, want warm (%s)", st.Name, st.Restore.Mode, st.Restore.Detail)
		}
	}
	mgr2.SyncRound(context.Background())
	v2 := mgr2.View()
	if v2.Merged == nil {
		t.Fatal("no merged snapshot after warm restart")
	}
	if v2.Merged.TotalRuns() != v1.Merged.TotalRuns() {
		t.Fatalf("warm restart changed the fleet: %d runs, want %d", v2.Merged.TotalRuns(), v1.Merged.TotalRuns())
	}
	// Epochs continue: shard epochs advance past their persisted values
	// and the fleet epoch stays monotonic across the restart.
	for i, st := range v2.Shards {
		if st.Epoch <= v1.Shards[i].Epoch-1 {
			t.Fatalf("shard %s epoch went backward: %d after restart, %d before", st.Name, st.Epoch, v1.Shards[i].Epoch)
		}
	}
	if v2.FleetEpoch <= v1.FleetEpoch {
		t.Fatalf("fleet epoch not monotonic across restart: %d -> %d", v1.FleetEpoch, v2.FleetEpoch)
	}
}

func TestManagerStrictRefusesBadState(t *testing.T) {
	machines := thinFleet(t, 1)
	root := t.TempDir()
	cfg := testFleet(t, root, machines, true)
	mgr, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(context.Background())
	mgr.PersistAll()

	// Same state, different fingerprint (strict mode changes the parse
	// fingerprint): strict refuses, lenient falls back cold.
	strict := core.Options{ParseMode: parse.Strict}
	if _, err := NewManager(ManagerConfig{Config: cfg, Options: strict}); err == nil {
		t.Fatal("strict mode accepted a fingerprint-mismatched state file")
	}
	mgr2, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range mgr2.View().Shards {
		if st.Restore.Mode != "warm" {
			t.Fatalf("matching fingerprint restored %q, want warm", st.Restore.Mode)
		}
	}
}

// TestManagerNoMixedEpochRead is the race-stress acceptance test: shards
// install concurrently with fleet readers, and no reader may ever observe a
// view whose aggregates mix per-shard epochs. Run counts act as the oracle:
// every (machine, epoch) pair has a precomputed from-scratch run count, and
// every observed fleet state must total exactly the sum its epoch vector
// claims.
func TestManagerNoMixedEpochRead(t *testing.T) {
	machines := thinFleet(t, 2)
	const maxWindows = 3

	// Precompute the expected run count of every (machine, epoch): epoch e
	// serves windows 0..e-1.
	expect := map[store.ShardEpoch]int{}
	for _, m := range machines {
		var acc, aps, sys strings.Builder
		for w := 0; w < maxWindows; w++ {
			ds, err := gen.Generate(m.Window(w))
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.WriteAccounting(&acc); err != nil {
				t.Fatal(err)
			}
			if err := ds.WriteApsys(&aps); err != nil {
				t.Fatal(err)
			}
			if err := ds.WriteErrorLog(&sys); err != nil {
				t.Fatal(err)
			}
			top, err := machine.New(m.Config.Machine)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Analyze(core.Archives{
				Accounting: strings.NewReader(acc.String()),
				Apsys:      strings.NewReader(aps.String()),
				Syslog:     strings.NewReader(sys.String()),
			}, top, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			expect[store.ShardEpoch{Machine: m.Name, Epoch: uint64(w + 1)}] = len(res.Runs)
		}
	}

	root := t.TempDir()
	cfg := testFleet(t, root, machines, false)
	mgr, err := NewManager(ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	check := func(snap *store.Snapshot) {
		if snap == nil {
			return
		}
		want := 0
		for _, se := range snap.EpochVector() {
			n, ok := expect[se]
			if !ok {
				t.Errorf("observed unknown shard epoch %+v", se)
				return
			}
			want += n
		}
		if snap.TotalRuns() != want {
			t.Errorf("mixed-epoch read: vector %+v claims %d runs, snapshot has %d",
				snap.EpochVector(), want, snap.TotalRuns())
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Both read paths: the published View and the fleet store.
				if v := mgr.View(); v.Merged != nil {
					check(v.Merged)
					// Intra-view consistency: the merged vector must match
					// the statuses it was folded from.
					sum := 0
					for i, st := range v.Shards {
						if st.Snap == nil {
							continue
						}
						if got := v.Merged.Shards[i]; got.Epoch != st.Snap.Epoch {
							t.Errorf("view vector[%d]=%+v but shard snap epoch %d", i, got, st.Snap.Epoch)
						}
						sum += st.Snap.TotalRuns()
					}
					if sum != v.Merged.TotalRuns() {
						t.Errorf("view merged runs %d != fold of its shard snaps %d", v.Merged.TotalRuns(), sum)
					}
				}
				check(mgr.FleetStore().Current())
			}
		}()
	}

	// Driver: append windows shard-by-shard with a sync round after each,
	// while the readers hammer the query plane.
	mgr.SyncRound(context.Background())
	for w := 1; w < maxWindows; w++ {
		for _, m := range machines {
			writeWindow(t, filepath.Join(root, m.Name), m, w)
			mgr.SyncRound(context.Background())
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
}
