package fleet

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/persist"
	"logdiver/internal/store"
)

// Restore describes one shard's boot provenance: whether it warm-started
// from persisted state, rebuilt cold, or fell back to cold after an
// unusable state file.
type Restore struct {
	Mode    string    `json:"mode"`
	Detail  string    `json:"detail,omitempty"`
	Epoch   uint64    `json:"epoch,omitempty"`
	SavedAt time.Time `json:"saved_at,omitempty"`
}

// ManagerConfig wires a Manager.
type ManagerConfig struct {
	// Config is the parsed fleet declaration. Required.
	Config *Config
	// Options follows core.Analyze semantics and applies to every shard
	// pipeline (per-shard knobs are topology, archives, state and zone —
	// policy is fleet-wide).
	Options core.Options
	// TimeZone is the default accounting zone name for shards without a
	// tz key; empty means UTC.
	TimeZone string
	// RulesID is the classifier-rules identity recorded in per-shard state
	// fingerprints (persist.RulesBuiltin when empty).
	RulesID string
	// SyncConcurrency bounds how many shards ingest at once during a sync
	// round; <= 0 selects 4.
	SyncConcurrency int
	// StateInterval is the minimum interval between periodic per-shard
	// state persists; <= 0 selects one minute.
	StateInterval time.Duration
	// Now injects the clock (time.Now when nil); tests pin it.
	Now func() time.Time
	// Logf receives warning lines (state-restore fallbacks, persist
	// failures). Nil discards them.
	Logf func(format string, args ...any)
}

// ShardStatus is one shard's health as of the last published View.
type ShardStatus struct {
	// Name is the shard's machine name.
	Name string
	// Status is "ok" (serving), "failed" (last sync round errored; the
	// last good snapshot, if any, is still merged and served) or
	// "waiting" (no snapshot yet).
	Status string
	// Epoch is the shard's own install epoch (0 before the first).
	Epoch uint64
	// Runs counts the shard's attributed runs.
	Runs int
	// Snap is the shard's latest snapshot; nil before the first install.
	Snap *store.Snapshot
	// LastSync is the shard's last ingestion poll heartbeat.
	LastSync time.Time
	// LastError is the most recent sync error ("" when healthy).
	LastError string
	// Restore is the shard's boot provenance.
	Restore Restore
}

// View is one consistent scatter-gather state: the merged fleet snapshot
// plus the per-shard statuses it was folded from. Views are immutable and
// published atomically; Merged carries the composite epoch vector, so no
// reader can ever combine aggregates from one vector with runs from
// another.
type View struct {
	// Merged is the fleet snapshot (nil until any shard has synced).
	Merged *store.Snapshot
	// FleetEpoch is Merged's install epoch in the fleet store.
	FleetEpoch uint64
	// Partial reports that at least one configured shard is failed or has
	// no snapshot: the fleet serves, but from an incomplete machine set.
	Partial bool
	// Shards holds per-shard status, sorted by name.
	Shards []ShardStatus
}

// ShardRound reports one shard's part of a sync round.
type ShardRound struct {
	Name      string
	Installed bool
	Epoch     uint64
	Err       error
}

// Round reports one fleet sync round.
type Round struct {
	Shards []ShardRound
	// Installed reports whether the round published a new merged
	// snapshot; FleetEpoch is its epoch (or the current one when not).
	Installed  bool
	FleetEpoch uint64
}

// shard is one machine's runtime: its own tailer+syncer+pipeline+store,
// epoch sequence and persisted state. Mutable fields are owned by the
// manager's single driver goroutine; readers see them only through
// published Views.
type shard struct {
	cfg       ShardConfig
	top       *machine.Topology
	store     *store.Store
	sy        *store.Syncer
	statePath string
	fp        persist.Fingerprint
	restore   Restore

	failed      bool
	lastErr     string
	lastPersist time.Time
}

// Manager runs one incremental pipeline per configured shard and folds the
// results into a single fleet view after every round. One goroutine drives
// SyncRound/PersistAll; any number of readers call View and FleetStore.
type Manager struct {
	shards []*shard // sorted by name (Config sorts)
	fleet  *store.Store
	view   atomic.Pointer[View]
	sem    chan struct{}
	every  time.Duration
	now    func() time.Time
	logf   func(format string, args ...any)
}

// NewManager builds the per-shard runtimes, warm-restoring each shard that
// has usable persisted state. Restore policy mirrors the single-machine
// daemon: an unusable state file degrades that shard to a cold rebuild in
// lenient mode and is a construction error in strict mode.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Config == nil || len(cfg.Config.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	conc := cfg.SyncConcurrency
	if conc <= 0 {
		conc = 4
	}
	every := cfg.StateInterval
	if every <= 0 {
		every = time.Minute
	}
	rulesID := cfg.RulesID
	if rulesID == "" {
		rulesID = persist.RulesBuiltin
	}
	defaultTZ := cfg.TimeZone
	if defaultTZ == "" {
		defaultTZ = "UTC"
	}

	m := &Manager{
		fleet: store.New(),
		sem:   make(chan struct{}, conc),
		every: every,
		now:   now,
		logf:  logf,
	}
	var epochSum uint64
	for _, sc := range cfg.Config.Shards {
		sh, err := newShard(sc, cfg.Options, rulesID, defaultTZ, now, logf)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %q: %w", sc.Name, err)
		}
		epochSum += sh.restore.Epoch
		m.shards = append(m.shards, sh)
	}
	// Seed the fleet epoch at the sum of the restored shard epochs. Each
	// merged install advances some shard's epoch by at least one, so the
	// fleet epoch (one per install) can never have exceeded that sum in a
	// previous life of these state dirs — seeding here keeps fleet epochs,
	// and therefore fleet ETags, monotonic across restarts.
	if epochSum > 0 {
		if err := m.fleet.Restore(epochSum); err != nil {
			return nil, err
		}
	}
	m.publish()
	return m, nil
}

// newShard builds one shard runtime, restoring persisted state when usable.
func newShard(sc ShardConfig, opts core.Options, rulesID, defaultTZ string, now func() time.Time, logf func(string, ...any)) (*shard, error) {
	profile := sc.Machine
	if profile == "" {
		profile = MachineBlueWaters
	}
	var mc machine.Config
	switch profile {
	case MachineBlueWaters:
		mc = machine.BlueWaters()
	case MachineSmall:
		mc = machine.Small()
	default:
		return nil, fmt.Errorf("unknown machine profile %q", profile)
	}
	top, err := machine.New(mc)
	if err != nil {
		return nil, err
	}
	tzName := sc.TimeZone
	if tzName == "" {
		tzName = defaultTZ
	}
	loc, err := time.LoadLocation(tzName)
	if err != nil {
		return nil, fmt.Errorf("timezone: %w", err)
	}

	sh := &shard{
		cfg:     sc,
		top:     top,
		store:   store.New(),
		restore: Restore{Mode: "cold", Detail: "persistence disabled (no state-dir)"},
	}
	var resume *store.SyncerState
	if sc.StateDir != "" {
		if err := os.MkdirAll(sc.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
		sh.statePath = filepath.Join(sc.StateDir, persist.StateFile)
		sh.fp = persist.Fingerprint{
			Machine:   profile,
			Nodes:     top.NumNodes(),
			ParseMode: opts.ParseMode.String(),
			Rules:     rulesID,
			TimeZone:  tzName,
		}
		resume, sh.restore, err = loadShardState(sh.statePath, sh.fp, opts, sc.Name, logf)
		if err != nil {
			return nil, err
		}
	}
	if sh.restore.Epoch > 0 {
		if err := sh.store.Restore(sh.restore.Epoch); err != nil {
			return nil, err
		}
	}
	syCfg := store.SyncerConfig{
		Tailer:   store.NewTailer(sc.ArchiveDir),
		Store:    sh.store,
		Topology: top,
		Location: loc,
		Options:  opts,
		Machine:  sc.Name,
		Resume:   resume,
		Now:      now,
	}
	sh.sy, err = store.NewSyncer(syCfg)
	if err != nil && resume != nil {
		// The file was structurally sound but its state failed restore
		// validation: same policy as a corrupt file.
		if strictMode(opts) {
			return nil, fmt.Errorf("state restore: %s: %w (strict mode refuses to guess: delete the state file to rebuild cold)", sh.statePath, err)
		}
		logf("fleet: shard %s: state restore failed; rebuilding cold: %v", sc.Name, err)
		sh.restore = Restore{Mode: "cold-fallback", Detail: err.Error(), Epoch: sh.restore.Epoch}
		syCfg.Resume = nil
		syCfg.Tailer = store.NewTailer(sc.ArchiveDir)
		sh.sy, err = store.NewSyncer(syCfg)
	}
	if err != nil {
		return nil, err
	}
	return sh, nil
}

// strictMode reports whether the fleet runs under the strict parse policy.
func strictMode(opts core.Options) bool { return opts.ParseMode == parse.Strict }

// loadShardState mirrors the daemon's state-loading policy for one shard.
func loadShardState(path string, fp persist.Fingerprint, opts core.Options, name string, logf func(string, ...any)) (*store.SyncerState, Restore, error) {
	ld, err := persist.Load(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, Restore{Mode: "cold", Detail: "no state file yet"}, nil
	}
	reject := func(reason error) (*store.SyncerState, Restore, error) {
		if strictMode(opts) {
			return nil, Restore{}, fmt.Errorf("state restore: %w (strict mode refuses to guess: delete the state file to rebuild cold)", reason)
		}
		logf("fleet: shard %s: state restore failed; rebuilding cold: %v", name, reason)
		info := Restore{Mode: "cold-fallback", Detail: reason.Error()}
		if ld != nil {
			info.Epoch = ld.Epoch
		}
		return nil, info, nil
	}
	if err != nil {
		return reject(err)
	}
	if diff := ld.Fingerprint.Diff(fp); diff != "" {
		return reject(fmt.Errorf("%s: configuration changed since the state was written: %s", path, diff))
	}
	return ld.Syncer, Restore{Mode: "warm", Epoch: ld.Epoch, SavedAt: ld.SavedAt}, nil
}

// FleetStore returns the store the merged fleet snapshots are installed
// into; the serving layer reads it like any single-machine store.
func (m *Manager) FleetStore() *store.Store { return m.fleet }

// View returns the latest published fleet view.
func (m *Manager) View() *View { return m.view.Load() }

// Machines returns the configured shard names in order.
func (m *Manager) Machines() []string {
	names := make([]string, len(m.shards))
	for i, sh := range m.shards {
		names[i] = sh.cfg.Name
	}
	return names
}

// SyncRound drives one ingestion round on every shard (bounded
// concurrency), persists shards on their interval, folds the results and
// publishes a new View. One goroutine must own the SyncRound/PersistAll
// sequence; a shard whose round fails is marked failed and keeps serving
// its last good snapshot until a later round succeeds.
func (m *Manager) SyncRound(ctx context.Context) Round {
	var wg sync.WaitGroup
	rounds := make([]ShardRound, len(m.shards))
	for i, sh := range m.shards {
		if ctx.Err() != nil {
			rounds[i] = ShardRound{Name: sh.cfg.Name, Err: ctx.Err()}
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			m.sem <- struct{}{}
			defer func() { <-m.sem }()
			installed, err := sh.sy.Sync()
			rounds[i] = ShardRound{Name: sh.cfg.Name, Installed: installed, Epoch: sh.store.Epoch(), Err: err}
		}(i, sh)
	}
	wg.Wait()
	for i, sh := range m.shards {
		if err := rounds[i].Err; err != nil {
			sh.failed = true
			sh.lastErr = err.Error()
			continue
		}
		sh.failed = false
		sh.lastErr = ""
		if rounds[i].Installed {
			m.persistShard(sh, false)
		}
	}
	installed := m.publish()
	m.fleet.MarkSync(m.now())
	return Round{Shards: rounds, Installed: installed, FleetEpoch: m.fleet.Epoch()}
}

// publish folds the shards' current snapshots into a merged snapshot
// (installing it under a new fleet epoch only when the epoch vector or the
// partial flag actually changed) and publishes the new View. It reports
// whether a new merged snapshot was installed.
func (m *Manager) publish() bool {
	prev := m.view.Load()
	merged := store.Zero()
	statuses := make([]ShardStatus, len(m.shards))
	partial := false
	for i, sh := range m.shards {
		snap := sh.store.Current()
		st := ShardStatus{
			Name:      sh.cfg.Name,
			Status:    "ok",
			Snap:      snap,
			LastError: sh.lastErr,
			Restore:   sh.restore,
		}
		if t, ok := sh.store.LastSync(); ok {
			st.LastSync = t
		}
		if snap != nil {
			st.Epoch = snap.Epoch
			st.Runs = snap.TotalRuns()
			merged = store.Merge(merged, snap)
		} else {
			st.Status = "waiting"
			partial = true
		}
		if sh.failed {
			st.Status = "failed"
			partial = true
		}
		statuses[i] = st
	}

	v := &View{Partial: partial, Shards: statuses}
	installed := false
	if len(merged.EpochVector()) > 0 {
		merged.Partial = partial
		if prev == nil || prev.Merged == nil ||
			!slices.Equal(prev.Merged.Shards, merged.Shards) ||
			prev.Merged.Partial != partial {
			m.fleet.Install(merged)
			installed = true
			v.Merged = merged
		} else {
			v.Merged = prev.Merged
		}
	}
	v.FleetEpoch = m.fleet.Epoch()
	m.view.Store(v)
	return installed
}

// persistShard writes one shard's state crash-safely, rate-limited by the
// state interval unless forced. Failures are logged, never fatal.
func (m *Manager) persistShard(sh *shard, force bool) {
	if sh.statePath == "" {
		return
	}
	if !force && m.now().Sub(sh.lastPersist) < m.every {
		return
	}
	sst, err := sh.sy.ExportState()
	if err == nil {
		err = persist.Save(sh.statePath, &persist.State{
			SavedAt:     m.now(),
			Epoch:       sh.store.Epoch(),
			Fingerprint: sh.fp,
			Syncer:      sst,
		})
	}
	if err != nil {
		m.logf("fleet: shard %s: state persist failed: %v", sh.cfg.Name, err)
		return
	}
	sh.lastPersist = m.now()
}

// PersistAll force-persists every shard that has a state path and is not
// failed (a poisoned pipeline's state is deliberately not persisted). The
// daemon calls it on shutdown.
func (m *Manager) PersistAll() {
	for _, sh := range m.shards {
		if sh.failed {
			continue
		}
		m.persistShard(sh, true)
	}
}
