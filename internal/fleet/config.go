// Package fleet scales the online subsystem from one machine to a fleet:
// one incremental pipeline + tailer/syncer per configured machine shard
// (the informer-per-target idiom), each with its own epoch sequence and
// persisted state, folded after every sync round into a single merged
// snapshot (store.Merge) carrying the composite fleet epoch vector. The
// manager degrades gracefully — a failed shard keeps its last good
// snapshot and the merged view is marked partial — so one machine's
// outage never takes down the fleet's query plane.
package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Shard machine profiles understood by the config parser, mirroring the
// daemon's -machine flag.
const (
	MachineBlueWaters = "bluewaters"
	MachineSmall      = "small"
)

// ShardConfig declares one machine shard.
type ShardConfig struct {
	// Name is the shard's fleet-unique machine name (the ?machine= key
	// and the Prometheus label value).
	Name string
	// ArchiveDir is the directory the shard's tailer follows.
	ArchiveDir string
	// Machine selects the topology profile: MachineBlueWaters (default)
	// or MachineSmall.
	Machine string
	// StateDir, when set, enables crash-safe persisted state for this
	// shard (one state.ldv per shard, reusing internal/persist).
	StateDir string
	// TimeZone interprets the shard's accounting timestamps; empty means
	// the manager default.
	TimeZone string
}

// Config is a parsed fleet configuration: the declarative list of shards a
// manager runs.
type Config struct {
	Shards []ShardConfig
}

// shardNameMax bounds shard names; they appear in URLs, metrics labels and
// file paths.
const shardNameMax = 64

// validShardName reports whether the name is safe to use as a query
// parameter, a metrics label value and a path component.
func validShardName(name string) bool {
	if name == "" || len(name) > shardNameMax {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return name != "." && name != ".."
}

// ParseConfig parses the declarative fleet config format:
//
//	# comment (also ';')
//	[shard m00]
//	archive-dir = /srv/logs/m00
//	machine = small
//	state-dir = /var/lib/logdiver/m00
//	tz = America/Chicago
//
// One [shard NAME] section per machine; archive-dir is required, the rest
// optional. Relative paths are left as-is (LoadConfig resolves them against
// the config file's directory). Shards are returned sorted by name.
func ParseConfig(text string) (*Config, error) {
	cfg := &Config{}
	var cur *ShardConfig
	seenKeys := map[string]bool{}
	for no, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("fleet: line %d: unterminated section header %q", no+1, line)
			}
			section := strings.TrimSpace(line[1 : len(line)-1])
			name, ok := strings.CutPrefix(section, "shard ")
			if !ok {
				return nil, fmt.Errorf("fleet: line %d: unknown section %q (want [shard NAME])", no+1, section)
			}
			name = strings.TrimSpace(name)
			if !validShardName(name) {
				return nil, fmt.Errorf("fleet: line %d: invalid shard name %q (letters, digits, dot, underscore, dash; max %d chars)", no+1, name, shardNameMax)
			}
			cfg.Shards = append(cfg.Shards, ShardConfig{Name: name, Machine: MachineBlueWaters})
			cur = &cfg.Shards[len(cfg.Shards)-1]
			seenKeys = map[string]bool{}
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: line %d: expected key = value, got %q", no+1, line)
		}
		if cur == nil {
			return nil, fmt.Errorf("fleet: line %d: key outside a [shard NAME] section", no+1)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if seenKeys[key] {
			return nil, fmt.Errorf("fleet: line %d: duplicate key %q in shard %q", no+1, key, cur.Name)
		}
		seenKeys[key] = true
		switch key {
		case "archive-dir":
			cur.ArchiveDir = value
		case "machine":
			if value != MachineBlueWaters && value != MachineSmall {
				return nil, fmt.Errorf("fleet: line %d: unknown machine profile %q (want %s or %s)", no+1, value, MachineBlueWaters, MachineSmall)
			}
			cur.Machine = value
		case "state-dir":
			cur.StateDir = value
		case "tz":
			cur.TimeZone = value
		default:
			return nil, fmt.Errorf("fleet: line %d: unknown key %q", no+1, key)
		}
	}
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: config declares no shards")
	}
	names := map[string]bool{}
	for _, sh := range cfg.Shards {
		if names[sh.Name] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", sh.Name)
		}
		names[sh.Name] = true
		if sh.ArchiveDir == "" {
			return nil, fmt.Errorf("fleet: shard %q: archive-dir is required", sh.Name)
		}
	}
	sort.Slice(cfg.Shards, func(i, j int) bool { return cfg.Shards[i].Name < cfg.Shards[j].Name })
	return cfg, nil
}

// LoadConfig reads and parses a fleet config file, resolving relative
// archive-dir and state-dir paths against the file's directory so a config
// can travel with its data.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	cfg, err := ParseConfig(string(b))
	if err != nil {
		return nil, err
	}
	base := filepath.Dir(path)
	for i := range cfg.Shards {
		sh := &cfg.Shards[i]
		if !filepath.IsAbs(sh.ArchiveDir) {
			sh.ArchiveDir = filepath.Join(base, sh.ArchiveDir)
		}
		if sh.StateDir != "" && !filepath.IsAbs(sh.StateDir) {
			sh.StateDir = filepath.Join(base, sh.StateDir)
		}
	}
	return cfg, nil
}

// String renders the config back into the format ParseConfig accepts; a
// parse → render → parse round trip is the identity (the fuzz harness pins
// that).
func (c *Config) String() string {
	var b strings.Builder
	for i, sh := range c.Shards {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "[shard %s]\n", sh.Name)
		fmt.Fprintf(&b, "archive-dir = %s\n", sh.ArchiveDir)
		fmt.Fprintf(&b, "machine = %s\n", sh.Machine)
		if sh.StateDir != "" {
			fmt.Fprintf(&b, "state-dir = %s\n", sh.StateDir)
		}
		if sh.TimeZone != "" {
			fmt.Fprintf(&b, "tz = %s\n", sh.TimeZone)
		}
	}
	return b.String()
}
