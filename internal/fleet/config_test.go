package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseConfig(t *testing.T) {
	text := `
# production fleet
[shard bw-main]
archive-dir = /srv/logs/bw
state-dir = /var/lib/logdiver/bw
tz = America/Chicago

; second machine
[shard test-rig]
archive-dir = rigs/a
machine = small
`
	cfg, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{Shards: []ShardConfig{
		{Name: "bw-main", ArchiveDir: "/srv/logs/bw", Machine: MachineBlueWaters, StateDir: "/var/lib/logdiver/bw", TimeZone: "America/Chicago"},
		{Name: "test-rig", ArchiveDir: "rigs/a", Machine: MachineSmall},
	}}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
}

func TestParseConfigSortsByName(t *testing.T) {
	cfg, err := ParseConfig("[shard zz]\narchive-dir=a\n[shard aa]\narchive-dir=b\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards[0].Name != "aa" || cfg.Shards[1].Name != "zz" {
		t.Fatalf("shards not sorted: %+v", cfg.Shards)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "no shards"},
		{"comment only", "# nothing\n", "no shards"},
		{"key outside section", "archive-dir = x\n", "outside a [shard NAME] section"},
		{"unknown section", "[fleet]\n", "unknown section"},
		{"unterminated section", "[shard a\narchive-dir=x\n", "unterminated"},
		{"bad name", "[shard a/b]\narchive-dir=x\n", "invalid shard name"},
		{"dotdot name", "[shard ..]\narchive-dir=x\n", "invalid shard name"},
		{"long name", "[shard " + strings.Repeat("x", 65) + "]\narchive-dir=x\n", "invalid shard name"},
		{"unknown key", "[shard a]\narchive-dir=x\ncolour = blue\n", "unknown key"},
		{"bad machine", "[shard a]\narchive-dir=x\nmachine = cray-2\n", "unknown machine profile"},
		{"missing archive dir", "[shard a]\nmachine = small\n", "archive-dir is required"},
		{"duplicate key", "[shard a]\narchive-dir=x\narchive-dir=y\n", "duplicate key"},
		{"duplicate shard", "[shard a]\narchive-dir=x\n[shard a]\narchive-dir=y\n", "duplicate shard name"},
		{"bare line", "[shard a]\narchive-dir=x\nnonsense\n", "expected key = value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.text)
			if err == nil {
				t.Fatalf("no error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg, err := ParseConfig("[shard a]\narchive-dir = x\nmachine = small\ntz = UTC\n[shard b]\narchive-dir = y\nstate-dir = s\n")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseConfig(cfg.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", cfg.String(), err)
	}
	if !reflect.DeepEqual(cfg, again) {
		t.Fatalf("round trip changed the config:\n before %+v\n after  %+v", cfg, again)
	}
}

func TestLoadConfigResolvesRelativePaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.conf")
	text := "[shard a]\narchive-dir = data/a\nstate-dir = state/a\n[shard b]\narchive-dir = /abs/b\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cfg.Shards[0].ArchiveDir, filepath.Join(dir, "data/a"); got != want {
		t.Fatalf("archive dir %q, want %q", got, want)
	}
	if got, want := cfg.Shards[0].StateDir, filepath.Join(dir, "state/a"); got != want {
		t.Fatalf("state dir %q, want %q", got, want)
	}
	if got := cfg.Shards[1].ArchiveDir; got != "/abs/b" {
		t.Fatalf("absolute archive dir rewritten to %q", got)
	}
}

// FuzzFleetConfig pins two properties on arbitrary input: the parser never
// panics, and any accepted config survives a render → parse round trip.
func FuzzFleetConfig(f *testing.F) {
	f.Add("[shard m00]\narchive-dir = data/m00\nmachine = small\n")
	f.Add("[shard a]\narchive-dir=x\nstate-dir=y\ntz = UTC\n")
	f.Add("# comment\n; comment\n[shard b]\narchive-dir = /x\n")
	f.Add("[shard ..]\narchive-dir=x")
	f.Add("[shard a]\narchive-dir = a = b\n")
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := ParseConfig(text)
		if err != nil {
			return
		}
		again, err := ParseConfig(cfg.String())
		if err != nil {
			t.Fatalf("accepted config failed to re-parse: %v\nrendered:\n%s", err, cfg.String())
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("round trip changed the config:\n before %+v\n after  %+v", cfg, again)
		}
	})
}
