package avail

import (
	"math"
	"testing"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

var (
	base = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	end  = base.Add(10 * 24 * time.Hour)
)

func ev(node int, offset time.Duration, cat taxonomy.Category) errlog.Event {
	return errlog.Event{
		Time:     base.Add(offset),
		Node:     machine.NodeID(node),
		Category: cat,
		Severity: taxonomy.SevCritical,
	}
}

func TestReconstructSimplePair(t *testing.T) {
	events := []errlog.Event{
		ev(3, 2*time.Hour, taxonomy.NodeHeartbeat),
		ev(3, 4*time.Hour, taxonomy.NodeRecovered),
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 {
		t.Fatalf("got %d outages, want 1", len(downs))
	}
	d := downs[0]
	if d.Node != 3 || d.Cause != taxonomy.NodeHeartbeat || d.Open {
		t.Errorf("outage: %+v", d)
	}
	if d.Duration() != 2*time.Hour {
		t.Errorf("Duration = %v, want 2h", d.Duration())
	}
}

func TestReconstructOpenOutage(t *testing.T) {
	events := []errlog.Event{ev(3, 9*24*time.Hour, taxonomy.KernelPanic)}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 || !downs[0].Open {
		t.Fatalf("got %+v, want one open outage", downs)
	}
	if !downs[0].To.Equal(end) {
		t.Errorf("open outage To = %v, want window end", downs[0].To)
	}
}

func TestReconstructFoldsDoubleDeathRecords(t *testing.T) {
	// A panic followed by the heartbeat alert of the same death.
	events := []errlog.Event{
		ev(7, time.Hour, taxonomy.KernelPanic),
		ev(7, time.Hour+time.Minute, taxonomy.NodeHeartbeat),
		ev(7, 3*time.Hour, taxonomy.NodeRecovered),
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 {
		t.Fatalf("got %d outages, want 1 (records folded)", len(downs))
	}
	if downs[0].Cause != taxonomy.KernelPanic {
		t.Errorf("Cause = %v, want the first record's category", downs[0].Cause)
	}
}

func TestReconstructMultipleOutagesPerNode(t *testing.T) {
	events := []errlog.Event{
		ev(1, 1*time.Hour, taxonomy.HardwareMemoryUE),
		ev(1, 2*time.Hour, taxonomy.NodeRecovered),
		ev(1, 50*time.Hour, taxonomy.HardwareBlade),
		ev(1, 55*time.Hour, taxonomy.NodeRecovered),
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 2 {
		t.Fatalf("got %d outages, want 2", len(downs))
	}
	if downs[0].Duration() != time.Hour || downs[1].Duration() != 5*time.Hour {
		t.Errorf("durations: %v, %v", downs[0].Duration(), downs[1].Duration())
	}
}

func TestReconstructIgnoresNoise(t *testing.T) {
	sys := ev(0, time.Hour, taxonomy.FilesystemLBUG)
	sys.Node = errlog.SystemWide
	events := []errlog.Event{
		sys,
		ev(2, 2*time.Hour, taxonomy.HardwareMemoryCE), // benign, not fatal
		ev(2, 3*time.Hour, taxonomy.NodeRecovered),    // recovery without death
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 0 {
		t.Errorf("got %+v, want none", downs)
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil, time.Time{}); err == nil {
		t.Error("zero window end accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.NodeHeartbeat),
		ev(1, 10*time.Hour, taxonomy.NodeRecovered),
		ev(2, 0, taxonomy.KernelPanic),
		ev(2, 30*time.Hour, taxonomy.NodeRecovered),
		ev(3, 9*24*time.Hour, taxonomy.HardwareMemoryUE), // open, 24h to window end
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(downs, 100, base, end)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failures != 3 || s.OpenFailures != 1 || s.DistinctNodes != 3 {
		t.Errorf("summary: %+v", s)
	}
	if math.Abs(s.MTTRHours-20) > 1e-9 { // (10+30)/2
		t.Errorf("MTTR = %v, want 20", s.MTTRHours)
	}
	wantDowntime := 10.0 + 30 + 24
	if math.Abs(s.DowntimeHours-wantDowntime) > 1e-9 {
		t.Errorf("Downtime = %v, want %v", s.DowntimeHours, wantDowntime)
	}
	capacity := 100.0 * 240
	if math.Abs(s.Availability-(1-wantDowntime/capacity)) > 1e-12 {
		t.Errorf("Availability = %v", s.Availability)
	}
	if math.Abs(s.MTBFNodeHours-capacity/3) > 1e-9 {
		t.Errorf("MTBF = %v", s.MTBFNodeHours)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil, 0, base, end); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Summarize(nil, 10, end, base); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s, err := Summarize(nil, 10, base, end)
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability != 1 || s.Failures != 0 || s.MTBFNodeHours != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestRepairTimesAndCauses(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.NodeHeartbeat),
		ev(1, 2*time.Hour, taxonomy.NodeRecovered),
		ev(2, 0, taxonomy.NodeHeartbeat),
		ev(2, 4*time.Hour, taxonomy.NodeRecovered),
		ev(3, 0, taxonomy.KernelPanic), // open
	}
	downs, err := Reconstruct(events, end)
	if err != nil {
		t.Fatal(err)
	}
	times := RepairTimes(downs)
	if len(times) != 2 {
		t.Fatalf("RepairTimes = %v", times)
	}
	causes := CausesOf(downs)
	if len(causes) != 2 {
		t.Fatalf("CausesOf = %+v", causes)
	}
	if causes[0].Cause != taxonomy.NodeHeartbeat || causes[0].Count != 2 {
		t.Errorf("top cause: %+v", causes[0])
	}
}
