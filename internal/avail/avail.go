// Package avail reconstructs node availability from the error log: a node
// goes down at a fatal node-scoped event (heartbeat loss, kernel panic,
// uncorrected hardware error, blade or link-pair failure) and returns to
// service at the next NodeRecovered record. From the reconstructed
// down-intervals the package derives the machine-availability measures of
// a field study: node failure counts, the repair-time (MTTR) distribution,
// aggregate machine availability, and the worst offenders.
package avail

import (
	"fmt"
	"sort"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

// Downtime is one reconstructed outage of a node.
type Downtime struct {
	Node machine.NodeID
	// Cause is the category of the event that took the node down.
	Cause taxonomy.Category
	// From is the death instant; To the recovery instant. Open outages
	// (no recovery before the end of the observation window) have
	// To equal to the window end and Open set.
	From, To time.Time
	Open     bool
}

// Duration returns the outage length.
func (d Downtime) Duration() time.Duration { return d.To.Sub(d.From) }

// fatalNodeEvent reports whether an event takes its node down.
func fatalNodeEvent(e errlog.Event) bool {
	if e.IsSystemWide() {
		return false
	}
	switch e.Category {
	case taxonomy.HardwareMemoryUE, taxonomy.HardwareCPU, taxonomy.HardwarePower,
		taxonomy.HardwareBlade, taxonomy.KernelPanic, taxonomy.NodeHeartbeat,
		taxonomy.InterconnectLink:
		return true
	default:
		return false
	}
}

// Reconstruct pairs death and recovery events into per-node outages. The
// events need not be sorted. windowEnd closes outages that never recover.
// A second death while a node is already down is folded into the open
// outage (the HSS logs both the panic and the heartbeat loss of one
// death); recoveries without a preceding death are ignored.
func Reconstruct(events []errlog.Event, windowEnd time.Time) ([]Downtime, error) {
	if windowEnd.IsZero() {
		return nil, fmt.Errorf("avail: zero window end")
	}
	byNode := make(map[machine.NodeID][]errlog.Event)
	for _, e := range events {
		if e.IsSystemWide() {
			continue
		}
		if fatalNodeEvent(e) || e.Category == taxonomy.NodeRecovered {
			byNode[e.Node] = append(byNode[e.Node], e)
		}
	}
	var out []Downtime
	for node, evs := range byNode {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		var open *Downtime
		for _, e := range evs {
			if e.Category == taxonomy.NodeRecovered {
				if open != nil {
					open.To = e.Time
					out = append(out, *open)
					open = nil
				}
				continue
			}
			if open == nil {
				open = &Downtime{Node: node, Cause: e.Category, From: e.Time}
			}
			// Subsequent fatal records while down are the same death.
		}
		if open != nil {
			open.To = windowEnd
			open.Open = true
			if open.To.Before(open.From) {
				open.To = open.From
			}
			out = append(out, *open)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].From.Equal(out[j].From) {
			return out[i].From.Before(out[j].From)
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// Summary aggregates reconstructed outages over an observation window.
type Summary struct {
	// Nodes is the machine's compute-node count; WindowHours the span.
	Nodes       int
	WindowHours float64
	// Failures is the number of outages; OpenFailures those unresolved.
	Failures     int
	OpenFailures int
	// DistinctNodes counts nodes with at least one outage.
	DistinctNodes int
	// DowntimeHours is total node-hours of downtime.
	DowntimeHours float64
	// MTTRHours is the mean repair time of *closed* outages.
	MTTRHours float64
	// Availability is 1 - downtime/(nodes * window).
	Availability float64
	// MTBFNodeHours is node-hours of operation per failure.
	MTBFNodeHours float64
}

// Summarize computes the availability summary for a machine with the given
// compute-node count over [windowStart, windowEnd].
func Summarize(downs []Downtime, nodes int, windowStart, windowEnd time.Time) (Summary, error) {
	if nodes <= 0 {
		return Summary{}, fmt.Errorf("avail: node count %d must be positive", nodes)
	}
	if !windowEnd.After(windowStart) {
		return Summary{}, fmt.Errorf("avail: empty window")
	}
	s := Summary{
		Nodes:       nodes,
		WindowHours: windowEnd.Sub(windowStart).Hours(),
	}
	seen := make(map[machine.NodeID]bool)
	var repairSum float64
	var repaired int
	for _, d := range downs {
		s.Failures++
		if d.Open {
			s.OpenFailures++
		} else {
			repairSum += d.Duration().Hours()
			repaired++
		}
		if !seen[d.Node] {
			seen[d.Node] = true
		}
		s.DowntimeHours += d.Duration().Hours()
	}
	s.DistinctNodes = len(seen)
	if repaired > 0 {
		s.MTTRHours = repairSum / float64(repaired)
	}
	capacity := float64(nodes) * s.WindowHours
	s.Availability = 1 - s.DowntimeHours/capacity
	if s.Failures > 0 {
		s.MTBFNodeHours = capacity / float64(s.Failures)
	}
	return s, nil
}

// RepairTimes extracts the repair durations (hours) of closed outages for
// distribution fitting.
func RepairTimes(downs []Downtime) []float64 {
	out := make([]float64, 0, len(downs))
	for _, d := range downs {
		if !d.Open {
			out = append(out, d.Duration().Hours())
		}
	}
	return out
}

// ByCause counts outages per causing category, descending.
type CauseCount struct {
	Cause taxonomy.Category
	Count int
}

// CausesOf tallies outages by cause.
func CausesOf(downs []Downtime) []CauseCount {
	m := make(map[taxonomy.Category]int)
	for _, d := range downs {
		m[d.Cause]++
	}
	out := make([]CauseCount, 0, len(m))
	for c, n := range m {
		out = append(out, CauseCount{Cause: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}
