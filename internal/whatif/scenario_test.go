package whatif

import (
	"encoding/json"
	"fmt"
	"strconv"
	"testing"
	"time"

	"logdiver/internal/correlate"
	"logdiver/internal/metrics"
	"logdiver/internal/scenario"
)

// The scenario suite follows the hypothesis-harness discipline: every
// hypothesis varies exactly one dimension, replicates across seeds, and
// asserts the preconditions that make it falsifiable on this fixture.

var scenarioSeeds = []int64{3, 9}

// requireInterrupts is the shared precondition for recovery hypotheses.
func requireInterrupts(f *fixture) error {
	b := metrics.Outcomes(f.res.Runs)
	if n := b.Counts[correlate.OutcomeSystemFailure]; n < 10 {
		return fmt.Errorf("fixture has %d system failures; need >= 10", n)
	}
	return nil
}

// TestHypothesisRetryLimitMonotone: raising the retry limit can only
// recover more runs. With per-run (seed, apid) draws the attempt
// sequences are shared prefixes, so the recovered set grows pointwise.
func TestHypothesisRetryLimitMonotone(t *testing.T) {
	f := getFixture(t)
	limits := []int{0, 1, 2, 4}
	recovered := map[scenario.Case]int{}
	attempts := map[scenario.Case]int{}
	values := make([]string, len(limits))
	for i, l := range limits {
		values[i] = strconv.Itoa(l)
	}
	scenario.Run(t, scenario.Hypothesis{
		Name:      "retry-limit-monotone",
		Dimension: "retry-limit",
		Values:    values,
		Seeds:     scenarioSeeds,
		Precondition: func(c scenario.Case) error {
			return requireInterrupts(f)
		},
		Check: func(c scenario.Case) error {
			rep := mustSimulate(t, f.input, []Policy{retryPolicy("p", limits[c.Index])}, Options{Seed: c.Seed})
			p := rep.Policies[0]
			recovered[c] = p.RunsRecovered
			attempts[c] = p.RetriesAttempted
			if limits[c.Index] == 0 {
				if p.RunsRecovered != 0 || p.RetriesAttempted != 0 {
					return fmt.Errorf("retry-limit 0 recovered %d with %d attempts", p.RunsRecovered, p.RetriesAttempted)
				}
				return nil
			}
			prev := scenario.Case{Value: values[c.Index-1], Index: c.Index - 1, Seed: c.Seed}
			if p.RunsRecovered < recovered[prev] {
				return fmt.Errorf("limit %d recovered %d < limit %d recovered %d",
					limits[c.Index], p.RunsRecovered, limits[c.Index-1], recovered[prev])
			}
			if p.RetriesAttempted < attempts[prev] {
				return fmt.Errorf("limit %d attempted %d < limit %d attempted %d",
					limits[c.Index], p.RetriesAttempted, limits[c.Index-1], attempts[prev])
			}
			return nil
		},
	})
}

// TestHypothesisCheckpointingReducesLoss: with retries held fixed, any
// checkpointing discipline loses no more node-hours than none — the
// rework tail and every retry's survival requirement shrink pointwise.
func TestHypothesisCheckpointingReducesLoss(t *testing.T) {
	f := getFixture(t)
	kinds := []string{"none", "fixed", "daly"}
	policyFor := func(kind string) Policy {
		p := retryPolicy("p", 2)
		switch kind {
		case "none":
			p.Checkpoint = CheckpointNone
			p.CheckpointCost = 0
		case "fixed":
			p.Checkpoint = CheckpointFixed
			p.CheckpointInterval = 2 * time.Hour
		case "daly":
			p.Checkpoint = CheckpointDaly
		}
		return p
	}
	lost := map[scenario.Case]float64{}
	recovered := map[scenario.Case]int{}
	scenario.Run(t, scenario.Hypothesis{
		Name:      "checkpointing-reduces-loss",
		Dimension: "checkpoint",
		Values:    kinds,
		Seeds:     scenarioSeeds,
		Precondition: func(c scenario.Case) error {
			return requireInterrupts(f)
		},
		Check: func(c scenario.Case) error {
			rep := mustSimulate(t, f.input, []Policy{policyFor(c.Value)}, Options{Seed: c.Seed})
			p := rep.Policies[0]
			lost[c] = p.LostNodeHours
			recovered[c] = p.RunsRecovered
			if c.Index == 0 {
				return nil
			}
			none := scenario.Case{Value: "none", Index: 0, Seed: c.Seed}
			if p.LostNodeHours > lost[none] {
				return fmt.Errorf("%s lost %v > none lost %v", c.Value, p.LostNodeHours, lost[none])
			}
			if p.RunsRecovered < recovered[none] {
				return fmt.Errorf("%s recovered %d < none recovered %d", c.Value, p.RunsRecovered, recovered[none])
			}
			return nil
		},
	})
}

// TestHypothesisDetectFractionMonotone: the detection counterfactual
// reclassifies a monotone set — every run detected at fraction f is also
// detected at f' > f, because all fractions share the run's uniform draw.
func TestHypothesisDetectFractionMonotone(t *testing.T) {
	f := getFixture(t)
	fractions := []string{"0", "0.5", "1"}
	detected := map[scenario.Case]int{}
	scenario.Run(t, scenario.Hypothesis{
		Name:      "detect-fraction-monotone",
		Dimension: "detect-fraction",
		Values:    fractions,
		Seeds:     scenarioSeeds,
		Precondition: func(c scenario.Case) error {
			if n := SilentCandidates(f.res.Runs); n < 10 {
				return fmt.Errorf("fixture has %d XK USER candidates; need >= 10", n)
			}
			return nil
		},
		Check: func(c scenario.Case) error {
			frac, err := strconv.ParseFloat(c.Value, 64)
			if err != nil {
				return err
			}
			rep := mustSimulate(t, f.input, []Policy{{Name: "p", DetectFraction: frac}}, Options{Seed: c.Seed})
			p := rep.Policies[0]
			detected[c] = p.RunsDetected
			switch c.Value {
			case "0":
				if p.RunsDetected != 0 {
					return fmt.Errorf("fraction 0 detected %d runs", p.RunsDetected)
				}
			case "1":
				if p.RunsDetected != SilentCandidates(f.res.Runs) {
					return fmt.Errorf("fraction 1 detected %d of %d candidates", p.RunsDetected, SilentCandidates(f.res.Runs))
				}
			}
			if c.Index > 0 {
				prev := scenario.Case{Value: fractions[c.Index-1], Index: c.Index - 1, Seed: c.Seed}
				if p.RunsDetected < detected[prev] {
					return fmt.Errorf("fraction %s detected %d < fraction %s detected %d",
						c.Value, p.RunsDetected, fractions[c.Index-1], detected[prev])
				}
			}
			return nil
		},
	})
}

// TestHypothesisParallelismInvariant: the report is a pure function of
// (input, policies, seed); the worker count never leaks into the bytes.
func TestHypothesisParallelismInvariant(t *testing.T) {
	f := getFixture(t)
	pols := DefaultPolicies()
	baseline := map[int64][]byte{}
	scenario.Run(t, scenario.Hypothesis{
		Name:      "parallelism-invariant",
		Dimension: "parallelism",
		Values:    []string{"1", "4"},
		Seeds:     scenarioSeeds,
		Precondition: func(c scenario.Case) error {
			if len(f.input.Runs) < 100 {
				return fmt.Errorf("fixture has %d runs; need >= 100 to exercise chunking", len(f.input.Runs))
			}
			return nil
		},
		Check: func(c scenario.Case) error {
			par, err := strconv.Atoi(c.Value)
			if err != nil {
				return err
			}
			rep := mustSimulate(t, f.input, pols, Options{Seed: c.Seed, Parallelism: par})
			b, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			if par == 1 {
				baseline[c.Seed] = b
				return nil
			}
			if string(b) != string(baseline[c.Seed]) {
				return fmt.Errorf("parallelism %d report differs from parallelism 1 at seed %d", par, c.Seed)
			}
			return nil
		},
	})
}
