// Package whatif is the counterfactual resilience engine: a seeded,
// deterministic discrete-event simulator that replays an analyzed run
// stream — the attributed application runs plus the measured MTTI-by-scale
// distribution — under declarative resilience policies and prices what
// WOULD have happened. Policies combine the ORNL resilience design
// patterns the study motivates: checkpoint/restart with fixed or
// Daly-optimal intervals derived from the measured MTTI (internal/
// checkpoint does the interval math), bounded retry/requeue with backoff,
// and detection-coverage counterfactuals ("what if hybrid nodes had
// adequate GPU error detection"). Every simulation is a pure function of
// (input, policies, seed): per-run randomness is derived from the seed and
// the run's apid, so results are bit-identical at any parallelism.
package whatif

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// CheckpointKind selects how a policy picks checkpoint intervals.
type CheckpointKind int

// Checkpoint interval disciplines.
const (
	// CheckpointNone disables checkpointing: an interrupted run loses
	// everything it executed, exactly as the measured baseline accounts it.
	CheckpointNone CheckpointKind = iota
	// CheckpointFixed writes a checkpoint every CheckpointInterval of
	// execution, regardless of scale.
	CheckpointFixed
	// CheckpointDaly derives the interval per scale bucket from the
	// measured MTTI via Daly's higher-order optimum (internal/checkpoint).
	CheckpointDaly
)

// String returns the config-file spelling of the kind.
func (k CheckpointKind) String() string {
	switch k {
	case CheckpointNone:
		return "none"
	case CheckpointFixed:
		return "fixed"
	case CheckpointDaly:
		return "daly"
	default:
		return "checkpoint(" + strconv.Itoa(int(k)) + ")"
	}
}

// checkpointKindFromString parses the config-file spelling.
func checkpointKindFromString(s string) (CheckpointKind, bool) {
	switch s {
	case "none":
		return CheckpointNone, true
	case "fixed":
		return CheckpointFixed, true
	case "daly":
		return CheckpointDaly, true
	default:
		return 0, false
	}
}

// MaxPolicies bounds how many policies one simulation accepts. The bound
// keeps a single /v1/whatif POST from turning into an unbounded amount of
// simulation work.
const MaxPolicies = 16

// policyNameMax bounds policy names; they appear in tables, JSON payloads
// and cache keys.
const policyNameMax = 64

// Policy is one declarative resilience design to replay the measured
// stream under. The zero value (plus a name) is the no-op policy: it
// reproduces the measured baseline exactly.
type Policy struct {
	// Name labels the policy in reports and tables.
	Name string `json:"name"`
	// Checkpoint selects the interval discipline.
	Checkpoint CheckpointKind `json:"checkpoint"`
	// CheckpointInterval is the fixed interval (CheckpointFixed only).
	CheckpointInterval time.Duration `json:"checkpoint_interval,omitempty"`
	// CheckpointCost is the cost of writing one checkpoint. Required for
	// any checkpointing policy; it also feeds the Daly interval.
	CheckpointCost time.Duration `json:"checkpoint_cost,omitempty"`
	// RestartCost is the cost of restarting an interrupted run from its
	// last checkpoint (or from scratch without checkpointing).
	RestartCost time.Duration `json:"restart_cost,omitempty"`
	// RetryLimit bounds how many times an interrupted run is re-queued.
	// 0 disables recovery: interrupted runs stay failed, as measured.
	RetryLimit int `json:"retry_limit,omitempty"`
	// RetryBackoff is the queue wait before each retry. It delays
	// recovery (reported as recovery delay) but consumes no node-hours.
	RetryBackoff time.Duration `json:"retry_backoff,omitempty"`
	// DetectFraction is the detection-coverage counterfactual: the
	// fraction of hybrid-node (XK) runs attributed to the USER — where the
	// study shows silent GPU errors hide — that gain detection and are
	// reclassified as detected system interrupts, making them eligible for
	// the policy's recovery machinery.
	DetectFraction float64 `json:"detect_fraction,omitempty"`
}

// IsNoop reports whether the policy changes nothing: simulating it
// reproduces the measured baseline byte for byte.
func (p Policy) IsNoop() bool {
	return p.Checkpoint == CheckpointNone && p.RetryLimit == 0 && p.DetectFraction == 0
}

// validPolicyName mirrors the fleet shard-name rules: safe as a table
// cell, a JSON value and a cache-key component.
func validPolicyName(name string) bool {
	if name == "" || len(name) > policyNameMax {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return name != "." && name != ".."
}

// Validate checks the policy for internal consistency.
func (p Policy) Validate() error {
	if !validPolicyName(p.Name) {
		return fmt.Errorf("whatif: invalid policy name %q (letters, digits, dot, underscore, dash; max %d chars)", p.Name, policyNameMax)
	}
	switch p.Checkpoint {
	case CheckpointNone:
		if p.CheckpointInterval != 0 {
			return fmt.Errorf("whatif: policy %q: checkpoint-interval set but checkpoint = none", p.Name)
		}
	case CheckpointFixed:
		if p.CheckpointInterval <= 0 {
			return fmt.Errorf("whatif: policy %q: checkpoint = fixed needs checkpoint-interval > 0", p.Name)
		}
	case CheckpointDaly:
		if p.CheckpointInterval != 0 {
			return fmt.Errorf("whatif: policy %q: checkpoint-interval only applies to checkpoint = fixed (daly derives it from the measured MTTI)", p.Name)
		}
	default:
		return fmt.Errorf("whatif: policy %q: unknown checkpoint kind %d", p.Name, int(p.Checkpoint))
	}
	if p.Checkpoint != CheckpointNone && p.CheckpointCost <= 0 {
		return fmt.Errorf("whatif: policy %q: checkpointing needs checkpoint-cost > 0", p.Name)
	}
	if p.Checkpoint == CheckpointNone && p.CheckpointCost != 0 {
		return fmt.Errorf("whatif: policy %q: checkpoint-cost set but checkpoint = none", p.Name)
	}
	if p.CheckpointCost < 0 || p.RestartCost < 0 || p.RetryBackoff < 0 {
		return fmt.Errorf("whatif: policy %q: negative durations are not allowed", p.Name)
	}
	if p.RetryLimit < 0 || p.RetryLimit > 100 {
		return fmt.Errorf("whatif: policy %q: retry-limit %d out of range [0,100]", p.Name, p.RetryLimit)
	}
	if p.RetryLimit == 0 && p.RetryBackoff != 0 {
		return fmt.Errorf("whatif: policy %q: retry-backoff set but retry-limit = 0", p.Name)
	}
	// The negated comparison also rejects NaN.
	if !(p.DetectFraction >= 0 && p.DetectFraction <= 1) {
		return fmt.Errorf("whatif: policy %q: detect-fraction %v out of range [0,1]", p.Name, p.DetectFraction)
	}
	return nil
}

// DefaultPolicies is the policy set simulated when a caller supplies none:
// the measured baseline, a Daly checkpointing design, the same design with
// bounded retries, and the paper's lesson-3 counterfactual where hybrid
// nodes gain GPU error detection on top of it.
func DefaultPolicies() []Policy {
	return []Policy{
		{Name: "baseline"},
		{
			Name:           "daly-checkpoint",
			Checkpoint:     CheckpointDaly,
			CheckpointCost: 7 * time.Minute,
			RestartCost:    12 * time.Minute,
		},
		{
			Name:           "daly-retry-2",
			Checkpoint:     CheckpointDaly,
			CheckpointCost: 7 * time.Minute,
			RestartCost:    12 * time.Minute,
			RetryLimit:     2,
			RetryBackoff:   5 * time.Minute,
		},
		{
			Name:           "gpu-detect",
			Checkpoint:     CheckpointDaly,
			CheckpointCost: 7 * time.Minute,
			RestartCost:    12 * time.Minute,
			RetryLimit:     2,
			RetryBackoff:   5 * time.Minute,
			DetectFraction: 0.8,
		},
	}
}

// ParsePolicies parses the declarative policy config format:
//
//	# comment (also ';')
//	[policy daly-retry-2]
//	checkpoint = daly
//	checkpoint-cost = 7m
//	restart-cost = 12m
//	retry-limit = 2
//	retry-backoff = 5m
//	detect-fraction = 0.8
//
// One [policy NAME] section per policy; every key is optional (an empty
// section is the no-op policy). checkpoint-interval (fixed discipline
// only) takes a Go duration. Policies are returned in file order and each
// must Validate; names must be unique.
func ParsePolicies(text string) ([]Policy, error) {
	var pols []Policy
	var cur *Policy
	seenKeys := map[string]bool{}
	for no, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("whatif: line %d: unterminated section header %q", no+1, line)
			}
			section := strings.TrimSpace(line[1 : len(line)-1])
			name, ok := strings.CutPrefix(section, "policy ")
			if !ok {
				return nil, fmt.Errorf("whatif: line %d: unknown section %q (want [policy NAME])", no+1, section)
			}
			name = strings.TrimSpace(name)
			if !validPolicyName(name) {
				return nil, fmt.Errorf("whatif: line %d: invalid policy name %q (letters, digits, dot, underscore, dash; max %d chars)", no+1, name, policyNameMax)
			}
			if len(pols) == MaxPolicies {
				return nil, fmt.Errorf("whatif: line %d: too many policies (max %d per simulation)", no+1, MaxPolicies)
			}
			pols = append(pols, Policy{Name: name})
			cur = &pols[len(pols)-1]
			seenKeys = map[string]bool{}
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("whatif: line %d: expected key = value, got %q", no+1, line)
		}
		if cur == nil {
			return nil, fmt.Errorf("whatif: line %d: key outside a [policy NAME] section", no+1)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if seenKeys[key] {
			return nil, fmt.Errorf("whatif: line %d: duplicate key %q in policy %q", no+1, key, cur.Name)
		}
		seenKeys[key] = true
		var err error
		switch key {
		case "checkpoint":
			kind, ok := checkpointKindFromString(value)
			if !ok {
				return nil, fmt.Errorf("whatif: line %d: unknown checkpoint kind %q (want none, fixed or daly)", no+1, value)
			}
			cur.Checkpoint = kind
		case "checkpoint-interval":
			cur.CheckpointInterval, err = parsePolicyDuration(value)
		case "checkpoint-cost":
			cur.CheckpointCost, err = parsePolicyDuration(value)
		case "restart-cost":
			cur.RestartCost, err = parsePolicyDuration(value)
		case "retry-limit":
			cur.RetryLimit, err = strconv.Atoi(value)
		case "retry-backoff":
			cur.RetryBackoff, err = parsePolicyDuration(value)
		case "detect-fraction":
			cur.DetectFraction, err = strconv.ParseFloat(value, 64)
		default:
			return nil, fmt.Errorf("whatif: line %d: unknown key %q", no+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("whatif: line %d: bad %s: %v", no+1, key, err)
		}
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("whatif: config declares no policies")
	}
	names := map[string]bool{}
	for _, p := range pols {
		if names[p.Name] {
			return nil, fmt.Errorf("whatif: duplicate policy name %q", p.Name)
		}
		names[p.Name] = true
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return pols, nil
}

// parsePolicyDuration parses a positive Go duration.
func parsePolicyDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration %v must be positive", d)
	}
	return d, nil
}

// PoliciesString renders the policy set in the format ParsePolicies
// reads: Parse(String(Parse(x))) == Parse(x) for every accepted x
// (fuzzed by FuzzPolicyConfig). The rendering is canonical — it is also
// the /v1/whatif cache-key material.
func PoliciesString(pols []Policy) string {
	var b strings.Builder
	for i, p := range pols {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "[policy %s]\n", p.Name)
		if p.Checkpoint != CheckpointNone {
			fmt.Fprintf(&b, "checkpoint = %s\n", p.Checkpoint)
		}
		if p.CheckpointInterval != 0 {
			fmt.Fprintf(&b, "checkpoint-interval = %s\n", p.CheckpointInterval)
		}
		if p.CheckpointCost != 0 {
			fmt.Fprintf(&b, "checkpoint-cost = %s\n", p.CheckpointCost)
		}
		if p.RestartCost != 0 {
			fmt.Fprintf(&b, "restart-cost = %s\n", p.RestartCost)
		}
		if p.RetryLimit != 0 {
			fmt.Fprintf(&b, "retry-limit = %d\n", p.RetryLimit)
		}
		if p.RetryBackoff != 0 {
			fmt.Fprintf(&b, "retry-backoff = %s\n", p.RetryBackoff)
		}
		if p.DetectFraction != 0 {
			fmt.Fprintf(&b, "detect-fraction = %s\n", strconv.FormatFloat(p.DetectFraction, 'g', -1, 64))
		}
	}
	return b.String()
}

// LoadPolicies reads and parses a policy config file.
func LoadPolicies(path string) ([]Policy, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pols, err := ParsePolicies(string(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pols, nil
}

// SortedNames returns the policy names in sorted order (for stable error
// messages and cache keys over sets).
func SortedNames(pols []Policy) []string {
	names := make([]string, len(pols))
	for i, p := range pols {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
