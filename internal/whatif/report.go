package whatif

import (
	"logdiver/internal/report"
)

// OutcomeRow is one outcome's share of runs and node-hours.
type OutcomeRow struct {
	Outcome   string  `json:"outcome"`
	Runs      int     `json:"runs"`
	NodeHours float64 `json:"node_hours"`
}

// ScaleRow is one scale bucket of a policy's W3 breakdown.
type ScaleRow struct {
	// Lo and Hi bound the bucket: Lo <= nodes < Hi.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Label renders the bounds compactly ("4096-8191").
	Label string `json:"label"`
	// Runs and Interrupts count bucket members and simulated system
	// interrupts (including recovered ones).
	Runs       int `json:"runs"`
	Interrupts int `json:"interrupts"`
	// MTTIHours is the measured mean time to interrupt at this scale
	// (0 when the bucket saw no interrupts).
	MTTIHours float64 `json:"mtti_hours"`
	// TauHours is the checkpoint interval the policy uses at this scale
	// (0 when the policy does not checkpoint here).
	TauHours float64 `json:"tau_hours"`
	// RunsRecovered counts interrupted runs the policy completed.
	RunsRecovered int `json:"runs_recovered"`
	// LostNodeHours is work wasted on interrupts under the policy;
	// SavedNodeHours the reduction versus the measured baseline.
	LostNodeHours  float64 `json:"lost_node_hours"`
	SavedNodeHours float64 `json:"saved_node_hours"`
}

// PolicyResult aggregates one policy's counterfactual outcome.
type PolicyResult struct {
	Name     string       `json:"name"`
	Policy   Policy       `json:"policy"`
	Outcomes []OutcomeRow `json:"outcomes"`
	// UsefulNodeHours is realized successful work (SUCCESS + RECOVERED).
	UsefulNodeHours float64 `json:"useful_node_hours"`
	// LostNodeHours is work wasted on system interrupts: rework tails
	// plus execution consumed by failed retries.
	LostNodeHours float64 `json:"lost_node_hours"`
	// BankedNodeHours is work of unrecovered runs preserved in durable
	// checkpoints — not realized, but not destroyed either.
	BankedNodeHours float64 `json:"banked_node_hours"`
	// CheckpointOverheadNodeHours and RestartOverheadNodeHours price the
	// policy's own machinery.
	CheckpointOverheadNodeHours float64 `json:"checkpoint_overhead_node_hours"`
	RestartOverheadNodeHours    float64 `json:"restart_overhead_node_hours"`
	// ConsumedNodeHours is total machine time occupied under the policy;
	// GoodputFraction = UsefulNodeHours / ConsumedNodeHours.
	ConsumedNodeHours float64 `json:"consumed_node_hours"`
	GoodputFraction   float64 `json:"goodput_fraction"`
	// RecoveryDelayHours is wall-clock time recovery added (backoffs,
	// failed attempts, the successful re-execution).
	RecoveryDelayHours float64 `json:"recovery_delay_hours"`
	RunsRecovered      int     `json:"runs_recovered"`
	// RunsDetected counts runs the detection counterfactual reclassified
	// from USER to a detected system interrupt.
	RunsDetected     int `json:"runs_detected"`
	RetriesAttempted int `json:"retries_attempted"`
	// SavedNodeHours is the lost-work reduction versus the measured
	// baseline; NetSavedNodeHours subtracts the policy's own overheads.
	SavedNodeHours    float64    `json:"saved_node_hours"`
	NetSavedNodeHours float64    `json:"net_saved_node_hours"`
	ByScale           []ScaleRow `json:"by_scale"`
}

// Report is a full simulation result: the measured baseline, its no-op
// replay (identical by construction — the differential suite enforces it
// byte for byte), and each requested policy.
type Report struct {
	Seed           int64          `json:"seed"`
	Runs           int            `json:"runs"`
	TotalNodeHours float64        `json:"total_node_hours"`
	Measured       []OutcomeRow   `json:"measured"`
	Baseline       PolicyResult   `json:"baseline"`
	Policies       []PolicyResult `json:"policies"`
}

// Tables renders the report as the W1–W3 tables.
//
//	W1  counterfactual outcome shift per policy
//	W2  node-hour economics per policy
//	W3  recovery by scale bucket per policy
func (r *Report) Tables() []report.Table {
	w1 := report.Table{
		ID:      "W1",
		Title:   "Counterfactual outcome shift vs measured baseline",
		Columns: []string{"policy", "outcome", "measured runs", "simulated runs", "delta", "measured nh", "simulated nh"},
		Notes:   []string{"RECOVERED counts measured system failures the policy completed"},
	}
	measured := map[string]OutcomeRow{}
	for _, row := range r.Measured {
		measured[row.Outcome] = row
	}
	for _, pol := range r.Policies {
		for _, row := range pol.Outcomes {
			m := measured[row.Outcome]
			w1.AddRow(pol.Name, row.Outcome,
				report.Count(m.Runs), report.Count(row.Runs), report.Count(row.Runs-m.Runs),
				report.F1(m.NodeHours), report.F1(row.NodeHours))
		}
	}

	w2 := report.Table{
		ID:      "W2",
		Title:   "Node-hour economics per policy",
		Columns: []string{"policy", "useful nh", "lost nh", "saved nh", "net saved nh", "banked nh", "ckpt overhead", "restart overhead", "goodput", "recovered", "detected", "retries"},
		Notes:   []string{"saved = baseline lost - policy lost; net saved subtracts the policy's own overheads"},
	}
	addW2 := func(p PolicyResult) {
		w2.AddRow(p.Name, report.F1(p.UsefulNodeHours), report.F1(p.LostNodeHours),
			report.F1(p.SavedNodeHours), report.F1(p.NetSavedNodeHours), report.F1(p.BankedNodeHours),
			report.F1(p.CheckpointOverheadNodeHours), report.F1(p.RestartOverheadNodeHours),
			report.Pct(p.GoodputFraction), report.Count(p.RunsRecovered), report.Count(p.RunsDetected),
			report.Count(p.RetriesAttempted))
	}
	addW2(r.Baseline)
	for _, p := range r.Policies {
		addW2(p)
	}

	w3 := report.Table{
		ID:      "W3",
		Title:   "Recovery by scale bucket",
		Columns: []string{"policy", "nodes", "runs", "interrupts", "mtti h", "tau h", "recovered", "lost nh", "saved nh"},
		Notes:   []string{"tau is the checkpoint interval in force at the bucket's measured MTTI (0 = no checkpointing)"},
	}
	for _, pol := range r.Policies {
		for _, b := range pol.ByScale {
			if b.Runs == 0 {
				continue
			}
			w3.AddRow(pol.Name, b.Label, report.Count(b.Runs), report.Count(b.Interrupts),
				report.F1(b.MTTIHours), report.F1(b.TauHours), report.Count(b.RunsRecovered),
				report.F1(b.LostNodeHours), report.F1(b.SavedNodeHours))
		}
	}
	return []report.Table{w1, w2, w3}
}
