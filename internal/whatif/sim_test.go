package whatif

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
)

// fixture is one synthesized-and-analyzed dataset shared by the suite.
type fixture struct {
	ds    *gen.Dataset
	res   *core.Result
	input Input
}

var cached *fixture

// getFixture synthesizes a small machine with boosted fault rates and a
// deliberately weak GPU detection probability, so the stream carries
// enough system interrupts and silent hybrid failures to exercise every
// policy mechanism.
func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	cfg := gen.Small(6)
	cfg.Seed = 7
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 300
	cfg.Rates.GPUDetectProb = 0.35
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeParsed(ds.Jobs, ds.Runs, ds.Events, ds.Topology, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mtti, err := metrics.MTTIByScale(res.Runs, metrics.GeometricBuckets(ds.Topology.NumNodes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{ds: ds, res: res, input: Input{Runs: res.Runs, MTTI: mtti}}
	return cached
}

// mustSimulate runs one simulation or fails the test.
func mustSimulate(t testing.TB, in Input, pols []Policy, opts Options) *Report {
	t.Helper()
	rep, err := Simulate(in, pols, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// retryPolicy is the suite's workhorse recovery policy.
func retryPolicy(name string, limit int) Policy {
	p := Policy{
		Name:           name,
		Checkpoint:     CheckpointDaly,
		CheckpointCost: 7 * time.Minute,
		RestartCost:    12 * time.Minute,
		RetryLimit:     limit,
	}
	if limit > 0 {
		p.RetryBackoff = 5 * time.Minute
	}
	return p
}

// TestNoopByteIdentical is the differential gate: replaying the stream
// under a policy that changes nothing must reproduce the measured
// baseline byte for byte once rendered.
func TestNoopByteIdentical(t *testing.T) {
	f := getFixture(t)
	noop := Policy{Name: "noop"}
	if !noop.IsNoop() {
		t.Fatal("zero policy should be a no-op")
	}
	rep := mustSimulate(t, f.input, []Policy{noop}, Options{Seed: 1, Parallelism: 4})

	measured, err := json.Marshal(rep.Measured)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []struct {
		name string
		rows []OutcomeRow
	}{
		{"baseline", rep.Baseline.Outcomes},
		{"noop policy", rep.Policies[0].Outcomes},
	} {
		b, err := json.Marshal(got.rows)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(measured) {
			t.Errorf("%s outcome rows differ from measured:\n got %s\nwant %s", got.name, b, measured)
		}
	}

	bl := rep.Baseline
	if bl.ConsumedNodeHours != rep.TotalNodeHours {
		t.Errorf("baseline consumed %v != measured total %v", bl.ConsumedNodeHours, rep.TotalNodeHours)
	}
	b := metrics.Outcomes(f.res.Runs)
	if bl.LostNodeHours != b.NodeHours[correlate.OutcomeSystemFailure] {
		t.Errorf("baseline lost %v != measured system node-hours %v", bl.LostNodeHours, b.NodeHours[correlate.OutcomeSystemFailure])
	}
	if bl.UsefulNodeHours != b.NodeHours[correlate.OutcomeSuccess] {
		t.Errorf("baseline useful %v != measured success node-hours %v", bl.UsefulNodeHours, b.NodeHours[correlate.OutcomeSuccess])
	}
	if bl.BankedNodeHours != 0 || bl.CheckpointOverheadNodeHours != 0 || bl.RestartOverheadNodeHours != 0 ||
		bl.RunsRecovered != 0 || bl.RunsDetected != 0 || bl.RetriesAttempted != 0 {
		t.Errorf("baseline has policy machinery engaged: %+v", bl)
	}
}

// TestSameSeedBitReproducible checks the determinism contract: equal
// seeds produce byte-identical reports at parallelism 1 and 4, across
// repeated invocations.
func TestSameSeedBitReproducible(t *testing.T) {
	f := getFixture(t)
	pols := DefaultPolicies()
	for _, seed := range []int64{1, 42} {
		var want []byte
		for _, par := range []int{1, 4, 4} {
			rep := mustSimulate(t, f.input, pols, Options{Seed: seed, Parallelism: par})
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = b
				continue
			}
			if string(b) != string(want) {
				t.Errorf("seed %d parallelism %d: report differs from parallelism-1 run", seed, par)
			}
		}
	}
}

// TestDifferentSeedsBoundedVariance checks that seeds matter but only
// within the binomial envelope of the stochastic draws.
func TestDifferentSeedsBoundedVariance(t *testing.T) {
	f := getFixture(t)
	candidates := SilentCandidates(f.res.Runs)
	if candidates < 20 {
		t.Fatalf("fixture has %d silent candidates; need >= 20 for a meaningful variance test", candidates)
	}
	const frac = 0.5
	pol := Policy{Name: "half-detect", DetectFraction: frac}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	counts := make([]int, len(seeds))
	for i, seed := range seeds {
		rep := mustSimulate(t, f.input, []Policy{pol}, Options{Seed: seed})
		counts[i] = rep.Policies[0].RunsDetected
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		lo, hi = min(lo, c), max(hi, c)
	}
	if lo == hi {
		t.Errorf("detected counts identical across seeds %v: %v", seeds, counts)
	}
	mean := frac * float64(candidates)
	sigma := math.Sqrt(float64(candidates) * frac * (1 - frac))
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma+1 {
			t.Errorf("seed %d: detected %d outside %v ± %v (candidates %d)", seeds[i], c, mean, 5*sigma+1, candidates)
		}
	}
}

// TestDetectionRecoversGroundTruth scores the detection counterfactual
// against the synthesizer: among XK runs the pipeline blamed on the USER,
// the truth sidecar knows which ones were silent system failures. Feeding
// that true silent fraction back as DetectFraction must reclassify the
// true silent count, within the binomial tolerance of the mean over seeds.
func TestDetectionRecoversGroundTruth(t *testing.T) {
	f := getFixture(t)
	var candidates, trueSilent int
	for _, r := range f.res.Runs {
		if r.Class != machine.ClassXK || r.Outcome != correlate.OutcomeUserFailure {
			continue
		}
		candidates++
		if f.ds.Truth[r.ApID].Outcome == correlate.OutcomeSystemFailure {
			trueSilent++
		}
	}
	if candidates != SilentCandidates(f.res.Runs) {
		t.Fatalf("candidate count mismatch: %d vs %d", candidates, SilentCandidates(f.res.Runs))
	}
	if trueSilent < 5 {
		t.Fatalf("fixture has %d true silent failures among %d candidates; need >= 5", trueSilent, candidates)
	}
	q := float64(trueSilent) / float64(candidates)
	pol := Policy{Name: "truth-detect", DetectFraction: q}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	var sum float64
	for _, seed := range seeds {
		rep := mustSimulate(t, f.input, []Policy{pol}, Options{Seed: seed})
		sum += float64(rep.Policies[0].RunsDetected)
	}
	mean := sum / float64(len(seeds))
	want := float64(trueSilent)
	sigmaOfMean := math.Sqrt(float64(candidates)*q*(1-q)) / math.Sqrt(float64(len(seeds)))
	tol := 4*sigmaOfMean + 1
	if math.Abs(mean-want) > tol {
		t.Errorf("mean detected %.2f over %d seeds; ground truth %d silent failures (tolerance %.2f, candidates %d)",
			mean, len(seeds), trueSilent, tol, candidates)
	}
}

// TestRecoveryAccounting spot-checks the economics invariants on a
// recovering policy.
func TestRecoveryAccounting(t *testing.T) {
	f := getFixture(t)
	rep := mustSimulate(t, f.input, []Policy{retryPolicy("recover", 3)}, Options{Seed: 1})
	p := rep.Policies[0]
	bl := rep.Baseline
	if p.RunsRecovered == 0 {
		t.Fatal("recovery policy recovered nothing; fixture too quiet")
	}
	var recRow, sysRow, blSys OutcomeRow
	for i, row := range p.Outcomes {
		switch row.Outcome {
		case RecoveredOutcome:
			recRow = row
		case correlate.OutcomeSystemFailure.String():
			sysRow, blSys = row, bl.Outcomes[i]
		}
	}
	if recRow.Runs != p.RunsRecovered {
		t.Errorf("RECOVERED row %d != RunsRecovered %d", recRow.Runs, p.RunsRecovered)
	}
	if sysRow.Runs+recRow.Runs != blSys.Runs {
		t.Errorf("system %d + recovered %d != baseline system %d", sysRow.Runs, recRow.Runs, blSys.Runs)
	}
	if p.LostNodeHours >= bl.LostNodeHours {
		t.Errorf("recovering policy lost %v >= baseline %v", p.LostNodeHours, bl.LostNodeHours)
	}
	if p.SavedNodeHours != bl.LostNodeHours-p.LostNodeHours {
		t.Errorf("saved %v != baseline lost - lost %v", p.SavedNodeHours, bl.LostNodeHours-p.LostNodeHours)
	}
	if p.UsefulNodeHours <= bl.UsefulNodeHours {
		t.Errorf("recovering policy useful %v <= baseline %v", p.UsefulNodeHours, bl.UsefulNodeHours)
	}
	if p.CheckpointOverheadNodeHours <= 0 || p.RestartOverheadNodeHours <= 0 {
		t.Errorf("overheads should be positive: ckpt %v restart %v", p.CheckpointOverheadNodeHours, p.RestartOverheadNodeHours)
	}
	if p.GoodputFraction <= 0 || p.GoodputFraction > 1 {
		t.Errorf("goodput %v outside (0,1]", p.GoodputFraction)
	}
	// Conservation: consumed decomposes into the named sinks plus the
	// node-hours of USER/WALLTIME runs (consumed but neither useful nor
	// system-lost nor banked).
	var otherNH float64
	for _, row := range p.Outcomes {
		if row.Outcome == correlate.OutcomeUserFailure.String() || row.Outcome == correlate.OutcomeWalltime.String() {
			otherNH += row.NodeHours
		}
	}
	sum := p.UsefulNodeHours + otherNH + p.LostNodeHours + p.BankedNodeHours +
		p.CheckpointOverheadNodeHours + p.RestartOverheadNodeHours
	if rel := math.Abs(sum-p.ConsumedNodeHours) / p.ConsumedNodeHours; rel > 1e-9 {
		t.Errorf("conservation violated: sinks sum %v vs consumed %v (rel %v)", sum, p.ConsumedNodeHours, rel)
	}
}

// TestPlanByScaleMatchesSimulatorTau pins the no-drift guarantee: the
// interval PlanByScale advertises per bucket is exactly the interval the
// simulator applies there.
func TestPlanByScaleMatchesSimulatorTau(t *testing.T) {
	f := getFixture(t)
	pol := retryPolicy("daly", 2)
	plans, err := PlanByScale(f.input.MTTI, pol, 24)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustSimulate(t, f.input, []Policy{pol}, Options{Seed: 1})
	rows := rep.Policies[0].ByScale
	if len(plans) != len(rows) {
		t.Fatalf("plan buckets %d != report buckets %d", len(plans), len(rows))
	}
	var checked int
	for i, plan := range plans {
		if plan.Interrupts == 0 {
			continue
		}
		checked++
		if got, want := rows[i].TauHours, plan.Plan.DalyHours; got != want {
			t.Errorf("bucket %s: simulator tau %v != plan Daly %v", plan.Label, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no buckets with interrupts; fixture too quiet")
	}
}

// TestSimulateValidation covers the error paths.
func TestSimulateValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := Simulate(f.input, []Policy{{Name: "a"}, {Name: "a"}}, Options{}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := Simulate(f.input, []Policy{{Name: "bad", RetryLimit: -1}}, Options{}); err == nil {
		t.Error("invalid policy accepted")
	}
	many := make([]Policy, MaxPolicies+1)
	for i := range many {
		many[i] = Policy{Name: "p" + string(rune('a'+i))}
	}
	if _, err := Simulate(f.input, many, Options{}); err == nil {
		t.Error("oversized policy set accepted")
	}
	rep, err := Simulate(Input{}, nil, Options{Seed: 9})
	if err != nil {
		t.Fatalf("empty input should simulate: %v", err)
	}
	if rep.Runs != 0 || len(rep.Policies) != 0 {
		t.Errorf("empty input gave %+v", rep)
	}
}

// TestReportTables checks the W1–W3 renderings are structurally valid.
func TestReportTables(t *testing.T) {
	f := getFixture(t)
	rep := mustSimulate(t, f.input, DefaultPolicies(), Options{Seed: 1})
	tables := rep.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	for _, tbl := range tables {
		if err := tbl.Validate(); err != nil {
			t.Errorf("table %s: %v", tbl.ID, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s has no rows", tbl.ID)
		}
	}
}
