package whatif

import (
	"testing"
)

// BenchmarkSimulate prices one full simulation — the four default
// policies plus the implicit baseline over the fixture's analyzed stream.
// This is exactly the work one cold /v1/whatif render performs, so the
// BENCH_whatif.json gates bound the serving tier's worst case.
func BenchmarkSimulate(b *testing.B) {
	f := getFixture(b)
	pols := DefaultPolicies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(f.input, pols, Options{Seed: 1, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != len(f.input.Runs) {
			b.Fatal("short report")
		}
	}
}

// BenchmarkSimulateRun prices the per-run hot path under the heaviest
// default policy.
func BenchmarkSimulateRun(b *testing.B) {
	f := getFixture(b)
	pol := DefaultPolicies()[3]
	mtti := newMTTITable(f.input)
	runs := f.input.Runs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := simulateRun(&runs[i%len(runs)], pol, 1, mtti)
		if d.nh < 0 {
			b.Fatal("negative node-hours")
		}
	}
}
