package whatif

import (
	"reflect"
	"testing"
)

// FuzzPolicyConfig checks the parser never panics and that accepted
// configs round-trip through the canonical rendering — the property the
// /v1/whatif cache key depends on.
func FuzzPolicyConfig(f *testing.F) {
	f.Add("[policy a]\n")
	f.Add("[policy daly]\ncheckpoint = daly\ncheckpoint-cost = 7m\nrestart-cost = 12m\n")
	f.Add("[policy fixed]\ncheckpoint = fixed\ncheckpoint-interval = 2h\ncheckpoint-cost = 30s\n")
	f.Add("[policy r]\nretry-limit = 3\nretry-backoff = 1m\ndetect-fraction = 0.25\n")
	f.Add("# comment\n; comment\n[policy a]\n\n[policy b]\nretry-limit = 1\n")
	f.Add("[policy a]\ncheckpoint = none\n")
	f.Add(PoliciesString(DefaultPolicies()))
	f.Fuzz(func(t *testing.T, text string) {
		pols, err := ParsePolicies(text)
		if err != nil {
			return
		}
		rendered := PoliciesString(pols)
		again, err := ParsePolicies(rendered)
		if err != nil {
			t.Fatalf("canonical rendering rejected: %v\n%s", err, rendered)
		}
		if !reflect.DeepEqual(pols, again) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v\nvia\n%s", again, pols, rendered)
		}
	})
}
