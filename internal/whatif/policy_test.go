package whatif

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePolicies(t *testing.T) {
	text := `
# checkpointing with bounded retries
[policy daly-retry]
checkpoint = daly
checkpoint-cost = 7m
restart-cost = 12m
retry-limit = 2
retry-backoff = 5m

; fixed-interval comparison
[policy fixed-2h]
checkpoint = fixed
checkpoint-interval = 2h
checkpoint-cost = 7m

[policy detect]
detect-fraction = 0.8
retry-limit = 1
restart-cost = 12m

[policy noop]
`
	pols, err := ParsePolicies(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []Policy{
		{Name: "daly-retry", Checkpoint: CheckpointDaly, CheckpointCost: 7 * time.Minute,
			RestartCost: 12 * time.Minute, RetryLimit: 2, RetryBackoff: 5 * time.Minute},
		{Name: "fixed-2h", Checkpoint: CheckpointFixed, CheckpointInterval: 2 * time.Hour,
			CheckpointCost: 7 * time.Minute},
		{Name: "detect", DetectFraction: 0.8, RetryLimit: 1, RestartCost: 12 * time.Minute},
		{Name: "noop"},
	}
	if !reflect.DeepEqual(pols, want) {
		t.Errorf("parsed %+v\nwant %+v", pols, want)
	}
	if !pols[3].IsNoop() || pols[0].IsNoop() {
		t.Error("IsNoop misclassifies")
	}
}

func TestParsePoliciesErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		want string
	}{
		{"empty", "", "no policies"},
		{"key outside section", "checkpoint = daly\n", "outside a [policy NAME] section"},
		{"unknown section", "[shard a]\n", "unknown section"},
		{"unterminated", "[policy a\n", "unterminated"},
		{"bad name", "[policy a/b]\n", "invalid policy name"},
		{"long name", "[policy " + strings.Repeat("x", 65) + "]\n", "invalid policy name"},
		{"duplicate name", "[policy a]\n[policy a]\n", "duplicate policy name"},
		{"duplicate key", "[policy a]\nretry-limit = 1\nretry-limit = 2\n", "duplicate key"},
		{"unknown key", "[policy a]\nfrequency = 1\n", "unknown key"},
		{"bad kind", "[policy a]\ncheckpoint = hourly\n", "unknown checkpoint kind"},
		{"bad duration", "[policy a]\ncheckpoint-cost = fast\n", "bad checkpoint-cost"},
		{"negative duration", "[policy a]\nrestart-cost = -5m\n", "bad restart-cost"},
		{"missing equals", "[policy a]\ncheckpoint daly\n", "expected key = value"},
		{"fixed without interval", "[policy a]\ncheckpoint = fixed\ncheckpoint-cost = 5m\n", "checkpoint-interval > 0"},
		{"interval without fixed", "[policy a]\ncheckpoint = daly\ncheckpoint-cost = 5m\ncheckpoint-interval = 1h\n", "only applies to checkpoint = fixed"},
		{"ckpt without cost", "[policy a]\ncheckpoint = daly\n", "checkpoint-cost > 0"},
		{"cost without ckpt", "[policy a]\ncheckpoint-cost = 5m\n", "checkpoint = none"},
		{"backoff without retries", "[policy a]\nretry-backoff = 5m\n", "retry-limit = 0"},
		{"retry range", "[policy a]\nretry-limit = 200\n", "out of range"},
		{"fraction range", "[policy a]\ndetect-fraction = 1.5\n", "out of range"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParsePolicies(tt.text)
			if err == nil {
				t.Fatalf("accepted %q", tt.text)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestParsePoliciesLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i <= MaxPolicies; i++ {
		b.WriteString("[policy p")
		b.WriteString(strings.Repeat("x", i))
		b.WriteString("]\n")
	}
	if _, err := ParsePolicies(b.String()); err == nil || !strings.Contains(err.Error(), "too many policies") {
		t.Errorf("got %v, want too-many-policies error", err)
	}
}

func TestPoliciesStringRoundTrip(t *testing.T) {
	pols := DefaultPolicies()
	text := PoliciesString(pols)
	got, err := ParsePolicies(text)
	if err != nil {
		t.Fatalf("reparse of\n%s\nfailed: %v", text, err)
	}
	if !reflect.DeepEqual(got, pols) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, pols)
	}
}

func TestDefaultPoliciesValid(t *testing.T) {
	for _, p := range DefaultPolicies() {
		if err := p.Validate(); err != nil {
			t.Errorf("default policy %s: %v", p.Name, err)
		}
	}
}

func TestLoadPolicies(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policies.conf")
	if err := os.WriteFile(path, []byte(PoliciesString(DefaultPolicies())), 0o644); err != nil {
		t.Fatal(err)
	}
	pols, err := LoadPolicies(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pols) != len(DefaultPolicies()) {
		t.Errorf("loaded %d policies, want %d", len(pols), len(DefaultPolicies()))
	}
	if _, err := LoadPolicies(filepath.Join(dir, "absent.conf")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.conf")
	if err := os.WriteFile(bad, []byte("[policy a]\nnope = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicies(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("bad-file error %v should name the path", err)
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames([]Policy{{Name: "z"}, {Name: "a"}, {Name: "m"}})
	if !reflect.DeepEqual(names, []string{"a", "m", "z"}) {
		t.Errorf("got %v", names)
	}
}
