package whatif

import (
	"fmt"

	"logdiver/internal/checkpoint"
	"logdiver/internal/metrics"
)

// ScalePlan is the checkpoint plan a policy implies at one measured scale
// bucket: the same internal/checkpoint math the simulator applies, exposed
// so planning tools (examples/checkpoint-planning) and the simulator
// cannot drift.
type ScalePlan struct {
	// Lo and Hi bound the bucket: Lo <= nodes < Hi.
	Lo, Hi int
	// Label renders the bounds compactly.
	Label string
	// Runs and Interrupts are the bucket's measured population.
	Runs, Interrupts int
	// MTTIHours is the measured mean time to interrupt (0: none measured).
	MTTIHours float64
	// Plan carries the Young/Daly intervals and modeled efficiencies.
	// It is the zero Plan when the bucket saw no interrupts.
	Plan checkpoint.Plan
}

// PlanByScale derives per-scale checkpoint plans from a measured MTTI
// distribution under a policy's checkpoint economics (CheckpointCost and
// RestartCost). referenceRunHours is the representative uninterrupted run
// length for the unprotected comparison. The policy must checkpoint
// (fixed or daly); buckets without measured interrupts yield a zero Plan.
func PlanByScale(mtti []metrics.MTTIBucket, pol Policy, referenceRunHours float64) ([]ScalePlan, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if pol.Checkpoint == CheckpointNone {
		return nil, fmt.Errorf("whatif: policy %q does not checkpoint; nothing to plan", pol.Name)
	}
	plans := make([]ScalePlan, len(mtti))
	for i, b := range mtti {
		plans[i] = ScalePlan{
			Lo: b.Lo, Hi: b.Hi,
			Label:      bucketLabel(b.Lo, b.Hi),
			Runs:       b.Runs,
			Interrupts: b.Interrupts,
			MTTIHours:  b.MTTIHours,
		}
		if b.Interrupts == 0 {
			continue
		}
		plan, err := checkpoint.BuildPlan(checkpoint.Params{
			MTTIHours:       b.MTTIHours,
			CheckpointHours: pol.CheckpointCost.Hours(),
			RestartHours:    pol.RestartCost.Hours(),
		}, referenceRunHours)
		if err != nil {
			return nil, fmt.Errorf("whatif: bucket %s: %w", plans[i].Label, err)
		}
		plans[i].Plan = plan
	}
	return plans, nil
}
