package whatif

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"logdiver/internal/checkpoint"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
)

// Input is the analyzed evidence the simulator replays: the attributed
// run stream and the measured MTTI-by-scale distribution (the same view
// the snapshot store serves). The runs are never mutated.
type Input struct {
	Runs []correlate.AttributedRun
	MTTI []metrics.MTTIBucket
}

// Options controls a simulation.
type Options struct {
	// Seed feeds every random draw. Two simulations with equal inputs,
	// policies and seed produce identical reports, at any parallelism.
	Seed int64
	// Parallelism bounds the worker count (<=0 means GOMAXPROCS). It
	// affects wall-clock time only, never results: per-run randomness is
	// derived from (Seed, ApID) and per-run deltas are folded in stream
	// order.
	Parallelism int
}

// RecoveredOutcome labels runs whose measured system failure the
// simulated policy turned into a completion.
const RecoveredOutcome = "RECOVERED"

// outcome indices inside per-policy accumulators: 1..4 mirror
// correlate.Outcome, 5 is the simulator-only RECOVERED state.
const (
	idxRecovered = 5
	numOutcomes  = 6
)

// outcomeLabels lists the report's outcome rows in render order.
var outcomeLabels = []struct {
	idx   int
	label string
}{
	{int(correlate.OutcomeSuccess), correlate.OutcomeSuccess.String()},
	{int(correlate.OutcomeUserFailure), correlate.OutcomeUserFailure.String()},
	{int(correlate.OutcomeWalltime), correlate.OutcomeWalltime.String()},
	{int(correlate.OutcomeSystemFailure), correlate.OutcomeSystemFailure.String()},
	{idxRecovered, RecoveredOutcome},
}

// prng is a splitmix64 generator. Each simulated run gets its own stream
// derived from (seed, apid), which is what makes results independent of
// both run order and parallelism.
type prng struct{ state uint64 }

func newPRNG(seed int64, apid uint64) prng {
	p := prng{state: uint64(seed) ^ (apid * 0x9E3779B97F4A7C15)}
	// Two warm-up rounds decorrelate nearby (seed, apid) pairs.
	p.next()
	p.next()
	return p
}

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// expHours draws an exponential interrupt time with mean m hours.
// m may be +Inf (no measured interrupts), in which case the draw is
// consumed for stream alignment and +Inf is returned.
func (p *prng) expHours(m float64) float64 {
	u := p.float64()
	if math.IsInf(m, 1) {
		return math.Inf(1)
	}
	return -math.Log(1-u) * m
}

// runDelta is one run's contribution to a policy's aggregates. Deltas are
// computed independently (possibly in parallel) and folded sequentially in
// stream order so float accumulation order is fixed.
type runDelta struct {
	outcome   int     // final outcome index (1..4, or idxRecovered)
	nh        float64 // measured node-hours (realized work on completion)
	useful    float64 // node-hours of realized successful work
	lost      float64 // node-hours wasted on system interrupts
	banked    float64 // node-hours preserved in durable checkpoints of unrecovered runs
	ckptOv    float64 // checkpoint-write overhead node-hours
	restartOv float64 // restart overhead node-hours of successful retries
	consumed  float64 // total machine node-hours the run occupied
	delay     float64 // wall-clock hours recovery added to completion
	bucket    int     // MTTI scale bucket, -1 when outside every bucket
	attempts  int     // retries attempted
	recovered bool
	detected  bool // reclassified by the detection counterfactual
}

// mttiTable answers "what MTTI does a run of n nodes see" from the
// measured distribution, falling back to the global MTTI for buckets
// without interrupts and to +Inf when the stream has no interrupts at all.
type mttiTable struct {
	bounds  []int
	buckets []metrics.MTTIBucket
	global  float64
}

func newMTTITable(in Input) mttiTable {
	t := mttiTable{buckets: in.MTTI, global: math.Inf(1)}
	if len(in.MTTI) > 0 {
		t.bounds = make([]int, len(in.MTTI)+1)
		for i, b := range in.MTTI {
			t.bounds[i] = b.Lo
		}
		t.bounds[len(in.MTTI)] = in.MTTI[len(in.MTTI)-1].Hi
	}
	var exposure float64
	var interrupts int
	for _, r := range in.Runs {
		exposure += r.Duration().Hours()
		if r.Outcome == correlate.OutcomeSystemFailure {
			interrupts++
		}
	}
	if interrupts > 0 {
		t.global = exposure / float64(interrupts)
	}
	return t
}

// bucketOf returns the scale-bucket index for an n-node run (-1: none).
func (t mttiTable) bucketOf(n int) int {
	if len(t.bounds) == 0 {
		return -1
	}
	i := sort.SearchInts(t.bounds, n+1) - 1
	if i < 0 || i >= len(t.buckets) {
		return -1
	}
	return i
}

// mttiAt returns the MTTI (hours) a run of n nodes is exposed to.
func (t mttiTable) mttiAt(n int) float64 {
	if i := t.bucketOf(n); i >= 0 && t.buckets[i].Interrupts > 0 {
		return t.buckets[i].MTTIHours
	}
	return t.global
}

// intervalHours resolves a policy's checkpoint interval for a run exposed
// to MTTI m. 0 means "do not checkpoint" (either by policy or because the
// Daly optimum diverges when interrupts are absent).
func intervalHours(pol Policy, m float64) (float64, error) {
	switch pol.Checkpoint {
	case CheckpointNone:
		return 0, nil
	case CheckpointFixed:
		return pol.CheckpointInterval.Hours(), nil
	case CheckpointDaly:
		tau, err := checkpoint.DalyInterval(checkpoint.Params{
			MTTIHours:       m,
			CheckpointHours: pol.CheckpointCost.Hours(),
			RestartHours:    pol.RestartCost.Hours(),
		})
		if err != nil {
			return 0, err
		}
		if math.IsInf(tau, 1) {
			return 0, nil
		}
		return tau, nil
	default:
		return 0, fmt.Errorf("whatif: unknown checkpoint kind %d", int(pol.Checkpoint))
	}
}

// simulateRun replays one measured run under one policy.
//
// Event model, in order:
//
//  1. Detection counterfactual: an XK run attributed to the USER may be
//     reclassified as a detected system interrupt with probability
//     DetectFraction.
//  2. Checkpointing: every run with an interval tau pays
//     floor(D/tau) checkpoint writes; an interrupted run preserves the
//     work before its last checkpoint and only reworks the tail.
//  3. Retry/requeue: each retry waits RetryBackoff, pays RestartCost and
//     re-executes the rework; it survives if an exponential interrupt
//     draw with the run's measured MTTI outlives restart+rework.
//
// The no-op policy takes none of these branches and reproduces the
// measured accounting bit for bit.
func simulateRun(r *correlate.AttributedRun, pol Policy, seed int64, mtti mttiTable) runDelta {
	n := len(r.Nodes)
	nf := float64(n)
	dHours := r.Duration().Hours()
	nh := r.NodeHours()
	d := runDelta{nh: nh, bucket: mtti.bucketOf(n), outcome: int(r.Outcome)}

	rng := newPRNG(seed, r.ApID)
	// The detection draw is consumed for every candidate run regardless of
	// DetectFraction, so detect-dimension sweeps see aligned retry draws.
	if r.Class == machine.ClassXK && r.Outcome == correlate.OutcomeUserFailure {
		if u := rng.float64(); u < pol.DetectFraction {
			d.outcome = int(correlate.OutcomeSystemFailure)
			d.detected = true
		}
	}

	m := mtti.mttiAt(n)
	tau, err := intervalHours(pol, m)
	if err != nil {
		// Policies are validated before simulation; the only residual
		// failure is a non-positive MTTI, which mttiAt never produces.
		tau = 0
	}
	ckptCost := pol.CheckpointCost.Hours()
	var ckptOvH float64 // per-node hours spent writing checkpoints
	var savedH float64  // per-node hours preserved by the last checkpoint
	if tau > 0 {
		writes := math.Floor(dHours / tau)
		ckptOvH = writes * ckptCost
		savedH = writes * tau
	}
	d.ckptOv = ckptOvH * nf

	if d.outcome != int(correlate.OutcomeSystemFailure) {
		if d.outcome == int(correlate.OutcomeSuccess) {
			d.useful = nh
		}
		d.consumed = nh + d.ckptOv
		return d
	}

	// A system interrupt: the tail since the last checkpoint is rework.
	reworkH := dHours - savedH
	restartH := pol.RestartCost.Hours()
	needH := restartH + reworkH // wall hours a retry must survive
	backoffH := pol.RetryBackoff.Hours()
	var retryLostH, delayH float64
	for i := 0; i < pol.RetryLimit; i++ {
		d.attempts++
		delayH += backoffH
		t := rng.expHours(m)
		if t >= needH {
			d.recovered = true
			delayH += needH
			d.restartOv = restartH * nf
			break
		}
		retryLostH += t
		delayH += t
	}
	if d.recovered {
		d.outcome = idxRecovered
		d.useful = nh
		d.lost = (reworkH + retryLostH) * nf
		d.delay = delayH
	} else {
		d.lost = (reworkH + retryLostH) * nf
		d.banked = savedH * nf
	}
	d.consumed = nh + d.ckptOv + d.restartOv + retryLostH*nf
	if d.recovered {
		// The successful retry re-executes the rework tail.
		d.consumed += reworkH * nf
	}
	return d
}

// Simulate replays the measured stream under each policy (plus the
// implicit measured baseline) and prices the differences. It is a pure
// function of (in, policies, opts.Seed).
func Simulate(in Input, policies []Policy, opts Options) (*Report, error) {
	if len(policies) > MaxPolicies {
		return nil, fmt.Errorf("whatif: %d policies exceed the limit of %d", len(policies), MaxPolicies)
	}
	names := map[string]bool{}
	for _, p := range policies {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if names[p.Name] {
			return nil, fmt.Errorf("whatif: duplicate policy name %q", p.Name)
		}
		names[p.Name] = true
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in.Runs) {
		workers = max(len(in.Runs), 1)
	}

	mtti := newMTTITable(in)
	rep := &Report{
		Seed:     opts.Seed,
		Runs:     len(in.Runs),
		Measured: measuredRows(in.Runs),
	}
	for _, r := range in.Runs {
		rep.TotalNodeHours += r.NodeHours()
	}

	deltas := make([]runDelta, len(in.Runs))
	simPolicy := func(pol Policy) PolicyResult {
		var wg sync.WaitGroup
		chunk := (len(in.Runs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(in.Runs))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					deltas[i] = simulateRun(&in.Runs[i], pol, opts.Seed, mtti)
				}
			}(lo, hi)
		}
		wg.Wait()
		return foldPolicy(pol, deltas, mtti)
	}

	rep.Baseline = simPolicy(Policy{Name: "measured-baseline"})
	for _, pol := range policies {
		res := simPolicy(pol)
		res.SavedNodeHours = rep.Baseline.LostNodeHours - res.LostNodeHours
		res.NetSavedNodeHours = res.SavedNodeHours - res.CheckpointOverheadNodeHours - res.RestartOverheadNodeHours
		for i := range res.ByScale {
			res.ByScale[i].SavedNodeHours = rep.Baseline.ByScale[i].LostNodeHours - res.ByScale[i].LostNodeHours
		}
		rep.Policies = append(rep.Policies, res)
	}
	return rep, nil
}

// measuredRows renders the measured outcome breakdown in the simulator's
// row shape. It accumulates node-hours in exactly the order
// metrics.Outcomes does, so the baseline replay matches byte for byte.
func measuredRows(runs []correlate.AttributedRun) []OutcomeRow {
	b := metrics.Outcomes(runs)
	rows := make([]OutcomeRow, len(outcomeLabels))
	for i, o := range outcomeLabels {
		rows[i] = OutcomeRow{Outcome: o.label}
		if o.idx != idxRecovered {
			rows[i].Runs = b.Counts[correlate.Outcome(o.idx)]
			rows[i].NodeHours = b.NodeHours[correlate.Outcome(o.idx)]
		}
	}
	return rows
}

// foldPolicy reduces per-run deltas into a PolicyResult, strictly in
// stream order.
func foldPolicy(pol Policy, deltas []runDelta, mtti mttiTable) PolicyResult {
	res := PolicyResult{Name: pol.Name, Policy: pol}
	var counts [numOutcomes]int
	var nodeHours [numOutcomes]float64
	byScale := make([]scaleAgg, len(mtti.buckets))
	for i := range deltas {
		d := &deltas[i]
		counts[d.outcome]++
		nodeHours[d.outcome] += d.nh
		res.UsefulNodeHours += d.useful
		res.LostNodeHours += d.lost
		res.BankedNodeHours += d.banked
		res.CheckpointOverheadNodeHours += d.ckptOv
		res.RestartOverheadNodeHours += d.restartOv
		res.ConsumedNodeHours += d.consumed
		res.RecoveryDelayHours += d.delay
		res.RetriesAttempted += d.attempts
		if d.recovered {
			res.RunsRecovered++
		}
		if d.detected {
			res.RunsDetected++
		}
		if d.bucket >= 0 {
			agg := &byScale[d.bucket]
			agg.runs++
			agg.lost += d.lost
			if d.outcome == int(correlate.OutcomeSystemFailure) || d.outcome == idxRecovered {
				agg.interrupts++
			}
			if d.recovered {
				agg.recovered++
			}
		}
	}
	if res.ConsumedNodeHours > 0 {
		res.GoodputFraction = res.UsefulNodeHours / res.ConsumedNodeHours
	}
	res.Outcomes = make([]OutcomeRow, len(outcomeLabels))
	for i, o := range outcomeLabels {
		res.Outcomes[i] = OutcomeRow{Outcome: o.label, Runs: counts[o.idx], NodeHours: nodeHours[o.idx]}
	}
	res.ByScale = make([]ScaleRow, len(mtti.buckets))
	for i, b := range mtti.buckets {
		m := mtti.global
		if b.Interrupts > 0 {
			m = b.MTTIHours
		}
		tau, err := intervalHours(pol, m)
		if err != nil {
			tau = 0
		}
		res.ByScale[i] = ScaleRow{
			Lo: b.Lo, Hi: b.Hi,
			Label:         bucketLabel(b.Lo, b.Hi),
			Runs:          byScale[i].runs,
			Interrupts:    byScale[i].interrupts,
			MTTIHours:     b.MTTIHours,
			TauHours:      tau,
			RunsRecovered: byScale[i].recovered,
			LostNodeHours: byScale[i].lost,
		}
	}
	return res
}

// scaleAgg accumulates one W3 bucket during the fold.
type scaleAgg struct {
	runs, interrupts, recovered int
	lost                        float64
}

// bucketLabel matches metrics.ScaleBucket.Label.
func bucketLabel(lo, hi int) string {
	if hi-lo == 1 {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi-1)
}

// SilentCandidates counts the detection counterfactual's target
// population: hybrid-node (XK) runs the measured attribution blamed on
// the USER. DetectFraction draws against exactly this population.
func SilentCandidates(runs []correlate.AttributedRun) int {
	var n int
	for _, r := range runs {
		if r.Class == machine.ClassXK && r.Outcome == correlate.OutcomeUserFailure {
			n++
		}
	}
	return n
}
