// Package report renders experiment results as aligned ASCII tables and CSV,
// the formats the experiment harness and CLI print. A Table is deliberately
// dumb — strings only — so every experiment controls its own numeric
// formatting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact (a paper table or the data
// series behind a figure).
type Table struct {
	// ID is the experiment identifier ("E4"), Title the human caption.
	ID    string
	Title string
	// Columns are the header cells; every row must have the same arity.
	Columns []string
	Rows    [][]string
	// Notes are free-form footnotes (anchors, caveats, parameters).
	Notes []string
}

// AddRow appends a row, formatting each cell with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Validate checks structural consistency.
func (t *Table) Validate() error {
	if t.ID == "" || t.Title == "" {
		return fmt.Errorf("report: table needs ID and Title")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("report: table %s has no columns", t.ID)
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("report: table %s row %d has %d cells, want %d", t.ID, i, len(r), len(t.Columns))
		}
	}
	return nil
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.Grow(256)
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvEscape quotes a cell when needed per RFC 4180.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// RenderCSV writes the table as CSV (header row first; notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		escaped := make([]string, len(r))
		for i, cell := range r {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Fmt helpers shared by the experiments.

// Pct formats a ratio as a percentage with two decimals.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// F3 formats with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// F1 formats with one decimal.
func F1(x float64) string { return fmt.Sprintf("%.1f", x) }

// Count formats an integer with thousands separators.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 || (s[0] == '-' && len(s) <= 4) {
		return s
	}
	var b strings.Builder
	start := 0
	if s[0] == '-' {
		b.WriteByte('-')
		start = 1
	}
	digits := s[start:]
	lead := len(digits) % 3
	if lead > 0 {
		b.WriteString(digits[:lead])
		if len(digits) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(digits); i += 3 {
		b.WriteString(digits[i : i+3])
		if i+3 < len(digits) {
			b.WriteByte(',')
		}
	}
	return b.String()
}
