package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Outcome breakdown",
		Columns: []string{"outcome", "runs", "share"},
		Notes:   []string{"anchor: 1.53%"},
	}
	t.AddRow("SUCCESS", 100, Pct(0.75))
	t.AddRow("SYSTEM", 2, Pct(0.0153))
	return t
}

func TestRenderASCII(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E2", "Outcome breakdown", "SUCCESS", "1.53%", "note: anchor"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + separator + 2 rows + 1 note + title line.
	if len(lines) != 6 {
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestRenderCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d csv lines", len(lines))
	}
	if lines[0] != "outcome,runs,share" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Columns: []string{"a"}}
	tbl.AddRow(`va"l,ue`)
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"va""l,ue"`) {
		t.Errorf("bad escaping: %q", b.String())
	}
}

func TestRenderMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| outcome | runs | share |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Columns: []string{"a"}}
	tbl.AddRow("x|y")
	var b strings.Builder
	if err := tbl.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %q", b.String())
	}
}

func TestValidate(t *testing.T) {
	bad := &Table{ID: "", Title: "t", Columns: []string{"a"}}
	if err := bad.Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	bad2 := &Table{ID: "X", Title: "t"}
	if err := bad2.Validate(); err == nil {
		t.Error("no columns accepted")
	}
	bad3 := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	bad3.AddRow("only one")
	if err := bad3.Validate(); err == nil {
		t.Error("ragged row accepted")
	}
	var b strings.Builder
	if err := bad3.Render(&b); err == nil {
		t.Error("Render of invalid table succeeded")
	}
	if err := bad3.RenderCSV(&b); err == nil {
		t.Error("RenderCSV of invalid table succeeded")
	}
	if err := bad3.RenderMarkdown(&b); err == nil {
		t.Error("RenderMarkdown of invalid table succeeded")
	}
}

func TestCount(t *testing.T) {
	tests := []struct {
		give int
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1234567, "1,234,567"},
		{-42, "-42"},
		{-1234, "-1,234"},
		{100, "100"},
		{1000000, "1,000,000"},
	}
	for _, tt := range tests {
		if got := Count(tt.give); got != tt.want {
			t.Errorf("Count(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := Pct(0.0153); got != "1.53%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F3(1.23456); got != "1.235" {
		t.Errorf("F3 = %q", got)
	}
	if got := F1(1.26); got != "1.3" {
		t.Errorf("F1 = %q", got)
	}
}
