// Package scenario is a small hypothesis-style harness for simulation
// test suites. It enforces the discipline the scenario suites follow:
// a hypothesis varies exactly ONE dimension, replicates every point
// across MULTIPLE seeds, and asserts its PRECONDITIONS on the dataset
// before asserting anything about outcomes — so a hypothesis that holds
// vacuously (no system failures to recover, no hybrid candidates to
// detect) fails loudly instead of passing silently.
package scenario

import (
	"fmt"
	"testing"
)

// Case is one evaluation point: one value of the varied dimension paired
// with one replication seed.
type Case struct {
	// Value is the dimension value under test (its display form).
	Value string
	// Index is the value's position in Hypothesis.Values, for tests that
	// compare adjacent points (monotonicity and the like).
	Index int
	// Seed is the replication seed.
	Seed int64
}

// Hypothesis is one falsifiable claim about the system under simulation.
type Hypothesis struct {
	// Name labels the claim ("retry-limit-monotone").
	Name string
	// Dimension names the single varied dimension; Values are its points
	// in sweep order (at least two — a hypothesis must vary something).
	Dimension string
	Values    []string
	// Seeds are the replication seeds (at least two — a hypothesis must
	// hold across seeds, not at one lucky draw).
	Seeds []int64
	// Precondition is asserted for every case before Check runs. It must
	// verify the dataset can falsify the claim at all.
	Precondition func(c Case) error
	// Check asserts the claim at one case.
	Check func(c Case) error
}

// validate enforces the harness discipline.
func (h Hypothesis) validate() error {
	if h.Name == "" {
		return fmt.Errorf("scenario: hypothesis needs a name")
	}
	if h.Dimension == "" {
		return fmt.Errorf("scenario: hypothesis %q needs a dimension name", h.Name)
	}
	if len(h.Values) < 2 {
		return fmt.Errorf("scenario: hypothesis %q varies %d value(s) of %s; need >= 2", h.Name, len(h.Values), h.Dimension)
	}
	if len(h.Seeds) < 2 {
		return fmt.Errorf("scenario: hypothesis %q replicates across %d seed(s); need >= 2", h.Name, len(h.Seeds))
	}
	seen := map[string]bool{}
	for _, v := range h.Values {
		if seen[v] {
			return fmt.Errorf("scenario: hypothesis %q repeats value %q", h.Name, v)
		}
		seen[v] = true
	}
	if h.Precondition == nil {
		return fmt.Errorf("scenario: hypothesis %q has no precondition; assert what makes it falsifiable", h.Name)
	}
	if h.Check == nil {
		return fmt.Errorf("scenario: hypothesis %q has no check", h.Name)
	}
	return nil
}

// Run evaluates the hypothesis as a subtest per (value, seed) case.
// Harness-discipline violations and precondition failures are fatal.
func Run(t *testing.T, h Hypothesis) {
	t.Helper()
	if err := h.validate(); err != nil {
		t.Fatal(err)
	}
	t.Run(h.Name, func(t *testing.T) {
		for i, v := range h.Values {
			for _, seed := range h.Seeds {
				c := Case{Value: v, Index: i, Seed: seed}
				t.Run(fmt.Sprintf("%s=%s/seed=%d", h.Dimension, v, seed), func(t *testing.T) {
					if err := h.Precondition(c); err != nil {
						t.Fatalf("precondition: %v", err)
					}
					if err := h.Check(c); err != nil {
						t.Errorf("hypothesis %q falsified: %v", h.Name, err)
					}
				})
			}
		}
	})
}
