package scenario

import (
	"fmt"
	"strings"
	"testing"
)

func okHypothesis() Hypothesis {
	return Hypothesis{
		Name:         "ok",
		Dimension:    "dim",
		Values:       []string{"a", "b"},
		Seeds:        []int64{1, 2},
		Precondition: func(Case) error { return nil },
		Check:        func(Case) error { return nil },
	}
}

func TestValidateDiscipline(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Hypothesis)
		want   string
	}{
		{"no name", func(h *Hypothesis) { h.Name = "" }, "needs a name"},
		{"no dimension", func(h *Hypothesis) { h.Dimension = "" }, "needs a dimension"},
		{"one value", func(h *Hypothesis) { h.Values = []string{"a"} }, "need >= 2"},
		{"one seed", func(h *Hypothesis) { h.Seeds = []int64{1} }, "need >= 2"},
		{"dup value", func(h *Hypothesis) { h.Values = []string{"a", "a"} }, "repeats value"},
		{"no precondition", func(h *Hypothesis) { h.Precondition = nil }, "no precondition"},
		{"no check", func(h *Hypothesis) { h.Check = nil }, "no check"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := okHypothesis()
			tt.mutate(&h)
			err := h.validate()
			if err == nil {
				t.Fatal("discipline violation accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	if err := okHypothesis().validate(); err != nil {
		t.Errorf("valid hypothesis rejected: %v", err)
	}
}

func TestRunCoversEveryCase(t *testing.T) {
	h := okHypothesis()
	seen := map[Case]int{}
	h.Check = func(c Case) error {
		seen[c]++
		return nil
	}
	Run(t, h)
	if len(seen) != len(h.Values)*len(h.Seeds) {
		t.Fatalf("covered %d cases, want %d", len(seen), len(h.Values)*len(h.Seeds))
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("case %+v ran %d times", c, n)
		}
		if c.Value != h.Values[c.Index] {
			t.Errorf("case %+v has mismatched value/index", c)
		}
	}
}

func TestRunReportsFalsification(t *testing.T) {
	h := okHypothesis()
	h.Check = func(c Case) error {
		if c.Value == "b" {
			return fmt.Errorf("claim fails at %s", c.Value)
		}
		return nil
	}
	// Run in a throwaway subtest recorder so the failure doesn't fail us.
	result := testing.RunTests(func(pat, str string) (bool, error) { return true, nil },
		[]testing.InternalTest{{
			Name: "probe",
			F:    func(t *testing.T) { Run(t, h) },
		}})
	if result {
		t.Error("falsified hypothesis passed")
	}
}
