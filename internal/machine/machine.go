// Package machine models the physical structure of a Cray XE/XK system in
// the style of Blue Waters: cabinets arranged in a column/row grid, three
// cages (chassis) per cabinet, eight blades per cage, four compute nodes per
// blade, and one Gemini ASIC per node pair. The package provides the cname
// addressing scheme used throughout Cray logs (for example "c12-3c2s7n1"),
// the XE (CPU) / XK (CPU+GPU) node partitioning, and the failure-domain
// groupings (blade, Gemini pair, cabinet) that spatial log coalescing relies
// on.
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Structural constants of a Cray XE/XK cabinet.
const (
	CagesPerCabinet = 3
	BladesPerCage   = 8
	NodesPerBlade   = 4
	NodesPerCabinet = CagesPerCabinet * BladesPerCage * NodesPerBlade // 96

	// NodesPerGemini is the number of compute nodes sharing one Gemini
	// network ASIC. A blade carries two Gemini ASICs, each wired to a
	// pair of nodes; a Gemini failure takes both of its nodes off the
	// high-speed network.
	NodesPerGemini = 2
)

// NodeClass distinguishes the hardware flavour of a node.
type NodeClass int

const (
	// ClassXE is a dual-socket CPU-only compute node (Cray XE6).
	ClassXE NodeClass = iota + 1
	// ClassXK is a hybrid CPU+GPU compute node (Cray XK7).
	ClassXK
	// ClassService is a service/IO node (MOM, LNET router, boot, SDB).
	ClassService
)

// String returns the conventional short name of the class.
func (c NodeClass) String() string {
	switch c {
	case ClassXE:
		return "XE"
	case ClassXK:
		return "XK"
	case ClassService:
		return "SERVICE"
	default:
		return "UNKNOWN(" + strconv.Itoa(int(c)) + ")"
	}
}

// NodeID is a dense machine-wide node index in [0, NumNodes).
type NodeID int32

// Cname is a Cray component name addressing a node:
// c<col>-<row>c<cage>s<slot>n<node>.
type Cname struct {
	Col  int // cabinet column
	Row  int // cabinet row
	Cage int // chassis within cabinet, 0..2
	Slot int // blade slot within cage, 0..7
	Node int // node within blade, 0..3
}

// String renders the cname in log form, e.g. "c12-3c2s7n1".
func (c Cname) String() string {
	var b strings.Builder
	b.Grow(16)
	b.WriteByte('c')
	b.WriteString(strconv.Itoa(c.Col))
	b.WriteByte('-')
	b.WriteString(strconv.Itoa(c.Row))
	b.WriteByte('c')
	b.WriteString(strconv.Itoa(c.Cage))
	b.WriteByte('s')
	b.WriteString(strconv.Itoa(c.Slot))
	b.WriteByte('n')
	b.WriteString(strconv.Itoa(c.Node))
	return b.String()
}

// ParseCname parses a full node cname such as "c12-3c2s7n1".
func ParseCname(s string) (Cname, error) {
	var c Cname
	rest, ok := strings.CutPrefix(s, "c")
	if !ok {
		return c, fmt.Errorf("cname %q: missing leading 'c'", s)
	}
	colStr, rest, ok := strings.Cut(rest, "-")
	if !ok {
		return c, fmt.Errorf("cname %q: missing '-'", s)
	}
	rowStr, rest, ok := strings.Cut(rest, "c")
	if !ok {
		return c, fmt.Errorf("cname %q: missing cage marker", s)
	}
	cageStr, rest, ok := strings.Cut(rest, "s")
	if !ok {
		return c, fmt.Errorf("cname %q: missing slot marker", s)
	}
	slotStr, nodeStr, ok := strings.Cut(rest, "n")
	if !ok {
		return c, fmt.Errorf("cname %q: missing node marker", s)
	}
	var err error
	if c.Col, err = strconv.Atoi(colStr); err != nil {
		return c, fmt.Errorf("cname %q: column: %w", s, err)
	}
	if c.Row, err = strconv.Atoi(rowStr); err != nil {
		return c, fmt.Errorf("cname %q: row: %w", s, err)
	}
	if c.Cage, err = strconv.Atoi(cageStr); err != nil {
		return c, fmt.Errorf("cname %q: cage: %w", s, err)
	}
	if c.Slot, err = strconv.Atoi(slotStr); err != nil {
		return c, fmt.Errorf("cname %q: slot: %w", s, err)
	}
	if c.Node, err = strconv.Atoi(nodeStr); err != nil {
		return c, fmt.Errorf("cname %q: node: %w", s, err)
	}
	if c.Cage < 0 || c.Cage >= CagesPerCabinet {
		return c, fmt.Errorf("cname %q: cage %d out of range", s, c.Cage)
	}
	if c.Slot < 0 || c.Slot >= BladesPerCage {
		return c, fmt.Errorf("cname %q: slot %d out of range", s, c.Slot)
	}
	if c.Node < 0 || c.Node >= NodesPerBlade {
		return c, fmt.Errorf("cname %q: node %d out of range", s, c.Node)
	}
	if c.Col < 0 || c.Row < 0 {
		return c, fmt.Errorf("cname %q: negative cabinet coordinate", s)
	}
	return c, nil
}

// BladeID identifies a blade (a four-node field-replaceable unit and the
// spatial failure domain for voltage faults and mezzanine failures).
type BladeID int32

// GeminiID identifies a Gemini ASIC (a two-node network failure domain).
type GeminiID int32

// Node is one compute or service node.
type Node struct {
	ID     NodeID
	Cname  Cname
	Class  NodeClass
	Blade  BladeID
	Gemini GeminiID
	// Torus is the (x,y,z) coordinate of the node's Gemini ASIC in the
	// 3D torus.
	Torus [3]int
}

// Config sizes a machine. The zero value is not valid; use BlueWaters or fill
// every field.
type Config struct {
	// Cols and Rows give the cabinet grid.
	Cols, Rows int
	// XKCabinets is the number of cabinet columns (counted from the
	// highest column index downward) populated with XK hybrid blades.
	// All remaining compute cabinets hold XE blades.
	XKCabinets int
	// ServiceNodesPerCabinet reserves this many node slots per XE cabinet
	// (taken from cage 0, slot 0 upward) as service nodes. XK cabinets are
	// fully populated with compute nodes, matching the measured system
	// where the hybrid partition is exactly 4,224 XK nodes.
	ServiceNodesPerCabinet int
}

// BlueWaters returns the configuration of the measured system: 288 cabinets
// in a 24x12 grid, 27,648 node slots, with 44 cabinets of XK hybrid nodes
// (4,224 XK compute nodes) and a small service partition, leaving roughly
// 22,640 XE compute nodes — matching the scales reported in the paper
// (XE applications up to 22,000 nodes; XK applications up to 4,224 nodes).
func BlueWaters() Config {
	return Config{
		Cols:                   24,
		Rows:                   12,
		XKCabinets:             44,
		ServiceNodesPerCabinet: 1,
	}
}

// Small returns a scaled-down configuration useful for tests and examples:
// 16 cabinets (1,536 node slots) with 3 XK cabinets.
func Small() Config {
	return Config{
		Cols:                   4,
		Rows:                   4,
		XKCabinets:             3,
		ServiceNodesPerCabinet: 1,
	}
}

// Topology is an immutable description of every node in the machine.
type Topology struct {
	cfg     Config
	nodes   []Node
	byCname map[Cname]NodeID
	xe      []NodeID
	xk      []NodeID
	service []NodeID
	blades  int
	geminis int
}

// New builds the topology for cfg. It validates the configuration and
// assigns dense node, blade and Gemini IDs in cname order.
func New(cfg Config) (*Topology, error) {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("machine: cabinet grid %dx%d is empty", cfg.Cols, cfg.Rows)
	}
	cabinets := cfg.Cols * cfg.Rows
	if cfg.XKCabinets < 0 || cfg.XKCabinets > cabinets {
		return nil, fmt.Errorf("machine: %d XK cabinets outside [0,%d]", cfg.XKCabinets, cabinets)
	}
	if cfg.ServiceNodesPerCabinet < 0 || cfg.ServiceNodesPerCabinet > NodesPerCabinet {
		return nil, fmt.Errorf("machine: %d service nodes per cabinet outside [0,%d]",
			cfg.ServiceNodesPerCabinet, NodesPerCabinet)
	}

	total := cabinets * NodesPerCabinet
	t := &Topology{
		cfg:     cfg,
		nodes:   make([]Node, 0, total),
		byCname: make(map[Cname]NodeID, total),
		blades:  cabinets * CagesPerCabinet * BladesPerCage,
		geminis: total / NodesPerGemini,
	}

	// Cabinets with linear index >= cabinets-XKCabinets hold XK blades.
	xkStart := cabinets - cfg.XKCabinets
	for col := 0; col < cfg.Cols; col++ {
		for row := 0; row < cfg.Rows; row++ {
			cabIdx := col*cfg.Rows + row
			class := ClassXE
			serviceSlots := cfg.ServiceNodesPerCabinet
			if cabIdx >= xkStart {
				class = ClassXK
				serviceSlots = 0
			}
			t.addCabinet(col, row, cabIdx, class, serviceSlots)
		}
	}
	return t, nil
}

func (t *Topology) addCabinet(col, row, cabIdx int, class NodeClass, serviceSlots int) {
	for cage := 0; cage < CagesPerCabinet; cage++ {
		for slot := 0; slot < BladesPerCage; slot++ {
			bladeIdx := BladeID((cabIdx*CagesPerCabinet+cage)*BladesPerCage + slot)
			for n := 0; n < NodesPerBlade; n++ {
				id := NodeID(len(t.nodes))
				cn := Cname{Col: col, Row: row, Cage: cage, Slot: slot, Node: n}
				nodeClass := class
				// Service nodes occupy the first slots of cage 0.
				if cage == 0 && slot*NodesPerBlade+n < serviceSlots {
					nodeClass = ClassService
				}
				gem := GeminiID(int(id) / NodesPerGemini)
				node := Node{
					ID:     id,
					Cname:  cn,
					Class:  nodeClass,
					Blade:  bladeIdx,
					Gemini: gem,
					Torus:  torusCoord(int(gem), t.cfg),
				}
				t.nodes = append(t.nodes, node)
				t.byCname[cn] = id
				switch nodeClass {
				case ClassXE:
					t.xe = append(t.xe, id)
				case ClassXK:
					t.xk = append(t.xk, id)
				case ClassService:
					t.service = append(t.service, id)
				}
			}
		}
	}
}

// torusCoord maps a Gemini index onto a 3D torus whose X dimension follows
// cabinet columns, Y follows rows+cages, and Z follows slots and node pairs.
// The exact embedding is not material to the analysis; what matters is that
// nearby blades map to nearby torus coordinates, as on the real machine.
func torusCoord(gemini int, cfg Config) [3]int {
	const geminisPerCabinet = NodesPerCabinet / NodesPerGemini // 48
	const geminisPerCage = geminisPerCabinet / CagesPerCabinet // 16
	cab := gemini / geminisPerCabinet
	within := gemini % geminisPerCabinet
	col := cab / cfg.Rows
	row := cab % cfg.Rows
	return [3]int{
		col,
		row*CagesPerCabinet + within/geminisPerCage,
		within % geminisPerCage,
	}
}

// NumNodes returns the total number of node slots (all classes).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumBlades returns the number of blades.
func (t *Topology) NumBlades() int { return t.blades }

// NumGeminis returns the number of Gemini ASICs.
func (t *Topology) NumGeminis() int { return t.geminis }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		return Node{}, fmt.Errorf("machine: node id %d outside [0,%d)", id, len(t.nodes))
	}
	return t.nodes[id], nil
}

// MustNode is Node for callers that have already validated the ID; it panics
// on an out-of-range ID, which indicates a programming error.
func (t *Topology) MustNode(id NodeID) Node {
	n, err := t.Node(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Lookup resolves a cname to a node ID.
func (t *Topology) Lookup(c Cname) (NodeID, bool) {
	id, ok := t.byCname[c]
	return id, ok
}

// LookupString parses and resolves a cname string.
func (t *Topology) LookupString(s string) (NodeID, error) {
	c, err := ParseCname(s)
	if err != nil {
		return 0, err
	}
	id, ok := t.Lookup(c)
	if !ok {
		return 0, fmt.Errorf("machine: cname %q not present in topology", s)
	}
	return id, nil
}

// XENodes returns the IDs of all XE compute nodes. The returned slice is a
// copy and safe to modify.
func (t *Topology) XENodes() []NodeID { return copyIDs(t.xe) }

// XKNodes returns the IDs of all XK compute nodes.
func (t *Topology) XKNodes() []NodeID { return copyIDs(t.xk) }

// ServiceNodes returns the IDs of all service nodes.
func (t *Topology) ServiceNodes() []NodeID { return copyIDs(t.service) }

// NumXE and NumXK report partition sizes without copying.
func (t *Topology) NumXE() int { return len(t.xe) }

// NumXK reports the number of XK compute nodes.
func (t *Topology) NumXK() int { return len(t.xk) }

// NumService reports the number of service nodes.
func (t *Topology) NumService() int { return len(t.service) }

// BladeNodes returns the four node IDs on a blade.
func (t *Topology) BladeNodes(b BladeID) ([]NodeID, error) {
	if int(b) < 0 || int(b) >= t.blades {
		return nil, fmt.Errorf("machine: blade %d outside [0,%d)", b, t.blades)
	}
	base := NodeID(int(b) * NodesPerBlade)
	ids := make([]NodeID, NodesPerBlade)
	for i := range ids {
		ids[i] = base + NodeID(i)
	}
	return ids, nil
}

// GeminiNodes returns the two node IDs served by a Gemini ASIC.
func (t *Topology) GeminiNodes(g GeminiID) ([]NodeID, error) {
	if int(g) < 0 || int(g) >= t.geminis {
		return nil, fmt.Errorf("machine: gemini %d outside [0,%d)", g, t.geminis)
	}
	base := NodeID(int(g) * NodesPerGemini)
	return []NodeID{base, base + 1}, nil
}

// CabinetOf returns the linear cabinet index of a node.
func (t *Topology) CabinetOf(id NodeID) (int, error) {
	n, err := t.Node(id)
	if err != nil {
		return 0, err
	}
	return n.Cname.Col*t.cfg.Rows + n.Cname.Row, nil
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

func copyIDs(src []NodeID) []NodeID {
	out := make([]NodeID, len(src))
	copy(out, src)
	return out
}
