package machine

import "testing"

// FuzzParseCname checks that the cname parser never panics and that every
// accepted input round-trips through String.
func FuzzParseCname(f *testing.F) {
	for _, seed := range []string{
		"c0-0c0s0n0", "c12-3c2s7n1", "c23-11c1s4n3",
		"", "c", "c--", "c0-0c3s0n0", "c1-1c1s1n1 trailing",
		"c999999999999999999-0c0s0n0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCname(s)
		if err != nil {
			return
		}
		back, err := ParseCname(c.String())
		if err != nil {
			t.Fatalf("accepted %q -> %v but reparse failed: %v", s, c, err)
		}
		if back != c {
			t.Fatalf("round trip %q: %v != %v", s, back, c)
		}
	})
}
