package machine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseCnameRoundTrip(t *testing.T) {
	tests := []struct {
		give string
		want Cname
	}{
		{"c0-0c0s0n0", Cname{0, 0, 0, 0, 0}},
		{"c12-3c2s7n1", Cname{12, 3, 2, 7, 1}},
		{"c23-11c1s4n3", Cname{23, 11, 1, 4, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseCname(tt.give)
			if err != nil {
				t.Fatalf("ParseCname(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("ParseCname(%q) = %+v, want %+v", tt.give, got, tt.want)
			}
			if s := got.String(); s != tt.give {
				t.Errorf("String() = %q, want %q", s, tt.give)
			}
		})
	}
}

func TestParseCnameErrors(t *testing.T) {
	bad := []string{
		"",
		"x0-0c0s0n0",
		"c0c0s0n0",
		"c0-0s0n0",
		"c0-0c0n0",
		"c0-0c0s0",
		"c0-0c3s0n0",  // cage out of range
		"c0-0c0s8n0",  // slot out of range
		"c0-0c0s0n4",  // node out of range
		"c-1-0c0s0n0", // negative column
		"ca-0c0s0n0",  // non-numeric
	}
	for _, s := range bad {
		if _, err := ParseCname(s); err == nil {
			t.Errorf("ParseCname(%q) succeeded, want error", s)
		}
	}
}

func TestParseCnamePropertyRoundTrip(t *testing.T) {
	f := func(col, row uint8, cage, slot, node uint8) bool {
		c := Cname{
			Col:  int(col),
			Row:  int(row),
			Cage: int(cage % CagesPerCabinet),
			Slot: int(slot % BladesPerCage),
			Node: int(node % NodesPerBlade),
		}
		got, err := ParseCname(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlueWatersShape(t *testing.T) {
	top, err := New(BlueWaters())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := top.NumNodes(), 288*NodesPerCabinet; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	// The paper scales XE applications to 22,000 nodes and XK to 4,224.
	if top.NumXE() < 22000 {
		t.Errorf("NumXE = %d, want >= 22000", top.NumXE())
	}
	if top.NumXK() < 4224 {
		t.Errorf("NumXK = %d, want >= 4224", top.NumXK())
	}
	if top.NumService() == 0 {
		t.Error("NumService = 0, want > 0")
	}
	if got, want := top.NumXE()+top.NumXK()+top.NumService(), top.NumNodes(); got != want {
		t.Errorf("partition sizes sum to %d, want %d", got, want)
	}
	if got, want := top.NumGeminis(), top.NumNodes()/NodesPerGemini; got != want {
		t.Errorf("NumGeminis = %d, want %d", got, want)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"negative xk", Config{Cols: 2, Rows: 2, XKCabinets: -1}},
		{"too many xk", Config{Cols: 2, Rows: 2, XKCabinets: 5}},
		{"service overflow", Config{Cols: 2, Rows: 2, ServiceNodesPerCabinet: NodesPerCabinet + 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Errorf("New(%+v) succeeded, want error", tt.cfg)
			}
		})
	}
}

func TestLookupConsistency(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < top.NumNodes(); i++ {
		id := NodeID(i)
		n := top.MustNode(id)
		if n.ID != id {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		back, ok := top.Lookup(n.Cname)
		if !ok || back != id {
			t.Fatalf("Lookup(%v) = (%d,%v), want (%d,true)", n.Cname, back, ok, id)
		}
		got, err := top.LookupString(n.Cname.String())
		if err != nil || got != id {
			t.Fatalf("LookupString(%q) = (%d,%v), want (%d,nil)", n.Cname.String(), got, err, id)
		}
	}
}

func TestBladeAndGeminiGrouping(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < top.NumBlades(); b++ {
		ids, err := top.BladeNodes(BladeID(b))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != NodesPerBlade {
			t.Fatalf("blade %d has %d nodes", b, len(ids))
		}
		for _, id := range ids {
			if got := top.MustNode(id).Blade; got != BladeID(b) {
				t.Fatalf("node %d reports blade %d, want %d", id, got, b)
			}
		}
	}
	for g := 0; g < top.NumGeminis(); g++ {
		ids, err := top.GeminiNodes(GeminiID(g))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != NodesPerGemini {
			t.Fatalf("gemini %d has %d nodes", g, len(ids))
		}
		for _, id := range ids {
			if got := top.MustNode(id).Gemini; got != GeminiID(g) {
				t.Fatalf("node %d reports gemini %d, want %d", id, got, g)
			}
		}
	}
}

func TestBladeAndGeminiBounds(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := top.BladeNodes(BladeID(top.NumBlades())); err == nil {
		t.Error("BladeNodes out of range succeeded")
	}
	if _, err := top.BladeNodes(-1); err == nil {
		t.Error("BladeNodes(-1) succeeded")
	}
	if _, err := top.GeminiNodes(GeminiID(top.NumGeminis())); err == nil {
		t.Error("GeminiNodes out of range succeeded")
	}
	if _, err := top.Node(NodeID(top.NumNodes())); err == nil {
		t.Error("Node out of range succeeded")
	}
	if _, err := top.Node(-1); err == nil {
		t.Error("Node(-1) succeeded")
	}
}

func TestCabinetOf(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := top.Config()
	for i := 0; i < top.NumNodes(); i += 7 {
		id := NodeID(i)
		cab, err := top.CabinetOf(id)
		if err != nil {
			t.Fatal(err)
		}
		n := top.MustNode(id)
		if want := n.Cname.Col*cfg.Rows + n.Cname.Row; cab != want {
			t.Fatalf("CabinetOf(%d) = %d, want %d", id, cab, want)
		}
	}
	if _, err := top.CabinetOf(-1); err == nil {
		t.Error("CabinetOf(-1) succeeded")
	}
}

func TestXKNodesLiveInXKCabinets(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := top.Config()
	cabinets := cfg.Cols * cfg.Rows
	xkStart := cabinets - cfg.XKCabinets
	for _, id := range top.XKNodes() {
		cab, err := top.CabinetOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if cab < xkStart {
			t.Fatalf("XK node %d in cabinet %d, before XK range start %d", id, cab, xkStart)
		}
	}
	for _, id := range top.XENodes() {
		cab, err := top.CabinetOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if cab >= xkStart {
			t.Fatalf("XE node %d in cabinet %d, inside XK range", id, cab)
		}
	}
}

func TestReturnedSlicesAreCopies(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	a := top.XENodes()
	if len(a) == 0 {
		t.Fatal("no XE nodes")
	}
	a[0] = -999
	b := top.XENodes()
	if b[0] == -999 {
		t.Error("XENodes exposes internal slice")
	}
}

func TestTorusCoordsNonNegativeAndBounded(t *testing.T) {
	top, err := New(BlueWaters())
	if err != nil {
		t.Fatal(err)
	}
	cfg := top.Config()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		id := NodeID(rng.Intn(top.NumNodes()))
		n := top.MustNode(id)
		if n.Torus[0] < 0 || n.Torus[0] >= cfg.Cols {
			t.Fatalf("node %d torus X %d outside [0,%d)", id, n.Torus[0], cfg.Cols)
		}
		if n.Torus[1] < 0 || n.Torus[1] >= cfg.Rows*CagesPerCabinet {
			t.Fatalf("node %d torus Y %d out of range", id, n.Torus[1])
		}
		if n.Torus[2] < 0 || n.Torus[2] >= 16 {
			t.Fatalf("node %d torus Z %d out of range", id, n.Torus[2])
		}
	}
}

func TestGeminiPairsShareTorusCoordinate(t *testing.T) {
	top, err := New(Small())
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < top.NumGeminis(); g++ {
		ids, err := top.GeminiNodes(GeminiID(g))
		if err != nil {
			t.Fatal(err)
		}
		a, b := top.MustNode(ids[0]), top.MustNode(ids[1])
		if a.Torus != b.Torus {
			t.Fatalf("gemini %d nodes have torus %v and %v", g, a.Torus, b.Torus)
		}
	}
}

func TestNodeClassString(t *testing.T) {
	tests := []struct {
		give NodeClass
		want string
	}{
		{ClassXE, "XE"},
		{ClassXK, "XK"},
		{ClassService, "SERVICE"},
		{NodeClass(99), "UNKNOWN(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func ExampleParseCname() {
	c, err := ParseCname("c12-3c2s7n1")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(c.Col, c.Row, c.Cage, c.Slot, c.Node)
	// Output: 12 3 2 7 1
}
