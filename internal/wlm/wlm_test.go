package wlm

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleJob() Job {
	return Job{
		ID:           "123456.bw",
		User:         "alice",
		Account:      "geo_sim",
		Queue:        "normal",
		CreatedAt:    time.Date(2013, 4, 3, 10, 0, 0, 0, time.UTC),
		StartedAt:    time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC),
		EndedAt:      time.Date(2013, 4, 3, 14, 30, 0, 0, time.UTC),
		Nodes:        128,
		Walltime:     4 * time.Hour,
		UsedWalltime: 2*time.Hour + 30*time.Minute,
		ExitStatus:   0,
	}
}

func TestFormatParseRecordRoundTrip(t *testing.T) {
	rec := EndRecord(sampleJob())
	wire := FormatRecord(rec)
	got, err := ParseRecord(wire, time.UTC)
	if err != nil {
		t.Fatalf("ParseRecord(%q): %v", wire, err)
	}
	if !got.Time.Equal(rec.Time) || got.Type != rec.Type || got.JobID != rec.JobID {
		t.Errorf("header round trip: got %+v, want %+v", got, rec)
	}
	for k, v := range rec.Fields {
		if got.Fields[k] != v {
			t.Errorf("field %q = %q, want %q", k, got.Fields[k], v)
		}
	}
}

func TestFormatRecordDeterministic(t *testing.T) {
	rec := EndRecord(sampleJob())
	a := FormatRecord(rec)
	b := FormatRecord(rec)
	if a != b {
		t.Errorf("FormatRecord not deterministic:\n%s\n%s", a, b)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"04/03/2013 12:00:00;E;123.bw", // missing field section
		"not a time;E;123.bw;user=x",
		"04/03/2013 12:00:00;Z;123.bw;user=x", // bad type
		"04/03/2013 12:00:00;E;;user=x",       // empty job id
		"04/03/2013 12:00:00;E;123.bw;garbagefield",
	}
	for _, s := range bad {
		if _, err := ParseRecord(s, time.UTC); err == nil {
			t.Errorf("ParseRecord(%q) succeeded, want error", s)
		}
	}
}

func TestEventTypeValid(t *testing.T) {
	for _, typ := range []EventType{EventQueue, EventStart, EventEnd, EventAbort, EventDelete} {
		if !typ.Valid() {
			t.Errorf("%c should be valid", typ)
		}
	}
	if EventType('Z').Valid() {
		t.Error("Z should be invalid")
	}
}

func TestWalltimeRoundTrip(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "00:00:00"},
		{time.Second, "00:00:01"},
		{90 * time.Minute, "01:30:00"},
		{48*time.Hour + 5*time.Second, "48:00:05"},
		{-time.Hour, "00:00:00"}, // clamped
	}
	for _, tt := range tests {
		got := FormatWalltime(tt.d)
		if got != tt.want {
			t.Errorf("FormatWalltime(%v) = %q, want %q", tt.d, got, tt.want)
		}
		back, err := ParseWalltime(got)
		if err != nil {
			t.Fatalf("ParseWalltime(%q): %v", got, err)
		}
		wantBack := tt.d
		if wantBack < 0 {
			wantBack = 0
		}
		if back != wantBack {
			t.Errorf("round trip %v -> %q -> %v", tt.d, got, back)
		}
	}
}

func TestParseWalltimeErrors(t *testing.T) {
	for _, s := range []string{"", "1:2", "aa:00:00", "00:99:00", "00:00:61", "-1:00:00"} {
		if _, err := ParseWalltime(s); err == nil {
			t.Errorf("ParseWalltime(%q) succeeded, want error", s)
		}
	}
}

func TestWalltimePropertyRoundTrip(t *testing.T) {
	f := func(secs uint32) bool {
		d := time.Duration(secs%((1000*3600)+1)) * time.Second
		back, err := ParseWalltime(FormatWalltime(d))
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssemblerFullLifecycle(t *testing.T) {
	j := sampleJob()
	a := NewAssembler()
	for _, rec := range []Record{QueueRecord(j), StartRecord(j), EndRecord(j)} {
		if err := a.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
	jobs := a.Jobs()
	got := jobs[0]
	if got.ID != j.ID || got.User != j.User || got.Queue != j.Queue {
		t.Errorf("identity fields: got %+v", got)
	}
	if !got.StartedAt.Equal(j.StartedAt) || !got.EndedAt.Equal(j.EndedAt) || !got.CreatedAt.Equal(j.CreatedAt) {
		t.Errorf("times: got %+v", got)
	}
	if got.Nodes != j.Nodes || got.Walltime != j.Walltime || got.UsedWalltime != j.UsedWalltime {
		t.Errorf("resources: got %+v", got)
	}
	if got.ExitStatus != 0 || got.Aborted {
		t.Errorf("status: got %+v", got)
	}
}

func TestAssemblerAbort(t *testing.T) {
	j := sampleJob()
	j.ExitStatus = -11 // node failure convention
	a := NewAssembler()
	if err := a.Add(StartRecord(j)); err != nil {
		t.Fatal(err)
	}
	abort := Record{Time: j.EndedAt, Type: EventAbort, JobID: j.ID, Fields: nil}
	if err := a.Add(abort); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(EndRecord(j)); err != nil {
		t.Fatal(err)
	}
	got := a.Jobs()[0]
	if !got.Aborted {
		t.Error("Aborted not set")
	}
	if got.ExitStatus != -11 {
		t.Errorf("ExitStatus = %d, want -11", got.ExitStatus)
	}
}

func TestAssemblerRejectsEmptyJobID(t *testing.T) {
	a := NewAssembler()
	if err := a.Add(Record{Type: EventQueue}); err == nil {
		t.Error("Add with empty job id succeeded")
	}
}

func TestAssemblerSortsJobs(t *testing.T) {
	a := NewAssembler()
	base := time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)
	for i, id := range []string{"30.bw", "10.bw", "20.bw"} {
		j := sampleJob()
		j.ID = id
		j.StartedAt = base.Add(time.Duration(len("xxx")-i) * time.Hour)
		if err := a.Add(StartRecord(j)); err != nil {
			t.Fatal(err)
		}
	}
	jobs := a.Jobs()
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].StartedAt.After(jobs[i].StartedAt) {
			t.Errorf("jobs not sorted by start: %v after %v", jobs[i-1].StartedAt, jobs[i].StartedAt)
		}
	}
}

func TestWriterScannerRoundTrip(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	const n = 50
	for i := 0; i < n; i++ {
		j := sampleJob()
		j.ID = strings.Repeat("1", 1+i%3) + ".bw"
		j.StartedAt = j.StartedAt.Add(time.Duration(i) * time.Minute)
		if err := w.Write(EndRecord(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Errorf("Count = %d, want %d", w.Count(), n)
	}

	sc := NewScanner(strings.NewReader(buf.String()), time.UTC)
	var got int
	for sc.Scan() {
		got++
		if sc.Record().Type != EventEnd {
			t.Errorf("record %d type %c, want E", got, sc.Record().Type)
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if got != n {
		t.Errorf("scanned %d, want %d", got, n)
	}
	if sc.Malformed() != 0 {
		t.Errorf("Malformed = %d", sc.Malformed())
	}
}

func TestScannerSkipsNoise(t *testing.T) {
	good := FormatRecord(EndRecord(sampleJob()))
	input := "junk\n" + good + "\n\nmore junk\n" + good + "\n"
	sc := NewScanner(strings.NewReader(input), time.UTC)
	var got int
	for sc.Scan() {
		got++
	}
	if got != 2 || sc.Malformed() != 2 {
		t.Errorf("got %d records, %d malformed; want 2, 2", got, sc.Malformed())
	}
}

func TestEndRecordSignalConvention(t *testing.T) {
	j := sampleJob()
	j.ExitStatus = 256 + 9 // killed by SIGKILL
	rec := EndRecord(j)
	got, err := ParseRecord(FormatRecord(rec), time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssembler()
	if err := a.Add(got); err != nil {
		t.Fatal(err)
	}
	if st := a.Jobs()[0].ExitStatus; st != 265 {
		t.Errorf("ExitStatus = %d, want 265", st)
	}
}
