package wlm

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
)

// scanDiffLines covers the acceptance surface the byte scanner must
// reproduce bit-for-bit: canonical and non-canonical timestamps, every
// record type, last-wins duplicate keys, Unicode field separators,
// unparseable numerics (ignored, not errors), and the malformed classes
// from wlmErrorCases.
var scanDiffLines = []string{
	"04/03/2013 12:00:01;E;9.bw;Exit_status=0 user=alice",
	"04/03/2013 12:00:00;S;123.bw;user=bob account=acct queue=debug Resource_List.nodect=128 Resource_List.walltime=12:00:00 ctime=1364995000 start=1364996000",
	"04/03/2013 13:00:00;E;123.bw;user=bob end=1365000000 resources_used.walltime=02:30:15 Exit_status=265",
	"04/03/2013 13:00:00;A;123.bw;",
	"4/3/2013 2:00:00;E;77.bw;user=x",                    // non-canonical stamp: fallback parse
	"04/03/2013 12:00:00;E;55.bw;user=a user=b",          // duplicate key: last wins
	"04/03/2013 12:00:00;E;56.bw;user=a\u00a0account=b",  // NBSP separates fields like strings.Fields
	"04/03/2013 12:00:00;E;56b.bw;user=a\u2003account=b", // EM SPACE likewise
	"04/03/2013 12:00:00;E;57.bw;Resource_List.nodect=notanum Exit_status=99999999999999999999",
	"04/03/2013 12:00:00;E;58.bw;Resource_List.walltime=1:2:3 resources_used.walltime=100:00:00",
	"04/03/2013 12:00:00;E;59.bw;Exit_status=-11 start= ctime=x",
	"04/03/2013 12:00:00;Q;60.bw;queue=high",
	"", "   ", "\t",
}

func scanRecordsEqual(t *testing.T, line string, got, want ScanRecord) {
	t.Helper()
	fail := func(field string, g, w any) {
		t.Errorf("CheckLineBytes(%q) %s = %v, string path %v", line, field, g, w)
	}
	if !got.Time.Equal(want.Time) {
		fail("Time", got.Time, want.Time)
	}
	if got.Type != want.Type {
		fail("Type", got.Type, want.Type)
	}
	if string(got.JobID) != string(want.JobID) {
		fail("JobID", string(got.JobID), string(want.JobID))
	}
	if got.Has != want.Has {
		fail("Has", got.Has, want.Has)
	}
	if string(got.User) != string(want.User) || string(got.Account) != string(want.Account) || string(got.Queue) != string(want.Queue) {
		fail("identity fields", [3]string{string(got.User), string(got.Account), string(got.Queue)},
			[3]string{string(want.User), string(want.Account), string(want.Queue)})
	}
	if !got.CreatedAt.Equal(want.CreatedAt) || !got.StartedAt.Equal(want.StartedAt) || !got.EndedAt.Equal(want.EndedAt) {
		fail("times", [3]time.Time{got.CreatedAt, got.StartedAt, got.EndedAt},
			[3]time.Time{want.CreatedAt, want.StartedAt, want.EndedAt})
	}
	if got.Nodes != want.Nodes || got.Walltime != want.Walltime || got.UsedWalltime != want.UsedWalltime || got.ExitStatus != want.ExitStatus {
		fail("numeric fields", [4]int64{int64(got.Nodes), int64(got.Walltime), int64(got.UsedWalltime), int64(got.ExitStatus)},
			[4]int64{int64(want.Nodes), int64(want.Walltime), int64(want.UsedWalltime), int64(want.ExitStatus)})
	}
}

// TestCheckLineBytesMatchesCheckLine pins the byte scanner to the string
// reference line by line: same skips, same typed errors (kind and text),
// and field-identical records, in UTC and in a fixed non-UTC zone.
func TestCheckLineBytesMatchesCheckLine(t *testing.T) {
	lines := append([]string{}, scanDiffLines...)
	for _, tc := range wlmErrorCases {
		lines = append(lines, tc.line)
	}
	// nil is not in the list: the string reference requires a location,
	// while CheckLineBytes defaults nil to UTC (checked below).
	for _, loc := range []*time.Location{time.UTC, time.FixedZone("CST", -6*3600)} {
		for _, line := range lines {
			wantRec, wantSkip, wantErr := CheckLine(line, loc)
			gotRec, gotSkip, gotErr := CheckLineBytes([]byte(line), loc)
			if gotSkip != wantSkip {
				t.Errorf("CheckLineBytes(%q) skip = %v, want %v", line, gotSkip, wantSkip)
				continue
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Errorf("CheckLineBytes(%q) err = %v, string path %v", line, gotErr, wantErr)
				continue
			}
			if wantErr != nil {
				if gotErr.Kind != wantErr.Kind || gotErr.Error() != wantErr.Error() {
					t.Errorf("CheckLineBytes(%q) err = %q (%v), string path %q (%v)",
						line, gotErr.Error(), gotErr.Kind, wantErr.Error(), wantErr.Kind)
				}
				continue
			}
			if wantSkip {
				continue
			}
			scanRecordsEqual(t, line, gotRec, scanFromRecord(wantRec))
		}
	}
	nilRec, _, _ := CheckLineBytes([]byte(wlmGoodLine), nil)
	utcRec, _, _ := CheckLineBytes([]byte(wlmGoodLine), time.UTC)
	scanRecordsEqual(t, wlmGoodLine, nilRec, utcRec)
}

// TestScanBlockModeMatchesParseBlockMode pins the byte block parser to the
// string block parser: same records, same lenient accounting, and the same
// first-malformed-line strict error.
func TestScanBlockModeMatchesParseBlockMode(t *testing.T) {
	var good, mixed strings.Builder
	for _, l := range scanDiffLines {
		good.WriteString(l)
		good.WriteByte('\n')
	}
	mixed.WriteString(good.String())
	for _, tc := range wlmErrorCases {
		mixed.WriteString(tc.line)
		mixed.WriteByte('\n')
	}
	mixed.WriteString(wlmGoodLine) // no trailing newline: final fragment

	for _, tc := range []struct {
		name  string
		block string
		mode  parse.Mode
	}{
		{"good strict", good.String(), parse.Strict},
		{"good lenient", good.String(), parse.Lenient},
		{"mixed strict", mixed.String(), parse.Strict},
		{"mixed lenient", mixed.String(), parse.Lenient},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wantRecs, wantStats, wantErr := ParseBlockMode([]byte(tc.block), time.UTC, 42, tc.mode)
			gotRecs, gotStats, gotErr := ScanBlockMode([]byte(tc.block), time.UTC, 42, tc.mode)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("ScanBlockMode err = %v, ParseBlockMode err = %v", gotErr, wantErr)
			}
			if wantErr != nil {
				var wantPerr, gotPerr *parse.Error
				if !errors.As(wantErr, &wantPerr) || !errors.As(gotErr, &gotPerr) {
					t.Fatalf("non-typed errors: %v vs %v", gotErr, wantErr)
				}
				if gotPerr.Line != wantPerr.Line || gotPerr.Kind != wantPerr.Kind || gotPerr.Error() != wantPerr.Error() {
					t.Fatalf("strict error = %q line %d, want %q line %d",
						gotPerr.Error(), gotPerr.Line, wantPerr.Error(), wantPerr.Line)
				}
				return
			}
			if len(gotRecs) != len(wantRecs) {
				t.Fatalf("got %d records, want %d", len(gotRecs), len(wantRecs))
			}
			for i := range gotRecs {
				scanRecordsEqual(t, "block line", gotRecs[i], scanFromRecord(wantRecs[i]))
			}
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Errorf("stats = %+v, want %+v", gotStats, wantStats)
			}
		})
	}
}

// TestAddScanMatchesAdd feeds the same stream through the view-based and
// map-based assembler entry points and requires identical job tables.
func TestAddScanMatchesAdd(t *testing.T) {
	viaAdd := NewAssembler()
	viaScan := NewAssembler()
	for _, line := range scanDiffLines {
		rec, skip, perr := CheckLine(line, time.UTC)
		if skip || perr != nil {
			continue
		}
		if err := viaAdd.Add(rec); err != nil {
			t.Fatal(err)
		}
		sr, _, _ := CheckLineBytes([]byte(line), time.UTC)
		if err := viaScan.AddScan(sr); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := viaAdd.Jobs(), viaScan.Jobs(); !reflect.DeepEqual(a, b) {
		t.Errorf("Add jobs = %+v\nAddScan jobs = %+v", a, b)
	}
}

// TestCheckLineBytesZeroAlloc gates the per-line fast path: scanning a
// canonical well-formed record must not allocate.
func TestCheckLineBytesZeroAlloc(t *testing.T) {
	line := []byte("04/03/2013 12:00:00;S;123.bw;user=bob account=acct queue=debug Resource_List.nodect=128 Resource_List.walltime=12:00:00 ctime=1364995000 start=1364996000")
	if n := testing.AllocsPerRun(200, func() {
		_, skip, perr := CheckLineBytes(line, time.UTC)
		if skip || perr != nil {
			t.Fatal("canonical line rejected")
		}
	}); n != 0 {
		t.Errorf("CheckLineBytes allocates %.1f allocs/op on the fast path, want 0", n)
	}
}
