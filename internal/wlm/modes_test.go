package wlm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
)

// Error-path cases shared by the strict and lenient mode tests. Every entry
// is one malformed accounting line plus the Kind the parsers must report.
var wlmErrorCases = []struct {
	name string
	line string
	kind parse.Kind
}{
	{"truncated record", "04/03/2013 12:00:00;E;123.bw", parse.KindStructure},
	{"bad timestamp", "13/45/2013 99:00:00;E;123.bw;user=x", parse.KindTimestamp},
	{"bad record type", "04/03/2013 12:00:00;Z;123.bw;user=x", parse.KindStructure},
	{"empty job id", "04/03/2013 12:00:00;E;;user=x", parse.KindStructure},
	{"missing field value", "04/03/2013 12:00:00;E;123.bw;garbagefield", parse.KindField},
	{"oversized line", "04/03/2013 12:00:00;E;123.bw;pad=" + strings.Repeat("x", parse.MaxLineBytes), parse.KindOversize},
	{"invalid utf8", "04/03/2013 12:00:00;E;123.bw;user=\xff\xfe", parse.KindEncoding},
	{"nul byte", "04/03/2013 12:00:00;E;123.bw;user=a\x00b", parse.KindEncoding},
}

const wlmGoodLine = "04/03/2013 12:00:01;E;9.bw;Exit_status=0 user=alice"

// TestScannerModesErrorPaths drives every malformed-line class through the
// sequential scanner in both modes: strict fails at the bad line with a
// typed, line-numbered error; lenient skips it, still yields the well-formed
// record, and accounts the failure under the right kind with provenance.
func TestScannerModesErrorPaths(t *testing.T) {
	for _, tc := range wlmErrorCases {
		t.Run(tc.name, func(t *testing.T) {
			input := tc.line + "\n" + wlmGoodLine + "\n"

			strict := NewScannerMode(strings.NewReader(input), time.UTC, parse.Strict)
			if strict.Scan() {
				t.Fatal("strict mode scanned past the malformed line")
			}
			var perr *parse.Error
			if !errors.As(strict.Err(), &perr) {
				t.Fatalf("strict error %v is not a *parse.Error", strict.Err())
			}
			if perr.Kind != tc.kind || perr.Line != 1 {
				t.Errorf("strict error kind=%v line=%d, want kind=%v line=1", perr.Kind, perr.Line, tc.kind)
			}

			lenient := NewScannerMode(strings.NewReader(input), time.UTC, parse.Lenient)
			var recs int
			for lenient.Scan() {
				recs++
			}
			if err := lenient.Err(); err != nil {
				t.Fatalf("lenient mode failed: %v", err)
			}
			if recs != 1 {
				t.Errorf("lenient mode yielded %d records, want 1", recs)
			}
			st := lenient.Stats()
			if got := st.Kinds.Count(tc.kind); got != 1 {
				t.Errorf("kind %v counted %d times, want 1", tc.kind, got)
			}
			if st.Malformed() != 1 {
				t.Errorf("Malformed() = %d, want 1", st.Malformed())
			}
			samples := st.Samples.All()
			if len(samples) != 1 || samples[0].Line != 1 || samples[0].Kind != tc.kind {
				t.Errorf("sample provenance %+v, want line 1 kind %v", samples, tc.kind)
			}
		})
	}
}

// TestParseBlockModeMatchesScanner pins the parallel block parser to the
// sequential scanner for every error class in both modes.
func TestParseBlockModeMatchesScanner(t *testing.T) {
	for _, tc := range wlmErrorCases {
		t.Run(tc.name, func(t *testing.T) {
			input := wlmGoodLine + "\n" + tc.line + "\n"

			recs, stats, err := ParseBlockMode([]byte(input), time.UTC, 1, parse.Lenient)
			if err != nil {
				t.Fatalf("lenient block failed: %v", err)
			}
			if len(recs) != 1 || stats.Kinds.Count(tc.kind) != 1 {
				t.Errorf("lenient block: %d records, kind count %d", len(recs), stats.Kinds.Count(tc.kind))
			}
			samples := stats.Samples.All()
			if len(samples) != 1 || samples[0].Line != 2 {
				t.Errorf("block sample %+v, want line 2", samples)
			}

			_, _, err = ParseBlockMode([]byte(input), time.UTC, 1, parse.Strict)
			var perr *parse.Error
			if !errors.As(err, &perr) {
				t.Fatalf("strict block error %v is not a *parse.Error", err)
			}
			if perr.Kind != tc.kind || perr.Line != 2 {
				t.Errorf("strict block error kind=%v line=%d, want kind=%v line=2", perr.Kind, perr.Line, tc.kind)
			}

			// A nonzero block offset shifts reported line numbers.
			_, _, err = ParseBlockMode([]byte(input), time.UTC, 100, parse.Strict)
			if !errors.As(err, &perr) || perr.Line != 101 {
				t.Errorf("offset block error %v, want line 101", err)
			}
		})
	}
}
