// Package wlm models the workload-manager (Torque/Moab-style) job accounting
// log: the per-job queue/start/end records from which the analysis derives
// job populations, requested resources and batch exit status. The wire
// format follows the PBS/Torque accounting-record convention:
//
//	04/03/2013 12:00:00;E;123456.bw;user=alice queue=normal ctime=1364996400 ... Exit_status=0
//
// i.e. a timestamp, a record-type letter, the job ID, and a space-separated
// key=value field list, all joined by semicolons.
package wlm

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"logdiver/internal/parse"
	"logdiver/internal/stream"
)

// EventType is the accounting record type letter.
type EventType byte

// Accounting record types (the subset the analysis consumes).
const (
	EventQueue  EventType = 'Q' // job entered the queue
	EventStart  EventType = 'S' // job started
	EventEnd    EventType = 'E' // job ended (normally or not)
	EventAbort  EventType = 'A' // job aborted by the server
	EventDelete EventType = 'D' // job deleted by user or operator
)

// Valid reports whether t is a known record type.
func (t EventType) Valid() bool {
	switch t {
	case EventQueue, EventStart, EventEnd, EventAbort, EventDelete:
		return true
	default:
		return false
	}
}

// Record is one raw accounting record.
type Record struct {
	Time   time.Time
	Type   EventType
	JobID  string
	Fields map[string]string
}

const stampLayout = "01/02/2006 15:04:05"

// FormatRecord renders the record in accounting wire format. Field keys are
// emitted in sorted order so output is deterministic.
func FormatRecord(r Record) string {
	var b strings.Builder
	b.Grow(64 + 24*len(r.Fields))
	b.WriteString(r.Time.Format(stampLayout))
	b.WriteByte(';')
	b.WriteByte(byte(r.Type))
	b.WriteByte(';')
	b.WriteString(r.JobID)
	b.WriteByte(';')
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(r.Fields[k])
	}
	return b.String()
}

// ParseRecord parses one accounting line. The location loc is applied to the
// record timestamp (accounting stamps carry no zone); pass time.UTC when the
// archive was generated in UTC. Errors are *parse.Error values carrying a
// Kind for the per-kind malformed accounting of the ingestion pipeline.
func ParseRecord(s string, loc *time.Location) (Record, error) {
	var r Record
	parts := strings.SplitN(s, ";", 4)
	if len(parts) != 4 {
		return r, parse.Errorf(parse.KindStructure, s, "wlm: record has %d fields, want 4", len(parts))
	}
	t, err := time.ParseInLocation(stampLayout, parts[0], loc)
	if err != nil {
		return r, parse.Errorf(parse.KindTimestamp, s, "wlm: bad timestamp: %s", err.Error())
	}
	if len(parts[1]) != 1 || !EventType(parts[1][0]).Valid() {
		return r, parse.Errorf(parse.KindStructure, s, "wlm: bad record type %q", parts[1])
	}
	if parts[2] == "" {
		return r, parse.Errorf(parse.KindStructure, s, "wlm: empty job id")
	}
	r.Time = t
	r.Type = EventType(parts[1][0])
	r.JobID = parts[2]
	r.Fields = make(map[string]string, 16)
	if parts[3] != "" {
		for _, kv := range strings.Fields(parts[3]) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return r, parse.Errorf(parse.KindField, s, "wlm: malformed field %q", kv)
			}
			r.Fields[k] = v
		}
	}
	return r, nil
}

// CheckLine is the single authoritative per-line acceptance function of the
// accounting format, shared by the sequential Scanner, the parallel block
// parser and the robustness reconciler: blank lines are skipped silently
// (skip == true), lines failing the shared encoding/oversize checks or
// ParseRecord return a typed *parse.Error, and everything else yields the
// parsed Record.
func CheckLine(text string, loc *time.Location) (r Record, skip bool, perr *parse.Error) {
	if strings.TrimSpace(text) == "" {
		return Record{}, true, nil
	}
	if e := parse.CheckLine(text); e != nil {
		return Record{}, false, e
	}
	r, err := ParseRecord(text, loc)
	if err != nil {
		return Record{}, false, err.(*parse.Error)
	}
	return r, false, nil
}

// Job is the assembled view of one batch job.
type Job struct {
	ID        string
	User      string
	Account   string
	Queue     string
	CreatedAt time.Time // ctime
	StartedAt time.Time // start
	EndedAt   time.Time // end
	// Nodes is the requested node count (Resource_List.nodect).
	Nodes int
	// Walltime is the requested wall-clock limit.
	Walltime time.Duration
	// UsedWalltime is the consumed wall clock (resources_used.walltime).
	UsedWalltime time.Duration
	// ExitStatus is the batch exit status; by Torque convention negative
	// values denote jobs killed by the server (e.g. -11 for node failure)
	// and values >= 256 indicate death by signal (status - 256).
	ExitStatus int
	// Aborted records whether an A record was seen for the job.
	Aborted bool
}

// Walltime formatting helpers (HH:MM:SS, hours may exceed 24).

// FormatWalltime renders d in the HH:MM:SS accounting convention.
func FormatWalltime(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d / time.Second)
	return fmt.Sprintf("%02d:%02d:%02d", total/3600, (total/60)%60, total%60)
}

// ParseWalltime parses the HH:MM:SS accounting convention.
func ParseWalltime(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("wlm: walltime %q not HH:MM:SS", s)
	}
	h, err := strconv.Atoi(parts[0])
	if err != nil || h < 0 {
		return 0, fmt.Errorf("wlm: walltime hours %q", parts[0])
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil || m < 0 || m > 59 {
		return 0, fmt.Errorf("wlm: walltime minutes %q", parts[1])
	}
	sec, err := strconv.Atoi(parts[2])
	if err != nil || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("wlm: walltime seconds %q", parts[2])
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(sec)*time.Second, nil
}

// EndRecord renders the canonical E record for a completed job.
func EndRecord(j Job) Record {
	f := map[string]string{
		"user":                    j.User,
		"account":                 j.Account,
		"queue":                   j.Queue,
		"ctime":                   strconv.FormatInt(j.CreatedAt.Unix(), 10),
		"start":                   strconv.FormatInt(j.StartedAt.Unix(), 10),
		"end":                     strconv.FormatInt(j.EndedAt.Unix(), 10),
		"Resource_List.nodect":    strconv.Itoa(j.Nodes),
		"Resource_List.walltime":  FormatWalltime(j.Walltime),
		"resources_used.walltime": FormatWalltime(j.UsedWalltime),
		"Exit_status":             strconv.Itoa(j.ExitStatus),
	}
	return Record{Time: j.EndedAt, Type: EventEnd, JobID: j.ID, Fields: f}
}

// QueueRecord renders the Q record for a job.
func QueueRecord(j Job) Record {
	return Record{Time: j.CreatedAt, Type: EventQueue, JobID: j.ID, Fields: map[string]string{
		"user":  j.User,
		"queue": j.Queue,
	}}
}

// StartRecord renders the S record for a job.
func StartRecord(j Job) Record {
	return Record{Time: j.StartedAt, Type: EventStart, JobID: j.ID, Fields: map[string]string{
		"user":                   j.User,
		"queue":                  j.Queue,
		"Resource_List.nodect":   strconv.Itoa(j.Nodes),
		"Resource_List.walltime": FormatWalltime(j.Walltime),
	}}
}

// Assembler folds a stream of accounting records into Job objects.
type Assembler struct {
	jobs map[string]*Job
	// interned canonicalizes the short repeated per-job strings (user,
	// account, queue) so the byte-view fast path copies each distinct value
	// out of its input buffer at most once.
	interned map[string]string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{jobs: make(map[string]*Job), interned: make(map[string]string)}
}

// Add folds one record into the assembler. Unknown field values are ignored
// rather than treated as errors: field sets vary across WLM versions. Add
// delegates to AddScan (the byte-view fast path) so the two entry points
// share one fold implementation.
func (a *Assembler) Add(r Record) error {
	return a.AddScan(scanFromRecord(r))
}

// Jobs returns the assembled jobs sorted by start time then ID.
func (a *Assembler) Jobs() []Job {
	out := make([]Job, 0, len(a.jobs))
	for _, j := range a.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].StartedAt.Equal(out[k].StartedAt) {
			return out[i].StartedAt.Before(out[k].StartedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Len returns the number of distinct jobs seen.
func (a *Assembler) Len() int { return len(a.jobs) }

// Writer emits accounting records.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(FormatRecord(r)); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Scanner streams records from an accounting archive. In lenient mode (the
// NewScanner default) malformed lines are skipped and accounted — per-kind
// counters plus first-N provenance samples; in strict mode the scan stops
// at the first malformed line and Err returns the typed *parse.Error with
// its line number.
type Scanner struct {
	lr     *parse.LineReader
	loc    *time.Location
	mode   parse.Mode
	rec    Record
	lineNo int
	stats  parse.LineStats
	err    error
}

// NewScanner wraps r in lenient mode; timestamps are interpreted in loc
// (UTC if nil).
func NewScanner(r io.Reader, loc *time.Location) *Scanner {
	return NewScannerMode(r, loc, parse.Lenient)
}

// NewScannerMode wraps r with an explicit malformed-line policy.
func NewScannerMode(r io.Reader, loc *time.Location, mode parse.Mode) *Scanner {
	if loc == nil {
		loc = time.UTC
	}
	return &Scanner{lr: parse.NewLineReader(r), loc: loc, mode: mode}
}

// Scan advances to the next well-formed record. It returns false at end of
// input, on a read error, or (strict mode) at the first malformed line.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		text, no, ok := s.lr.Next()
		if !ok {
			s.err = s.lr.Err()
			return false
		}
		rec, skip, perr := CheckLine(text, s.loc)
		if skip {
			continue
		}
		if perr != nil {
			perr.Line = no
			if s.mode == parse.Strict {
				s.err = perr
				return false
			}
			s.stats.Record(perr)
			continue
		}
		s.rec, s.lineNo = rec, no
		return true
	}
}

// Record returns the most recently scanned record.
func (s *Scanner) Record() Record { return s.rec }

// LineNo returns the 1-based archive line number of the most recently
// scanned record.
func (s *Scanner) LineNo() int { return s.lineNo }

// ParseBlock parses every line of a newline-separated accounting block with
// the exact per-line semantics of a lenient Scanner: blank lines are
// skipped silently, unparseable lines are counted as malformed. Timestamps
// are interpreted in loc (UTC if nil).
func ParseBlock(block []byte, loc *time.Location) (recs []Record, malformed int) {
	recs, stats, _ := ParseBlockMode(block, loc, 1, parse.Lenient)
	return recs, stats.Malformed()
}

// ParseBlockMode is the unit of work of the parallel ingestion path: it
// parses a block whose first line is archive line firstLine with the exact
// per-line semantics of a sequential Scanner in the same mode. In lenient
// mode malformed lines are accounted in stats with their archive line
// numbers; in strict mode the first malformed line fails the block with its
// typed error. CheckLine is pure, so blocks parse safely on concurrent
// goroutines; concatenating results in block order reproduces a sequential
// scan.
func ParseBlockMode(block []byte, loc *time.Location, firstLine int, mode parse.Mode) (recs []Record, stats parse.LineStats, err error) {
	if loc == nil {
		loc = time.UTC
	}
	recs = make([]Record, 0, len(block)/96)
	no := firstLine - 1
	var failed *parse.Error
	stream.ForEachLine(block, func(raw []byte) {
		no++
		if failed != nil {
			return
		}
		rec, skip, perr := CheckLine(string(raw), loc)
		if skip {
			return
		}
		if perr != nil {
			perr.Line = no
			if mode == parse.Strict {
				failed = perr
				return
			}
			stats.Record(perr)
			return
		}
		recs = append(recs, rec)
	})
	if failed != nil {
		return nil, parse.LineStats{}, failed
	}
	return recs, stats, nil
}

// Malformed returns the number of skipped lines (lenient mode).
func (s *Scanner) Malformed() int { return s.stats.Malformed() }

// Stats returns the malformed-line accounting of the scan so far.
func (s *Scanner) Stats() parse.LineStats { return s.stats }

// Err returns the first read error, if any; in strict mode the first
// malformed line surfaces here as a *parse.Error.
func (s *Scanner) Err() error { return s.err }
