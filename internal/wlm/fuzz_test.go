package wlm

import (
	"testing"
	"time"
)

// FuzzParseRecord checks the accounting parser never panics and that
// accepted records survive the assembler.
func FuzzParseRecord(f *testing.F) {
	for _, seed := range []string{
		"04/03/2013 12:00:00;E;123.bw;user=alice Exit_status=0",
		"04/03/2013 12:00:00;Q;123.bw;",
		"04/03/2013 12:00:00;S;123.bw;Resource_List.nodect=16 Resource_List.walltime=01:00:00",
		";;;", "", "bad;E;1;x=y", "04/03/2013 12:00:00;Z;1;x=y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := ParseRecord(s, time.UTC)
		if err != nil {
			return
		}
		a := NewAssembler()
		if err := a.Add(rec); err != nil {
			t.Fatalf("assembler rejected parsed record from %q: %v", s, err)
		}
		if a.Len() != 1 {
			t.Fatalf("assembler has %d jobs after one record", a.Len())
		}
	})
}

// FuzzParseWalltime checks the HH:MM:SS parser never panics and round-trips.
func FuzzParseWalltime(f *testing.F) {
	for _, seed := range []string{"00:00:00", "48:00:05", "1:2", "aa:bb:cc", "-1:00:00", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseWalltime(s)
		if err != nil {
			return
		}
		back, err := ParseWalltime(FormatWalltime(d))
		if err != nil || back != d {
			t.Fatalf("round trip %q -> %v -> (%v, %v)", s, d, back, err)
		}
	})
}
