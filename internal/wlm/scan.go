// Byte-oriented fast path of the accounting parser. CheckLineBytes applies
// the exact per-line semantics of CheckLine over a byte view, producing a
// compact ScanRecord of field views instead of a map-backed Record;
// Assembler.AddScan folds it with the exact semantics of Add. The map
// implementation (ParseRecord/CheckLine/Add) stays as the reference — Add
// delegates to AddScan so the two assembler paths cannot drift, and the
// differential tests in scan_test.go pin the parsers to each other.

package wlm

import (
	"bytes"
	"fmt"
	"strconv"
	"time"
	"unicode"
	"unicode/utf8"

	"logdiver/internal/parse"
	"logdiver/internal/stream"
)

// FieldSet records which accounting fields a ScanRecord carries. A field's
// bit is set only when the field was present, non-empty and (for numeric
// fields) parseable — replicating the Assembler's ignore-unparseable
// policy.
type FieldSet uint16

// Field presence bits.
const (
	HasUser FieldSet = 1 << iota
	HasAccount
	HasQueue
	HasCtime
	HasStart
	HasEnd
	HasNodect
	HasWalltime
	HasUsedWalltime
	HasExitStatus
)

// ScanRecord is one parsed accounting record with byte views into the
// caller's buffer. Views (JobID, User, Account, Queue) are valid only as
// long as the underlying buffer; AddScan copies what it retains.
type ScanRecord struct {
	Time  time.Time
	Type  EventType
	JobID []byte
	// Field views and parsed values; consult Has before reading.
	User, Account, Queue          []byte
	CreatedAt, StartedAt, EndedAt time.Time
	Nodes                         int
	Walltime, UsedWalltime        time.Duration
	ExitStatus                    int
	Has                           FieldSet
}

// CheckLineBytes is CheckLine over a byte view: blank lines are skipped,
// malformed lines return a typed *parse.Error with the same kind and reason
// as the string path, and everything else yields the parsed ScanRecord.
// Timestamps are interpreted in loc (UTC if nil). It allocates only on
// malformed or non-canonical input.
//
//ldvet:pooled
//ldvet:hotpath
func CheckLineBytes(b []byte, loc *time.Location) (r ScanRecord, skip bool, perr *parse.Error) {
	if loc == nil {
		loc = time.UTC
	}
	if parse.Blank(b) {
		return ScanRecord{}, true, nil
	}
	if e := parse.CheckLineBytes(b); e != nil {
		return ScanRecord{}, false, e
	}
	// Split into the four ;-joined parts, like strings.SplitN(s, ";", 4).
	i1 := bytes.IndexByte(b, ';')
	if i1 < 0 {
		return ScanRecord{}, false, errLine(parse.KindStructure, b, "wlm: record has 1 fields, want 4")
	}
	i2 := bytes.IndexByte(b[i1+1:], ';')
	if i2 < 0 {
		return ScanRecord{}, false, errLine(parse.KindStructure, b, "wlm: record has 2 fields, want 4")
	}
	i2 += i1 + 1
	i3 := bytes.IndexByte(b[i2+1:], ';')
	if i3 < 0 {
		return ScanRecord{}, false, errLine(parse.KindStructure, b, "wlm: record has 3 fields, want 4")
	}
	i3 += i2 + 1
	ts, typ, jobID, fields := b[:i1], b[i1+1:i2], b[i2+1:i3], b[i3+1:]

	t, ok := parseStampFastWlm(ts, loc)
	if !ok {
		var err error
		t, err = time.ParseInLocation(stampLayout, string(ts), loc)
		if err != nil {
			return ScanRecord{}, false, parse.Errorf(parse.KindTimestamp, truncLine(b), "wlm: bad timestamp: %s", err.Error())
		}
	}
	if len(typ) != 1 || !EventType(typ[0]).Valid() {
		return ScanRecord{}, false, parse.Errorf(parse.KindStructure, truncLine(b), "wlm: bad record type %q", typ)
	}
	if len(jobID) == 0 {
		return ScanRecord{}, false, errLine(parse.KindStructure, b, "wlm: empty job id")
	}
	r.Time = t
	r.Type = EventType(typ[0])
	r.JobID = jobID

	// Walk the space-separated k=v fields, retaining the LAST occurrence of
	// each known key (the map in ParseRecord is last-wins).
	var ctime, start, end, nodect, wall, usedWall, exitStatus []byte
	var seen FieldSet
	for i := 0; i < len(fields); {
		// Skip field separators (any Unicode space, like strings.Fields).
		if isSp, w := spaceAt(fields, i); isSp {
			i += w
			continue
		}
		// Take the token.
		tok := i
		for i < len(fields) {
			isSp, w := spaceAt(fields, i)
			if isSp {
				break
			}
			i += w
		}
		kv := fields[tok:i]
		eq := bytes.IndexByte(kv, '=')
		if eq < 0 {
			return ScanRecord{}, false, parse.Errorf(parse.KindField, truncLine(b), "wlm: malformed field %q", kv)
		}
		k, v := kv[:eq], kv[eq+1:]
		switch {
		case bytes.Equal(k, keyUser):
			r.User, seen = v, seen|HasUser
		case bytes.Equal(k, keyAccount):
			r.Account, seen = v, seen|HasAccount
		case bytes.Equal(k, keyQueue):
			r.Queue, seen = v, seen|HasQueue
		case bytes.Equal(k, keyCtime):
			ctime, seen = v, seen|HasCtime
		case bytes.Equal(k, keyStart):
			start, seen = v, seen|HasStart
		case bytes.Equal(k, keyEnd):
			end, seen = v, seen|HasEnd
		case bytes.Equal(k, keyNodect):
			nodect, seen = v, seen|HasNodect
		case bytes.Equal(k, keyWalltime):
			wall, seen = v, seen|HasWalltime
		case bytes.Equal(k, keyUsedWall):
			usedWall, seen = v, seen|HasUsedWalltime
		case bytes.Equal(k, keyExit):
			exitStatus, seen = v, seen|HasExitStatus
		}
	}
	// Resolve values with the Assembler's ignore-unparseable policy: a bit
	// is set only when the (last) value is non-empty / parseable.
	if seen&HasUser != 0 && len(r.User) > 0 {
		r.Has |= HasUser
	}
	if seen&HasAccount != 0 && len(r.Account) > 0 {
		r.Has |= HasAccount
	}
	if seen&HasQueue != 0 && len(r.Queue) > 0 {
		r.Has |= HasQueue
	}
	if seen&HasCtime != 0 {
		if sec, ok := parse.ParseInt64(ctime); ok {
			r.CreatedAt, r.Has = time.Unix(sec, 0).UTC(), r.Has|HasCtime
		}
	}
	if seen&HasStart != 0 {
		if sec, ok := parse.ParseInt64(start); ok {
			r.StartedAt, r.Has = time.Unix(sec, 0).UTC(), r.Has|HasStart
		}
	}
	if seen&HasEnd != 0 {
		if sec, ok := parse.ParseInt64(end); ok {
			r.EndedAt, r.Has = time.Unix(sec, 0).UTC(), r.Has|HasEnd
		}
	}
	if seen&HasNodect != 0 {
		if n, ok := parse.Atoi(nodect); ok {
			r.Nodes, r.Has = n, r.Has|HasNodect
		}
	}
	if seen&HasWalltime != 0 {
		if d, ok := parseWalltimeBytes(wall); ok {
			r.Walltime, r.Has = d, r.Has|HasWalltime
		}
	}
	if seen&HasUsedWalltime != 0 {
		if d, ok := parseWalltimeBytes(usedWall); ok {
			r.UsedWalltime, r.Has = d, r.Has|HasUsedWalltime
		}
	}
	if seen&HasExitStatus != 0 {
		if n, ok := parse.Atoi(exitStatus); ok {
			r.ExitStatus, r.Has = n, r.Has|HasExitStatus
		}
	}
	return r, false, nil
}

// Known accounting field keys.
var (
	keyUser     = []byte("user")
	keyAccount  = []byte("account")
	keyQueue    = []byte("queue")
	keyCtime    = []byte("ctime")
	keyStart    = []byte("start")
	keyEnd      = []byte("end")
	keyNodect   = []byte("Resource_List.nodect")
	keyWalltime = []byte("Resource_List.walltime")
	keyUsedWall = []byte("resources_used.walltime")
	keyExit     = []byte("Exit_status")
)

// spaceAt reports whether the byte sequence at b[i:] starts with a Unicode
// space (the separator set of strings.Fields) and its encoded width.
//
//ldvet:pooled
//ldvet:hotpath
func spaceAt(b []byte, i int) (bool, int) {
	c := b[i]
	if c < utf8.RuneSelf {
		return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r', 1
	}
	r, w := utf8.DecodeRune(b[i:])
	return unicode.IsSpace(r), w
}

func errLine(kind parse.Kind, line []byte, reason string) *parse.Error {
	return parse.Errorf(kind, truncLine(line), "%s", reason)
}

func truncLine(b []byte) string {
	if len(b) > parse.SampleTextBytes {
		b = b[:parse.SampleTextBytes]
	}
	return string(b)
}

// parseWalltimeBytes parses the HH:MM:SS convention with the exact
// acceptance of ParseWalltime, without allocating.
//
//ldvet:pooled
//ldvet:hotpath
func parseWalltimeBytes(b []byte) (time.Duration, bool) {
	c1 := bytes.IndexByte(b, ':')
	if c1 < 0 {
		return 0, false
	}
	c2 := bytes.IndexByte(b[c1+1:], ':')
	if c2 < 0 {
		return 0, false
	}
	c2 += c1 + 1
	if bytes.IndexByte(b[c2+1:], ':') >= 0 {
		return 0, false // more than three parts
	}
	h, ok := parse.Atoi(b[:c1])
	if !ok || h < 0 {
		return 0, false
	}
	m, ok := parse.Atoi(b[c1+1 : c2])
	if !ok || m < 0 || m > 59 {
		return 0, false
	}
	s, ok := parse.Atoi(b[c2+1:])
	if !ok || s < 0 || s > 59 {
		return 0, false
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(s)*time.Second, true
}

// parseStampFastWlm parses the canonical zero-padded form of stampLayout
// ("01/02/2006 15:04:05") without allocating. Deviations (including the
// 1-digit hours time.Parse tolerates) return ok == false and take the
// time.ParseInLocation fallback, which is authoritative.
//
//ldvet:pooled
//ldvet:hotpath
func parseStampFastWlm(b []byte, loc *time.Location) (time.Time, bool) {
	if len(b) != 19 || b[2] != '/' || b[5] != '/' || b[10] != ' ' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	mo, ok1 := digits2(b[0], b[1])
	day, ok2 := digits2(b[3], b[4])
	year, ok3 := digits4(b[6:10])
	hour, ok4 := digits2(b[11], b[12])
	min, ok5 := digits2(b[14], b[15])
	sec, ok6 := digits2(b[17], b[18])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, false
	}
	if mo < 1 || mo > 12 || day < 1 || day > daysIn(mo, year) || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(mo), day, hour, min, sec, 0, loc), true
}

//ldvet:hotpath
func digits2(a, b byte) (int, bool) {
	if a < '0' || a > '9' || b < '0' || b > '9' {
		return 0, false
	}
	return int(a-'0')*10 + int(b-'0'), true
}

//ldvet:hotpath
func digits4(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// daysIn returns the day count of month m in year y (Gregorian).
func daysIn(m, y int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
		return 29
	}
	return 28
}

// AddScan folds one ScanRecord into the assembler with the exact semantics
// of Add. Retained strings (job ID on first sight; user/account/queue) are
// copied out of the caller's buffer, the short per-job strings through the
// assembler's intern table so repeated values share storage.
//
//ldvet:pooled
//ldvet:hotpath
func (a *Assembler) AddScan(r ScanRecord) error {
	if len(r.JobID) == 0 {
		return fmt.Errorf("wlm: record with empty job id")
	}
	j := a.jobs[string(r.JobID)]
	if j == nil {
		//ldvet:allow hotpath-alloc — one allocation per job, amortized across its records
		j = &Job{ID: string(r.JobID)}
		a.jobs[j.ID] = j
	}
	if r.Has&HasUser != 0 {
		j.User = a.intern(r.User)
	}
	if r.Has&HasAccount != 0 {
		j.Account = a.intern(r.Account)
	}
	if r.Has&HasQueue != 0 {
		j.Queue = a.intern(r.Queue)
	}
	if r.Has&HasCtime != 0 {
		j.CreatedAt = r.CreatedAt
	}
	if r.Has&HasStart != 0 {
		j.StartedAt = r.StartedAt
	}
	if r.Has&HasEnd != 0 {
		j.EndedAt = r.EndedAt
	}
	if r.Has&HasNodect != 0 {
		j.Nodes = r.Nodes
	}
	if r.Has&HasWalltime != 0 {
		j.Walltime = r.Walltime
	}
	if r.Has&HasUsedWalltime != 0 {
		j.UsedWalltime = r.UsedWalltime
	}
	if r.Has&HasExitStatus != 0 {
		j.ExitStatus = r.ExitStatus
	}
	switch r.Type {
	case EventStart:
		if j.StartedAt.IsZero() {
			j.StartedAt = r.Time
		}
	case EventEnd:
		if j.EndedAt.IsZero() {
			j.EndedAt = r.Time
		}
	case EventAbort:
		j.Aborted = true
	default:
		// Queue and delete records carry no state the assembled job tracks.
	}
	return nil
}

// intern returns a canonical string for b, copying it at most once.
//
//ldvet:pooled
//ldvet:hotpath
func (a *Assembler) intern(b []byte) string {
	if s, ok := a.interned[string(b)]; ok {
		return s
	}
	//ldvet:allow hotpath-alloc — first-sight copy into the intern cache
	s := string(b)
	a.interned[s] = s
	return s
}

// ScanBlockMode is ParseBlockMode on the byte-view fast path: it parses a
// block whose first line is archive line firstLine into ScanRecords with the
// exact per-line semantics of a sequential Scanner in the same mode. The
// returned records hold views into block; callers must fold them (AddScan
// copies what it retains) before the block's buffer is reused.
//
//ldvet:pooled
//ldvet:hotpath
func ScanBlockMode(block []byte, loc *time.Location, firstLine int, mode parse.Mode) (recs []ScanRecord, stats parse.LineStats, err error) {
	if loc == nil {
		loc = time.UTC
	}
	recs = make([]ScanRecord, 0, len(block)/96)
	no := firstLine - 1
	var failed *parse.Error
	stream.ForEachLine(block, func(raw []byte) {
		no++
		if failed != nil {
			return
		}
		rec, skip, perr := CheckLineBytes(raw, loc)
		if skip {
			return
		}
		if perr != nil {
			perr.Line = no
			if mode == parse.Strict {
				failed = perr
				return
			}
			stats.Record(perr)
			return
		}
		recs = append(recs, rec)
	})
	if failed != nil {
		return nil, parse.LineStats{}, failed
	}
	return recs, stats, nil
}

// scanFromRecord converts a map-backed Record into the ScanRecord AddScan
// consumes, applying the same non-empty/parseable field policy Add used to
// apply inline. It exists so Add can delegate to AddScan.
func scanFromRecord(r Record) ScanRecord {
	s := ScanRecord{Time: r.Time, Type: r.Type, JobID: []byte(r.JobID)}
	setStr := func(dst *[]byte, key string, bit FieldSet) {
		if v, ok := r.Fields[key]; ok && v != "" {
			*dst, s.Has = []byte(v), s.Has|bit
		}
	}
	setStr(&s.User, "user", HasUser)
	setStr(&s.Account, "account", HasAccount)
	setStr(&s.Queue, "queue", HasQueue)
	setTime := func(dst *time.Time, key string, bit FieldSet) {
		if v, ok := r.Fields[key]; ok {
			if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
				*dst, s.Has = time.Unix(sec, 0).UTC(), s.Has|bit
			}
		}
	}
	setTime(&s.CreatedAt, "ctime", HasCtime)
	setTime(&s.StartedAt, "start", HasStart)
	setTime(&s.EndedAt, "end", HasEnd)
	if v, ok := r.Fields["Resource_List.nodect"]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			s.Nodes, s.Has = n, s.Has|HasNodect
		}
	}
	if v, ok := r.Fields["Resource_List.walltime"]; ok {
		if d, err := ParseWalltime(v); err == nil {
			s.Walltime, s.Has = d, s.Has|HasWalltime
		}
	}
	if v, ok := r.Fields["resources_used.walltime"]; ok {
		if d, err := ParseWalltime(v); err == nil {
			s.UsedWalltime, s.Has = d, s.Has|HasUsedWalltime
		}
	}
	if v, ok := r.Fields["Exit_status"]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			s.ExitStatus, s.Has = n, s.Has|HasExitStatus
		}
	}
	return s
}
