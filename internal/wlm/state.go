package wlm

import "fmt"

// State exports the assembler's job table for persistence, sorted like Jobs.
// Job IDs are unique (they key the internal map), so the sorted slice is a
// lossless representation of the assembler.
func (a *Assembler) State() []Job { return a.Jobs() }

// RestoreAssembler rebuilds an assembler from persisted jobs. Duplicate job
// IDs mean the state is corrupt (the live assembler keys its table by ID and
// cannot produce them) and are rejected.
func RestoreAssembler(jobs []Job) (*Assembler, error) {
	a := NewAssembler()
	for _, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("wlm: restore: job with empty id")
		}
		if _, dup := a.jobs[j.ID]; dup {
			return nil, fmt.Errorf("wlm: restore: duplicate job id %q", j.ID)
		}
		job := j
		a.jobs[j.ID] = &job
	}
	return a, nil
}
