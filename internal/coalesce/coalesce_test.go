package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

var base = time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)

func ev(node int, offset time.Duration, cat taxonomy.Category, msg string) errlog.Event {
	return errlog.Event{
		Time:     base.Add(offset),
		Node:     machine.NodeID(node),
		Category: cat,
		Severity: taxonomy.SevError,
		Message:  msg,
	}
}

func TestDedupRemovesExactDuplicates(t *testing.T) {
	e := ev(1, time.Minute, taxonomy.HardwareMemoryCE, "same")
	other := ev(1, time.Minute, taxonomy.HardwareMemoryCE, "different message")
	got := Dedup([]errlog.Event{e, e, e, other})
	if len(got) != 2 {
		t.Fatalf("Dedup returned %d events, want 2", len(got))
	}
}

func TestDedupEmptyAndSorted(t *testing.T) {
	if got := Dedup(nil); got != nil {
		t.Errorf("Dedup(nil) = %v", got)
	}
	events := []errlog.Event{
		ev(1, 3*time.Minute, taxonomy.NodeHeartbeat, "c"),
		ev(1, time.Minute, taxonomy.NodeHeartbeat, "a"),
		ev(1, 2*time.Minute, taxonomy.NodeHeartbeat, "b"),
	}
	got := Dedup(events)
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Error("Dedup output not time-sorted")
		}
	}
	if len(events) != 3 {
		t.Error("input mutated")
	}
}

func TestDedupPreservesDistinctNodesAndCategories(t *testing.T) {
	events := []errlog.Event{
		ev(1, time.Minute, taxonomy.HardwareMemoryCE, "m"),
		ev(2, time.Minute, taxonomy.HardwareMemoryCE, "m"),
		ev(1, time.Minute, taxonomy.HardwareMemoryUE, "m"),
	}
	if got := Dedup(events); len(got) != 3 {
		t.Errorf("Dedup collapsed distinct events: %d", len(got))
	}
}

func TestTuplesBurstCollapses(t *testing.T) {
	var events []errlog.Event
	// Burst of 10 events 30s apart, then a gap, then one more.
	for i := 0; i < 10; i++ {
		events = append(events, ev(7, time.Duration(i)*30*time.Second, taxonomy.HardwareMemoryCE, "mce"))
	}
	events = append(events, ev(7, 2*time.Hour, taxonomy.HardwareMemoryCE, "mce later"))
	tuples := Tuples(events, DefaultTemporalWindow)
	if len(tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(tuples))
	}
	if tuples[0].Count != 10 {
		t.Errorf("first tuple Count = %d, want 10", tuples[0].Count)
	}
	if tuples[0].Start != base || tuples[0].End != base.Add(270*time.Second) {
		t.Errorf("first tuple span [%v,%v]", tuples[0].Start, tuples[0].End)
	}
	if tuples[1].Count != 1 {
		t.Errorf("second tuple Count = %d, want 1", tuples[1].Count)
	}
}

func TestTuplesSeparateCategoriesAndNodes(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.HardwareMemoryCE, "a"),
		ev(1, time.Second, taxonomy.HardwareMemoryUE, "b"),
		ev(2, 2*time.Second, taxonomy.HardwareMemoryCE, "c"),
	}
	tuples := Tuples(events, DefaultTemporalWindow)
	if len(tuples) != 3 {
		t.Errorf("got %d tuples, want 3 (category and node separate episodes)", len(tuples))
	}
}

func TestTuplesZeroWindow(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.NodeHeartbeat, "a"),
		ev(1, time.Nanosecond, taxonomy.NodeHeartbeat, "b"),
	}
	if got := Tuples(events, 0); len(got) != 2 {
		t.Errorf("zero window produced %d tuples, want 2", len(got))
	}
}

func TestTuplesSeverityEscalation(t *testing.T) {
	a := ev(1, 0, taxonomy.InterconnectLink, "warn")
	a.Severity = taxonomy.SevWarning
	b := ev(1, time.Minute, taxonomy.InterconnectLink, "crit")
	b.Severity = taxonomy.SevCritical
	tuples := Tuples([]errlog.Event{a, b}, DefaultTemporalWindow)
	if len(tuples) != 1 {
		t.Fatalf("got %d tuples", len(tuples))
	}
	if tuples[0].Severity != taxonomy.SevCritical {
		t.Errorf("Severity = %v, want CRIT", tuples[0].Severity)
	}
	if tuples[0].First.Message != "warn" {
		t.Errorf("First = %q, want earliest event", tuples[0].First.Message)
	}
}

func TestSpatialMergesAcrossNodes(t *testing.T) {
	// A Lustre outage seen by 50 clients within a minute.
	var events []errlog.Event
	for n := 0; n < 50; n++ {
		events = append(events, ev(n, time.Duration(n)*time.Second, taxonomy.FilesystemUnavail, "ost down"))
	}
	tuples := Tuples(events, DefaultTemporalWindow)
	groups := Spatial(tuples, DefaultSpatialWindow)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if len(g.Nodes) != 50 {
		t.Errorf("group has %d nodes, want 50", len(g.Nodes))
	}
	if g.Tuples != 50 || g.Events != 50 {
		t.Errorf("Tuples=%d Events=%d, want 50/50", g.Tuples, g.Events)
	}
	for i := 1; i < len(g.Nodes); i++ {
		if g.Nodes[i] <= g.Nodes[i-1] {
			t.Error("group nodes not ascending")
		}
	}
}

func TestSpatialKeepsDistantEpisodesApart(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.NodeHeartbeat, "a"),
		ev(2, 3*time.Hour, taxonomy.NodeHeartbeat, "b"),
	}
	groups := Spatial(Tuples(events, DefaultTemporalWindow), DefaultSpatialWindow)
	if len(groups) != 2 {
		t.Errorf("got %d groups, want 2", len(groups))
	}
}

func TestSpatialKeepsCategoriesApart(t *testing.T) {
	events := []errlog.Event{
		ev(1, 0, taxonomy.NodeHeartbeat, "a"),
		ev(2, time.Second, taxonomy.HardwareMemoryUE, "b"),
	}
	groups := Spatial(Tuples(events, DefaultTemporalWindow), DefaultSpatialWindow)
	if len(groups) != 2 {
		t.Errorf("got %d groups, want 2 (categories must not merge)", len(groups))
	}
}

func TestSpatialSystemWideFlag(t *testing.T) {
	sys := ev(0, 0, taxonomy.InterconnectRouting, "warm swap")
	sys.Node = errlog.SystemWide
	node := ev(3, 30*time.Second, taxonomy.InterconnectRouting, "reroute")
	groups := Spatial(Tuples([]errlog.Event{sys, node}, DefaultTemporalWindow), DefaultSpatialWindow)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if !groups[0].SystemWide {
		t.Error("SystemWide not set")
	}
	if len(groups[0].Nodes) != 1 {
		t.Errorf("Nodes = %v, want the one node-scoped member", groups[0].Nodes)
	}
}

func TestPipelineStats(t *testing.T) {
	e := ev(1, 0, taxonomy.HardwareMemoryCE, "dup")
	var events []errlog.Event
	for i := 0; i < 100; i++ {
		events = append(events, e) // 100 duplicates
	}
	for i := 0; i < 20; i++ { // one burst on another node
		events = append(events, ev(2, time.Duration(i)*10*time.Second, taxonomy.HardwareMemoryCE, "burst"))
	}
	_, groups, stats := Pipeline(events, DefaultTemporalWindow, DefaultSpatialWindow)
	if stats.Raw != 120 {
		t.Errorf("Raw = %d", stats.Raw)
	}
	if stats.Deduped != 21 {
		t.Errorf("Deduped = %d, want 21", stats.Deduped)
	}
	if stats.Tuples != 2 {
		t.Errorf("Tuples = %d, want 2", stats.Tuples)
	}
	// The two episodes are on different nodes but overlap in time and
	// share a category, so they spatially merge.
	if stats.Groups != 1 || len(groups) != 1 {
		t.Errorf("Groups = %d, want 1", stats.Groups)
	}
	if stats.ReductionFactor() < 100 {
		t.Errorf("ReductionFactor = %v, want >= 100", stats.ReductionFactor())
	}
	if s := stats.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestStatsZeroGroups(t *testing.T) {
	var s Stats
	if s.ReductionFactor() != 0 {
		t.Error("empty stats should report 0 reduction")
	}
}

// Property: tupling conserves raw event counts, tuples never overlap within
// a (node, category) stream, and every tuple span is within the window
// budget of its count.
func TestTuplesConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		events := make([]errlog.Event, count)
		cats := []taxonomy.Category{taxonomy.HardwareMemoryCE, taxonomy.NodeHeartbeat, taxonomy.FilesystemTimeout}
		for i := range events {
			events[i] = ev(rng.Intn(5), time.Duration(rng.Intn(86400))*time.Second,
				cats[rng.Intn(len(cats))], "m")
		}
		tuples := Tuples(events, DefaultTemporalWindow)
		var total int
		type key struct {
			n machine.NodeID
			c taxonomy.Category
		}
		lastEnd := map[key]time.Time{}
		for _, tp := range tuples {
			total += tp.Count
			if tp.End.Before(tp.Start) {
				return false
			}
			k := key{tp.Node, tp.Category}
			if prev, ok := lastEnd[k]; ok && !tp.Start.After(prev) {
				// Tuples on one stream must be ordered and disjoint —
				// but map iteration order means we see them sorted by
				// Start globally, which is fine for this check only if
				// starts are increasing per key.
				return false
			}
			lastEnd[k] = tp.End
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: spatial grouping conserves tuple and event counts.
func TestSpatialConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%300 + 1
		events := make([]errlog.Event, count)
		for i := range events {
			events[i] = ev(rng.Intn(10), time.Duration(rng.Intn(864000))*time.Second,
				taxonomy.NodeHeartbeat, "m")
		}
		tuples := Tuples(events, DefaultTemporalWindow)
		groups := Spatial(tuples, DefaultSpatialWindow)
		var gTuples, gEvents int
		for _, g := range groups {
			gTuples += g.Tuples
			gEvents += g.Events
			if g.End.Before(g.Start) {
				return false
			}
		}
		return gTuples == len(tuples) && gEvents == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
