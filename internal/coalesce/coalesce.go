// Package coalesce implements the log preprocessing stages the analysis
// depends on: exact-duplicate removal, per-node temporal tupling (grouping
// bursts of related error records into single error episodes, after Tsao
// and Siewiorek), and spatial coalescing (merging concurrent episodes of
// the same category across nodes into machine-level events, e.g. one Lustre
// outage observed by thousands of clients). Without these stages a single
// fault storm would be counted as thousands of distinct causes and every
// rate metric downstream would be inflated.
package coalesce

import (
	"fmt"
	"sort"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

// DefaultTemporalWindow is the tupling window: records of the same category
// on the same node closer than this are one episode. Five minutes is the
// conventional choice in the field-study literature.
const DefaultTemporalWindow = 5 * time.Minute

// DefaultSpatialWindow is the cross-node merge window for episodes of the
// same category.
const DefaultSpatialWindow = 2 * time.Minute

// Tuple is one error episode: a maximal burst of same-category events on a
// single node (or machine-wide) with inter-arrival gaps below the tupling
// window.
type Tuple struct {
	// Node is the episode's node, or errlog.SystemWide.
	Node machine.NodeID
	// Category of every event in the episode.
	Category taxonomy.Category
	// Severity is the maximum severity observed in the episode.
	Severity taxonomy.Severity
	// Start and End bound the episode (End equals the last event time).
	Start, End time.Time
	// Count is the number of raw events collapsed into the episode.
	Count int
	// First is the earliest raw event, kept as the representative for
	// evidence chains.
	First errlog.Event
}

// Dedup removes exact duplicates: events with identical (Time, Node,
// Category, Message). Log forwarders on real systems routinely duplicate
// records. The input is not modified; output is sorted by time.
func Dedup(events []errlog.Event) []errlog.Event {
	if len(events) == 0 {
		return nil
	}
	sorted := make([]errlog.Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
	out := sorted[:1]
	for _, e := range sorted[1:] {
		last := out[len(out)-1]
		if e.Time.Equal(last.Time) && e.Node == last.Node &&
			e.Category == last.Category && e.Message == last.Message {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Tuples groups events into per-(node, category) episodes using the given
// tupling window. A non-positive window degenerates to one tuple per event.
// Events should be deduplicated first. Output is sorted by start time.
func Tuples(events []errlog.Event, window time.Duration) []Tuple {
	type key struct {
		node machine.NodeID
		cat  taxonomy.Category
	}
	byKey := make(map[key][]errlog.Event)
	for _, e := range events {
		k := key{e.Node, e.Category}
		byKey[k] = append(byKey[k], e)
	}
	var out []Tuple
	for k, evs := range byKey {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		cur := Tuple{
			Node: k.node, Category: k.cat,
			Severity: evs[0].Severity,
			Start:    evs[0].Time, End: evs[0].Time,
			Count: 1, First: evs[0],
		}
		for _, e := range evs[1:] {
			if window > 0 && e.Time.Sub(cur.End) <= window {
				cur.End = e.Time
				cur.Count++
				if e.Severity > cur.Severity {
					cur.Severity = e.Severity
				}
				continue
			}
			out = append(out, cur)
			cur = Tuple{
				Node: k.node, Category: k.cat,
				Severity: e.Severity,
				Start:    e.Time, End: e.Time,
				Count: 1, First: e,
			}
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Group is a machine-level event: episodes of one category on one or more
// nodes overlapping in time (within the spatial window).
type Group struct {
	Category taxonomy.Category
	Severity taxonomy.Severity
	// Start and End bound the union of member episodes.
	Start, End time.Time
	// Nodes lists distinct affected nodes, ascending; empty if the group
	// consists only of system-wide episodes.
	Nodes []machine.NodeID
	// Tuples is the number of member episodes; Events the number of raw
	// events they collapse.
	Tuples int
	Events int
	// SystemWide records whether any member episode was machine-scoped.
	SystemWide bool
}

// Spatial merges same-category tuples whose time spans come within window
// of each other into machine-level groups. Tuples must be sorted by start
// time (as produced by Tuples). Output is sorted by start time.
func Spatial(tuples []Tuple, window time.Duration) []Group {
	byCat := make(map[taxonomy.Category][]Tuple)
	for _, tp := range tuples {
		byCat[tp.Category] = append(byCat[tp.Category], tp)
	}
	var out []Group
	for cat, tps := range byCat {
		sort.Slice(tps, func(i, j int) bool { return tps[i].Start.Before(tps[j].Start) })
		var cur *Group
		var nodes map[machine.NodeID]bool
		flush := func() {
			if cur == nil {
				return
			}
			cur.Nodes = make([]machine.NodeID, 0, len(nodes))
			for n := range nodes {
				cur.Nodes = append(cur.Nodes, n)
			}
			sort.Slice(cur.Nodes, func(i, j int) bool { return cur.Nodes[i] < cur.Nodes[j] })
			out = append(out, *cur)
			cur = nil
		}
		for i := range tps {
			tp := tps[i]
			if cur != nil && tp.Start.Sub(cur.End) <= window {
				if tp.End.After(cur.End) {
					cur.End = tp.End
				}
				if tp.Severity > cur.Severity {
					cur.Severity = tp.Severity
				}
				cur.Tuples++
				cur.Events += tp.Count
				if tp.Node == errlog.SystemWide {
					cur.SystemWide = true
				} else {
					nodes[tp.Node] = true
				}
				continue
			}
			flush()
			g := Group{
				Category: cat,
				Severity: tp.Severity,
				Start:    tp.Start, End: tp.End,
				Tuples: 1, Events: tp.Count,
				SystemWide: tp.Node == errlog.SystemWide,
			}
			nodes = make(map[machine.NodeID]bool)
			if tp.Node != errlog.SystemWide {
				nodes[tp.Node] = true
			}
			cur = &g
		}
		flush()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// Stats summarizes the reduction achieved by the pipeline stages, the
// numbers behind the coalescing-effectiveness experiment.
type Stats struct {
	Raw     int
	Deduped int
	Tuples  int
	Groups  int
}

// ReductionFactor returns raw-to-group compression (0 when empty).
func (s Stats) ReductionFactor() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.Raw) / float64(s.Groups)
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("raw=%d deduped=%d tuples=%d groups=%d (%.1fx reduction)",
		s.Raw, s.Deduped, s.Tuples, s.Groups, s.ReductionFactor())
}

// Pipeline runs dedup, tupling and spatial coalescing with the given
// windows and reports the intermediate products and reduction stats.
func Pipeline(events []errlog.Event, temporal, spatial time.Duration) ([]Tuple, []Group, Stats) {
	deduped := Dedup(events)
	tuples := Tuples(deduped, temporal)
	groups := Spatial(tuples, spatial)
	return tuples, groups, Stats{
		Raw:     len(events),
		Deduped: len(deduped),
		Tuples:  len(tuples),
		Groups:  len(groups),
	}
}
