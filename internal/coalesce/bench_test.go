package coalesce

import (
	"math/rand"
	"testing"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

// benchEvents builds a realistic mixed stream: bursts on some nodes,
// singletons elsewhere, a fraction duplicated.
func benchEvents(n int) []errlog.Event {
	rng := rand.New(rand.NewSource(42))
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	cats := []taxonomy.Category{
		taxonomy.HardwareMemoryCE, taxonomy.FilesystemTimeout,
		taxonomy.NodeHeartbeat, taxonomy.InterconnectLink,
	}
	events := make([]errlog.Event, 0, n)
	for len(events) < n {
		node := machine.NodeID(rng.Intn(2000))
		cat := cats[rng.Intn(len(cats))]
		at := start.Add(time.Duration(rng.Intn(30*86400)) * time.Second)
		burst := 1 + rng.Intn(10)
		for k := 0; k < burst && len(events) < n; k++ {
			e := errlog.Event{
				Time:     at.Add(time.Duration(k*7) * time.Second),
				Node:     node,
				Category: cat,
				Severity: taxonomy.SevWarning,
				Message:  "bench event",
			}
			events = append(events, e)
			if rng.Float64() < 0.02 && len(events) < n {
				events = append(events, e) // duplicate
			}
		}
	}
	return events
}

func BenchmarkDedup(b *testing.B) {
	events := benchEvents(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Dedup(events); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTuples(b *testing.B) {
	events := Dedup(benchEvents(50000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Tuples(events, DefaultTemporalWindow); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkSpatial(b *testing.B) {
	tuples := Tuples(Dedup(benchEvents(50000)), DefaultTemporalWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Spatial(tuples, DefaultSpatialWindow); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkPipeline(b *testing.B) {
	events := benchEvents(50000)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, stats := Pipeline(events, DefaultTemporalWindow, DefaultSpatialWindow)
		if stats.Groups == 0 {
			b.Fatal("no groups")
		}
	}
}
