package gen

import (
	"math/rand"
	"testing"
	"time"

	"logdiver/internal/machine"
)

// backfillConfig builds a saturated workload where capability jobs
// regularly block the queue head, so the scheduling discipline matters:
// under strict FIFO the machine idles while draining for the 900-node
// head; under backfill the backlog keeps it busy.
func backfillConfig(backfill bool, seed int64) Config {
	cfg := testConfig(4)
	cfg.Seed = seed
	cfg.Workload.Backfill = backfill
	cfg.Workload.JobsPerDay = 1500 // oversubscribed: queue never empties
	cfg.Workload.XECapabilityJobsPerDay = 6
	cfg.Workload.XECapabilitySizes = []int{900}
	return cfg
}

func totalNodeHours(ds *Dataset) float64 {
	var nh float64
	for _, r := range ds.Runs {
		nh += r.NodeHours()
	}
	return nh
}

// newMicroSim builds a bare simulator over the small machine for direct
// scheduler-discipline tests.
func newMicroSim(t *testing.T, backfill bool) *sim {
	t.Helper()
	cfg := testConfig(1)
	cfg.Workload.Backfill = backfill
	top, err := machine.New(cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	return &sim{
		cfg:   cfg,
		top:   top,
		rng:   rand.New(rand.NewSource(1)),
		bg:    &faults{nodeFatal: map[machine.NodeID][]fatal{}},
		xe:    newAllocator(top.XENodes()),
		xk:    newAllocator(top.XKNodes()),
		truth: make(map[uint64]Truth),
		end:   cfg.Start.Add(24 * time.Hour),
	}
}

func microJob(size int, queuedAt time.Time) plannedJob {
	return plannedJob{
		class:    machine.ClassXE,
		size:     size,
		runs:     []time.Duration{30 * time.Minute},
		user:     "u",
		account:  "a",
		queue:    "normal",
		walltime: 2 * time.Hour,
		queuedAt: queuedAt,
		cmd:      cmdProfiles[0],
	}
}

// TestBackfillJumpsBlockedHead pins the discipline semantics directly:
// with the head blocked on a near-full machine, FIFO holds every later
// job while backfill starts the ones that fit.
func TestBackfillJumpsBlockedHead(t *testing.T) {
	now := testConfig(1).Start
	for _, backfill := range []bool{false, true} {
		s := newMicroSim(t, backfill)
		// Occupy most of the XE pool so the 900-node head cannot fit.
		busy := s.xe.alloc(s.xe.cap - 400)
		if busy == nil {
			t.Fatal("setup alloc failed")
		}
		queue := []plannedJob{microJob(900, now), microJob(100, now)}
		left := s.tryStartQueue(queue, s.xe, now)
		if backfill {
			if len(left) != 1 || left[0].size != 900 {
				t.Errorf("backfill: queue = %d jobs (head size %d), want the blocked 900 head only",
					len(left), left[0].size)
			}
		} else {
			if len(left) != 2 {
				t.Errorf("FIFO: queue = %d jobs, want both held behind the blocked head", len(left))
			}
		}
	}
}

// TestBackfillStarvationGuard: once the head has waited past the limit,
// backfill suspends and the machine drains for it.
func TestBackfillStarvationGuard(t *testing.T) {
	now := testConfig(1).Start
	s := newMicroSim(t, true)
	s.cfg.Workload.BackfillHeadWaitLimit = time.Hour
	busy := s.xe.alloc(s.xe.cap - 400)
	if busy == nil {
		t.Fatal("setup alloc failed")
	}
	// Head queued 2h ago: beyond the 1h limit.
	queue := []plannedJob{microJob(900, now.Add(-2*time.Hour)), microJob(100, now)}
	left := s.tryStartQueue(queue, s.xe, now)
	if len(left) != 2 {
		t.Errorf("queue = %d jobs; the starvation guard must stop backfill", len(left))
	}
}

func TestBackfillDoesNotStarveCapabilityJobs(t *testing.T) {
	ds, err := Generate(backfillConfig(true, 77))
	if err != nil {
		t.Fatal(err)
	}
	var fullScale int
	for _, r := range ds.Runs {
		if len(r.Nodes) == 900 {
			fullScale++
		}
	}
	if fullScale == 0 {
		t.Error("no full-scale capability runs executed under backfill (starvation)")
	}
}

func TestBackfillPreservesPlacementExclusivity(t *testing.T) {
	ds, err := Generate(backfillConfig(true, 77))
	if err != nil {
		t.Fatal(err)
	}
	busyUntil := make(map[machine.NodeID]int64)
	for _, r := range ds.Runs { // sorted by start
		for _, n := range r.Nodes {
			if until, ok := busyUntil[n]; ok && r.Start.UnixNano() < until {
				t.Fatalf("node %d double-booked under backfill", n)
			}
			busyUntil[n] = r.End.UnixNano()
		}
	}
}
