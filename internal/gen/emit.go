package gen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/stream"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// apsysHost is the service host apsys records are logged from.
const apsysHost = "nid00038"

// emitChunkRecords is the number of records a formatting worker renders per
// block during parallel emission.
const emitChunkRecords = 4096

// emitWorkers resolves the emission worker count from the dataset config.
func (d *Dataset) emitWorkers() int {
	if d.Config.Parallelism > 0 {
		return d.Config.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// writeRanges renders n records into per-range buffers on the emission
// worker pool and writes the buffers to w in index order, so the output is
// byte-identical to a sequential loop calling format for 0..n-1. The
// format callback must be pure (it runs concurrently).
func writeRanges(w io.Writer, workers, n int, format func(buf []byte, i int) []byte) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	err := stream.Ordered(workers,
		func(emit func([2]int) bool) error {
			stream.Ranges(n, emitChunkRecords, func(lo, hi int) bool { return emit([2]int{lo, hi}) })
			return nil
		},
		func(span [2]int) ([]byte, error) {
			buf := make([]byte, 0, (span[1]-span[0])*128)
			for i := span[0]; i < span[1]; i++ {
				buf = format(buf, i)
			}
			return buf, nil
		},
		func(buf []byte) error {
			_, err := bw.Write(buf)
			return err
		})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteAccounting writes the Torque-style accounting archive: Q, S and E
// records for every job, in record-time order. Record formatting is sharded
// across the emission worker pool (Config.Parallelism); output order and
// bytes match sequential emission exactly.
func (d *Dataset) WriteAccounting(w io.Writer) error {
	recs := make([]wlm.Record, 0, 3*len(d.Jobs))
	for _, j := range d.Jobs {
		recs = append(recs, wlm.QueueRecord(j), wlm.StartRecord(j), wlm.EndRecord(j))
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	err := writeRanges(w, d.emitWorkers(), len(recs), func(buf []byte, i int) []byte {
		buf = append(buf, wlm.FormatRecord(recs[i])...)
		return append(buf, '\n')
	})
	if err != nil {
		return fmt.Errorf("gen: accounting: %w", err)
	}
	return nil
}

// WriteApsys writes the ALPS apsys archive: Starting and Finishing syslog
// lines for every run, in time order. Message bodies and syslog framing are
// rendered on the emission worker pool.
func (d *Dataset) WriteApsys(w io.Writer) error {
	type entry struct {
		at    time.Time
		run   int
		start bool
	}
	entries := make([]entry, 0, 2*len(d.Runs))
	for i, r := range d.Runs {
		entries = append(entries, entry{r.Start, i, true})
		entries = append(entries, entry{r.End, i, false})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].at.Before(entries[j].at) })
	err := writeRanges(w, d.emitWorkers(), len(entries), func(buf []byte, i int) []byte {
		e := entries[i]
		body := alps.ExitMessage(d.Runs[e.run])
		if e.start {
			body = alps.StartMessage(d.Runs[e.run])
		}
		line := syslogx.Line{Time: e.at, Host: apsysHost, Tag: alps.Tag, Message: body}
		buf = append(buf, syslogx.Format(line)...)
		return append(buf, '\n')
	})
	if err != nil {
		return fmt.Errorf("gen: apsys: %w", err)
	}
	return nil
}

// WriteErrorLog writes the syslog error archive. With the configured
// probabilities it injects forwarder duplicates and malformed lines, which
// the analysis pipeline must tolerate (and deduplicate). All random
// decisions are drawn sequentially up front (one rng draw per event, same
// sequence as ever), then line rendering is sharded across the emission
// worker pool; output bytes are identical to sequential emission.
func (d *Dataset) WriteErrorLog(w io.Writer) error {
	rng := rand.New(rand.NewSource(d.Config.Seed + 7919))
	days := float64(d.Config.Days)
	nMalformed := int(d.Config.Rates.MalformedPerDay * days)
	malformedEvery := 0
	if nMalformed > 0 && len(d.Events) > 0 {
		malformedEvery = len(d.Events)/nMalformed + 1
	}
	dup := make([]bool, len(d.Events))
	for i := range d.Events {
		dup[i] = rng.Float64() < d.Config.Rates.DupProb
	}
	err := writeRanges(w, d.emitWorkers(), len(d.Events), func(buf []byte, i int) []byte {
		e := d.Events[i]
		line := syslogx.Line{Time: e.Time, Host: e.Cname, Tag: errlog.Tag(e.Category), Message: e.Message}
		if line.Host == "" {
			line.Host = "sdb"
		}
		raw := syslogx.Format(line)
		buf = append(buf, raw...)
		buf = append(buf, '\n')
		if dup[i] {
			buf = append(buf, raw...)
			buf = append(buf, '\n')
		}
		if malformedEvery > 0 && i%malformedEvery == malformedEvery-1 {
			// Inject a truncated copy: real archives contain lines cut
			// mid-write, and the parser must skip them. Cut inside the
			// timestamp/host prefix so the line can never parse.
			cut := 20
			if cut > len(raw) {
				cut = len(raw)
			}
			buf = append(buf, raw[:cut]...)
			buf = append(buf, '\n')
		}
		return buf
	})
	if err != nil {
		return fmt.Errorf("gen: errorlog: %w", err)
	}
	return nil
}

// TruthRecord is the JSONL ground-truth representation.
type TruthRecord struct {
	ApID     uint64 `json:"apid"`
	Outcome  string `json:"outcome"`
	Category string `json:"category,omitempty"`
	Detected bool   `json:"detected"`
}

// WriteTruth writes the ground-truth sidecar as JSON lines, sorted by apid.
func (d *Dataset) WriteTruth(w io.Writer) error {
	ids := make([]uint64, 0, len(d.Truth))
	for id := range d.Truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, id := range ids {
		t := d.Truth[id]
		rec := TruthRecord{
			ApID:     id,
			Outcome:  t.Outcome.String(),
			Detected: t.Detected,
		}
		if t.Category != taxonomy.Unclassified {
			rec.Category = t.Category.String()
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("gen: truth: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTruth parses a ground-truth sidecar written by WriteTruth.
func ReadTruth(r io.Reader) (map[uint64]Truth, error) {
	out := make(map[uint64]Truth)
	dec := json.NewDecoder(r)
	for {
		var rec TruthRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("gen: truth: %w", err)
		}
		t := Truth{Detected: rec.Detected}
		switch rec.Outcome {
		case correlate.OutcomeSuccess.String():
			t.Outcome = correlate.OutcomeSuccess
		case correlate.OutcomeUserFailure.String():
			t.Outcome = correlate.OutcomeUserFailure
		case correlate.OutcomeWalltime.String():
			t.Outcome = correlate.OutcomeWalltime
		case correlate.OutcomeSystemFailure.String():
			t.Outcome = correlate.OutcomeSystemFailure
		default:
			return nil, fmt.Errorf("gen: truth: unknown outcome %q", rec.Outcome)
		}
		if rec.Category != "" {
			cat, ok := taxonomy.ParseCategory(rec.Category)
			if !ok {
				return nil, fmt.Errorf("gen: truth: unknown category %q", rec.Category)
			}
			t.Category = cat
		}
		out[rec.ApID] = t
	}
	return out, nil
}
