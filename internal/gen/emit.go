package gen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// apsysHost is the service host apsys records are logged from.
const apsysHost = "nid00038"

// WriteAccounting writes the Torque-style accounting archive: Q, S and E
// records for every job, in record-time order.
func (d *Dataset) WriteAccounting(w io.Writer) error {
	recs := make([]wlm.Record, 0, 3*len(d.Jobs))
	for _, j := range d.Jobs {
		recs = append(recs, wlm.QueueRecord(j), wlm.StartRecord(j), wlm.EndRecord(j))
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	out := wlm.NewWriter(w)
	for _, r := range recs {
		if err := out.Write(r); err != nil {
			return fmt.Errorf("gen: accounting: %w", err)
		}
	}
	return out.Flush()
}

// WriteApsys writes the ALPS apsys archive: Starting and Finishing syslog
// lines for every run, in time order.
func (d *Dataset) WriteApsys(w io.Writer) error {
	type entry struct {
		at   time.Time
		body string
	}
	entries := make([]entry, 0, 2*len(d.Runs))
	for _, r := range d.Runs {
		entries = append(entries, entry{r.Start, alps.StartMessage(r)})
		entries = append(entries, entry{r.End, alps.ExitMessage(r)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].at.Before(entries[j].at) })
	out := syslogx.NewWriter(w)
	for _, e := range entries {
		err := out.Write(syslogx.Line{Time: e.at, Host: apsysHost, Tag: alps.Tag, Message: e.body})
		if err != nil {
			return fmt.Errorf("gen: apsys: %w", err)
		}
	}
	return out.Flush()
}

// WriteErrorLog writes the syslog error archive. With the configured
// probabilities it injects forwarder duplicates and malformed lines, which
// the analysis pipeline must tolerate (and deduplicate).
func (d *Dataset) WriteErrorLog(w io.Writer) error {
	rng := rand.New(rand.NewSource(d.Config.Seed + 7919))
	out := syslogx.NewWriter(w)
	days := float64(d.Config.Days)
	nMalformed := int(d.Config.Rates.MalformedPerDay * days)
	malformedEvery := 0
	if nMalformed > 0 && len(d.Events) > 0 {
		malformedEvery = len(d.Events)/nMalformed + 1
	}
	for i, e := range d.Events {
		line := syslogx.Line{Time: e.Time, Host: e.Cname, Tag: errlog.Tag(e.Category), Message: e.Message}
		if line.Host == "" {
			line.Host = "sdb"
		}
		if err := out.Write(line); err != nil {
			return fmt.Errorf("gen: errorlog: %w", err)
		}
		if rng.Float64() < d.Config.Rates.DupProb {
			if err := out.Write(line); err != nil {
				return fmt.Errorf("gen: errorlog: %w", err)
			}
		}
		if malformedEvery > 0 && i%malformedEvery == malformedEvery-1 {
			// Inject a truncated copy: real archives contain lines cut
			// mid-write, and the parser must skip them. Cut inside the
			// timestamp/host prefix so the line can never parse.
			raw := syslogx.Format(line)
			cut := 20
			if cut > len(raw) {
				cut = len(raw)
			}
			if err := out.WriteRawLine(raw[:cut]); err != nil {
				return err
			}
		}
	}
	return out.Flush()
}

// TruthRecord is the JSONL ground-truth representation.
type TruthRecord struct {
	ApID     uint64 `json:"apid"`
	Outcome  string `json:"outcome"`
	Category string `json:"category,omitempty"`
	Detected bool   `json:"detected"`
}

// WriteTruth writes the ground-truth sidecar as JSON lines, sorted by apid.
func (d *Dataset) WriteTruth(w io.Writer) error {
	ids := make([]uint64, 0, len(d.Truth))
	for id := range d.Truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, id := range ids {
		t := d.Truth[id]
		rec := TruthRecord{
			ApID:     id,
			Outcome:  t.Outcome.String(),
			Detected: t.Detected,
		}
		if t.Category != taxonomy.Unclassified {
			rec.Category = t.Category.String()
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("gen: truth: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTruth parses a ground-truth sidecar written by WriteTruth.
func ReadTruth(r io.Reader) (map[uint64]Truth, error) {
	out := make(map[uint64]Truth)
	dec := json.NewDecoder(r)
	for {
		var rec TruthRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("gen: truth: %w", err)
		}
		t := Truth{Detected: rec.Detected}
		switch rec.Outcome {
		case correlate.OutcomeSuccess.String():
			t.Outcome = correlate.OutcomeSuccess
		case correlate.OutcomeUserFailure.String():
			t.Outcome = correlate.OutcomeUserFailure
		case correlate.OutcomeWalltime.String():
			t.Outcome = correlate.OutcomeWalltime
		case correlate.OutcomeSystemFailure.String():
			t.Outcome = correlate.OutcomeSystemFailure
		default:
			return nil, fmt.Errorf("gen: truth: unknown outcome %q", rec.Outcome)
		}
		if rec.Category != "" {
			cat, ok := taxonomy.ParseCategory(rec.Category)
			if !ok {
				return nil, fmt.Errorf("gen: truth: unknown category %q", rec.Category)
			}
			t.Category = cat
		}
		out[rec.ApID] = t
	}
	return out, nil
}
