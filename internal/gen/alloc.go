package gen

import (
	"fmt"
	"sort"

	"logdiver/internal/machine"
)

// span is a half-open range [lo, hi) of node IDs.
type span struct {
	lo, hi machine.NodeID
}

// allocator hands out node IDs from a pool, lowest-first, mimicking the
// placement locality of a real scheduler (contiguous ranges preferred, so
// blade- and cabinet-level failure domains are shared by co-placed runs).
type allocator struct {
	free []span // sorted, disjoint, non-adjacent
	cap  int
	used int
}

// newAllocator builds an allocator over the given node IDs (need not be
// contiguous; they are normalized into spans).
func newAllocator(ids []machine.NodeID) *allocator {
	sorted := make([]machine.NodeID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	a := &allocator{cap: len(sorted)}
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		a.free = append(a.free, span{sorted[i], sorted[j] + 1})
		i = j + 1
	}
	return a
}

// freeCount returns the number of available nodes.
func (a *allocator) freeCount() int { return a.cap - a.used }

// alloc takes n nodes from the pool, lowest-first. It returns nil (and
// leaves the pool untouched) when fewer than n nodes are free.
func (a *allocator) alloc(n int) []machine.NodeID {
	if n <= 0 || n > a.freeCount() {
		return nil
	}
	out := make([]machine.NodeID, 0, n)
	remaining := n
	i := 0
	for remaining > 0 {
		s := &a.free[i]
		take := int(s.hi - s.lo)
		if take > remaining {
			take = remaining
		}
		for k := 0; k < take; k++ {
			out = append(out, s.lo+machine.NodeID(k))
		}
		s.lo += machine.NodeID(take)
		remaining -= take
		if s.lo == s.hi {
			i++
		}
	}
	a.free = a.free[i:]
	a.used += n
	return out
}

// release returns nodes to the pool. The slice must contain IDs previously
// handed out by alloc and not yet released; violating this corrupts the
// pool, so release validates against double-free by checking span overlap.
func (a *allocator) release(ids []machine.NodeID) error {
	if len(ids) == 0 {
		return nil
	}
	sorted := make([]machine.NodeID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var spans []span
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if j > i && sorted[i] == sorted[j] {
			return fmt.Errorf("gen: duplicate node %d in release", sorted[i])
		}
		spans = append(spans, span{sorted[i], sorted[j] + 1})
		i = j + 1
	}
	for _, s := range spans {
		if err := a.insert(s); err != nil {
			return err
		}
	}
	a.used -= len(sorted)
	return nil
}

// insert merges one span into the free list.
func (a *allocator) insert(s span) error {
	i := sort.Search(len(a.free), func(k int) bool { return a.free[k].lo >= s.lo })
	// Overlap checks against neighbors.
	if i > 0 && a.free[i-1].hi > s.lo {
		return fmt.Errorf("gen: release of free node range [%d,%d)", s.lo, s.hi)
	}
	if i < len(a.free) && a.free[i].lo < s.hi {
		return fmt.Errorf("gen: release of free node range [%d,%d)", s.lo, s.hi)
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Merge with predecessor and successor where adjacent.
	if i > 0 && a.free[i-1].hi == a.free[i].lo {
		a.free[i-1].hi = a.free[i].hi
		a.free = append(a.free[:i], a.free[i+1:]...)
		i--
	}
	if i+1 < len(a.free) && a.free[i].hi == a.free[i+1].lo {
		a.free[i].hi = a.free[i+1].hi
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	return nil
}
