package gen

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

// fatal is a node-scoped application-killing fault.
type fatal struct {
	at  time.Time
	cat taxonomy.Category
}

// sharedKind discriminates machine-scoped fault types.
type sharedKind int

const (
	sharedFS sharedKind = iota + 1
	sharedHSN
)

// shared is a machine-scoped fault that may kill any running application.
type shared struct {
	at   time.Time
	kind sharedKind
	cat  taxonomy.Category
}

// faults is the pre-generated background fault timeline.
type faults struct {
	// nodeFatal maps nodes with at least one fatal fault to their
	// time-sorted fault list.
	nodeFatal map[machine.NodeID][]fatal
	// shared is the time-sorted machine-scoped fault list.
	shared []shared
	// logged accumulates the log events the faults leave behind.
	logged []errlog.Event
}

// poisson samples a Poisson variate. Knuth's method below mean 30, normal
// approximation above.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// severityTable maps each category to the severity the default classifier
// assigns, built once: severityOf runs per generated event, and rebuilding
// the default classifier (19 regexp compilations) per call dominated
// fixture generation.
var (
	severityOnce  sync.Once
	severityTable map[taxonomy.Category]taxonomy.Severity
)

// severityOf returns the severity the default classifier assigns to a
// category, so in-memory events match what parsing the rendered text yields.
func severityOf(cat taxonomy.Category) taxonomy.Severity {
	severityOnce.Do(func() {
		rules := taxonomy.Default().Rules()
		severityTable = make(map[taxonomy.Category]taxonomy.Severity, len(rules))
		for _, r := range rules {
			if _, ok := severityTable[r.Category]; !ok {
				severityTable[r.Category] = r.Severity
			}
		}
	})
	if sev, ok := severityTable[cat]; ok {
		return sev
	}
	return taxonomy.SevInfo
}

// pickWeighted selects an index with probability proportional to weights.
func pickWeighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// logEvent renders and records one logged event.
func (f *faults) logEvent(rng *rand.Rand, top *machine.Topology, at time.Time, node machine.NodeID, cat taxonomy.Category) {
	cname := "sdb"
	if node != errlog.SystemWide {
		cname = top.MustNode(node).Cname.String()
	}
	f.logged = append(f.logged, errlog.Event{
		Time:     at,
		Node:     node,
		Cname:    cname,
		Category: cat,
		Severity: severityOf(cat),
		Message:  errlog.Render(cat, cname, rng),
	})
}

// addFatal records a node-scoped kill and its log evidence.
func (f *faults) addFatal(rng *rand.Rand, top *machine.Topology, at time.Time, node machine.NodeID, cat taxonomy.Category) {
	f.nodeFatal[node] = append(f.nodeFatal[node], fatal{at: at, cat: cat})
	f.logEvent(rng, top, at, node, cat)
}

// generateFaults builds the background fault timeline for the span.
func generateFaults(cfg Config, top *machine.Topology, rng *rand.Rand) *faults {
	f := &faults{nodeFatal: make(map[machine.NodeID][]fatal)}
	hours := float64(cfg.Days) * 24
	span := time.Duration(cfg.Days) * 24 * time.Hour
	randAt := func() time.Time {
		return cfg.Start.Add(time.Duration(rng.Int63n(int64(span))))
	}

	compute := append(top.XENodes(), top.XKNodes()...)
	sort.Slice(compute, func(i, j int) bool { return compute[i] < compute[j] })
	randComputeNode := func() machine.NodeID {
		return compute[rng.Intn(len(compute))]
	}
	spanEnd := cfg.Start.Add(span)
	// recoverNode emits the HSS "returned to service" record a repair
	// time after a node death; nodes that die near the end of the span
	// stay down (no recovery logged), as on a real machine.
	recoverNode := func(node machine.NodeID, downAt time.Time, medianHours, sigma float64) {
		repair := time.Duration(medianHours * math.Exp(sigma*rng.NormFloat64()) * float64(time.Hour))
		if repair < 5*time.Minute {
			repair = 5 * time.Minute
		}
		upAt := downAt.Add(repair)
		if upAt.After(spanEnd) {
			return
		}
		f.logEvent(rng, top, upAt, node, taxonomy.NodeRecovered)
	}

	// Node-local fatal faults: uncorrected memory, CPU machine checks,
	// kernel panics, heartbeat losses. A heartbeat loss is often the
	// *second* record of the same death (the panic then the HSS alert),
	// so panics also emit a trailing heartbeat event.
	nodeFatalCats := []taxonomy.Category{
		taxonomy.HardwareMemoryUE, taxonomy.HardwareCPU,
		taxonomy.KernelPanic, taxonomy.NodeHeartbeat,
	}
	nodeFatalWeights := []float64{0.30, 0.10, 0.25, 0.35}
	nFatal := poisson(rng, cfg.Rates.NodeFatalPerNodeHour*float64(len(compute))*hours)
	for i := 0; i < nFatal; i++ {
		at := randAt()
		node := randComputeNode()
		cat := nodeFatalCats[pickWeighted(rng, nodeFatalWeights)]
		f.addFatal(rng, top, at, node, cat)
		if cat == taxonomy.KernelPanic {
			f.logEvent(rng, top, at.Add(time.Duration(20+rng.Intn(60))*time.Second),
				node, taxonomy.NodeHeartbeat)
		}
		recoverNode(node, at, 2.0, 0.7) // typical repair: a couple of hours
	}

	// Blade faults: the blade's four nodes die together.
	nBlade := poisson(rng, cfg.Rates.BladeFailPerHour*hours)
	for i := 0; i < nBlade; i++ {
		at := randAt()
		blade := machine.BladeID(rng.Intn(top.NumBlades()))
		nodes, err := top.BladeNodes(blade)
		if err != nil {
			continue
		}
		cat := taxonomy.HardwareBlade
		if rng.Intn(2) == 0 {
			cat = taxonomy.HardwarePower
		}
		for _, n := range nodes {
			f.addFatal(rng, top, at, n, cat)
			recoverNode(n, at, 5.0, 0.6) // blade swap: several hours
		}
	}

	// Gemini link failures: the ASIC's two nodes drop off the network
	// (fatal for their runs) and the resulting reroute/quiesce is a
	// machine-scoped hazard for large tightly-coupled applications.
	nLink := poisson(rng, cfg.Rates.LinkFailPerHour*hours)
	for i := 0; i < nLink; i++ {
		at := randAt()
		gem := machine.GeminiID(rng.Intn(top.NumGeminis()))
		nodes, err := top.GeminiNodes(gem)
		if err != nil {
			continue
		}
		for _, n := range nodes {
			f.addFatal(rng, top, at, n, taxonomy.InterconnectLink)
			recoverNode(n, at, 0.6, 0.5) // link retrain/warm swap: under an hour
		}
		quiesceAt := at.Add(time.Duration(5+rng.Intn(30)) * time.Second)
		f.shared = append(f.shared, shared{at: quiesceAt, kind: sharedHSN, cat: taxonomy.InterconnectRouting})
		f.logEvent(rng, top, quiesceAt, errlog.SystemWide, taxonomy.InterconnectRouting)
	}

	// Lustre outages: a machine-scoped event plus eviction chatter on a
	// handful of client nodes.
	nFS := poisson(rng, cfg.Rates.FSOutagePerHour*hours)
	for i := 0; i < nFS; i++ {
		at := randAt()
		cat := taxonomy.FilesystemUnavail
		if rng.Float64() < 0.15 {
			cat = taxonomy.FilesystemLBUG
		}
		f.shared = append(f.shared, shared{at: at, kind: sharedFS, cat: cat})
		f.logEvent(rng, top, at, errlog.SystemWide, cat)
		// Client-side chatter: slow-reply/timeout warnings on a handful
		// of nodes. Warning grade: an eviction is usually survived by the
		// application (I/O retries), so it must not qualify as failure
		// evidence by itself.
		evictions := 5 + rng.Intn(20)
		for k := 0; k < evictions; k++ {
			f.logEvent(rng, top, at.Add(time.Duration(rng.Intn(120))*time.Second),
				randComputeNode(), taxonomy.FilesystemTimeout)
		}
	}

	// Benign noise episodes: corrected-memory bursts, Lustre slow-reply
	// warnings, GPU page retirements on hybrid nodes. These never kill
	// anything; they exist to exercise classification and coalescing at
	// realistic volume.
	xk := top.XKNodes()
	nBenign := poisson(rng, cfg.Rates.NodeBenignPerNodeHour*float64(len(compute))*hours)
	for i := 0; i < nBenign; i++ {
		at := randAt()
		node := randComputeNode()
		var cat taxonomy.Category
		switch pickWeighted(rng, []float64{0.55, 0.35, 0.10}) {
		case 0:
			cat = taxonomy.HardwareMemoryCE
		case 1:
			cat = taxonomy.FilesystemTimeout
		default:
			cat = taxonomy.GPUPageRetir
			node = xk[rng.Intn(len(xk))]
		}
		burst := 1
		if cfg.Rates.BurstMax > 1 {
			burst = 1 + rng.Intn(cfg.Rates.BurstMax)
		}
		for k := 0; k < burst; k++ {
			f.logEvent(rng, top, at.Add(time.Duration(k*7+rng.Intn(7))*time.Second), node, cat)
		}
	}

	for _, lst := range f.nodeFatal {
		sort.Slice(lst, func(i, j int) bool { return lst[i].at.Before(lst[j].at) })
	}
	sort.Slice(f.shared, func(i, j int) bool { return f.shared[i].at.Before(f.shared[j].at) })
	sort.Slice(f.logged, func(i, j int) bool { return f.logged[i].Time.Before(f.logged[j].Time) })
	return f
}

// firstFatalOn returns the earliest fatal fault on any of the nodes in
// (after, until], if any.
func (f *faults) firstFatalOn(nodes []machine.NodeID, after, until time.Time) (fatal, bool) {
	var best fatal
	var found bool
	for _, n := range nodes {
		lst, ok := f.nodeFatal[n]
		if !ok {
			continue
		}
		i := sort.Search(len(lst), func(k int) bool { return lst[k].at.After(after) })
		if i < len(lst) && !lst[i].at.After(until) {
			if !found || lst[i].at.Before(best.at) {
				best = lst[i]
				found = true
			}
		}
	}
	return best, found
}

// sharedIn returns the subslice of shared faults in (after, until].
func (f *faults) sharedIn(after, until time.Time) []shared {
	lo := sort.Search(len(f.shared), func(i int) bool { return f.shared[i].at.After(after) })
	hi := sort.Search(len(f.shared), func(i int) bool { return f.shared[i].at.After(until) })
	return f.shared[lo:hi]
}
