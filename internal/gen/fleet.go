package gen

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Fleet fixtures: the multi-machine analogue of Small. A fleet is K small
// machines with distinct names, overlapping production windows and disjoint
// run/job identifier ranges, so per-machine analyses can be merged into one
// fleet view without identifier collisions. The merge oracle tests and the
// CI fleet-smoke job both build their shards from these fixtures.

const (
	// fleetApIDStride separates the aprun-id ranges of fleet machines.
	// Each machine owns a 2^24 apid block, subdivided per append window.
	fleetApIDStride = 1 << 24
	// fleetWindowApIDStride separates the apid ranges of successive append
	// windows within one machine's block.
	fleetWindowApIDStride = 1 << 20
	// fleetJobIDStride and fleetWindowJobIDStride do the same for batch
	// job ids (rendered as 1000000+base+n).
	fleetJobIDStride       = 1 << 20
	fleetWindowJobIDStride = 1 << 16
	// fleetStagger is the start-time offset between consecutive machines.
	// It is a fraction of a day, so every machine's window overlaps every
	// other's: the fleet is a concurrent field study, not a relay.
	fleetStagger = 6 * time.Hour
)

// FleetMachine is one machine of a synthesized fleet: a name (stable across
// windows, used as the shard name in fleet configs) and the generator
// configuration of its first production window.
type FleetMachine struct {
	Name   string
	Config Config
}

// Fleet returns K small-machine fixtures named m00, m01, ... with distinct
// seeds, staggered-but-overlapping start times and disjoint apid/job-id
// ranges. days is the span of each machine's base window; seed drives all
// randomness (machine i derives its own stream from seed+i).
func Fleet(k, days int, seed int64) []FleetMachine {
	machines := make([]FleetMachine, 0, k)
	for i := 0; i < k; i++ {
		cfg := Small(days)
		cfg.Seed = seed + int64(i)*1009
		cfg.Start = cfg.Start.Add(time.Duration(i) * fleetStagger)
		cfg.ApIDBase = uint64(i+1) * fleetApIDStride
		cfg.JobIDBase = (i + 1) * fleetJobIDStride
		machines = append(machines, FleetMachine{
			Name:   fmt.Sprintf("m%02d", i),
			Config: cfg,
		})
	}
	return machines
}

// Window returns the configuration of append window w for the machine.
// Window 0 is the base configuration; window w starts where window w-1
// ended and draws from a disjoint apid/job-id sub-range, so its archives
// can be appended to the base files and re-analyzed incrementally.
func (m FleetMachine) Window(w int) Config {
	cfg := m.Config
	cfg.Seed += int64(w) * 7919
	cfg.Start = cfg.Start.Add(time.Duration(w*cfg.Days) * 24 * time.Hour)
	cfg.ApIDBase += uint64(w) * fleetWindowApIDStride
	cfg.JobIDBase += w * fleetWindowJobIDStride
	return cfg
}

// WriteDir writes the dataset's four conventional files (accounting.log,
// apsys.log, syslog.log, truth.jsonl) into dir, creating the directory if
// needed. The file names match what the store Tailer and the daemon expect
// of an archive directory.
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gen: %w", err)
	}
	write := func(name string, emit func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("gen: %w", err)
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("gen: write %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("gen: close %s: %w", name, err)
		}
		return nil
	}
	if err := write("accounting.log", func(w *os.File) error { return d.WriteAccounting(w) }); err != nil {
		return err
	}
	if err := write("apsys.log", func(w *os.File) error { return d.WriteApsys(w) }); err != nil {
		return err
	}
	if err := write("syslog.log", func(w *os.File) error { return d.WriteErrorLog(w) }); err != nil {
		return err
	}
	return write("truth.jsonl", func(w *os.File) error { return d.WriteTruth(w) })
}
