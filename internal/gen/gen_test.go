package gen

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// testConfig returns a fast configuration on the small topology.
func testConfig(days int) Config {
	cfg := Default()
	cfg.Machine = machine.Small() // 16 cabinets, 1536 node slots
	cfg.Days = days
	cfg.Seed = 42
	cfg.Workload.JobsPerDay = 400
	cfg.Workload.XECapabilityJobsPerDay = 2
	cfg.Workload.XKCapabilityJobsPerDay = 1
	cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	// Scale per-node rates up so the small machine still produces events.
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.NodeBenignPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 150
	return cfg
}

func generateTest(t *testing.T, days int) *Dataset {
	t.Helper()
	ds, err := Generate(testConfig(days))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"zero start", func(c *Config) { c.Start = time.Time{} }},
		{"no jobs", func(c *Config) { c.Workload.JobsPerDay = 0 }},
		{"runs per job", func(c *Config) { c.Workload.MeanRunsPerJob = 0.5 }},
		{"xk fraction", func(c *Config) { c.Workload.XKJobFraction = 1.5 }},
		{"neg capability", func(c *Config) { c.Workload.XECapabilityJobsPerDay = -1 }},
		{"capability runs", func(c *Config) { c.Workload.CapabilityRunsPerJob = 0 }},
		{"small size", func(c *Config) { c.Workload.SmallSizeMax = 0 }},
		{"cap sizes", func(c *Config) { c.Workload.XECapabilitySizes = nil }},
		{"gpu detect", func(c *Config) { c.Rates.GPUDetectProb = 2 }},
		{"user prob", func(c *Config) { c.Rates.UserFailureProb = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tt.name)
			}
		})
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, mean := range []float64{0, 0.5, 3, 25, 80, 5000} {
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if mean == 0 {
			if got != 0 {
				t.Errorf("poisson(0) mean = %v", got)
			}
			continue
		}
		if got < mean*0.9 || got > mean*1.1 {
			t.Errorf("poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	ds := generateTest(t, 3)
	if len(ds.Jobs) == 0 || len(ds.Runs) == 0 || len(ds.Events) == 0 {
		t.Fatalf("empty dataset: jobs=%d runs=%d events=%d", len(ds.Jobs), len(ds.Runs), len(ds.Events))
	}
	if len(ds.Truth) != len(ds.Runs) {
		t.Errorf("truth entries %d != runs %d", len(ds.Truth), len(ds.Runs))
	}
	if !sort.SliceIsSorted(ds.Runs, func(i, j int) bool {
		return ds.Runs[i].Start.Before(ds.Runs[j].Start) ||
			(ds.Runs[i].Start.Equal(ds.Runs[j].Start) && ds.Runs[i].ApID < ds.Runs[j].ApID)
	}) {
		t.Error("runs not sorted")
	}
	if !sort.SliceIsSorted(ds.Events, func(i, j int) bool { return ds.Events[i].Time.Before(ds.Events[j].Time) }) {
		t.Error("events not sorted")
	}
}

func TestGenerateRunInvariants(t *testing.T) {
	ds := generateTest(t, 3)
	for _, r := range ds.Runs {
		if !r.End.After(r.Start) {
			t.Fatalf("run %d has End %v <= Start %v", r.ApID, r.End, r.Start)
		}
		if len(r.Nodes) == 0 {
			t.Fatalf("run %d has no nodes", r.ApID)
		}
		if r.Start.Before(ds.Start) {
			t.Fatalf("run %d starts before span", r.ApID)
		}
		// Placement is class-homogeneous and within the topology.
		class := ds.Topology.MustNode(r.Nodes[0]).Class
		for _, n := range r.Nodes {
			node, err := ds.Topology.Node(n)
			if err != nil {
				t.Fatalf("run %d references bad node: %v", r.ApID, err)
			}
			if node.Class != class {
				t.Fatalf("run %d mixes node classes", r.ApID)
			}
		}
		if _, ok := ds.Truth[r.ApID]; !ok {
			t.Fatalf("run %d has no truth", r.ApID)
		}
		tr := ds.Truth[r.ApID]
		if tr.Outcome == correlate.OutcomeSuccess && r.Failed() {
			t.Fatalf("run %d: truth SUCCESS but exit (%d,%d)", r.ApID, r.ExitCode, r.Signal)
		}
		if tr.Outcome != correlate.OutcomeSuccess && !r.Failed() {
			t.Fatalf("run %d: truth %v but clean exit", r.ApID, tr.Outcome)
		}
	}
}

// TestGeneratePlacementExclusive verifies no node hosts two runs at once.
func TestGeneratePlacementExclusive(t *testing.T) {
	ds := generateTest(t, 2)
	busyUntil := make(map[machine.NodeID]time.Time)
	owner := make(map[machine.NodeID]uint64)
	for _, r := range ds.Runs { // sorted by start
		for _, n := range r.Nodes {
			if until, ok := busyUntil[n]; ok && r.Start.Before(until) {
				t.Fatalf("node %d shared by runs %d and %d", n, owner[n], r.ApID)
			}
			busyUntil[n] = r.End
			owner[n] = r.ApID
		}
	}
}

func TestGenerateJobInvariants(t *testing.T) {
	ds := generateTest(t, 3)
	seen := make(map[string]bool, len(ds.Jobs))
	for _, j := range ds.Jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job id %s", j.ID)
		}
		seen[j.ID] = true
		if j.EndedAt.Before(j.StartedAt) {
			t.Fatalf("job %s ends before start", j.ID)
		}
		if j.UsedWalltime > j.Walltime {
			t.Fatalf("job %s used %v > requested %v", j.ID, j.UsedWalltime, j.Walltime)
		}
		if j.Nodes <= 0 {
			t.Fatalf("job %s has %d nodes", j.ID, j.Nodes)
		}
		if j.User == "" || j.Queue == "" {
			t.Fatalf("job %s missing identity fields", j.ID)
		}
	}
	// Every run's job exists.
	for _, r := range ds.Runs {
		if !seen[r.JobID] {
			t.Fatalf("run %d references unknown job %q", r.ApID, r.JobID)
		}
	}
}

func TestGenerateOutcomeMix(t *testing.T) {
	ds := generateTest(t, 4)
	counts := map[correlate.Outcome]int{}
	detectedFalse := 0
	for _, tr := range ds.Truth {
		counts[tr.Outcome]++
		if !tr.Detected {
			detectedFalse++
		}
	}
	if counts[correlate.OutcomeSuccess] == 0 {
		t.Error("no successful runs")
	}
	if counts[correlate.OutcomeUserFailure] == 0 {
		t.Error("no user failures")
	}
	if counts[correlate.OutcomeSystemFailure] == 0 {
		t.Error("no system failures")
	}
	if counts[correlate.OutcomeWalltime] == 0 {
		t.Error("no walltime kills")
	}
	if detectedFalse == 0 {
		t.Error("no silent failures (GPU detection gap missing)")
	}
	// Successes dominate.
	if frac := float64(counts[correlate.OutcomeSuccess]) / float64(len(ds.Truth)); frac < 0.5 {
		t.Errorf("success fraction %.2f implausibly low", frac)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := generateTest(t, 2)
	b := generateTest(t, 2)
	if len(a.Runs) != len(b.Runs) || len(a.Events) != len(b.Events) || len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("sizes differ: (%d,%d,%d) vs (%d,%d,%d)",
			len(a.Runs), len(a.Events), len(a.Jobs), len(b.Runs), len(b.Events), len(b.Jobs))
	}
	for i := range a.Runs {
		x, y := a.Runs[i], b.Runs[i]
		if x.ApID != y.ApID || !x.Start.Equal(y.Start) || !x.End.Equal(y.End) ||
			x.ExitCode != y.ExitCode || x.Signal != y.Signal || len(x.Nodes) != len(y.Nodes) {
			t.Fatalf("run %d differs across identical seeds", i)
		}
	}
	// A different seed produces a different stream.
	cfg := testConfig(2)
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Runs) == len(a.Runs) && len(c.Events) == len(a.Events) && len(c.Jobs) == len(a.Jobs) {
		same := true
		for i := range c.Runs {
			if c.Runs[i].ApID != a.Runs[i].ApID || !c.Runs[i].Start.Equal(a.Runs[i].Start) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestGenerateEventsClassifiable(t *testing.T) {
	ds := generateTest(t, 2)
	cls := taxonomy.Default()
	for i, e := range ds.Events {
		if i%7 != 0 { // sample for speed
			continue
		}
		got, sev := cls.Classify(e.Message)
		if got != e.Category {
			t.Fatalf("event %d message %q classifies to %v, tagged %v", i, e.Message, got, e.Category)
		}
		if sev != e.Severity {
			t.Fatalf("event %d severity mismatch: %v vs %v", i, sev, e.Severity)
		}
	}
}

func TestWriteAccountingRoundTrip(t *testing.T) {
	ds := generateTest(t, 2)
	var buf strings.Builder
	if err := ds.WriteAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	sc := wlm.NewScanner(strings.NewReader(buf.String()), time.UTC)
	asm := wlm.NewAssembler()
	for sc.Scan() {
		if err := asm.Add(sc.Record()); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Malformed() != 0 {
		t.Errorf("accounting archive has %d malformed lines", sc.Malformed())
	}
	if asm.Len() != len(ds.Jobs) {
		t.Errorf("recovered %d jobs, want %d", asm.Len(), len(ds.Jobs))
	}
	jobs := asm.Jobs()
	byID := make(map[string]wlm.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for _, want := range ds.Jobs {
		got, ok := byID[want.ID]
		if !ok {
			t.Fatalf("job %s lost in round trip", want.ID)
		}
		if got.Nodes != want.Nodes || got.ExitStatus != want.ExitStatus ||
			!got.StartedAt.Equal(want.StartedAt.Truncate(time.Second)) {
			t.Fatalf("job %s mismatch:\n got %+v\nwant %+v", want.ID, got, want)
		}
	}
}

func TestWriteApsysRoundTrip(t *testing.T) {
	ds := generateTest(t, 2)
	var buf strings.Builder
	if err := ds.WriteApsys(&buf); err != nil {
		t.Fatal(err)
	}
	sc := syslogx.NewScanner(strings.NewReader(buf.String()))
	asm := alps.NewAssembler()
	for sc.Scan() {
		line := sc.Line()
		if line.Tag != alps.Tag {
			t.Fatalf("unexpected tag %q in apsys archive", line.Tag)
		}
		m, err := alps.ParseMessage(line.Message)
		if err != nil {
			t.Fatalf("parse %q: %v", line.Message, err)
		}
		if err := asm.Add(line.Time, m); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Malformed() != 0 {
		t.Errorf("apsys archive has %d malformed lines", sc.Malformed())
	}
	runs := asm.Runs()
	if len(runs) != len(ds.Runs) {
		t.Fatalf("recovered %d runs, want %d (open=%d unmatched=%d)",
			len(runs), len(ds.Runs), asm.Open(), asm.Unmatched())
	}
	for i := range runs {
		got, want := runs[i], ds.Runs[i]
		if got.ApID != want.ApID || got.ExitCode != want.ExitCode || got.Signal != want.Signal {
			t.Fatalf("run %d mismatch: got %+v want %+v", i, got, want)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("run %d node count %d != %d", i, len(got.Nodes), len(want.Nodes))
		}
	}
}

func TestWriteErrorLogRoundTrip(t *testing.T) {
	ds := generateTest(t, 2)
	var buf strings.Builder
	if err := ds.WriteErrorLog(&buf); err != nil {
		t.Fatal(err)
	}
	sc := syslogx.NewScanner(strings.NewReader(buf.String()))
	cls := taxonomy.Default()
	var parsed, unclassified int
	for sc.Scan() {
		parsed++
		cat, _ := cls.Classify(sc.Line().Message)
		if cat == taxonomy.Unclassified {
			unclassified++
		}
	}
	// Parsed count: every event, plus duplicates, minus nothing.
	if parsed < len(ds.Events) {
		t.Errorf("parsed %d lines < %d events", parsed, len(ds.Events))
	}
	if unclassified != 0 {
		t.Errorf("%d parsed lines did not classify", unclassified)
	}
	if ds.Config.Rates.MalformedPerDay > 0 && sc.Malformed() == 0 {
		t.Error("no malformed lines injected")
	}
}

func TestTruthRoundTrip(t *testing.T) {
	ds := generateTest(t, 2)
	var buf strings.Builder
	if err := ds.WriteTruth(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruth(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Truth) {
		t.Fatalf("recovered %d truth records, want %d", len(got), len(ds.Truth))
	}
	for id, want := range ds.Truth {
		if got[id] != want {
			t.Fatalf("truth %d: got %+v want %+v", id, got[id], want)
		}
	}
}

func TestReadTruthErrors(t *testing.T) {
	if _, err := ReadTruth(strings.NewReader(`{"apid":1,"outcome":"BOGUS"}`)); err == nil {
		t.Error("bogus outcome accepted")
	}
	if _, err := ReadTruth(strings.NewReader(`{"apid":1,"outcome":"SYSTEM","category":"NOPE"}`)); err == nil {
		t.Error("bogus category accepted")
	}
	if _, err := ReadTruth(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := Scaled(30)
	if cfg.Days != 30 {
		t.Errorf("Days = %d", cfg.Days)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		v := geometricAtLeastOne(rng, 3)
		if v < 1 || v > 64 {
			t.Fatalf("geometric sample %d out of range", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 2.7 || mean > 3.3 {
		t.Errorf("geometric mean = %v, want about 3", mean)
	}
	if geometricAtLeastOne(rng, 0.5) != 1 {
		t.Error("mean <= 1 should return 1")
	}
}

func TestLognormalDurationFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if d := lognormalDuration(rng, 0.001, 2); d < 10*time.Second {
			t.Fatalf("duration %v below floor", d)
		}
	}
}
