package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logdiver/internal/machine"
)

func seqIDs(lo, n int) []machine.NodeID {
	out := make([]machine.NodeID, n)
	for i := range out {
		out[i] = machine.NodeID(lo + i)
	}
	return out
}

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(seqIDs(0, 10))
	if a.freeCount() != 10 {
		t.Fatalf("freeCount = %d", a.freeCount())
	}
	got := a.alloc(4)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("alloc(4) = %v", got)
	}
	if a.freeCount() != 6 {
		t.Errorf("freeCount = %d after alloc", a.freeCount())
	}
	if err := a.release(got); err != nil {
		t.Fatal(err)
	}
	if a.freeCount() != 10 {
		t.Errorf("freeCount = %d after release", a.freeCount())
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAllocator(seqIDs(0, 5))
	if got := a.alloc(6); got != nil {
		t.Errorf("oversized alloc returned %v", got)
	}
	if got := a.alloc(0); got != nil {
		t.Errorf("alloc(0) returned %v", got)
	}
	first := a.alloc(5)
	if len(first) != 5 {
		t.Fatal("full alloc failed")
	}
	if got := a.alloc(1); got != nil {
		t.Errorf("alloc on empty pool returned %v", got)
	}
}

func TestAllocatorLowestFirst(t *testing.T) {
	a := newAllocator(seqIDs(100, 10))
	x := a.alloc(3)
	y := a.alloc(3)
	if x[0] != 100 || y[0] != 103 {
		t.Errorf("allocations not lowest-first: %v %v", x, y)
	}
	if err := a.release(x); err != nil {
		t.Fatal(err)
	}
	z := a.alloc(2)
	if z[0] != 100 {
		t.Errorf("freed range not reused first: %v", z)
	}
}

func TestAllocatorNonContiguousPool(t *testing.T) {
	ids := append(seqIDs(0, 4), seqIDs(100, 4)...)
	a := newAllocator(ids)
	got := a.alloc(6)
	if len(got) != 6 {
		t.Fatalf("alloc(6) = %v", got)
	}
	if got[3] != 3 || got[4] != 100 {
		t.Errorf("allocation did not span gap: %v", got)
	}
	if err := a.release(got); err != nil {
		t.Fatal(err)
	}
	if a.freeCount() != 8 {
		t.Errorf("freeCount = %d", a.freeCount())
	}
}

func TestAllocatorDoubleFreeDetected(t *testing.T) {
	a := newAllocator(seqIDs(0, 10))
	got := a.alloc(4)
	if err := a.release(got); err != nil {
		t.Fatal(err)
	}
	if err := a.release(got); err == nil {
		t.Error("double free accepted")
	}
	if err := a.release([]machine.NodeID{3, 3}); err == nil {
		t.Error("duplicate IDs in release accepted")
	}
}

func TestAllocatorReleaseEmpty(t *testing.T) {
	a := newAllocator(seqIDs(0, 4))
	if err := a.release(nil); err != nil {
		t.Errorf("release(nil) = %v", err)
	}
}

// TestAllocatorRandomizedInvariant drives random alloc/release cycles and
// checks conservation: free + live == capacity, no ID handed out twice.
func TestAllocatorRandomizedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 200
		a := newAllocator(seqIDs(0, capacity))
		live := make(map[machine.NodeID]bool)
		var allocs [][]machine.NodeID
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 && a.freeCount() > 0 {
				n := 1 + rng.Intn(a.freeCount())
				got := a.alloc(n)
				if len(got) != n {
					return false
				}
				for _, id := range got {
					if live[id] {
						return false // double allocation
					}
					live[id] = true
				}
				allocs = append(allocs, got)
			} else if len(allocs) > 0 {
				i := rng.Intn(len(allocs))
				batch := allocs[i]
				allocs = append(allocs[:i], allocs[i+1:]...)
				if err := a.release(batch); err != nil {
					return false
				}
				for _, id := range batch {
					delete(live, id)
				}
			}
			if a.freeCount()+len(live) != capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
