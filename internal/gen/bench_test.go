package gen

import (
	"testing"

	"logdiver/internal/machine"
)

func benchGenConfig(backfill bool) Config {
	cfg := testConfig(1)
	cfg.Workload.Backfill = backfill
	return cfg
}

// BenchmarkGenerateDay measures synthesizer throughput for one production
// day on the small machine.
func BenchmarkGenerateDay(b *testing.B) {
	cfg := benchGenConfig(false)
	b.ReportAllocs()
	var runs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		ds, err := Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		runs += len(ds.Runs)
	}
	b.ReportMetric(float64(runs)/float64(b.N), "runs/op")
}

// BenchmarkGenerateDayBackfill measures the backfill scheduling path.
func BenchmarkGenerateDayBackfill(b *testing.B) {
	cfg := benchGenConfig(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocator measures the placement allocator under steady churn:
// allocate 64-node jobs, release the oldest every third allocation.
func BenchmarkAllocator(b *testing.B) {
	ids := seqIDs(0, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := newAllocator(ids)
		var batches [][]machine.NodeID
		for k := 0; k < 200; k++ {
			got := a.alloc(64)
			if got == nil {
				b.Fatal("alloc failed")
			}
			batches = append(batches, got)
			if k%3 == 2 {
				if err := a.release(batches[0]); err != nil {
					b.Fatal(err)
				}
				batches = batches[1:]
			}
		}
	}
}
