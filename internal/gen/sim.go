package gen

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// Truth is the ground-truth record for one application run. It is produced
// by the synthesizer and withheld from the analysis pipeline; experiments
// use it to measure attribution accuracy and the hybrid detection gap.
type Truth struct {
	// Outcome is the true outcome.
	Outcome correlate.Outcome
	// Category is the true causing category for system failures.
	Category taxonomy.Category
	// Detected reports whether the causing fault left log evidence.
	Detected bool
}

// Dataset is a complete synthesized archive.
type Dataset struct {
	Config   Config
	Topology *machine.Topology
	// Jobs are the batch jobs as the accounting log reports them.
	Jobs []wlm.Job
	// Runs are the application runs as the ALPS log reports them,
	// sorted by start time.
	Runs []alps.AppRun
	// Events are the logged error events, classified and time-sorted.
	Events []errlog.Event
	// Truth maps apid to ground truth.
	Truth map[uint64]Truth
	// Start and End bound the production span.
	Start, End time.Time
}

// plannedJob is a job before execution.
type plannedJob struct {
	class      machine.NodeClass
	size       int
	runs       []time.Duration // natural run durations
	user       string
	account    string
	queue      string
	walltime   time.Duration
	capability bool
	queuedAt   time.Time
	cmd        cmdProfile
}

// simEventKind discriminates simulator queue entries.
type simEventKind int

const (
	evArrivalOrdinary simEventKind = iota + 1
	evArrivalCapXE
	evArrivalCapXK
	evJobDone
)

// simEvent is one scheduler event.
type simEvent struct {
	at   time.Time
	kind simEventKind
	job  *runningJob
	seq  int
}

type runningJob struct {
	plan    plannedJob
	nodes   []machine.NodeID
	started time.Time
	done    time.Time
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Generate synthesizes a complete dataset for cfg.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Machine == (machine.Config{}) {
		cfg.Machine = machine.BlueWaters()
	}
	top, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("gen: topology: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &sim{
		cfg:       cfg,
		top:       top,
		rng:       rng,
		bg:        generateFaults(cfg, top, rng),
		xe:        newAllocator(top.XENodes()),
		xk:        newAllocator(top.XKNodes()),
		truth:     make(map[uint64]Truth),
		end:       cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour),
		nextJobID: cfg.JobIDBase,
		nextApID:  cfg.ApIDBase,
	}
	s.run()

	ds := &Dataset{
		Config:   cfg,
		Topology: top,
		Jobs:     s.jobs,
		Runs:     s.runs,
		Events:   append(s.bg.logged, s.extraEvents...),
		Truth:    s.truth,
		Start:    cfg.Start,
		End:      s.end,
	}
	sort.Slice(ds.Events, func(i, j int) bool { return ds.Events[i].Time.Before(ds.Events[j].Time) })
	sort.Slice(ds.Runs, func(i, j int) bool {
		if !ds.Runs[i].Start.Equal(ds.Runs[j].Start) {
			return ds.Runs[i].Start.Before(ds.Runs[j].Start)
		}
		return ds.Runs[i].ApID < ds.Runs[j].ApID
	})
	return ds, nil
}

// sim carries the scheduler state.
type sim struct {
	cfg Config
	top *machine.Topology
	rng *rand.Rand
	bg  *faults

	xe, xk *allocator

	queueXE []plannedJob
	queueXK []plannedJob

	heap eventHeap
	seq  int

	jobs        []wlm.Job
	runs        []alps.AppRun
	extraEvents []errlog.Event
	truth       map[uint64]Truth

	nextJobID int
	nextApID  uint64
	end       time.Time
}

func (s *sim) push(at time.Time, kind simEventKind, job *runningJob) {
	s.seq++
	heap.Push(&s.heap, simEvent{at: at, kind: kind, job: job, seq: s.seq})
}

// nextArrival schedules the next arrival of a Poisson stream.
func (s *sim) nextArrival(from time.Time, kind simEventKind, perDay float64) {
	if perDay <= 0 {
		return
	}
	gap := time.Duration(s.rng.ExpFloat64() / perDay * 24 * float64(time.Hour))
	at := from.Add(gap)
	if at.Before(s.end) {
		s.push(at, kind, nil)
	}
}

func (s *sim) run() {
	w := s.cfg.Workload
	s.nextArrival(s.cfg.Start, evArrivalOrdinary, w.JobsPerDay)
	s.nextArrival(s.cfg.Start, evArrivalCapXE, w.XECapabilityJobsPerDay)
	s.nextArrival(s.cfg.Start, evArrivalCapXK, w.XKCapabilityJobsPerDay)

	for s.heap.Len() > 0 {
		ev := heap.Pop(&s.heap).(simEvent)
		switch ev.kind {
		case evArrivalOrdinary:
			s.enqueue(s.planOrdinary(ev.at), ev.at)
			s.nextArrival(ev.at, evArrivalOrdinary, w.JobsPerDay)
		case evArrivalCapXE:
			s.enqueue(s.planCapability(machine.ClassXE), ev.at)
			s.nextArrival(ev.at, evArrivalCapXE, w.XECapabilityJobsPerDay)
		case evArrivalCapXK:
			s.enqueue(s.planCapability(machine.ClassXK), ev.at)
			s.nextArrival(ev.at, evArrivalCapXK, w.XKCapabilityJobsPerDay)
		case evJobDone:
			s.finishJob(ev.job)
		}
		s.tryStart(ev.at)
	}
}

func (s *sim) enqueue(p plannedJob, at time.Time) {
	p.walltime = s.walltimeFor(p)
	p.queuedAt = at
	if p.class == machine.ClassXK {
		s.queueXK = append(s.queueXK, p)
	} else {
		s.queueXE = append(s.queueXE, p)
	}
}

// tryStart starts queued jobs per partition. The default discipline is
// strict FIFO: a blocked head drains the partition (capability jobs get
// their full-machine window). With Workload.Backfill, later jobs that fit
// may jump the blocked head until the head has waited past the starvation
// limit, after which the drain discipline resumes.
func (s *sim) tryStart(now time.Time) {
	if now.After(s.end) {
		return
	}
	s.queueXE = s.tryStartQueue(s.queueXE, s.xe, now)
	s.queueXK = s.tryStartQueue(s.queueXK, s.xk, now)
}

func (s *sim) tryStartQueue(q []plannedJob, pool *allocator, now time.Time) []plannedJob {
	i := 0
	headBlocked := false
	for i < len(q) {
		if !headBlocked || s.backfillAllowed(q[0], now) {
			if s.startJob(q[i], pool, now) {
				q = append(q[:i], q[i+1:]...)
				continue
			}
		}
		if i == 0 {
			headBlocked = true
		}
		if !s.cfg.Workload.Backfill {
			break
		}
		i++
	}
	return q
}

// backfillAllowed reports whether jobs may still jump the blocked head.
func (s *sim) backfillAllowed(head plannedJob, now time.Time) bool {
	if !s.cfg.Workload.Backfill {
		return false
	}
	limit := s.cfg.Workload.BackfillHeadWaitLimit
	if limit <= 0 {
		limit = 4 * time.Hour
	}
	return now.Sub(head.queuedAt) <= limit
}

func (s *sim) startJob(p plannedJob, pool *allocator, now time.Time) bool {
	size := p.size
	if size > pool.cap {
		size = pool.cap
	}
	nodes := pool.alloc(size)
	if nodes == nil {
		return false
	}
	job := &runningJob{plan: p, nodes: nodes, started: now}
	job.done = s.executeJob(job)
	s.push(job.done, evJobDone, job)
	return true
}

func (s *sim) finishJob(job *runningJob) {
	pool := s.xe
	if job.plan.class == machine.ClassXK {
		pool = s.xk
	}
	if err := pool.release(job.nodes); err != nil {
		panic(fmt.Sprintf("gen: node release: %v", err))
	}
}

// executeJob resolves every run of the job against the fault timeline and
// records runs, truth and the job accounting record. It returns the job end
// time (when its nodes free up).
func (s *sim) executeJob(job *runningJob) time.Time {
	p := job.plan
	deadline := job.started.Add(p.walltime)
	const gap = 30 * time.Second
	cur := job.started
	exitStatus := 0
	for _, natural := range p.runs {
		if !cur.Add(time.Minute).Before(deadline) {
			break
		}
		run, truth := s.resolveRun(job, cur, natural, deadline)
		s.runs = append(s.runs, run)
		s.truth[run.ApID] = truth
		cur = run.End.Add(gap)
		if truth.Outcome == correlate.OutcomeWalltime {
			exitStatus = 256 + 15
			break
		}
		if truth.Outcome != correlate.OutcomeSuccess {
			if run.Signal != 0 {
				exitStatus = 256 + run.Signal
			} else {
				exitStatus = run.ExitCode
			}
			// Most ordinary job scripts abort after a failed step;
			// capability campaigns restart from checkpoint and press on.
			abortProb := 0.8
			if p.capability {
				abortProb = 0.25
			}
			if s.rng.Float64() < abortProb {
				break
			}
		}
	}
	endAt := cur
	if endAt.After(deadline) {
		endAt = deadline
	}
	if endAt.Before(job.started.Add(time.Minute)) {
		endAt = job.started.Add(time.Minute)
	}

	jobID := strconv.Itoa(1000000+s.nextJobID) + ".bw"
	s.nextJobID++
	s.jobs = append(s.jobs, wlm.Job{
		ID:           jobID,
		User:         p.user,
		Account:      p.account,
		Queue:        p.queue,
		CreatedAt:    job.started.Add(-time.Duration(1+s.rng.Intn(7200)) * time.Second),
		StartedAt:    job.started,
		EndedAt:      endAt,
		Nodes:        len(job.nodes),
		Walltime:     p.walltime,
		UsedWalltime: endAt.Sub(job.started),
		ExitStatus:   exitStatus,
	})
	// Stamp the job ID on the runs just recorded (they were appended with
	// a placeholder).
	for i := len(s.runs) - 1; i >= 0 && s.runs[i].JobID == ""; i-- {
		s.runs[i].JobID = jobID
		s.runs[i].User = p.user
	}
	return endAt
}

// ioIntensity models how exposed a run is to filesystem outages: small
// analysis jobs are I/O-heavy, hero runs are compute-bound with periodic
// checkpoints.
func (s *sim) ioIntensity(n int) float64 {
	switch {
	case n <= 64:
		return 1.5 + s.rng.Float64()
	case n <= 1024:
		return 0.5 + 0.6*s.rng.Float64()
	default:
		return 0.2 + 0.2*s.rng.Float64()
	}
}

// resolveRun decides when and why one run ends.
func (s *sim) resolveRun(job *runningJob, start time.Time, natural time.Duration, deadline time.Time) (alps.AppRun, Truth) {
	r := s.cfg.Rates
	nodes := job.nodes
	n := len(nodes)
	fracN := float64(n) / float64(s.top.NumNodes())

	naturalEnd := start.Add(natural)
	// Death candidates: earliest wins. App-induced candidates (launch
	// failure, GPU fault) only leave log evidence if they actually win —
	// an application that died earlier never triggered them.
	end := naturalEnd
	truth := Truth{Outcome: correlate.OutcomeSuccess, Detected: true}
	appInduced := false
	consider := func(at time.Time, cat taxonomy.Category, detected, induced bool) {
		if at.Before(end) {
			end = at
			truth = Truth{Outcome: correlate.OutcomeSystemFailure, Category: cat, Detected: detected}
			appInduced = induced
		}
	}

	// Launch failure (system software, app-induced).
	if s.rng.Float64() < r.LaunchFailProb {
		at := start.Add(time.Duration(5+s.rng.Intn(40)) * time.Second)
		consider(at, taxonomy.SoftwareALPS, true, true)
	}

	// Node-local fatal faults on the placement (background: always logged
	// independently of this run).
	if f, ok := s.bg.firstFatalOn(nodes, start, naturalEnd); ok {
		consider(f.at, f.cat, true, false)
	}

	// Machine-scoped faults (background).
	io := s.ioIntensity(n)
	for _, sh := range s.bg.sharedIn(start, naturalEnd) {
		var p float64
		switch sh.kind {
		case sharedFS:
			p = io * (r.FSKillBase + r.FSKillScale*fracN)
		case sharedHSN:
			p = r.HSNKillCoef * math.Pow(fracN, r.HSNKillGamma)
		}
		if p > 1 {
			p = 1
		}
		if s.rng.Float64() < p {
			consider(sh.at, sh.cat, true, false)
			break
		}
	}

	// GPU faults on hybrid placements; possibly silent (app-induced).
	if job.plan.class == machine.ClassXK && r.GPUFatalPerNodeHour > 0 {
		hazard := r.GPUFatalPerNodeHour * float64(n)
		tHours := s.rng.ExpFloat64() / hazard
		at := start.Add(time.Duration(tHours * float64(time.Hour)))
		if at.Before(naturalEnd) {
			cat := taxonomy.GPUMemoryDBE
			if s.rng.Float64() < 0.3 {
				cat = taxonomy.GPUBusOff
			}
			detected := s.rng.Float64() < r.GPUDetectProb
			consider(at, cat, detected, true)
		}
	}

	// User failure, scaled by the code's bugginess.
	if s.rng.Float64() < r.UserFailureProb*job.plan.cmd.userMult {
		at := start.Add(time.Duration((0.05 + 0.95*s.rng.Float64()) * float64(natural)))
		if at.Before(end) {
			end = at
			truth = Truth{Outcome: correlate.OutcomeUserFailure, Detected: true}
			appInduced = false
		}
	}

	// Walltime boundary.
	if end.After(deadline) {
		end = deadline
		truth = Truth{Outcome: correlate.OutcomeWalltime, Detected: true}
		appInduced = false
	}
	if !end.After(start) {
		end = start.Add(time.Second)
	}

	// Log the winning app-induced fault if it left evidence.
	if appInduced && truth.Detected {
		node := nodes[s.rng.Intn(n)]
		cname := s.top.MustNode(node).Cname.String()
		s.extraEvents = append(s.extraEvents, errlog.Event{
			Time: end, Node: node, Cname: cname,
			Category: truth.Category, Severity: severityOf(truth.Category),
			Message: errlog.Render(truth.Category, cname, s.rng),
		})
	}

	exitCode, signal := s.exitFor(truth)
	apid := s.nextApID + 1
	s.nextApID = apid
	run := alps.AppRun{
		ApID:  apid,
		JobID: "", // stamped by executeJob once the job ID is assigned
		Cmd:   job.plan.cmd.name,
		Width: n * (8 + 8*s.rng.Intn(3)),
		Nodes: nodes,
		Start: start, End: end,
		ExitCode: exitCode, Signal: signal,
	}
	return run, truth
}

// exitFor encodes an outcome as an ALPS exit record.
func (s *sim) exitFor(t Truth) (exitCode, signal int) {
	switch t.Outcome {
	case correlate.OutcomeSuccess:
		return 0, 0
	case correlate.OutcomeWalltime:
		return 0, 15
	case correlate.OutcomeUserFailure:
		switch s.rng.Intn(4) {
		case 0:
			return 1, 0
		case 1:
			return 2, 0
		case 2:
			return 0, 11
		default:
			return 0, 6
		}
	case correlate.OutcomeSystemFailure:
		if !t.Detected {
			// Silent failures surface as ordinary crashes.
			if s.rng.Intn(2) == 0 {
				return 0, 11
			}
			return 1, 0
		}
		return 0, 9
	default:
		return 1, 0
	}
}

// cmdProfile gives each application code a personality: hero codes run the
// capability campaigns, GPU codes dominate the hybrid partition, and each
// code has its own bugginess (user-failure multiplier). This is what makes
// the per-application breakdown (experiment E17) informative rather than
// uniform noise.
type cmdProfile struct {
	name     string
	userMult float64 // multiplier on the base user-failure probability
	hero     bool    // used by capability campaigns
	gpu      bool    // preferred on the hybrid partition
}

var cmdProfiles = []cmdProfile{
	{name: "namd2", userMult: 0.5, hero: true, gpu: true},
	{name: "vasp", userMult: 0.9},
	{name: "chroma", userMult: 0.7, hero: true, gpu: true},
	{name: "milc", userMult: 0.8, hero: true},
	{name: "amber.pmemd", userMult: 0.9, gpu: true},
	{name: "cactus", userMult: 1.3},
	{name: "wrf", userMult: 1.2},
	{name: "enzo", userMult: 1.5},
	{name: "qmcpack", userMult: 1.0, gpu: true},
	{name: "gromacs", userMult: 0.8, gpu: true},
	{name: "lammps", userMult: 0.9},
	{name: "nwchem", userMult: 1.4},
	{name: "specfem3d", userMult: 1.1, hero: true},
	{name: "psdns", userMult: 1.6},
}

// pickCmd samples a code for a job. Capability jobs use hero codes; hybrid
// jobs prefer GPU codes.
func pickCmd(rng *rand.Rand, capability bool, class machine.NodeClass) cmdProfile {
	for tries := 0; tries < 32; tries++ {
		p := cmdProfiles[rng.Intn(len(cmdProfiles))]
		if capability && !p.hero {
			continue
		}
		if !capability && class == machine.ClassXK && !p.gpu && rng.Float64() < 0.7 {
			continue
		}
		return p
	}
	return cmdProfiles[0]
}

var userNames = []string{
	"aphysics", "bchem", "cclimate", "dcosmo", "eseismo", "fbio",
	"ggenomics", "hqcd", "iweather", "jplasma", "kmaterials", "lfusion",
}

var accountNames = []string{
	"alloc_astro", "alloc_bio", "alloc_chem", "alloc_climate", "alloc_qcd",
	"alloc_seismo", "alloc_industry",
}

// planOrdinary samples an ordinary job.
func (s *sim) planOrdinary(at time.Time) plannedJob {
	_ = at
	w := s.cfg.Workload
	class := machine.ClassXE
	if s.rng.Float64() < w.XKJobFraction {
		class = machine.ClassXK
	}
	size := s.sampleOrdinarySize(class)
	nRuns := geometricAtLeastOne(s.rng, w.MeanRunsPerJob)
	runs := make([]time.Duration, nRuns)
	for i := range runs {
		runs[i] = lognormalDuration(s.rng, w.MedianRunMinutes, w.SigmaRun)
	}
	return plannedJob{
		class: class, size: size, runs: runs,
		user:    userNames[s.rng.Intn(len(userNames))],
		account: accountNames[s.rng.Intn(len(accountNames))],
		queue:   pickQueue(s.rng),
		cmd:     pickCmd(s.rng, false, class),
	}
}

// planCapability samples a capability campaign.
func (s *sim) planCapability(class machine.NodeClass) plannedJob {
	w := s.cfg.Workload
	sizes := w.XECapabilitySizes
	knee := w.FullScaleKneeXE
	if class == machine.ClassXK {
		sizes = w.XKCapabilitySizes
		knee = w.FullScaleKneeXK
	}
	size := sizes[s.rng.Intn(len(sizes))]
	median := w.MedianMidScaleMinutes
	if class == machine.ClassXK {
		median = w.MedianMidScaleXKMinutes
	}
	if size >= knee {
		median = w.MedianCapabilityMinutes
	}
	nRuns := geometricAtLeastOne(s.rng, w.CapabilityRunsPerJob)
	runs := make([]time.Duration, nRuns)
	for i := range runs {
		runs[i] = lognormalDuration(s.rng, median, w.SigmaCapability)
	}
	return plannedJob{
		class: class, size: size, runs: runs,
		user:       userNames[s.rng.Intn(len(userNames))],
		account:    accountNames[s.rng.Intn(len(accountNames))],
		queue:      "capability",
		capability: true,
		cmd:        pickCmd(s.rng, true, class),
	}
}

// sampleOrdinarySize draws the node count of an ordinary job: a weighted
// power-of-two bucket with uniform jitter inside the bucket.
func (s *sim) sampleOrdinarySize(class machine.NodeClass) int {
	// Bucket k covers [2^k, 2^(k+1)). Weights favour small jobs, matching
	// the count-dominant population of a production machine.
	weights := []float64{0.26, 0.13, 0.09, 0.09, 0.11, 0.10, 0.08, 0.06, 0.04, 0.02, 0.012, 0.005, 0.003}
	k := pickWeighted(s.rng, weights)
	lo := 1 << k
	size := lo + s.rng.Intn(lo)
	max := s.cfg.Workload.SmallSizeMax
	if class == machine.ClassXK {
		max = min(max, 512)
	}
	if size > max {
		size = max
	}
	return size
}

// walltimeFor assigns the job's requested walltime. Usually generous; with
// probability WalltimeProb the request undershoots and the job dies at the
// limit.
func (s *sim) walltimeFor(p plannedJob) time.Duration {
	var planned time.Duration
	for _, d := range p.runs {
		planned += d + 30*time.Second
	}
	factor := 1.1 + 0.5*s.rng.Float64()
	if s.rng.Float64() < s.cfg.Rates.WalltimeProb {
		factor = 0.4 + 0.5*s.rng.Float64()
	}
	w := time.Duration(float64(planned) * factor)
	w = w.Round(time.Minute)
	if w < 2*time.Minute {
		w = 2 * time.Minute
	}
	return w
}

func pickQueue(rng *rand.Rand) string {
	switch rng.Intn(10) {
	case 0:
		return "debug"
	case 1, 2:
		return "high"
	default:
		return "normal"
	}
}

// geometricAtLeastOne samples a geometric count with the given mean, >= 1.
func geometricAtLeastOne(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for rng.Float64() > p && n < 64 {
		n++
	}
	return n
}

// lognormalDuration samples a lognormal duration with the given median (in
// minutes) and log-sigma, floored at 10 seconds.
func lognormalDuration(rng *rand.Rand, medianMinutes, sigma float64) time.Duration {
	minutes := medianMinutes * math.Exp(sigma*rng.NormFloat64())
	d := time.Duration(minutes * float64(time.Minute))
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}
