// Package gen synthesizes Blue Waters-style field data: a batch workload
// (jobs and the application runs inside them), the background error
// processes of a petascale Cray (machine checks, GPU errors, Gemini link
// failures, Lustre outages, blade faults), and the interaction between the
// two — which runs die, when, and whether the death leaves log evidence.
//
// The synthesizer plays the role of the proprietary Blue Waters archives in
// the original study. It emits raw text logs in the native formats (Torque
// accounting, ALPS apsys, syslog) that the analysis pipeline parses exactly
// as LogDiver parsed the real archives, plus a ground-truth record per run
// (never shown to the pipeline) against which attribution accuracy is
// measured.
package gen

import (
	"fmt"
	"time"

	"logdiver/internal/machine"
)

// Rates collects the stochastic process parameters. All rates are per hour.
// The defaults are calibrated (see calibration_test.go) so that the analysis
// pipeline, run over the synthesized logs, measures the paper's anchored
// numbers: ~1.53% of runs failing for system reasons, ~9% of node-hours
// consumed by those runs, and the scale curves 0.008→0.162 (XE, 10k→22k
// nodes) and 0.02→0.129 (XK, 2k→4224 nodes).
type Rates struct {
	// NodeFatalPerNodeHour is the rate of app-killing node-local faults
	// (uncorrected memory, CPU machine check, kernel panic, heartbeat
	// loss) per compute node per hour. 1.5e-6 corresponds to roughly one
	// node death per day machine-wide on a 27k-node system.
	NodeFatalPerNodeHour float64
	// NodeBenignPerNodeHour is the rate of benign logged noise (corrected
	// memory errors, Lustre slow-reply warnings) per node-hour. Benign
	// events arrive in bursts (see BurstMax) and exercise coalescing.
	NodeBenignPerNodeHour float64
	// BurstMax bounds the burst size of a benign noise episode.
	BurstMax int
	// GPUFatalPerNodeHour is the rate of fatal GPU faults (double-bit
	// ECC, bus drop) per XK node per hour.
	GPUFatalPerNodeHour float64
	// GPUDetectProb is the probability a fatal GPU fault leaves log
	// evidence. The hybrid detection gap of the paper's lesson 3 is the
	// complement of this value.
	GPUDetectProb float64
	// LinkFailPerHour is the machine-wide rate of Gemini link failures.
	LinkFailPerHour float64
	// FSOutagePerHour is the machine-wide rate of Lustre outages.
	FSOutagePerHour float64
	// BladeFailPerHour is the machine-wide rate of blade/power faults
	// (each takes down the blade's four nodes).
	BladeFailPerHour float64
	// FSKillBase is the probability a Lustre outage kills a running
	// application regardless of its size (any app doing I/O in the
	// window); FSKillScale adds a component proportional to n/N.
	FSKillBase  float64
	FSKillScale float64
	// HSNKillCoef and HSNKillGamma shape the probability that a link
	// failure (and the rerouting quiesce it triggers) kills a running
	// application: p = HSNKillCoef * (n/N)^HSNKillGamma. Tightly coupled
	// full-machine applications are far more vulnerable to quiesce than
	// small ones.
	HSNKillCoef  float64
	HSNKillGamma float64
	// LaunchFailProb is the probability a run dies at launch from a
	// system-software (ALPS) error: placement failure, apinit protocol
	// timeout. These failures are logged (SW_ALPS) and system-caused, and
	// being per-launch they weigh on the numerous small runs.
	LaunchFailProb float64
	// UserFailureProb is the probability a run fails for user reasons
	// (bugs, bad input, aborts) absent any system event.
	UserFailureProb float64
	// WalltimeProb is the probability a run overruns the job walltime
	// and is killed by the batch system.
	WalltimeProb float64
	// DupProb is the probability a log line is duplicated by the
	// forwarding chain; MalformedPerDay is the rate of corrupted lines.
	DupProb         float64
	MalformedPerDay float64
}

// DefaultRates returns the calibrated rates.
func DefaultRates() Rates {
	return Rates{
		NodeFatalPerNodeHour:  0.8e-6,
		NodeBenignPerNodeHour: 6e-5,
		BurstMax:              40,
		GPUFatalPerNodeHour:   1.0e-5,
		GPUDetectProb:         0.55,
		LinkFailPerHour:       0.020,
		FSOutagePerHour:       0.045,
		BladeFailPerHour:      0.005,
		FSKillBase:            0.62,
		FSKillScale:           0.6,
		HSNKillCoef:           0.7,
		HSNKillGamma:          5.0,
		LaunchFailProb:        0.002,
		UserFailureProb:       0.22,
		WalltimeProb:          0.025,
		DupProb:               0.01,
		MalformedPerDay:       2,
	}
}

// Workload collects the workload-shape parameters. The workload has two
// components, mirroring the measured system's mission profile:
//
//   - an ordinary stream of small-to-mid jobs (the count-dominant
//     population), and
//   - capability campaigns: rare, long, full-scale jobs that dominate
//     node-hours. Blue Waters was a capability machine; full-scale runs
//     carried a large share of the delivered node-hours, which is why runs
//     that fail for system reasons (disproportionately the big ones) can
//     consume ~9% of all node-hours while being only ~1.5% of run counts.
type Workload struct {
	// JobsPerDay is the mean arrival rate of ordinary batch jobs.
	JobsPerDay float64
	// MeanRunsPerJob is the mean number of apruns per job (geometric,
	// at least 1).
	MeanRunsPerJob float64
	// XKJobFraction is the fraction of ordinary jobs targeting the
	// hybrid (XK) partition.
	XKJobFraction float64
	// XECapabilityJobsPerDay and XKCapabilityJobsPerDay are the arrival
	// rates of capability campaigns on each partition.
	XECapabilityJobsPerDay float64
	XKCapabilityJobsPerDay float64
	// CapabilityRunsPerJob is the mean apruns per capability job.
	CapabilityRunsPerJob float64
	// XECapabilitySizes and XKCapabilitySizes are the node counts used
	// by capability jobs (the paper's anchor points among them).
	XECapabilitySizes []int
	XKCapabilitySizes []int
	// SmallSizeMax bounds the size distribution of ordinary jobs.
	SmallSizeMax int
	// MedianRunMinutes and SigmaRun parameterize the lognormal duration
	// of ordinary runs.
	MedianRunMinutes float64
	SigmaRun         float64
	// MedianCapabilityMinutes and SigmaCapability parameterize capability
	// run durations; MedianMidScaleMinutes applies to capability sizes
	// below the full-scale knee (routine 8-13k production runs are much
	// shorter than hero campaigns).
	MedianCapabilityMinutes float64
	SigmaCapability         float64
	MedianMidScaleMinutes   float64
	// MedianMidScaleXKMinutes is the mid-scale duration median for the
	// hybrid partition (XK mid-scale production runs are longer than XE
	// ones relative to their partition size).
	MedianMidScaleXKMinutes float64
	// FullScaleKneeXE and FullScaleKneeXK split mid-scale from
	// full-scale capability sizes.
	FullScaleKneeXE int
	FullScaleKneeXK int
	// Backfill lets jobs behind a blocked queue head start when they fit,
	// raising utilization at the cost of delaying full-machine drains.
	// To prevent capability-job starvation, backfill is suspended once
	// the head has waited longer than BackfillHeadWaitLimit (default 4h
	// when zero).
	Backfill              bool
	BackfillHeadWaitLimit time.Duration
}

// DefaultWorkload returns the workload used in the experiments.
func DefaultWorkload() Workload {
	return Workload{
		JobsPerDay:              2400,
		MeanRunsPerJob:          3.0,
		XKJobFraction:           0.16,
		XECapabilityJobsPerDay:  3.0,
		XKCapabilityJobsPerDay:  0.7,
		CapabilityRunsPerJob:    6.0,
		XECapabilitySizes:       []int{8192, 10000, 13000, 16384, 19000, 22000},
		XKCapabilitySizes:       []int{1000, 2000, 3000, 4224},
		SmallSizeMax:            4096,
		MedianRunMinutes:        14,
		SigmaRun:                1.1,
		MedianCapabilityMinutes: 200,
		SigmaCapability:         0.5,
		MedianMidScaleMinutes:   12,
		MedianMidScaleXKMinutes: 45,
		FullScaleKneeXE:         16384,
		FullScaleKneeXK:         3000,
	}
}

// Config is the complete synthesizer configuration.
type Config struct {
	// Machine configures the topology. Defaults to machine.BlueWaters().
	Machine machine.Config
	// Start is the first production instant; Days the span length.
	Start time.Time
	Days  int
	// Seed drives all randomness; a fixed seed reproduces the archive
	// byte for byte.
	Seed     int64
	Rates    Rates
	Workload Workload
	// Parallelism bounds the worker count of the log-emission stage (the
	// Write* methods of Dataset, which format archives in parallel blocks
	// and write them in order). Values <= 0 select runtime.GOMAXPROCS(0);
	// 1 forces sequential emission. Output bytes are identical either way:
	// all randomness is drawn on the emitting goroutine before fan-out.
	Parallelism int
	// ApIDBase offsets every generated aprun id: the first run gets
	// ApIDBase+1. Fleet fixtures give each machine (and each append
	// window) a disjoint base so run identifiers stay unique fleet-wide.
	ApIDBase uint64
	// JobIDBase likewise offsets the batch job id sequence (job ids render
	// as 1000000+JobIDBase+n). Zero keeps the historical single-machine
	// numbering.
	JobIDBase int
}

// Default returns the full-span Blue Waters-shaped configuration: 518
// production days on the full topology. This produces on the order of
// 1.6M jobs / 5M runs and is intended for the headline experiments.
func Default() Config {
	return Config{
		Machine:  machine.BlueWaters(),
		Start:    time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC),
		Days:     518,
		Seed:     1,
		Rates:    DefaultRates(),
		Workload: DefaultWorkload(),
	}
}

// Scaled returns the default configuration with the time span scaled to the
// given number of days (workload and error rates unchanged: the statistics
// simply accumulate over fewer days).
func Scaled(days int) Config {
	cfg := Default()
	cfg.Days = days
	return cfg
}

// Small returns a configuration sized for examples, smoke tests and CI:
// the 1,536-node small machine with a workload rescaled to fit it. A few
// days generate and analyze in seconds while still exercising the full
// pipeline, including capability-scale runs at the machine's knee.
func Small(days int) Config {
	cfg := Scaled(days)
	cfg.Machine = machine.Small()
	cfg.Workload.JobsPerDay = 400
	cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	return cfg
}

// Validate checks the configuration for obvious inconsistencies.
func (c Config) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("gen: Days = %d, want > 0", c.Days)
	}
	if c.Start.IsZero() {
		return fmt.Errorf("gen: Start is zero")
	}
	if c.Workload.JobsPerDay <= 0 {
		return fmt.Errorf("gen: JobsPerDay = %v, want > 0", c.Workload.JobsPerDay)
	}
	if c.Workload.MeanRunsPerJob < 1 {
		return fmt.Errorf("gen: MeanRunsPerJob = %v, want >= 1", c.Workload.MeanRunsPerJob)
	}
	if f := c.Workload.XKJobFraction; f < 0 || f > 1 {
		return fmt.Errorf("gen: XKJobFraction = %v outside [0,1]", f)
	}
	if c.Workload.XECapabilityJobsPerDay < 0 || c.Workload.XKCapabilityJobsPerDay < 0 {
		return fmt.Errorf("gen: capability job rates must be non-negative")
	}
	if c.Workload.CapabilityRunsPerJob < 1 {
		return fmt.Errorf("gen: CapabilityRunsPerJob = %v, want >= 1", c.Workload.CapabilityRunsPerJob)
	}
	if c.Workload.SmallSizeMax < 1 {
		return fmt.Errorf("gen: SmallSizeMax = %d, want >= 1", c.Workload.SmallSizeMax)
	}
	if len(c.Workload.XECapabilitySizes) == 0 || len(c.Workload.XKCapabilitySizes) == 0 {
		return fmt.Errorf("gen: capability size lists must be non-empty")
	}
	if p := c.Rates.GPUDetectProb; p < 0 || p > 1 {
		return fmt.Errorf("gen: GPUDetectProb = %v outside [0,1]", p)
	}
	if p := c.Rates.UserFailureProb; p < 0 || p > 1 {
		return fmt.Errorf("gen: UserFailureProb = %v outside [0,1]", p)
	}
	return nil
}
