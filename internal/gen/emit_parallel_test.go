package gen

import (
	"strings"
	"testing"

	"logdiver/internal/machine"
)

// TestParallelEmissionMatchesSequential: the log-emission stage must write
// byte-identical archives whether formatting runs on one goroutine or many.
// This is the emission-side counterpart of the ingestion differential test
// in internal/core.
func TestParallelEmissionMatchesSequential(t *testing.T) {
	cfg := Scaled(2)
	cfg.Machine = machine.Small()
	cfg.Seed = 11
	cfg.Workload.JobsPerDay = 250
	cfg.Workload.XECapabilitySizes = []int{256}
	cfg.Workload.XKCapabilitySizes = []int{64}
	cfg.Workload.SmallSizeMax = 96
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	emitAll := func(parallelism int) (acc, aps, sys string) {
		ds.Config.Parallelism = parallelism
		var a, p, s strings.Builder
		if err := ds.WriteAccounting(&a); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteApsys(&p); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteErrorLog(&s); err != nil {
			t.Fatal(err)
		}
		return a.String(), p.String(), s.String()
	}

	accSeq, apsSeq, sysSeq := emitAll(1)
	if accSeq == "" || apsSeq == "" || sysSeq == "" {
		t.Fatal("sequential emission produced an empty archive")
	}
	for _, workers := range []int{2, 4, 8} {
		acc, aps, sys := emitAll(workers)
		if acc != accSeq {
			t.Errorf("workers %d: accounting archive differs from sequential emission", workers)
		}
		if aps != apsSeq {
			t.Errorf("workers %d: apsys archive differs from sequential emission", workers)
		}
		if sys != sysSeq {
			t.Errorf("workers %d: syslog archive differs from sequential emission", workers)
		}
	}
}
