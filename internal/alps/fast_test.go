package alps

import (
	"reflect"
	"testing"
	"time"
)

// fastDiffBodies covers the apsys body surface the byte parser must match:
// both record kinds, chatter without an apid, last-wins duplicate keys,
// quoted-ish commands, and every error class from TestParseMessageErrors.
var fastDiffBodies = []string{
	"apid=456789, Starting, user=alice, batch_id=1.bw, cmd=vasp, width=16, num_nodes=2, node_list=0-1",
	"apid=456789, Finishing, exit_code=0, signal=0, node_cnt=2",
	"apid=1, Finishing, exit_code=139, signal=11, node_cnt=5",
	"apid=7, Starting, user=bob, batch_id=9.bw, cmd=./a.out --flag, width=4, num_nodes=4, node_list=100-102,200",
	"apid=8, Starting, user=x, user=y, batch_id=j, cmd=c, width=1, num_nodes=1, node_list=3", // last wins
	"apsys: error: exit processing timeout, forcing cleanup",                                 // chatter, no apid
	"apid=9, Recap, something=else",                                                          // unknown marker
	"apid=abc, Finishing, exit_code=0, signal=0, node_cnt=1",
	"apid=1, Starting, user=u, batch_id=j, cmd=c, width=x, num_nodes=1, node_list=0",
	"apid=1, Starting, user=u, batch_id=j, cmd=c, width=4, num_nodes=2, node_list=0",
	"apid=1, Starting, user=u, batch_id=j, cmd=c, width=4, num_nodes=1, node_list=zz",
	"apid=1, Finishing, exit_code=0, signal=0",
	"=v, apid=1",
	"apid=1, Finishing, exit_code=0, signal=0, node_cnt=-1",
	"",
	",, ,",
}

// viewToMessage converts a MessageView to the map-parser's Message type for
// field-by-field comparison.
func viewToMessage(v MessageView) Message {
	return Message{
		Kind:     v.Kind,
		ApID:     v.ApID,
		User:     string(v.User),
		JobID:    string(v.JobID),
		Cmd:      string(v.Cmd),
		Width:    v.Width,
		Nodes:    v.Nodes,
		ExitCode: v.ExitCode,
		Signal:   v.Signal,
		NodeCnt:  v.NodeCnt,
	}
}

// TestParseMessageBytesMatchesParseMessage pins the byte parser to the
// string reference body by body: same acceptance, same error kind and
// text, and identical parsed fields.
func TestParseMessageBytesMatchesParseMessage(t *testing.T) {
	for _, body := range fastDiffBodies {
		want, wantErr := ParseMessage(body)
		view, gotErr := ParseMessageBytes([]byte(body))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("ParseMessageBytes(%q) err = %v, string path %v", body, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("ParseMessageBytes(%q) err = %q, string path %q", body, gotErr.Error(), wantErr.Error())
			}
			continue
		}
		got := viewToMessage(view)
		if len(got.Nodes) == 0 && len(want.Nodes) == 0 {
			got.Nodes, want.Nodes = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseMessageBytes(%q) = %+v, want %+v", body, got, want)
		}
	}
}

// TestParseNIDListBytesMatchesParseNIDList pins the byte NID-list parser to
// the string one, including error text.
func TestParseNIDListBytesMatchesParseNIDList(t *testing.T) {
	lists := []string{
		"0", "0-3", "0-3,7,9-11", "100-102,200", " 1 , 2 ", "3-1", "x", "1-", "-1", "", ",",
		"1,1,1", "0-70000", "18446744073709551615",
	}
	for _, s := range lists {
		want, wantErr := ParseNIDList(s)
		got, gotErr := ParseNIDListBytes([]byte(s))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("ParseNIDListBytes(%q) err = %v, string path %v", s, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("ParseNIDListBytes(%q) err = %q, string path %q", s, gotErr.Error(), wantErr.Error())
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseNIDListBytes(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestAddViewMatchesAdd feeds the same message stream through the
// view-based and string-based assembler entry points and requires
// identical completed runs, unmatched counts and open state.
func TestAddViewMatchesAdd(t *testing.T) {
	at := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	viaAdd := NewAssembler()
	viaView := NewAssembler()
	viaAdd.SetLenient(true)
	viaView.SetLenient(true)
	for i, body := range fastDiffBodies {
		stamp := at.Add(time.Duration(i) * time.Second)
		m, err := ParseMessage(body)
		if err == nil {
			if err := viaAdd.Add(stamp, m); err != nil {
				t.Fatal(err)
			}
		}
		v, verr := ParseMessageBytes([]byte(body))
		if (verr == nil) != (err == nil) {
			t.Fatalf("acceptance drift on %q", body)
		}
		if verr == nil {
			if err := viaView.AddView(stamp, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a, b := viaAdd.Done(), viaView.Done(); !reflect.DeepEqual(a, b) {
		t.Errorf("Add runs = %+v\nAddView runs = %+v", a, b)
	}
	if a, b := viaAdd.Open(), viaView.Open(); a != b {
		t.Errorf("open count: Add %d, AddView %d", a, b)
	}
}

// TestParseMessageBytesZeroAllocFinishing gates the steady-state line path:
// a Finishing record (no node list to build) must parse without allocating.
func TestParseMessageBytesZeroAllocFinishing(t *testing.T) {
	body := []byte("apid=456789, Finishing, exit_code=0, signal=0, node_cnt=2")
	if n := testing.AllocsPerRun(200, func() {
		if _, perr := ParseMessageBytes(body); perr != nil {
			t.Fatal("well-formed body rejected")
		}
	}); n != 0 {
		t.Errorf("ParseMessageBytes allocates %.1f allocs/op on Finishing records, want 0", n)
	}
}
