package alps

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"logdiver/internal/machine"
)

func ids(ns ...int) []machine.NodeID {
	out := make([]machine.NodeID, len(ns))
	for i, n := range ns {
		out[i] = machine.NodeID(n)
	}
	return out
}

func TestFormatNIDList(t *testing.T) {
	tests := []struct {
		give []machine.NodeID
		want string
	}{
		{nil, ""},
		{ids(5), "5"},
		{ids(1, 2, 3), "1-3"},
		{ids(3, 1, 2), "1-3"},
		{ids(1, 2, 3, 7, 9, 10), "1-3,7,9-10"},
		{ids(4, 4, 4), "4"},
		{ids(0, 1, 5, 5, 6), "0-1,5-6"},
	}
	for _, tt := range tests {
		if got := FormatNIDList(tt.give); got != tt.want {
			t.Errorf("FormatNIDList(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestParseNIDList(t *testing.T) {
	got, err := ParseNIDList("1-3,7,9-10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids(1, 2, 3, 7, 9, 10)) {
		t.Errorf("got %v", got)
	}
	if got, err := ParseNIDList(""); err != nil || got != nil {
		t.Errorf("ParseNIDList(\"\") = %v, %v", got, err)
	}
}

func TestParseNIDListErrors(t *testing.T) {
	bad := []string{"x", "3-1", "1,,2", "-5", "1-", "2,1", "1,1", "0-99999999"}
	for _, s := range bad {
		if _, err := ParseNIDList(s); err == nil {
			t.Errorf("ParseNIDList(%q) succeeded, want error", s)
		}
	}
}

func TestNIDListPropertyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		in := make([]machine.NodeID, len(raw))
		for i, v := range raw {
			in[i] = machine.NodeID(v % 5000)
		}
		out, err := ParseNIDList(FormatNIDList(in))
		if err != nil {
			return false
		}
		// The round trip sorts and dedups; compare as sets.
		seen := make(map[machine.NodeID]bool, len(in))
		for _, id := range in {
			seen[id] = true
		}
		if len(out) != len(seen) {
			return false
		}
		for _, id := range out {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sampleRun() AppRun {
	return AppRun{
		ApID:     456789,
		JobID:    "123456.bw",
		User:     "alice",
		Cmd:      "vasp",
		Width:    2048,
		Nodes:    ids(100, 101, 102, 103, 200),
		Start:    time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC),
		End:      time.Date(2013, 4, 3, 14, 0, 0, 0, time.UTC),
		ExitCode: 0,
		Signal:   0,
	}
}

func TestStartMessageRoundTrip(t *testing.T) {
	r := sampleRun()
	m, err := ParseMessage(StartMessage(r))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindStarting {
		t.Fatalf("Kind = %v, want Starting", m.Kind)
	}
	if m.ApID != r.ApID || m.User != r.User || m.JobID != r.JobID || m.Cmd != r.Cmd || m.Width != r.Width {
		t.Errorf("header: got %+v", m)
	}
	if !reflect.DeepEqual(m.Nodes, r.Nodes) {
		t.Errorf("Nodes = %v, want %v", m.Nodes, r.Nodes)
	}
}

func TestExitMessageRoundTrip(t *testing.T) {
	r := sampleRun()
	r.ExitCode = 139
	r.Signal = 11
	m, err := ParseMessage(ExitMessage(r))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindFinishing {
		t.Fatalf("Kind = %v, want Finishing", m.Kind)
	}
	if m.ApID != r.ApID || m.ExitCode != 139 || m.Signal != 11 || m.NodeCnt != len(r.Nodes) {
		t.Errorf("got %+v", m)
	}
}

func TestParseMessageChatter(t *testing.T) {
	// apsys error chatter must parse to KindUnknown without error.
	m, err := ParseMessage("apsys: error: exit processing timeout, forcing cleanup")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindUnknown {
		t.Errorf("Kind = %v, want Unknown", m.Kind)
	}
}

func TestParseMessageErrors(t *testing.T) {
	bad := []string{
		"apid=abc, Finishing, exit_code=0, signal=0, node_cnt=1",
		"apid=1, Starting, user=u, batch_id=j, cmd=c, width=x, num_nodes=1, node_list=0",
		"apid=1, Starting, user=u, batch_id=j, cmd=c, width=4, num_nodes=2, node_list=0",  // count mismatch
		"apid=1, Starting, user=u, batch_id=j, cmd=c, width=4, num_nodes=1, node_list=zz", // bad list
		"apid=1, Finishing, exit_code=0, signal=0",                                        // missing node_cnt
		"=v, apid=1", // empty key
	}
	for _, s := range bad {
		if _, err := ParseMessage(s); err == nil {
			t.Errorf("ParseMessage(%q) succeeded, want error", s)
		}
	}
}

func TestRunDerivedQuantities(t *testing.T) {
	r := sampleRun()
	if got := r.Duration(); got != 2*time.Hour {
		t.Errorf("Duration = %v", got)
	}
	if got := r.NodeHours(); got != 10 {
		t.Errorf("NodeHours = %v, want 10", got)
	}
	if r.Failed() {
		t.Error("clean exit marked failed")
	}
	r.Signal = 9
	if !r.Failed() {
		t.Error("signal exit not marked failed")
	}
	r.Signal = 0
	r.ExitCode = 1
	if !r.Failed() {
		t.Error("nonzero exit not marked failed")
	}
}

func TestAssemblerPairsRuns(t *testing.T) {
	a := NewAssembler()
	r := sampleRun()
	start, err := ParseMessage(StartMessage(r))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(r.Start, start); err != nil {
		t.Fatal(err)
	}
	if a.Open() != 1 {
		t.Fatalf("Open = %d, want 1", a.Open())
	}
	exit, err := ParseMessage(ExitMessage(r))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(r.End, exit); err != nil {
		t.Fatal(err)
	}
	runs := a.Runs()
	if len(runs) != 1 {
		t.Fatalf("Runs = %d, want 1", len(runs))
	}
	got := runs[0]
	if got.ApID != r.ApID || !got.Start.Equal(r.Start) || !got.End.Equal(r.End) {
		t.Errorf("got %+v, want %+v", got, r)
	}
	if !reflect.DeepEqual(got.Nodes, r.Nodes) {
		t.Errorf("Nodes = %v", got.Nodes)
	}
	if a.Open() != 0 {
		t.Errorf("Open = %d after pairing", a.Open())
	}
}

func TestAssemblerDuplicateStart(t *testing.T) {
	a := NewAssembler()
	r := sampleRun()
	start, _ := ParseMessage(StartMessage(r))
	if err := a.Add(r.Start, start); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(r.Start, start); err == nil {
		t.Error("duplicate Starting accepted")
	}
}

func TestAssemblerUnmatchedFinish(t *testing.T) {
	a := NewAssembler()
	r := sampleRun()
	exit, _ := ParseMessage(ExitMessage(r))
	if err := a.Add(r.End, exit); err != nil {
		t.Fatal(err)
	}
	if a.Unmatched() != 1 {
		t.Errorf("Unmatched = %d, want 1", a.Unmatched())
	}
	if len(a.Runs()) != 0 {
		t.Error("unmatched finish produced a run")
	}
}

func TestAssemblerChatterIgnored(t *testing.T) {
	a := NewAssembler()
	m, err := ParseMessage("error: placement request failed")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(time.Now(), m); err != nil {
		t.Fatal(err)
	}
	if a.Open() != 0 || len(a.Runs()) != 0 {
		t.Error("chatter affected assembler state")
	}
}

func TestAssemblerSortsRuns(t *testing.T) {
	a := NewAssembler()
	base := time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(1))
	const n = 20
	for i := 0; i < n; i++ {
		r := sampleRun()
		r.ApID = uint64(1000 + rng.Intn(100000))
		r.Start = base.Add(time.Duration(rng.Intn(1000)) * time.Second)
		r.End = r.Start.Add(time.Hour)
		start, _ := ParseMessage(StartMessage(r))
		if err := a.Add(r.Start, start); err != nil {
			continue // random apid collision: skip
		}
		exit, _ := ParseMessage(ExitMessage(r))
		if err := a.Add(r.End, exit); err != nil {
			t.Fatal(err)
		}
	}
	runs := a.Runs()
	for i := 1; i < len(runs); i++ {
		if runs[i-1].Start.After(runs[i].Start) {
			t.Fatal("runs not sorted by start")
		}
	}
}
