package alps

import "testing"

// FuzzParseNIDList checks the range-notation parser never panics, and that
// accepted lists round-trip through FormatNIDList.
func FuzzParseNIDList(f *testing.F) {
	for _, seed := range []string{
		"", "5", "1-3", "1-3,7,9-10", "0-0", "3-1", "x", "1,,2", "9999999-0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ids, err := ParseNIDList(s)
		if err != nil {
			return
		}
		back, err := ParseNIDList(FormatNIDList(ids))
		if err != nil {
			t.Fatalf("accepted %q but reformatted list failed: %v", s, err)
		}
		if len(back) != len(ids) {
			t.Fatalf("round trip length %d != %d for %q", len(back), len(ids), s)
		}
		for i := range ids {
			if back[i] != ids[i] {
				t.Fatalf("round trip element %d: %d != %d for %q", i, back[i], ids[i], s)
			}
		}
	})
}

// FuzzParseMessage checks the apsys message parser never panics.
func FuzzParseMessage(f *testing.F) {
	for _, seed := range []string{
		"apid=456789, Starting, user=alice, batch_id=1.bw, cmd=vasp, width=16, num_nodes=2, node_list=0-1",
		"apid=456789, Finishing, exit_code=0, signal=0, node_cnt=2",
		"apsys chatter without equals",
		"apid=, Starting", "=bad", "", "apid=1, Starting",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMessage(s)
		if err != nil {
			return
		}
		switch m.Kind {
		case KindStarting:
			if len(m.Nodes) == 0 && m.Width < 0 {
				t.Fatalf("accepted Starting with no placement: %q", s)
			}
		case KindFinishing, KindUnknown:
			// nothing further to check
		default:
			t.Fatalf("impossible kind %d for %q", m.Kind, s)
		}
	})
}
