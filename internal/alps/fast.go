// Byte-oriented fast path of the apsys message parser. ParseMessageBytes
// applies the exact semantics of ParseMessage over a byte view — same field
// handling (", "-separated segments, first-'=' key/value cut, last-wins on
// duplicate keys and markers, empty-key rejection) and same error kinds,
// reasons and ordering — without building a field map. The string
// implementation stays as the reference; the differential tests in
// fast_test.go pin the two to each other.

package alps

import (
	"bytes"
	"fmt"
	"time"

	"logdiver/internal/machine"
	"logdiver/internal/parse"
)

// MessageView is one parsed apsys message body with byte views into the
// caller's buffer (User, JobID, Cmd). Views are valid only as long as the
// underlying buffer; AddView copies what it retains. Nodes is freshly
// allocated and owned by the receiver.
type MessageView struct {
	Kind     MessageKind
	ApID     uint64
	User     []byte
	JobID    []byte
	Cmd      []byte
	Width    int
	Nodes    []machine.NodeID
	ExitCode int
	Signal   int
	NodeCnt  int
}

// ParseMessageBytes parses an apsys message body from a byte view with the
// exact semantics of ParseMessage. Bodies without an apid yield KindUnknown
// with a nil error. It allocates only for the node list of a Starting
// record and for error construction.
//
//ldvet:pooled
//ldvet:hotpath
func ParseMessageBytes(body []byte) (MessageView, *parse.Error) {
	var m MessageView
	// Walk the ", "-separated segments, retaining the LAST occurrence of
	// each known key and of the bare-word marker (the field map in
	// ParseMessage is last-wins).
	var apid, user, batchID, cmd, width, numNodes, nodeList, exitCode, signal, nodeCnt, marker []byte
	var haveApid, haveWidth, haveNumNodes, haveExit, haveSignal, haveNodeCnt bool
	for start := 0; start <= len(body); {
		var part []byte
		if i := bytes.Index(body[start:], sepCommaSpace); i >= 0 {
			part = body[start : start+i]
			start += i + 2
		} else {
			part = body[start:]
			start = len(body) + 1
		}
		part = bytes.TrimSpace(part)
		if len(part) == 0 {
			continue
		}
		if eq := bytes.IndexByte(part, '='); eq >= 0 {
			if eq == 0 {
				return MessageView{}, parse.Errorf(parse.KindStructure, truncBody(body), "alps: empty key")
			}
			k, v := part[:eq], part[eq+1:]
			switch {
			case bytes.Equal(k, keyApid):
				apid, haveApid = v, true
			case bytes.Equal(k, keyApsysUser):
				user = v
			case bytes.Equal(k, keyBatchID):
				batchID = v
			case bytes.Equal(k, keyCmd):
				cmd = v
			case bytes.Equal(k, keyWidth):
				width, haveWidth = v, true
			case bytes.Equal(k, keyNumNodes):
				numNodes, haveNumNodes = v, true
			case bytes.Equal(k, keyNodeList):
				nodeList = v
			case bytes.Equal(k, keyExitCode):
				exitCode, haveExit = v, true
			case bytes.Equal(k, keySignal):
				signal, haveSignal = v, true
			case bytes.Equal(k, keyNodeCnt):
				nodeCnt, haveNodeCnt = v, true
			}
		} else {
			marker = part
		}
	}
	if !haveApid {
		return m, nil // apsys chatter without an apid: not a placement record
	}
	id, ok := parse.ParseUint64(apid)
	if !ok {
		return MessageView{}, parse.Errorf(parse.KindField, truncBody(body), "alps: bad apid %q", apid)
	}
	m.ApID = id
	switch {
	case bytes.Equal(marker, markStarting):
		m.Kind = KindStarting
		m.User = user
		m.JobID = batchID
		m.Cmd = cmd
		if m.Width, ok = atoiView(width, haveWidth); !ok {
			return MessageView{}, atoiErr(width, haveWidth, "width", body)
		}
		nn, ok := atoiView(numNodes, haveNumNodes)
		if !ok {
			return MessageView{}, atoiErr(numNodes, haveNumNodes, "num_nodes", body)
		}
		nodes, err := ParseNIDListBytes(nodeList)
		if err != nil {
			return MessageView{}, parse.Errorf(parse.KindField, truncBody(body), "alps: bad node_list: %s", err.Error())
		}
		m.Nodes = nodes
		if len(m.Nodes) != nn {
			return MessageView{}, parse.Errorf(parse.KindStructure, truncBody(body), "alps: apid %d claims %d nodes but lists %d", id, nn, len(m.Nodes))
		}
	case bytes.Equal(marker, markFinishing):
		m.Kind = KindFinishing
		if m.ExitCode, ok = atoiView(exitCode, haveExit); !ok {
			return MessageView{}, atoiErr(exitCode, haveExit, "exit_code", body)
		}
		if m.Signal, ok = atoiView(signal, haveSignal); !ok {
			return MessageView{}, atoiErr(signal, haveSignal, "signal", body)
		}
		if m.NodeCnt, ok = atoiView(nodeCnt, haveNodeCnt); !ok {
			return MessageView{}, atoiErr(nodeCnt, haveNodeCnt, "node_cnt", body)
		}
	default:
		m.Kind = KindUnknown
	}
	return m, nil
}

// Known apsys message tokens.
var (
	sepCommaSpace = []byte(", ")
	markStarting  = []byte("Starting")
	markFinishing = []byte("Finishing")
	keyApid       = []byte("apid")
	keyApsysUser  = []byte("user")
	keyBatchID    = []byte("batch_id")
	keyCmd        = []byte("cmd")
	keyWidth      = []byte("width")
	keyNumNodes   = []byte("num_nodes")
	keyNodeList   = []byte("node_list")
	keyExitCode   = []byte("exit_code")
	keySignal     = []byte("signal")
	keyNodeCnt    = []byte("node_cnt")
)

// atoiView parses a required numeric field view; ok is false when the field
// is absent or non-numeric (use atoiErr for the matching typed error).
//
//ldvet:pooled
//ldvet:hotpath
func atoiView(v []byte, have bool) (int, bool) {
	if !have {
		return 0, false
	}
	return parse.Atoi(v)
}

// atoiErr builds the same error atoiField would for a missing or
// non-numeric field.
func atoiErr(v []byte, have bool, key string, body []byte) *parse.Error {
	if !have {
		return parse.Errorf(parse.KindField, truncBody(body), "alps: missing field %q", key)
	}
	return parse.Errorf(parse.KindField, truncBody(body), "alps: field %s=%q not a number", key, v)
}

func truncBody(b []byte) string {
	if len(b) > parse.SampleTextBytes {
		b = b[:parse.SampleTextBytes]
	}
	return string(b)
}

// AddView folds one timestamped apsys message view into the assembler with
// the exact semantics of Add. Retained strings (user, job ID, command) are
// copied out of the caller's buffer through the assembler's intern table.
//
//ldvet:pooled
//ldvet:hotpath
func (a *Assembler) AddView(at time.Time, v MessageView) error {
	switch v.Kind {
	case KindStarting:
		if _, dup := a.open[v.ApID]; dup {
			if a.lenient {
				a.duplicates++
				return nil
			}
			return fmt.Errorf("alps: duplicate Starting for apid %d", v.ApID)
		}
		a.open[v.ApID] = AppRun{
			ApID:  v.ApID,
			JobID: a.intern(v.JobID),
			User:  a.intern(v.User),
			Cmd:   a.intern(v.Cmd),
			Width: v.Width,
			Nodes: v.Nodes,
			Start: at,
		}
	case KindFinishing:
		return a.finish(at, v.ApID, v.ExitCode, v.Signal)
	case KindUnknown:
		// apsys chatter; ignore.
	default:
		return fmt.Errorf("alps: unknown message kind %d", v.Kind)
	}
	return nil
}

// intern returns a canonical string for b, copying it at most once.
//
//ldvet:pooled
//ldvet:hotpath
func (a *Assembler) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := a.interned[string(b)]; ok {
		return s
	}
	//ldvet:allow hotpath-alloc — first-sight copy into the intern cache
	s := string(b)
	a.interned[s] = s
	return s
}
