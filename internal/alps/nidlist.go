package alps

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"logdiver/internal/machine"
	"logdiver/internal/parse"
)

// FormatNIDList renders a node-ID set in the compact range notation ALPS
// uses in its logs, e.g. "12-27,100,102-110". The input need not be sorted;
// duplicates are collapsed. An empty input renders as "".
func FormatNIDList(ids []machine.NodeID) string {
	if len(ids) == 0 {
		return ""
	}
	sorted := make([]machine.NodeID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var b strings.Builder
	b.Grow(len(sorted) * 4)
	writeRange := func(lo, hi machine.NodeID) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(lo)))
		if hi > lo {
			b.WriteByte('-')
			b.WriteString(strconv.Itoa(int(hi)))
		}
	}
	lo := sorted[0]
	hi := sorted[0]
	for _, id := range sorted[1:] {
		switch {
		case id == hi || id == hi+1:
			if id == hi+1 {
				hi = id
			}
		default:
			writeRange(lo, hi)
			lo, hi = id, id
		}
	}
	writeRange(lo, hi)
	return b.String()
}

// maxNIDListLen bounds the total node count a single list may expand to.
// The largest real machines have tens of thousands of nodes; the cap exists
// so adversarial inputs (many maximal ranges in one list) cannot force
// gigabytes of allocation before validation fails.
const maxNIDListLen = 1 << 22

// ParseNIDList parses the compact range notation produced by FormatNIDList.
// It returns node IDs in ascending order. An empty string yields nil.
func ParseNIDList(s string) ([]machine.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	var out []machine.NodeID
	for _, part := range strings.Split(s, ",") {
		loStr, hiStr, isRange := strings.Cut(part, "-")
		lo, err := strconv.Atoi(loStr)
		if err != nil || lo < 0 {
			return nil, fmt.Errorf("alps: bad nid %q in list %q", part, s)
		}
		hi := lo
		if isRange {
			hi, err = strconv.Atoi(hiStr)
			if err != nil || hi < lo {
				return nil, fmt.Errorf("alps: bad nid range %q in list %q", part, s)
			}
		}
		if hi-lo >= maxNIDListLen || len(out)+(hi-lo+1) > maxNIDListLen {
			return nil, fmt.Errorf("alps: nid list %q implausibly large", s)
		}
		for id := lo; id <= hi; id++ {
			out = append(out, machine.NodeID(id))
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			return nil, fmt.Errorf("alps: nid list %q not strictly ascending", s)
		}
	}
	return out, nil
}

// ParseNIDListBytes is ParseNIDList over a byte view, with identical
// acceptance and error text. It makes exactly one allocation (the result
// slice, sized by a counting pre-pass) on valid input, allocating
// otherwise only to build errors.
func ParseNIDListBytes(s []byte) ([]machine.NodeID, error) {
	if len(s) == 0 {
		return nil, nil
	}
	// Pass 1: validate every range and count the total expansion.
	total := 0
	for start := 0; start <= len(s); {
		part, next := nidPart(s, start)
		start = next
		lo, hi, err := nidRange(part, s)
		if err != nil {
			return nil, err
		}
		if hi-lo >= maxNIDListLen || total+int(hi-lo)+1 > maxNIDListLen {
			return nil, fmt.Errorf("alps: nid list %q implausibly large", s)
		}
		total += int(hi-lo) + 1
	}
	// Pass 2: fill.
	out := make([]machine.NodeID, 0, total)
	for start := 0; start <= len(s); {
		part, next := nidPart(s, start)
		start = next
		lo, hi, _ := nidRange(part, s)
		for id := lo; id <= hi; id++ {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			return nil, fmt.Errorf("alps: nid list %q not strictly ascending", s)
		}
	}
	return out, nil
}

// nidPart returns the comma-separated part starting at start and the next
// scan position, mirroring strings.Split(s, ",") iteration.
func nidPart(s []byte, start int) (part []byte, next int) {
	if i := bytes.IndexByte(s[start:], ','); i >= 0 {
		return s[start : start+i], start + i + 1
	}
	return s[start:], len(s) + 1
}

// nidRange parses one "lo" or "lo-hi" part with the exact acceptance and
// error text of the ParseNIDList body.
func nidRange(part, list []byte) (lo, hi machine.NodeID, err error) {
	loB, hiB := part, []byte(nil)
	isRange := false
	if i := bytes.IndexByte(part, '-'); i >= 0 {
		loB, hiB, isRange = part[:i], part[i+1:], true
	}
	l, ok := parse.Atoi(loB)
	if !ok || l < 0 {
		return 0, 0, fmt.Errorf("alps: bad nid %q in list %q", part, list)
	}
	h := l
	if isRange {
		h, ok = parse.Atoi(hiB)
		if !ok || h < l {
			return 0, 0, fmt.Errorf("alps: bad nid range %q in list %q", part, list)
		}
	}
	return machine.NodeID(l), machine.NodeID(h), nil
}
