// Package alps models the ALPS (Application Level Placement Scheduler)
// application log: the apsys records that mark every aprun-launched
// application's placement and exit. These are the records that define an
// "application run" in the study — the unit whose resiliency is measured.
// Each run appears as a pair of syslog messages with the apsys tag:
//
//	apid=456789, Starting, user=alice, batch_id=123456.bw, cmd=vasp, width=2048, num_nodes=64, node_list=100-163
//	apid=456789, Finishing, exit_code=0, signal=0, node_cnt=64
//
// The package provides formatting and parsing of both message bodies and an
// Assembler that pairs them into AppRun records.
package alps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"logdiver/internal/machine"
	"logdiver/internal/parse"
)

// Tag is the syslog program tag under which apsys logs application events.
const Tag = "apsys"

// AppRun is one aprun-launched application execution: the study's unit of
// analysis.
type AppRun struct {
	// ApID is the ALPS application ID, unique machine-wide.
	ApID uint64
	// JobID is the batch job (Torque) the run belongs to.
	JobID string
	// User is the submitting user.
	User string
	// Cmd is the executable name.
	Cmd string
	// Width is the number of processing elements (PEs, i.e. ranks).
	Width int
	// Nodes is the placement, ascending.
	Nodes []machine.NodeID
	// Start and End bound the execution.
	Start, End time.Time
	// ExitCode is the application exit code (0 on success); meaningless
	// when Signal != 0.
	ExitCode int
	// Signal is the fatal signal number, 0 if none.
	Signal int
}

// Duration returns the run's wall-clock duration.
func (r AppRun) Duration() time.Duration { return r.End.Sub(r.Start) }

// NodeHours returns the node-hours consumed by the run.
func (r AppRun) NodeHours() float64 {
	return float64(len(r.Nodes)) * r.Duration().Hours()
}

// Failed reports whether the run terminated abnormally (nonzero exit code
// or fatal signal).
func (r AppRun) Failed() bool { return r.ExitCode != 0 || r.Signal != 0 }

// StartMessage renders the apsys "Starting" message body for r.
func StartMessage(r AppRun) string {
	var b strings.Builder
	b.Grow(96 + len(r.Nodes)*4)
	b.WriteString("apid=")
	b.WriteString(strconv.FormatUint(r.ApID, 10))
	b.WriteString(", Starting, user=")
	b.WriteString(r.User)
	b.WriteString(", batch_id=")
	b.WriteString(r.JobID)
	b.WriteString(", cmd=")
	b.WriteString(r.Cmd)
	b.WriteString(", width=")
	b.WriteString(strconv.Itoa(r.Width))
	b.WriteString(", num_nodes=")
	b.WriteString(strconv.Itoa(len(r.Nodes)))
	b.WriteString(", node_list=")
	b.WriteString(FormatNIDList(r.Nodes))
	return b.String()
}

// ExitMessage renders the apsys "Finishing" message body for r.
func ExitMessage(r AppRun) string {
	return fmt.Sprintf("apid=%d, Finishing, exit_code=%d, signal=%d, node_cnt=%d",
		r.ApID, r.ExitCode, r.Signal, len(r.Nodes))
}

// MessageKind discriminates the two apsys record kinds.
type MessageKind int

// Message kinds.
const (
	KindUnknown MessageKind = iota
	KindStarting
	KindFinishing
)

// Message is one parsed apsys message body.
type Message struct {
	Kind     MessageKind
	ApID     uint64
	User     string
	JobID    string
	Cmd      string
	Width    int
	Nodes    []machine.NodeID
	ExitCode int
	Signal   int
	NodeCnt  int
}

// ParseMessage parses an apsys message body. Bodies that are valid apsys
// output but not Starting/Finishing records (e.g. error chatter) yield
// KindUnknown with a nil error so callers can skip them cheaply.
//
// ParseMessage is a pure function and safe to call from concurrent
// goroutines; the parallel ingestion path shards apsys lines across workers
// and feeds the resulting Messages to a single Assembler in archive order
// (Assembler itself is not goroutine-safe).
func ParseMessage(body string) (Message, error) {
	var m Message
	fields, err := splitFields(body)
	if err != nil {
		return m, err
	}
	apidStr, ok := fields["apid"]
	if !ok {
		return m, nil // apsys chatter without an apid: not a placement record
	}
	apid, err := strconv.ParseUint(apidStr, 10, 64)
	if err != nil {
		return m, parse.Errorf(parse.KindField, body, "alps: bad apid %q", apidStr)
	}
	m.ApID = apid
	switch {
	case fields["_marker"] == "Starting":
		m.Kind = KindStarting
		m.User = fields["user"]
		m.JobID = fields["batch_id"]
		m.Cmd = fields["cmd"]
		if m.Width, err = atoiField(fields, "width", body); err != nil {
			return m, err
		}
		numNodes, err := atoiField(fields, "num_nodes", body)
		if err != nil {
			return m, err
		}
		m.Nodes, err = ParseNIDList(fields["node_list"])
		if err != nil {
			return m, parse.Errorf(parse.KindField, body, "alps: bad node_list: %s", err.Error())
		}
		if len(m.Nodes) != numNodes {
			return m, parse.Errorf(parse.KindStructure, body, "alps: apid %d claims %d nodes but lists %d", apid, numNodes, len(m.Nodes))
		}
	case fields["_marker"] == "Finishing":
		m.Kind = KindFinishing
		if m.ExitCode, err = atoiField(fields, "exit_code", body); err != nil {
			return m, err
		}
		if m.Signal, err = atoiField(fields, "signal", body); err != nil {
			return m, err
		}
		if m.NodeCnt, err = atoiField(fields, "node_cnt", body); err != nil {
			return m, err
		}
	default:
		m.Kind = KindUnknown
	}
	return m, nil
}

// splitFields parses "k=v, k=v, Marker, k=v" bodies. Bare words (no '=')
// are collected under the "_marker" pseudo-key; the last one wins.
func splitFields(body string) (map[string]string, error) {
	fields := make(map[string]string, 8)
	for _, part := range strings.Split(body, ", ") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if k, v, ok := strings.Cut(part, "="); ok {
			if k == "" {
				return nil, parse.Errorf(parse.KindStructure, body, "alps: empty key")
			}
			fields[k] = v
		} else {
			fields["_marker"] = part
		}
	}
	return fields, nil
}

func atoiField(fields map[string]string, key, body string) (int, error) {
	v, ok := fields[key]
	if !ok {
		return 0, parse.Errorf(parse.KindField, body, "alps: missing field %q", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, parse.Errorf(parse.KindField, body, "alps: field %s=%q not a number", key, v)
	}
	return n, nil
}

// Assembler pairs Starting/Finishing messages into AppRun records.
type Assembler struct {
	open       map[uint64]AppRun
	done       []AppRun
	unmatched  int
	duplicates int
	clamped    int
	lenient    bool
	// interned canonicalizes the short repeated per-run strings (user, job
	// ID, command) so the byte-view fast path copies each distinct value out
	// of its input buffer at most once.
	interned map[string]string
}

// NewAssembler returns an empty assembler in strict duplicate handling:
// a second Starting for an open apid is an error.
func NewAssembler() *Assembler {
	return &Assembler{open: make(map[uint64]AppRun), interned: make(map[string]string)}
}

// SetLenient selects the degraded-record policy: when on, a second
// Starting record for an apid that is already open is counted (see
// Duplicates) and skipped — the first record wins — and a Finishing
// stamped before its Starting is clamped to a zero-duration run (see
// ClampedEnds) instead of failing the assembly. Corrupted archives
// duplicate writer buffers and skew clocks; lenient ingestion must
// tolerate both.
func (a *Assembler) SetLenient(on bool) { a.lenient = on }

// Add folds one timestamped apsys message into the assembler.
func (a *Assembler) Add(at time.Time, m Message) error {
	switch m.Kind {
	case KindStarting:
		if _, dup := a.open[m.ApID]; dup {
			if a.lenient {
				a.duplicates++
				return nil
			}
			return fmt.Errorf("alps: duplicate Starting for apid %d", m.ApID)
		}
		a.open[m.ApID] = AppRun{
			ApID:  m.ApID,
			JobID: m.JobID,
			User:  m.User,
			Cmd:   m.Cmd,
			Width: m.Width,
			Nodes: m.Nodes,
			Start: at,
		}
	case KindFinishing:
		return a.finish(at, m.ApID, m.ExitCode, m.Signal)
	case KindUnknown:
		// apsys chatter; ignore.
	default:
		return fmt.Errorf("alps: unknown message kind %d", m.Kind)
	}
	return nil
}

// finish closes the open run for apid, shared by Add and AddView.
func (a *Assembler) finish(at time.Time, apid uint64, exitCode, signal int) error {
	run, ok := a.open[apid]
	if !ok {
		a.unmatched++
		return nil // exit without a start: archive truncation, tolerated
	}
	if at.Before(run.Start) {
		// A Finishing stamped before its Starting (clock skew, torn
		// buffers) would give the run a negative duration and poison
		// every downstream duration statistic.
		if !a.lenient {
			return fmt.Errorf("alps: apid %d Finishing at %s precedes Starting at %s",
				apid, at.Format(time.RFC3339), run.Start.Format(time.RFC3339))
		}
		a.clamped++
		at = run.Start
	}
	delete(a.open, apid)
	run.End = at
	run.ExitCode = exitCode
	run.Signal = signal
	a.done = append(a.done, run)
	return nil
}

// Runs returns completed runs sorted by start time then apid. Runs still
// open (no Finishing seen) are not included; see Open.
func (a *Assembler) Runs() []AppRun {
	out := make([]AppRun, len(a.done))
	copy(out, a.done)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ApID < out[j].ApID
	})
	return out
}

// Done returns the completed runs in completion (archive) order, without
// sorting. The slice is append-only across Add calls: incremental ingestion
// relies on Done()[n:] being exactly the runs completed since it last
// observed n completed runs. The caller must not mutate the returned slice.
func (a *Assembler) Done() []AppRun { return a.done }

// Open returns the number of runs with a Starting record but no Finishing
// record (still running at the end of the archive, or lost records).
func (a *Assembler) Open() int { return len(a.open) }

// Unmatched returns the number of Finishing records with no Starting record.
func (a *Assembler) Unmatched() int { return a.unmatched }

// Duplicates returns the number of Starting records skipped because the
// apid was already open (lenient mode only; strict assembly fails instead).
func (a *Assembler) Duplicates() int { return a.duplicates }

// ClampedEnds returns the number of Finishing records whose timestamp
// preceded the paired Starting and was clamped to it, yielding a
// zero-duration run (lenient mode only; strict assembly fails instead).
func (a *Assembler) ClampedEnds() int { return a.clamped }
