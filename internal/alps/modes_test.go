package alps

import (
	"errors"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
)

// Error-path cases for the apsys message-body parser. Every entry is one
// malformed body plus the Kind the parser must report. (Encoding and
// oversize failures are caught a layer above, on the raw syslog line; see
// the syslogx and core tests.)
var alpsErrorCases = []struct {
	name string
	body string
	kind parse.Kind
}{
	{"bad apid", "apid=notanumber, Starting, user=x", parse.KindField},
	{"missing width", "apid=1, Starting, user=x, batch_id=9.bw, cmd=a.out, num_nodes=1, node_list=5", parse.KindField},
	{"non-numeric width", "apid=1, Starting, user=x, batch_id=9.bw, cmd=a.out, width=lots, num_nodes=1, node_list=5", parse.KindField},
	{"bad node list", "apid=1, Starting, user=x, batch_id=9.bw, cmd=a.out, width=16, num_nodes=1, node_list=5-", parse.KindField},
	{"node count mismatch", "apid=1, Starting, user=x, batch_id=9.bw, cmd=a.out, width=16, num_nodes=3, node_list=5", parse.KindStructure},
	{"empty key", "apid=1, Starting, =orphan", parse.KindStructure},
	{"missing exit code", "apid=1, Finishing, signal=0, node_cnt=1", parse.KindField},
	{"non-numeric signal", "apid=1, Finishing, exit_code=0, signal=SIGKILL, node_cnt=1", parse.KindField},
}

// TestParseMessageErrorKinds pins the typed Kind of every message-level
// error path; the ingestion pipeline's per-kind malformed accounting
// depends on these classifications.
func TestParseMessageErrorKinds(t *testing.T) {
	for _, tc := range alpsErrorCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMessage(tc.body)
			var perr *parse.Error
			if !errors.As(err, &perr) {
				t.Fatalf("ParseMessage(%q) error %v is not a *parse.Error", tc.body, err)
			}
			if perr.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", perr.Kind, tc.kind)
			}
		})
	}
}

// TestAssemblerRetrogradeFinishModes pins the handling of a Finishing
// stamped before its Starting (clock skew): lenient clamps the run to zero
// duration and counts it; strict fails the assembly. Negative durations
// would poison every downstream duration statistic (found by driving the
// full pipeline over skew-mutated archives).
func TestAssemblerRetrogradeFinishModes(t *testing.T) {
	at := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	start, err := ParseMessage("apid=7, Starting, user=alice, batch_id=9.bw, cmd=a.out, width=16, num_nodes=1, node_list=5")
	if err != nil {
		t.Fatal(err)
	}
	finish, err := ParseMessage("apid=7, Finishing, exit_code=0, signal=0, node_cnt=1")
	if err != nil {
		t.Fatal(err)
	}

	strict := NewAssembler()
	if err := strict.Add(at, start); err != nil {
		t.Fatal(err)
	}
	if err := strict.Add(at.Add(-time.Hour), finish); err == nil {
		t.Error("strict assembler accepted a Finishing before its Starting")
	}

	lenient := NewAssembler()
	lenient.SetLenient(true)
	if err := lenient.Add(at, start); err != nil {
		t.Fatal(err)
	}
	if err := lenient.Add(at.Add(-time.Hour), finish); err != nil {
		t.Fatalf("lenient assembler rejected a retrograde Finishing: %v", err)
	}
	if got := lenient.ClampedEnds(); got != 1 {
		t.Errorf("ClampedEnds() = %d, want 1", got)
	}
	runs := lenient.Runs()
	if len(runs) != 1 {
		t.Fatalf("%d runs assembled, want 1", len(runs))
	}
	if d := runs[0].Duration(); d != 0 {
		t.Errorf("clamped run duration %v, want 0", d)
	}
}

// TestParseNIDListTotalCap guards the total-size cap: a list of many
// individually-legal ranges must fail fast instead of expanding to
// gigabytes (fuzzer-found hang).
func TestParseNIDListTotalCap(t *testing.T) {
	parts := make([]string, 8)
	for i := range parts {
		parts[i] = "0-4194303"
	}
	if _, err := ParseNIDList(strings.Join(parts, ",")); err == nil {
		t.Error("ParseNIDList accepted a multi-range list expanding past the cap")
	}
	// A single plausible machine-sized range still parses.
	ids, err := ParseNIDList("0-27712")
	if err != nil || len(ids) != 27713 {
		t.Errorf("machine-sized range failed: %d ids, %v", len(ids), err)
	}
}

// TestAssemblerDuplicateStartModes pins the strict/lenient split of the
// assembler: strict errors on a second Starting for an open apid, lenient
// keeps the first placement, tolerates the duplicate and counts it.
func TestAssemblerDuplicateStartModes(t *testing.T) {
	at := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	start, err := ParseMessage("apid=7, Starting, user=alice, batch_id=9.bw, cmd=a.out, width=16, num_nodes=1, node_list=5")
	if err != nil {
		t.Fatal(err)
	}
	dup, err := ParseMessage("apid=7, Starting, user=mallory, batch_id=8.bw, cmd=b.out, width=32, num_nodes=1, node_list=6")
	if err != nil {
		t.Fatal(err)
	}
	finish, err := ParseMessage("apid=7, Finishing, exit_code=0, signal=0, node_cnt=1")
	if err != nil {
		t.Fatal(err)
	}

	strict := NewAssembler()
	if err := strict.Add(at, start); err != nil {
		t.Fatal(err)
	}
	if err := strict.Add(at.Add(time.Second), dup); err == nil {
		t.Error("strict assembler accepted a duplicate Starting")
	}

	lenient := NewAssembler()
	lenient.SetLenient(true)
	if err := lenient.Add(at, start); err != nil {
		t.Fatal(err)
	}
	if err := lenient.Add(at.Add(time.Second), dup); err != nil {
		t.Fatalf("lenient assembler rejected a duplicate Starting: %v", err)
	}
	if err := lenient.Add(at.Add(time.Minute), finish); err != nil {
		t.Fatal(err)
	}
	if got := lenient.Duplicates(); got != 1 {
		t.Errorf("Duplicates() = %d, want 1", got)
	}
	runs := lenient.Runs()
	if len(runs) != 1 {
		t.Fatalf("%d runs assembled, want 1", len(runs))
	}
	// First placement wins: the duplicate's fields must not leak in.
	if runs[0].User != "alice" || runs[0].JobID != "9.bw" {
		t.Errorf("duplicate overwrote the open run: %+v", runs[0])
	}
}
