package alps

import (
	"fmt"
	"sort"
)

// AssemblerState is the serializable snapshot of an Assembler: everything
// needed to resume pairing Starting/Finishing records exactly where a
// previous process stopped. The lenient flag is deliberately absent — it is
// configuration, not data, and the restoring caller re-applies it via
// SetLenient so a state file cannot silently switch parse policies.
type AssemblerState struct {
	// Open are the runs with a Starting record but no Finishing record yet,
	// sorted by ApID for deterministic serialization. End is zero.
	Open []AppRun
	// Done are the completed runs in completion (archive) order. Order is
	// load-bearing: incremental ingestion identifies newly completed runs as
	// Done()[n:], so a restored assembler must append after the same prefix.
	Done []AppRun
	// Unmatched, Duplicates and Clamped carry the anomaly counters.
	Unmatched  int
	Duplicates int
	Clamped    int
}

// State exports the assembler for persistence. The returned state shares no
// mutable memory with the assembler: AppRun node slices are not copied (they
// are never mutated after Add), but the containers are fresh.
func (a *Assembler) State() AssemblerState {
	st := AssemblerState{
		Open:       make([]AppRun, 0, len(a.open)),
		Done:       make([]AppRun, len(a.done)),
		Unmatched:  a.unmatched,
		Duplicates: a.duplicates,
		Clamped:    a.clamped,
	}
	copy(st.Done, a.done)
	for _, r := range a.open {
		st.Open = append(st.Open, r)
	}
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].ApID < st.Open[j].ApID })
	return st
}

// RestoreAssembler rebuilds an assembler from a persisted state. The caller
// re-applies the duplicate policy with SetLenient. A state carrying the same
// apid twice in Open is corrupt and rejected.
func RestoreAssembler(st AssemblerState) (*Assembler, error) {
	a := &Assembler{
		open:       make(map[uint64]AppRun, len(st.Open)),
		done:       make([]AppRun, len(st.Done)),
		unmatched:  st.Unmatched,
		duplicates: st.Duplicates,
		clamped:    st.Clamped,
		interned:   make(map[string]string),
	}
	copy(a.done, st.Done)
	for _, r := range st.Open {
		if _, dup := a.open[r.ApID]; dup {
			return nil, fmt.Errorf("alps: restore: apid %d open twice", r.ApID)
		}
		a.open[r.ApID] = r
	}
	return a, nil
}
