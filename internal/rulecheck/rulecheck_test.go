package rulecheck_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"logdiver/internal/rulecheck"
	"logdiver/internal/taxonomy"
)

// mk builds an in-memory located rule (Line 0).
func mk(name, pat string, cat taxonomy.Category, sev taxonomy.Severity) taxonomy.LocatedRule {
	return taxonomy.LocatedRule{Rule: taxonomy.Rule{
		Name: name, Pattern: regexp.MustCompile(pat), Category: cat, Severity: sev,
	}}
}

// findingsOf filters the findings produced for rules down to one check id.
func findingsOf(fs []rulecheck.Finding, check string) []rulecheck.Finding {
	var out []rulecheck.Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestChecksTableDriven exercises every lint class with at least one
// positive and one negative case. The corpus is injected explicitly so the
// differential checks are fully deterministic.
func TestChecksTableDriven(t *testing.T) {
	ueMsg := "Machine Check Exception: uncorrected DRAM error on c0-0c0s0n0 bank 1"
	tests := []struct {
		name   string
		rules  []taxonomy.LocatedRule
		corpus []rulecheck.Sample
		check  string // check id under test
		// wantRules are the rule names expected to be flagged by check, in
		// order; empty means the check must not fire at all.
		wantRules []string
		wantSev   rulecheck.Severity
		// wantRelated, if set, is the Related rule expected on the first
		// finding.
		wantRelated string
	}{
		{
			name: "bad-name positive",
			rules: []taxonomy.LocatedRule{
				mk("has space", `x`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("ok", `y`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "bad-name", wantRules: []string{"has space"}, wantSev: rulecheck.Error,
		},
		{
			name: "bad-name negative",
			rules: []taxonomy.LocatedRule{
				mk("CRIT-watcher.v2", `x`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "bad-name",
		},
		{
			name: "dup-name positive",
			rules: []taxonomy.LocatedRule{
				mk("same", `aaa`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("same", `bbb`, taxonomy.SoftwareOS, taxonomy.SevError),
			},
			check: "dup-name", wantRules: []string{"same"}, wantSev: rulecheck.Error,
			wantRelated: "same",
		},
		{
			name: "dup-name negative",
			rules: []taxonomy.LocatedRule{
				mk("a", `aaa`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("b", `bbb`, taxonomy.SoftwareOS, taxonomy.SevError),
			},
			check: "dup-name",
		},
		{
			name: "empty-match universal positive",
			rules: []taxonomy.LocatedRule{
				mk("catchall", `.*`, taxonomy.SoftwareOS, taxonomy.SevInfo),
				mk("optional", `(error)?`, taxonomy.SoftwareOS, taxonomy.SevInfo),
				mk("nonempty-universal", `.+`, taxonomy.SoftwareOS, taxonomy.SevInfo),
			},
			check:     "empty-match",
			wantRules: []string{"catchall", "optional", "nonempty-universal"},
			wantSev:   rulecheck.Error,
		},
		{
			name: "empty-match anchored is warn only",
			rules: []taxonomy.LocatedRule{
				mk("anchored-empty", `^(panic)?$`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "empty-match", wantRules: []string{"anchored-empty"}, wantSev: rulecheck.Warn,
		},
		{
			name: "empty-match negative",
			rules: []taxonomy.LocatedRule{
				mk("plain", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "empty-match",
		},
		{
			name: "shadow-structural identical pattern",
			rules: []taxonomy.LocatedRule{
				mk("first", `(?i)machine check`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
				mk("second", `(?i)machine check`, taxonomy.HardwareMemoryCE, taxonomy.SevWarning),
			},
			check: "shadow-structural", wantRules: []string{"second"}, wantSev: rulecheck.Error,
			wantRelated: "first",
		},
		{
			name: "shadow-structural alternation branch",
			rules: []taxonomy.LocatedRule{
				mk("both", `(?i)kernel panic|oops:`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("branch", `(?i)kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "shadow-structural", wantRules: []string{"branch"}, wantSev: rulecheck.Error,
			wantRelated: "both",
		},
		{
			name: "shadow-structural literal containment",
			rules: []taxonomy.LocatedRule{
				mk("broad", `(?i)kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("literal", `kernel panic - not syncing`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "shadow-structural", wantRules: []string{"literal"}, wantSev: rulecheck.Error,
			wantRelated: "broad",
		},
		{
			name: "shadow-structural respects anchors",
			rules: []taxonomy.LocatedRule{
				// \b invalidates substring closure: "xkernel panicx" is
				// matched by the literal but not by the anchored rule, so
				// the literal is NOT contained and must not be flagged.
				mk("word", `\bkernel panic\b`, taxonomy.KernelPanic, taxonomy.SevCritical),
				mk("literal", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "shadow-structural",
		},
		{
			name: "shadow-structural negative disjoint",
			rules: []taxonomy.LocatedRule{
				mk("a", `voltage fault`, taxonomy.HardwarePower, taxonomy.SevCritical),
				mk("b", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "shadow-structural",
		},
		{
			name: "shadow-differential corpus plus witnesses",
			rules: []taxonomy.LocatedRule{
				mk("broad", `(?i)machine check`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
				mk("narrow", `(?i)machine check exception.*uncorrected`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
			},
			corpus: []rulecheck.Sample{{Message: ueMsg, Category: taxonomy.HardwareMemoryUE}},
			check:  "shadow-differential", wantRules: []string{"narrow"}, wantSev: rulecheck.Error,
			wantRelated: "broad",
		},
		{
			name: "shadow-witness only",
			rules: []taxonomy.LocatedRule{
				// narrow is kept non-literal so the structural containment
				// check cannot prove the shadowing; only its synthesized
				// witnesses reveal it.
				mk("broad", `zzz`, taxonomy.SoftwareOS, taxonomy.SevError),
				mk("narrow", `zzz(qqq|www)`, taxonomy.SoftwareOS, taxonomy.SevError),
			},
			corpus: []rulecheck.Sample{{Message: ueMsg, Category: taxonomy.HardwareMemoryUE}},
			check:  "shadow-witness", wantRules: []string{"narrow"}, wantSev: rulecheck.Warn,
			wantRelated: "broad",
		},
		{
			name: "shadow-corpus only",
			rules: []taxonomy.LocatedRule{
				mk("dram", `(?i)uncorrected DRAM`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
				// Witness "machine check exception: uncorrected" is NOT
				// matched by "dram", so only the corpus shows the shadowing.
				mk("mce", `(?i)machine check exception: uncorrected`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
			},
			corpus: []rulecheck.Sample{{Message: ueMsg, Category: taxonomy.HardwareMemoryUE}},
			check:  "shadow-corpus", wantRules: []string{"mce"}, wantSev: rulecheck.Warn,
			wantRelated: "dram",
		},
		{
			name: "shadow differential negative: rule fires first on corpus",
			rules: []taxonomy.LocatedRule{
				mk("other", `voltage fault`, taxonomy.HardwarePower, taxonomy.SevCritical),
				mk("mce", `(?i)machine check`, taxonomy.HardwareMemoryUE, taxonomy.SevCritical),
			},
			corpus: []rulecheck.Sample{{Message: ueMsg, Category: taxonomy.HardwareMemoryUE}},
			check:  "shadow-corpus",
		},
		{
			name: "severity-mismatch benign at CRIT",
			rules: []taxonomy.LocatedRule{
				mk("recovered", `node returned to service`, taxonomy.NodeRecovered, taxonomy.SevCritical),
			},
			check: "severity-mismatch", wantRules: []string{"recovered"}, wantSev: rulecheck.Error,
		},
		{
			name: "severity-mismatch fatal at INFO",
			rules: []taxonomy.LocatedRule{
				mk("quiet-panic", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevInfo),
			},
			check: "severity-mismatch", wantRules: []string{"quiet-panic"}, wantSev: rulecheck.Warn,
		},
		{
			name: "severity-mismatch negative",
			rules: []taxonomy.LocatedRule{
				mk("recovered", `node returned to service`, taxonomy.NodeRecovered, taxonomy.SevInfo),
				mk("panic", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
			},
			check: "severity-mismatch",
		},
		{
			name: "superlinear positive",
			rules: []taxonomy.LocatedRule{
				mk("nested", `(?i)(lockup+)+`, taxonomy.SoftwareOS, taxonomy.SevError),
			},
			check: "superlinear", wantRules: []string{"nested"}, wantSev: rulecheck.Warn,
		},
		{
			name: "superlinear negative sequential quantifiers",
			rules: []taxonomy.LocatedRule{
				mk("seq", `a+b+c*`, taxonomy.SoftwareOS, taxonomy.SevError),
			},
			check: "superlinear",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			opts := rulecheck.Options{Corpus: tt.corpus}
			if tt.corpus == nil {
				opts.NoCorpus = true
			}
			fs := rulecheck.Check(tt.rules, opts)
			got := findingsOf(fs, tt.check)
			if len(tt.wantRules) == 0 {
				if len(got) != 0 {
					t.Fatalf("check %s fired unexpectedly: %v", tt.check, got)
				}
				return
			}
			if len(got) != len(tt.wantRules) {
				t.Fatalf("check %s: got %d findings %v, want rules %v", tt.check, len(got), got, tt.wantRules)
			}
			for i, f := range got {
				if f.Rule != tt.wantRules[i] {
					t.Errorf("finding %d names rule %q, want %q", i, f.Rule, tt.wantRules[i])
				}
				if f.Severity != tt.wantSev {
					t.Errorf("finding %d severity %v, want %v", i, f.Severity, tt.wantSev)
				}
			}
			if tt.wantRelated != "" && got[0].Related != tt.wantRelated {
				t.Errorf("finding related = %q, want %q", got[0].Related, tt.wantRelated)
			}
		})
	}
}

// TestCoverageGap needs its own table since the finding is rule-set-level.
func TestCoverageGap(t *testing.T) {
	fs := rulecheck.Check([]taxonomy.LocatedRule{
		mk("only-panic", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
	}, rulecheck.Options{NoCorpus: true})
	gaps := findingsOf(fs, "coverage-gap")
	// Every category except KernelPanic is uncovered.
	if want := len(taxonomy.Categories()) - 1; len(gaps) != want {
		t.Fatalf("got %d coverage gaps, want %d", len(gaps), want)
	}
	var mentionsGPU bool
	for _, f := range gaps {
		if f.Severity != rulecheck.Warn {
			t.Errorf("coverage-gap severity %v, want warn", f.Severity)
		}
		if strings.Contains(f.Message, taxonomy.GPUMemoryDBE.String()) {
			mentionsGPU = true
		}
	}
	if !mentionsGPU {
		t.Error("no coverage-gap finding mentions GPU_DBE")
	}
	// Negative: the built-in set covers everything.
	full := rulecheck.Check(taxonomy.Locate(taxonomy.Default().Rules()), rulecheck.Options{NoCorpus: true})
	if gaps := findingsOf(full, "coverage-gap"); len(gaps) != 0 {
		t.Errorf("built-in set reported coverage gaps: %v", gaps)
	}
}

// TestBuiltinRulesClean is the tier-1 guard for the hot classification
// path: the shipped rule set must stay free of all findings, including
// warnings, under the full corpus-backed analysis.
func TestBuiltinRulesClean(t *testing.T) {
	fs := rulecheck.Check(taxonomy.Locate(taxonomy.Default().Rules()), rulecheck.Options{})
	for _, f := range fs {
		t.Errorf("built-in rule set: %s", f)
	}
}

// TestShadowedRuleFile pins the acceptance scenario: a deliberately
// shadowed rule in a rule file is reported with the shadowing rule's name
// and both line numbers.
func TestShadowedRuleFile(t *testing.T) {
	f, err := os.Open("testdata/shadowed.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, err := taxonomy.ReadRuleFile(f)
	if err != nil {
		t.Fatal(err)
	}
	fs := rulecheck.Check(rules, rulecheck.Options{})

	type want struct {
		check       string
		rule        string
		line        int
		severity    rulecheck.Severity
		related     string
		relatedLine int
	}
	wants := []want{
		{"shadow-structural", "mce-dup", 4, rulecheck.Error, "mce-wide", 3},
		{"shadow-structural", "panic-only", 6, rulecheck.Error, "panic-or-oops", 5},
		{"shadow-structural", "panic-lit", 7, rulecheck.Error, "panic-or-oops", 5},
		{"severity-mismatch", "recovered-crit", 8, rulecheck.Error, "", 0},
		{"superlinear", "lockup-nest", 9, rulecheck.Warn, "", 0},
		{"dup-name", "dup-pair", 11, rulecheck.Error, "dup-pair", 10},
		{"empty-match", "catchall", 12, rulecheck.Error, "", 0},
	}
	for _, w := range wants {
		found := false
		for _, f := range fs {
			if f.Check != w.check || f.Rule != w.rule {
				continue
			}
			found = true
			if f.Line != w.line {
				t.Errorf("%s/%s: line %d, want %d", w.check, w.rule, f.Line, w.line)
			}
			if f.Severity != w.severity {
				t.Errorf("%s/%s: severity %v, want %v", w.check, w.rule, f.Severity, w.severity)
			}
			if w.related != "" && (f.Related != w.related || f.RelatedLine != w.relatedLine) {
				t.Errorf("%s/%s: related %q line %d, want %q line %d",
					w.check, w.rule, f.Related, f.RelatedLine, w.related, w.relatedLine)
			}
		}
		if !found {
			t.Errorf("expected finding %s on rule %q did not fire; got:\n%s", w.check, w.rule, renderAll(fs))
		}
	}
	if !rulecheck.HasErrors(fs) {
		t.Error("HasErrors = false for a rule set with error findings")
	}
}

func renderAll(fs []rulecheck.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestNewValidatedClassifier(t *testing.T) {
	// A warn-only rule set builds, returning its findings.
	warnOnly := []taxonomy.LocatedRule{
		mk("quiet-panic", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevInfo),
	}
	cls, fs, err := rulecheck.NewValidatedClassifier(warnOnly, rulecheck.Options{NoCorpus: true})
	if err != nil {
		t.Fatalf("warn-only set rejected: %v", err)
	}
	if cls == nil {
		t.Fatal("nil classifier for accepted set")
	}
	if len(findingsOf(fs, "severity-mismatch")) == 0 {
		t.Error("warnings were not returned alongside the classifier")
	}
	if cat, _ := cls.Classify("kernel panic - not syncing"); cat != taxonomy.KernelPanic {
		t.Errorf("classifier misclassifies: got %v", cat)
	}

	// An error finding rejects the set with a diagnostic naming it.
	bad := []taxonomy.LocatedRule{
		mk("catchall", `.*`, taxonomy.SoftwareOS, taxonomy.SevInfo),
		mk("dead", `kernel panic`, taxonomy.KernelPanic, taxonomy.SevCritical),
	}
	_, _, err = rulecheck.NewValidatedClassifier(bad, rulecheck.Options{NoCorpus: true})
	if err == nil {
		t.Fatal("error-severity set accepted")
	}
	if !strings.Contains(err.Error(), "empty-match") || !strings.Contains(err.Error(), "catchall") {
		t.Errorf("rejection diagnostic not actionable: %v", err)
	}
}
