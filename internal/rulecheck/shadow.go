package rulecheck

import (
	"fmt"
	"regexp/syntax"
	"strings"

	"logdiver/internal/taxonomy"
)

// ruleInfo caches the per-rule regex analysis shared by several checks.
type ruleInfo struct {
	tree      *syntax.Regexp // simplified syntax tree, nil if unparseable
	universal bool           // matches every message (dead rules follow)
	anchored  bool           // contains ^ $ \b \A \z or equivalents
}

// analyzeRules runs the single-rule regex checks (empty-match/universal,
// superlinear) and returns the cached analysis for the shadowing passes.
func analyzeRules(rules []taxonomy.LocatedRule, add func(Finding)) []ruleInfo {
	infos := make([]ruleInfo, len(rules))
	for i, r := range rules {
		if r.Pattern == nil {
			add(Finding{
				Check: "bad-pattern", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: "rule has no compiled pattern",
			})
			continue
		}
		tree, err := syntax.Parse(r.Pattern.String(), syntax.Perl)
		if err != nil {
			// Pattern compiled with regexp but not regexp/syntax: cannot
			// happen in practice; skip the structural checks for it.
			continue
		}
		tree = tree.Simplify()
		info := &infos[i]
		info.tree = tree
		info.anchored = hasAnchor(tree)

		matchesEmpty := r.Pattern.MatchString("")
		switch {
		case matchesEmpty && !info.anchored:
			info.universal = true
			add(Finding{
				Check: "empty-match", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: "pattern matches the empty string; under unanchored matching it fires on every message, so every later rule is dead",
			})
		case trivialUniversal(tree):
			info.universal = true
			add(Finding{
				Check: "empty-match", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: "pattern is trivially universal (matches any non-empty message), so every later rule is effectively dead",
			})
		case matchesEmpty:
			add(Finding{
				Check: "empty-match", Severity: Warn,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: "pattern can match the empty string; check the anchoring is intended",
			})
		}

		if sub := superlinearSubtree(tree); sub != "" {
			add(Finding{
				Check: "superlinear", Severity: Warn,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: fmt.Sprintf("nested unbounded quantifiers in %q; Go's RE2 engine stays linear, but this pattern blows up on the backtracking engines site rule files are often reused with", sub),
			})
		}
	}
	return infos
}

// checkShadowing reports rules that can never fire under first-match-wins
// ordering, combining structural containment proofs with differential
// evidence (synthesized witnesses and the reference corpus).
func checkShadowing(rules []taxonomy.LocatedRule, infos []ruleInfo, corpus []Sample, maxWitnesses int, add func(Finding), at func(int) (string, int)) {
	type evidence struct {
		witnessBy int // earlier rule most often capturing the witnesses, -1 if none
		witnessN  int
		corpusBy  int
		corpusN   int // corpus messages matched but never first
	}

	structural := make([]bool, len(rules))
	// Structural containment: a later rule fully contained in an earlier
	// one. Universal earlier rules already produced an empty-match error
	// naming everything after them dead; repeating that per pair would
	// flood the report.
	for j := 1; j < len(rules); j++ {
		if infos[j].tree == nil {
			continue
		}
		for i := 0; i < j; i++ {
			if infos[i].tree == nil || infos[i].universal {
				continue
			}
			how := structurallyContains(rules[i], infos[i], rules[j], infos[j])
			if how == "" {
				continue
			}
			name, line := at(i)
			add(Finding{
				Check: "shadow-structural", Severity: Error,
				Rule: rules[j].Name, Index: j, Line: rules[j].Line,
				Message: fmt.Sprintf("rule can never fire: %s earlier rule %q (%s), which always matches first",
					how, name, describePos(rules[i])),
				Related: name, RelatedLine: line,
			})
			structural[j] = true
			break
		}
	}

	// Differential evidence for the remaining rules.
	firstMatch := func(msg string, upto int) int {
		for i := 0; i < upto; i++ {
			if rules[i].Pattern != nil && rules[i].Pattern.MatchString(msg) {
				return i
			}
		}
		return -1
	}
	for j := 1; j < len(rules); j++ {
		if structural[j] || infos[j].tree == nil || rules[j].Pattern == nil {
			continue
		}
		ev := evidence{witnessBy: -1, corpusBy: -1}

		// Witnesses synthesized from the rule's own pattern: if every
		// string we can derive from the regex is captured earlier, the rule
		// is likely dead.
		wits := witnesses(rules[j].Pattern, infos[j].tree, maxWitnesses)
		if len(wits) > 0 {
			counts := map[int]int{}
			preempted := 0
			for _, w := range wits {
				if i := firstMatch(w, j); i >= 0 {
					preempted++
					counts[i]++
				}
			}
			if preempted == len(wits) {
				ev.witnessN = len(wits)
				ev.witnessBy = argmax(counts)
			}
		}

		// Corpus differential firing: the rule matches reference messages
		// but never first.
		matched, neverFirst := 0, 0
		counts := map[int]int{}
		for _, s := range corpus {
			if !rules[j].Pattern.MatchString(s.Message) {
				continue
			}
			matched++
			if i := firstMatch(s.Message, j); i >= 0 {
				neverFirst++
				counts[i]++
			}
		}
		if matched > 0 && neverFirst == matched {
			ev.corpusN = matched
			ev.corpusBy = argmax(counts)
		}

		switch {
		case ev.witnessBy >= 0 && ev.corpusBy >= 0:
			name, line := at(ev.corpusBy)
			add(Finding{
				Check: "shadow-differential", Severity: Error,
				Rule: rules[j].Name, Index: j, Line: rules[j].Line,
				Message: fmt.Sprintf("rule never fires: all %d strings synthesized from its pattern and all %d corpus messages it matches are captured by earlier rules, most often %q (%s)",
					ev.witnessN, ev.corpusN, name, describePos(rules[ev.corpusBy])),
				Related: name, RelatedLine: line,
			})
		case ev.corpusBy >= 0:
			name, line := at(ev.corpusBy)
			add(Finding{
				Check: "shadow-corpus", Severity: Warn,
				Rule: rules[j].Name, Index: j, Line: rules[j].Line,
				Message: fmt.Sprintf("rule matches %d reference corpus messages but is never their first match; earlier rule %q (%s) captures them",
					ev.corpusN, name, describePos(rules[ev.corpusBy])),
				Related: name, RelatedLine: line,
			})
		case ev.witnessBy >= 0:
			name, line := at(ev.witnessBy)
			add(Finding{
				Check: "shadow-witness", Severity: Warn,
				Rule: rules[j].Name, Index: j, Line: rules[j].Line,
				Message: fmt.Sprintf("all %d strings synthesized from the rule's pattern are captured by earlier rules, most often %q (%s); the rule may be unreachable",
					ev.witnessN, name, describePos(rules[ev.witnessBy])),
				Related: name, RelatedLine: line,
			})
		}
	}
}

func argmax(counts map[int]int) int {
	best, bestN := -1, -1
	for i, n := range counts {
		if n > bestN || (n == bestN && i < best) {
			best, bestN = i, n
		}
	}
	return best
}

// structurallyContains reports how (if at all) the language of the later
// rule's pattern is provably contained in the earlier rule's. It returns a
// human-readable phrase for the containment proof, or "".
func structurallyContains(early taxonomy.LocatedRule, earlyInfo ruleInfo, late taxonomy.LocatedRule, lateInfo ruleInfo) string {
	es, ls := earlyInfo.tree.String(), lateInfo.tree.String()
	if es == ls {
		return "its pattern is identical to"
	}
	// The later pattern is one branch of an earlier alternation:
	// `foo` after `foo|bar` can never fire.
	if earlyInfo.tree.Op == syntax.OpAlternate {
		for _, br := range earlyInfo.tree.Sub {
			if br.String() == ls {
				return "its pattern is an alternation branch of"
			}
		}
	}
	// The later pattern is a plain literal the earlier (anchor-free)
	// pattern already matches: any message containing the literal also
	// contains the earlier rule's match.
	if lit, ok := literalOf(lateInfo.tree); ok && !earlyInfo.anchored {
		if early.Pattern != nil && early.Pattern.MatchString(lit) {
			return fmt.Sprintf("its literal pattern %q is already matched by", lit)
		}
	}
	return ""
}

// literalOf extracts the literal string of a pattern that matches exactly
// one string (no case folding, alternation, classes or quantifiers).
func literalOf(t *syntax.Regexp) (string, bool) {
	switch t.Op {
	case syntax.OpLiteral:
		if t.Flags&syntax.FoldCase != 0 {
			return "", false
		}
		return string(t.Rune), true
	case syntax.OpCapture:
		return literalOf(t.Sub[0])
	case syntax.OpConcat:
		var b strings.Builder
		for _, sub := range t.Sub {
			s, ok := literalOf(sub)
			if !ok {
				return "", false
			}
			b.WriteString(s)
		}
		return b.String(), true
	default:
		return "", false
	}
}

// hasAnchor reports whether the pattern constrains match position (^, $,
// \A, \z, \b, \B), which invalidates substring-closure reasoning.
func hasAnchor(t *syntax.Regexp) bool {
	switch t.Op {
	case syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText, syntax.OpEndText,
		syntax.OpWordBoundary, syntax.OpNoWordBoundary:
		return true
	}
	for _, sub := range t.Sub {
		if hasAnchor(sub) {
			return true
		}
	}
	return false
}

// trivialUniversal reports patterns of the shape .*, .+, (?s).+ etc. that
// match any (non-empty) message.
func trivialUniversal(t *syntax.Regexp) bool {
	switch t.Op {
	case syntax.OpCapture:
		return trivialUniversal(t.Sub[0])
	case syntax.OpStar, syntax.OpPlus:
		sub := t.Sub[0]
		return sub.Op == syntax.OpAnyChar || sub.Op == syntax.OpAnyCharNotNL
	default:
		return false
	}
}

// unbounded reports whether the node repeats its subexpression without an
// upper bound.
func unbounded(t *syntax.Regexp) bool {
	switch t.Op {
	case syntax.OpStar, syntax.OpPlus:
		return true
	case syntax.OpRepeat:
		return t.Max < 0
	default:
		return false
	}
}

// superlinearSubtree returns the source text of an unbounded quantifier
// nested inside another unbounded quantifier — the classic catastrophic-
// backtracking shape like (a+)+ — or "" when the pattern has none.
func superlinearSubtree(t *syntax.Regexp) string {
	if unbounded(t) {
		if inner := findUnbounded(t.Sub[0]); inner != nil {
			return t.String()
		}
	}
	for _, sub := range t.Sub {
		if s := superlinearSubtree(sub); s != "" {
			return s
		}
	}
	return ""
}

// findUnbounded returns the first unbounded quantifier in the tree, if any.
func findUnbounded(t *syntax.Regexp) *syntax.Regexp {
	if unbounded(t) {
		return t
	}
	for _, sub := range t.Sub {
		if r := findUnbounded(sub); r != nil {
			return r
		}
	}
	return nil
}
