package rulecheck

import (
	"regexp"
	"regexp/syntax"
	"testing"
)

// TestWitnesses checks the synthesizer only ever returns strings the real
// pattern matches, and that it finds representatives for the regex shapes
// the built-in taxonomy uses.
func TestWitnesses(t *testing.T) {
	tests := []struct {
		pattern string
		min     int // minimum distinct witnesses expected
	}{
		{`kernel panic`, 1},
		{`(?i)machine check.*(cache|tlb|bus|processor)`, 2},
		{`uncorrect(ed|able).*(dram|memory|ecc)`, 2},
		{`(?i)(blade|mezzanine|l0c?) (controller )?(fault|failure|unresponsive)`, 2},
		{`x{2,4}[0-9a-f]`, 1},
		{`\bword\b`, 1},
		{`^anchored$`, 1},
		{`[^a-z]+`, 1},
	}
	for _, tt := range tests {
		re := regexp.MustCompile(tt.pattern)
		tree, err := syntax.Parse(tt.pattern, syntax.Perl)
		if err != nil {
			t.Fatalf("%q: %v", tt.pattern, err)
		}
		ws := witnesses(re, tree.Simplify(), 8)
		if len(ws) < tt.min {
			t.Errorf("witnesses(%q) = %q, want at least %d", tt.pattern, ws, tt.min)
		}
		for _, w := range ws {
			if !re.MatchString(w) {
				t.Errorf("witnesses(%q) returned %q, which the pattern does not match", tt.pattern, w)
			}
		}
	}
	// A pattern with an empty character class has no witnesses; the
	// synthesizer must say so rather than fabricate one.
	re := regexp.MustCompile(`a[^\x00-\x{10FFFF}]`)
	tree, _ := syntax.Parse(re.String(), syntax.Perl)
	if ws := witnesses(re, tree.Simplify(), 8); len(ws) != 0 {
		t.Errorf("impossible pattern produced witnesses %q", ws)
	}
}
