// Package rulecheck is a semantic linter for taxonomy rule sets. The
// classification rules are the foundation the whole attribution pipeline
// stands on: a misordered or shadowed regex silently reclassifies
// system-caused failures and skews the headline fractions, and the rule-file
// loader only guarantees that every regex compiles. rulecheck closes that
// gap with checks that understand first-match-wins semantics:
//
//   - bad-name / dup-name: names that cannot survive the rule-file format,
//     or that collide (error)
//   - empty-match: rules whose pattern matches the empty string — under
//     unanchored matching such a rule fires on every message, so everything
//     after it is dead (error; anchored empty matches are a warning)
//   - shadow-structural: a rule whose pattern is provably contained in an
//     earlier rule's pattern (identical pattern, an alternation branch of an
//     earlier pattern, or a literal already matched by an earlier
//     anchor-free pattern) can never fire (error)
//   - shadow-witness / shadow-corpus: differential evidence of shadowing —
//     every string synthesized from the rule's own regex, and/or every
//     message in the internal/errlog reference corpus the rule matches, is
//     captured by an earlier rule first (warning each; error when both
//     agree)
//   - coverage-gap: a taxonomy category with no rule at all, so that class
//     of message falls through to UNCLASSIFIED (warning)
//   - severity-mismatch: a benign/informational category graded ERROR or
//     CRIT (which turns recovery notices into application-killing evidence;
//     error), or an inherently fatal category graded INFO/WARN (warning)
//   - superlinear: nested unbounded quantifiers; Go's RE2 engine stays
//     linear, but site rule files are routinely reused with backtracking
//     engines where these patterns blow up (warning)
//   - prefilter-unsound: the literal prefilter the classifier extracts from
//     the rule's regexp has desynchronized from the regexp itself — it
//     rejects a string the regexp matches, or (tier-1 ordered chains) it
//     accepts a newline-free string the regexp rejects — verified
//     differentially with synthesized witnesses and seeded mutations (error)
//
// Findings carry the rule name, the rule-file line when known, a
// machine-readable check identifier and a severity, so they can be rendered
// for humans or as JSON and gated in CI.
package rulecheck

import (
	"fmt"
	"sort"

	"logdiver/internal/taxonomy"
)

// Severity grades a finding. Error findings indicate the rule set
// misclassifies or drops messages; Warn findings indicate likely mistakes
// that need human judgment.
type Severity int

// Finding severities.
const (
	Warn Severity = iota + 1
	Error
)

// String returns "warn" or "error".
func (s Severity) String() string {
	switch s {
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one lint diagnostic.
type Finding struct {
	// Check is the machine-readable check identifier ("shadow-structural",
	// "empty-match", ...).
	Check string `json:"check"`
	// Severity is Warn or Error.
	Severity Severity `json:"severity"`
	// Rule is the offending rule's name; empty for rule-set-level findings
	// (coverage-gap).
	Rule string `json:"rule,omitempty"`
	// Index is the rule's 0-based position in the list, or -1 for
	// rule-set-level findings.
	Index int `json:"index"`
	// Line is the 1-based rule-file line, when the rule came from a file.
	Line int `json:"line,omitempty"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
	// Related names the other rule involved (the shadowing rule, the first
	// holder of a duplicated name), with its line when known.
	Related     string `json:"related,omitempty"`
	RelatedLine int    `json:"related_line,omitempty"`
}

// String renders the finding as a one-line diagnostic.
func (f Finding) String() string {
	loc := "rule set"
	switch {
	case f.Rule != "" && f.Line > 0:
		loc = fmt.Sprintf("rule %q (line %d)", f.Rule, f.Line)
	case f.Rule != "":
		loc = fmt.Sprintf("rule %q (#%d)", f.Rule, f.Index+1)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", f.Severity, loc, f.Check, f.Message)
}

// Options configures a lint run.
type Options struct {
	// Corpus is the reference message corpus for differential-firing
	// checks. Nil means DefaultCorpus(corpusPerCategory); set NoCorpus to
	// skip corpus checks entirely.
	Corpus   []Sample
	NoCorpus bool
	// MaxWitnesses bounds the number of strings synthesized per rule for
	// the witness-based shadow check (default 8).
	MaxWitnesses int
}

const corpusPerCategory = 4

// Check lints an ordered rule set and returns its findings, sorted by rule
// position. A clean rule set returns nil.
func Check(rules []taxonomy.LocatedRule, opts Options) []Finding {
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 8
	}
	corpus := opts.Corpus
	if corpus == nil && !opts.NoCorpus {
		corpus = DefaultCorpus(corpusPerCategory)
	}

	var fs []Finding
	add := func(f Finding) { fs = append(fs, f) }
	at := func(i int) (string, int) {
		if i < 0 || i >= len(rules) {
			return "", 0
		}
		return rules[i].Name, rules[i].Line
	}

	checkNames(rules, add)
	infos := analyzeRules(rules, add)
	checkShadowing(rules, infos, corpus, opts.MaxWitnesses, add, at)
	checkCoverage(rules, add)
	checkSeverities(rules, add)
	checkPrefilters(rules, opts.MaxWitnesses, add)

	if len(fs) == 0 {
		return nil
	}
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		ai, bi := a.Index, b.Index
		if ai < 0 {
			ai = len(rules) // rule-set findings sort last
		}
		if bi < 0 {
			bi = len(rules)
		}
		if ai != bi {
			return ai < bi
		}
		return a.Check < b.Check
	})
	return fs
}

// HasErrors reports whether any finding is Error severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// checkNames flags names that break the rule-file format and duplicates.
func checkNames(rules []taxonomy.LocatedRule, add func(Finding)) {
	first := make(map[string]int, len(rules))
	for i, r := range rules {
		if err := taxonomy.CheckName(r.Name); err != nil {
			add(Finding{
				Check: "bad-name", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: err.Error() + "; the rule cannot be written to or re-read from a rule file",
			})
			continue
		}
		if j, dup := first[r.Name]; dup {
			add(Finding{
				Check: "dup-name", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: fmt.Sprintf("duplicate rule name (first used at %s); diagnostics and overrides cannot distinguish them",
					describePos(rules[j])),
				Related: rules[j].Name, RelatedLine: rules[j].Line,
			})
			continue
		}
		first[r.Name] = i
	}
}

// checkCoverage flags taxonomy categories no rule classifies.
func checkCoverage(rules []taxonomy.LocatedRule, add func(Finding)) {
	covered := make(map[taxonomy.Category]bool, len(rules))
	for _, r := range rules {
		covered[r.Category] = true
	}
	for _, c := range taxonomy.Categories() {
		if !covered[c] {
			add(Finding{
				Check: "coverage-gap", Severity: Warn,
				Index: -1,
				Message: fmt.Sprintf("no rule classifies category %s; messages of this class fall through to UNCLASSIFIED and are invisible to attribution",
					c),
			})
		}
	}
}

// fatalCategories are categories whose real-world events terminate
// applications or nodes essentially always; grading them below ERROR hides
// them from the failure-attribution join.
var fatalCategories = map[taxonomy.Category]bool{
	taxonomy.HardwareMemoryUE: true,
	taxonomy.GPUMemoryDBE:     true,
	taxonomy.GPUBusOff:        true,
	taxonomy.FilesystemLBUG:   true,
	taxonomy.NodeHeartbeat:    true,
	taxonomy.KernelPanic:      true,
}

// checkSeverities flags category/severity gradings that corrupt
// attribution in either direction.
func checkSeverities(rules []taxonomy.LocatedRule, add func(Finding)) {
	for i, r := range rules {
		switch {
		case r.Category.Benign() && r.Severity >= taxonomy.SevError:
			add(Finding{
				Check: "severity-mismatch", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: fmt.Sprintf("%s is a benign/informational category but the rule grades it %s; benign events would count as application-killing evidence",
					r.Category, r.Severity),
			})
		case fatalCategories[r.Category] && r.Severity <= taxonomy.SevWarning:
			add(Finding{
				Check: "severity-mismatch", Severity: Warn,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: fmt.Sprintf("%s events terminate applications but the rule grades them %s; they would be excluded from failure attribution",
					r.Category, r.Severity),
			})
		}
	}
}

func describePos(r taxonomy.LocatedRule) string {
	if r.Line > 0 {
		return fmt.Sprintf("line %d", r.Line)
	}
	return fmt.Sprintf("rule %q", r.Name)
}

// NewValidatedClassifier lints the rule set and builds a classifier from
// it. Rule sets with error-severity findings are rejected; the returned
// findings (including warnings on success) let callers surface the full
// diagnosis either way.
func NewValidatedClassifier(rules []taxonomy.LocatedRule, opts Options) (*taxonomy.Classifier, []Finding, error) {
	fs := Check(rules, opts)
	var nerr int
	var first string
	for _, f := range fs {
		if f.Severity == Error {
			if nerr == 0 {
				first = f.String()
			}
			nerr++
		}
	}
	if nerr > 0 {
		return nil, fs, fmt.Errorf("rulecheck: rule set rejected with %d error finding(s); first: %s", nerr, first)
	}
	return taxonomy.NewClassifier(taxonomy.Rules(rules)), fs, nil
}
