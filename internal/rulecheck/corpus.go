package rulecheck

import (
	"math/rand"

	"logdiver/internal/errlog"
	"logdiver/internal/taxonomy"
)

// Sample is one reference message with the category that produced it.
type Sample struct {
	Message  string
	Category taxonomy.Category
}

// DefaultCorpus renders the internal/errlog message templates — the same
// Cray-style shapes the synthesizer emits and the study's tables are
// attributed from — into a deterministic reference corpus, perCategory
// variants per taxonomy category. The differential-firing checks run every
// rule set against this corpus: the built-in rules must classify all of it,
// and site rule files are warned when an earlier rule steals all of a later
// rule's matches on these known shapes.
func DefaultCorpus(perCategory int) []Sample {
	if perCategory <= 0 {
		perCategory = corpusPerCategory
	}
	// Deterministic by construction: fixed seed, fixed component names,
	// categories in declaration order.
	rng := rand.New(rand.NewSource(1))
	cnames := []string{"c0-0c0s0n0", "c11-7c1s5n3", "c23-15c2s7n1"}
	var out []Sample
	for _, cat := range taxonomy.Categories() {
		for i := 0; i < perCategory; i++ {
			msg := errlog.Render(cat, cnames[i%len(cnames)], rng)
			out = append(out, Sample{Message: msg, Category: cat})
		}
	}
	return out
}
