package rulecheck

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"regexp/syntax"
	"strings"
	"unicode"

	"logdiver/internal/taxonomy"
)

// Prefilter soundness: the classifier extracts a literal prefilter from
// each rule's regexp syntax tree (internal/taxonomy) and skips the regexp
// whenever the filter rejects a message — and for tier-1 ordered chains a
// filter HIT classifies the message outright, with no regexp call at all.
// Both shortcuts rest on invariants a future rule or extractor edit can
// silently break:
//
//   - necessity: every string the regexp accepts must pass the filter
//     (otherwise the classifier drops messages the rule should match);
//   - ordered sufficiency: every newline-free string an ordered filter
//     accepts must match the regexp (otherwise tier-1 misclassifies).
//
// VerifyPrefilter proves both directions differentially: witnesses
// synthesized from the rule's own syntax tree plus a seeded randomized
// mutation corpus for necessity, and chain-derived probes for ordered
// sufficiency. checkPrefilters runs it over a whole rule set as the
// "prefilter-unsound" lint check, so `logdiver lint-rules` and the CI lint
// job catch a desynchronized filter before it ships.

// prefilterFillers separate chain literals in ordered-sufficiency probes.
// All are newline-free: the tier-1 exactness claim only covers newline-free
// messages (ClassifyBytes demotes chain hits to prefilters otherwise).
var prefilterFillers = []string{"", " ", "x", " 0xdeadbeef ", "\t..zz9 "}

// checkPrefilters verifies each rule's extracted prefilter against its
// regexp and reports rules where the two have desynchronized.
func checkPrefilters(rules []taxonomy.LocatedRule, maxWitnesses int, add func(Finding)) {
	for i, r := range rules {
		pf := taxonomy.ExtractPrefilter(r.Pattern.String())
		if pf == nil {
			continue // no filter: the regexp always runs, nothing to verify
		}
		if msg := VerifyPrefilter(r.Pattern, pf, maxWitnesses); msg != "" {
			add(Finding{
				Check: "prefilter-unsound", Severity: Error,
				Rule: r.Name, Index: i, Line: r.Line,
				Message: msg + "; the classifier would silently misroute messages for this rule",
			})
		}
	}
}

// VerifyPrefilter cross-checks a literal prefilter against the compiled
// pattern it claims to filter for. It returns "" when no violation is
// found, or a description of the first violation. The check is
// differential, not a proof: candidates are synthesized from the pattern's
// own syntax tree and mutated with a deterministic seeded RNG, so a run is
// reproducible and a desynchronized filter is found with high probability.
func VerifyPrefilter(re *regexp.Regexp, pf *taxonomy.Prefilter, maxWitnesses int) string {
	if maxWitnesses <= 0 {
		maxWitnesses = 8
	}
	rng := rand.New(rand.NewSource(prefilterSeed(re.String())))

	// Necessity: regexp match => filter pass. Witnesses are verified
	// matches by construction; mutations keep only candidates the regexp
	// still accepts.
	var wits []string
	if tree, err := syntax.Parse(re.String(), syntax.Perl); err == nil {
		wits = witnesses(re, tree.Simplify(), maxWitnesses)
	}
	for _, w := range wits {
		for _, c := range mutateWitness(w, rng) {
			if !re.MatchString(c) {
				continue
			}
			if !pf.Match([]byte(c)) {
				return fmt.Sprintf("prefilter is not necessary: the pattern matches %q but the extracted filter rejects it", c)
			}
		}
	}

	// Ordered sufficiency: filter pass => regexp match, on newline-free
	// probes assembled from the filter's own chains.
	if !pf.Ordered() {
		return ""
	}
	for _, chain := range pf.Branches() {
		for _, f := range prefilterFillers {
			for _, probe := range orderedProbes(chain, f, rng) {
				if pf.Match([]byte(probe)) && !re.MatchString(probe) {
					return fmt.Sprintf("ordered prefilter is not exact: the filter accepts %q but the pattern rejects it", probe)
				}
			}
		}
	}
	return ""
}

// mutateWitness derives necessity candidates from one verified witness:
// the witness itself, padded, case-flipped, and with the two non-ASCII
// runes that case-fold onto ASCII spliced in. Candidates the regexp no
// longer matches are filtered out by the caller.
func mutateWitness(w string, rng *rand.Rand) []string {
	out := []string{
		w,
		"jan 01 00:00:00 " + w,
		w + " on node c0-0c0s0n0",
		"... " + w + " ...",
		strings.ToUpper(w),
	}
	// Random case flips, reproducible via the caller's seeded RNG.
	if len(w) > 0 {
		b := []rune(w)
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = unicode.ToUpper(b[i])
			}
		}
		out = append(out, string(b))
	}
	// U+212A KELVIN SIGN folds with 'k', U+017F LONG S with 's': the
	// filter folds them to ASCII, and a case-insensitive pattern matches
	// them, so they probe the folding path specifically.
	if i := strings.IndexByte(w, 'k'); i >= 0 {
		out = append(out, w[:i]+"K"+w[i+1:])
	}
	if i := strings.IndexByte(w, 's'); i >= 0 {
		out = append(out, w[:i]+"ſ"+w[i+1:])
	}
	return out
}

// orderedProbes assembles newline-free strings that pass one ordered chain
// by construction: its literals joined by the filler, plus uppercase and
// randomly padded variants.
func orderedProbes(chain []string, filler string, rng *rand.Rand) []string {
	joined := strings.Join(chain, filler)
	probes := []string{
		joined,
		strings.ToUpper(joined),
		prefilterPad(rng) + joined + prefilterPad(rng),
	}
	return probes
}

// prefilterPad returns a short random newline-free pad.
func prefilterPad(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 ._-"
	n := rng.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// prefilterSeed derives a stable RNG seed from the pattern text, so
// verification is deterministic per rule but varies across rules.
func prefilterSeed(pattern string) int64 {
	h := fnv.New64a()
	h.Write([]byte(pattern))
	return int64(h.Sum64())
}
