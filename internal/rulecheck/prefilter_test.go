package rulecheck

import (
	"regexp"
	"strings"
	"testing"

	"logdiver/internal/taxonomy"
)

// TestPrefilterShippedRulesSound proves the prefilters extracted from the
// built-in rule set are sound against their own regexps: Check emits no
// prefilter-unsound finding.
func TestPrefilterShippedRulesSound(t *testing.T) {
	rules := taxonomy.Locate(taxonomy.Default().Rules())
	fs := Check(rules, Options{NoCorpus: true})
	for _, f := range fs {
		if f.Check == "prefilter-unsound" {
			t.Errorf("shipped rule %q: %s", f.Rule, f.Message)
		}
	}
}

// TestPrefilterVerifyShipped exercises VerifyPrefilter directly on every
// shipped rule that has an extractable filter, so a regression is pinned
// to the rule rather than discovered through Check's aggregate output.
func TestPrefilterVerifyShipped(t *testing.T) {
	var verified int
	for _, r := range taxonomy.Default().Rules() {
		pf := taxonomy.ExtractPrefilter(r.Pattern.String())
		if pf == nil {
			continue
		}
		verified++
		if msg := VerifyPrefilter(r.Pattern, pf, 8); msg != "" {
			t.Errorf("rule %q: %s", r.Name, msg)
		}
	}
	if verified == 0 {
		t.Fatal("no shipped rule produced an extractable prefilter; the verifier is vacuous")
	}
	t.Logf("verified %d shipped prefilters", verified)
}

// TestPrefilterDetectsMissingLiteral desynchronizes a filter by requiring a
// literal the pattern does not: necessity must fail.
func TestPrefilterDetectsMissingLiteral(t *testing.T) {
	re := regexp.MustCompile(`machine check exception`)
	pf := taxonomy.NewPrefilter([][]string{{"machine", "wrongliteral"}}, true)
	msg := VerifyPrefilter(re, pf, 8)
	if msg == "" {
		t.Fatal("verifier accepted a filter that rejects every real match")
	}
	if !strings.Contains(msg, "not necessary") {
		t.Errorf("expected a necessity violation, got: %s", msg)
	}
}

// TestPrefilterDetectsWeakOrderedChain desynchronizes in the other
// direction: an ordered (tier-1, regexp-skipping) chain that accepts
// strings the pattern rejects must fail the exactness check.
func TestPrefilterDetectsWeakOrderedChain(t *testing.T) {
	re := regexp.MustCompile(`machine check exception`)
	// The chain only demands "machine": "machine" alone passes the filter
	// but does not match the pattern, so a tier-1 hit would misclassify.
	pf := taxonomy.NewPrefilter([][]string{{"machine"}}, true)
	msg := VerifyPrefilter(re, pf, 8)
	if msg == "" {
		t.Fatal("verifier accepted an over-broad ordered chain")
	}
	if !strings.Contains(msg, "not exact") {
		t.Errorf("expected an ordered-exactness violation, got: %s", msg)
	}
}

// TestPrefilterDetectsCaseFoldGap probes the folding invariant: a
// case-insensitive pattern with a filter that (incorrectly) kept an
// uppercase literal fails necessity on a lowercase witness.
func TestPrefilterDetectsCaseFoldGap(t *testing.T) {
	re := regexp.MustCompile(`(?i)lustre error`)
	// Extraction folds literals to lowercase; this hand-built filter kept
	// the uppercase form, so the folded message scan can never hit it.
	pf := taxonomy.NewPrefilter([][]string{{"LUSTRE ERROR"}}, true)
	msg := VerifyPrefilter(re, pf, 8)
	if msg == "" {
		t.Fatal("verifier accepted an unfolded literal in the filter")
	}
}

// TestPrefilterUnorderedSkipsSufficiency confirms tier-2 (unordered DNF)
// filters are only held to necessity: an over-broad unordered filter is
// legal because the regexp still runs after a filter hit.
func TestPrefilterUnorderedSkipsSufficiency(t *testing.T) {
	re := regexp.MustCompile(`machine check exception`)
	pf := taxonomy.NewPrefilter([][]string{{"machine"}}, false)
	if msg := VerifyPrefilter(re, pf, 8); msg != "" {
		t.Errorf("unordered over-broad filter should be accepted (regexp confirms), got: %s", msg)
	}
}

// TestCheckPrefiltersFinding runs the check through the Check entry point
// on a rule whose extraction is sound, confirming the wiring emits nothing,
// then confirms checkPrefilters flags a desynchronized filter when driven
// directly (Check always re-extracts, so injection goes through the helper).
func TestCheckPrefiltersFinding(t *testing.T) {
	re := regexp.MustCompile(`node unavailable`)
	rules := []taxonomy.LocatedRule{{
		Rule: taxonomy.Rule{
			Name:     "node_unavail",
			Pattern:  re,
			Category: taxonomy.NodeHeartbeat,
			Severity: taxonomy.SevError,
		},
		Line: 3,
	}}
	var fs []Finding
	checkPrefilters(rules, 8, func(f Finding) { fs = append(fs, f) })
	if len(fs) != 0 {
		t.Fatalf("sound rule produced findings: %+v", fs)
	}

	// A pattern crafted so extraction yields a filter, verified against a
	// DIFFERENT pattern, models post-extraction desynchronization.
	stale := taxonomy.ExtractPrefilter(`filesystem unmounted`)
	if stale == nil {
		t.Fatal("expected an extractable filter for the stale pattern")
	}
	if msg := VerifyPrefilter(re, stale, 8); msg == "" {
		t.Fatal("stale filter from an unrelated pattern passed verification")
	}
}
