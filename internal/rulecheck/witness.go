package rulecheck

import (
	"regexp"
	"regexp/syntax"
	"strings"
)

// witnesses synthesizes up to max distinct strings that the compiled
// pattern verifiably matches, by walking its syntax tree and picking
// concrete choices: one branch per alternation, the first rune of a
// character class, zero/one repetitions for quantifiers. Every candidate is
// verified against the real pattern before being returned, so anchors and
// case folding cannot produce false witnesses — an unverifiable candidate
// is simply dropped.
func witnesses(re *regexp.Regexp, tree *syntax.Regexp, max int) []string {
	if tree == nil || max <= 0 {
		return nil
	}
	cands := enumerate(tree, 4*max)
	seen := make(map[string]bool, len(cands))
	var out []string
	for _, c := range cands {
		if seen[c] {
			continue
		}
		seen[c] = true
		if re.MatchString(c) {
			out = append(out, c)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// enumerate returns candidate strings for the subtree, capped at limit.
func enumerate(t *syntax.Regexp, limit int) []string {
	if limit <= 0 {
		limit = 1
	}
	cap2 := func(ss []string) []string {
		if len(ss) > limit {
			return ss[:limit]
		}
		return ss
	}
	switch t.Op {
	case syntax.OpNoMatch:
		return nil
	case syntax.OpEmptyMatch, syntax.OpBeginLine, syntax.OpEndLine,
		syntax.OpBeginText, syntax.OpEndText,
		syntax.OpWordBoundary, syntax.OpNoWordBoundary:
		return []string{""}
	case syntax.OpLiteral:
		return []string{string(t.Rune)}
	case syntax.OpCharClass:
		if len(t.Rune) == 0 {
			return nil
		}
		// Prefer a printable representative so diagnostics stay readable;
		// t.Rune is a sorted list of [lo,hi] pairs.
		for i := 0; i+1 < len(t.Rune); i += 2 {
			for r := t.Rune[i]; r <= t.Rune[i+1] && r <= t.Rune[i]+64; r++ {
				if r >= 0x20 && r < 0x7f {
					return []string{string(r)}
				}
			}
		}
		return []string{string(t.Rune[0])}
	case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
		return []string{"a"}
	case syntax.OpCapture:
		return enumerate(t.Sub[0], limit)
	case syntax.OpStar, syntax.OpQuest:
		subs := enumerate(t.Sub[0], limit-1)
		out := []string{""}
		for _, s := range subs {
			if s != "" {
				out = append(out, s)
			}
		}
		return cap2(out)
	case syntax.OpPlus:
		return cap2(enumerate(t.Sub[0], limit))
	case syntax.OpRepeat:
		subs := enumerate(t.Sub[0], limit)
		n := t.Min
		if n == 0 {
			out := []string{""}
			for _, s := range subs {
				if s != "" {
					out = append(out, s)
				}
			}
			return cap2(out)
		}
		out := make([]string, 0, len(subs))
		for _, s := range subs {
			out = append(out, strings.Repeat(s, n))
		}
		return cap2(out)
	case syntax.OpConcat:
		out := []string{""}
		for _, sub := range t.Sub {
			parts := enumerate(sub, limit)
			if len(parts) == 0 {
				return nil
			}
			next := make([]string, 0, len(out))
			for _, pre := range out {
				for _, p := range parts {
					next = append(next, pre+p)
					if len(next) >= limit {
						break
					}
				}
				if len(next) >= limit {
					break
				}
			}
			out = next
		}
		return out
	case syntax.OpAlternate:
		var out []string
		for _, sub := range t.Sub {
			out = append(out, enumerate(sub, limit-len(out))...)
			if len(out) >= limit {
				break
			}
		}
		return cap2(out)
	default:
		return nil
	}
}
