package version

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.GoVersion != runtime.Version() {
		t.Errorf("GoVersion %q, want %q", i.GoVersion, runtime.Version())
	}
	// Test binaries embed build info on go1.18+, so the module is known.
	if i.Module != "logdiver" {
		t.Errorf("Module %q, want logdiver", i.Module)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Info
		want string
	}{
		{Info{GoVersion: "go1.24.0"}, "logdiver (devel) (go1.24.0)"},
		{
			Info{Module: "logdiver", Version: "v1.2.3", GoVersion: "go1.24.0"},
			"logdiver v1.2.3 (go1.24.0)",
		},
		{
			Info{Module: "logdiver", Version: "(devel)",
				Revision: "0123456789abcdef", Modified: true, GoVersion: "go1.24.0"},
			"logdiver (devel) 0123456789ab+dirty (go1.24.0)",
		},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestJSONShape(t *testing.T) {
	buf, err := json.Marshal(Info{Module: "logdiver", Version: "(devel)", GoVersion: "go1.24.0"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(buf)
	for _, key := range []string{`"module"`, `"version"`, `"go_version"`} {
		if !strings.Contains(s, key) {
			t.Errorf("JSON missing %s: %s", key, s)
		}
	}
	// Empty VCS fields stay out of the payload.
	if strings.Contains(s, "revision") || strings.Contains(s, "modified") {
		t.Errorf("JSON carries empty VCS fields: %s", s)
	}
}
