// Package version reports build provenance for the logdiver binaries: the
// module version and, when the binary was built from a version-controlled
// checkout, the VCS revision and dirty bit. Everything comes from
// runtime/debug.ReadBuildInfo, so no linker flags are required; binaries
// built with plain `go build` are fully stamped.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build provenance of the running binary.
type Info struct {
	// Module is the main module path ("logdiver").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for a source build).
	Version string `json:"version"`
	// Revision is the VCS commit hash, empty when built outside a checkout.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC3339), empty when unknown.
	Time string `json:"time,omitempty"`
	// Modified reports uncommitted changes in the build checkout.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the running binary's build info. It never fails: binaries
// without embedded build info (e.g. test binaries of older toolchains)
// yield an Info with only GoVersion populated.
func Get() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the info on one line, the -version flag output.
func (i Info) String() string {
	s := i.Module
	if s == "" {
		s = "logdiver"
	}
	v := i.Version
	if v == "" {
		v = "(devel)"
	}
	s += " " + v
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "+dirty"
		}
		s += " " + rev
	}
	return fmt.Sprintf("%s (%s)", s, i.GoVersion)
}
