package interval

import (
	"math/rand"
	"testing"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

func benchIndex(nEvents int) (*Index, []machine.NodeID, time.Time) {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	events := make([]errlog.Event, nEvents)
	for i := range events {
		node := machine.NodeID(rng.Intn(27648))
		if rng.Intn(50) == 0 {
			node = errlog.SystemWide
		}
		events[i] = errlog.Event{
			Time:     start.Add(time.Duration(rng.Intn(100*86400)) * time.Second),
			Node:     node,
			Category: taxonomy.NodeHeartbeat,
			Severity: taxonomy.SevCritical,
		}
	}
	placement := make([]machine.NodeID, 256)
	for i := range placement {
		placement[i] = machine.NodeID(rng.Intn(27648))
	}
	return NewIndex(events), placement, start
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	events := make([]errlog.Event, 100000)
	for i := range events {
		events[i] = errlog.Event{
			Time: start.Add(time.Duration(rng.Intn(100*86400)) * time.Second),
			Node: machine.NodeID(rng.Intn(27648)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix := NewIndex(events); ix.Len() != len(events) {
			b.Fatal("bad index")
		}
	}
}

func BenchmarkFirstInWindow(b *testing.B) {
	ix, placement, start := benchIndex(100000)
	keep := func(e errlog.Event) bool { return e.Severity >= taxonomy.SevError }
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		from := start.Add(time.Duration(i%86400) * time.Second)
		if _, ok := ix.FirstInWindow(placement, from, from.Add(10*time.Minute), keep); ok {
			hits++
		}
	}
	_ = hits
}

func BenchmarkWindow(b *testing.B) {
	ix, placement, start := benchIndex(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := start.Add(time.Duration(i%86400) * time.Second)
		_ = ix.Window(placement, from, from.Add(time.Hour))
	}
}

func BenchmarkFirstAnywhere(b *testing.B) {
	ix, _, start := benchIndex(100000)
	keep := func(e errlog.Event) bool { return e.Severity >= taxonomy.SevError }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := start.Add(time.Duration(i%86400) * time.Second)
		ix.FirstAnywhere(from, from.Add(10*time.Minute), keep)
	}
}
