// Package interval provides the node-time index at the heart of the
// error-to-application join: given the full stream of classified error
// events, it answers "which events occurred on any of these nodes (or
// machine-wide) during this time window" in logarithmic time per node.
// This is what makes attributing errors to five million application runs
// tractable.
package interval

import (
	"sort"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
)

// Index holds classified events organized per node and sorted by time.
// Per-node lists live in a dense array indexed by NodeID: the attribution
// join probes millions of (node, window) pairs and a map would dominate
// its cost.
type Index struct {
	perNode   [][]errlog.Event
	nodeCount int
	system    []errlog.Event
	all       []errlog.Event
	total     int
}

// NewIndex builds an index over events. The input slice is not retained;
// events are grouped by node and each group is sorted by time.
func NewIndex(events []errlog.Event) *Index {
	ix := &Index{all: make([]errlog.Event, len(events))}
	copy(ix.all, events)
	var maxNode machine.NodeID = -1
	for _, e := range events {
		if !e.IsSystemWide() && e.Node > maxNode {
			maxNode = e.Node
		}
	}
	ix.perNode = make([][]errlog.Event, maxNode+1)
	for _, e := range events {
		if e.IsSystemWide() {
			ix.system = append(ix.system, e)
		} else {
			if len(ix.perNode[e.Node]) == 0 {
				ix.nodeCount++
			}
			ix.perNode[e.Node] = append(ix.perNode[e.Node], e)
		}
		ix.total++
	}
	byTime := func(evs []errlog.Event) {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	}
	byTime(ix.all)
	byTime(ix.system)
	for _, evs := range ix.perNode {
		byTime(evs)
	}
	return ix
}

// nodeEvents returns the sorted event list for a node (nil when the node
// has none or is out of range).
func (ix *Index) nodeEvents(n machine.NodeID) []errlog.Event {
	if n < 0 || int(n) >= len(ix.perNode) {
		return nil
	}
	return ix.perNode[n]
}

// Len returns the total number of indexed events.
func (ix *Index) Len() int { return ix.total }

// SystemLen returns the number of system-wide events.
func (ix *Index) SystemLen() int { return len(ix.system) }

// Nodes returns the number of distinct nodes with at least one event.
func (ix *Index) Nodes() int { return ix.nodeCount }

// sliceWindow returns the subslice of evs with Time in [from, to].
// evs must be sorted by time.
func sliceWindow(evs []errlog.Event, from, to time.Time) []errlog.Event {
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(from) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(to) })
	if lo >= hi {
		return nil
	}
	return evs[lo:hi]
}

// NodeWindow returns the events on node with Time in [from, to], in time
// order. The returned slice aliases the index and must not be modified.
func (ix *Index) NodeWindow(node machine.NodeID, from, to time.Time) []errlog.Event {
	return sliceWindow(ix.nodeEvents(node), from, to)
}

// SystemWindow returns the system-wide events with Time in [from, to].
// The returned slice aliases the index and must not be modified.
func (ix *Index) SystemWindow(from, to time.Time) []errlog.Event {
	return sliceWindow(ix.system, from, to)
}

// Window collects all events relevant to an application run placed on the
// given nodes during [from, to]: per-node events on those nodes plus
// system-wide events. Results are returned in time order. The returned
// slice is freshly allocated.
func (ix *Index) Window(nodes []machine.NodeID, from, to time.Time) []errlog.Event {
	var out []errlog.Event
	for _, n := range nodes {
		if evs := sliceWindow(ix.nodeEvents(n), from, to); len(evs) > 0 {
			out = append(out, evs...)
		}
	}
	if evs := sliceWindow(ix.system, from, to); len(evs) > 0 {
		out = append(out, evs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// AnyInWindow reports whether any event matching keep occurs on the given
// nodes (or system-wide) during [from, to]. It short-circuits on the first
// match, making it much cheaper than Window for yes/no attribution checks.
func (ix *Index) AnyInWindow(nodes []machine.NodeID, from, to time.Time, keep func(errlog.Event) bool) (errlog.Event, bool) {
	for _, n := range nodes {
		for _, e := range sliceWindow(ix.nodeEvents(n), from, to) {
			if keep(e) {
				return e, true
			}
		}
	}
	for _, e := range sliceWindow(ix.system, from, to) {
		if keep(e) {
			return e, true
		}
	}
	return errlog.Event{}, false
}

// FirstAnywhere returns the earliest event matching keep anywhere on the
// machine during [from, to], ignoring placement. This serves the
// temporal-only attribution baseline.
func (ix *Index) FirstAnywhere(from, to time.Time, keep func(errlog.Event) bool) (errlog.Event, bool) {
	for _, e := range sliceWindow(ix.all, from, to) {
		if keep(e) {
			return e, true
		}
	}
	return errlog.Event{}, false
}

// FirstInWindow returns the earliest event matching keep on the given nodes
// or system-wide during [from, to].
func (ix *Index) FirstInWindow(nodes []machine.NodeID, from, to time.Time, keep func(errlog.Event) bool) (errlog.Event, bool) {
	var best errlog.Event
	var found bool
	consider := func(evs []errlog.Event) {
		for _, e := range evs {
			if !keep(e) {
				continue
			}
			if !found || e.Time.Before(best.Time) {
				best = e
				found = true
			}
			break // evs is time-sorted: first match is earliest in this group
		}
	}
	for _, n := range nodes {
		consider(sliceWindow(ix.nodeEvents(n), from, to))
	}
	consider(sliceWindow(ix.system, from, to))
	return best, found
}
