package interval

import (
	"math/rand"
	"testing"
	"time"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

var base = time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)

func ev(node int, offset time.Duration, cat taxonomy.Category) errlog.Event {
	return errlog.Event{
		Time:     base.Add(offset),
		Node:     machine.NodeID(node),
		Category: cat,
		Severity: taxonomy.SevCritical,
	}
}

func sysEv(offset time.Duration, cat taxonomy.Category) errlog.Event {
	e := ev(0, offset, cat)
	e.Node = errlog.SystemWide
	return e
}

func TestIndexCounts(t *testing.T) {
	events := []errlog.Event{
		ev(1, time.Minute, taxonomy.HardwareMemoryUE),
		ev(1, 2*time.Minute, taxonomy.HardwareMemoryCE),
		ev(2, time.Hour, taxonomy.NodeHeartbeat),
		sysEv(30*time.Minute, taxonomy.FilesystemLBUG),
	}
	ix := NewIndex(events)
	if ix.Len() != 4 {
		t.Errorf("Len = %d, want 4", ix.Len())
	}
	if ix.SystemLen() != 1 {
		t.Errorf("SystemLen = %d, want 1", ix.SystemLen())
	}
	if ix.Nodes() != 2 {
		t.Errorf("Nodes = %d, want 2", ix.Nodes())
	}
}

func TestNodeWindowBoundsInclusive(t *testing.T) {
	events := []errlog.Event{
		ev(5, 10*time.Minute, taxonomy.NodeHeartbeat),
		ev(5, 20*time.Minute, taxonomy.NodeHeartbeat),
		ev(5, 30*time.Minute, taxonomy.NodeHeartbeat),
	}
	ix := NewIndex(events)
	got := ix.NodeWindow(5, base.Add(10*time.Minute), base.Add(30*time.Minute))
	if len(got) != 3 {
		t.Errorf("inclusive window returned %d events, want 3", len(got))
	}
	got = ix.NodeWindow(5, base.Add(11*time.Minute), base.Add(29*time.Minute))
	if len(got) != 1 {
		t.Errorf("interior window returned %d events, want 1", len(got))
	}
	got = ix.NodeWindow(5, base.Add(31*time.Minute), base.Add(time.Hour))
	if len(got) != 0 {
		t.Errorf("empty window returned %d events", len(got))
	}
	if got := ix.NodeWindow(99, base, base.Add(time.Hour)); len(got) != 0 {
		t.Errorf("unknown node returned %d events", len(got))
	}
}

func TestWindowMergesNodeAndSystem(t *testing.T) {
	events := []errlog.Event{
		ev(1, 10*time.Minute, taxonomy.HardwareMemoryUE),
		ev(2, 20*time.Minute, taxonomy.NodeHeartbeat),
		ev(3, 15*time.Minute, taxonomy.GPUMemoryDBE), // not in node set
		sysEv(5*time.Minute, taxonomy.InterconnectRouting),
		sysEv(2*time.Hour, taxonomy.FilesystemLBUG), // out of window
	}
	ix := NewIndex(events)
	got := ix.Window([]machine.NodeID{1, 2}, base, base.Add(time.Hour))
	if len(got) != 3 {
		t.Fatalf("Window returned %d events, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Error("Window result not time-ordered")
		}
	}
	if got[0].Category != taxonomy.InterconnectRouting {
		t.Errorf("first event %v, want system-wide routing event", got[0].Category)
	}
}

func TestAnyInWindowShortCircuit(t *testing.T) {
	events := []errlog.Event{
		ev(1, 10*time.Minute, taxonomy.HardwareMemoryCE),
		ev(1, 20*time.Minute, taxonomy.HardwareMemoryUE),
	}
	ix := NewIndex(events)
	onlyCritical := func(e errlog.Event) bool { return e.Severity >= taxonomy.SevCritical && !e.Category.Benign() }
	got, ok := ix.AnyInWindow([]machine.NodeID{1}, base, base.Add(time.Hour), onlyCritical)
	if !ok {
		t.Fatal("AnyInWindow found nothing")
	}
	if got.Category != taxonomy.HardwareMemoryUE {
		t.Errorf("got %v, want HardwareMemoryUE", got.Category)
	}
	_, ok = ix.AnyInWindow([]machine.NodeID{2}, base, base.Add(time.Hour), onlyCritical)
	if ok {
		t.Error("AnyInWindow matched on wrong node")
	}
}

func TestAnyInWindowSystemWide(t *testing.T) {
	ix := NewIndex([]errlog.Event{sysEv(time.Minute, taxonomy.FilesystemLBUG)})
	_, ok := ix.AnyInWindow(nil, base, base.Add(time.Hour), func(errlog.Event) bool { return true })
	if !ok {
		t.Error("system-wide event not visible with empty node set")
	}
}

func TestFirstInWindowPicksEarliest(t *testing.T) {
	events := []errlog.Event{
		ev(1, 40*time.Minute, taxonomy.HardwareMemoryUE),
		ev(2, 10*time.Minute, taxonomy.NodeHeartbeat),
		sysEv(25*time.Minute, taxonomy.FilesystemLBUG),
	}
	ix := NewIndex(events)
	got, ok := ix.FirstInWindow([]machine.NodeID{1, 2}, base, base.Add(time.Hour),
		func(errlog.Event) bool { return true })
	if !ok {
		t.Fatal("found nothing")
	}
	if got.Category != taxonomy.NodeHeartbeat {
		t.Errorf("earliest = %v, want NodeHeartbeat", got.Category)
	}
	// With a filter that excludes the heartbeat, the system event wins.
	got, ok = ix.FirstInWindow([]machine.NodeID{1, 2}, base, base.Add(time.Hour),
		func(e errlog.Event) bool { return e.Category != taxonomy.NodeHeartbeat })
	if !ok || got.Category != taxonomy.FilesystemLBUG {
		t.Errorf("filtered earliest = %v ok=%v, want FilesystemLBUG", got.Category, ok)
	}
}

func TestFirstInWindowEmpty(t *testing.T) {
	ix := NewIndex(nil)
	if _, ok := ix.FirstInWindow([]machine.NodeID{1}, base, base.Add(time.Hour),
		func(errlog.Event) bool { return true }); ok {
		t.Error("empty index returned an event")
	}
}

// TestWindowAgainstBruteForce cross-checks the index against a straight
// linear scan on randomized inputs.
func TestWindowAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nEvents = 3000
	events := make([]errlog.Event, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		node := rng.Intn(40)
		e := ev(node, time.Duration(rng.Intn(100000))*time.Second, taxonomy.NodeHeartbeat)
		if rng.Intn(20) == 0 {
			e.Node = errlog.SystemWide
		}
		events = append(events, e)
	}
	ix := NewIndex(events)

	for trial := 0; trial < 50; trial++ {
		nodeSet := map[machine.NodeID]bool{}
		var nodes []machine.NodeID
		for len(nodes) < 5 {
			n := machine.NodeID(rng.Intn(40))
			if !nodeSet[n] {
				nodeSet[n] = true
				nodes = append(nodes, n)
			}
		}
		from := base.Add(time.Duration(rng.Intn(50000)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(50000)) * time.Second)

		var want int
		for _, e := range events {
			in := !e.Time.Before(from) && !e.Time.After(to)
			if in && (e.Node == errlog.SystemWide || nodeSet[e.Node]) {
				want++
			}
		}
		got := ix.Window(nodes, from, to)
		if len(got) != want {
			t.Fatalf("trial %d: Window returned %d events, brute force %d", trial, len(got), want)
		}
	}
}
