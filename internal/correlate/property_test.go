package correlate

// Property-based tests: attribution invariants that must hold for any
// random mix of runs and events.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

// randomScenario builds a random event set and run set on the small
// topology.
func randomScenario(seed int64) ([]errlog.Event, []alps.AppRun) {
	rng := rand.New(rand.NewSource(seed))
	cats := taxonomy.Categories()
	nEvents := rng.Intn(200)
	events := make([]errlog.Event, nEvents)
	for i := range events {
		node := machine.NodeID(rng.Intn(200))
		if rng.Intn(10) == 0 {
			node = errlog.SystemWide
		}
		events[i] = errlog.Event{
			Time:     base.Add(time.Duration(rng.Intn(7*86400)) * time.Second),
			Node:     node,
			Category: cats[rng.Intn(len(cats))],
			Severity: taxonomy.Severity(1 + rng.Intn(4)),
		}
	}
	nRuns := 1 + rng.Intn(100)
	runs := make([]alps.AppRun, nRuns)
	for i := range runs {
		n := 1 + rng.Intn(32)
		nodes := make([]machine.NodeID, n)
		for j := range nodes {
			nodes[j] = machine.NodeID(rng.Intn(200))
		}
		start := base.Add(time.Duration(rng.Intn(6*86400)) * time.Second)
		var exit, sig int
		switch rng.Intn(3) {
		case 1:
			exit = 1 + rng.Intn(255)
		case 2:
			sig = 1 + rng.Intn(31)
		}
		runs[i] = alps.AppRun{
			ApID:     uint64(i + 1),
			Nodes:    nodes,
			Start:    start,
			End:      start.Add(time.Duration(1+rng.Intn(86400)) * time.Second),
			ExitCode: exit,
			Signal:   sig,
		}
	}
	return events, runs
}

func TestAttributionInvariantsProperty(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		events, runs := randomScenario(seed)
		c, err := New(interval.NewIndex(events), top, DefaultConfig())
		if err != nil {
			return false
		}
		attr := c.AttributeAll(runs)
		if len(attr) != len(runs) {
			return false
		}
		for i, r := range attr {
			// Identity preserved.
			if r.ApID != runs[i].ApID {
				return false
			}
			// Clean exits are successes; dirty exits never are.
			if !runs[i].Failed() && r.Outcome != OutcomeSuccess {
				return false
			}
			if runs[i].Failed() && r.Outcome == OutcomeSuccess {
				return false
			}
			// Evidence appears exactly on system failures.
			if (r.Outcome == OutcomeSystemFailure) != r.HasEvidence {
				return false
			}
			if r.HasEvidence {
				// Evidence must be qualifying and inside the window.
				if !Qualifying(r.Evidence) {
					return false
				}
				from := r.End.Add(-DefaultConfig().EvidenceWindow)
				if from.Before(r.Start) {
					from = r.Start
				}
				to := r.End.Add(DefaultConfig().PostWindow)
				if r.Evidence.Time.Before(from) || r.Evidence.Time.After(to) {
					return false
				}
				// Node-scoped evidence must be on the placement.
				if !r.Evidence.IsSystemWide() {
					onPlacement := false
					for _, n := range r.Nodes {
						if n == r.Evidence.Node {
							onPlacement = true
							break
						}
					}
					if !onPlacement {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParallelMatchesSequentialProperty: AttributeAllParallel must agree
// with AttributeAll exactly for every worker count.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, workersSeed uint8) bool {
		events, runs := randomScenario(seed)
		c, err := New(interval.NewIndex(events), top, DefaultConfig())
		if err != nil {
			return false
		}
		workers := int(workersSeed%8) + 1
		seq := c.AttributeAll(runs)
		par := c.AttributeAllParallel(runs, workers)
		if len(seq) != len(par) {
			return false
		}
		for i := range seq {
			if seq[i].ApID != par[i].ApID || seq[i].Outcome != par[i].Outcome ||
				seq[i].Cause != par[i].Cause || seq[i].HasEvidence != par[i].HasEvidence {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTemporalOnlySupersetProperty: every run the node-time join attributes
// to the system is also attributed by the temporal-only baseline (the
// baseline relaxes the placement constraint, so its attribution set is a
// superset).
func TestTemporalOnlySupersetProperty(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		events, runs := randomScenario(seed)
		ix := interval.NewIndex(events)
		joined, err := New(ix, top, DefaultConfig())
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.TemporalOnly = true
		baseline, err := New(ix, top, cfg)
		if err != nil {
			return false
		}
		a := joined.AttributeAll(runs)
		b := baseline.AttributeAll(runs)
		for i := range a {
			if a[i].Outcome == OutcomeSystemFailure && b[i].Outcome != OutcomeSystemFailure {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWindowMonotonicityProperty: growing the evidence window never
// un-attributes a run.
func TestWindowMonotonicityProperty(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		events, runs := randomScenario(seed)
		ix := interval.NewIndex(events)
		narrow := DefaultConfig()
		narrow.EvidenceWindow = time.Minute
		wide := DefaultConfig()
		wide.EvidenceWindow = 4 * time.Hour
		cn, err := New(ix, top, narrow)
		if err != nil {
			return false
		}
		cw, err := New(ix, top, wide)
		if err != nil {
			return false
		}
		a := cn.AttributeAll(runs)
		b := cw.AttributeAll(runs)
		for i := range a {
			if a[i].Outcome == OutcomeSystemFailure && b[i].Outcome != OutcomeSystemFailure {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
