package correlate

import (
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

var base = time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)

func testTopology(t *testing.T) *machine.Topology {
	t.Helper()
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func run(nodes []machine.NodeID, start time.Time, dur time.Duration, exit, sig int) alps.AppRun {
	return alps.AppRun{
		ApID:     1,
		JobID:    "1.bw",
		User:     "u",
		Cmd:      "app",
		Width:    len(nodes) * 16,
		Nodes:    nodes,
		Start:    start,
		End:      start.Add(dur),
		ExitCode: exit,
		Signal:   sig,
	}
}

func critEvent(node machine.NodeID, at time.Time, cat taxonomy.Category) errlog.Event {
	return errlog.Event{Time: at, Node: node, Category: cat, Severity: taxonomy.SevCritical}
}

func newCorrelator(t *testing.T, events []errlog.Event, cfg Config) *Correlator {
	t.Helper()
	c, err := New(interval.NewIndex(events), testTopology(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	top := testTopology(t)
	ix := interval.NewIndex(nil)
	if _, err := New(nil, top, DefaultConfig()); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := New(ix, nil, DefaultConfig()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(ix, top, Config{PostWindow: -time.Second}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestSuccessNeedsNoEvidence(t *testing.T) {
	// Even with a critical event on the node, a clean exit is a success:
	// outcome is driven by the exit record, evidence only explains failures.
	c := newCorrelator(t, []errlog.Event{
		critEvent(3, base.Add(time.Hour), taxonomy.HardwareMemoryUE),
	}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{3}, base, 2*time.Hour, 0, 0))
	if got.Outcome != OutcomeSuccess {
		t.Errorf("Outcome = %v, want SUCCESS", got.Outcome)
	}
	if got.HasEvidence {
		t.Error("success carries evidence")
	}
}

func TestSystemFailureOnNodeOverlap(t *testing.T) {
	at := base.Add(2*time.Hour - 5*time.Minute)
	c := newCorrelator(t, []errlog.Event{
		critEvent(3, at, taxonomy.HardwareMemoryUE),
	}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{2, 3, 4}, base, 2*time.Hour, 1, 0))
	if got.Outcome != OutcomeSystemFailure {
		t.Fatalf("Outcome = %v, want SYSTEM", got.Outcome)
	}
	if got.Cause != taxonomy.HardwareMemoryUE {
		t.Errorf("Cause = %v", got.Cause)
	}
	if !got.HasEvidence || !got.Evidence.Time.Equal(at) {
		t.Errorf("Evidence = %+v", got.Evidence)
	}
}

func TestMidRunEventIsNotEvidence(t *testing.T) {
	// An error an hour before the death time did not kill the run: the
	// end-anchored evidence window must exclude it.
	c := newCorrelator(t, []errlog.Event{
		critEvent(3, base.Add(time.Hour), taxonomy.HardwareMemoryUE),
	}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{3}, base, 2*time.Hour, 1, 0))
	if got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v, want USER (event outside evidence window)", got.Outcome)
	}
}

func TestShortRunSearchesWholeWindow(t *testing.T) {
	// A 2-minute run's window is its full execution span.
	c := newCorrelator(t, []errlog.Event{
		critEvent(3, base.Add(30*time.Second), taxonomy.SoftwareALPS),
	}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{3}, base, 2*time.Minute, 1, 0))
	if got.Outcome != OutcomeSystemFailure {
		t.Errorf("Outcome = %v, want SYSTEM", got.Outcome)
	}
}

func TestUserFailureWhenEventOnOtherNode(t *testing.T) {
	c := newCorrelator(t, []errlog.Event{
		critEvent(99, base.Add(time.Hour), taxonomy.HardwareMemoryUE),
	}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{2, 3}, base, 2*time.Hour, 1, 0))
	if got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v, want USER", got.Outcome)
	}
}

func TestTemporalOnlyBaselineOverattributes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TemporalOnly = true
	c := newCorrelator(t, []errlog.Event{
		critEvent(99, base.Add(2*time.Hour-5*time.Minute), taxonomy.HardwareMemoryUE),
	}, cfg)
	got := c.Attribute(run([]machine.NodeID{2, 3}, base, 2*time.Hour, 1, 0))
	if got.Outcome != OutcomeSystemFailure {
		t.Errorf("Outcome = %v, want SYSTEM under temporal-only baseline", got.Outcome)
	}
}

func TestSystemWideEventQualifies(t *testing.T) {
	sys := errlog.Event{
		Time: base.Add(55 * time.Minute), Node: errlog.SystemWide,
		Category: taxonomy.FilesystemLBUG, Severity: taxonomy.SevCritical,
	}
	c := newCorrelator(t, []errlog.Event{sys}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 9))
	if got.Outcome != OutcomeSystemFailure || got.Cause != taxonomy.FilesystemLBUG {
		t.Errorf("got %v/%v, want SYSTEM/FS_LBUG", got.Outcome, got.Cause)
	}
}

func TestQuiesceGatedBySize(t *testing.T) {
	sys := errlog.Event{
		Time: base.Add(55 * time.Minute), Node: errlog.SystemWide,
		Category: taxonomy.InterconnectRouting, Severity: taxonomy.SevError,
	}
	c := newCorrelator(t, []errlog.Event{sys}, DefaultConfig())
	// A small failed run must not be explained by a machine-wide quiesce.
	small := c.Attribute(run([]machine.NodeID{1, 2}, base, time.Hour, 0, 9))
	if small.Outcome != OutcomeUserFailure {
		t.Errorf("small run Outcome = %v, want USER (quiesce gated)", small.Outcome)
	}
	// A large run is vulnerable to quiesce.
	big := make([]machine.NodeID, DefaultConfig().QuiesceMinNodes)
	for i := range big {
		big[i] = machine.NodeID(i % 1500)
	}
	large := c.Attribute(run(big, base, time.Hour, 0, 9))
	if large.Outcome != OutcomeSystemFailure || large.Cause != taxonomy.InterconnectRouting {
		t.Errorf("large run got %v/%v, want SYSTEM/HSN_ROUTING", large.Outcome, large.Cause)
	}
}

func TestBenignEventsDoNotQualify(t *testing.T) {
	ce := errlog.Event{
		Time: base.Add(time.Minute), Node: 1,
		Category: taxonomy.HardwareMemoryCE, Severity: taxonomy.SevWarning,
	}
	c := newCorrelator(t, []errlog.Event{ce}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{1}, base, time.Hour, 1, 0))
	if got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v; corrected memory errors must not explain failures", got.Outcome)
	}
}

func TestPostWindowCatchesLateHeartbeat(t *testing.T) {
	// Node crash logged 90s after the application died.
	late := critEvent(1, base.Add(time.Hour+90*time.Second), taxonomy.NodeHeartbeat)
	c := newCorrelator(t, []errlog.Event{late}, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 9))
	if got.Outcome != OutcomeSystemFailure {
		t.Errorf("Outcome = %v, want SYSTEM (post-window)", got.Outcome)
	}
	// With a tiny post-window the evidence is missed.
	tiny := Config{EvidenceWindow: 10 * time.Minute, PostWindow: time.Second}
	c2 := newCorrelator(t, []errlog.Event{late}, tiny)
	if got := c2.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 9)); got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v, want USER with 1s post-window", got.Outcome)
	}
}

func TestWalltimeKillDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = map[string]wlm.Job{
		"1.bw": {
			ID:           "1.bw",
			Walltime:     time.Hour,
			UsedWalltime: time.Hour,
		},
	}
	c := newCorrelator(t, nil, cfg)
	got := c.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 15))
	if got.Outcome != OutcomeWalltime {
		t.Errorf("Outcome = %v, want WALLTIME", got.Outcome)
	}
	// Same signal but the job used only half its walltime: user abort.
	cfg.Jobs["1.bw"] = wlm.Job{ID: "1.bw", Walltime: 2 * time.Hour, UsedWalltime: time.Hour}
	c2 := newCorrelator(t, nil, cfg)
	if got := c2.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 15)); got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v, want USER", got.Outcome)
	}
	// System evidence takes precedence over walltime heuristics.
	cfg.Jobs["1.bw"] = wlm.Job{ID: "1.bw", Walltime: time.Hour, UsedWalltime: time.Hour}
	c3 := newCorrelator(t, []errlog.Event{critEvent(1, base.Add(55*time.Minute), taxonomy.NodeHeartbeat)}, cfg)
	if got := c3.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 15)); got.Outcome != OutcomeSystemFailure {
		t.Errorf("Outcome = %v, want SYSTEM", got.Outcome)
	}
}

func TestWalltimeNeedsKnownJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = map[string]wlm.Job{}
	c := newCorrelator(t, nil, cfg)
	if got := c.Attribute(run([]machine.NodeID{1}, base, time.Hour, 0, 15)); got.Outcome != OutcomeUserFailure {
		t.Errorf("Outcome = %v, want USER when job unknown", got.Outcome)
	}
}

func TestClassLabeling(t *testing.T) {
	top := testTopology(t)
	xe := top.XENodes()[:2]
	xk := top.XKNodes()[:2]
	c := newCorrelator(t, nil, DefaultConfig())

	if got := c.Attribute(run(xe, base, time.Hour, 0, 0)); got.Class != machine.ClassXE {
		t.Errorf("XE placement labeled %v", got.Class)
	}
	if got := c.Attribute(run(xk, base, time.Hour, 0, 0)); got.Class != machine.ClassXK {
		t.Errorf("XK placement labeled %v", got.Class)
	}
	mixed := append(append([]machine.NodeID{}, xe...), xk...)
	if got := c.Attribute(run(mixed, base, time.Hour, 0, 0)); got.Class != machine.ClassXK {
		t.Errorf("mixed placement labeled %v, want XK", got.Class)
	}
}

func TestEarliestEvidenceWins(t *testing.T) {
	events := []errlog.Event{
		critEvent(1, base.Add(58*time.Minute), taxonomy.HardwareMemoryUE),
		critEvent(2, base.Add(55*time.Minute), taxonomy.InterconnectLink),
	}
	// InterconnectLink is SevError-grade in the default rules; keep the
	// severity explicit here.
	events[1].Severity = taxonomy.SevError
	c := newCorrelator(t, events, DefaultConfig())
	got := c.Attribute(run([]machine.NodeID{1, 2}, base, time.Hour, 1, 0))
	if got.Cause != taxonomy.InterconnectLink {
		t.Errorf("Cause = %v, want earliest (HSN_LINK)", got.Cause)
	}
}

func TestAttributeAllPreservesOrder(t *testing.T) {
	c := newCorrelator(t, nil, DefaultConfig())
	runs := []alps.AppRun{
		run([]machine.NodeID{1}, base, time.Hour, 0, 0),
		run([]machine.NodeID{2}, base.Add(time.Hour), time.Hour, 1, 0),
	}
	runs[1].ApID = 2
	got := c.AttributeAll(runs)
	if len(got) != 2 || got[0].ApID != 1 || got[1].ApID != 2 {
		t.Errorf("order not preserved: %+v", got)
	}
	if got[0].Outcome != OutcomeSuccess || got[1].Outcome != OutcomeUserFailure {
		t.Errorf("outcomes: %v, %v", got[0].Outcome, got[1].Outcome)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		give Outcome
		want string
	}{
		{OutcomeSuccess, "SUCCESS"},
		{OutcomeUserFailure, "USER"},
		{OutcomeWalltime, "WALLTIME"},
		{OutcomeSystemFailure, "SYSTEM"},
		{Outcome(42), "OUTCOME(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestQualifying(t *testing.T) {
	tests := []struct {
		cat  taxonomy.Category
		sev  taxonomy.Severity
		want bool
	}{
		{taxonomy.HardwareMemoryUE, taxonomy.SevCritical, true},
		{taxonomy.HardwareMemoryCE, taxonomy.SevCritical, false}, // benign category
		{taxonomy.InterconnectLink, taxonomy.SevError, true},
		{taxonomy.FilesystemTimeout, taxonomy.SevWarning, false}, // too mild
		{taxonomy.GPUPageRetir, taxonomy.SevInfo, false},
	}
	for _, tt := range tests {
		e := errlog.Event{Category: tt.cat, Severity: tt.sev}
		if got := Qualifying(e); got != tt.want {
			t.Errorf("Qualifying(%v,%v) = %v, want %v", tt.cat, tt.sev, got, tt.want)
		}
	}
}
