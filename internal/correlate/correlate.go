// Package correlate implements the heart of the study: joining application
// runs (from the ALPS logs) with classified system error events (from the
// syslog/hardware-error archives) to decide, for every run, whether it
// succeeded, failed for user-level reasons, failed because it exceeded its
// batch walltime, or failed because of a system problem — and in the last
// case, which error category is the likely cause.
//
// The join is node-time scoped: a failed run is attributed to the system
// only if a qualifying (non-benign, error-or-critical) event occurred on a
// node of the run's placement, or machine-wide, inside the run's execution
// window extended by a small slack. A temporal-only mode (any qualifying
// event anywhere on the machine) is provided as the naive baseline the
// node-time join is evaluated against.
package correlate

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// Outcome classifies how an application run ended.
type Outcome int

// Outcomes.
const (
	// OutcomeSuccess: exit code 0 and no fatal signal.
	OutcomeSuccess Outcome = iota + 1
	// OutcomeUserFailure: abnormal exit with no supporting system-error
	// evidence (application bug, bad input, user abort).
	OutcomeUserFailure
	// OutcomeWalltime: killed by the batch system at the walltime limit.
	OutcomeWalltime
	// OutcomeSystemFailure: abnormal exit with supporting system-error
	// evidence in the node-time window.
	OutcomeSystemFailure
)

// String returns the outcome mnemonic.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "SUCCESS"
	case OutcomeUserFailure:
		return "USER"
	case OutcomeWalltime:
		return "WALLTIME"
	case OutcomeSystemFailure:
		return "SYSTEM"
	default:
		return "OUTCOME(" + strconv.Itoa(int(o)) + ")"
	}
}

// AttributedRun is an application run with its outcome attribution.
type AttributedRun struct {
	alps.AppRun
	// Class is ClassXK when the placement includes any hybrid node,
	// otherwise ClassXE.
	Class machine.NodeClass
	// Outcome is the attributed outcome.
	Outcome Outcome
	// Cause is the attributed error category for system failures.
	Cause taxonomy.Category
	// Evidence is the earliest qualifying event for system failures.
	Evidence errlog.Event
	// HasEvidence reports whether Evidence is populated.
	HasEvidence bool
}

// Config tunes the attribution join.
type Config struct {
	// EvidenceWindow extends the evidence search before the run's end.
	// An application dies *when* the error hits it, so causal evidence
	// clusters at the death time; searching the whole execution window
	// would let every unrelated mid-run event explain the failure (the
	// overattribution the A1 ablation quantifies).
	EvidenceWindow time.Duration
	// PostWindow extends the evidence search past the run's end: a node
	// crash is often logged (by the heartbeat monitor) tens of seconds
	// after the application dies.
	PostWindow time.Duration
	// QuiesceMinNodes gates machine-wide *interconnect* events (reroute/
	// warm-swap quiesce): they only qualify as evidence for runs at least
	// this large. A quiesce briefly pauses HSN traffic; small applications
	// ride it out, only tightly coupled runs at scale die.
	QuiesceMinNodes int
	// TemporalOnly disables the placement restriction: any qualifying
	// event anywhere on the machine inside the window counts. This is
	// the naive baseline; it grossly overattributes on a busy machine.
	TemporalOnly bool
	// Jobs, when non-nil, maps batch job IDs to their accounting records
	// and enables walltime-kill detection.
	Jobs map[string]wlm.Job
}

// DefaultConfig returns the windows used throughout the study.
func DefaultConfig() Config {
	return Config{
		EvidenceWindow:  6 * time.Minute,
		PostWindow:      90 * time.Second,
		QuiesceMinNodes: 8192,
	}
}

// Qualifying reports whether an event can explain an application failure:
// non-benign category with severity at least SevError.
func Qualifying(e errlog.Event) bool {
	return !e.Category.Benign() && e.Severity >= taxonomy.SevError
}

// Correlator attributes run outcomes against an event index.
type Correlator struct {
	ix      *interval.Index
	classes []machine.NodeClass
	cfg     Config
}

// New builds a Correlator. The topology provides node classes for XE/XK
// labeling; the index must contain classified events.
func New(ix *interval.Index, top *machine.Topology, cfg Config) (*Correlator, error) {
	if ix == nil {
		return nil, fmt.Errorf("correlate: nil index")
	}
	if top == nil {
		return nil, fmt.Errorf("correlate: nil topology")
	}
	if cfg.PostWindow < 0 || cfg.EvidenceWindow < 0 {
		return nil, fmt.Errorf("correlate: negative window")
	}
	classes := make([]machine.NodeClass, top.NumNodes())
	for i := range classes {
		classes[i] = top.MustNode(machine.NodeID(i)).Class
	}
	return &Correlator{ix: ix, classes: classes, cfg: cfg}, nil
}

// classOf labels a placement: any XK node makes the run hybrid.
func (c *Correlator) classOf(nodes []machine.NodeID) machine.NodeClass {
	class := machine.ClassXE
	for _, n := range nodes {
		if int(n) >= 0 && int(n) < len(c.classes) && c.classes[n] == machine.ClassXK {
			class = machine.ClassXK
			break
		}
	}
	return class
}

// isWalltimeKill reports whether the run's death looks like a batch
// walltime kill: fatal SIGTERM/SIGKILL with the owning job having consumed
// (nearly) its full requested walltime.
func (c *Correlator) isWalltimeKill(run alps.AppRun) bool {
	if c.cfg.Jobs == nil {
		return false
	}
	if run.Signal != 15 && run.Signal != 9 {
		return false
	}
	job, ok := c.cfg.Jobs[run.JobID]
	if !ok || job.Walltime <= 0 {
		return false
	}
	const tolerance = 2 * time.Minute
	return job.UsedWalltime >= job.Walltime-tolerance
}

// Attribute classifies one run.
func (c *Correlator) Attribute(run alps.AppRun) AttributedRun {
	out := AttributedRun{
		AppRun: run,
		Class:  c.classOf(run.Nodes),
	}
	if !run.Failed() {
		out.Outcome = OutcomeSuccess
		return out
	}
	from := run.End.Add(-c.cfg.EvidenceWindow)
	if from.Before(run.Start) {
		// Short runs search their whole execution window.
		from = run.Start
	}
	to := run.End.Add(c.cfg.PostWindow)
	keep := func(e errlog.Event) bool {
		if !Qualifying(e) {
			return false
		}
		if e.IsSystemWide() && e.Category.Group() == taxonomy.GroupInterconnect &&
			len(run.Nodes) < c.cfg.QuiesceMinNodes {
			return false
		}
		return true
	}
	var ev errlog.Event
	var ok bool
	if c.cfg.TemporalOnly {
		ev, ok = c.ix.FirstAnywhere(from, to, keep)
	} else {
		ev, ok = c.ix.FirstInWindow(run.Nodes, from, to, keep)
	}
	if ok {
		out.Outcome = OutcomeSystemFailure
		out.Cause = ev.Category
		out.Evidence = ev
		out.HasEvidence = true
		return out
	}
	if c.isWalltimeKill(run) {
		out.Outcome = OutcomeWalltime
		return out
	}
	out.Outcome = OutcomeUserFailure
	return out
}

// AttributeAll classifies every run, preserving order.
func (c *Correlator) AttributeAll(runs []alps.AppRun) []AttributedRun {
	out := make([]AttributedRun, len(runs))
	for i, r := range runs {
		out[i] = c.Attribute(r)
	}
	return out
}

// AttributeAllParallel classifies every run using the given number of
// worker goroutines, preserving order. The correlator is read-only during
// attribution, so workers share it safely. workers < 2 degrades to the
// sequential path.
func (c *Correlator) AttributeAllParallel(runs []alps.AppRun, workers int) []AttributedRun {
	if workers < 2 || len(runs) < 2*workers {
		return c.AttributeAll(runs)
	}
	out := make([]AttributedRun, len(runs))
	chunk := (len(runs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(runs) {
			break
		}
		hi := lo + chunk
		if hi > len(runs) {
			hi = len(runs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.Attribute(runs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
