package experiments

import (
	"fmt"
	"sort"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/report"
	"logdiver/internal/taxonomy"
)

// blastIndex supports the two queries E14 needs against the run population:
// how many runs were active at an instant, and which attributed failures
// ended inside a window.
type blastIndex struct {
	starts []time.Time // sorted run start times
	ends   []time.Time // sorted run end times
	// failures sorted by end time.
	failEnds  []time.Time
	failCause []taxonomy.Group
}

func newBlastIndex(runs []correlate.AttributedRun) *blastIndex {
	ix := &blastIndex{
		starts: make([]time.Time, 0, len(runs)),
		ends:   make([]time.Time, 0, len(runs)),
	}
	for _, r := range runs {
		ix.starts = append(ix.starts, r.Start)
		ix.ends = append(ix.ends, r.End)
		if r.Outcome == correlate.OutcomeSystemFailure {
			ix.failEnds = append(ix.failEnds, r.End)
			ix.failCause = append(ix.failCause, r.Cause.Group())
		}
	}
	sortTimes(ix.starts)
	sortTimes(ix.ends)
	// failEnds/failCause must sort together.
	idx := make([]int, len(ix.failEnds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ix.failEnds[idx[a]].Before(ix.failEnds[idx[b]]) })
	sortedEnds := make([]time.Time, len(idx))
	sortedCause := make([]taxonomy.Group, len(idx))
	for i, j := range idx {
		sortedEnds[i] = ix.failEnds[j]
		sortedCause[i] = ix.failCause[j]
	}
	ix.failEnds, ix.failCause = sortedEnds, sortedCause
	return ix
}

func sortTimes(ts []time.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
}

func countBefore(ts []time.Time, t time.Time) int {
	return sort.Search(len(ts), func(i int) bool { return ts[i].After(t) })
}

// active returns the number of runs executing at t.
func (ix *blastIndex) active(t time.Time) int {
	return countBefore(ix.starts, t) - countBefore(ix.ends, t)
}

// killedBy counts attributed system failures of the given cause group whose
// end falls in [from, to].
func (ix *blastIndex) killedBy(group taxonomy.Group, from, to time.Time) int {
	lo := sort.Search(len(ix.failEnds), func(i int) bool { return !ix.failEnds[i].Before(from) })
	var n int
	for i := lo; i < len(ix.failEnds) && !ix.failEnds[i].After(to); i++ {
		if ix.failCause[i] == group {
			n++
		}
	}
	return n
}

// E14BlastRadius measures, for every machine-level error event (coalesced
// group), how many applications were running when it struck and how many
// it took down — the paper's "one Lustre outage kills hundreds of
// applications" observation, quantified per category.
func E14BlastRadius(res *core.Result) *report.Table {
	ix := newBlastIndex(res.Runs)
	const postWindow = 10 * time.Minute

	type agg struct {
		events      int
		totalKilled int
		maxKilled   int
		totalActive int
	}
	byGroup := make(map[taxonomy.Group]*agg)
	var worstKilled int
	var worstGroup taxonomy.Group
	var worstAt time.Time
	for _, g := range res.Groups {
		if g.Severity < taxonomy.SevError || g.Category.Benign() {
			continue
		}
		grp := g.Category.Group()
		a := byGroup[grp]
		if a == nil {
			a = &agg{}
			byGroup[grp] = a
		}
		active := ix.active(g.Start)
		killed := ix.killedBy(grp, g.Start.Add(-time.Minute), g.End.Add(postWindow))
		a.events++
		a.totalActive += active
		a.totalKilled += killed
		if killed > a.maxKilled {
			a.maxKilled = killed
		}
		if killed > worstKilled {
			worstKilled = killed
			worstGroup = grp
			worstAt = g.Start
		}
	}

	t := &report.Table{
		ID:      "E14",
		Title:   "Blast radius of machine-level error events",
		Columns: []string{"category group", "events", "mean active apps", "mean killed", "max killed"},
	}
	groups := make([]taxonomy.Group, 0, len(byGroup))
	for grp := range byGroup {
		groups = append(groups, grp)
	}
	sort.Slice(groups, func(i, j int) bool {
		return byGroup[groups[i]].totalKilled > byGroup[groups[j]].totalKilled
	})
	for _, grp := range groups {
		a := byGroup[grp]
		t.AddRow(grp.String(), report.Count(a.events),
			report.F1(float64(a.totalActive)/float64(a.events)),
			report.F1(float64(a.totalKilled)/float64(a.events)),
			report.Count(a.maxKilled))
	}
	if worstKilled > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"worst single event: %s at %s killed %d applications",
			worstGroup, worstAt.Format("2006-01-02 15:04"), worstKilled))
	}
	t.Notes = append(t.Notes,
		"killed = attributed system failures of the same cause group ending within the event window +10m")
	return t
}
