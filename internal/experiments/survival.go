package experiments

import (
	"sort"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/report"
	"logdiver/internal/stats"
)

// E16Survival estimates, per scale class, the probability an application
// survives system interrupts for t hours of execution, using the
// Kaplan-Meier estimator: a run killed by the system at time t is an
// event; a run that ends for any other reason (completion, user failure,
// walltime) is censored at its duration. This is the survival view of the
// E4/E5 probability curves, and it uses the censoring structure properly:
// short successful runs say little about long-horizon survival, and KM
// accounts for that.
func E16Survival(res *core.Result) (*report.Table, error) {
	classes := []struct {
		name   string
		lo, hi int
	}{
		{"small (1-63 nodes)", 1, 64},
		{"mid (64-4095 nodes)", 64, 4096},
		{"large (4096-16383 nodes)", 4096, 16384},
		{"full scale (>=16384 nodes)", 16384, 1 << 30},
	}
	horizons := []float64{1, 6, 12, 24}

	t := &report.Table{
		ID:    "E16",
		Title: "Application survival under system interrupts (Kaplan-Meier)",
		Columns: []string{"scale", "runs", "interrupts",
			"S(1h)", "S(6h)", "S(12h)", "S(24h)"},
	}
	for _, c := range classes {
		var times []float64
		var events []bool
		var interrupts int
		for _, r := range res.Runs {
			n := len(r.Nodes)
			if n < c.lo || n >= c.hi {
				continue
			}
			times = append(times, r.Duration().Hours())
			isEvent := r.Outcome == correlate.OutcomeSystemFailure
			events = append(events, isEvent)
			if isEvent {
				interrupts++
			}
		}
		if len(times) == 0 {
			continue
		}
		km, err := stats.KaplanMeier(times, events)
		if err != nil {
			return nil, err
		}
		row := []any{c.name, report.Count(len(times)), report.Count(interrupts)}
		for _, h := range horizons {
			row = append(row, survivalAt(km, h))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"S(t): probability of running t hours without a system interrupt; censored by natural run end",
		"n/a: no run in the class was observed (event or censoring) beyond that horizon",
	)
	return t, nil
}

// E17Applications breaks outcomes down by application executable: which
// codes run most, which burn the most node-hours, and how their
// system-failure exposure differs — the per-application view of the study.
func E17Applications(res *core.Result) *report.Table {
	type agg struct {
		runs      int
		nodeHours float64
		sysFails  int
		userFails int
	}
	byCmd := make(map[string]*agg)
	for _, r := range res.Runs {
		a := byCmd[r.Cmd]
		if a == nil {
			a = &agg{}
			byCmd[r.Cmd] = a
		}
		a.runs++
		a.nodeHours += r.NodeHours()
		switch r.Outcome {
		case correlate.OutcomeSystemFailure:
			a.sysFails++
		case correlate.OutcomeUserFailure:
			a.userFails++
		default:
			// Successes and walltime terminations contribute exposure
			// (runs, node-hours) but are not failures.
		}
	}
	cmds := make([]string, 0, len(byCmd))
	for c := range byCmd {
		cmds = append(cmds, c)
	}
	sort.Slice(cmds, func(i, j int) bool {
		return byCmd[cmds[i]].nodeHours > byCmd[cmds[j]].nodeHours
	})
	t := &report.Table{
		ID:      "E17",
		Title:   "Per-application outcomes (top codes by node-hours)",
		Columns: []string{"application", "runs", "node-hours", "P(system fail)", "P(user fail)"},
	}
	for i, c := range cmds {
		if i >= 12 {
			break
		}
		a := byCmd[c]
		t.AddRow(c, report.Count(a.runs), report.F1(a.nodeHours),
			report.F3(float64(a.sysFails)/float64(a.runs)),
			report.F3(float64(a.userFails)/float64(a.runs)))
	}
	return t
}

// survivalAt reads the KM step function at time t. Points are time-sorted.
// Beyond the last observation the estimate is unsupported: report n/a.
func survivalAt(km []stats.KMPoint, t float64) string {
	if len(km) == 0 {
		return "n/a"
	}
	i := sort.Search(len(km), func(k int) bool { return km[k].Time > t })
	if i == 0 {
		return report.F3(1.0) // no event yet by time t
	}
	return report.F3(km[i-1].Survival)
}
