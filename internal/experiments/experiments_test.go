package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
)

// fixture generates one small dataset and analysis shared by all tests.
type fixture struct {
	ds  *gen.Dataset
	res *core.Result
}

var cached *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	cfg := gen.Default()
	cfg.Machine = machine.Small()
	cfg.Days = 4
	cfg.Seed = 11
	cfg.Workload.JobsPerDay = 300
	cfg.Workload.XECapabilityJobsPerDay = 3
	cfg.Workload.XKCapabilityJobsPerDay = 1.5
	cfg.Workload.XECapabilitySizes = []int{256, 512}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.NodeBenignPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 100
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeParsed(ds.Jobs, ds.Runs, ds.Events, ds.Topology, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{ds: ds, res: res}
	return cached
}

func TestE1Workload(t *testing.T) {
	f := getFixture(t)
	tbl := E1Workload(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(tbl.Rows))
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "XK (hybrid) runs") {
		t.Error("missing XK row")
	}
}

func TestE2Outcomes(t *testing.T) {
	f := getFixture(t)
	tbl := E2Outcomes(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4 outcomes", len(tbl.Rows))
	}
	if len(tbl.Notes) != 2 {
		t.Errorf("notes = %d, want anchor comparisons", len(tbl.Notes))
	}
	if !strings.Contains(tbl.Notes[0], "1.53%") {
		t.Errorf("anchor missing from note: %q", tbl.Notes[0])
	}
}

func TestE3Categories(t *testing.T) {
	f := getFixture(t)
	tbl := E3Categories(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("no category rows")
	}
}

func TestE4E5Scaling(t *testing.T) {
	f := getFixture(t)
	e4, err := E4ScalingXE(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if err := e4.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(e4.Rows) == 0 {
		t.Error("E4 has no buckets")
	}
	// The small test machine has no runs at 10k nodes: probes must degrade
	// to an explanatory note, not an error.
	found := false
	for _, n := range e4.Notes {
		if strings.Contains(n, "no runs in window") {
			found = true
		}
	}
	if !found {
		t.Error("E4 missing small-dataset probe note")
	}
	e5, err := E5ScalingXK(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(e5.Rows) == 0 {
		t.Error("E5 has no buckets")
	}
}

func TestE6Distributions(t *testing.T) {
	f := getFixture(t)
	tbl, err := E6Distributions(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4 populations", len(tbl.Rows))
	}
}

func TestE7MTTI(t *testing.T) {
	f := getFixture(t)
	tbl, err := E7MTTI(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("no MTTI buckets")
	}
}

func TestE8Timeline(t *testing.T) {
	f := getFixture(t)
	tbl, err := E8Timeline(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("no timeline rows")
	}
	empty := &core.Result{}
	if _, err := E8Timeline(empty); err == nil {
		t.Error("empty result accepted")
	}
}

func TestE9Detection(t *testing.T) {
	f := getFixture(t)
	tbl := E9Detection(f.res, f.ds.Truth)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4 populations", len(tbl.Rows))
	}
}

func TestE10Coalesce(t *testing.T) {
	f := getFixture(t)
	tbl := E10Coalesce(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4 stages", len(tbl.Rows))
	}
}

func TestA1WindowMonotoneAttribution(t *testing.T) {
	f := getFixture(t)
	windows := []time.Duration{time.Minute, 10 * time.Minute, 2 * time.Hour}
	tbl, err := A1Window(f.res, f.ds.Topology, f.ds.Truth, windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(windows) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Attribution counts must not decrease as the window grows.
	prev := -1
	for _, row := range tbl.Rows {
		n := parseCount(t, row[1])
		if n < prev {
			t.Errorf("attribution decreased as window grew: %v", tbl.Rows)
		}
		prev = n
	}
}

func TestA2BaselineOverattributes(t *testing.T) {
	f := getFixture(t)
	tbl, err := A2Baseline(f.res, f.ds.Topology, f.ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	joined := parseCount(t, tbl.Rows[0][1])
	baseline := parseCount(t, tbl.Rows[1][1])
	if baseline <= joined {
		t.Errorf("temporal-only baseline attributed %d <= node-time %d; expected gross overattribution",
			baseline, joined)
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	f := getFixture(t)
	tables, err := All(f.res, f.ds.Topology, f.ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "A1", "A2", "A3"}
	if len(tables) != len(want) {
		t.Fatalf("got %d tables, want %d", len(tables), len(want))
	}
	for i, tbl := range tables {
		if tbl.ID != want[i] {
			t.Errorf("table %d = %s, want %s", i, tbl.ID, want[i])
		}
		if err := tbl.Validate(); err != nil {
			t.Errorf("table %s invalid: %v", tbl.ID, err)
		}
	}
	// Without truth, the truth-dependent tables are omitted.
	noTruth, err := All(f.res, f.ds.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(noTruth) != 17 {
		t.Errorf("without truth got %d tables, want 17", len(noTruth))
	}
}

func TestReadProbe(t *testing.T) {
	f := getFixture(t)
	probe := Probe{Name: "test", Class: machine.ClassXE, Lo: 1, Hi: 1 << 20, Anchor: 0.1}
	pr, err := ReadProbe(f.res.Runs, probe)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range f.res.Runs {
		if r.Class == machine.ClassXE {
			want++
		}
	}
	if pr.Runs != want {
		t.Errorf("probe saw %d runs, want %d", pr.Runs, want)
	}
	if pr.P.Lo > pr.P.P || pr.P.P > pr.P.Hi {
		t.Errorf("CI broken: %+v", pr.P)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	prec, rec, n := accuracy(nil, nil)
	if prec != 1 || rec != 1 || n != 0 {
		t.Errorf("empty accuracy = (%v,%v,%d)", prec, rec, n)
	}
}

// parseCount undoes report.Count's thousands separators.
func parseCount(t *testing.T, s string) int {
	t.Helper()
	s = strings.ReplaceAll(s, ",", "")
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("bad count %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestE11Energy(t *testing.T) {
	f := getFixture(t)
	tbl := E11Energy(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d, want XE, XK and total", len(tbl.Rows))
	}
	// There are system failures in the fixture, so energy must be lost.
	if tbl.Rows[2][2] == "0.00" {
		t.Errorf("total energy lost is zero: %v", tbl.Rows)
	}
}

func TestE12InterruptDist(t *testing.T) {
	f := getFixture(t)
	tbl, err := E12InterruptDist(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d, want all/XE/XK", len(tbl.Rows))
	}
	if tbl.Rows[0][2] == "n/a" {
		t.Error("machine-wide interrupt gaps missing")
	}
}

func TestE13Checkpoint(t *testing.T) {
	f := getFixture(t)
	tbl, err := E13Checkpoint(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no checkpoint rows")
	}
	// At least one bucket must have a concrete plan.
	var concrete bool
	for _, row := range tbl.Rows {
		if row[1] != "n/a" {
			concrete = true
		}
	}
	if !concrete {
		t.Errorf("no bucket produced a plan: %v", tbl.Rows)
	}
}

func TestE14BlastRadius(t *testing.T) {
	f := getFixture(t)
	tbl := E14BlastRadius(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no blast-radius rows")
	}
	// The filesystem group exists (machine-scoped Lustre outages) and
	// must report at least one event.
	var sawFS bool
	for _, row := range tbl.Rows {
		if row[0] == "FILESYSTEM" {
			sawFS = true
			if parseCount(t, row[1]) == 0 {
				t.Error("filesystem group has zero events")
			}
		}
	}
	if !sawFS {
		t.Errorf("no FILESYSTEM group in %v", tbl.Rows)
	}
}

func TestE15Availability(t *testing.T) {
	f := getFixture(t)
	tbl, err := E15Availability(f.res, f.ds.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 8 {
		t.Errorf("rows = %d, want at least the 8 fixed measures", len(tbl.Rows))
	}
	// Availability must be high but below 100% (there are node deaths).
	var availRow string
	for _, row := range tbl.Rows {
		if row[0] == "machine availability" {
			availRow = row[1]
		}
	}
	if availRow == "" || availRow == "100.0000%" {
		t.Errorf("availability row = %q", availRow)
	}
	if _, err := E15Availability(&core.Result{}, f.ds.Topology); err == nil {
		t.Error("empty result accepted")
	}
}

func TestE16Survival(t *testing.T) {
	f := getFixture(t)
	tbl, err := E16Survival(f.res)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no survival rows")
	}
	// Survival values must be valid probabilities and non-increasing
	// across horizons within a row.
	for _, row := range tbl.Rows {
		prev := 1.01
		for _, cell := range row[3:] {
			if cell == "n/a" {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
				t.Fatalf("bad survival cell %q", cell)
			}
			if v < 0 || v > 1 {
				t.Fatalf("survival %v outside [0,1]", v)
			}
			if v > prev+1e-9 {
				t.Fatalf("survival increased across horizons: %v", row)
			}
			prev = v
		}
	}
}

func TestE17Applications(t *testing.T) {
	f := getFixture(t)
	tbl := E17Applications(f.res)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 || len(tbl.Rows) > 12 {
		t.Errorf("rows = %d, want 1..12", len(tbl.Rows))
	}
	// Rows are ordered by node-hours descending.
	prev := 1e18
	for _, row := range tbl.Rows {
		var nh float64
		if _, err := fmt.Sscanf(row[2], "%f", &nh); err != nil {
			t.Fatalf("bad node-hours cell %q", row[2])
		}
		if nh > prev {
			t.Fatalf("rows not sorted by node-hours: %v", tbl.Rows)
		}
		prev = nh
	}
}

func TestA3CoalesceSweep(t *testing.T) {
	f := getFixture(t)
	windows := []time.Duration{0, time.Minute, time.Hour}
	tbl := A3Coalesce(f.res, windows)
	if len(tbl.Rows) != len(windows) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Tuple counts must not increase as the window grows.
	prev := 1 << 62
	for _, row := range tbl.Rows {
		n := parseCount(t, row[1])
		if n > prev {
			t.Errorf("tuples increased with window: %v", tbl.Rows)
		}
		prev = n
	}
	// The zero window equals the deduplicated event count.
	if got := parseCount(t, tbl.Rows[0][1]); got != f.res.Coalesce.Deduped {
		t.Errorf("no-window tuples = %d, want %d", got, f.res.Coalesce.Deduped)
	}
}

var _ = correlate.OutcomeSuccess // keep import for future assertions
