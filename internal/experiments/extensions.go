package experiments

import (
	"fmt"
	"time"

	"logdiver/internal/avail"
	"logdiver/internal/checkpoint"
	"logdiver/internal/coalesce"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
	"logdiver/internal/report"
	"logdiver/internal/stats"
)

// E11Energy prices the work lost to system failures, the energy-cost point
// of the paper's first lesson.
func E11Energy(res *core.Result) *report.Table {
	model := metrics.DefaultEnergyModel()
	t := &report.Table{
		ID:      "E11",
		Title:   "Energy cost of system-failed work",
		Columns: []string{"population", "node-hours lost", "energy lost (MWh)"},
	}
	classes := []struct {
		name  string
		class machine.NodeClass
	}{
		{"XE (CPU)", machine.ClassXE},
		{"XK (hybrid)", machine.ClassXK},
	}
	var totalNH, totalMWh float64
	for _, c := range classes {
		var classRuns []correlate.AttributedRun
		var nh float64
		for _, r := range res.Runs {
			if r.Class != c.class {
				continue
			}
			classRuns = append(classRuns, r)
			if r.Outcome == correlate.OutcomeSystemFailure {
				nh += r.NodeHours()
			}
		}
		mwh := model.LostEnergyMWh(classRuns)
		totalNH += nh
		totalMWh += mwh
		t.AddRow(c.name, report.F1(nh), fmt.Sprintf("%.2f", mwh))
	}
	t.AddRow("total", report.F1(totalNH), fmt.Sprintf("%.2f", totalMWh))
	t.Notes = append(t.Notes,
		fmt.Sprintf("model: %.0f W per XE node, %.0f W per XK node at load",
			model.WattsPerXENode, model.WattsPerXKNode))
	return t
}

// E12InterruptDist fits the machine-wide time-between-system-interrupts
// distribution, the burstiness analysis of a field study's error section.
func E12InterruptDist(res *core.Result) (*report.Table, error) {
	t := &report.Table{
		ID:      "E12",
		Title:   "Time between system-caused application failures (machine-wide)",
		Columns: []string{"population", "interrupts", "mean gap (h)", "median (h)", "weibull shape", "weibull scale (h)", "KS exp", "KS weibull", "better fit"},
	}
	for _, c := range []struct {
		name  string
		class machine.NodeClass
	}{
		{"all runs", 0},
		{"XE runs", machine.ClassXE},
		{"XK runs", machine.ClassXK},
	} {
		gaps := metrics.InterruptGaps(res.Runs, c.class)
		if len(gaps) < 5 {
			t.AddRow(c.name, report.Count(len(gaps)+1), "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		sum, err := stats.Summarize(gaps)
		if err != nil {
			return nil, err
		}
		expFit, err := stats.FitExponential(gaps)
		if err != nil {
			return nil, err
		}
		wb, err := stats.FitWeibull(gaps)
		if err != nil {
			return nil, err
		}
		dExp, err := stats.KSStatistic(gaps, stats.ExpCDF(expFit.Rate))
		if err != nil {
			return nil, err
		}
		dWb, err := stats.KSStatistic(gaps, stats.WeibullCDF(wb.Shape, wb.Scale))
		if err != nil {
			return nil, err
		}
		better := "exponential"
		if dWb < dExp {
			better = "weibull"
		}
		t.AddRow(c.name, report.Count(len(gaps)+1), report.F3(sum.Mean), report.F3(sum.Median),
			report.F3(wb.Shape), report.F3(wb.Scale), report.F3(dExp), report.F3(dWb), better)
	}
	t.Notes = append(t.Notes,
		"weibull shape < 1 indicates bursty interrupts (clustered failures); 1 = memoryless",
		"KS columns: Kolmogorov-Smirnov distance of each fitted family (smaller fits better)")
	return t, nil
}

// E13Checkpoint derives the checkpoint policy the measured MTTI implies at
// each application scale: the Young/Daly optimal intervals and the modeled
// efficiency, versus running unprotected.
func E13Checkpoint(res *core.Result) (*report.Table, error) {
	bounds := []int{1, 4096, 16384, 22637}
	buckets, err := metrics.MTTIByScale(res.Runs, bounds, 0)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E13",
		Title:   "Implied checkpoint policy by application scale",
		Columns: []string{"nodes", "MTTI (h)", "Daly interval (h)", "efficiency", "unprotected 24h survival"},
	}
	const (
		checkpointCostHours = 0.12 // ~7 minutes to dump a petascale state
		restartCostHours    = 0.20
		referenceRunHours   = 24.0
	)
	for _, b := range buckets {
		label := fmt.Sprintf("%d-%d", b.Lo, b.Hi-1)
		if b.Interrupts == 0 || b.MTTIHours <= 0 {
			t.AddRow(label, "n/a", "n/a", "n/a", "n/a")
			continue
		}
		plan, err := checkpoint.BuildPlan(checkpoint.Params{
			MTTIHours:       b.MTTIHours,
			CheckpointHours: checkpointCostHours,
			RestartHours:    restartCostHours,
		}, referenceRunHours)
		if err != nil {
			return nil, err
		}
		t.AddRow(label, report.F1(b.MTTIHours), report.F3(plan.DalyHours),
			report.Pct(plan.EfficiencyAtDaly), report.Pct(plan.EfficiencyUnprotected))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("assumes %.0f-minute checkpoints, %.0f-minute restarts, %v-hour reference runs",
			checkpointCostHours*60, restartCostHours*60, referenceRunHours))
	return t, nil
}

// E15Availability reconstructs node availability from the error log: node
// failure counts, repair times and aggregate machine availability — the
// system-side reliability view that complements the application-side
// outcome tables.
func E15Availability(res *core.Result, top *machine.Topology) (*report.Table, error) {
	if res.Start.IsZero() {
		return nil, fmt.Errorf("experiments: empty result has no availability window")
	}
	downs, err := avail.Reconstruct(res.Events, res.End)
	if err != nil {
		return nil, err
	}
	nodes := top.NumXE() + top.NumXK()
	sum, err := avail.Summarize(downs, nodes, res.Start, res.End)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E15",
		Title:   "Node availability (reconstructed from death/recovery records)",
		Columns: []string{"measure", "value"},
	}
	t.AddRow("compute nodes", report.Count(sum.Nodes))
	t.AddRow("node failures", report.Count(sum.Failures))
	t.AddRow("unresolved at window end", report.Count(sum.OpenFailures))
	t.AddRow("distinct nodes affected", report.Count(sum.DistinctNodes))
	t.AddRow("total downtime (node-hours)", report.F1(sum.DowntimeHours))
	t.AddRow("mean time to repair (h)", report.F3(sum.MTTRHours))
	t.AddRow("node MTBF (node-hours)", report.F1(sum.MTBFNodeHours))
	t.AddRow("machine availability", fmt.Sprintf("%.4f%%", 100*sum.Availability))
	for i, c := range avail.CausesOf(downs) {
		if i >= 3 {
			break
		}
		t.AddRow("top cause #"+fmt.Sprint(i+1), fmt.Sprintf("%s (%s)", c.Cause, report.Count(c.Count)))
	}
	if times := avail.RepairTimes(downs); len(times) >= 2 {
		if fit, err := stats.FitLognormal(times); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"repair times fit lognormal(mu=%.2f, sigma=%.2f): median %.1f h",
				fit.Mu, fit.Sigma, fit.Median()))
		}
	}
	return t, nil
}

// A3Coalesce sweeps the tupling window and reports the episode counts each
// setting produces — the sensitivity of every downstream rate metric to
// the preprocessing design choice.
func A3Coalesce(res *core.Result, windows []time.Duration) *report.Table {
	if len(windows) == 0 {
		windows = []time.Duration{
			0, time.Minute, 5 * time.Minute, 20 * time.Minute, 2 * time.Hour,
		}
	}
	t := &report.Table{
		ID:      "A3",
		Title:   "Ablation: tupling window vs error-episode count",
		Columns: []string{"window", "tuples", "groups", "reduction vs raw"},
	}
	for _, w := range windows {
		tuples := coalesce.Tuples(res.Events, w)
		groups := coalesce.Spatial(tuples, coalesce.DefaultSpatialWindow)
		red := "n/a"
		if len(groups) > 0 {
			red = fmt.Sprintf("%.1fx", float64(res.Coalesce.Raw)/float64(len(groups)))
		}
		label := w.String()
		if w == 0 {
			label = "none"
		}
		t.AddRow(label, report.Count(len(tuples)), report.Count(len(groups)), red)
	}
	t.Notes = append(t.Notes, "default: 5m; without tupling one fault storm counts as thousands of causes")
	return t
}
