// Package experiments regenerates every evaluation artifact of the study
// from a pipeline result:
//
//	E1  workload summary                E10 coalescing effectiveness
//	E2  outcome breakdown (anchored)    E11 energy cost of lost work
//	E3  failures by category            E12 interrupt-gap distribution fits
//	E4  P(fail) vs scale, XE (anchored) E13 implied checkpoint policy
//	E5  P(fail) vs scale, XK (anchored) E14 blast radius of machine events
//	E6  workload distributions          E15 node availability / MTTR
//	E7  MTTI by scale                   E16 Kaplan-Meier survival
//	E8  weekly produced vs lost hours   E17 per-application outcomes
//	E9  detection coverage (lesson 3)
//
// plus the methodological ablations: A1 (evidence window), A2 (node-time
// join vs temporal-only baseline) and A3 (tupling window).
package experiments

import (
	"fmt"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
	"logdiver/internal/report"
	"logdiver/internal/stats"
)

// Paper anchors: the numbers the abstract states verbatim.
const (
	AnchorSystemFraction = 0.0153
	AnchorLostNodeHours  = 0.09
	AnchorXEProb10k      = 0.008
	AnchorXEProb22k      = 0.162
	AnchorXKProb2k       = 0.020
	AnchorXKProb4224     = 0.129
)

// Probe is a named scale window used to read a curve at an anchor point.
type Probe struct {
	Name   string
	Class  machine.NodeClass
	Lo, Hi int // node count range [Lo, Hi)
	Anchor float64
}

// DefaultProbes returns the four anchor probes from the abstract.
func DefaultProbes() []Probe {
	return []Probe{
		{Name: "XE @ ~10,000 nodes", Class: machine.ClassXE, Lo: 9000, Hi: 11000, Anchor: AnchorXEProb10k},
		{Name: "XE @ ~22,000 nodes", Class: machine.ClassXE, Lo: 19000, Hi: 23000, Anchor: AnchorXEProb22k},
		{Name: "XK @ ~2,000 nodes", Class: machine.ClassXK, Lo: 1800, Hi: 2200, Anchor: AnchorXKProb2k},
		{Name: "XK @ 4,224 nodes", Class: machine.ClassXK, Lo: 4000, Hi: 4300, Anchor: AnchorXKProb4224},
	}
}

// ProbeResult reads P(system failure) for runs inside a probe window.
type ProbeResult struct {
	Probe
	Runs     int
	Failures int
	P        stats.Proportion
}

// ReadProbe evaluates one probe over attributed runs.
func ReadProbe(runs []correlate.AttributedRun, p Probe) (ProbeResult, error) {
	out := ProbeResult{Probe: p}
	for _, r := range runs {
		if r.Class != p.Class || len(r.Nodes) < p.Lo || len(r.Nodes) >= p.Hi {
			continue
		}
		out.Runs++
		if r.Outcome == correlate.OutcomeSystemFailure {
			out.Failures++
		}
	}
	if out.Runs > 0 {
		prop, err := stats.Wilson(out.Failures, out.Runs, 1.96)
		if err != nil {
			return out, err
		}
		out.P = prop
	}
	return out, nil
}

// E1Workload characterizes the measured workload (paper-style Table 1).
func E1Workload(res *core.Result) *report.Table {
	t := &report.Table{
		ID:      "E1",
		Title:   "Workload summary",
		Columns: []string{"population", "count", "node-hours", "share of node-hours"},
	}
	var xe, xk int
	var xeNH, xkNH, totalNH float64
	for _, r := range res.Runs {
		nh := r.NodeHours()
		totalNH += nh
		if r.Class == machine.ClassXK {
			xk++
			xkNH += nh
		} else {
			xe++
			xeNH += nh
		}
	}
	share := func(x float64) string {
		if totalNH == 0 {
			return report.Pct(0)
		}
		return report.Pct(x / totalNH)
	}
	t.AddRow("batch jobs", report.Count(len(res.Jobs)), "", "")
	t.AddRow("application runs", report.Count(len(res.Runs)), report.F1(totalNH), "100.00%")
	t.AddRow("XE (CPU) runs", report.Count(xe), report.F1(xeNH), share(xeNH))
	t.AddRow("XK (hybrid) runs", report.Count(xk), report.F1(xkNH), share(xkNH))
	if !res.Start.IsZero() {
		days := res.End.Sub(res.Start).Hours() / 24
		t.Notes = append(t.Notes, fmt.Sprintf("span: %.1f days (%s to %s)",
			days, res.Start.Format("2006-01-02"), res.End.Format("2006-01-02")))
	}
	return t
}

// E2Outcomes is the headline outcome breakdown (anchored: 1.53% / 9%).
func E2Outcomes(res *core.Result) *report.Table {
	b := metrics.Outcomes(res.Runs)
	t := &report.Table{
		ID:      "E2",
		Title:   "Application outcome breakdown",
		Columns: []string{"outcome", "runs", "share of runs", "node-hours", "share of node-hours"},
	}
	order := []correlate.Outcome{
		correlate.OutcomeSuccess, correlate.OutcomeUserFailure,
		correlate.OutcomeWalltime, correlate.OutcomeSystemFailure,
	}
	for _, o := range order {
		runsShare, nhShare := 0.0, 0.0
		if b.Total > 0 {
			runsShare = float64(b.Counts[o]) / float64(b.Total)
		}
		if b.TotalNodeHours > 0 {
			nhShare = b.NodeHours[o] / b.TotalNodeHours
		}
		t.AddRow(o.String(), report.Count(b.Counts[o]), report.Pct(runsShare),
			report.F1(b.NodeHours[o]), report.Pct(nhShare))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured system-failure fraction %s (paper anchor %s)",
			report.Pct(b.SystemFailureFraction()), report.Pct(AnchorSystemFraction)),
		fmt.Sprintf("measured node-hours consumed by system-failed runs %s (paper anchor %s)",
			report.Pct(b.SystemNodeHoursFraction()), report.Pct(AnchorLostNodeHours)),
	)
	return t
}

// E3Categories breaks system failures down by cause (paper-style error
// category table).
func E3Categories(res *core.Result) *report.Table {
	t := &report.Table{
		ID:      "E3",
		Title:   "System-caused failures by error category",
		Columns: []string{"group", "category", "failures", "share", "node-hours lost"},
	}
	cats := metrics.ByCategory(res.Runs)
	var total int
	for _, c := range cats {
		total += c.Failures
	}
	for _, c := range cats {
		share := 0.0
		if total > 0 {
			share = float64(c.Failures) / float64(total)
		}
		t.AddRow(c.Group.String(), c.Category.String(), report.Count(c.Failures),
			report.Pct(share), report.F1(c.NodeHoursLost))
	}
	return t
}

// scalingTable renders a failure-probability-versus-scale curve.
func scalingTable(id, title string, res *core.Result, class machine.NodeClass, maxNodes int, probes []Probe) (*report.Table, error) {
	bounds := metrics.GeometricBuckets(maxNodes)
	buckets, err := metrics.FailureProbabilityByScale(res.Runs, bounds, class)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"nodes", "runs", "system failures", "P(fail)", "95% CI"},
	}
	for _, b := range buckets {
		if b.Runs == 0 {
			continue
		}
		t.AddRow(b.Label(), report.Count(b.Runs), report.Count(b.Failures),
			report.F3(b.Prob.P), fmt.Sprintf("[%s, %s]", report.F3(b.Prob.Lo), report.F3(b.Prob.Hi)))
	}
	for _, p := range probes {
		if p.Class != class {
			continue
		}
		pr, err := ReadProbe(res.Runs, p)
		if err != nil {
			return nil, err
		}
		if pr.Runs == 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: no runs in window (dataset too small)", p.Name))
			continue
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: measured %s over %d runs (paper anchor %s)",
			p.Name, report.F3(pr.P.P), pr.Runs, report.F3(p.Anchor)))
	}
	return t, nil
}

// E4ScalingXE is the XE failure-probability curve (anchored 0.008 -> 0.162).
func E4ScalingXE(res *core.Result) (*report.Table, error) {
	return scalingTable("E4", "P(system failure) vs scale, XE applications",
		res, machine.ClassXE, 22636, DefaultProbes())
}

// E5ScalingXK is the XK curve (anchored 0.02 -> 0.129).
func E5ScalingXK(res *core.Result) (*report.Table, error) {
	return scalingTable("E5", "P(system failure) vs scale, XK hybrid applications",
		res, machine.ClassXK, 4224, DefaultProbes())
}

// E6Distributions summarizes the run duration and size distributions.
func E6Distributions(res *core.Result) (*report.Table, error) {
	t := &report.Table{
		ID:      "E6",
		Title:   "Workload distributions (durations in hours, sizes in nodes)",
		Columns: []string{"population", "N", "mean", "median", "p95", "p99", "max"},
	}
	add := func(name string, xs []float64) error {
		if len(xs) == 0 {
			return nil
		}
		s, err := stats.Summarize(xs)
		if err != nil {
			return err
		}
		t.AddRow(name, report.Count(s.N), report.F3(s.Mean), report.F3(s.Median),
			report.F3(s.P95), report.F3(s.P99), report.F1(s.Max))
		return nil
	}
	if err := add("XE duration", metrics.DurationSamples(res.Runs, machine.ClassXE)); err != nil {
		return nil, err
	}
	if err := add("XK duration", metrics.DurationSamples(res.Runs, machine.ClassXK)); err != nil {
		return nil, err
	}
	if err := add("XE size", metrics.SizeSamples(res.Runs, machine.ClassXE)); err != nil {
		return nil, err
	}
	if err := add("XK size", metrics.SizeSamples(res.Runs, machine.ClassXK)); err != nil {
		return nil, err
	}
	return t, nil
}

// E7MTTI reports mean time to interrupt by application scale.
func E7MTTI(res *core.Result) (*report.Table, error) {
	bounds := []int{1, 64, 512, 4096, 16384, 22637}
	buckets, err := metrics.MTTIByScale(res.Runs, bounds, 0)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E7",
		Title:   "Mean time to interrupt (MTTI) by application scale",
		Columns: []string{"nodes", "runs", "interrupts", "exposure (h)", "MTTI (h)"},
	}
	for _, b := range buckets {
		if b.Runs == 0 {
			continue
		}
		mtti := "n/a"
		if b.Interrupts > 0 {
			mtti = report.F1(b.MTTIHours)
		}
		t.AddRow(fmt.Sprintf("%d-%d", b.Lo, b.Hi-1), report.Count(b.Runs),
			report.Count(b.Interrupts), report.F1(b.ExposureHours), mtti)
	}
	t.Notes = append(t.Notes, "MTTI = summed application wall-clock hours / system interrupts in the bucket")
	return t, nil
}

// E8Timeline reports weekly produced versus lost node-hours.
func E8Timeline(res *core.Result) (*report.Table, error) {
	if res.Start.IsZero() {
		return nil, fmt.Errorf("experiments: empty result has no timeline")
	}
	const week = 7 * 24 * time.Hour
	tl, err := metrics.Timeline(res.Runs, res.Start, res.End, week)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E8",
		Title:   "Weekly produced vs lost node-hours",
		Columns: []string{"week of", "runs", "produced nh", "lost nh", "lost share", "system failures"},
	}
	for _, b := range tl {
		if b.Runs == 0 {
			continue
		}
		share := 0.0
		if b.ProducedNodeHours > 0 {
			share = b.LostNodeHours / b.ProducedNodeHours
		}
		t.AddRow(b.Start.Format("2006-01-02"), report.Count(b.Runs),
			report.F1(b.ProducedNodeHours), report.F1(b.LostNodeHours),
			report.Pct(share), report.Count(b.SystemFailures))
	}
	return t, nil
}

// E9Detection compares error-detection coverage across partitions and scale
// against ground truth: the hybrid detection gap of lesson 3.
func E9Detection(res *core.Result, truth map[uint64]gen.Truth) *report.Table {
	trueSys := make(map[uint64]bool, len(truth))
	for id, tr := range truth {
		trueSys[id] = tr.Outcome == correlate.OutcomeSystemFailure
	}
	t := &report.Table{
		ID:      "E9",
		Title:   "Error-detection coverage, XE vs XK (vs ground truth)",
		Columns: []string{"population", "true system failures", "attributed", "coverage", "precision"},
	}
	populations := []struct {
		name   string
		class  machine.NodeClass
		minNds int
	}{
		{"XE all scales", machine.ClassXE, 0},
		{"XK all scales", machine.ClassXK, 0},
		{"XE full scale (>=16384)", machine.ClassXE, 16384},
		{"XK full scale (>=3000)", machine.ClassXK, 3000},
	}
	for _, p := range populations {
		var filtered []correlate.AttributedRun
		for _, r := range res.Runs {
			if r.Class == p.class && len(r.Nodes) >= p.minNds {
				filtered = append(filtered, r)
			}
		}
		cov := metrics.DetectionCoverage(filtered, trueSys, p.class)
		t.AddRow(p.name, report.Count(cov.TrueSystem), report.Count(cov.Attributed),
			report.Pct(cov.Rate()), report.Pct(cov.Precision()))
	}
	t.Notes = append(t.Notes,
		"coverage: share of truly system-caused failures the logs let the pipeline attribute to the system",
		"the paper's lesson 3: hybrid (XK) resiliency is impaired by inadequate error detection",
	)
	return t
}

// E10Coalesce reports the preprocessing reduction chain.
func E10Coalesce(res *core.Result) *report.Table {
	t := &report.Table{
		ID:      "E10",
		Title:   "Log coalescing effectiveness",
		Columns: []string{"stage", "records", "reduction vs raw"},
	}
	s := res.Coalesce
	ratio := func(n int) string {
		if n == 0 || s.Raw == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1fx", float64(s.Raw)/float64(n))
	}
	t.AddRow("raw log lines (classified)", report.Count(s.Raw), "1.0x")
	t.AddRow("after dedup", report.Count(s.Deduped), ratio(s.Deduped))
	t.AddRow("error episodes (tuples)", report.Count(s.Tuples), ratio(s.Tuples))
	t.AddRow("machine-level events (groups)", report.Count(s.Groups), ratio(s.Groups))
	return t
}

// A1Window sweeps the evidence window and reports attribution quality at
// each setting, quantifying the design choice the default window encodes.
func A1Window(res *core.Result, top *machine.Topology, truth map[uint64]gen.Truth, windows []time.Duration) (*report.Table, error) {
	if len(windows) == 0 {
		windows = []time.Duration{
			time.Minute, 3 * time.Minute, 6 * time.Minute,
			15 * time.Minute, time.Hour, 6 * time.Hour,
		}
	}
	raw := rawRuns(res)
	ix := interval.NewIndex(res.Events)
	t := &report.Table{
		ID:      "A1",
		Title:   "Ablation: evidence window vs attribution quality",
		Columns: []string{"window", "attributed system", "measured fraction", "precision", "recall"},
	}
	for _, w := range windows {
		cfg := correlate.DefaultConfig()
		cfg.EvidenceWindow = w
		corr, err := correlate.New(ix, top, cfg)
		if err != nil {
			return nil, err
		}
		attr := corr.AttributeAll(raw)
		prec, rec, attributed := accuracy(attr, truth)
		frac := 0.0
		if len(attr) > 0 {
			frac = float64(attributed) / float64(len(attr))
		}
		t.AddRow(w.String(), report.Count(attributed), report.Pct(frac),
			report.Pct(prec), report.Pct(rec))
	}
	t.Notes = append(t.Notes, "default window: 6m; growing the window inflates attribution (precision falls)")
	return t, nil
}

// A2Baseline compares the node-time join with the naive temporal-only join.
func A2Baseline(res *core.Result, top *machine.Topology, truth map[uint64]gen.Truth) (*report.Table, error) {
	raw := rawRuns(res)
	ix := interval.NewIndex(res.Events)
	t := &report.Table{
		ID:      "A2",
		Title:   "Ablation: node-time join vs temporal-only baseline",
		Columns: []string{"method", "attributed system", "measured fraction", "precision", "recall"},
	}
	for _, mode := range []struct {
		name     string
		temporal bool
	}{
		{"node-time join (LogDiver)", false},
		{"temporal-only baseline", true},
	} {
		cfg := correlate.DefaultConfig()
		cfg.TemporalOnly = mode.temporal
		corr, err := correlate.New(ix, top, cfg)
		if err != nil {
			return nil, err
		}
		attr := corr.AttributeAll(raw)
		prec, rec, attributed := accuracy(attr, truth)
		frac := 0.0
		if len(attr) > 0 {
			frac = float64(attributed) / float64(len(attr))
		}
		t.AddRow(mode.name, report.Count(attributed), report.Pct(frac),
			report.Pct(prec), report.Pct(rec))
	}
	t.Notes = append(t.Notes, "the temporal-only baseline attributes any failure near any machine event: precision collapses")
	return t, nil
}

// rawRuns strips attribution from a result's runs.
func rawRuns(res *core.Result) []alps.AppRun {
	out := make([]alps.AppRun, len(res.Runs))
	for i, r := range res.Runs {
		out[i] = r.AppRun
	}
	return out
}

// accuracy computes precision/recall of system-failure attribution against
// ground truth, plus the attributed count.
func accuracy(attr []correlate.AttributedRun, truth map[uint64]gen.Truth) (precision, recall float64, attributed int) {
	var trueSys, correct int
	for _, r := range attr {
		isTrue := truth[r.ApID].Outcome == correlate.OutcomeSystemFailure
		isAttr := r.Outcome == correlate.OutcomeSystemFailure
		if isTrue {
			trueSys++
		}
		if isAttr {
			attributed++
			if isTrue {
				correct++
			}
		}
	}
	precision, recall = 1, 1
	if attributed > 0 {
		precision = float64(correct) / float64(attributed)
	}
	if trueSys > 0 {
		recall = float64(correct) / float64(trueSys)
	}
	return precision, recall, attributed
}

// All runs every experiment that needs only the pipeline result, plus the
// truth-dependent ones when truth is supplied (ds may be nil).
func All(res *core.Result, top *machine.Topology, truth map[uint64]gen.Truth) ([]*report.Table, error) {
	var out []*report.Table
	out = append(out, E1Workload(res), E2Outcomes(res), E3Categories(res))
	e4, err := E4ScalingXE(res)
	if err != nil {
		return nil, err
	}
	e5, err := E5ScalingXK(res)
	if err != nil {
		return nil, err
	}
	e6, err := E6Distributions(res)
	if err != nil {
		return nil, err
	}
	e7, err := E7MTTI(res)
	if err != nil {
		return nil, err
	}
	e8, err := E8Timeline(res)
	if err != nil {
		return nil, err
	}
	out = append(out, e4, e5, e6, e7, e8)
	if truth != nil {
		out = append(out, E9Detection(res, truth))
	}
	out = append(out, E10Coalesce(res), E11Energy(res))
	e12, err := E12InterruptDist(res)
	if err != nil {
		return nil, err
	}
	e13, err := E13Checkpoint(res)
	if err != nil {
		return nil, err
	}
	out = append(out, e12, e13, E14BlastRadius(res))
	if top != nil {
		e15, err := E15Availability(res, top)
		if err != nil {
			return nil, err
		}
		out = append(out, e15)
	}
	e16, err := E16Survival(res)
	if err != nil {
		return nil, err
	}
	out = append(out, e16, E17Applications(res))
	if truth != nil && top != nil {
		a1, err := A1Window(res, top, truth, nil)
		if err != nil {
			return nil, err
		}
		a2, err := A2Baseline(res, top, truth)
		if err != nil {
			return nil, err
		}
		out = append(out, a1, a2)
	}
	out = append(out, A3Coalesce(res, nil))
	return out, nil
}
