package core

// Parallel streaming ingestion. The three archives are parsed concurrently
// (one reader goroutine each), and within every archive the raw text is
// split into line-aligned blocks that a worker pool (bounded by
// Options.Parallelism per archive) parses — and, for syslog, classifies —
// concurrently. Block results are merged back in archive order, so the
// assembled jobs, runs, events and ParseStats are identical to the
// sequential path; TestParallelAnalyzeMatchesSerial asserts exact equality
// of the whole Result.
//
// ParseStats accumulation is race-free by construction: each archive reader
// owns a private ParseStats, each block's counters travel with the block
// result and are folded in on the single consumer goroutine, and the three
// private structs are merged after all readers join.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/stream"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// ingestBlockSize is the block granularity of parallel ingestion. A
// variable (not const) so tests can shrink it to force malformed lines and
// record boundaries onto chunk edges.
var ingestBlockSize = stream.DefaultBlockSize

// merge folds per-archive stats into the pipeline totals.
func (s *ParseStats) merge(o ParseStats) {
	s.AccountingRecords += o.AccountingRecords
	s.AccountingMalformed += o.AccountingMalformed
	s.ApsysLines += o.ApsysLines
	s.ApsysMalformed += o.ApsysMalformed
	s.OpenRuns += o.OpenRuns
	s.UnmatchedExits += o.UnmatchedExits
	s.SyslogLines += o.SyslogLines
	s.SyslogMalformed += o.SyslogMalformed
	s.Unclassified += o.Unclassified
}

// ingestParallel parses the three archives concurrently and returns the
// assembled jobs, runs and classified events plus merged parse stats.
func ingestParallel(a Archives, top *machine.Topology, opts Options) (jobs []wlm.Job, runs []alps.AppRun, events []errlog.Event, stats ParseStats, err error) {
	var (
		wg                           sync.WaitGroup
		accStats, apsStats, sysStats ParseStats
		accErr, apsErr, sysErr       error
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		jobs, accErr = readAccountingParallel(a.Accounting, a.Location, opts.Parallelism, &accStats)
	}()
	go func() {
		defer wg.Done()
		runs, apsErr = readApsysParallel(a.Apsys, opts.Parallelism, &apsStats)
	}()
	go func() {
		defer wg.Done()
		events, sysErr = readSyslogParallel(a.Syslog, top, opts.Classifier, opts.Parallelism, &sysStats)
	}()
	wg.Wait()
	for _, e := range []error{accErr, apsErr, sysErr} {
		if e != nil {
			return nil, nil, nil, ParseStats{}, e
		}
	}
	stats.merge(accStats)
	stats.merge(apsStats)
	stats.merge(sysStats)
	return jobs, runs, events, stats, nil
}

// accChunk is one parsed accounting block.
type accChunk struct {
	recs      []wlm.Record
	malformed int
}

func readAccountingParallel(r io.Reader, loc *time.Location, workers int, st *ParseStats) ([]wlm.Job, error) {
	if r == nil {
		return nil, nil
	}
	asm := wlm.NewAssembler()
	err := stream.OrderedBlocks(r, ingestBlockSize, workers,
		func(block []byte) (accChunk, error) {
			recs, malformed := wlm.ParseBlock(block, loc)
			return accChunk{recs: recs, malformed: malformed}, nil
		},
		func(c accChunk) error {
			st.AccountingRecords += len(c.recs)
			st.AccountingMalformed += c.malformed
			for _, rec := range c.recs {
				if err := asm.Add(rec); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: accounting: %w", err)
	}
	return asm.Jobs(), nil
}

// apsysMsg is one parsed apsys placement record with its timestamp.
type apsysMsg struct {
	at  time.Time
	msg alps.Message
}

// apsChunk is one parsed apsys block.
type apsChunk struct {
	msgs      []apsysMsg
	lines     int // well-formed syslog lines (any tag)
	malformed int // syslog-level + apsys-level malformed
}

func readApsysParallel(r io.Reader, workers int, st *ParseStats) ([]alps.AppRun, error) {
	if r == nil {
		return nil, nil
	}
	asm := alps.NewAssembler()
	err := stream.OrderedBlocks(r, ingestBlockSize, workers,
		func(block []byte) (apsChunk, error) {
			lines, malformed := syslogx.ParseBlock(block)
			c := apsChunk{malformed: malformed, lines: len(lines)}
			c.msgs = make([]apsysMsg, 0, len(lines))
			for _, line := range lines {
				if line.Tag != alps.Tag {
					continue
				}
				m, err := alps.ParseMessage(line.Message)
				if err != nil {
					c.malformed++
					continue
				}
				c.msgs = append(c.msgs, apsysMsg{at: line.Time, msg: m})
			}
			return c, nil
		},
		func(c apsChunk) error {
			st.ApsysLines += c.lines
			st.ApsysMalformed += c.malformed
			for _, m := range c.msgs {
				if err := asm.Add(m.at, m.msg); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: apsys: %w", err)
	}
	st.OpenRuns = asm.Open()
	st.UnmatchedExits = asm.Unmatched()
	return asm.Runs(), nil
}

// sysChunk is one parsed-and-classified syslog block.
type sysChunk struct {
	events       []errlog.Event
	lines        int // well-formed lines
	malformed    int
	unclassified int
}

func readSyslogParallel(r io.Reader, top *machine.Topology, cls *taxonomy.Classifier, workers int, st *ParseStats) ([]errlog.Event, error) {
	if r == nil {
		return nil, nil
	}
	var events []errlog.Event
	err := stream.OrderedBlocks(r, ingestBlockSize, workers,
		func(block []byte) (sysChunk, error) {
			lines, malformed := syslogx.ParseBlock(block)
			c := sysChunk{malformed: malformed, lines: len(lines)}
			c.events = make([]errlog.Event, 0, len(lines))
			for _, line := range lines {
				cat, sev := cls.Classify(line.Message)
				if cat == taxonomy.Unclassified {
					c.unclassified++
					continue
				}
				node := errlog.SystemWide
				if id, err := top.LookupString(line.Host); err == nil {
					node = id
				}
				c.events = append(c.events, errlog.Event{
					Time:     line.Time,
					Node:     node,
					Cname:    line.Host,
					Category: cat,
					Severity: sev,
					Message:  line.Message,
				})
			}
			return c, nil
		},
		func(c sysChunk) error {
			st.SyslogLines += c.lines
			st.SyslogMalformed += c.malformed
			st.Unclassified += c.unclassified
			events = append(events, c.events...)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: syslog: %w", err)
	}
	return events, nil
}
