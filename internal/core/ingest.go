package core

// Parallel streaming ingestion. The three archives are parsed concurrently
// (one reader goroutine each), and within every archive the raw text is
// split into line-aligned blocks that a worker pool (bounded by
// Options.Parallelism per archive) parses — and, for syslog, classifies —
// concurrently. Block results are merged back in archive order, so the
// assembled jobs, runs, events and ParseStats — including the per-kind
// malformed counters and provenance samples — are identical to the
// sequential path; TestParallelAnalyzeMatchesSerial asserts exact equality
// of the whole Result.
//
// ParseStats accumulation is race-free by construction: each archive reader
// owns a private ParseStats, each block's counters and line-stats travel
// with the block result and are folded in on the single consumer goroutine,
// and the three private structs are merged after all readers join.
//
// Strict mode stays deterministic under parallelism: each block worker
// reports the first malformed line of its block (with the archive line
// number from the block's provenance), and stream.Ordered surfaces the
// first error in block-production order — together, the first malformed
// line of the whole archive, exactly as the sequential scan would.

import (
	"io"
	"sync"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/stream"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// ingestBlockSize is the block granularity of parallel ingestion. A
// variable (not const) so tests can shrink it to force malformed lines and
// record boundaries onto chunk edges.
var ingestBlockSize = stream.DefaultBlockSize

// merge folds per-archive stats into the pipeline totals.
func (s *ParseStats) merge(o ParseStats) {
	s.AccountingRecords += o.AccountingRecords
	s.AccountingMalformed += o.AccountingMalformed
	s.ApsysLines += o.ApsysLines
	s.ApsysMalformed += o.ApsysMalformed
	s.OpenRuns += o.OpenRuns
	s.UnmatchedExits += o.UnmatchedExits
	s.DuplicateStarts += o.DuplicateStarts
	s.ClampedRuns += o.ClampedRuns
	s.SyslogLines += o.SyslogLines
	s.SyslogMalformed += o.SyslogMalformed
	s.Unclassified += o.Unclassified
	s.AccountingDetail.Merge(o.AccountingDetail)
	s.ApsysDetail.Merge(o.ApsysDetail)
	s.SyslogDetail.Merge(o.SyslogDetail)
}

// ingestParallel parses the three archives concurrently and returns the
// assembled jobs, runs and classified events plus merged parse stats.
func ingestParallel(a Archives, top *machine.Topology, opts Options) (jobs []wlm.Job, runs []alps.AppRun, events []errlog.Event, stats ParseStats, err error) {
	var (
		wg                           sync.WaitGroup
		accStats, apsStats, sysStats ParseStats
		accErr, apsErr, sysErr       error
	)
	wlmAsm := wlm.NewAssembler()
	alpsAsm := alps.NewAssembler()
	alpsAsm.SetLenient(opts.ParseMode == parse.Lenient)
	wg.Add(3)
	go func() {
		defer wg.Done()
		accErr = readAccountingParallel(a.Accounting, a.Location, opts.Parallelism, opts.ParseMode, &accStats, wlmAsm.AddScan)
		if accErr != nil {
			accErr = archiveErr(ArchiveAccounting, accErr)
		}
	}()
	go func() {
		defer wg.Done()
		apsErr = readApsysParallel(a.Apsys, opts.Parallelism, opts.ParseMode, &apsStats, alpsAsm)
		if apsErr != nil {
			apsErr = archiveErr(ArchiveApsys, apsErr)
		}
	}()
	go func() {
		defer wg.Done()
		events, sysErr = readSyslogParallel(a.Syslog, top, opts.Classifier, opts.Parallelism, opts.ParseMode, &sysStats)
		if sysErr != nil {
			sysErr = archiveErr(ArchiveSyslog, sysErr)
		}
	}()
	wg.Wait()
	// Surface errors in fixed archive order (accounting, apsys, syslog) so a
	// strict-mode run with corruption in several archives reports the same
	// failure as the sequential path.
	for _, e := range []error{accErr, apsErr, sysErr} {
		if e != nil {
			return nil, nil, nil, ParseStats{}, e
		}
	}
	apsStats.setAssembler(alpsAsm)
	stats.merge(accStats)
	stats.merge(apsStats)
	stats.merge(sysStats)
	return wlmAsm.Jobs(), alpsAsm.Runs(), events, stats, nil
}

// setAssembler copies the pairing-anomaly counters out of an apsys
// assembler. These are state (not additive per block), so the incremental
// path re-derives them from the persistent assembler at every snapshot.
func (s *ParseStats) setAssembler(asm *alps.Assembler) {
	s.OpenRuns = asm.Open()
	s.UnmatchedExits = asm.Unmatched()
	s.DuplicateStarts = asm.Duplicates()
	s.ClampedRuns = asm.ClampedEnds()
}

// accChunk is one parsed accounting block. The records hold byte views into
// the block's pooled buffer, valid until the consume callback returns (the
// sink must copy or intern what it retains, which AddScan does).
type accChunk struct {
	recs  []wlm.ScanRecord
	stats parse.LineStats
}

// readAccountingParallel streams the accounting archive through the block
// worker pool, feeding every parsed record to sink (in archive order) and
// accumulating parse stats into st. The caller owns the assembler behind
// sink, so both the one-shot and the incremental ingestion paths share this
// reader. Errors are returned unwrapped; the caller stamps the archive name.
func readAccountingParallel(r io.Reader, loc *time.Location, workers int, mode parse.Mode, st *ParseStats, sink func(wlm.ScanRecord) error) error {
	if r == nil {
		return nil
	}
	err := stream.OrderedRecycledBlocks(r, ingestBlockSize, workers,
		func(b stream.Block) (accChunk, error) {
			recs, stats, err := wlm.ScanBlockMode(b.Data, loc, b.FirstLine, mode)
			if err != nil {
				return accChunk{}, err
			}
			return accChunk{recs: recs, stats: stats}, nil
		},
		func(c accChunk) error {
			st.AccountingRecords += len(c.recs)
			st.AccountingDetail.Merge(c.stats)
			for _, rec := range c.recs {
				if err := sink(rec); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	st.AccountingDetail.SetArchive(ArchiveAccounting)
	st.AccountingMalformed = st.AccountingDetail.Malformed()
	return nil
}

// apsChunk is one parsed apsys block.
type apsChunk struct {
	msgs  []apsysMsg
	lines int // well-formed syslog lines (any tag)
	stats parse.LineStats
}

// parseApsysBlock applies checkApsysLine — the exact per-line semantics of
// the sequential apsys reader — to every line of a numbered block.
func parseApsysBlock(b stream.Block, mode parse.Mode) (apsChunk, error) {
	var c apsChunk
	no := b.FirstLine - 1
	var failed *parse.Error
	stream.ForEachLine(b.Data, func(raw []byte) {
		no++
		if failed != nil {
			return
		}
		msg, counted, haveMsg, perr := checkApsysLine(string(raw), no)
		if counted {
			c.lines++
		}
		if perr != nil {
			if mode == parse.Strict {
				failed = perr
				return
			}
			c.stats.Record(perr)
			return
		}
		if haveMsg {
			c.msgs = append(c.msgs, msg)
		}
	})
	if failed != nil {
		return apsChunk{}, failed
	}
	return c, nil
}

// apsView is one parsed apsys message view with its syslog timestamp.
type apsView struct {
	at time.Time
	v  alps.MessageView
}

// apsViewChunk is one parsed apsys block on the byte-view fast path. The
// message views alias the block's pooled buffer, valid until the consume
// callback returns (AddView copies or interns what it retains).
type apsViewChunk struct {
	msgs  []apsView
	lines int // well-formed syslog lines (any tag)
	stats parse.LineStats
}

// parseApsysBlockBytes is parseApsysBlock on the byte-view fast path,
// applying checkApsysLineBytes to every line of a numbered block.
//
//ldvet:pooled
//ldvet:hotpath
func parseApsysBlockBytes(b stream.Block, mode parse.Mode) (apsViewChunk, error) {
	var c apsViewChunk
	no := b.FirstLine - 1
	var failed *parse.Error
	stream.ForEachLine(b.Data, func(raw []byte) {
		no++
		if failed != nil {
			return
		}
		at, v, counted, haveMsg, perr := checkApsysLineBytes(raw, no)
		if counted {
			c.lines++
		}
		if perr != nil {
			if mode == parse.Strict {
				failed = perr
				return
			}
			c.stats.Record(perr)
			return
		}
		if haveMsg {
			c.msgs = append(c.msgs, apsView{at: at, v: v})
		}
	})
	if failed != nil {
		return apsViewChunk{}, failed
	}
	return c, nil
}

// readApsysParallel streams the apsys archive through the block worker
// pool into the caller-owned assembler. The pairing-anomaly counters
// (OpenRuns, UnmatchedExits, ...) are assembler state, not per-block
// deltas, so the caller derives them via setAssembler once ingestion — or,
// on the incremental path, the whole tailing session — is done. Errors are
// returned unwrapped; the caller stamps the archive name.
func readApsysParallel(r io.Reader, workers int, mode parse.Mode, st *ParseStats, asm *alps.Assembler) error {
	if r == nil {
		return nil
	}
	err := stream.OrderedRecycledBlocks(r, ingestBlockSize, workers,
		func(b stream.Block) (apsViewChunk, error) { return parseApsysBlockBytes(b, mode) },
		func(c apsViewChunk) error {
			st.ApsysLines += c.lines
			st.ApsysDetail.Merge(c.stats)
			for _, m := range c.msgs {
				if err := asm.AddView(m.at, m.v); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	st.ApsysDetail.SetArchive(ArchiveApsys)
	st.ApsysMalformed = st.ApsysDetail.Malformed()
	return nil
}

// sysChunk is one parsed-and-classified syslog block.
type sysChunk struct {
	events       []errlog.Event
	lines        int // well-formed lines
	unclassified int
	stats        parse.LineStats
}

func readSyslogParallel(r io.Reader, top *machine.Topology, cls *taxonomy.Classifier, workers int, mode parse.Mode, st *ParseStats) ([]errlog.Event, error) {
	if r == nil {
		return nil, nil
	}
	var events []errlog.Event
	// Per-worker host caches, reused across the blocks of this archive. The
	// pool is local because cached attributions are only valid for this
	// topology.
	hostCaches := sync.Pool{New: func() any { return errlog.NewHostCache() }}
	err := stream.OrderedRecycledBlocks(r, ingestBlockSize, workers,
		func(b stream.Block) (sysChunk, error) {
			hc := hostCaches.Get().(*errlog.HostCache)
			defer hostCaches.Put(hc)
			var c sysChunk
			var batch errlog.EventBatch
			no := b.FirstLine - 1
			var failed *parse.Error
			stream.ForEachLine(b.Data, func(raw []byte) {
				no++
				if failed != nil {
					return
				}
				v, skip, perr := syslogx.CheckLineBytes(raw)
				if skip {
					return
				}
				if perr != nil {
					perr.Line = no
					if mode == parse.Strict {
						failed = perr
						return
					}
					c.stats.Record(perr)
					return
				}
				c.lines++
				cat, sev := cls.ClassifyBytes(v.Msg)
				if cat == taxonomy.Unclassified {
					c.unclassified++
					return
				}
				node, cname := hc.Resolve(v.Host, top)
				batch.Append(errlog.Event{Time: v.Time, Node: node, Cname: cname, Category: cat, Severity: sev}, v.Msg)
			})
			if failed != nil {
				return sysChunk{}, failed
			}
			c.events = batch.Finish()
			return c, nil
		},
		func(c sysChunk) error {
			st.SyslogLines += c.lines
			st.Unclassified += c.unclassified
			st.SyslogDetail.Merge(c.stats)
			events = append(events, c.events...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	st.SyslogDetail.SetArchive(ArchiveSyslog)
	st.SyslogMalformed = st.SyslogDetail.Malformed()
	return events, nil
}
