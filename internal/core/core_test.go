package core

import (
	"strings"
	"testing"
	"time"

	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

var testDatasetCache *gen.Dataset

// testDataset generates (once) a small synthetic archive for pipeline tests.
func testDataset(t *testing.T) *gen.Dataset {
	t.Helper()
	if testDatasetCache != nil {
		return testDatasetCache
	}
	cfg := gen.Default()
	cfg.Machine = machine.Small()
	cfg.Days = 3
	cfg.Seed = 7
	cfg.Workload.JobsPerDay = 300
	cfg.Workload.XECapabilityJobsPerDay = 2
	cfg.Workload.XKCapabilityJobsPerDay = 1
	cfg.Workload.XECapabilitySizes = []int{256, 512}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.NodeBenignPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 100
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	testDatasetCache = ds
	return ds
}

// archivesFor serializes a dataset into in-memory archives.
func archivesFor(t *testing.T, ds *gen.Dataset) Archives {
	t.Helper()
	var acc, aps, sys strings.Builder
	if err := ds.WriteAccounting(&acc); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&sys); err != nil {
		t.Fatal(err)
	}
	return Archives{
		Accounting: strings.NewReader(acc.String()),
		Apsys:      strings.NewReader(aps.String()),
		Syslog:     strings.NewReader(sys.String()),
		Location:   time.UTC,
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	ds := testDataset(t)
	res, err := Analyze(archivesFor(t, ds), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(ds.Jobs) {
		t.Errorf("jobs: got %d, want %d", len(res.Jobs), len(ds.Jobs))
	}
	if len(res.Runs) != len(ds.Runs) {
		t.Errorf("runs: got %d, want %d", len(res.Runs), len(ds.Runs))
	}
	if res.Parse.AccountingMalformed != 0 {
		t.Errorf("accounting malformed: %d", res.Parse.AccountingMalformed)
	}
	if res.Parse.ApsysMalformed != 0 {
		t.Errorf("apsys malformed: %d", res.Parse.ApsysMalformed)
	}
	if res.Parse.SyslogMalformed == 0 {
		t.Error("expected injected malformed syslog lines to be counted")
	}
	if res.Parse.Unclassified != 0 {
		t.Errorf("unclassified: %d", res.Parse.Unclassified)
	}
	// Dedup must remove the injected duplicates.
	if res.Coalesce.Deduped != len(ds.Events) {
		t.Errorf("deduped events: got %d, want %d", res.Coalesce.Deduped, len(ds.Events))
	}
	if res.Coalesce.Raw <= res.Coalesce.Deduped {
		t.Error("raw events should exceed deduped (duplicates injected)")
	}
	if len(res.Tuples) == 0 || len(res.Groups) == 0 {
		t.Error("coalescing produced nothing")
	}
	if res.Start.IsZero() || !res.End.After(res.Start) {
		t.Errorf("span [%v,%v] broken", res.Start, res.End)
	}

	// Outcomes must cover all four classes on this workload.
	counts := map[correlate.Outcome]int{}
	for _, r := range res.Runs {
		counts[r.Outcome]++
	}
	for _, o := range []correlate.Outcome{
		correlate.OutcomeSuccess, correlate.OutcomeUserFailure,
		correlate.OutcomeWalltime, correlate.OutcomeSystemFailure,
	} {
		if counts[o] == 0 {
			t.Errorf("no runs with outcome %v", o)
		}
	}
}

// TestAnalyzeMatchesInMemoryPath verifies the parse path and the in-memory
// path agree run for run: serialization loses nothing that matters.
func TestAnalyzeMatchesInMemoryPath(t *testing.T) {
	ds := testDataset(t)
	fromText, err := Analyze(archivesFor(t, ds), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := AnalyzeParsed(ds.Jobs, ds.Runs, ds.Events, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText.Runs) != len(fromMem.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(fromText.Runs), len(fromMem.Runs))
	}
	for i := range fromText.Runs {
		a, b := fromText.Runs[i], fromMem.Runs[i]
		if a.ApID != b.ApID {
			t.Fatalf("run %d apid %d vs %d", i, a.ApID, b.ApID)
		}
		if a.Outcome != b.Outcome {
			t.Fatalf("apid %d outcome %v (text) vs %v (mem)", a.ApID, a.Outcome, b.Outcome)
		}
		if a.Outcome == correlate.OutcomeSystemFailure && a.Cause != b.Cause {
			t.Fatalf("apid %d cause %v vs %v", a.ApID, a.Cause, b.Cause)
		}
	}
}

func TestAnalyzeAttributionAgainstTruth(t *testing.T) {
	ds := testDataset(t)
	res, err := AnalyzeParsed(ds.Jobs, ds.Runs, ds.Events, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var trueSys, detectedTrueSys, attributed, correct int
	for _, r := range res.Runs {
		truth := ds.Truth[r.ApID]
		if truth.Outcome == correlate.OutcomeSystemFailure {
			trueSys++
			if truth.Detected {
				detectedTrueSys++
			}
		}
		if r.Outcome == correlate.OutcomeSystemFailure {
			attributed++
			if truth.Outcome == correlate.OutcomeSystemFailure {
				correct++
			}
		}
	}
	if trueSys == 0 {
		t.Fatal("no true system failures in dataset")
	}
	// Attribution must recover the large majority of *detectable* system
	// failures and stay mostly correct.
	recall := float64(correct) / float64(trueSys)
	if detectedTrueSys > 0 {
		detRecall := float64(correct) / float64(detectedTrueSys)
		if detRecall < 0.8 {
			t.Errorf("recall of detectable system failures = %.2f, want >= 0.8", detRecall)
		}
	}
	precision := float64(correct) / float64(attributed)
	if precision < 0.7 {
		t.Errorf("attribution precision = %.2f, want >= 0.7", precision)
	}
	if recall < 0.4 {
		t.Errorf("overall recall = %.2f implausibly low", recall)
	}
}

func TestAnalyzeNilTopology(t *testing.T) {
	if _, err := Analyze(Archives{}, nil, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := AnalyzeParsed(nil, nil, nil, nil, Options{}); err == nil {
		t.Error("nil topology accepted (parsed path)")
	}
}

func TestAnalyzeEmptyArchives(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(Archives{}, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 0 || len(res.Jobs) != 0 || len(res.Events) != 0 {
		t.Errorf("empty archives produced data: %+v", res.Parse)
	}
}

func TestAnalyzeGarbageArchives(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(Archives{
		Accounting: strings.NewReader("complete\ngarbage\n"),
		Apsys:      strings.NewReader("more garbage\n"),
		Syslog:     strings.NewReader("even more\n"),
	}, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parse.AccountingMalformed != 2 {
		t.Errorf("accounting malformed = %d, want 2", res.Parse.AccountingMalformed)
	}
	if len(res.Runs) != 0 {
		t.Error("garbage produced runs")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Classifier == nil {
		t.Error("no default classifier")
	}
	if o.TemporalWindow == 0 || o.SpatialWindow == 0 {
		t.Error("no default windows")
	}
	if o.Correlate.EvidenceWindow == 0 {
		t.Error("no default correlate config")
	}
	// Explicit options survive.
	custom := Options{
		TemporalWindow: time.Minute,
		Classifier:     taxonomy.NewClassifier(nil),
	}.withDefaults()
	if custom.TemporalWindow != time.Minute {
		t.Error("explicit temporal window overridden")
	}
}
