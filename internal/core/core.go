// Package core implements the LogDiver pipeline: ingesting the three raw
// archives (workload accounting, ALPS application logs, syslog error logs),
// classifying and coalescing error records, joining errors to application
// runs, and attributing every run's outcome. This is the orchestration layer
// the study's measurements flow through; the statistical post-processing
// lives in internal/metrics.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/coalesce"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// Archives bundles the three raw log sources of the study.
type Archives struct {
	// Accounting is the Torque-style job accounting archive.
	Accounting io.Reader
	// Apsys is the ALPS application log (syslog lines with the apsys tag).
	Apsys io.Reader
	// Syslog is the system error log archive.
	Syslog io.Reader
	// Location interprets accounting timestamps (UTC when nil).
	Location *time.Location
}

// Options tunes the pipeline. The zero value selects the study defaults.
type Options struct {
	// Correlate configures the attribution join. Zero value: defaults.
	Correlate correlate.Config
	// TemporalWindow and SpatialWindow configure coalescing; zero values
	// select the package defaults.
	TemporalWindow time.Duration
	SpatialWindow  time.Duration
	// Classifier overrides the default taxonomy classifier. The classifier
	// is shared by the ingestion workers and must be safe for concurrent
	// use; taxonomy.Classifier is (see its doc), and custom implementations
	// built from NewClassifier inherit that property.
	Classifier *taxonomy.Classifier
	// Parallelism bounds the worker count of every parallel stage: the
	// streaming ingestion workers that parse and classify each archive
	// (Analyze splits the three archives into line-aligned blocks and fans
	// them out) as well as the attribution workers of the join. Values <= 0
	// (including negatives) select runtime.GOMAXPROCS(0); 1 forces the
	// fully sequential ingestion path. Parallel and sequential ingestion
	// produce identical Results.
	Parallelism int
	// ParseMode selects the malformed-input policy. Lenient (the zero
	// value) skips unparseable lines while accounting them — per-kind
	// counters plus first-N provenance samples in ParseStats, identical
	// between sequential and parallel ingestion. Strict fails fast: the
	// first malformed line surfaces as a typed *parse.Error carrying the
	// archive name and line number.
	ParseMode parse.Mode
}

func (o Options) withDefaults() Options {
	if o.Correlate.EvidenceWindow == 0 && o.Correlate.PostWindow == 0 {
		jobs := o.Correlate.Jobs
		temporal := o.Correlate.TemporalOnly
		o.Correlate = correlate.DefaultConfig()
		o.Correlate.Jobs = jobs
		o.Correlate.TemporalOnly = temporal
	}
	if o.TemporalWindow == 0 {
		o.TemporalWindow = coalesce.DefaultTemporalWindow
	}
	if o.SpatialWindow == 0 {
		o.SpatialWindow = coalesce.DefaultSpatialWindow
	}
	if o.Classifier == nil {
		o.Classifier = taxonomy.Default()
	}
	if o.Parallelism <= 0 {
		// Negative values are treated as "unset" rather than rejected: the
		// zero value must stay usable and a negative worker count has no
		// other sensible meaning.
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Archive names used in parse errors and malformed-line samples.
const (
	ArchiveAccounting = "accounting"
	ArchiveApsys      = "apsys"
	ArchiveSyslog     = "syslog"
)

// ParseStats reports archive hygiene: how much of the raw input was usable.
// The malformed totals are derived from the per-archive detail (typed
// per-kind counters with first-N line/offset provenance) and are identical
// between sequential and parallel ingestion. ParseStats is comparable with
// ==; the serial/parallel differential tests rely on that.
type ParseStats struct {
	// AccountingRecords and AccountingMalformed count accounting lines.
	AccountingRecords, AccountingMalformed int
	// ApsysLines and ApsysMalformed count ALPS log lines (the malformed
	// total includes both syslog-level and apsys-message-level failures);
	// OpenRuns and UnmatchedExits count pairing anomalies.
	ApsysLines, ApsysMalformed int
	OpenRuns, UnmatchedExits   int
	// DuplicateStarts counts apsys Starting records skipped because the
	// apid was already open — corrupted archives echo writer buffers;
	// lenient ingestion tolerates and accounts the echo.
	DuplicateStarts int
	// ClampedRuns counts apsys Finishing records stamped before their
	// Starting (clock skew) whose end time was clamped to the start,
	// yielding a zero-duration run instead of a negative one.
	ClampedRuns int
	// SyslogLines and SyslogMalformed count error-log lines;
	// Unclassified counts parsed lines no taxonomy rule matched.
	SyslogLines, SyslogMalformed int
	Unclassified                 int
	// AccountingDetail, ApsysDetail and SyslogDetail break the malformed
	// totals down by kind (structure, timestamp, field, encoding,
	// oversize) and retain the first parse.MaxSamples offending lines per
	// archive with line-number provenance.
	AccountingDetail, ApsysDetail, SyslogDetail parse.LineStats
}

// ArchiveHygiene is the per-archive view of ParseStats: how much of one
// raw log source was usable, with the malformed lines broken down by kind.
// It is the shape both the logdiverd /v1/health endpoint and the
// `logdiver analyze` hygiene summary render, so corruption tolerance is
// observable online and offline in the same vocabulary.
type ArchiveHygiene struct {
	// Archive names the log source ("accounting", "apsys", "syslog").
	Archive string `json:"archive"`
	// Lines counts the well-formed lines or records consumed.
	Lines int `json:"lines"`
	// Malformed totals the skipped lines; the Kind* fields break it down.
	Malformed     int `json:"malformed"`
	KindStructure int `json:"kind_structure"`
	KindTimestamp int `json:"kind_timestamp"`
	KindField     int `json:"kind_field"`
	KindEncoding  int `json:"kind_encoding"`
	KindOversize  int `json:"kind_oversize"`
	// Unclassified counts parsed syslog lines no taxonomy rule matched.
	Unclassified int `json:"unclassified,omitempty"`
	// Apsys pairing anomalies (zero for the other archives).
	OpenRuns        int `json:"open_runs,omitempty"`
	UnmatchedExits  int `json:"unmatched_exits,omitempty"`
	DuplicateStarts int `json:"duplicate_starts,omitempty"`
	ClampedRuns     int `json:"clamped_runs,omitempty"`
}

// String renders one hygiene row for text output.
func (h ArchiveHygiene) String() string {
	s := fmt.Sprintf("%s: %d lines, %d malformed (structure %d, timestamp %d, field %d, encoding %d, oversize %d)",
		h.Archive, h.Lines, h.Malformed,
		h.KindStructure, h.KindTimestamp, h.KindField, h.KindEncoding, h.KindOversize)
	if h.Archive == ArchiveApsys {
		s += fmt.Sprintf("; runs open %d, unmatched exits %d, duplicate starts %d, clamped %d",
			h.OpenRuns, h.UnmatchedExits, h.DuplicateStarts, h.ClampedRuns)
	}
	if h.Archive == ArchiveSyslog {
		s += fmt.Sprintf("; unclassified %d", h.Unclassified)
	}
	return s
}

// Hygiene breaks the parse stats down per archive in fixed order
// (accounting, apsys, syslog).
func (s ParseStats) Hygiene() []ArchiveHygiene {
	row := func(archive string, lines int, d parse.LineStats) ArchiveHygiene {
		return ArchiveHygiene{
			Archive:       archive,
			Lines:         lines,
			Malformed:     d.Malformed(),
			KindStructure: d.Kinds.Structure,
			KindTimestamp: d.Kinds.Timestamp,
			KindField:     d.Kinds.Field,
			KindEncoding:  d.Kinds.Encoding,
			KindOversize:  d.Kinds.Oversize,
		}
	}
	acc := row(ArchiveAccounting, s.AccountingRecords, s.AccountingDetail)
	aps := row(ArchiveApsys, s.ApsysLines, s.ApsysDetail)
	aps.OpenRuns = s.OpenRuns
	aps.UnmatchedExits = s.UnmatchedExits
	aps.DuplicateStarts = s.DuplicateStarts
	aps.ClampedRuns = s.ClampedRuns
	sys := row(ArchiveSyslog, s.SyslogLines, s.SyslogDetail)
	sys.Unclassified = s.Unclassified
	return []ArchiveHygiene{acc, aps, sys}
}

// Result is the complete pipeline output.
type Result struct {
	// Jobs are the assembled batch jobs, sorted by start time.
	Jobs []wlm.Job
	// Runs are the attributed application runs, in start order.
	Runs []correlate.AttributedRun
	// Events are the classified error events (deduplicated, time order).
	Events []errlog.Event
	// Tuples and Groups are the coalesced error episodes and
	// machine-level events.
	Tuples []coalesce.Tuple
	Groups []coalesce.Group
	// Coalesce reports the raw-to-group reduction.
	Coalesce coalesce.Stats
	// Parse reports archive hygiene.
	Parse ParseStats
	// Start and End bound the observed activity (earliest run start,
	// latest run end; zero when there are no runs).
	Start, End time.Time
}

// Analyze runs the full pipeline over raw archives. With Parallelism > 1
// (the default resolves to GOMAXPROCS) the three archives are ingested
// concurrently by the parallel streaming layer in ingest.go; Parallelism ==
// 1 selects the sequential reference path. Both paths produce identical
// Results.
func Analyze(a Archives, top *machine.Topology, opts Options) (*Result, error) {
	if top == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	opts = opts.withDefaults()
	res := &Result{}

	if opts.Parallelism > 1 {
		jobs, runs, events, stats, err := ingestParallel(a, top, opts)
		if err != nil {
			return nil, err
		}
		res.Jobs = jobs
		res.Parse = stats
		return finish(res, runs, events, top, opts)
	}

	jobs, err := readAccounting(a, res, opts.ParseMode)
	if err != nil {
		return nil, err
	}
	res.Jobs = jobs

	runs, err := readApsys(a, res, opts.ParseMode)
	if err != nil {
		return nil, err
	}

	events, err := readSyslog(a, top, opts.Classifier, res, opts.ParseMode)
	if err != nil {
		return nil, err
	}

	return finish(res, runs, events, top, opts)
}

// AnalyzeParsed runs the pipeline over already-parsed inputs (the in-memory
// path used by experiments that skip archive serialization).
func AnalyzeParsed(jobs []wlm.Job, runs []alps.AppRun, events []errlog.Event, top *machine.Topology, opts Options) (*Result, error) {
	if top == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	opts = opts.withDefaults()
	res := &Result{Jobs: jobs}
	return finish(res, runs, events, top, opts)
}

func finish(res *Result, runs []alps.AppRun, events []errlog.Event, top *machine.Topology, opts Options) (*Result, error) {
	workers := opts.Parallelism
	// Preprocess: dedup then coalesce. Attribution uses the deduplicated
	// event stream; the tuples/groups feed the coalescing experiments.
	deduped := coalesce.Dedup(events)
	res.Events = deduped
	res.Tuples = coalesce.Tuples(deduped, opts.TemporalWindow)
	res.Groups = coalesce.Spatial(res.Tuples, opts.SpatialWindow)
	res.Coalesce = coalesce.Stats{
		Raw:     len(events),
		Deduped: len(deduped),
		Tuples:  len(res.Tuples),
		Groups:  len(res.Groups),
	}

	// Join.
	cfg := opts.Correlate
	if cfg.Jobs == nil && len(res.Jobs) > 0 {
		cfg.Jobs = make(map[string]wlm.Job, len(res.Jobs))
		for _, j := range res.Jobs {
			cfg.Jobs[j.ID] = j
		}
	}
	corr, err := correlate.New(interval.NewIndex(deduped), top, cfg)
	if err != nil {
		return nil, err
	}
	res.Runs = corr.AttributeAllParallel(runs, workers)

	for _, r := range res.Runs {
		if res.Start.IsZero() || r.Start.Before(res.Start) {
			res.Start = r.Start
		}
		if r.End.After(res.End) {
			res.End = r.End
		}
	}
	return res, nil
}

// archiveErr stamps the archive name onto typed parse errors and wraps err
// with the pipeline prefix, so strict-mode failures read
// "core: apsys: line 42: ..." (the parse.Error renders its own archive name;
// other errors get the name from the wrap).
func archiveErr(archive string, err error) error {
	var pe *parse.Error
	if errors.As(err, &pe) {
		pe.Archive = archive
		return fmt.Errorf("core: %w", err)
	}
	return fmt.Errorf("core: %s: %w", archive, err)
}

func readAccounting(a Archives, res *Result, mode parse.Mode) ([]wlm.Job, error) {
	if a.Accounting == nil {
		return nil, nil
	}
	lr := parse.NewLineReader(a.Accounting)
	asm := wlm.NewAssembler()
	var stats parse.LineStats
	for {
		raw, no, ok := lr.NextBytes()
		if !ok {
			break
		}
		rec, skip, perr := wlm.CheckLineBytes(raw, a.Location)
		if skip {
			continue
		}
		if perr != nil {
			perr.Line = no
			if mode == parse.Strict {
				return nil, archiveErr(ArchiveAccounting, perr)
			}
			stats.Record(perr)
			continue
		}
		res.Parse.AccountingRecords++
		if err := asm.AddScan(rec); err != nil {
			return nil, archiveErr(ArchiveAccounting, err)
		}
	}
	if err := lr.Err(); err != nil {
		return nil, archiveErr(ArchiveAccounting, err)
	}
	res.Parse.AccountingDetail = stats
	res.Parse.AccountingDetail.SetArchive(ArchiveAccounting)
	res.Parse.AccountingMalformed = res.Parse.AccountingDetail.Malformed()
	return asm.Jobs(), nil
}

// apsysMsg is one parsed apsys message with its syslog timestamp.
type apsysMsg struct {
	at  time.Time
	msg alps.Message
}

// checkApsysLine applies the full per-line semantics of the apsys archive,
// shared by the sequential reader and the parallel block workers so the two
// paths cannot drift: the syslog layer first (blank lines skip, malformed
// lines yield a typed error), then the apsys message layer for lines with
// the apsys tag. counted reports whether the line counts toward ApsysLines
// (the syslog layer parsed — including lines whose apsys message is
// malformed); haveMsg reports whether msg holds a parsed message to feed the
// assembler. Any returned error carries the archive line number no.
func checkApsysLine(text string, no int) (msg apsysMsg, counted, haveMsg bool, perr *parse.Error) {
	line, skip, perr := syslogx.CheckLine(text)
	if skip {
		return apsysMsg{}, false, false, nil
	}
	if perr != nil {
		perr.Line = no
		return apsysMsg{}, false, false, perr
	}
	if line.Tag != alps.Tag {
		return apsysMsg{}, true, false, nil
	}
	m, err := alps.ParseMessage(line.Message)
	if err != nil {
		var pe *parse.Error
		if !errors.As(err, &pe) {
			pe = parse.Errorf(parse.KindStructure, line.Message, "%s", err.Error())
		}
		pe.Line = no
		return apsysMsg{}, true, false, pe
	}
	return apsysMsg{at: line.Time, msg: m}, true, true, nil
}

// apsysTagBytes is alps.Tag for byte-view comparison on the hot path.
var apsysTagBytes = []byte(alps.Tag)

// checkApsysLineBytes is checkApsysLine on the byte-view fast path: the
// syslog layer via syslogx.CheckLineBytes, then alps.ParseMessageBytes for
// lines with the apsys tag, with identical skip/counted/error semantics.
// The returned view aliases raw; callers must fold it (AddView copies what
// it retains) before the buffer is reused.
//
//ldvet:pooled
//ldvet:hotpath
func checkApsysLineBytes(raw []byte, no int) (at time.Time, v alps.MessageView, counted, haveMsg bool, perr *parse.Error) {
	lv, skip, perr := syslogx.CheckLineBytes(raw)
	if skip {
		return time.Time{}, alps.MessageView{}, false, false, nil
	}
	if perr != nil {
		perr.Line = no
		return time.Time{}, alps.MessageView{}, false, false, perr
	}
	if !bytes.Equal(lv.Tag, apsysTagBytes) {
		return time.Time{}, alps.MessageView{}, true, false, nil
	}
	m, merr := alps.ParseMessageBytes(lv.Msg)
	if merr != nil {
		merr.Line = no
		return time.Time{}, alps.MessageView{}, true, false, merr
	}
	return lv.Time, m, true, true, nil
}

func readApsys(a Archives, res *Result, mode parse.Mode) ([]alps.AppRun, error) {
	if a.Apsys == nil {
		return nil, nil
	}
	lr := parse.NewLineReader(a.Apsys)
	asm := alps.NewAssembler()
	asm.SetLenient(mode == parse.Lenient)
	var stats parse.LineStats
	for {
		raw, no, ok := lr.NextBytes()
		if !ok {
			break
		}
		at, v, counted, haveMsg, perr := checkApsysLineBytes(raw, no)
		if counted {
			res.Parse.ApsysLines++
		}
		if perr != nil {
			if mode == parse.Strict {
				return nil, archiveErr(ArchiveApsys, perr)
			}
			stats.Record(perr)
			continue
		}
		if !haveMsg {
			continue
		}
		if err := asm.AddView(at, v); err != nil {
			return nil, archiveErr(ArchiveApsys, err)
		}
	}
	if err := lr.Err(); err != nil {
		return nil, archiveErr(ArchiveApsys, err)
	}
	res.Parse.ApsysDetail = stats
	res.Parse.ApsysDetail.SetArchive(ArchiveApsys)
	res.Parse.ApsysMalformed = res.Parse.ApsysDetail.Malformed()
	res.Parse.OpenRuns = asm.Open()
	res.Parse.UnmatchedExits = asm.Unmatched()
	res.Parse.DuplicateStarts = asm.Duplicates()
	res.Parse.ClampedRuns = asm.ClampedEnds()
	return asm.Runs(), nil
}

func readSyslog(a Archives, top *machine.Topology, cls *taxonomy.Classifier, res *Result, mode parse.Mode) ([]errlog.Event, error) {
	if a.Syslog == nil {
		return nil, nil
	}
	lr := parse.NewLineReader(a.Syslog)
	hc := errlog.NewHostCache()
	var batch errlog.EventBatch
	var stats parse.LineStats
	for {
		raw, no, ok := lr.NextBytes()
		if !ok {
			break
		}
		v, skip, perr := syslogx.CheckLineBytes(raw)
		if skip {
			continue
		}
		if perr != nil {
			perr.Line = no
			if mode == parse.Strict {
				return nil, archiveErr(ArchiveSyslog, perr)
			}
			stats.Record(perr)
			continue
		}
		res.Parse.SyslogLines++
		cat, sev := cls.ClassifyBytes(v.Msg)
		if cat == taxonomy.Unclassified {
			res.Parse.Unclassified++
			continue
		}
		node, cname := hc.Resolve(v.Host, top)
		batch.Append(errlog.Event{Time: v.Time, Node: node, Cname: cname, Category: cat, Severity: sev}, v.Msg)
	}
	if err := lr.Err(); err != nil {
		return nil, archiveErr(ArchiveSyslog, err)
	}
	res.Parse.SyslogDetail = stats
	res.Parse.SyslogDetail.SetArchive(ArchiveSyslog)
	res.Parse.SyslogMalformed = res.Parse.SyslogDetail.Malformed()
	return batch.Finish(), nil
}
