// Package core implements the LogDiver pipeline: ingesting the three raw
// archives (workload accounting, ALPS application logs, syslog error logs),
// classifying and coalescing error records, joining errors to application
// runs, and attributing every run's outcome. This is the orchestration layer
// the study's measurements flow through; the statistical post-processing
// lives in internal/metrics.
package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/coalesce"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/wlm"
)

// Archives bundles the three raw log sources of the study.
type Archives struct {
	// Accounting is the Torque-style job accounting archive.
	Accounting io.Reader
	// Apsys is the ALPS application log (syslog lines with the apsys tag).
	Apsys io.Reader
	// Syslog is the system error log archive.
	Syslog io.Reader
	// Location interprets accounting timestamps (UTC when nil).
	Location *time.Location
}

// Options tunes the pipeline. The zero value selects the study defaults.
type Options struct {
	// Correlate configures the attribution join. Zero value: defaults.
	Correlate correlate.Config
	// TemporalWindow and SpatialWindow configure coalescing; zero values
	// select the package defaults.
	TemporalWindow time.Duration
	SpatialWindow  time.Duration
	// Classifier overrides the default taxonomy classifier. The classifier
	// is shared by the ingestion workers and must be safe for concurrent
	// use; taxonomy.Classifier is (see its doc), and custom implementations
	// built from NewClassifier inherit that property.
	Classifier *taxonomy.Classifier
	// Parallelism bounds the worker count of every parallel stage: the
	// streaming ingestion workers that parse and classify each archive
	// (Analyze splits the three archives into line-aligned blocks and fans
	// them out) as well as the attribution workers of the join. Values <= 0
	// (including negatives) select runtime.GOMAXPROCS(0); 1 forces the
	// fully sequential ingestion path. Parallel and sequential ingestion
	// produce identical Results.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Correlate.EvidenceWindow == 0 && o.Correlate.PostWindow == 0 {
		jobs := o.Correlate.Jobs
		temporal := o.Correlate.TemporalOnly
		o.Correlate = correlate.DefaultConfig()
		o.Correlate.Jobs = jobs
		o.Correlate.TemporalOnly = temporal
	}
	if o.TemporalWindow == 0 {
		o.TemporalWindow = coalesce.DefaultTemporalWindow
	}
	if o.SpatialWindow == 0 {
		o.SpatialWindow = coalesce.DefaultSpatialWindow
	}
	if o.Classifier == nil {
		o.Classifier = taxonomy.Default()
	}
	if o.Parallelism <= 0 {
		// Negative values are treated as "unset" rather than rejected: the
		// zero value must stay usable and a negative worker count has no
		// other sensible meaning.
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// ParseStats reports archive hygiene: how much of the raw input was usable.
type ParseStats struct {
	// AccountingRecords and AccountingMalformed count accounting lines.
	AccountingRecords, AccountingMalformed int
	// ApsysLines and ApsysMalformed count ALPS log lines; OpenRuns and
	// UnmatchedExits count pairing anomalies.
	ApsysLines, ApsysMalformed int
	OpenRuns, UnmatchedExits   int
	// SyslogLines and SyslogMalformed count error-log lines;
	// Unclassified counts parsed lines no taxonomy rule matched.
	SyslogLines, SyslogMalformed int
	Unclassified                 int
}

// Result is the complete pipeline output.
type Result struct {
	// Jobs are the assembled batch jobs, sorted by start time.
	Jobs []wlm.Job
	// Runs are the attributed application runs, in start order.
	Runs []correlate.AttributedRun
	// Events are the classified error events (deduplicated, time order).
	Events []errlog.Event
	// Tuples and Groups are the coalesced error episodes and
	// machine-level events.
	Tuples []coalesce.Tuple
	Groups []coalesce.Group
	// Coalesce reports the raw-to-group reduction.
	Coalesce coalesce.Stats
	// Parse reports archive hygiene.
	Parse ParseStats
	// Start and End bound the observed activity (earliest run start,
	// latest run end; zero when there are no runs).
	Start, End time.Time
}

// Analyze runs the full pipeline over raw archives. With Parallelism > 1
// (the default resolves to GOMAXPROCS) the three archives are ingested
// concurrently by the parallel streaming layer in ingest.go; Parallelism ==
// 1 selects the sequential reference path. Both paths produce identical
// Results.
func Analyze(a Archives, top *machine.Topology, opts Options) (*Result, error) {
	if top == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	opts = opts.withDefaults()
	res := &Result{}

	if opts.Parallelism > 1 {
		jobs, runs, events, stats, err := ingestParallel(a, top, opts)
		if err != nil {
			return nil, err
		}
		res.Jobs = jobs
		res.Parse = stats
		return finish(res, runs, events, top, opts)
	}

	jobs, err := readAccounting(a, res)
	if err != nil {
		return nil, err
	}
	res.Jobs = jobs

	runs, err := readApsys(a, res)
	if err != nil {
		return nil, err
	}

	events, err := readSyslog(a, top, opts.Classifier, res)
	if err != nil {
		return nil, err
	}

	return finish(res, runs, events, top, opts)
}

// AnalyzeParsed runs the pipeline over already-parsed inputs (the in-memory
// path used by experiments that skip archive serialization).
func AnalyzeParsed(jobs []wlm.Job, runs []alps.AppRun, events []errlog.Event, top *machine.Topology, opts Options) (*Result, error) {
	if top == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	opts = opts.withDefaults()
	res := &Result{Jobs: jobs}
	return finish(res, runs, events, top, opts)
}

func finish(res *Result, runs []alps.AppRun, events []errlog.Event, top *machine.Topology, opts Options) (*Result, error) {
	workers := opts.Parallelism
	// Preprocess: dedup then coalesce. Attribution uses the deduplicated
	// event stream; the tuples/groups feed the coalescing experiments.
	deduped := coalesce.Dedup(events)
	res.Events = deduped
	res.Tuples = coalesce.Tuples(deduped, opts.TemporalWindow)
	res.Groups = coalesce.Spatial(res.Tuples, opts.SpatialWindow)
	res.Coalesce = coalesce.Stats{
		Raw:     len(events),
		Deduped: len(deduped),
		Tuples:  len(res.Tuples),
		Groups:  len(res.Groups),
	}

	// Join.
	cfg := opts.Correlate
	if cfg.Jobs == nil && len(res.Jobs) > 0 {
		cfg.Jobs = make(map[string]wlm.Job, len(res.Jobs))
		for _, j := range res.Jobs {
			cfg.Jobs[j.ID] = j
		}
	}
	corr, err := correlate.New(interval.NewIndex(deduped), top, cfg)
	if err != nil {
		return nil, err
	}
	res.Runs = corr.AttributeAllParallel(runs, workers)

	for _, r := range res.Runs {
		if res.Start.IsZero() || r.Start.Before(res.Start) {
			res.Start = r.Start
		}
		if r.End.After(res.End) {
			res.End = r.End
		}
	}
	return res, nil
}

func readAccounting(a Archives, res *Result) ([]wlm.Job, error) {
	if a.Accounting == nil {
		return nil, nil
	}
	sc := wlm.NewScanner(a.Accounting, a.Location)
	asm := wlm.NewAssembler()
	for sc.Scan() {
		res.Parse.AccountingRecords++
		if err := asm.Add(sc.Record()); err != nil {
			return nil, fmt.Errorf("core: accounting: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: accounting: %w", err)
	}
	res.Parse.AccountingMalformed = sc.Malformed()
	return asm.Jobs(), nil
}

func readApsys(a Archives, res *Result) ([]alps.AppRun, error) {
	if a.Apsys == nil {
		return nil, nil
	}
	sc := syslogx.NewScanner(a.Apsys)
	asm := alps.NewAssembler()
	for sc.Scan() {
		line := sc.Line()
		res.Parse.ApsysLines++
		if line.Tag != alps.Tag {
			continue
		}
		m, err := alps.ParseMessage(line.Message)
		if err != nil {
			res.Parse.ApsysMalformed++
			continue
		}
		if err := asm.Add(line.Time, m); err != nil {
			return nil, fmt.Errorf("core: apsys: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: apsys: %w", err)
	}
	res.Parse.ApsysMalformed += sc.Malformed()
	res.Parse.OpenRuns = asm.Open()
	res.Parse.UnmatchedExits = asm.Unmatched()
	return asm.Runs(), nil
}

func readSyslog(a Archives, top *machine.Topology, cls *taxonomy.Classifier, res *Result) ([]errlog.Event, error) {
	if a.Syslog == nil {
		return nil, nil
	}
	sc := syslogx.NewScanner(a.Syslog)
	var events []errlog.Event
	for sc.Scan() {
		line := sc.Line()
		res.Parse.SyslogLines++
		cat, sev := cls.Classify(line.Message)
		if cat == taxonomy.Unclassified {
			res.Parse.Unclassified++
			continue
		}
		node := errlog.SystemWide
		if id, err := top.LookupString(line.Host); err == nil {
			node = id
		}
		events = append(events, errlog.Event{
			Time:     line.Time,
			Node:     node,
			Cname:    line.Host,
			Category: cat,
			Severity: sev,
			Message:  line.Message,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: syslog: %w", err)
	}
	res.Parse.SyslogMalformed = sc.Malformed()
	return events, nil
}
