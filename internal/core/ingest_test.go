package core

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"logdiver/internal/machine"
)

// TestParallelAnalyzeMatchesSerial is the differential equivalence test of
// the parallel streaming ingestion layer: over a multi-day synthesized
// dataset (with injected duplicates and malformed lines), Analyze with
// Parallelism > 1 must produce a Result exactly equal — field for field,
// including every run, event, tuple, group and parse counter — to the
// sequential path. Run it under -race to also certify the worker pool.
func TestParallelAnalyzeMatchesSerial(t *testing.T) {
	ds := testDataset(t)
	serial, err := Analyze(archivesFor(t, ds), ds.Topology, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		parallel, err := Analyze(archivesFor(t, ds), ds.Topology, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		assertResultsEqual(t, serial, parallel, workers)
	}
}

// TestParallelAnalyzeMatchesSerialSmallBlocks re-runs the differential test
// with a tiny ingestion block size so thousands of block boundaries fall in
// the middle of the archives, including inside malformed-line neighborhoods.
func TestParallelAnalyzeMatchesSerialSmallBlocks(t *testing.T) {
	defer func(old int) { ingestBlockSize = old }(ingestBlockSize)
	ingestBlockSize = 256

	ds := testDataset(t)
	serial, err := Analyze(archivesFor(t, ds), ds.Topology, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Analyze(archivesFor(t, ds), ds.Topology, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, serial, parallel, 4)
}

func assertResultsEqual(t *testing.T, serial, parallel *Result, workers int) {
	t.Helper()
	if serial.Parse != parallel.Parse {
		t.Errorf("workers %d: ParseStats differ:\nserial   %+v\nparallel %+v", workers, serial.Parse, parallel.Parse)
	}
	if serial.Coalesce != parallel.Coalesce {
		t.Errorf("workers %d: coalesce stats differ: %+v vs %+v", workers, serial.Coalesce, parallel.Coalesce)
	}
	if len(serial.Jobs) != len(parallel.Jobs) {
		t.Fatalf("workers %d: job counts differ: %d vs %d", workers, len(serial.Jobs), len(parallel.Jobs))
	}
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("workers %d: run counts differ: %d vs %d", workers, len(serial.Runs), len(parallel.Runs))
	}
	if len(serial.Events) != len(parallel.Events) {
		t.Fatalf("workers %d: event counts differ: %d vs %d", workers, len(serial.Events), len(parallel.Events))
	}
	// Pinpoint the first divergence before falling back to the whole-struct
	// comparison, so failures are debuggable.
	for i := range serial.Events {
		if !reflect.DeepEqual(serial.Events[i], parallel.Events[i]) {
			t.Fatalf("workers %d: event %d differs:\nserial   %+v\nparallel %+v",
				workers, i, serial.Events[i], parallel.Events[i])
		}
	}
	for i := range serial.Runs {
		if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
			t.Fatalf("workers %d: run %d differs:\nserial   %+v\nparallel %+v",
				workers, i, serial.Runs[i], parallel.Runs[i])
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers %d: results differ outside runs/events (jobs, tuples, groups or span)", workers)
	}
}

// TestParallelMalformedAccountingAcrossChunks: malformed accounting lines
// interleaved with good records — and block sizes chosen so the malformed
// lines land on and around chunk boundaries — must yield exactly the serial
// ParseStats. This guards the per-chunk malformed counters and the ordered
// merge.
func TestParallelMalformedAccountingAcrossChunks(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	goodRecord := func(i int) string {
		stamp := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute)
		return stamp.Format("01/02/2006 15:04:05") + ";E;job" + strconv.Itoa(i) + ".bw;user=alice Exit_status=0"
	}
	cases := []struct {
		name  string
		lines []string
	}{
		{"malformed-between-every-record", []string{
			goodRecord(1), "corrupt line one", goodRecord(2), "corrupt;two", goodRecord(3),
			"04/01/2013 bad;E;x;user=a", goodRecord(4),
		}},
		{"leading-and-trailing-garbage", []string{
			"### archive header noise", goodRecord(1), goodRecord(2), "truncated 04/0",
		}},
		{"runs-of-malformed", []string{
			goodRecord(1), "bad", "bad", "bad", "bad", "bad", goodRecord(2), "bad", "bad", goodRecord(3),
		}},
		{"blank-lines-and-crlf", []string{
			goodRecord(1) + "\r", "", "   ", goodRecord(2), "notarecord\r", "",
		}},
		{"empty-archive", nil},
		{"only-malformed", []string{"a", "b", "c", "d"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			text := strings.Join(tc.lines, "\n")
			if len(tc.lines) > 0 {
				text += "\n"
			}
			serial, err := Analyze(Archives{Accounting: strings.NewReader(text)}, top, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Sweep block sizes small enough that every line relationship
			// (same block, adjacent blocks, block-per-line) occurs.
			for _, blockSize := range []int{1, 16, 33, 64, 128, 1 << 20} {
				func() {
					defer func(old int) { ingestBlockSize = old }(ingestBlockSize)
					ingestBlockSize = blockSize
					parallel, err := Analyze(Archives{Accounting: strings.NewReader(text)}, top, Options{Parallelism: 4})
					if err != nil {
						t.Fatalf("blockSize %d: %v", blockSize, err)
					}
					if serial.Parse != parallel.Parse {
						t.Errorf("blockSize %d: ParseStats differ:\nserial   %+v\nparallel %+v",
							blockSize, serial.Parse, parallel.Parse)
					}
					if !reflect.DeepEqual(serial.Jobs, parallel.Jobs) {
						t.Errorf("blockSize %d: assembled jobs differ", blockSize)
					}
				}()
			}
		})
	}
}
