package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
)

// splitChunks cuts s into n chunks on line boundaries, roughly equal sized.
// Every chunk ends with a newline except possibly the last.
func splitChunks(s string, n int) [][]byte {
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	chunks := make([][]byte, 0, n)
	per := (len(lines) + n - 1) / n
	for lo := 0; lo < len(lines); lo += per {
		hi := lo + per
		if hi > len(lines) {
			hi = len(lines)
		}
		chunks = append(chunks, []byte(strings.Join(lines[lo:hi], "")))
	}
	for len(chunks) < n {
		chunks = append(chunks, nil)
	}
	return chunks
}

// testArchiveText serializes the shared test dataset to raw text.
func testArchiveText(t *testing.T) (acc, aps, sys string) {
	t.Helper()
	ds := testDataset(t)
	var a, p, s strings.Builder
	if err := ds.WriteAccounting(&a); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&p); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&s); err != nil {
		t.Fatal(err)
	}
	return a.String(), p.String(), s.String()
}

// TestIncrementalMatchesAnalyze is the acceptance differential: after every
// append round, the incremental Result must equal — field for field,
// including ParseStats provenance, coalescing and every attribution — a
// from-scratch Analyze over the concatenated prefix.
func TestIncrementalMatchesAnalyze(t *testing.T) {
	acc, aps, sys := testArchiveText(t)
	ds := testDataset(t)
	const rounds = 4
	accC, apsC, sysC := splitChunks(acc, rounds), splitChunks(aps, rounds), splitChunks(sys, rounds)

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			opts := Options{Parallelism: par}
			inc, err := NewIncremental(ds.Topology, time.UTC, opts)
			if err != nil {
				t.Fatal(err)
			}
			var accPfx, apsPfx, sysPfx strings.Builder
			var totalRedo int
			for r := 0; r < rounds; r++ {
				accPfx.Write(accC[r])
				apsPfx.Write(apsC[r])
				sysPfx.Write(sysC[r])
				if _, err := inc.Append(Delta{Accounting: accC[r], Apsys: apsC[r], Syslog: sysC[r]}); err != nil {
					t.Fatalf("round %d: append: %v", r, err)
				}
				got, err := inc.Result()
				if err != nil {
					t.Fatalf("round %d: result: %v", r, err)
				}
				totalRedo += inc.Reattributed()
				want, err := Analyze(Archives{
					Accounting: strings.NewReader(accPfx.String()),
					Apsys:      strings.NewReader(apsPfx.String()),
					Syslog:     strings.NewReader(sysPfx.String()),
					Location:   time.UTC,
				}, ds.Topology, opts)
				if err != nil {
					t.Fatalf("round %d: analyze: %v", r, err)
				}
				if got.Parse != want.Parse {
					t.Fatalf("round %d: ParseStats diverged:\n got %+v\nwant %+v", r, got.Parse, want.Parse)
				}
				if !reflect.DeepEqual(got, want) {
					diffResult(t, r, got, want)
				}
			}
			// Windowed re-attribution must actually skip settled history:
			// across all rounds it attributes fewer run-attributions than the
			// from-scratch quadratic total would.
			var fromScratch int
			for r := 1; r <= rounds; r++ {
				fromScratch += len(inc.attr) * r / rounds
			}
			if totalRedo >= fromScratch {
				t.Errorf("re-attributed %d runs across rounds, want < %d (no incremental win)", totalRedo, fromScratch)
			}
		})
	}
}

// diffResult reports which Result field diverged, for debuggable failures.
func diffResult(t *testing.T, round int, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Jobs, want.Jobs) {
		t.Fatalf("round %d: Jobs diverged (%d vs %d)", round, len(got.Jobs), len(want.Jobs))
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("round %d: Events diverged (%d vs %d)", round, len(got.Events), len(want.Events))
	}
	if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("round %d: coalescing diverged", round)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("round %d: run counts %d vs %d", round, len(got.Runs), len(want.Runs))
	}
	for i := range got.Runs {
		if !reflect.DeepEqual(got.Runs[i], want.Runs[i]) {
			t.Fatalf("round %d: run %d diverged:\n got %+v\nwant %+v", round, i, got.Runs[i], want.Runs[i])
		}
	}
	t.Fatalf("round %d: Results diverged outside Jobs/Events/Runs", round)
}

// TestIncrementalSingleShot: one append of everything equals Analyze — the
// degenerate case with no carried-over attributions.
func TestIncrementalSingleShot(t *testing.T) {
	acc, aps, sys := testArchiveText(t)
	ds := testDataset(t)
	inc, err := NewIncremental(ds.Topology, time.UTC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := inc.Append(Delta{Accounting: []byte(acc), Apsys: []byte(aps), Syslog: []byte(sys)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events == 0 || st.RunsCompleted == 0 {
		t.Fatalf("append stats empty: %+v", st)
	}
	got, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(archivesFor(t, ds), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		diffResult(t, 0, got, want)
	}
	// A second Result without new data must re-attribute nothing and still
	// return the same answer.
	again, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if inc.Reattributed() != 0 {
		t.Errorf("idle Result re-attributed %d runs, want 0", inc.Reattributed())
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("idle Result diverged")
	}
}

// TestIncrementalEmptyDelta: appending nothing is a no-op.
func TestIncrementalEmptyDelta(t *testing.T) {
	ds := testDataset(t)
	inc, err := NewIncremental(ds.Topology, time.UTC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(Delta{}).Empty() {
		t.Error("zero Delta not Empty")
	}
	if _, err := inc.Append(Delta{}); err != nil {
		t.Fatal(err)
	}
	res, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 0 || len(res.Events) != 0 {
		t.Error("empty delta produced data")
	}
}

// TestIncrementalStrictLineProvenance: a strict-mode failure in a later
// append reports the absolute archive line number, and poisons the
// pipeline for every later call.
func TestIncrementalStrictLineProvenance(t *testing.T) {
	_, aps, _ := testArchiveText(t)
	ds := testDataset(t)
	chunks := splitChunks(aps, 2)
	inc, err := NewIncremental(ds.Topology, time.UTC, Options{ParseMode: parse.Strict})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(Delta{Apsys: chunks[0]}); err != nil {
		t.Fatalf("clean chunk rejected: %v", err)
	}
	bad := append([]byte("this is not a syslog line\n"), chunks[1]...)
	_, err = inc.Append(Delta{Apsys: bad})
	if err == nil {
		t.Fatal("strict mode accepted garbage")
	}
	var pe *parse.Error
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *parse.Error", err)
	}
	wantLine := countLines(chunks[0]) + 1
	if pe.Line != wantLine {
		t.Errorf("error line %d, want absolute line %d", pe.Line, wantLine)
	}
	if pe.Archive != ArchiveApsys {
		t.Errorf("error archive %q, want %q", pe.Archive, ArchiveApsys)
	}
	if _, err2 := inc.Append(Delta{}); !errors.Is(err2, err) && err2 == nil {
		t.Error("poisoned pipeline accepted another append")
	}
	if _, err2 := inc.Result(); err2 == nil {
		t.Error("poisoned pipeline produced a result")
	}
	if inc.Err() == nil {
		t.Error("Err() nil after poisoning")
	}
}

// TestIncrementalLateJobRecord: an accounting record arriving after its
// run completed flips the run to a walltime kill — the dirty-job path.
func TestIncrementalLateJobRecord(t *testing.T) {
	acc, aps, sys := testArchiveText(t)
	ds := testDataset(t)
	inc, err := NewIncremental(ds.Topology, time.UTC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: runs and events only, no accounting.
	if _, err := inc.Append(Delta{Apsys: []byte(aps), Syslog: []byte(sys)}); err != nil {
		t.Fatal(err)
	}
	r1, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: the accounting archive lands late.
	if _, err := inc.Append(Delta{Accounting: []byte(acc)}); err != nil {
		t.Fatal(err)
	}
	r2, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(archivesFor(t, ds), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2, want) {
		diffResult(t, 2, r2, want)
	}
	// The late accounting must have changed something (walltime kills only
	// exist with job records), proving dirty-job re-attribution fired.
	var flipped bool
	for i := range r1.Runs {
		if r1.Runs[i].Outcome != r2.Runs[i].Outcome {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("late accounting changed no attribution; dirty-job path untested")
	}
}
