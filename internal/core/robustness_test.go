package core

// Failure-injection tests: real archives are truncated, reordered and
// corrupted; the pipeline must degrade gracefully and report what it
// skipped rather than abort or silently invent data.

import (
	"strings"
	"testing"

	"logdiver/internal/correlate"
)

// truncate cuts the final fraction of an archive's lines, simulating a
// collection outage at the end of the measurement window.
func truncateLines(s string, keepFraction float64) string {
	lines := strings.Split(s, "\n")
	keep := int(float64(len(lines)) * keepFraction)
	if keep < 1 {
		keep = 1
	}
	return strings.Join(lines[:keep], "\n")
}

func TestTruncatedApsysArchive(t *testing.T) {
	ds := testDataset(t)
	var aps strings.Builder
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	cut := truncateLines(aps.String(), 0.6)
	res, err := Analyze(Archives{Apsys: strings.NewReader(cut)}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("no runs recovered from truncated archive")
	}
	if len(res.Runs) >= len(ds.Runs) {
		t.Errorf("truncation lost nothing? %d vs %d", len(res.Runs), len(ds.Runs))
	}
	// Starts without finishes must be accounted, not silently dropped.
	if res.Parse.OpenRuns == 0 {
		t.Error("truncated archive reported no open runs")
	}
}

func TestApsysArchiveMissingHead(t *testing.T) {
	ds := testDataset(t)
	var aps strings.Builder
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(aps.String(), "\n")
	tail := strings.Join(lines[len(lines)/2:], "\n")
	res, err := Analyze(Archives{Apsys: strings.NewReader(tail)}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Finishing records whose Starting was lost must be counted as
	// unmatched exits.
	if res.Parse.UnmatchedExits == 0 {
		t.Error("no unmatched exits reported for archive missing its head")
	}
}

func TestCorruptedLinesInterleaved(t *testing.T) {
	ds := testDataset(t)
	var aps strings.Builder
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	// Corrupt every 10th line.
	lines := strings.Split(strings.TrimRight(aps.String(), "\n"), "\n")
	var corrupted int
	for i := range lines {
		if i%10 == 3 {
			lines[i] = lines[i][:len(lines[i])/4]
			corrupted++
		}
	}
	res, err := Analyze(Archives{
		Apsys: strings.NewReader(strings.Join(lines, "\n")),
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parse.ApsysMalformed == 0 {
		t.Error("no malformed apsys lines counted")
	}
	if len(res.Runs) == 0 {
		t.Fatal("corruption destroyed everything")
	}
	// At least the runs whose both records survived must be recovered:
	// corrupting 10% of lines can kill at most ~20% of runs.
	if float64(len(res.Runs)) < 0.7*float64(len(ds.Runs)) {
		t.Errorf("recovered only %d of %d runs", len(res.Runs), len(ds.Runs))
	}
}

func TestSyslogWithForeignNoise(t *testing.T) {
	ds := testDataset(t)
	var sys strings.Builder
	if err := ds.WriteErrorLog(&sys); err != nil {
		t.Fatal(err)
	}
	// Interleave foreign-but-well-formed lines (chatter from daemons the
	// taxonomy does not know). They must parse, fail classification, be
	// counted, and not influence attribution.
	noise := "2013-04-01T10:00:00.000000Z c0-0c1s0n1 ntpd: clock step 0.3s\n"
	input := noise + sys.String() + noise + noise
	res, err := Analyze(Archives{Syslog: strings.NewReader(input)}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parse.Unclassified != 3 {
		t.Errorf("Unclassified = %d, want 3", res.Parse.Unclassified)
	}
}

func TestWindowsLineEndings(t *testing.T) {
	ds := testDataset(t)
	var aps strings.Builder
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(aps.String(), "\n", "\r\n")
	res, err := Analyze(Archives{Apsys: strings.NewReader(crlf)}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(ds.Runs) {
		t.Errorf("CRLF archive recovered %d of %d runs", len(res.Runs), len(ds.Runs))
	}
}

func TestAttributionStableUnderEventReordering(t *testing.T) {
	// The pipeline must not depend on archive line order: shuffle the
	// syslog archive and verify identical attribution.
	ds := testDataset(t)
	var aps, sys strings.Builder
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&sys); err != nil {
		t.Fatal(err)
	}
	straight, err := Analyze(Archives{
		Apsys:  strings.NewReader(aps.String()),
		Syslog: strings.NewReader(sys.String()),
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(sys.String(), "\n"), "\n")
	// Deterministic reversal is as good as a shuffle for order independence.
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	reversed, err := Analyze(Archives{
		Apsys:  strings.NewReader(aps.String()),
		Syslog: strings.NewReader(strings.Join(lines, "\n")),
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(straight.Runs) != len(reversed.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(straight.Runs), len(reversed.Runs))
	}
	for i := range straight.Runs {
		a, b := straight.Runs[i], reversed.Runs[i]
		if a.ApID != b.ApID || a.Outcome != b.Outcome {
			t.Fatalf("apid %d: outcome %v vs %v under reordering", a.ApID, a.Outcome, b.Outcome)
		}
	}
}

func TestJobsFeedWalltimeDetection(t *testing.T) {
	// With the accounting archive present, walltime kills are separated
	// from user failures; without it they fold into USER.
	ds := testDataset(t)
	var acc, aps strings.Builder
	if err := ds.WriteAccounting(&acc); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	with, err := Analyze(Archives{
		Accounting: strings.NewReader(acc.String()),
		Apsys:      strings.NewReader(aps.String()),
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Analyze(Archives{
		Apsys: strings.NewReader(aps.String()),
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := func(res *Result, o correlate.Outcome) int {
		var n int
		for _, r := range res.Runs {
			if r.Outcome == o {
				n++
			}
		}
		return n
	}
	if count(with, correlate.OutcomeWalltime) == 0 {
		t.Error("no walltime kills detected with accounting data")
	}
	if count(without, correlate.OutcomeWalltime) != 0 {
		t.Error("walltime kills detected without accounting data")
	}
	// Totals are conserved: the walltime runs became USER.
	failedWith := count(with, correlate.OutcomeWalltime) + count(with, correlate.OutcomeUserFailure)
	failedWithout := count(without, correlate.OutcomeUserFailure)
	if failedWith != failedWithout {
		t.Errorf("user+walltime %d != user-only %d", failedWith, failedWithout)
	}
}
