package core

// Durable-state export/restore for the incremental pipeline. The state is a
// plain data struct (exported fields, no function values, no unexported
// cycles) so internal/persist can serialize it; configuration — topology,
// location, Options including the classifier — is deliberately NOT part of
// the state. The restoring process supplies its own configuration and the
// persistence layer fingerprints it, so a state file can never smuggle a
// different taxonomy or parse policy into a restarted daemon.

import (
	"fmt"
	"sort"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/wlm"
)

// IncrementalState is the serializable resume state of an Incremental: the
// two assemblers' half-open records, the classified event stream, cumulative
// parse stats with absolute line provenance, the per-archive line bases, and
// the attribution carry (attr + dirty-job/min-new window bookkeeping).
// Restoring it and appending a delta is equivalent to having appended the
// same delta to the original pipeline.
type IncrementalState struct {
	// Jobs is the accounting assembler's job table (wlm.Assembler.State).
	Jobs []wlm.Job
	// Alps is the apsys assembler state, including completion order.
	Alps alps.AssemblerState
	// Events is the classified event stream in append order (pre-dedup).
	Events []errlog.Event
	// Stats is the cumulative ParseStats across all appends.
	Stats ParseStats
	// LineBase holds raw lines consumed per archive, in the fixed order
	// accounting, apsys, syslog; it keeps restored provenance absolute.
	LineBase [3]int
	// Attr is the attribution of the last Result call, mirroring
	// Alps.Done's completion order (len(Attr) <= len(Alps.Done)).
	Attr []correlate.AttributedRun
	// DirtyJobs, MinNew and HaveNew carry the re-attribution window of
	// appends not yet folded into a Result (normally empty: the daemon
	// persists after sync rounds, which always materialize a Result).
	DirtyJobs []string
	MinNew    time.Time
	HaveNew   bool
	// LastRedo is the re-attribution count of the last Result.
	LastRedo int
}

// State exports the pipeline for persistence. A poisoned pipeline (failed
// strict-mode append) has no resumable state and returns its error: the
// archive position of the failure is unrecoverable, so persisting it would
// checkpoint a pipeline that can never make progress.
func (inc *Incremental) State() (*IncrementalState, error) {
	if inc.err != nil {
		return nil, fmt.Errorf("core: cannot persist poisoned pipeline: %w", inc.err)
	}
	st := &IncrementalState{
		Jobs:     inc.wlmAsm.State(),
		Alps:     inc.alpsAsm.State(),
		Events:   append([]errlog.Event(nil), inc.events...),
		Stats:    inc.stats,
		LineBase: inc.lineBase,
		Attr:     append([]correlate.AttributedRun(nil), inc.attr...),
		MinNew:   inc.minNew,
		HaveNew:  inc.haveNew,
		LastRedo: inc.lastRedo,
	}
	if len(inc.dirtyJobs) > 0 {
		st.DirtyJobs = make([]string, 0, len(inc.dirtyJobs))
		for id := range inc.dirtyJobs {
			st.DirtyJobs = append(st.DirtyJobs, id)
		}
		sort.Strings(st.DirtyJobs)
	}
	return st, nil
}

// RestoreIncremental rebuilds a pipeline from a persisted state under the
// caller's configuration (same semantics as NewIncremental). Structural
// invariants are validated — attribution cannot outrun completion, line
// bases cannot be negative — so a corrupt state surfaces here instead of as
// skewed analysis output.
func RestoreIncremental(top *machine.Topology, loc *time.Location, opts Options, st *IncrementalState) (*Incremental, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil incremental state")
	}
	inc, err := NewIncremental(top, loc, opts)
	if err != nil {
		return nil, err
	}
	if len(st.Attr) > len(st.Alps.Done) {
		return nil, fmt.Errorf("core: restore: %d attributions for %d completed runs", len(st.Attr), len(st.Alps.Done))
	}
	for i, b := range st.LineBase {
		if b < 0 {
			return nil, fmt.Errorf("core: restore: negative line base %d for archive %d", b, i)
		}
	}
	wlmAsm, err := wlm.RestoreAssembler(st.Jobs)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	alpsAsm, err := alps.RestoreAssembler(st.Alps)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	alpsAsm.SetLenient(inc.opts.ParseMode == parse.Lenient)
	inc.wlmAsm = wlmAsm
	inc.alpsAsm = alpsAsm
	inc.events = append([]errlog.Event(nil), st.Events...)
	inc.stats = st.Stats
	inc.lineBase = st.LineBase
	inc.attr = append([]correlate.AttributedRun(nil), st.Attr...)
	for _, id := range st.DirtyJobs {
		inc.dirtyJobs[id] = struct{}{}
	}
	inc.minNew = st.MinNew
	inc.haveNew = st.HaveNew
	inc.lastRedo = st.LastRedo
	return inc, nil
}
