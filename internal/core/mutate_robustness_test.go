package core

// The corruption-tolerance suite: the deterministic mutation engine
// (internal/mutate) corrupts the synthesized archives under a seeded,
// budgeted configuration, and the tests pin down three properties of
// lenient ingestion — it never fails, it degrades within a budget-derived
// envelope, and its malformed-line accounting reconciles exactly with what
// the manifest says was injected — plus strict mode's fail-fast contract.
// Every property is checked differentially against the parallel path, so
// corruption cannot open a gap between the two ingestion layers.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/mutate"
	"logdiver/internal/parse"
	"logdiver/internal/syslogx"
	"logdiver/internal/wlm"
)

// archiveText serializes the test dataset into raw archive strings, the
// form the mutation engine operates on.
func archiveText(t *testing.T, ds *gen.Dataset) (acc, aps, sys string) {
	t.Helper()
	var a, p, s strings.Builder
	if err := ds.WriteAccounting(&a); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&p); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&s); err != nil {
		t.Fatal(err)
	}
	return a.String(), p.String(), s.String()
}

func archivesOf(acc, aps, sys string) Archives {
	return Archives{
		Accounting: strings.NewReader(acc),
		Apsys:      strings.NewReader(aps),
		Syslog:     strings.NewReader(sys),
		Location:   time.UTC,
	}
}

// Per-archive line checkers: the same authoritative acceptance functions
// the pipeline itself uses, exposed as one closure shape for the reference
// scan and the manifest reconciliation below.
func accCheck(line string, no int) *parse.Error {
	_, skip, perr := wlm.CheckLine(line, time.UTC)
	if skip || perr == nil {
		return nil
	}
	perr.Line = no
	return perr
}

func apsCheck(line string, no int) *parse.Error {
	_, _, _, perr := checkApsysLine(line, no)
	return perr
}

func sysCheck(line string, no int) *parse.Error {
	_, skip, perr := syslogx.CheckLine(line)
	if skip || perr == nil {
		return nil
	}
	perr.Line = no
	return perr
}

// referenceStats independently re-derives an archive's malformed-line
// accounting with a plain sequential scan over the authoritative per-line
// checker — no Scanner, no block machinery — to serve as the oracle the
// pipeline's ParseStats must match exactly.
func referenceStats(text, archive string, check func(string, int) *parse.Error) parse.LineStats {
	var st parse.LineStats
	lr := parse.NewLineReader(strings.NewReader(text))
	for {
		line, no, ok := lr.Next()
		if !ok {
			break
		}
		if perr := check(line, no); perr != nil {
			st.Record(perr)
		}
	}
	st.SetArchive(archive)
	return st
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimSuffix(s, "\n"), "\n")
}

// mutateAll corrupts all three archives under one config (independent seeds
// per archive so victims differ).
func mutateAll(acc, aps, sys string, cfg mutate.Config) (macc, maps, msys string, man [3]*mutate.Manifest) {
	accB, accM := mutate.Apply([]byte(acc), cfg)
	cfg.Seed++
	apsB, apsM := mutate.Apply([]byte(aps), cfg)
	cfg.Seed++
	sysB, sysM := mutate.Apply([]byte(sys), cfg)
	return string(accB), string(apsB), string(sysB), [3]*mutate.Manifest{accM, apsM, sysM}
}

// TestMutatedArchivesLenientNeverFail sweeps corruption seeds and budgets
// over all operators: lenient Analyze must succeed on every mutated input,
// and the parallel path must produce the exact same Result as the
// sequential one — corruption must not open a serial/parallel gap.
func TestMutatedArchivesLenientNeverFail(t *testing.T) {
	ds := testDataset(t)
	acc, aps, sys := archiveText(t, ds)
	for _, seed := range []int64{1, 2} {
		for _, budget := range []float64{0.001, 0.01} {
			cfg := mutate.Config{Seed: seed, Budget: budget, MaxPerOp: 4}
			macc, maps, msys, _ := mutateAll(acc, aps, sys, cfg)
			serial, err := Analyze(archivesOf(macc, maps, msys), ds.Topology, Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("seed %d budget %g: lenient serial Analyze failed: %v", seed, budget, err)
			}
			parallel, err := Analyze(archivesOf(macc, maps, msys), ds.Topology, Options{Parallelism: 4})
			if err != nil {
				t.Fatalf("seed %d budget %g: lenient parallel Analyze failed: %v", seed, budget, err)
			}
			assertResultsEqual(t, serial, parallel, 4)
			if serial.Parse.AccountingMalformed+serial.Parse.ApsysMalformed+serial.Parse.SyslogMalformed == 0 {
				t.Errorf("seed %d budget %g: corruption injected but nothing counted malformed", seed, budget)
			}
			// Degraded runs must stay statistically usable: skewed clocks
			// can stamp a Finishing before its Starting, and the assembler
			// must clamp those instead of emitting negative durations
			// (which would fail e.g. the Kaplan-Meier experiment).
			for _, r := range serial.Runs {
				if r.Duration() < 0 {
					t.Fatalf("seed %d budget %g: run apid=%d has negative duration %v",
						seed, budget, r.ApID, r.Duration())
				}
			}
		}
	}
}

// TestMutatedParseStatsMatchReferenceScan: the pipeline's per-archive
// malformed accounting (kinds, totals and provenance samples) on corrupted
// input must equal an independent sequential reference scan with the
// authoritative per-line checkers.
func TestMutatedParseStatsMatchReferenceScan(t *testing.T) {
	ds := testDataset(t)
	acc, aps, sys := archiveText(t, ds)
	macc, maps, msys, _ := mutateAll(acc, aps, sys, mutate.Config{Seed: 42, Budget: 0.01, MaxPerOp: 3})

	res, err := Analyze(archivesOf(macc, maps, msys), ds.Topology, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name    string
		text    string
		archive string
		check   func(string, int) *parse.Error
		got     parse.LineStats
	}{
		{"accounting", macc, ArchiveAccounting, accCheck, res.Parse.AccountingDetail},
		{"apsys", maps, ArchiveApsys, apsCheck, res.Parse.ApsysDetail},
		{"syslog", msys, ArchiveSyslog, sysCheck, res.Parse.SyslogDetail},
	}
	for _, c := range checks {
		want := referenceStats(c.text, c.archive, c.check)
		if c.got != want {
			t.Errorf("%s detail diverges from reference scan:\n got  %+v\nwant %+v", c.name, c.got, want)
		}
		// Provenance invariants: sample count saturates at MaxSamples, line
		// numbers ascend, archive names are stamped.
		n := c.got.Malformed()
		if n > parse.MaxSamples {
			n = parse.MaxSamples
		}
		if c.got.Samples.N != n {
			t.Errorf("%s: %d samples retained, want %d", c.name, c.got.Samples.N, n)
		}
		prev := 0
		for _, s := range c.got.Samples.All() {
			if s.Archive != c.archive {
				t.Errorf("%s sample has archive %q", c.name, s.Archive)
			}
			if s.Line <= prev {
				t.Errorf("%s sample lines not ascending: %d after %d", c.name, s.Line, prev)
			}
			prev = s.Line
		}
	}
}

// TestMutationManifestReconciliation: on archives with a clean baseline
// (the generated accounting and apsys archives parse without a single
// malformed line), the pipeline must report exactly the mutations the
// manifest recorded — per kind — with the first failing lines as samples.
func TestMutationManifestReconciliation(t *testing.T) {
	ds := testDataset(t)
	acc, aps, _ := archiveText(t, ds)
	cfg := mutate.Config{Seed: 99, Budget: 0.005, MaxPerOp: 3}
	accB, accMan := mutate.Apply([]byte(acc), cfg)
	apsB, apsMan := mutate.Apply([]byte(aps), cfg)

	res, err := Analyze(Archives{
		Accounting: strings.NewReader(string(accB)),
		Apsys:      strings.NewReader(string(apsB)),
		Location:   time.UTC,
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}

	reconcile := func(name string, mutated []byte, man *mutate.Manifest, check func(string, int) *parse.Error, got parse.LineStats) {
		t.Helper()
		lines := splitLines(string(mutated))
		var want parse.KindCounts
		var failing []int
		for _, mu := range man.Corrupting() {
			perr := check(lines[mu.Line-1], mu.Line)
			if perr == nil {
				continue // the mutation left the line parseable (skew, lucky cut)
			}
			want.Add(perr.Kind)
			failing = append(failing, mu.Line)
		}
		if got.Kinds != want {
			t.Errorf("%s: pipeline kinds %+v, manifest-derived %+v", name, got.Kinds, want)
		}
		if len(failing) > parse.MaxSamples {
			failing = failing[:parse.MaxSamples]
		}
		for i, line := range failing {
			if got.Samples.Samples[i].Line != line {
				t.Errorf("%s: sample %d at line %d, manifest says %d", name, i, got.Samples.Samples[i].Line, line)
			}
		}
	}
	reconcile("accounting", accB, accMan, accCheck, res.Parse.AccountingDetail)
	reconcile("apsys", apsB, apsMan, apsCheck, res.Parse.ApsysDetail)
}

// TestMutatedOutcomeDegradationBounded: under a small corruption budget the
// analysis must degrade proportionally, not collapse — the run count moves
// at most by the apsys lines the manifest touched (each affected line can
// create or destroy at most one run pairing, ×2 for torn neighbors), and
// the E2 outcome fractions stay within a budget-derived envelope.
func TestMutatedOutcomeDegradationBounded(t *testing.T) {
	ds := testDataset(t)
	acc, aps, sys := archiveText(t, ds)
	clean, err := Analyze(archivesOf(acc, aps, sys), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.005
	macc, maps, msys, man := mutateAll(acc, aps, sys, mutate.Config{Seed: 17, Budget: budget, MaxPerOp: 4})
	mut, err := Analyze(archivesOf(macc, maps, msys), ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}

	apsAffected := man[1].LinesAffected()
	if d := len(mut.Runs) - len(clean.Runs); d > 2*apsAffected || d < -2*apsAffected {
		t.Errorf("run count moved by %d, envelope ±%d (apsys lines affected %d)", d, 2*apsAffected, apsAffected)
	}
	if len(mut.Runs) < len(clean.Runs)*9/10 {
		t.Errorf("corruption at budget %g destroyed >10%% of runs: %d -> %d", budget, len(clean.Runs), len(mut.Runs))
	}

	frac := func(res *Result) map[correlate.Outcome]float64 {
		f := make(map[correlate.Outcome]float64)
		if len(res.Runs) == 0 {
			return f
		}
		for _, r := range res.Runs {
			f[r.Outcome] += 1 / float64(len(res.Runs))
		}
		return f
	}
	cf, mf := frac(clean), frac(mut)
	eps := 10 * budget // 5% envelope for a 0.5% per-operator budget
	if eps < 0.02 {
		eps = 0.02
	}
	for _, o := range []correlate.Outcome{
		correlate.OutcomeSuccess, correlate.OutcomeUserFailure,
		correlate.OutcomeWalltime, correlate.OutcomeSystemFailure,
	} {
		if d := mf[o] - cf[o]; d > eps || d < -eps {
			t.Errorf("outcome %v fraction moved %.4f -> %.4f (|Δ| > %.3f)", o, cf[o], mf[o], eps)
		}
	}
}

// TestStrictModeFailFast: strict parsing surfaces the FIRST injected
// corruption as a typed *parse.Error carrying the archive name and line
// number — identically from the sequential and the parallel path — while
// lenient mode sails through the same input.
func TestStrictModeFailFast(t *testing.T) {
	ds := testDataset(t)
	acc, aps, _ := archiveText(t, ds)
	cases := []struct {
		name    string
		archive string
		build   func(mutated string) Archives
		clean   string
	}{
		{"accounting", ArchiveAccounting, func(m string) Archives {
			return Archives{Accounting: strings.NewReader(m), Location: time.UTC}
		}, acc},
		{"apsys", ArchiveApsys, func(m string) Archives {
			return Archives{Apsys: strings.NewReader(m), Location: time.UTC}
		}, aps},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated, man := mutate.Apply([]byte(tc.clean), mutate.Config{
				Seed: 5, Budget: 0.001, MaxPerOp: 3, Ops: []mutate.Op{mutate.OpEncoding},
			})
			if len(man.Corrupting()) == 0 {
				t.Fatal("no corruption injected")
			}
			firstBad := man.Corrupting()[0].Line

			_, err := Analyze(tc.build(string(mutated)), ds.Topology, Options{ParseMode: parse.Strict, Parallelism: 1})
			if err == nil {
				t.Fatal("strict Analyze succeeded on corrupted archive")
			}
			var pe *parse.Error
			if !errors.As(err, &pe) {
				t.Fatalf("strict error %T is not a *parse.Error: %v", err, err)
			}
			if pe.Archive != tc.archive {
				t.Errorf("error names archive %q, want %q", pe.Archive, tc.archive)
			}
			if pe.Line != firstBad {
				t.Errorf("error at line %d, first injected corruption at %d", pe.Line, firstBad)
			}
			if pe.Kind != parse.KindEncoding {
				t.Errorf("error kind %v, want KindEncoding", pe.Kind)
			}

			_, perr := Analyze(tc.build(string(mutated)), ds.Topology, Options{ParseMode: parse.Strict, Parallelism: 4})
			if perr == nil {
				t.Fatal("strict parallel Analyze succeeded on corrupted archive")
			}
			if perr.Error() != err.Error() {
				t.Errorf("strict error differs between paths:\nserial   %v\nparallel %v", err, perr)
			}

			if _, err := Analyze(tc.build(string(mutated)), ds.Topology, Options{}); err != nil {
				t.Errorf("lenient Analyze failed on the same input: %v", err)
			}
		})
	}
}

// TestStrictModeCleanArchives: strict mode must accept archives with no
// malformed lines (the generated accounting and apsys archives), matching
// the lenient result exactly.
func TestStrictModeCleanArchives(t *testing.T) {
	ds := testDataset(t)
	acc, aps, _ := archiveText(t, ds)
	a := Archives{Accounting: strings.NewReader(acc), Apsys: strings.NewReader(aps), Location: time.UTC}
	strict, err := Analyze(a, ds.Topology, Options{ParseMode: parse.Strict})
	if err != nil {
		t.Fatalf("strict Analyze failed on clean archives: %v", err)
	}
	lenient, err := Analyze(Archives{
		Accounting: strings.NewReader(acc), Apsys: strings.NewReader(aps), Location: time.UTC,
	}, ds.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Parse != lenient.Parse {
		t.Errorf("strict vs lenient ParseStats differ on clean input:\n%+v\n%+v", strict.Parse, lenient.Parse)
	}
	if len(strict.Runs) != len(lenient.Runs) {
		t.Errorf("strict run count %d, lenient %d", len(strict.Runs), len(lenient.Runs))
	}
}
