package core

// Incremental ingestion: the online counterpart of Analyze. A long-running
// service tails growing archives and appends each new chunk of raw log
// text; the Incremental keeps the persistent parse state (the accounting
// and apsys assemblers, whose half-open records span append boundaries, the
// classified event stream, and the cumulative ParseStats with absolute line
// provenance) and, on demand, materializes a *Result equal to what a
// from-scratch Analyze over the concatenated input would produce — without
// re-attributing the whole history.
//
// The re-attribution window is the key: a run's attribution depends on the
// event index only inside [End-EvidenceWindow, End+PostWindow] (Attribute
// clamps the search to at most EvidenceWindow before the end), so an
// appended event with timestamp t can only change runs whose End lies in
// [t-PostWindow, t+EvidenceWindow]. Result therefore re-attributes exactly
// (a) runs completed since the last snapshot, (b) runs whose End is at or
// after minNewEventTime-(EvidenceWindow+PostWindow), and (c) runs whose
// batch job saw new accounting records (walltime-kill detection reads the
// job record). Everything older keeps its previous attribution.
// TestIncrementalMatchesAnalyze asserts exact Result equality against the
// batch pipeline after every append round.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/coalesce"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/interval"
	"logdiver/internal/machine"
	"logdiver/internal/parse"
	"logdiver/internal/wlm"
)

// Delta is one append of raw archive bytes. Every field may be empty; the
// bytes must end on a line boundary (a tailer holds back partial lines).
type Delta struct {
	Accounting, Apsys, Syslog []byte
}

// Empty reports whether the delta carries no bytes at all.
func (d Delta) Empty() bool {
	return len(d.Accounting) == 0 && len(d.Apsys) == 0 && len(d.Syslog) == 0
}

// AppendStats summarizes one Append round.
type AppendStats struct {
	// AccountingLines, ApsysLines and SyslogLines count the raw lines
	// consumed this round (including malformed and blank lines).
	AccountingLines, ApsysLines, SyslogLines int
	// Events counts the classified error events added this round.
	Events int
	// RunsCompleted is the cumulative completed-run count after the round.
	RunsCompleted int
}

// Incremental accumulates appended archive chunks and materializes
// pipeline Results with windowed re-attribution. It is not safe for
// concurrent use; the serving layer runs one ingestion goroutine and
// publishes immutable snapshots instead.
type Incremental struct {
	top  *machine.Topology
	opts Options
	loc  *time.Location

	wlmAsm  *wlm.Assembler
	alpsAsm *alps.Assembler
	events  []errlog.Event
	stats   ParseStats
	// lineBase holds the raw lines already consumed per archive, so sample
	// and strict-error line numbers stay absolute across appends.
	lineBase [3]int

	// attr mirrors alpsAsm.Done() (completion order) with the attribution
	// of the last Result call; done[len(attr):] are not yet attributed.
	attr []correlate.AttributedRun
	// dirtyJobs are batch jobs with new accounting records since the last
	// Result; minNew/haveNew track the earliest new event timestamp.
	dirtyJobs map[string]struct{}
	minNew    time.Time
	haveNew   bool
	// lastRedo is the number of runs the last Result re-attributed.
	lastRedo int

	err error
}

// archive indices of lineBase.
const (
	archiveIdxAccounting = iota
	archiveIdxApsys
	archiveIdxSyslog
)

// NewIncremental returns an empty incremental pipeline. loc interprets
// accounting timestamps (UTC when nil); opts follows Analyze semantics,
// with the zero value selecting the study defaults.
func NewIncremental(top *machine.Topology, loc *time.Location, opts Options) (*Incremental, error) {
	if top == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	opts = opts.withDefaults()
	inc := &Incremental{
		top:       top,
		opts:      opts,
		loc:       loc,
		wlmAsm:    wlm.NewAssembler(),
		alpsAsm:   alps.NewAssembler(),
		dirtyJobs: make(map[string]struct{}),
	}
	inc.alpsAsm.SetLenient(opts.ParseMode == parse.Lenient)
	return inc, nil
}

// countLines counts the lines in b, treating a final unterminated fragment
// as one line (matching parse.LineReader).
func countLines(b []byte) int {
	n := bytes.Count(b, []byte("\n"))
	if len(b) > 0 && b[len(b)-1] != '\n' {
		n++
	}
	return n
}

// shiftSamples rebases the retained sample line numbers by base, turning
// chunk-relative provenance into absolute archive line numbers.
func shiftSamples(ls *parse.LineStats, base int) {
	if base == 0 {
		return
	}
	for i := 0; i < ls.Samples.N; i++ {
		if ls.Samples.Samples[i].Line > 0 {
			ls.Samples.Samples[i].Line += base
		}
	}
}

// shiftErr rebases a strict-mode parse error the same way.
func shiftErr(err error, base int) error {
	var pe *parse.Error
	if base != 0 && errors.As(err, &pe) && pe.Line > 0 {
		pe.Line += base
	}
	return err
}

// Append folds one chunk of raw archive bytes into the pipeline state. The
// chunk is parsed through the same block readers as Analyze (parallel
// within the chunk, bounded by Options.Parallelism), in lenient or strict
// mode per Options.ParseMode. A strict-mode parse failure poisons the
// Incremental: the error, with absolute line provenance, is returned from
// this and every later call.
func (inc *Incremental) Append(d Delta) (AppendStats, error) {
	if inc.err != nil {
		return AppendStats{}, inc.err
	}
	var (
		rst ParseStats
		st  AppendStats
	)
	fail := func(archive string, base int, err error) (AppendStats, error) {
		inc.err = archiveErr(archive, shiftErr(err, base))
		return AppendStats{}, inc.err
	}

	if len(d.Accounting) > 0 {
		base := inc.lineBase[archiveIdxAccounting]
		err := readAccountingParallel(bytes.NewReader(d.Accounting), inc.loc,
			inc.opts.Parallelism, inc.opts.ParseMode, &rst, func(rec wlm.ScanRecord) error {
				inc.dirtyJobs[string(rec.JobID)] = struct{}{}
				return inc.wlmAsm.AddScan(rec)
			})
		if err != nil {
			return fail(ArchiveAccounting, base, err)
		}
		shiftSamples(&rst.AccountingDetail, base)
		st.AccountingLines = countLines(d.Accounting)
		inc.lineBase[archiveIdxAccounting] += st.AccountingLines
	}

	if len(d.Apsys) > 0 {
		base := inc.lineBase[archiveIdxApsys]
		err := readApsysParallel(bytes.NewReader(d.Apsys),
			inc.opts.Parallelism, inc.opts.ParseMode, &rst, inc.alpsAsm)
		if err != nil {
			return fail(ArchiveApsys, base, err)
		}
		shiftSamples(&rst.ApsysDetail, base)
		st.ApsysLines = countLines(d.Apsys)
		inc.lineBase[archiveIdxApsys] += st.ApsysLines
	}

	if len(d.Syslog) > 0 {
		base := inc.lineBase[archiveIdxSyslog]
		evs, err := readSyslogParallel(bytes.NewReader(d.Syslog), inc.top,
			inc.opts.Classifier, inc.opts.Parallelism, inc.opts.ParseMode, &rst)
		if err != nil {
			return fail(ArchiveSyslog, base, err)
		}
		shiftSamples(&rst.SyslogDetail, base)
		st.SyslogLines = countLines(d.Syslog)
		inc.lineBase[archiveIdxSyslog] += st.SyslogLines
		st.Events = len(evs)
		for _, e := range evs {
			if !inc.haveNew || e.Time.Before(inc.minNew) {
				inc.minNew, inc.haveNew = e.Time, true
			}
		}
		inc.events = append(inc.events, evs...)
	}

	inc.stats.merge(rst)
	st.RunsCompleted = len(inc.alpsAsm.Done())
	return st, nil
}

// Result materializes the full pipeline output over everything appended so
// far. Coalescing and the event index are rebuilt over the whole event
// stream (cheap, sort-bound), but only runs inside the affected window are
// re-attributed; the rest keep the attribution of the previous Result. The
// returned Result equals a from-scratch Analyze over the concatenated
// input and shares no mutable state with the Incremental.
func (inc *Incremental) Result() (*Result, error) {
	if inc.err != nil {
		return nil, inc.err
	}
	res := &Result{Jobs: inc.wlmAsm.Jobs()}
	res.Parse = inc.stats
	res.Parse.setAssembler(inc.alpsAsm)

	deduped := coalesce.Dedup(inc.events)
	res.Events = deduped
	res.Tuples = coalesce.Tuples(deduped, inc.opts.TemporalWindow)
	res.Groups = coalesce.Spatial(res.Tuples, inc.opts.SpatialWindow)
	res.Coalesce = coalesce.Stats{
		Raw:     len(inc.events),
		Deduped: len(deduped),
		Tuples:  len(res.Tuples),
		Groups:  len(res.Groups),
	}

	cfg := inc.opts.Correlate
	if cfg.Jobs == nil && len(res.Jobs) > 0 {
		cfg.Jobs = make(map[string]wlm.Job, len(res.Jobs))
		for _, j := range res.Jobs {
			cfg.Jobs[j.ID] = j
		}
	}
	corr, err := correlate.New(interval.NewIndex(deduped), inc.top, cfg)
	if err != nil {
		return nil, err
	}

	var boundary time.Time
	if inc.haveNew {
		boundary = inc.minNew.Add(-(cfg.EvidenceWindow + cfg.PostWindow))
	}
	done := inc.alpsAsm.Done()
	attr := make([]correlate.AttributedRun, len(done))
	copy(attr, inc.attr)
	var (
		affIdx  []int
		affRuns []alps.AppRun
	)
	for i, r := range done {
		redo := i >= len(inc.attr)
		if !redo && inc.haveNew && !r.End.Before(boundary) {
			redo = true
		}
		if !redo && len(inc.dirtyJobs) > 0 {
			_, redo = inc.dirtyJobs[r.JobID]
		}
		if redo {
			affIdx = append(affIdx, i)
			affRuns = append(affRuns, r)
		}
	}
	newAttr := corr.AttributeAllParallel(affRuns, inc.opts.Parallelism)
	for k, i := range affIdx {
		attr[i] = newAttr[k]
	}
	inc.attr = attr
	inc.lastRedo = len(affIdx)
	inc.dirtyJobs = make(map[string]struct{})
	inc.minNew, inc.haveNew = time.Time{}, false

	// Same order as Assembler.Runs, which the batch path attributes in.
	res.Runs = make([]correlate.AttributedRun, len(attr))
	copy(res.Runs, attr)
	sort.Slice(res.Runs, func(i, j int) bool {
		if !res.Runs[i].Start.Equal(res.Runs[j].Start) {
			return res.Runs[i].Start.Before(res.Runs[j].Start)
		}
		return res.Runs[i].ApID < res.Runs[j].ApID
	})

	for _, r := range res.Runs {
		if res.Start.IsZero() || r.Start.Before(res.Start) {
			res.Start = r.Start
		}
		if r.End.After(res.End) {
			res.End = r.End
		}
	}
	return res, nil
}

// Runs returns the completed-run count attributed so far.
func (inc *Incremental) Runs() int { return len(inc.attr) }

// Reattributed reports how many runs the last Result call re-attributed
// (rather than carried over) — the observability hook that shows windowed
// re-attribution doing its job.
func (inc *Incremental) Reattributed() int { return inc.lastRedo }

// Err returns the poisoning error of a failed strict-mode Append, nil
// while the pipeline is healthy.
func (inc *Incremental) Err() error { return inc.err }
