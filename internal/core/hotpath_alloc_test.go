package core

import (
	"testing"

	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
)

// TestErrlogLineHotPathZeroAlloc gates the composed per-line path the
// errlog ingestion loop runs in steady state — byte-view syslog scan,
// literal-prefiltered classification, and warm host resolution. Each piece
// has its own gate in its package; this one catches allocation creeping
// into the composition (interface conversions, escape-analysis regressions
// at the call boundaries).
func TestErrlogLineHotPathZeroAlloc(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	cls := taxonomy.Default()
	hc := errlog.NewHostCache()
	lines := [][]byte{
		[]byte("2013-04-03T12:34:56.123456Z c0-0c0s0n1 kernel: Machine Check Exception: uncorrected DRAM error on c0-0c0s0n1 bank 4 addr 0x00000a"),
		[]byte("2013-04-03T12:34:57.000001Z sdb xtevent: HSS alert: node heartbeat fault on c0-0c0s0n1, declaring node dead"),
		[]byte("2013-04-03T12:34:58.500000Z nid00012 app: user application wrote something weird"),
	}
	step := func() {
		for _, raw := range lines {
			v, skip, perr := syslogx.CheckLineBytes(raw)
			if skip || perr != nil {
				t.Fatal("canonical line rejected")
			}
			cat, _ := cls.ClassifyBytes(v.Msg)
			if cat == taxonomy.Unclassified {
				continue
			}
			hc.Resolve(v.Host, top)
		}
	}
	step() // warm the fold pool and host cache
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("composed errlog line path allocates %.1f allocs/op, want 0", n)
	}
}
