package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"logdiver/internal/mutate"
	"logdiver/internal/parse"
	"logdiver/internal/stream"
	"logdiver/internal/syslogx"
	"logdiver/internal/wlm"
)

// fuzzInputCap keeps individual fuzz executions fast; the parsers' large-line
// behavior is covered by the oversize seeds below (parse.MaxLineBytes is a
// per-line cap, exercised via mutate's oversize operator at smaller scale).
const fuzzInputCap = 64 << 10

// mutateSeeds corrupts a clean archive once per operator and returns the
// variants: the fuzz corpus starts from every corruption class the
// robustness suite defends against, not just from hand-written typos.
func mutateSeeds(clean []byte) [][]byte {
	seeds := [][]byte{clean}
	for i, op := range mutate.AllOps() {
		cfg := mutate.Config{Seed: int64(i + 1), Ops: []mutate.Op{op}, MaxPerOp: 2}
		if op == mutate.OpOversize {
			// Keep oversize seeds within the input cap: enough padding to
			// matter, not a megabyte per seed.
			continue
		}
		out, m := mutate.Apply(clean, cfg)
		if len(m.Mutations) > 0 {
			seeds = append(seeds, out)
		}
	}
	return seeds
}

func cleanAccounting(n int) []byte {
	var b strings.Builder
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := wlm.Record{
			Time: base.Add(time.Duration(i) * time.Minute), Type: wlm.EventEnd,
			JobID:  "9.bw",
			Fields: map[string]string{"Exit_status": "0", "user": "alice"},
		}
		b.WriteString(wlm.FormatRecord(rec))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func cleanSyslog(n int) []byte {
	var b strings.Builder
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		b.WriteString(syslogx.Format(syslogx.Line{
			Time: base.Add(time.Duration(i) * time.Second),
			Host: "c0-0c0s0n1", Tag: "kernel", Message: "machine check exception",
		}))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func cleanApsys(n int) []byte {
	var b strings.Builder
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		b.WriteString(syslogx.Format(syslogx.Line{
			Time: base.Add(time.Duration(i) * time.Second),
			Host: "nid00005", Tag: "apsys",
			Message: "apid=100, Starting, user=alice, batch_id=9.bw, cmd=a.out, width=16, num_nodes=1, node_list=5",
		}))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// FuzzParseAccounting pins the serial accounting scanner to the parallel
// block parser on arbitrary archives: identical records, identical
// malformed-line accounting, identical strict-mode failure.
func FuzzParseAccounting(f *testing.F) {
	for _, seed := range mutateSeeds(cleanAccounting(12)) {
		f.Add(seed)
	}
	f.Add([]byte("04/03/2013 12:00:00;E;9.bw;garbage\n\n;;;\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		sc := wlm.NewScannerMode(bytes.NewReader(data), time.UTC, parse.Lenient)
		var serial []wlm.Record
		for sc.Scan() {
			serial = append(serial, sc.Record())
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("lenient scanner failed: %v", err)
		}
		recs, stats, err := wlm.ParseBlockMode(data, time.UTC, 1, parse.Lenient)
		if err != nil {
			t.Fatalf("lenient block failed: %v", err)
		}
		if len(recs) != len(serial) {
			t.Fatalf("block parsed %d records, scanner %d", len(recs), len(serial))
		}
		if stats != sc.Stats() {
			t.Fatalf("stats diverge:\n block   %+v\n scanner %+v", stats, sc.Stats())
		}

		strictSc := wlm.NewScannerMode(bytes.NewReader(data), time.UTC, parse.Strict)
		for strictSc.Scan() {
		}
		_, _, blockErr := wlm.ParseBlockMode(data, time.UTC, 1, parse.Strict)
		serialErr := strictSc.Err()
		if (serialErr == nil) != (blockErr == nil) {
			t.Fatalf("strict disagreement: scanner %v, block %v", serialErr, blockErr)
		}
		if serialErr != nil && serialErr.Error() != blockErr.Error() {
			t.Fatalf("strict errors diverge:\n scanner %v\n block   %v", serialErr, blockErr)
		}
		if serialErr == nil && stats.Malformed() != 0 {
			t.Fatalf("strict passed but lenient counted %d malformed", stats.Malformed())
		}
	})
}

// FuzzParseSyslog pins the serial syslog scanner to the parallel block
// parser on arbitrary archives.
func FuzzParseSyslog(f *testing.F) {
	for _, seed := range mutateSeeds(cleanSyslog(12)) {
		f.Add(seed)
	}
	f.Add([]byte("not a syslog line\n\n2013-04-03T12:00:00.000000+00:00 host tag: ok\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		sc := syslogx.NewScannerMode(bytes.NewReader(data), parse.Lenient)
		var serial []syslogx.Line
		var serialNums []int
		for sc.Scan() {
			serial = append(serial, sc.Line())
			serialNums = append(serialNums, sc.LineNo())
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("lenient scanner failed: %v", err)
		}
		lines, nums, stats, err := syslogx.ParseBlockMode(data, 1, parse.Lenient)
		if err != nil {
			t.Fatalf("lenient block failed: %v", err)
		}
		if len(lines) != len(serial) {
			t.Fatalf("block parsed %d lines, scanner %d", len(lines), len(serial))
		}
		for i := range nums {
			if nums[i] != serialNums[i] {
				t.Fatalf("line numbering diverges at %d: block %d, scanner %d", i, nums[i], serialNums[i])
			}
		}
		if stats != sc.Stats() {
			t.Fatalf("stats diverge:\n block   %+v\n scanner %+v", stats, sc.Stats())
		}

		strictSc := syslogx.NewScannerMode(bytes.NewReader(data), parse.Strict)
		for strictSc.Scan() {
		}
		_, _, _, blockErr := syslogx.ParseBlockMode(data, 1, parse.Strict)
		serialErr := strictSc.Err()
		if (serialErr == nil) != (blockErr == nil) {
			t.Fatalf("strict disagreement: scanner %v, block %v", serialErr, blockErr)
		}
		if serialErr != nil && serialErr.Error() != blockErr.Error() {
			t.Fatalf("strict errors diverge:\n scanner %v\n block   %v", serialErr, blockErr)
		}
	})
}

// FuzzParseApsys pins the serial per-line apsys checker to the parallel
// block parser on arbitrary archives, plus checkApsysLine's own invariants.
func FuzzParseApsys(f *testing.F) {
	for _, seed := range mutateSeeds(cleanApsys(12)) {
		f.Add(seed)
	}
	f.Add([]byte("2013-04-03T12:00:00.000000+00:00 nid00005 apsys: apid=bad, Starting\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		lr := parse.NewLineReader(bytes.NewReader(data))
		var serial apsChunk
		for {
			text, no, ok := lr.Next()
			if !ok {
				break
			}
			msg, counted, haveMsg, perr := checkApsysLine(text, no)
			if haveMsg && (perr != nil || !counted) {
				t.Fatalf("line %d: message with perr=%v counted=%v", no, perr, counted)
			}
			if counted {
				serial.lines++
			}
			if perr != nil {
				if perr.Line != no {
					t.Fatalf("error line %d stamped on line %d", perr.Line, no)
				}
				serial.stats.Record(perr)
				continue
			}
			if haveMsg {
				serial.msgs = append(serial.msgs, msg)
			}
		}
		if err := lr.Err(); err != nil {
			t.Fatalf("line reader failed: %v", err)
		}
		c, err := parseApsysBlock(stream.Block{Data: data, FirstLine: 1}, parse.Lenient)
		if err != nil {
			t.Fatalf("lenient block failed: %v", err)
		}
		if c.lines != serial.lines || len(c.msgs) != len(serial.msgs) {
			t.Fatalf("block (%d lines, %d msgs) vs serial (%d lines, %d msgs)",
				c.lines, len(c.msgs), serial.lines, len(serial.msgs))
		}
		if c.stats != serial.stats {
			t.Fatalf("stats diverge:\n block  %+v\n serial %+v", c.stats, serial.stats)
		}

		_, strictErr := parseApsysBlock(stream.Block{Data: data, FirstLine: 1}, parse.Strict)
		if (strictErr == nil) != (serial.stats.Malformed() == 0) {
			t.Fatalf("strict err %v but lenient counted %d malformed", strictErr, serial.stats.Malformed())
		}
	})
}
