package metrics

import (
	"math"
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

var base = time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)

func mkRun(apid uint64, nNodes int, dur time.Duration, class machine.NodeClass, outcome correlate.Outcome, cause taxonomy.Category) correlate.AttributedRun {
	nodes := make([]machine.NodeID, nNodes)
	for i := range nodes {
		nodes[i] = machine.NodeID(i)
	}
	return correlate.AttributedRun{
		AppRun: alps.AppRun{
			ApID:  apid,
			Nodes: nodes,
			Start: base,
			End:   base.Add(dur),
		},
		Class:   class,
		Outcome: outcome,
		Cause:   cause,
	}
}

func TestOutcomesBreakdown(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 10, time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
		mkRun(2, 10, time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
		mkRun(3, 10, 8*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
		mkRun(4, 10, time.Hour, machine.ClassXE, correlate.OutcomeUserFailure, 0),
	}
	b := Outcomes(runs)
	if b.Total != 4 {
		t.Errorf("Total = %d", b.Total)
	}
	if got := b.SystemFailureFraction(); got != 0.25 {
		t.Errorf("SystemFailureFraction = %v, want 0.25", got)
	}
	// node-hours: 10+10+80+10 = 110; system = 80.
	if got := b.SystemNodeHoursFraction(); math.Abs(got-80.0/110.0) > 1e-12 {
		t.Errorf("SystemNodeHoursFraction = %v, want %v", got, 80.0/110.0)
	}
	if b.Counts[correlate.OutcomeSuccess] != 2 {
		t.Errorf("success count = %d", b.Counts[correlate.OutcomeSuccess])
	}
}

func TestOutcomesEmpty(t *testing.T) {
	b := Outcomes(nil)
	if b.SystemFailureFraction() != 0 || b.SystemNodeHoursFraction() != 0 {
		t.Error("empty breakdown should report zero fractions")
	}
}

func TestGeometricBuckets(t *testing.T) {
	bounds := GeometricBuckets(100)
	want := []int{1, 2, 4, 8, 16, 32, 64, 101}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

func TestFailureProbabilityByScale(t *testing.T) {
	var runs []correlate.AttributedRun
	// 100 small runs, 5 fail; 50 large runs, 20 fail.
	for i := 0; i < 100; i++ {
		o := correlate.OutcomeSuccess
		if i < 5 {
			o = correlate.OutcomeSystemFailure
		}
		runs = append(runs, mkRun(uint64(i), 4, time.Hour, machine.ClassXE, o, taxonomy.NodeHeartbeat))
	}
	for i := 0; i < 50; i++ {
		o := correlate.OutcomeSuccess
		if i < 20 {
			o = correlate.OutcomeSystemFailure
		}
		runs = append(runs, mkRun(uint64(1000+i), 100, time.Hour, machine.ClassXE, o, taxonomy.NodeHeartbeat))
	}
	buckets, err := FailureProbabilityByScale(runs, []int{1, 10, 1000}, machine.ClassXE)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	if buckets[0].Runs != 100 || buckets[0].Failures != 5 {
		t.Errorf("bucket 0: %+v", buckets[0])
	}
	if buckets[1].Runs != 50 || buckets[1].Failures != 20 {
		t.Errorf("bucket 1: %+v", buckets[1])
	}
	if math.Abs(buckets[1].Prob.P-0.4) > 1e-12 {
		t.Errorf("bucket 1 P = %v", buckets[1].Prob.P)
	}
	if buckets[0].Prob.Lo >= buckets[0].Prob.P || buckets[0].Prob.Hi <= buckets[0].Prob.P {
		t.Errorf("bucket 0 CI [%v,%v] broken", buckets[0].Prob.Lo, buckets[0].Prob.Hi)
	}
}

func TestFailureProbabilityClassFilter(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 4, time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
		mkRun(2, 4, time.Hour, machine.ClassXK, correlate.OutcomeSuccess, 0),
	}
	buckets, err := FailureProbabilityByScale(runs, []int{1, 100}, machine.ClassXK)
	if err != nil {
		t.Fatal(err)
	}
	if buckets[0].Runs != 1 || buckets[0].Failures != 0 {
		t.Errorf("XK filter: %+v", buckets[0])
	}
	all, err := FailureProbabilityByScale(runs, []int{1, 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if all[0].Runs != 2 {
		t.Errorf("no filter: %+v", all[0])
	}
}

func TestFailureProbabilityErrors(t *testing.T) {
	if _, err := FailureProbabilityByScale(nil, []int{1}, 0); err == nil {
		t.Error("single bound accepted")
	}
	if _, err := FailureProbabilityByScale(nil, []int{4, 2}, 0); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestScaleBucketLabel(t *testing.T) {
	if got := (ScaleBucket{Lo: 4, Hi: 8}).Label(); got != "4-7" {
		t.Errorf("Label = %q", got)
	}
	if got := (ScaleBucket{Lo: 1, Hi: 2}).Label(); got != "1" {
		t.Errorf("Label = %q", got)
	}
}

func TestMTTIByScale(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 4, 10*time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
		mkRun(2, 4, 10*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
		mkRun(3, 4, 20*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
	}
	buckets, err := MTTIByScale(runs, []int{1, 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := buckets[0]
	if b.Runs != 3 || b.Interrupts != 2 {
		t.Fatalf("bucket: %+v", b)
	}
	if math.Abs(b.ExposureHours-40) > 1e-9 {
		t.Errorf("ExposureHours = %v", b.ExposureHours)
	}
	if math.Abs(b.MTTIHours-20) > 1e-9 {
		t.Errorf("MTTIHours = %v, want 20", b.MTTIHours)
	}
}

func TestMTTINoInterrupts(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 4, 10*time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
	}
	buckets, err := MTTIByScale(runs, []int{1, 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if buckets[0].MTTIHours != 0 {
		t.Errorf("MTTIHours = %v, want 0 (no interrupts)", buckets[0].MTTIHours)
	}
	if _, err := MTTIByScale(nil, []int{1}, 0); err == nil {
		t.Error("single bound accepted")
	}
}

func TestByCategoryAndGroup(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 2, time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
		mkRun(2, 2, time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.NodeHeartbeat),
		mkRun(3, 2, 3*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.FilesystemLBUG),
		mkRun(4, 2, time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.KernelPanic),
		mkRun(5, 2, time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
	}
	cats := ByCategory(runs)
	if len(cats) != 3 {
		t.Fatalf("got %d categories", len(cats))
	}
	if cats[0].Category != taxonomy.NodeHeartbeat || cats[0].Failures != 2 {
		t.Errorf("top category: %+v", cats[0])
	}
	groups := ByGroup(runs)
	// NodeHeartbeat and KernelPanic both map to GroupNode: 3 failures.
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	if groups[0].Group != taxonomy.GroupNode || groups[0].Failures != 3 {
		t.Errorf("top group: %+v", groups[0])
	}
	if groups[1].Group != taxonomy.GroupFilesystem || math.Abs(groups[1].NodeHoursLost-6) > 1e-9 {
		t.Errorf("fs group: %+v", groups[1])
	}
}

func TestTimeline(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 2, time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),                             // ends h1
		mkRun(2, 2, 25*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.KernelPanic), // ends day 2
	}
	tl, err := Timeline(runs, base, base.Add(48*time.Hour), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 {
		t.Fatalf("got %d buckets", len(tl))
	}
	if tl[0].Runs != 1 || tl[0].LostNodeHours != 0 {
		t.Errorf("day 0: %+v", tl[0])
	}
	if tl[1].Runs != 1 || tl[1].SystemFailures != 1 || math.Abs(tl[1].LostNodeHours-50) > 1e-9 {
		t.Errorf("day 1: %+v", tl[1])
	}
}

func TestTimelineErrors(t *testing.T) {
	if _, err := Timeline(nil, base, base.Add(time.Hour), 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Timeline(nil, base, base, time.Hour); err == nil {
		t.Error("empty range accepted")
	}
}

func TestTimelineIgnoresOutOfRange(t *testing.T) {
	early := mkRun(1, 2, time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0)
	early.Start = base.Add(-48 * time.Hour)
	early.End = base.Add(-47 * time.Hour)
	tl, err := Timeline([]correlate.AttributedRun{early}, base, base.Add(24*time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tl {
		if b.Runs != 0 {
			t.Errorf("out-of-range run counted in %+v", b)
		}
	}
}

func TestEnergyModel(t *testing.T) {
	m := DefaultEnergyModel()
	runs := []correlate.AttributedRun{
		mkRun(1, 100, 10*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.KernelPanic),
		mkRun(2, 100, 10*time.Hour, machine.ClassXK, correlate.OutcomeSystemFailure, taxonomy.GPUMemoryDBE),
		mkRun(3, 1000, 10*time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
	}
	// 1000 node-hours at 350 W + 1000 node-hours at 450 W = 0.8 MWh.
	got := m.LostEnergyMWh(runs)
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("LostEnergyMWh = %v, want 0.8", got)
	}
}

func TestDetectionCoverage(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 2, time.Hour, machine.ClassXK, correlate.OutcomeSystemFailure, taxonomy.GPUMemoryDBE),
		mkRun(2, 2, time.Hour, machine.ClassXK, correlate.OutcomeUserFailure, 0),                         // silent system failure
		mkRun(3, 2, time.Hour, machine.ClassXK, correlate.OutcomeSystemFailure, taxonomy.FilesystemLBUG), // false positive
		mkRun(4, 2, time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure, taxonomy.KernelPanic),
	}
	truth := map[uint64]bool{1: true, 2: true, 3: false, 4: true}

	xk := DetectionCoverage(runs, truth, machine.ClassXK)
	if xk.TrueSystem != 2 || xk.Detected != 1 || xk.FalseSystem != 1 || xk.Attributed != 2 {
		t.Errorf("XK coverage: %+v", xk)
	}
	if math.Abs(xk.Rate()-0.5) > 1e-12 {
		t.Errorf("XK Rate = %v", xk.Rate())
	}
	if math.Abs(xk.Precision()-0.5) > 1e-12 {
		t.Errorf("XK Precision = %v", xk.Precision())
	}

	xe := DetectionCoverage(runs, truth, machine.ClassXE)
	if xe.Rate() != 1 {
		t.Errorf("XE Rate = %v", xe.Rate())
	}
	var empty Coverage
	if empty.Rate() != 1 || empty.Precision() != 1 {
		t.Error("empty coverage should report perfect rates")
	}
}

func TestInterruptGaps(t *testing.T) {
	mk := func(apid uint64, endOffset time.Duration, class machine.NodeClass, outcome correlate.Outcome) correlate.AttributedRun {
		r := mkRun(apid, 2, time.Hour, class, outcome, taxonomy.KernelPanic)
		r.End = base.Add(endOffset)
		return r
	}
	runs := []correlate.AttributedRun{
		mk(1, 1*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure),
		mk(2, 4*time.Hour, machine.ClassXE, correlate.OutcomeSystemFailure),
		mk(3, 2*time.Hour, machine.ClassXK, correlate.OutcomeSystemFailure),
		mk(4, 3*time.Hour, machine.ClassXE, correlate.OutcomeSuccess), // not an interrupt
	}
	gaps := InterruptGaps(runs, 0)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v, want 2 entries", gaps)
	}
	if gaps[0] != 1 || gaps[1] != 2 {
		t.Errorf("gaps = %v, want [1 2]", gaps)
	}
	xe := InterruptGaps(runs, machine.ClassXE)
	if len(xe) != 1 || xe[0] != 3 {
		t.Errorf("XE gaps = %v, want [3]", xe)
	}
	if got := InterruptGaps(runs[:1], 0); got != nil {
		t.Errorf("single failure produced gaps: %v", got)
	}
	if got := InterruptGaps(nil, 0); got != nil {
		t.Errorf("empty input produced gaps: %v", got)
	}
}

func TestSamples(t *testing.T) {
	runs := []correlate.AttributedRun{
		mkRun(1, 4, 2*time.Hour, machine.ClassXE, correlate.OutcomeSuccess, 0),
		mkRun(2, 8, 4*time.Hour, machine.ClassXK, correlate.OutcomeSuccess, 0),
	}
	if got := DurationSamples(runs, 0); len(got) != 2 || got[0] != 2 {
		t.Errorf("DurationSamples = %v", got)
	}
	if got := DurationSamples(runs, machine.ClassXK); len(got) != 1 || got[0] != 4 {
		t.Errorf("XK DurationSamples = %v", got)
	}
	if got := SizeSamples(runs, 0); len(got) != 2 || got[1] != 8 {
		t.Errorf("SizeSamples = %v", got)
	}
	if got := SizeSamples(runs, machine.ClassXE); len(got) != 1 || got[0] != 4 {
		t.Errorf("XE SizeSamples = %v", got)
	}
}
