// Package metrics computes the study's headline measurements from
// attributed application runs: outcome breakdowns (counts and node-hours),
// failure probability as a function of application scale with Wilson
// confidence intervals, mean time to interrupt (MTTI) by scale, per-category
// failure breakdowns, production/lost node-hour timelines, energy-cost
// estimates for lost work, and — when ground truth is available — the
// error-detection coverage that exposes the hybrid-node detection gap.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/stats"
	"logdiver/internal/taxonomy"
)

// OutcomeBreakdown aggregates run counts and node-hours by outcome.
type OutcomeBreakdown struct {
	Total          int
	TotalNodeHours float64
	Counts         map[correlate.Outcome]int
	NodeHours      map[correlate.Outcome]float64
}

// Outcomes aggregates runs by outcome.
func Outcomes(runs []correlate.AttributedRun) OutcomeBreakdown {
	b := OutcomeBreakdown{
		Counts:    make(map[correlate.Outcome]int, 4),
		NodeHours: make(map[correlate.Outcome]float64, 4),
	}
	for _, r := range runs {
		nh := r.NodeHours()
		b.Total++
		b.TotalNodeHours += nh
		b.Counts[r.Outcome]++
		b.NodeHours[r.Outcome] += nh
	}
	return b
}

// SystemFailureFraction returns the fraction of runs attributed to system
// problems — the paper's 1.53% headline.
func (b OutcomeBreakdown) SystemFailureFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Counts[correlate.OutcomeSystemFailure]) / float64(b.Total)
}

// SystemNodeHoursFraction returns the fraction of all node-hours consumed
// by runs that failed for system reasons — the paper's ~9% headline (work
// that was paid for in energy and lost).
func (b OutcomeBreakdown) SystemNodeHoursFraction() float64 {
	if b.TotalNodeHours == 0 {
		return 0
	}
	return b.NodeHours[correlate.OutcomeSystemFailure] / b.TotalNodeHours
}

// ScaleBucket is one point of the failure-probability-versus-scale curve.
type ScaleBucket struct {
	// Lo and Hi bound the bucket: Lo <= nodes < Hi.
	Lo, Hi int
	// Runs and Failures count bucket membership and system failures.
	Runs, Failures int
	// Prob is the Wilson-interval estimate of P(system failure).
	Prob stats.Proportion
}

// Label renders the bucket bounds compactly.
func (b ScaleBucket) Label() string {
	if b.Hi-b.Lo == 1 {
		return fmt.Sprintf("%d", b.Lo)
	}
	return fmt.Sprintf("%d-%d", b.Lo, b.Hi-1)
}

// GeometricBuckets returns bucket boundaries [1,2,4,...,>=max] suitable for
// scale analysis; the final boundary is one past max.
func GeometricBuckets(max int) []int {
	bounds := []int{1}
	for b := 2; b < max; b *= 2 {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, max+1)
	return bounds
}

// FailureProbabilityByScale buckets runs by placement size and estimates
// P(system failure) per bucket. bounds must be ascending; bucket i covers
// [bounds[i], bounds[i+1]). Runs outside every bucket are ignored. classFilter
// restricts the population (0 accepts every class).
func FailureProbabilityByScale(runs []correlate.AttributedRun, bounds []int, classFilter machine.NodeClass) ([]ScaleBucket, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("metrics: need at least 2 bucket bounds, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: bucket bounds not ascending at %d", i)
		}
	}
	buckets := make([]ScaleBucket, len(bounds)-1)
	for i := range buckets {
		buckets[i] = ScaleBucket{Lo: bounds[i], Hi: bounds[i+1]}
	}
	for _, r := range runs {
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		n := len(r.Nodes)
		i := sort.SearchInts(bounds, n+1) - 1
		if i < 0 || i >= len(buckets) {
			continue
		}
		buckets[i].Runs++
		if r.Outcome == correlate.OutcomeSystemFailure {
			buckets[i].Failures++
		}
	}
	for i := range buckets {
		if buckets[i].Runs == 0 {
			continue
		}
		p, err := stats.Wilson(buckets[i].Failures, buckets[i].Runs, 1.96)
		if err != nil {
			return nil, err
		}
		buckets[i].Prob = p
	}
	return buckets, nil
}

// MTTIBucket reports interrupt statistics for a scale bucket.
type MTTIBucket struct {
	Lo, Hi int
	// Runs counts bucket members; Interrupts counts system failures.
	Runs, Interrupts int
	// ExposureHours is the summed wall-clock hours of bucket members.
	ExposureHours float64
	// MTTIHours is ExposureHours/Interrupts (0 when no interrupts):
	// the mean wall-clock time an application at this scale runs before
	// a system interrupt.
	MTTIHours float64
}

// MTTIByScale computes mean-time-to-interrupt per scale bucket.
func MTTIByScale(runs []correlate.AttributedRun, bounds []int, classFilter machine.NodeClass) ([]MTTIBucket, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("metrics: need at least 2 bucket bounds, got %d", len(bounds))
	}
	buckets := make([]MTTIBucket, len(bounds)-1)
	for i := range buckets {
		buckets[i] = MTTIBucket{Lo: bounds[i], Hi: bounds[i+1]}
	}
	for _, r := range runs {
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		i := sort.SearchInts(bounds, len(r.Nodes)+1) - 1
		if i < 0 || i >= len(buckets) {
			continue
		}
		buckets[i].Runs++
		buckets[i].ExposureHours += r.Duration().Hours()
		if r.Outcome == correlate.OutcomeSystemFailure {
			buckets[i].Interrupts++
		}
	}
	for i := range buckets {
		if buckets[i].Interrupts > 0 {
			buckets[i].MTTIHours = buckets[i].ExposureHours / float64(buckets[i].Interrupts)
		}
	}
	return buckets, nil
}

// CategoryShare is one row of the failure-cause breakdown.
type CategoryShare struct {
	Group    taxonomy.Group
	Category taxonomy.Category
	Failures int
	// NodeHoursLost is the node-hours of runs attributed to the category.
	NodeHoursLost float64
}

// ByCategory breaks system failures down by attributed cause, sorted by
// descending failure count (ties by category order).
func ByCategory(runs []correlate.AttributedRun) []CategoryShare {
	byCat := make(map[taxonomy.Category]*CategoryShare)
	for _, r := range runs {
		if r.Outcome != correlate.OutcomeSystemFailure {
			continue
		}
		s := byCat[r.Cause]
		if s == nil {
			s = &CategoryShare{Group: r.Cause.Group(), Category: r.Cause}
			byCat[r.Cause] = s
		}
		s.Failures++
		s.NodeHoursLost += r.NodeHours()
	}
	out := make([]CategoryShare, 0, len(byCat))
	for _, s := range byCat {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Failures != out[j].Failures {
			return out[i].Failures > out[j].Failures
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// ByGroup rolls the category breakdown up to taxonomy groups.
func ByGroup(runs []correlate.AttributedRun) []CategoryShare {
	byGroup := make(map[taxonomy.Group]*CategoryShare)
	for _, s := range ByCategory(runs) {
		g := byGroup[s.Group]
		if g == nil {
			g = &CategoryShare{Group: s.Group}
			byGroup[s.Group] = g
		}
		g.Failures += s.Failures
		g.NodeHoursLost += s.NodeHoursLost
	}
	out := make([]CategoryShare, 0, len(byGroup))
	for _, s := range byGroup {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Failures != out[j].Failures {
			return out[i].Failures > out[j].Failures
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// TimeBucket is one step of the production/lost node-hours timeline.
type TimeBucket struct {
	Start time.Time
	// ProducedNodeHours counts node-hours of runs *ending* in the bucket;
	// LostNodeHours the subset attributed to system failures.
	ProducedNodeHours float64
	LostNodeHours     float64
	Runs              int
	SystemFailures    int
}

// Timeline buckets runs by end time into steps of the given width.
func Timeline(runs []correlate.AttributedRun, start, end time.Time, step time.Duration) ([]TimeBucket, error) {
	if step <= 0 {
		return nil, fmt.Errorf("metrics: timeline step %v must be positive", step)
	}
	if !end.After(start) {
		return nil, fmt.Errorf("metrics: timeline range [%v,%v) is empty", start, end)
	}
	n := int(end.Sub(start)/step) + 1
	out := make([]TimeBucket, n)
	for i := range out {
		out[i].Start = start.Add(time.Duration(i) * step)
	}
	for _, r := range runs {
		if r.End.Before(start) || !r.End.Before(end.Add(step)) {
			continue
		}
		i := int(r.End.Sub(start) / step)
		if i < 0 || i >= n {
			continue
		}
		nh := r.NodeHours()
		out[i].Runs++
		out[i].ProducedNodeHours += nh
		if r.Outcome == correlate.OutcomeSystemFailure {
			out[i].LostNodeHours += nh
			out[i].SystemFailures++
		}
	}
	return out, nil
}

// EnergyModel converts lost node-hours into energy. The defaults reflect a
// petascale Cray: roughly 350 W per XE node and 450 W per XK node at load,
// including the interconnect share.
type EnergyModel struct {
	WattsPerXENode float64
	WattsPerXKNode float64
}

// DefaultEnergyModel returns the model used in the experiments.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{WattsPerXENode: 350, WattsPerXKNode: 450}
}

// LostEnergyMWh estimates the energy (megawatt-hours) consumed by runs that
// failed for system reasons.
func (m EnergyModel) LostEnergyMWh(runs []correlate.AttributedRun) float64 {
	var wh float64
	for _, r := range runs {
		if r.Outcome != correlate.OutcomeSystemFailure {
			continue
		}
		watts := m.WattsPerXENode
		if r.Class == machine.ClassXK {
			watts = m.WattsPerXKNode
		}
		wh += r.NodeHours() * watts
	}
	return wh / 1e6
}

// Coverage quantifies error-detection coverage against ground truth: of the
// runs that *truly* failed for system reasons, how many did the logs let us
// attribute to the system? The complement is the silent-failure (detection
// gap) rate that impairs hybrid applications.
type Coverage struct {
	TrueSystem int // runs truly system-caused
	Detected   int // ...of which attribution found evidence
	// FalseSystem counts runs attributed to the system whose true cause
	// was not the system (coincidental log activity).
	FalseSystem int
	Attributed  int // total runs attributed to the system
}

// Rate returns Detected/TrueSystem (1 when there were no true failures).
func (c Coverage) Rate() float64 {
	if c.TrueSystem == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.TrueSystem)
}

// Precision returns Detected/Attributed (1 when nothing was attributed).
func (c Coverage) Precision() float64 {
	if c.Attributed == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.Attributed)
}

// DetectionCoverage compares attribution with ground truth. truth maps apid
// to whether the run truly failed for a system reason. classFilter restricts
// the population (0 accepts every class).
func DetectionCoverage(runs []correlate.AttributedRun, truth map[uint64]bool, classFilter machine.NodeClass) Coverage {
	var c Coverage
	for _, r := range runs {
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		trueSys := truth[r.ApID]
		attributed := r.Outcome == correlate.OutcomeSystemFailure
		if trueSys {
			c.TrueSystem++
			if attributed {
				c.Detected++
			}
		} else if attributed {
			c.FalseSystem++
		}
		if attributed {
			c.Attributed++
		}
	}
	return c
}

// InterruptGaps returns the machine-wide time gaps (hours) between
// consecutive system-caused application failures, for distribution fitting
// (exponential vs Weibull burstiness analysis). Runs must not be assumed
// sorted; failures are ordered by run end time. classFilter restricts the
// population (0 accepts every class). At least two failures are needed for
// one gap; fewer yield nil.
func InterruptGaps(runs []correlate.AttributedRun, classFilter machine.NodeClass) []float64 {
	var times []time.Time
	for _, r := range runs {
		if r.Outcome != correlate.OutcomeSystemFailure {
			continue
		}
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		times = append(times, r.End)
	}
	if len(times) < 2 {
		return nil
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		if g := times[i].Sub(times[i-1]).Hours(); g > 0 {
			gaps = append(gaps, g)
		}
	}
	return gaps
}

// DurationSamples extracts run durations in hours, optionally filtered by
// class, for distribution analysis.
func DurationSamples(runs []correlate.AttributedRun, classFilter machine.NodeClass) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		out = append(out, r.Duration().Hours())
	}
	return out
}

// SizeSamples extracts placement sizes, optionally filtered by class.
func SizeSamples(runs []correlate.AttributedRun, classFilter machine.NodeClass) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		if classFilter != 0 && r.Class != classFilter {
			continue
		}
		out = append(out, float64(len(r.Nodes)))
	}
	return out
}
