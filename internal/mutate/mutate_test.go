package mutate

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
	"logdiver/internal/syslogx"
	"logdiver/internal/wlm"
)

// syslogInput builds n well-formed syslog lines.
func syslogInput(n int) []byte {
	var b strings.Builder
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%s c0-0c0s0n1 kernel: event number %d with some body text\n",
			base.Add(time.Duration(i)*time.Second).Format("2006-01-02T15:04:05.000000Z07:00"), i)
	}
	return []byte(b.String())
}

// accountingInput builds n well-formed accounting lines.
func accountingInput(n int) []byte {
	var b strings.Builder
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%s;E;%d.bw;Exit_status=0 user=alice queue=normal\n",
			base.Add(time.Duration(i)*time.Minute).Format("01/02/2006 15:04:05"), 100000+i)
	}
	return []byte(b.String())
}

func lines(data []byte) []string {
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

func TestApplyDeterministic(t *testing.T) {
	in := syslogInput(200)
	cfg := Config{Seed: 42, Budget: 0.05}
	out1, m1 := Apply(in, cfg)
	out2, m2 := Apply(in, cfg)
	if !bytes.Equal(out1, out2) {
		t.Error("same seed produced different outputs")
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("same seed produced different manifests")
	}
	out3, _ := Apply(in, Config{Seed: 43, Budget: 0.05})
	if bytes.Equal(out1, out3) {
		t.Error("different seeds produced identical outputs")
	}
}

func TestApplyManifestMatchesOutput(t *testing.T) {
	in := syslogInput(300)
	out, m := Apply(in, Config{Seed: 7, Budget: 0.03, MaxPerOp: 3})
	got := lines(out)
	if m.OutputLines != len(got) {
		t.Fatalf("manifest OutputLines = %d, output has %d", m.OutputLines, len(got))
	}
	if m.InputLines != 300 {
		t.Errorf("InputLines = %d, want 300", m.InputLines)
	}
	seen := make(map[int]bool)
	for _, mu := range m.Mutations {
		if mu.Line < 1 || mu.Line > len(got) {
			t.Fatalf("%s mutation at line %d outside output (%d lines)", mu.Op, mu.Line, len(got))
		}
		if !mu.Corrupting {
			continue
		}
		if seen[mu.Line] {
			t.Errorf("line %d corrupted twice", mu.Line)
		}
		seen[mu.Line] = true
		line := got[mu.Line-1]
		if len(line) != mu.TextLen {
			t.Errorf("%s at line %d: output length %d, manifest TextLen %d", mu.Op, mu.Line, len(line), mu.TextLen)
		}
		if !strings.HasPrefix(line, mu.Text) {
			t.Errorf("%s at line %d: output %.60q does not start with manifest text %.60q", mu.Op, mu.Line, line, mu.Text)
		}
	}
}

func TestDuplicateInsertsCopies(t *testing.T) {
	in := syslogInput(50)
	out, m := Apply(in, Config{Seed: 3, Ops: []Op{OpDuplicate}, MaxPerOp: 1, BlockLines: 4})
	got := lines(out)
	if len(got) != 54 {
		t.Fatalf("output has %d lines, want 54", len(got))
	}
	if n := len(m.Mutations); n != 1 {
		t.Fatalf("%d mutations, want 1", n)
	}
	mu := m.Mutations[0]
	if mu.Op != "duplicate" || mu.Lines != 4 || mu.Corrupting {
		t.Fatalf("unexpected mutation %+v", mu)
	}
	for i := 0; i < mu.Lines; i++ {
		orig, dup := got[mu.Line-1-mu.Lines+i], got[mu.Line-1+i]
		if orig != dup {
			t.Errorf("inserted line %d is not a copy:\n orig %q\n dup  %q", mu.Line+i, orig, dup)
		}
	}
}

func TestReorderPreservesLines(t *testing.T) {
	in := syslogInput(60)
	out, m := Apply(in, Config{Seed: 5, Ops: []Op{OpReorder}, MaxPerOp: 2, BlockLines: 3})
	got, want := lines(out), lines(in)
	if len(got) != len(want) {
		t.Fatalf("line count changed: %d -> %d", len(want), len(got))
	}
	count := func(ls []string) map[string]int {
		c := make(map[string]int)
		for _, l := range ls {
			c[l]++
		}
		return c
	}
	if !reflect.DeepEqual(count(got), count(want)) {
		t.Error("reorder changed line contents, not just order")
	}
	if bytes.Equal(out, in) {
		t.Error("reorder left the archive unchanged")
	}
	for _, mu := range m.Mutations {
		if mu.Op != "reorder" || mu.Lines != 6 {
			t.Errorf("unexpected mutation %+v", mu)
		}
	}
}

func TestInterleaveMergesLines(t *testing.T) {
	in := syslogInput(40)
	out, m := Apply(in, Config{Seed: 11, Ops: []Op{OpInterleave}, MaxPerOp: 1})
	got := lines(out)
	if len(got) != 39 {
		t.Fatalf("output has %d lines, want 39", len(got))
	}
	mu := m.Mutations[0]
	if !mu.Corrupting || mu.Op != "interleave" {
		t.Fatalf("unexpected mutation %+v", mu)
	}
	// The torn line holds both victims' content: longer than any input line.
	if mu.TextLen <= len(lines(in)[0]) {
		t.Errorf("torn line length %d not longer than a single line", mu.TextLen)
	}
}

func TestOversizeExceedsCap(t *testing.T) {
	in := syslogInput(20)
	out, m := Apply(in, Config{Seed: 1, Ops: []Op{OpOversize}, MaxPerOp: 1})
	mu := m.Mutations[0]
	if mu.TextLen <= parse.MaxLineBytes {
		t.Fatalf("oversize line is %d bytes, want > %d", mu.TextLen, parse.MaxLineBytes)
	}
	line := lines(out)[mu.Line-1]
	if perr := parse.CheckLine(line); perr == nil || perr.Kind != parse.KindOversize {
		t.Errorf("oversized line checks as %v, want KindOversize", perr)
	}
}

func TestEncodingInjectsInvalidBytes(t *testing.T) {
	in := syslogInput(20)
	out, m := Apply(in, Config{Seed: 2, Ops: []Op{OpEncoding}, MaxPerOp: 1})
	mu := m.Mutations[0]
	line := lines(out)[mu.Line-1]
	if perr := parse.CheckLine(line); perr == nil || perr.Kind != parse.KindEncoding {
		t.Errorf("encoding-mutated line checks as %v, want KindEncoding", perr)
	}
}

func TestSkewKeepsLinesParseable(t *testing.T) {
	t.Run("syslog", func(t *testing.T) {
		in := syslogInput(20)
		out, m := Apply(in, Config{Seed: 4, Ops: []Op{OpSkew}, MaxPerOp: 1})
		mu := m.Mutations[0]
		l, err := syslogx.Parse(lines(out)[mu.Line-1])
		if err != nil {
			t.Fatalf("skewed syslog line no longer parses: %v", err)
		}
		orig, err := syslogx.Parse(mu.Original)
		if err != nil {
			t.Fatal(err)
		}
		if l.Time.Equal(orig.Time) {
			t.Error("skew did not move the timestamp")
		}
	})
	t.Run("accounting", func(t *testing.T) {
		in := accountingInput(20)
		out, m := Apply(in, Config{Seed: 4, Ops: []Op{OpSkew}, MaxPerOp: 1})
		mu := m.Mutations[0]
		r, err := wlm.ParseRecord(lines(out)[mu.Line-1], time.UTC)
		if err != nil {
			t.Fatalf("skewed accounting line no longer parses: %v", err)
		}
		orig, err := wlm.ParseRecord(mu.Original, time.UTC)
		if err != nil {
			t.Fatal(err)
		}
		if r.Time.Equal(orig.Time) {
			t.Error("skew did not move the timestamp")
		}
	})
}

func TestFieldDropRemovesOneField(t *testing.T) {
	in := accountingInput(20)
	out, m := Apply(in, Config{Seed: 6, Ops: []Op{OpFieldDrop}, MaxPerOp: 1})
	mu := m.Mutations[0]
	orig, err := wlm.ParseRecord(mu.Original, time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	r, err := wlm.ParseRecord(lines(out)[mu.Line-1], time.UTC)
	if err != nil {
		t.Fatalf("field-dropped accounting line no longer parses: %v", err)
	}
	if len(r.Fields) != len(orig.Fields)-1 {
		t.Errorf("mutated record has %d fields, want %d", len(r.Fields), len(orig.Fields)-1)
	}
}

func TestBudgetBoundsMutationCount(t *testing.T) {
	in := syslogInput(1000)
	_, m := Apply(in, Config{Seed: 9, Budget: 0.002, Ops: []Op{OpTruncate, OpEncoding}})
	// round(0.002*1000) = 2 per operator.
	byOp := m.CountByOp()
	if byOp["truncate"] != 2 || byOp["encoding"] != 2 {
		t.Errorf("per-op counts = %v, want 2 each", byOp)
	}
	_, m = Apply(in, Config{Seed: 9, Budget: 0.5, MaxPerOp: 3, Ops: []Op{OpTruncate}})
	if got := len(m.Mutations); got != 3 {
		t.Errorf("MaxPerOp ignored: %d mutations, want 3", got)
	}
}

func TestApplyEmptyAndTinyInputs(t *testing.T) {
	if out, m := Apply(nil, Config{Seed: 1}); len(out) != 0 || len(m.Mutations) != 0 {
		t.Errorf("empty input mutated: %d bytes, %d mutations", len(out), len(m.Mutations))
	}
	out, m := Apply([]byte("x\n"), Config{Seed: 1})
	if m.OutputLines != len(lines(out)) {
		t.Errorf("tiny input: OutputLines %d vs %d actual", m.OutputLines, len(lines(out)))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	in := syslogInput(100)
	_, m := Apply(in, Config{Seed: 8, Budget: 0.05, MaxPerOp: 2})
	if len(m.Mutations) == 0 {
		t.Fatal("no mutations to round-trip")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("manifest round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if _, err := ReadManifest(strings.NewReader("{broken")); err == nil {
		t.Error("ReadManifest accepted broken JSON")
	}
}

func TestCorruptingAndLinesAffected(t *testing.T) {
	in := syslogInput(200)
	_, m := Apply(in, Config{Seed: 10, Budget: 0.02, MaxPerOp: 2})
	corrupting := m.Corrupting()
	var want int
	for _, mu := range m.Mutations {
		if mu.Corrupting {
			want++
		}
	}
	if len(corrupting) != want {
		t.Errorf("Corrupting() returned %d, want %d", len(corrupting), want)
	}
	if m.LinesAffected() < len(m.Mutations) {
		t.Errorf("LinesAffected %d < mutation count %d", m.LinesAffected(), len(m.Mutations))
	}
}

func TestOpFromString(t *testing.T) {
	for _, o := range AllOps() {
		got, ok := OpFromString(o.String())
		if !ok || got != o {
			t.Errorf("OpFromString(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := OpFromString("nope"); ok {
		t.Error("OpFromString accepted unknown name")
	}
}
