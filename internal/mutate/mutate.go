// Package mutate is a deterministic log-corruption engine for robustness
// testing: it applies composable, seeded corruption operators to a
// line-structured archive and records every mutation in a Manifest, so a
// test can reconcile exactly what the ingestion pipeline reported against
// what was injected. The operators model the corruption classes real HPC
// log archives exhibit — torn writes from interleaved writers, truncated
// lines at rotation boundaries, duplicated and reordered writer buffers,
// clock skew, binary garbage, dropped fields and runaway lines.
//
// Determinism is the point: the same input, Config and Seed produce the
// same output and Manifest, byte for byte, so robustness failures
// reproduce. Every mutation claims fresh victim lines (no line is mutated
// twice), which keeps reconciliation exact: each corrupting mutation maps
// to one final line whose acceptance is re-checked with the real parsers.
package mutate

import (
	"math/rand"
	"sort"
	"strings"
	"time"

	"logdiver/internal/parse"
)

// Op identifies one corruption operator.
type Op int

// The corruption operators, in canonical application order. Structural
// operators (OpDuplicate, OpReorder, OpInterleave) change the line count;
// the rest rewrite single lines in place.
const (
	// OpDuplicate re-inserts a copy of a block of lines right after the
	// original, as a flushed-twice writer buffer would.
	OpDuplicate Op = iota
	// OpReorder swaps two adjacent blocks of lines, as racing writer
	// buffers would.
	OpReorder
	// OpInterleave splices one line whole into the middle of the previous
	// line — a torn write from two unsynchronized writers.
	OpInterleave
	// OpTruncate cuts a line at a random interior byte, as a crash mid-write
	// or a rotation boundary would.
	OpTruncate
	// OpSkew shifts a line's timestamp by a random offset within SkewMax,
	// possibly moving it backwards (clock regression). The line stays
	// parseable; the corruption is semantic.
	OpSkew
	// OpEncoding injects a NUL or an invalid UTF-8 byte.
	OpEncoding
	// OpFieldDrop deletes one key=value field from the line.
	OpFieldDrop
	// OpOversize pads the line beyond parse.MaxLineBytes.
	OpOversize
	numOps
)

// String names the operator as recorded in Manifest entries.
func (o Op) String() string {
	//ldvet:exhaustive
	switch o {
	case OpDuplicate:
		return "duplicate"
	case OpReorder:
		return "reorder"
	case OpInterleave:
		return "interleave"
	case OpTruncate:
		return "truncate"
	case OpSkew:
		return "skew"
	case OpEncoding:
		return "encoding"
	case OpFieldDrop:
		return "fielddrop"
	case OpOversize:
		return "oversize"
	default:
		return "unknown"
	}
}

// AllOps returns every operator in canonical order.
func AllOps() []Op {
	ops := make([]Op, 0, int(numOps))
	for o := Op(0); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

// OpFromString parses an operator name (the Op.String vocabulary).
func OpFromString(s string) (Op, bool) {
	for o := Op(0); o < numOps; o++ {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Config tunes the corruption engine. The zero value (plus a Seed) selects
// every operator at a 1% per-operator budget.
type Config struct {
	// Seed drives all randomness; equal seeds give equal mutations.
	Seed int64
	// Budget is the per-operator corruption budget as a fraction of the
	// input line count: each selected operator mutates
	// max(1, round(Budget*lines)) victims (fewer if the input runs out of
	// eligible lines). 0 selects DefaultBudget; values are clamped to 1.
	Budget float64
	// Ops selects the operators to apply; nil selects AllOps.
	Ops []Op
	// MaxPerOp caps the victims per operator regardless of budget
	// (0 = uncapped). Oversize mutations cost ~1 MiB each; tests on large
	// inputs cap them.
	MaxPerOp int
	// BlockLines is the block length of the structural operators
	// (duplicate, reorder); 0 selects DefaultBlockLines.
	BlockLines int
	// SkewMax bounds the timestamp shift of OpSkew; 0 selects
	// DefaultSkewMax.
	SkewMax time.Duration
	// OversizePad is how far beyond parse.MaxLineBytes OpOversize pads;
	// 0 selects DefaultOversizePad.
	OversizePad int
}

// Config defaults.
const (
	DefaultBudget      = 0.01
	DefaultBlockLines  = 4
	DefaultSkewMax     = time.Hour
	DefaultOversizePad = 64
)

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.Budget > 1 {
		c.Budget = 1
	}
	if c.Ops == nil {
		c.Ops = AllOps()
	}
	if c.BlockLines <= 0 {
		c.BlockLines = DefaultBlockLines
	}
	if c.SkewMax <= 0 {
		c.SkewMax = DefaultSkewMax
	}
	if c.OversizePad <= 0 {
		c.OversizePad = DefaultOversizePad
	}
	return c
}

// cell is one line of the working document. Mutations claim cells so no
// line is affected twice; mut links a corrupting (text-rewriting) mutation
// to its cell for final line-number resolution.
type cell struct {
	text    string
	claimed bool
	mut     *Mutation
	anchor  *Mutation // structural mutation anchored at this cell
}

// engine is one Apply run.
type engine struct {
	cfg   Config
	rng   *rand.Rand
	cells []*cell
	muts  []*Mutation
}

// Apply corrupts input under cfg and returns the mutated archive together
// with the manifest of every mutation. Apply never fails: an input with too
// few eligible lines simply receives fewer mutations than the budget allows
// (down to none), and the manifest records what actually happened.
func Apply(input []byte, cfg Config) ([]byte, *Manifest) {
	cfg = cfg.withDefaults()
	text := string(input)
	trailingNL := strings.HasSuffix(text, "\n")
	if trailingNL {
		text = strings.TrimSuffix(text, "\n")
	}
	e := &engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	inputLines := 0
	if text != "" {
		raw := strings.Split(text, "\n")
		inputLines = len(raw)
		e.cells = make([]*cell, len(raw))
		for i, s := range raw {
			e.cells[i] = &cell{text: s}
		}
	}

	perOp := int(cfg.Budget*float64(inputLines) + 0.5)
	if perOp < 1 {
		perOp = 1
	}
	if cfg.MaxPerOp > 0 && perOp > cfg.MaxPerOp {
		perOp = cfg.MaxPerOp
	}

	// Canonical operator order (not the order given in cfg.Ops) keeps equal
	// configs equal regardless of slice order.
	enabled := make([]bool, numOps)
	for _, o := range cfg.Ops {
		if o >= 0 && o < numOps {
			enabled[o] = true
		}
	}
	for o := Op(0); o < numOps; o++ {
		if !enabled[o] {
			continue
		}
		for n := 0; n < perOp; n++ {
			if !e.applyOne(o) {
				break // no eligible victims left for this operator
			}
		}
	}

	m := &Manifest{
		Seed:        cfg.Seed,
		Budget:      cfg.Budget,
		InputLines:  inputLines,
		OutputLines: len(e.cells),
	}
	// Resolve final line numbers: cells know their mutations, the walk
	// assigns 1-based positions in the output archive.
	for i, c := range e.cells {
		if c.mut != nil {
			c.mut.Line = i + 1
		}
		if c.anchor != nil {
			c.anchor.Line = i + 1
		}
	}
	for _, mu := range e.muts {
		m.Mutations = append(m.Mutations, *mu)
	}
	sort.SliceStable(m.Mutations, func(i, j int) bool { return m.Mutations[i].Line < m.Mutations[j].Line })

	var b strings.Builder
	for i, c := range e.cells {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.text)
	}
	if trailingNL && len(e.cells) > 0 {
		b.WriteByte('\n')
	}
	return []byte(b.String()), m
}

// applyOne applies a single mutation of operator o to a freshly chosen
// victim, returning false when no eligible victim remains.
func (e *engine) applyOne(o Op) bool {
	//ldvet:exhaustive
	switch o {
	case OpDuplicate:
		return e.duplicate()
	case OpReorder:
		return e.reorder()
	case OpInterleave:
		return e.interleave()
	case OpTruncate:
		return e.rewrite(o, func(s string) (string, bool) {
			if len(s) < 2 {
				return "", false
			}
			return s[:1+e.rng.Intn(len(s)-1)], true
		})
	case OpSkew:
		return e.rewrite(o, e.skewLine)
	case OpEncoding:
		return e.rewrite(o, func(s string) (string, bool) {
			if s == "" {
				return "", false
			}
			pos := e.rng.Intn(len(s))
			bad := "\x00"
			if e.rng.Intn(2) == 1 {
				bad = "\xff\xfe"
			}
			return s[:pos] + bad + s[pos:], true
		})
	case OpFieldDrop:
		return e.rewrite(o, e.dropField)
	case OpOversize:
		return e.rewrite(o, func(s string) (string, bool) {
			if s == "" {
				return "", false
			}
			pad := parse.MaxLineBytes - len(s) + e.cfg.OversizePad
			if pad <= 0 {
				return "", false // already oversized; nothing to do
			}
			return s + strings.Repeat("x", pad), true
		})
	default:
		return false
	}
}

// rewrite picks one unclaimed victim cell that fn accepts, replaces its
// text, and records the mutation. fn returning ok == false rejects the
// candidate (no-op mutations are never recorded).
func (e *engine) rewrite(o Op, fn func(string) (string, bool)) bool {
	for _, i := range e.rng.Perm(len(e.cells)) {
		c := e.cells[i]
		if c.claimed {
			continue
		}
		out, ok := fn(c.text)
		if !ok || out == c.text {
			continue
		}
		mu := &Mutation{
			Op:         o.String(),
			Lines:      1,
			Corrupting: true,
			Original:   parse.Truncate(c.text),
			Text:       parse.Truncate(out),
			TextLen:    len(out),
		}
		c.text = out
		c.claimed = true
		c.mut = mu
		e.muts = append(e.muts, mu)
		return true
	}
	return false
}

// span reports whether cells[i:i+n] exist and are all unclaimed.
func (e *engine) span(i, n int) bool {
	if i < 0 || i+n > len(e.cells) {
		return false
	}
	for _, c := range e.cells[i : i+n] {
		if c.claimed {
			return false
		}
	}
	return true
}

// duplicate copies a block of BlockLines unclaimed lines and re-inserts the
// copy right after the original. The copies are new, claimed cells; the
// manifest entry anchors at the first copy.
func (e *engine) duplicate() bool {
	n := e.cfg.BlockLines
	if n > len(e.cells) {
		n = len(e.cells)
	}
	if n == 0 {
		return false
	}
	for _, i := range e.rng.Perm(len(e.cells) - n + 1) {
		if !e.span(i, n) {
			continue
		}
		mu := &Mutation{Op: OpDuplicate.String(), Lines: n}
		dup := make([]*cell, n)
		for k, c := range e.cells[i : i+n] {
			c.claimed = true
			dup[k] = &cell{text: c.text, claimed: true}
		}
		dup[0].anchor = mu
		e.cells = append(e.cells[:i+n], append(dup, e.cells[i+n:]...)...)
		e.muts = append(e.muts, mu)
		return true
	}
	return false
}

// reorder swaps two adjacent blocks of BlockLines unclaimed lines. The
// manifest entry anchors at the first line of the swapped region and spans
// both blocks.
func (e *engine) reorder() bool {
	n := e.cfg.BlockLines
	if 2*n > len(e.cells) {
		n = len(e.cells) / 2
	}
	if n == 0 {
		return false
	}
	for _, i := range e.rng.Perm(len(e.cells) - 2*n + 1) {
		if !e.span(i, 2*n) {
			continue
		}
		mu := &Mutation{Op: OpReorder.String(), Lines: 2 * n}
		swapped := make([]*cell, 0, 2*n)
		swapped = append(swapped, e.cells[i+n:i+2*n]...)
		swapped = append(swapped, e.cells[i:i+n]...)
		for _, c := range swapped {
			c.claimed = true
		}
		copy(e.cells[i:i+2*n], swapped)
		swapped[0].anchor = mu
		e.muts = append(e.muts, mu)
		return true
	}
	return false
}

// interleave splices line i+1 whole into a random interior position of line
// i, producing a single torn line where two lines stood.
func (e *engine) interleave() bool {
	if len(e.cells) < 2 {
		return false
	}
	for _, i := range e.rng.Perm(len(e.cells) - 1) {
		a, b := e.cells[i], e.cells[i+1]
		if a.claimed || b.claimed || len(a.text) < 2 || b.text == "" {
			continue
		}
		k := 1 + e.rng.Intn(len(a.text)-1)
		out := a.text[:k] + b.text + a.text[k:]
		mu := &Mutation{
			Op:         OpInterleave.String(),
			Lines:      1,
			Corrupting: true,
			Original:   parse.Truncate(a.text),
			Text:       parse.Truncate(out),
			TextLen:    len(out),
		}
		a.text = out
		a.claimed = true
		a.mut = mu
		e.cells = append(e.cells[:i+1], e.cells[i+2:]...)
		e.muts = append(e.muts, mu)
		return true
	}
	return false
}

// Timestamp layouts the skew operator recognizes: the syslog wire format
// (RFC 3339 with microseconds) and the accounting stamp.
const (
	syslogLayout     = "2006-01-02T15:04:05.000000Z07:00"
	accountingLayout = "01/02/2006 15:04:05"
)

// skewLine shifts the line's leading timestamp by a uniform offset in
// [-SkewMax, +SkewMax] (never zero), preserving the layout. Lines that do
// not open with a recognized timestamp are rejected.
func (e *engine) skewLine(s string) (string, bool) {
	type layout struct {
		layout string
		sep    byte // byte terminating the timestamp field
	}
	//  Accounting stamps contain a space, so the field runs to the first ';';
	//  syslog stamps run to the first space.
	for _, l := range []layout{{syslogLayout, ' '}, {accountingLayout, ';'}} {
		idx := strings.IndexByte(s, l.sep)
		if idx <= 0 {
			continue
		}
		ts := s[:idx]
		t, err := time.Parse(l.layout, ts)
		if err != nil {
			continue
		}
		off := time.Duration(e.rng.Int63n(int64(2*e.cfg.SkewMax))) - e.cfg.SkewMax
		if off == 0 {
			off = time.Second
		}
		return t.Add(off).Format(l.layout) + s[idx:], true
	}
	return "", false
}

// dropField deletes one key=value token from the line. Lines without such a
// token are rejected.
func (e *engine) dropField(s string) (string, bool) {
	// Tokens are space-separated; a key=value token contains '=' with a
	// non-empty key. This matches both the accounting field list and the
	// apsys message body (whose ", "-separated fields also split on space).
	fields := strings.Split(s, " ")
	var candidates []int
	for i, f := range fields {
		if eq := strings.IndexByte(f, '='); eq > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	victim := candidates[e.rng.Intn(len(candidates))]
	out := append([]string(nil), fields[:victim]...)
	out = append(out, fields[victim+1:]...)
	return strings.Join(out, " "), true
}
