package mutate

import (
	"encoding/json"
	"fmt"
	"io"
)

// Mutation is one recorded corruption. Line numbers refer to the FINAL
// (mutated) archive, so a reconciler can address the affected lines
// directly; Apply resolves them after all operators have run.
type Mutation struct {
	// Op is the operator name (Op.String vocabulary).
	Op string `json:"op"`
	// Line is the 1-based line number in the mutated archive: the rewritten
	// line for corrupting mutations, the first affected line for structural
	// ones (the first inserted copy for duplicate, the first line of the
	// swapped region for reorder).
	Line int `json:"line"`
	// Lines is the number of affected lines (1 for corrupting mutations;
	// the inserted-copy count for duplicate; both blocks for reorder).
	Lines int `json:"lines"`
	// Corrupting reports whether the mutation rewrote line text. Structural
	// mutations (duplicate, reorder) move or copy well-formed lines instead.
	Corrupting bool `json:"corrupting"`
	// Original and Text are the pre- and post-mutation line text, truncated
	// to parse.SampleTextBytes (corrupting mutations only); TextLen is the
	// full post-mutation length, so oversize mutations are recognizable
	// without storing megabytes of padding.
	Original string `json:"original,omitempty"`
	Text     string `json:"text,omitempty"`
	TextLen  int    `json:"text_len,omitempty"`
}

// Manifest records everything one Apply run did, in final line order.
type Manifest struct {
	Seed        int64      `json:"seed"`
	Budget      float64    `json:"budget"`
	InputLines  int        `json:"input_lines"`
	OutputLines int        `json:"output_lines"`
	Mutations   []Mutation `json:"mutations"`
}

// CountByOp tallies mutations per operator name.
func (m *Manifest) CountByOp() map[string]int {
	out := make(map[string]int)
	for _, mu := range m.Mutations {
		out[mu.Op]++
	}
	return out
}

// LinesAffected sums the affected-line counts over all mutations.
func (m *Manifest) LinesAffected() int {
	n := 0
	for _, mu := range m.Mutations {
		n += mu.Lines
	}
	return n
}

// Corrupting returns the mutations that rewrote line text, in line order.
func (m *Manifest) Corrupting() []Mutation {
	var out []Mutation
	for _, mu := range m.Mutations {
		if mu.Corrupting {
			out = append(out, mu)
		}
	}
	return out
}

// WriteJSON serializes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest deserializes a manifest written by WriteJSON.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("mutate: bad manifest: %w", err)
	}
	return &m, nil
}
