package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/store"
)

// smallDataset generates a small synthetic archive set, optionally offset
// in time and reseeded, matching the store package's serving fixtures.
func smallDataset(t testing.TB, startOffsetDays int, seed int64) *gen.Dataset {
	t.Helper()
	cfg := gen.Default()
	cfg.Machine = machine.Small()
	cfg.Days = 1
	cfg.Seed = seed
	cfg.Start = cfg.Start.AddDate(0, 0, startOffsetDays)
	cfg.Workload.JobsPerDay = 150
	cfg.Workload.XECapabilityJobsPerDay = 2
	cfg.Workload.XKCapabilityJobsPerDay = 1
	cfg.Workload.XECapabilitySizes = []int{256, 512}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.NodeBenignPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 100
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// writeArchives appends the dataset's three archives to the conventional
// file names under dir.
func writeArchives(t testing.TB, dir string, ds *gen.Dataset) {
	t.Helper()
	appendTo := func(name string, write func(*strings.Builder) error) {
		var b strings.Builder
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(b.String()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	appendTo(store.AccountingFile, func(b *strings.Builder) error { return ds.WriteAccounting(b) })
	appendTo(store.ApsysFile, func(b *strings.Builder) error { return ds.WriteApsys(b) })
	appendTo(store.SyslogFile, func(b *strings.Builder) error { return ds.WriteErrorLog(b) })
}

// testFingerprint is the configuration identity shared by the fixtures.
func testFingerprint(ds *gen.Dataset) Fingerprint {
	return Fingerprint{
		Machine:   "small",
		Nodes:     ds.Topology.NumNodes(),
		ParseMode: "lenient",
		Rules:     RulesBuiltin,
		TimeZone:  "UTC",
	}
}

// firstLife runs one daemon "life": sync the archives under dir at the
// given parallelism and persist the resulting state to statePath.
func firstLife(t testing.TB, dir, statePath string, ds *gen.Dataset, par int) {
	t.Helper()
	st := store.New()
	sy, err := store.NewSyncer(store.SyncerConfig{
		Tailer:   store.NewTailer(dir),
		Store:    st,
		Topology: ds.Topology,
		Location: time.UTC,
		Options:  core.Options{Parallelism: par},
	})
	if err != nil {
		t.Fatal(err)
	}
	if installed, err := sy.Sync(); err != nil || !installed {
		t.Fatalf("first-life sync: %v, %v", installed, err)
	}
	sst, err := sy.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	err = Save(statePath, &State{
		SavedAt:     time.Now(),
		Epoch:       st.Epoch(),
		Fingerprint: testFingerprint(ds),
		Syncer:      sst,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// analyzeFiles runs the batch pipeline over the archives on disk.
func analyzeFiles(t testing.TB, dir string, ds *gen.Dataset, par int) *core.Result {
	t.Helper()
	open := func(name string) *os.File {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	acc, aps, sys := open(store.AccountingFile), open(store.ApsysFile), open(store.SyslogFile)
	defer acc.Close()
	defer aps.Close()
	defer sys.Close()
	res, err := core.Analyze(core.Archives{
		Accounting: acc, Apsys: aps, Syslog: sys, Location: time.UTC,
	}, ds.Topology, core.Options{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir, stateDir := t.TempDir(), t.TempDir()
	statePath := filepath.Join(stateDir, StateFile)
	ds := smallDataset(t, 0, 21)
	writeArchives(t, dir, ds)
	firstLife(t, dir, statePath, ds, 0)

	loaded, err := Load(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch != 1 {
		t.Errorf("epoch %d, want 1", loaded.Epoch)
	}
	if diff := loaded.Fingerprint.Diff(testFingerprint(ds)); diff != "" {
		t.Errorf("fingerprint diverged after round trip: %s", diff)
	}
	if loaded.Syncer.Ingest.Rounds != 1 || loaded.Syncer.Ingest.SyslogLines == 0 {
		t.Errorf("ingest stats lost: %+v", loaded.Syncer.Ingest)
	}
	if got := len(loaded.Syncer.Pipeline.Attr); got != len(ds.Runs) {
		t.Errorf("attribution carry has %d runs, want %d", got, len(ds.Runs))
	}
	for i, f := range loaded.Syncer.Tailer.Files {
		if f.Offset <= 0 {
			t.Errorf("archive %d: offset %d after ingesting data", i, f.Offset)
		}
	}
	// Saving over an existing file replaces it atomically.
	loaded.Epoch = 7
	if err := Save(statePath, loaded); err != nil {
		t.Fatal(err)
	}
	again, err := Load(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != 7 {
		t.Errorf("epoch %d after re-save, want 7", again.Epoch)
	}
}

// TestDifferentialWarmRestart is the tentpole acceptance: persist after day
// one, let the archive grow while "down", warm-restart, sync once — the
// snapshot must equal a from-scratch Analyze over the full archives, field
// for field, and the epoch must continue the persisted sequence. The
// cross-parallelism cases pin that a state built at one worker count is
// sound to restore under another (the fingerprint deliberately ignores it).
func TestDifferentialWarmRestart(t *testing.T) {
	cases := []struct{ firstPar, secondPar int }{
		{1, 1},
		{4, 4},
		{1, 4},
		{4, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("parallelism=%d to %d", tc.firstPar, tc.secondPar), func(t *testing.T) {
			dir, stateDir := t.TempDir(), t.TempDir()
			statePath := filepath.Join(stateDir, StateFile)
			ds := smallDataset(t, 0, 21)
			writeArchives(t, dir, ds)
			firstLife(t, dir, statePath, ds, tc.firstPar)

			// The archive grows while the daemon is down.
			writeArchives(t, dir, smallDataset(t, 2, 22))

			loaded, err := Load(statePath)
			if err != nil {
				t.Fatal(err)
			}
			if diff := loaded.Fingerprint.Diff(testFingerprint(ds)); diff != "" {
				t.Fatalf("fingerprint mismatch on restore: %s", diff)
			}
			st := store.New()
			if err := st.Restore(loaded.Epoch); err != nil {
				t.Fatal(err)
			}
			sy, err := store.NewSyncer(store.SyncerConfig{
				Tailer:   store.NewTailer(dir),
				Store:    st,
				Topology: ds.Topology,
				Location: time.UTC,
				Options:  core.Options{Parallelism: tc.secondPar},
				Resume:   loaded.Syncer,
			})
			if err != nil {
				t.Fatal(err)
			}
			if installed, err := sy.Sync(); err != nil || !installed {
				t.Fatalf("warm sync: %v, %v", installed, err)
			}
			snap := st.Current()
			if snap.Epoch != loaded.Epoch+1 {
				t.Errorf("epoch %d after warm restart, want %d", snap.Epoch, loaded.Epoch+1)
			}
			if snap.Ingest.Rounds != 2 {
				t.Errorf("ingest rounds %d across lives, want 2", snap.Ingest.Rounds)
			}

			want := analyzeFiles(t, dir, ds, tc.secondPar)
			if snap.Result.Parse != want.Parse {
				t.Fatalf("ParseStats diverged:\n got %+v\nwant %+v", snap.Result.Parse, want.Parse)
			}
			if !reflect.DeepEqual(snap.Result, want) {
				t.Fatalf("warm-restart Result diverged from from-scratch Analyze (%d vs %d runs, %d vs %d events)",
					len(snap.Result.Runs), len(want.Runs), len(snap.Result.Events), len(want.Events))
			}
		})
	}
}

// TestWarmRestartNoGrowth restores against unchanged archives: the first
// warm sync must install a snapshot (the API becomes ready) that equals the
// from-scratch analysis without re-reading any archive bytes.
func TestWarmRestartNoGrowth(t *testing.T) {
	dir, stateDir := t.TempDir(), t.TempDir()
	statePath := filepath.Join(stateDir, StateFile)
	ds := smallDataset(t, 0, 21)
	writeArchives(t, dir, ds)
	firstLife(t, dir, statePath, ds, 0)

	loaded, err := Load(statePath)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.Restore(loaded.Epoch); err != nil {
		t.Fatal(err)
	}
	sy, err := store.NewSyncer(store.SyncerConfig{
		Tailer:   store.NewTailer(dir),
		Store:    st,
		Topology: ds.Topology,
		Location: time.UTC,
		Resume:   loaded.Syncer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if installed, err := sy.Sync(); err != nil || !installed {
		t.Fatalf("warm sync: %v, %v", installed, err)
	}
	snap := st.Current()
	if snap.Epoch != 2 {
		t.Errorf("epoch %d, want 2", snap.Epoch)
	}
	// No new bytes were ingested, so the warm sync re-attributed nothing.
	if snap.Ingest.Reattributed != 0 {
		t.Errorf("warm sync over unchanged archives re-attributed %d runs", snap.Ingest.Reattributed)
	}
	want := analyzeFiles(t, dir, ds, 0)
	if !reflect.DeepEqual(snap.Result, want) {
		t.Fatal("warm-restart Result diverged from from-scratch Analyze")
	}
}

// TestCrashInjection corrupts a valid state file every way a crash or a bad
// disk can: every corruption must surface as a typed load error — never a
// panic, never a silently wrong state.
func TestCrashInjection(t *testing.T) {
	dir, stateDir := t.TempDir(), t.TempDir()
	statePath := filepath.Join(stateDir, StateFile)
	ds := smallDataset(t, 0, 21)
	writeArchives(t, dir, ds)
	firstLife(t, dir, statePath, ds, 0)
	valid, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}

	loadMutant := func(t *testing.T, b []byte) error {
		t.Helper()
		p := filepath.Join(t.TempDir(), StateFile)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(p)
		if err == nil {
			t.Fatal("Load accepted a corrupted state file")
		}
		return err
	}
	wantFormat := func(t *testing.T, err error) {
		t.Helper()
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("error %v (%T), want *FormatError", err, err)
		}
		if !strings.Contains(fe.Error(), StateFile) {
			t.Errorf("error does not name the file: %v", fe)
		}
	}

	t.Run("missing", func(t *testing.T) {
		_, err := Load(filepath.Join(t.TempDir(), StateFile))
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("error %v, want fs.ErrNotExist", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		wantFormat(t, loadMutant(t, nil))
	})
	t.Run("truncated", func(t *testing.T) {
		// A torn write can stop anywhere; sweep truncation points across
		// the header and the payload.
		points := []int{1, len(magic), headerSize - 1, headerSize, headerSize + 1,
			headerSize + (len(valid)-headerSize)/2, len(valid) - 1}
		for _, n := range points {
			wantFormat(t, loadMutant(t, valid[:n]))
		}
	})
	t.Run("bit-rot", func(t *testing.T) {
		// Flip one byte at a spread of offsets, header and payload alike.
		for off := 0; off < len(valid); off += len(valid)/17 + 1 {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0x40
			if _, err := Load(func() string {
				p := filepath.Join(t.TempDir(), StateFile)
				if err := os.WriteFile(p, mut, 0o644); err != nil {
					t.Fatal(err)
				}
				return p
			}()); err == nil {
				t.Fatalf("Load accepted a byte flip at offset %d", off)
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[len(magic)+3]++ // low byte of the big-endian version field
		err := loadMutant(t, mut)
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("error %v (%T), want *VersionError", err, err)
		}
		if ve.Got != Version+1 || ve.Want != Version {
			t.Errorf("VersionError got=%d want=%d", ve.Got, ve.Want)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		wantFormat(t, loadMutant(t, append(append([]byte(nil), valid...), "tail"...)))
	})
	t.Run("kill-mid-write", func(t *testing.T) {
		// A crash between temp-file creation and rename leaves a stray temp
		// alongside an intact old state: the old state must still load.
		stray := filepath.Join(stateDir, ".ldv-state-stray")
		if err := os.WriteFile(stray, valid[:len(valid)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Load(statePath)
		if err != nil {
			t.Fatalf("intact state failed to load next to a torn temp: %v", err)
		}
		if st.Epoch != 1 {
			t.Errorf("epoch %d, want 1", st.Epoch)
		}
	})
}

func TestFingerprint(t *testing.T) {
	base := Fingerprint{Machine: "bluewaters", Nodes: 26864, ParseMode: "lenient", Rules: RulesBuiltin, TimeZone: "UTC"}
	if d := base.Diff(base); d != "" {
		t.Errorf("equal fingerprints diff: %q", d)
	}
	cases := []struct {
		mutate func(*Fingerprint)
		word   string
	}{
		{func(f *Fingerprint) { f.Machine = "small" }, "machine"},
		{func(f *Fingerprint) { f.Nodes = 64 }, "topology"},
		{func(f *Fingerprint) { f.ParseMode = "strict" }, "parse mode"},
		{func(f *Fingerprint) { f.Rules = HashRules([]byte("rule")) }, "rules"},
		{func(f *Fingerprint) { f.TimeZone = "America/Chicago" }, "timezone"},
	}
	for _, tc := range cases {
		cur := base
		tc.mutate(&cur)
		d := base.Diff(cur)
		if d == "" || !strings.Contains(d, tc.word) {
			t.Errorf("diff %q does not name %q", d, tc.word)
		}
	}
	h := HashRules([]byte("x"))
	if !strings.HasPrefix(h, "sha256:") || h == HashRules([]byte("y")) {
		t.Errorf("HashRules misbehaves: %q", h)
	}
}

func TestSaveValidation(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), StateFile), nil); err == nil {
		t.Error("Save accepted a nil state")
	}
	// Saving into a missing directory fails cleanly rather than creating it:
	// the state dir is operator-owned.
	err := Save(filepath.Join(t.TempDir(), "no-such-dir", StateFile), &State{Syncer: &store.SyncerState{Pipeline: &core.IncrementalState{}}})
	if err == nil {
		t.Error("Save into a missing directory succeeded")
	}
}
