package persist

import (
	"path/filepath"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/store"
)

// BenchmarkRestore measures what a daemon restart costs with and without
// durable state over the same archives: "cold" rebuilds the analysis from
// the raw archives (the pre-persistence behavior), "warm" loads the state
// file and resumes. cmd/benchgate gates warm strictly faster than cold
// (BENCH_restore.json; -serial-name BenchmarkRestore/cold -parallel-name
// BenchmarkRestore/warm -min-procs 1 — the speedup comes from skipping
// re-ingestion, not from cores). Both paths end with an installed snapshot
// covering every run, asserted each iteration.
func BenchmarkRestore(b *testing.B) {
	dir, stateDir := b.TempDir(), b.TempDir()
	statePath := filepath.Join(stateDir, StateFile)
	ds := smallDataset(b, 0, 21)
	writeArchives(b, dir, ds)
	firstLife(b, dir, statePath, ds, 0)

	checkSnap := func(b *testing.B, st *store.Store) {
		b.Helper()
		snap := st.Current()
		if snap == nil || snap.Outcomes.Total != len(ds.Runs) {
			b.Fatalf("restart produced a wrong snapshot: %+v", snap)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := store.New()
			sy, err := store.NewSyncer(store.SyncerConfig{
				Tailer:   store.NewTailer(dir),
				Store:    st,
				Topology: ds.Topology,
				Location: time.UTC,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sy.Sync(); err != nil {
				b.Fatal(err)
			}
			checkSnap(b, st)
		}
	})

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loaded, err := Load(statePath)
			if err != nil {
				b.Fatal(err)
			}
			st := store.New()
			if err := st.Restore(loaded.Epoch); err != nil {
				b.Fatal(err)
			}
			sy, err := store.NewSyncer(store.SyncerConfig{
				Tailer:   store.NewTailer(dir),
				Store:    st,
				Topology: ds.Topology,
				Location: time.UTC,
				Resume:   loaded.Syncer,
				Options:  core.Options{},
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sy.Sync(); err != nil {
				b.Fatal(err)
			}
			checkSnap(b, st)
		}
	})
}
