package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// RulesBuiltin is the Rules identity of the compiled-in taxonomy.
const RulesBuiltin = "builtin"

// Fingerprint identifies the configuration an analysis state was built
// under. Two runs with equal fingerprints produce byte-identical analyses
// of the same archives, so restoring across equal fingerprints is sound.
// Parallelism is deliberately absent: the pipeline's results are
// parallelism-invariant (pinned by the differential tests), so an operator
// may resize the worker pool across a restart without losing the state.
type Fingerprint struct {
	// Machine is the machine model name (e.g. "bluewaters").
	Machine string `json:"machine"`
	// Nodes is the topology's node count, a cheap structural check that
	// the named model still means the same machine.
	Nodes int `json:"nodes"`
	// ParseMode is the malformed-input policy ("lenient" or "strict").
	// It shapes assembler state, so it must match to resume.
	ParseMode string `json:"parse_mode"`
	// Rules identifies the classifier rule set: RulesBuiltin, or
	// "sha256:<hex>" of the rule file bytes (HashRules).
	Rules string `json:"rules"`
	// TimeZone is the accounting timestamp zone name.
	TimeZone string `json:"time_zone"`
}

// HashRules returns the Rules identity of a custom rule file's bytes.
func HashRules(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Diff compares the persisted fingerprint against the running
// configuration and returns a human-readable description of the first
// mismatch, or "" when the configurations are interchangeable.
func (f Fingerprint) Diff(cur Fingerprint) string {
	switch {
	case f.Machine != cur.Machine:
		return fmt.Sprintf("machine: state built for %q, running %q", f.Machine, cur.Machine)
	case f.Nodes != cur.Nodes:
		return fmt.Sprintf("topology: state built for %d nodes, running %d", f.Nodes, cur.Nodes)
	case f.ParseMode != cur.ParseMode:
		return fmt.Sprintf("parse mode: state built under %q, running %q", f.ParseMode, cur.ParseMode)
	case f.Rules != cur.Rules:
		return fmt.Sprintf("classifier rules: state built with %s, running %s", f.Rules, cur.Rules)
	case f.TimeZone != cur.TimeZone:
		return fmt.Sprintf("timezone: state built in %q, running %q", f.TimeZone, cur.TimeZone)
	}
	return ""
}
