// Package persist gives the daemon durable state: a versioned, checksummed,
// crash-safe on-disk representation of everything the online subsystem needs
// to warm-start — the incremental pipeline's resume state, the tailer's
// offsets and partial-line carry, the ingest counters, and the last
// published epoch. It is the state-persistence resilience pattern from the
// source study applied to the analyzer itself: a daemon restart costs a
// state-file read instead of a full re-ingest of the archive history.
//
// # File format
//
// A state file is a fixed binary header followed by a gob-encoded payload:
//
//	offset  size  field
//	0       8     magic "LDVSTATE"
//	8       4     format version, big-endian uint32
//	12      8     payload length, big-endian uint64
//	20      32    SHA-256 of the payload
//	52      ...   payload: gob(State)
//
// The checksum covers the payload only; the header fields are validated
// structurally. Any header or checksum violation is reported as a
// *FormatError, a version mismatch as a *VersionError — distinct types so
// callers can choose policy (the daemon rebuilds cold in lenient mode and
// refuses to start in strict mode, with the error naming the file and the
// reason either way).
//
// # Write protocol
//
// Save never exposes a torn file: it writes a temporary file in the target
// directory, fsyncs it, atomically renames it over the target, and fsyncs
// the directory. A crash at any point leaves either the complete old state
// or the complete new state. Readers (Load, `logdiver state`) detect every
// other corruption — truncation, bit rot, version skew — via the header.
//
// # What is and is not persisted
//
// State carries data, never policy: positions, accumulated records,
// counters, and the epoch. Configuration — machine model, parse mode,
// classifier rules, timezone — stays with the process, and a Fingerprint of
// it is stored alongside the state so a restart under different
// configuration is detected (Fingerprint.Diff) instead of silently blending
// two analyses.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"logdiver/internal/store"
)

// Version is the current state-file format version. Any change to the
// payload schema that gob cannot bridge bumps it; Load rejects other
// versions with a *VersionError rather than guessing.
const Version uint32 = 1

// StateFile is the conventional file name inside a daemon's -state-dir.
const StateFile = "state.ldv"

const (
	magic      = "LDVSTATE"
	headerSize = len(magic) + 4 + 8 + sha256.Size
	// maxPayload caps how much Load will allocate on the word of a header.
	// A daemon state for a 27k-node machine over years of logs is tens of
	// megabytes; a corrupted length field should not OOM the process.
	maxPayload = 1 << 32
)

// State is everything a warm start needs, as written to and read from disk.
type State struct {
	// SavedAt is the wall time of the Save call.
	SavedAt time.Time
	// Epoch is the last snapshot epoch published before saving. The
	// restarted store continues the sequence from here.
	Epoch uint64
	// Fingerprint identifies the configuration the state was built under.
	Fingerprint Fingerprint
	// Syncer is the full ingestion resume state.
	Syncer *store.SyncerState
}

// FormatError reports a structurally invalid state file: bad magic,
// truncated header or payload, trailing garbage, checksum mismatch, or an
// undecodable payload. It always names the file and the violated property.
type FormatError struct {
	Path   string
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("persist: %s: %s", e.Path, e.Reason)
}

// VersionError reports a state file written by an incompatible format
// version.
type VersionError struct {
	Path      string
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("persist: %s: state format version %d, this binary reads version %d", e.Path, e.Got, e.Want)
}

// Save writes st to path with the crash-safe protocol described in the
// package comment. The parent directory must exist.
func Save(path string, st *State) (err error) {
	if st == nil {
		return fmt.Errorf("persist: nil state")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("persist: encode state: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.BigEndian.AppendUint32(hdr, Version)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(payload.Len()))
	hdr = append(hdr, sum[:]...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ldv-state-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(hdr); err != nil {
		return fmt.Errorf("persist: %s: %w", tmp.Name(), err)
	}
	if _, err = tmp.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("persist: %s: %w", tmp.Name(), err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: %w", err)
	}
	// Fsync the directory so the rename itself survives a power loss.
	if d, derr := os.Open(dir); derr == nil {
		derr = d.Sync()
		if cerr := d.Close(); derr == nil {
			derr = cerr
		}
		if derr != nil {
			return fmt.Errorf("persist: sync %s: %w", dir, derr)
		}
	}
	return nil
}

// Load reads and validates a state file. Errors are typed: a missing file
// satisfies errors.Is(err, fs.ErrNotExist), structural corruption is a
// *FormatError, format skew a *VersionError. A nil error guarantees the
// payload round-tripped the checksum.
func Load(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize {
		return nil, &FormatError{path, fmt.Sprintf("truncated header: %d bytes, need %d", len(b), headerSize)}
	}
	if string(b[:len(magic)]) != magic {
		return nil, &FormatError{path, "bad magic: not a logdiver state file"}
	}
	off := len(magic)
	ver := binary.BigEndian.Uint32(b[off:])
	if ver != Version {
		return nil, &VersionError{Path: path, Got: ver, Want: Version}
	}
	off += 4
	plen := binary.BigEndian.Uint64(b[off:])
	if plen > maxPayload {
		return nil, &FormatError{path, fmt.Sprintf("payload length %d exceeds limit", plen)}
	}
	off += 8
	var want [sha256.Size]byte
	copy(want[:], b[off:])
	off += sha256.Size

	payload := b[off:]
	if uint64(len(payload)) < plen {
		return nil, &FormatError{path, fmt.Sprintf("truncated payload: %d bytes, header says %d", len(payload), plen)}
	}
	if uint64(len(payload)) > plen {
		return nil, &FormatError{path, fmt.Sprintf("trailing garbage: %d bytes past declared payload", uint64(len(payload))-plen)}
	}
	if sha256.Sum256(payload) != want {
		return nil, &FormatError{path, "payload checksum mismatch"}
	}
	var st State
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, &FormatError{path, fmt.Sprintf("undecodable payload: %v", err)}
	}
	if st.Syncer == nil || st.Syncer.Pipeline == nil {
		return nil, &FormatError{path, "payload decodes but carries no syncer state"}
	}
	return &st, nil
}
