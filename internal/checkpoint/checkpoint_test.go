package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Params{MTTIHours: 10, CheckpointHours: 0.1, RestartHours: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{MTTIHours: 0, CheckpointHours: 0.1},
		{MTTIHours: 10, CheckpointHours: 0},
		{MTTIHours: 10, CheckpointHours: 0.1, RestartHours: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func TestYoungIntervalKnownValue(t *testing.T) {
	// MTTI 8h, checkpoint 4 minutes: tau = sqrt(2 * (1/15) * 8) ~ 1.033h.
	p := Params{MTTIHours: 8, CheckpointHours: 1.0 / 15}
	got, err := YoungInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * (1.0 / 15) * 8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Young = %v, want %v", got, want)
	}
}

func TestDalyReducesToYoungForSmallCost(t *testing.T) {
	p := Params{MTTIHours: 100, CheckpointHours: 0.001}
	young, err := YoungInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	daly, err := DalyInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(daly-young)/young > 0.02 {
		t.Errorf("Daly %v should approach Young %v for tiny checkpoint cost", daly, young)
	}
}

func TestDalyLargeCostClamp(t *testing.T) {
	p := Params{MTTIHours: 1, CheckpointHours: 3}
	got, err := DalyInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != p.MTTIHours {
		t.Errorf("Daly with d >= 2M should clamp to MTTI, got %v", got)
	}
}

func TestEfficiencyShape(t *testing.T) {
	p := Params{MTTIHours: 10, CheckpointHours: 0.1, RestartHours: 0.1}
	daly, err := DalyInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	effOpt, err := Efficiency(p, daly)
	if err != nil {
		t.Fatal(err)
	}
	if effOpt <= 0 || effOpt >= 1 {
		t.Fatalf("efficiency at optimum = %v", effOpt)
	}
	// The optimum must beat both a much shorter and a much longer interval.
	for _, tau := range []float64{daly / 10, daly * 10} {
		eff, err := Efficiency(p, tau)
		if err != nil {
			t.Fatal(err)
		}
		if eff >= effOpt {
			t.Errorf("Efficiency(%v) = %v >= optimum %v", tau, eff, effOpt)
		}
	}
}

func TestEfficiencyErrors(t *testing.T) {
	p := Params{MTTIHours: 10, CheckpointHours: 0.1}
	if _, err := Efficiency(p, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Efficiency(Params{}, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEfficiencyImprovesWithMTTI(t *testing.T) {
	// Healthier machine -> higher achievable efficiency at the optimum.
	prev := 0.0
	for _, mtti := range []float64{1, 5, 25, 125} {
		p := Params{MTTIHours: mtti, CheckpointHours: 0.1, RestartHours: 0.1}
		tau, err := DalyInterval(p)
		if err != nil {
			t.Fatal(err)
		}
		eff, err := Efficiency(p, tau)
		if err != nil {
			t.Fatal(err)
		}
		if eff <= prev {
			t.Fatalf("efficiency %v at MTTI %v not above %v", eff, mtti, prev)
		}
		prev = eff
	}
}

func TestBuildPlan(t *testing.T) {
	p := Params{MTTIHours: 6, CheckpointHours: 0.2, RestartHours: 0.3}
	plan, err := BuildPlan(p, 24)
	if err != nil {
		t.Fatal(err)
	}
	if plan.YoungHours <= 0 || plan.DalyHours <= 0 {
		t.Errorf("plan intervals: %+v", plan)
	}
	if plan.EfficiencyAtDaly <= plan.EfficiencyUnprotected {
		t.Errorf("checkpointing (%v) should beat running a 24h job unprotected (%v) at MTTI 6h",
			plan.EfficiencyAtDaly, plan.EfficiencyUnprotected)
	}
	wantUnprotected := math.Exp(-24.0 / 6)
	if math.Abs(plan.EfficiencyUnprotected-wantUnprotected) > 1e-12 {
		t.Errorf("unprotected survival = %v, want %v", plan.EfficiencyUnprotected, wantUnprotected)
	}
	if _, err := BuildPlan(p, 0); err == nil {
		t.Error("zero reference run accepted")
	}
	if _, err := BuildPlan(Params{}, 24); err == nil {
		t.Error("invalid params accepted")
	}
}

// Property: Daly's interval maximizes the modeled efficiency to within the
// model's resolution against a coarse grid search.
func TestDalyNearOptimalProperty(t *testing.T) {
	f := func(mttiSeed, costSeed uint8) bool {
		mtti := 1 + float64(mttiSeed%40)      // 1..41 hours
		cost := 0.01 + float64(costSeed)/2000 // 0.01..0.14 hours
		p := Params{MTTIHours: mtti, CheckpointHours: cost, RestartHours: cost}
		daly, err := DalyInterval(p)
		if err != nil {
			return false
		}
		effDaly, err := Efficiency(p, daly)
		if err != nil {
			return false
		}
		// Grid search for a better interval.
		best := effDaly
		for tau := daly / 4; tau <= daly*4; tau *= 1.15 {
			eff, err := Efficiency(p, tau)
			if err != nil {
				return false
			}
			if eff > best {
				best = eff
			}
		}
		// The closed form must be within 2% relative of the grid optimum.
		return (best-effDaly)/best < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
