// Package checkpoint models checkpoint/restart economics on top of the
// measured interrupt rates: the Young and Daly optimal checkpoint
// intervals, the expected fraction of machine time spent on checkpoint
// overhead, rework after failures, and restart cost. The paper's first
// lesson prices the work lost to system failures; this package answers the
// follow-on question every Blue Waters team faced — how often to
// checkpoint, given the MTTI the study measured at each scale.
//
// The package is pure arithmetic over a Params triple (MTTI, checkpoint
// cost, restart cost), all in hours. Two layers build on it: the whatif
// counterfactual simulator uses DalyInterval to place checkpoints when
// replaying the measured run stream under a policy, and PlanByScale in
// internal/whatif (driving examples/checkpoint-planning) uses BuildPlan to
// turn a by-scale MTTI table into per-scale interval recommendations.
// Keeping both on this one implementation is what makes the planning
// numbers and the simulated charges agree.
package checkpoint

import (
	"fmt"
	"math"
)

// Params describes one application's checkpoint economics. All durations
// are hours; interrupts are modeled as exponential with mean MTTIHours.
type Params struct {
	// MTTIHours is the application-level mean time to interrupt. +Inf is
	// a valid value ("no interrupts ever observed"): the optimal intervals
	// become +Inf too, which callers read as "do not checkpoint".
	MTTIHours float64
	// CheckpointHours is the cost of writing one checkpoint.
	CheckpointHours float64
	// RestartHours is the cost of reading the checkpoint and restarting
	// after a failure.
	RestartHours float64
}

// Validate checks the parameters: MTTI and checkpoint cost must be
// positive (MTTI may be +Inf), restart cost non-negative.
func (p Params) Validate() error {
	if p.MTTIHours <= 0 {
		return fmt.Errorf("checkpoint: MTTI %v must be positive", p.MTTIHours)
	}
	if p.CheckpointHours <= 0 {
		return fmt.Errorf("checkpoint: checkpoint cost %v must be positive", p.CheckpointHours)
	}
	if p.RestartHours < 0 {
		return fmt.Errorf("checkpoint: restart cost %v must be non-negative", p.RestartHours)
	}
	return nil
}

// YoungInterval returns Young's first-order optimal checkpoint interval:
// sqrt(2 * delta * MTTI), with delta the checkpoint cost (Young, "A first
// order approximation to the optimum checkpoint interval", 1974). It is
// the stationary point of the overhead-plus-expected-rework cost when
// delta << MTTI; DalyInterval refines it when that assumption fails.
func YoungInterval(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return math.Sqrt(2 * p.CheckpointHours * p.MTTIHours), nil
}

// DalyInterval returns Daly's higher-order optimum (Daly, "A higher order
// estimate of the optimum checkpoint interval for restart dumps", 2006),
// which corrects Young's formula when the checkpoint cost d is not small
// relative to the MTTI M:
//
//	tau = sqrt(2 d M) * (1 + sqrt(d/(2M))/3 + (d/(2M))/9) - d   for d < 2M
//	tau = M                                                     otherwise
//
// The perturbation expansion behind the d < 2M branch loses accuracy as d
// approaches 2M, where Daly's recommendation degenerates to checkpointing
// once per MTTI. An infinite MTTI yields tau = +Inf: with no interrupts
// there is no interval worth paying for.
func DalyInterval(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	d, m := p.CheckpointHours, p.MTTIHours
	if d >= 2*m {
		return m, nil
	}
	r := math.Sqrt(d / (2 * m))
	return math.Sqrt(2*d*m)*(1+r/3+(d/(2*m))/9) - d, nil
}

// Efficiency estimates the fraction of wall-clock time that produces
// forward progress when checkpointing every tau hours under exponential
// interrupts with the given parameters. It accounts for checkpoint
// overhead, expected rework (work since the last checkpoint, lost at each
// interrupt) and restart cost.
//
// The model: each segment costs tau + delta to execute; an interrupt
// arrives at rate 1/MTTI; on average half a segment plus the restart is
// lost per interrupt. Efficiency = useful / (useful + overhead + loss).
func Efficiency(p Params, tau float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if tau <= 0 {
		return 0, fmt.Errorf("checkpoint: interval %v must be positive", tau)
	}
	m := p.MTTIHours
	// Per hour of useful work: checkpoint overhead delta/tau, and
	// interrupt losses (tau/2 rework + restart) every m hours of elapsed
	// time. Expressed as overhead fractions relative to useful time:
	overhead := p.CheckpointHours / tau
	lossPerHour := (tau/2 + p.RestartHours + p.CheckpointHours) / m
	eff := 1 / (1 + overhead + lossPerHour)
	if eff < 0 {
		eff = 0
	}
	return eff, nil
}

// Plan summarizes the checkpoint policy implied by a measured MTTI: both
// optimal intervals, the modeled efficiency at the Daly interval, and the
// unprotected survival probability for a reference-length run. It is the
// unit PlanByScale emits per scale bucket.
type Plan struct {
	Params
	// YoungHours and DalyHours are the two optimal intervals.
	YoungHours float64
	DalyHours  float64
	// EfficiencyAtDaly is the modeled machine efficiency when using the
	// Daly interval.
	EfficiencyAtDaly float64
	// EfficiencyUnprotected is the expected fraction of runs completing
	// without any checkpointing for a run of ReferenceRunHours.
	EfficiencyUnprotected float64
	// ReferenceRunHours is the run length used for the unprotected
	// comparison.
	ReferenceRunHours float64
}

// BuildPlan computes the full policy summary. referenceRunHours is the
// representative uninterrupted run length for the "no checkpointing"
// comparison (its survival probability under exponential interrupts).
func BuildPlan(p Params, referenceRunHours float64) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if referenceRunHours <= 0 {
		return Plan{}, fmt.Errorf("checkpoint: reference run length %v must be positive", referenceRunHours)
	}
	young, err := YoungInterval(p)
	if err != nil {
		return Plan{}, err
	}
	daly, err := DalyInterval(p)
	if err != nil {
		return Plan{}, err
	}
	eff, err := Efficiency(p, daly)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Params:                p,
		YoungHours:            young,
		DalyHours:             daly,
		EfficiencyAtDaly:      eff,
		EfficiencyUnprotected: math.Exp(-referenceRunHours / p.MTTIHours),
		ReferenceRunHours:     referenceRunHours,
	}, nil
}
