package errlog

import (
	"math/rand"
	"strings"
	"testing"

	"logdiver/internal/machine"
	"logdiver/internal/taxonomy"
)

func TestIsSystemWide(t *testing.T) {
	if (Event{Node: 5}).IsSystemWide() {
		t.Error("node-scoped event reported system-wide")
	}
	if !(Event{Node: SystemWide}).IsSystemWide() {
		t.Error("SystemWide event not reported system-wide")
	}
}

func TestTagStability(t *testing.T) {
	tests := []struct {
		cat  taxonomy.Category
		want string
	}{
		{taxonomy.HardwareMemoryUE, "HWERR"},
		{taxonomy.GPUMemoryDBE, "kernel"},
		{taxonomy.InterconnectLink, "xtnlrd"},
		{taxonomy.FilesystemLBUG, "kernel"},
		{taxonomy.NodeHeartbeat, "xtevent"},
		{taxonomy.SoftwareALPS, "apsys"},
		{taxonomy.Unclassified, "kernel"},
	}
	for _, tt := range tests {
		if got := Tag(tt.cat); got != tt.want {
			t.Errorf("Tag(%v) = %q, want %q", tt.cat, got, tt.want)
		}
	}
}

func TestRenderMentionsComponent(t *testing.T) {
	// Node-scoped hardware messages should reference the component so a
	// human reading the log can locate the fault.
	rng := rand.New(rand.NewSource(3))
	const cname = "c12-3c2s7n1"
	sawCname := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		msg := Render(taxonomy.HardwareMemoryUE, cname, rng)
		if strings.Contains(msg, cname) {
			sawCname++
		}
	}
	if sawCname == 0 {
		t.Error("no uncorrected-memory variant mentions the cname")
	}
}

func TestRenderUnknownCategory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if msg := Render(taxonomy.Unclassified, "c0-0c0s0n0", rng); msg == "" {
		t.Error("empty message for unknown category")
	}
}

func TestBladeAndGeminiPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Blade messages reference the blade cname, not the node.
	found := false
	for i := 0; i < 40; i++ {
		msg := Render(taxonomy.HardwareBlade, "c12-3c2s7n1", rng)
		if strings.Contains(msg, "c12-3c2s7") && !strings.Contains(msg, "c12-3c2s7n1") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no blade variant uses the blade prefix")
	}
	// Gemini messages reference the ASIC component ("...g0"/"...g1").
	found = false
	for i := 0; i < 40; i++ {
		msg := Render(taxonomy.InterconnectLink, "c12-3c2s7n3", rng)
		if strings.Contains(msg, "c12-3c2s7g1") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no link variant uses the gemini prefix (node 3 -> g1)")
	}
}

func TestPrefixFallbackOnBadCname(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A non-cname host must pass through unharmed rather than panic.
	msg := Render(taxonomy.HardwareBlade, "sdb", rng)
	if !strings.Contains(msg, "sdb") {
		t.Errorf("fallback host missing from %q", msg)
	}
}

func TestRenderDeterministicForSeed(t *testing.T) {
	a := Render(taxonomy.KernelPanic, "c0-0c0s0n0", rand.New(rand.NewSource(7)))
	b := Render(taxonomy.KernelPanic, "c0-0c0s0n0", rand.New(rand.NewSource(7)))
	if a != b {
		t.Errorf("same seed rendered %q and %q", a, b)
	}
}

func TestRenderNoNewlines(t *testing.T) {
	// Messages are embedded in line-oriented logs: newlines would corrupt
	// the archive.
	rng := rand.New(rand.NewSource(5))
	for _, cat := range taxonomy.Categories() {
		for i := 0; i < 25; i++ {
			msg := Render(cat, "c1-1c1s1n1", rng)
			if strings.ContainsAny(msg, "\n\r") {
				t.Fatalf("Render(%v) produced a newline: %q", cat, msg)
			}
		}
	}
}

func TestSystemWideConstant(t *testing.T) {
	if SystemWide != machine.NodeID(-1) {
		t.Errorf("SystemWide = %d, want -1", SystemWide)
	}
}
