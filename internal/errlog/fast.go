// Byte-oriented event construction for the ingestion hot path. The two
// helpers here remove the per-line allocations FromLine cannot avoid:
// HostCache memoizes host resolution (ParseCname and its error allocate on
// every service-host line otherwise), and EventBatch materializes retained
// message bodies in large batches — one string allocation per ~64 KiB of
// message text instead of one per event. FromLine remains the reference
// implementation; fast_test.go pins the two paths to each other.

package errlog

import (
	"logdiver/internal/machine"
)

// hostCacheCap bounds the cache so adversarial archives with unbounded
// distinct host fields cannot grow it without limit; past the cap,
// resolution still works but is no longer memoized.
const hostCacheCap = 1 << 16

// HostCache memoizes host-field resolution: dense node ID (or SystemWide)
// plus the canonical host string. One cache serves one goroutine; the
// parallel ingestion workers keep per-worker caches.
type HostCache struct {
	m map[string]hostEntry
}

type hostEntry struct {
	node  machine.NodeID
	cname string
}

// NewHostCache returns an empty cache.
func NewHostCache() *HostCache {
	return &HostCache{m: make(map[string]hostEntry, 64)}
}

// Resolve returns the node attribution and canonical string for a host
// field, with the exact semantics of FromLine: hosts that are not node
// cnames in the topology attribute to SystemWide. It allocates only the
// first time a distinct host is seen.
//
//ldvet:pooled
//ldvet:hotpath
func (h *HostCache) Resolve(host []byte, top *machine.Topology) (machine.NodeID, string) {
	if e, ok := h.m[string(host)]; ok {
		return e.node, e.cname
	}
	//ldvet:allow hotpath-alloc — first-sight host copy, amortized by the cache
	s := string(host)
	node := SystemWide
	if id, err := top.LookupString(s); err == nil {
		node = id
	}
	if len(h.m) < hostCacheCap {
		h.m[s] = hostEntry{node: node, cname: s}
	}
	return node, s
}

// EventBatch accumulates classified events whose Message bodies are still
// byte views, materializing the retained strings in batches: message bytes
// are copied into an internal buffer and converted to per-event substrings
// of one backing string per flushBytes of text. Append does not retain msg
// beyond the call.
type EventBatch struct {
	events []Event
	buf    []byte
	marks  []batchMark
}

type batchMark struct {
	idx, off, n int
}

// flushBytes is the buffered message text that triggers an internal flush.
const flushBytes = 64 << 10

// Append adds one event whose Message is supplied as a byte view.
//
//ldvet:pooled
//ldvet:hotpath
func (b *EventBatch) Append(e Event, msg []byte) {
	b.marks = append(b.marks, batchMark{idx: len(b.events), off: len(b.buf), n: len(msg)})
	b.events = append(b.events, e)
	b.buf = append(b.buf, msg...)
	if len(b.buf) >= flushBytes {
		b.flush()
	}
}

func (b *EventBatch) flush() {
	if len(b.marks) == 0 {
		return
	}
	s := string(b.buf)
	for _, m := range b.marks {
		b.events[m.idx].Message = s[m.off : m.off+m.n]
	}
	b.marks = b.marks[:0]
	b.buf = b.buf[:0]
}

// Finish materializes all pending messages and returns the accumulated
// events. The batch is reset and may be reused; the returned slice is not.
func (b *EventBatch) Finish() []Event {
	b.flush()
	out := b.events
	b.events = nil
	return out
}
