package errlog

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"logdiver/internal/machine"
)

// TestHostCacheResolveMatchesLookup pins cached resolution to the
// uncached topology lookup FromLine uses: node cnames resolve to their
// dense IDs, everything else attributes to SystemWide, and a second
// Resolve of the same host returns identical results.
func TestHostCacheResolveMatchesLookup(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHostCache()
	hosts := []string{
		"c0-0c0s0n0", "c0-0c0s0n1", "c0-0c1s2n3",
		"sdb", "nid00012", "boot001", "", "c99-9c9s9n9", "not a cname",
	}
	for _, h := range hosts {
		wantNode := SystemWide
		if id, lerr := top.LookupString(h); lerr == nil {
			wantNode = id
		}
		for pass := 0; pass < 2; pass++ {
			node, cname := cache.Resolve([]byte(h), top)
			if node != wantNode || cname != h {
				t.Errorf("Resolve(%q) pass %d = (%v, %q), want (%v, %q)", h, pass, node, cname, wantNode, h)
			}
		}
	}
}

// TestHostCacheResolveZeroAllocWarm gates the steady-state path: once a
// host is cached, resolving it again must not allocate.
func TestHostCacheResolveZeroAllocWarm(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHostCache()
	host := []byte("c0-0c0s0n1")
	cache.Resolve(host, top) // warm
	if n := testing.AllocsPerRun(200, func() {
		cache.Resolve(host, top)
	}); n != 0 {
		t.Errorf("warm Resolve allocates %.1f allocs/op, want 0", n)
	}
}

// TestEventBatchRoundTrip checks that Append/Finish preserve event order
// and attach exactly the appended message bytes, across the internal
// 64 KiB flush boundary, and that a finished batch is reusable.
func TestEventBatchRoundTrip(t *testing.T) {
	var b EventBatch
	// Big messages force several internal flushes; small ones ride along.
	big := strings.Repeat("x", 20<<10)
	var want []string
	for i := 0; i < 16; i++ {
		msg := fmt.Sprintf("event %d: %s", i, big[:1+(i*4096)%len(big)])
		want = append(want, msg)
		b.Append(Event{Time: time.Unix(int64(i), 0).UTC(), Node: SystemWide, Cname: "sdb"}, []byte(msg))
	}
	events := b.Finish()
	if len(events) != len(want) {
		t.Fatalf("Finish returned %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e.Message != want[i] {
			t.Errorf("event %d message length %d, want length %d", i, len(e.Message), len(want[i]))
		}
		if !e.Time.Equal(time.Unix(int64(i), 0).UTC()) {
			t.Errorf("event %d time = %v", i, e.Time)
		}
	}

	// Reuse after Finish: a second fill must not disturb the first result.
	b.Append(Event{Cname: "second"}, []byte("after reuse"))
	second := b.Finish()
	if len(second) != 1 || second[0].Message != "after reuse" {
		t.Fatalf("reused batch = %+v", second)
	}
	if events[0].Message != want[0] {
		t.Error("reusing the batch mutated previously returned events")
	}
}

// TestEventBatchDoesNotRetainMsg verifies Append copies the message view:
// mutating the caller's buffer after Append must not change the batch.
func TestEventBatchDoesNotRetainMsg(t *testing.T) {
	var b EventBatch
	buf := []byte("original body")
	b.Append(Event{}, buf)
	for i := range buf {
		buf[i] = '!'
	}
	events := b.Finish()
	if events[0].Message != "original body" {
		t.Errorf("batch retained caller buffer: message = %q", events[0].Message)
	}
}
