// Package errlog defines the typed error-event model shared by the log
// synthesizer and the analysis pipeline, together with Cray-style message
// templates for every taxonomy category. The synthesizer renders events to
// raw syslog text through these templates; the analysis pipeline parses the
// text back and re-derives the category with the taxonomy classifier, so
// the round trip genuinely exercises the classification rules.
package errlog

import (
	"fmt"
	"math/rand"
	"time"

	"logdiver/internal/machine"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
)

// SystemWide is the Node value of events that are not attributable to a
// single node (for example a Lustre MDT failover or an HSN quiesce).
const SystemWide machine.NodeID = -1

// Event is one error/failure record after classification.
type Event struct {
	// Time is the instant the event was logged.
	Time time.Time
	// Node is the dense node ID the event is attributed to, or SystemWide.
	Node machine.NodeID
	// Cname is the component name string as it appeared in the log
	// ("c1-3c2s7n1"), or a service host name for system-wide events.
	Cname string
	// Category and Severity come from the taxonomy classifier.
	Category taxonomy.Category
	Severity taxonomy.Severity
	// Message is the free-form message body.
	Message string
}

// IsSystemWide reports whether the event is machine-scoped rather than
// node-scoped.
func (e Event) IsSystemWide() bool { return e.Node == SystemWide }

// FromLine classifies one parsed syslog line into an Event. It is the
// single event-construction step shared by the sequential and parallel
// ingestion paths (so their classification and node attribution cannot
// drift): the message body is classified by cls, unclassifiable lines
// return ok == false, and hosts that are not node cnames attribute to
// SystemWide. Pure given a concurrency-safe classifier, so parallel block
// workers may call it freely.
func FromLine(l syslogx.Line, top *machine.Topology, cls *taxonomy.Classifier) (e Event, ok bool) {
	cat, sev := cls.Classify(l.Message)
	if cat == taxonomy.Unclassified {
		return Event{}, false
	}
	node := SystemWide
	if id, err := top.LookupString(l.Host); err == nil {
		node = id
	}
	return Event{
		Time:     l.Time,
		Node:     node,
		Cname:    l.Host,
		Category: cat,
		Severity: sev,
		Message:  l.Message,
	}, true
}

// Tag returns the syslog program tag under which events of this category
// are logged by the system software stack. It is a pure function, safe for
// concurrent use; the parallel log-emission workers in internal/gen call it
// from multiple goroutines. (Render, by contrast, consumes an *rand.Rand
// and must stay on one goroutine per rng.)
func Tag(cat taxonomy.Category) string {
	//ldvet:exhaustive
	switch cat.Group() {
	case taxonomy.GroupUnknown:
		return "kernel"
	case taxonomy.GroupHardware:
		return "HWERR"
	case taxonomy.GroupGPU:
		return "kernel"
	case taxonomy.GroupInterconnect:
		return "xtnlrd"
	case taxonomy.GroupFilesystem:
		return "kernel"
	case taxonomy.GroupNode:
		return "xtevent"
	case taxonomy.GroupSoftware:
		return "apsys"
	default:
		return "kernel"
	}
}

// Render produces a realistic raw message body for an event of the given
// category on the given component, choosing among several phrasings. The
// produced text is guaranteed (and tested) to classify back to the same
// category under taxonomy.Default().
func Render(cat taxonomy.Category, cname string, rng *rand.Rand) string {
	pick := func(variants ...string) string {
		return variants[rng.Intn(len(variants))]
	}
	//ldvet:exhaustive
	switch cat {
	case taxonomy.Unclassified:
		return "unclassified event of unknown origin"
	case taxonomy.HardwareMemoryCE:
		return pick(
			fmt.Sprintf("Machine Check Exception: corrected DRAM error on %s bank %d DIMM %d syndrome 0x%04x",
				cname, rng.Intn(8), rng.Intn(16), rng.Intn(1<<16)),
			fmt.Sprintf("EDAC MC%d: corrected memory error on CS row %d (channel %d)",
				rng.Intn(4), rng.Intn(8), rng.Intn(2)),
		)
	case taxonomy.HardwareMemoryUE:
		return pick(
			fmt.Sprintf("Machine Check Exception: uncorrected DRAM error on %s bank %d addr 0x%012x",
				cname, rng.Intn(8), rng.Int63n(1<<44)),
			fmt.Sprintf("EDAC MC%d: uncorrectable ECC memory error, node halted", rng.Intn(4)),
		)
	case taxonomy.HardwareCPU:
		return pick(
			fmt.Sprintf("Machine Check Exception: L%d cache error, processor %d, status 0x%016x",
				1+rng.Intn(3), rng.Intn(32), rng.Int63()),
			fmt.Sprintf("Machine Check Exception: TLB error, bank %d, restart not possible", rng.Intn(6)),
		)
	case taxonomy.HardwarePower:
		return pick(
			fmt.Sprintf("HSS event: voltage fault on %s VRM %d, threshold exceeded", cname, rng.Intn(4)),
			fmt.Sprintf("power supply failure detected, cabinet feed %d, component %s", rng.Intn(2), cname),
		)
	case taxonomy.HardwareBlade:
		return pick(
			fmt.Sprintf("blade controller fault on %s: L0 unresponsive, heartbeat missed %d times",
				bladePrefix(cname), 3+rng.Intn(5)),
			fmt.Sprintf("mezzanine failure reported for %s, taking blade out of service", bladePrefix(cname)),
		)
	case taxonomy.GPUMemoryDBE:
		return pick(
			fmt.Sprintf("NVRM: Xid (PCI:0000:%02x:00): 48, Double-Bit ECC error detected, address 0x%08x",
				rng.Intn(256), rng.Int31()),
			"GPU double-bit ECC error in device memory, application cannot continue",
		)
	case taxonomy.GPUBusOff:
		return pick(
			fmt.Sprintf("NVRM: Xid (PCI:0000:%02x:00): 79, GPU has fallen off the bus.", rng.Intn(256)),
			"GPU has fallen off the bus; reboot required to restore device",
		)
	case taxonomy.GPUPageRetir:
		return pick(
			fmt.Sprintf("NVRM: retiring page 0x%x due to single-bit ECC error", rng.Int31()),
			fmt.Sprintf("GPU dynamic page retirement: %d pages pending", 1+rng.Intn(4)),
		)
	case taxonomy.InterconnectLink:
		return pick(
			fmt.Sprintf("HSN: LCB %d lane degrade on %s, link inactive, recovery initiated",
				rng.Intn(48), geminiPrefix(cname)),
			fmt.Sprintf("LCB lane failure detected on %s channel %d, retraining", geminiPrefix(cname), rng.Intn(8)),
		)
	case taxonomy.InterconnectRouting:
		return pick(
			fmt.Sprintf("HSN quiesce started: rerouting around failed link, %d routes affected", 1+rng.Intn(64)),
			"warm swap initiated: routing table update in progress",
			"rerouting complete, HSN unquiesced",
		)
	case taxonomy.FilesystemLBUG:
		return pick(
			fmt.Sprintf("LustreError: %d:0:(ldlm_lock.c:%d) LBUG", rng.Intn(1<<15), 100+rng.Intn(2000)),
			"LustreError: assertion failed, LBUG: forcing crash dump",
		)
	case taxonomy.FilesystemUnavail:
		return pick(
			fmt.Sprintf("LustreError: snx11003-OST%04x unavailable, in recovery", rng.Intn(1<<10)),
			fmt.Sprintf("Lustre: lost contact with OST%04x, client evicted by server", rng.Intn(1<<10)),
			"LustreError: MDT0000 inactive, failover in progress",
		)
	case taxonomy.FilesystemTimeout:
		return pick(
			fmt.Sprintf("Lustre: request x%d timed out after %ds, resending", rng.Int63(), 30+rng.Intn(270)),
			fmt.Sprintf("Lustre: slow reply from OST%04x, %ds late", rng.Intn(1<<10), 10+rng.Intn(120)),
		)
	case taxonomy.NodeRecovered:
		return pick(
			fmt.Sprintf("ec_node_available: node %s returned to service after repair", cname),
			fmt.Sprintf("warm boot complete, node %s available", cname),
		)
	case taxonomy.NodeHeartbeat:
		return pick(
			fmt.Sprintf("HSS alert: node heartbeat fault on %s, declaring node dead", cname),
			fmt.Sprintf("ec_node_failed: ALERT node_failed %s heartbeat fault", cname),
		)
	case taxonomy.KernelPanic:
		return pick(
			fmt.Sprintf("Kernel panic - not syncing: Fatal exception in interrupt on %s", cname),
			fmt.Sprintf("Oops: %04d [#1] SMP on node %s", rng.Intn(10000), cname),
		)
	case taxonomy.SoftwareALPS:
		return pick(
			fmt.Sprintf("apsched: error: placement request failed for apid %d, resource unavailable", rng.Int63n(1e7)),
			fmt.Sprintf("apinit: failure: protocol timeout on %s, killing application", cname),
			"apsys: error: exit processing timeout, forcing cleanup",
		)
	case taxonomy.SoftwareOS:
		return pick(
			fmt.Sprintf("watchdog: BUG: soft lockup - CPU#%d stuck for %ds", rng.Intn(32), 20+rng.Intn(60)),
			fmt.Sprintf("INFO: hung task: kthread %d blocked for more than %d seconds", rng.Intn(1<<15), 120),
			"BUG: scheduling while atomic: swapper",
		)
	default:
		return "unclassified event of unknown origin"
	}
}

// bladePrefix trims a node cname to its blade component ("c1-3c2s7").
func bladePrefix(cname string) string {
	if c, err := machine.ParseCname(cname); err == nil {
		return fmt.Sprintf("c%d-%dc%ds%d", c.Col, c.Row, c.Cage, c.Slot)
	}
	return cname
}

// geminiPrefix trims a node cname to its Gemini component ("c1-3c2s7g0").
func geminiPrefix(cname string) string {
	if c, err := machine.ParseCname(cname); err == nil {
		return fmt.Sprintf("c%d-%dc%ds%dg%d", c.Col, c.Row, c.Cage, c.Slot, c.Node/machine.NodesPerGemini)
	}
	return cname
}
