package syslogx

import "testing"

// FuzzParse checks the syslog line parser never panics and that accepted
// lines round-trip through Format.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"2013-04-03T12:34:56.123456-05:00 c1-3c2s7n1 kernel: message",
		"2013-04-03T00:00:00.000000Z smw xtevent: HSS alert",
		"2013-04-03T00:00:00.000000Z sdb apsys:",
		"garbage", "", "2013-04-03T00:00:00.000000Z", "a b c: d: e",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(Format(l))
		if err != nil {
			t.Fatalf("accepted %q but reformatted line failed: %v", s, err)
		}
		if !back.Time.Equal(l.Time) || back.Host != l.Host || back.Tag != l.Tag || back.Message != l.Message {
			t.Fatalf("round trip mismatch for %q: %+v vs %+v", s, back, l)
		}
	})
}
