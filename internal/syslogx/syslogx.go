// Package syslogx reads and writes the syslog-style line format used by the
// synthesized system logs. The format mirrors the ISO-timestamped logs
// produced by the Cray Lightweight Log Manager (LLM):
//
//	2013-04-03T12:34:56.123456-05:00 c1-3c2s7n1 kernel: <message body>
//
// i.e. an RFC 3339 timestamp with microsecond precision, the originating
// host (a node cname or a service host such as "smw" or "sdb"), a program
// tag terminated by a colon, and the free-form message body.
package syslogx

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"logdiver/internal/stream"
)

// Line is one parsed syslog record.
type Line struct {
	Time time.Time
	// Host is the originating component: a node cname or service host name.
	Host string
	// Tag is the program tag without the trailing colon (e.g. "kernel").
	Tag string
	// Message is the free-form body.
	Message string
}

// timeLayout is RFC 3339 with microseconds, as written by LLM.
const timeLayout = "2006-01-02T15:04:05.000000Z07:00"

// Format renders the line in wire format without a trailing newline.
func Format(l Line) string {
	var b strings.Builder
	b.Grow(len(l.Host) + len(l.Tag) + len(l.Message) + 40)
	b.WriteString(l.Time.Format(timeLayout))
	b.WriteByte(' ')
	b.WriteString(l.Host)
	b.WriteByte(' ')
	b.WriteString(l.Tag)
	b.WriteString(": ")
	b.WriteString(l.Message)
	return b.String()
}

// ParseError describes a malformed syslog line.
type ParseError struct {
	LineNo int // 1-based, 0 when unknown
	Line   string
	Reason string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.LineNo > 0 {
		return fmt.Sprintf("syslog line %d: %s: %.80q", e.LineNo, e.Reason, e.Line)
	}
	return fmt.Sprintf("syslog: %s: %.80q", e.Reason, e.Line)
}

// Parse parses one wire-format line.
func Parse(s string) (Line, error) {
	var l Line
	ts, rest, ok := strings.Cut(s, " ")
	if !ok {
		return l, &ParseError{Line: s, Reason: "missing timestamp field"}
	}
	t, err := time.Parse(timeLayout, ts)
	if err != nil {
		return l, &ParseError{Line: s, Reason: "bad timestamp: " + err.Error()}
	}
	host, rest, ok := strings.Cut(rest, " ")
	if !ok || host == "" {
		return l, &ParseError{Line: s, Reason: "missing host field"}
	}
	tag, msg, ok := strings.Cut(rest, ": ")
	if !ok {
		// Accept a tag with no message body ("tag:").
		if tagOnly, okColon := strings.CutSuffix(rest, ":"); okColon && !strings.Contains(tagOnly, " ") {
			tag, msg = tagOnly, ""
		} else {
			return l, &ParseError{Line: s, Reason: "missing tag separator"}
		}
	}
	if tag == "" || strings.Contains(tag, " ") {
		return l, &ParseError{Line: s, Reason: "malformed tag"}
	}
	l.Time = t
	l.Host = host
	l.Tag = tag
	l.Message = msg
	return l, nil
}

// Writer emits lines in wire format.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one line. After the first error all subsequent writes are
// no-ops returning the same error.
func (w *Writer) Write(l Line) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(Format(l)); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// WriteRawLine emits s verbatim (plus a newline) without any validation.
// It exists so archive generators can inject corrupted lines, which real
// log archives always contain and parsers must tolerate.
func (w *Writer) WriteRawLine(s string) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(s); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Count returns the number of well-formed lines written so far (raw lines
// are not counted).
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Scanner streams lines from a reader, tolerating (and counting) malformed
// lines rather than aborting, as real log archives always contain noise.
type Scanner struct {
	sc        *bufio.Scanner
	line      Line
	lineNo    int
	malformed int
	err       error
}

// NewScanner wraps r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Scanner{sc: sc}
}

// Scan advances to the next well-formed line, skipping malformed ones.
// It returns false at end of input or on a read error.
func (s *Scanner) Scan() bool {
	for s.sc.Scan() {
		s.lineNo++
		text := s.sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		l, err := Parse(text)
		if err != nil {
			s.malformed++
			continue
		}
		s.line = l
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Line returns the most recently scanned line.
func (s *Scanner) Line() Line { return s.line }

// ParseBlock parses every line of a newline-separated block, applying the
// exact per-line semantics of Scanner: blank (whitespace-only) lines are
// skipped silently and unparseable lines are counted as malformed rather
// than failing the block. It is the unit of work of the parallel ingestion
// path — Parse is a pure function, so blocks can be parsed on any number of
// goroutines concurrently; concatenating the results in block order yields
// exactly the sequence a sequential Scanner would produce.
func ParseBlock(block []byte) (lines []Line, malformed int) {
	lines = make([]Line, 0, len(block)/64)
	stream.ForEachLine(block, func(raw []byte) {
		text := string(raw)
		if strings.TrimSpace(text) == "" {
			return
		}
		l, err := Parse(text)
		if err != nil {
			malformed++
			return
		}
		lines = append(lines, l)
	})
	return lines, malformed
}

// Malformed returns the number of lines skipped as unparseable.
func (s *Scanner) Malformed() int { return s.malformed }

// Err returns the first read error encountered, if any.
func (s *Scanner) Err() error { return s.err }
