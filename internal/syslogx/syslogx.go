// Package syslogx reads and writes the syslog-style line format used by the
// synthesized system logs. The format mirrors the ISO-timestamped logs
// produced by the Cray Lightweight Log Manager (LLM):
//
//	2013-04-03T12:34:56.123456-05:00 c1-3c2s7n1 kernel: <message body>
//
// i.e. an RFC 3339 timestamp with microsecond precision, the originating
// host (a node cname or a service host such as "smw" or "sdb"), a program
// tag terminated by a colon, and the free-form message body.
package syslogx

import (
	"bufio"
	"io"
	"strings"
	"time"

	"logdiver/internal/parse"
	"logdiver/internal/stream"
)

// Line is one parsed syslog record.
type Line struct {
	Time time.Time
	// Host is the originating component: a node cname or service host name.
	Host string
	// Tag is the program tag without the trailing colon (e.g. "kernel").
	Tag string
	// Message is the free-form body.
	Message string
}

// timeLayout is RFC 3339 with microseconds, as written by LLM.
const timeLayout = "2006-01-02T15:04:05.000000Z07:00"

// Format renders the line in wire format without a trailing newline.
func Format(l Line) string {
	var b strings.Builder
	b.Grow(len(l.Host) + len(l.Tag) + len(l.Message) + 40)
	b.WriteString(l.Time.Format(timeLayout))
	b.WriteByte(' ')
	b.WriteString(l.Host)
	b.WriteByte(' ')
	b.WriteString(l.Tag)
	b.WriteString(": ")
	b.WriteString(l.Message)
	return b.String()
}

// ParseError is the typed malformed-line error shared across the format
// parsers; see parse.Error for the field semantics (Kind, Line, Archive).
type ParseError = parse.Error

// Parse parses one wire-format line. Errors are *parse.Error values
// carrying a Kind (timestamp, structure, ...) for the per-kind malformed
// accounting of the ingestion pipeline.
func Parse(s string) (Line, error) {
	var l Line
	ts, rest, ok := strings.Cut(s, " ")
	if !ok {
		return l, parse.Errorf(parse.KindStructure, s, "missing timestamp field")
	}
	t, err := time.Parse(timeLayout, ts)
	if err != nil {
		return l, parse.Errorf(parse.KindTimestamp, s, "bad timestamp: %s", err.Error())
	}
	host, rest, ok := strings.Cut(rest, " ")
	if !ok || host == "" {
		return l, parse.Errorf(parse.KindStructure, s, "missing host field")
	}
	tag, msg, ok := strings.Cut(rest, ": ")
	if !ok {
		// Accept a tag with no message body ("tag:").
		if tagOnly, okColon := strings.CutSuffix(rest, ":"); okColon && !strings.Contains(tagOnly, " ") {
			tag, msg = tagOnly, ""
		} else {
			return l, parse.Errorf(parse.KindStructure, s, "missing tag separator")
		}
	}
	if tag == "" || strings.Contains(tag, " ") {
		return l, parse.Errorf(parse.KindStructure, s, "malformed tag")
	}
	l.Time = t
	l.Host = host
	l.Tag = tag
	l.Message = msg
	return l, nil
}

// CheckLine is the single authoritative per-line acceptance function of the
// syslog format, shared by the sequential Scanner, the parallel block
// parser and the robustness reconciler: blank lines are skipped silently
// (skip == true), lines failing the shared encoding/oversize checks or the
// format parse return a typed *parse.Error, and everything else yields the
// parsed Line.
func CheckLine(text string) (l Line, skip bool, perr *parse.Error) {
	if strings.TrimSpace(text) == "" {
		return Line{}, true, nil
	}
	if e := parse.CheckLine(text); e != nil {
		return Line{}, false, e
	}
	l, err := Parse(text)
	if err != nil {
		return Line{}, false, err.(*parse.Error)
	}
	return l, false, nil
}

// Writer emits lines in wire format.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one line. After the first error all subsequent writes are
// no-ops returning the same error.
func (w *Writer) Write(l Line) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(Format(l)); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// WriteRawLine emits s verbatim (plus a newline) without any validation.
// It exists so archive generators can inject corrupted lines, which real
// log archives always contain and parsers must tolerate.
func (w *Writer) WriteRawLine(s string) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(s); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Count returns the number of well-formed lines written so far (raw lines
// are not counted).
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Scanner streams lines from a reader. In lenient mode (the NewScanner
// default) malformed lines are skipped and accounted — per-kind counters
// plus first-N provenance samples — as real log archives always contain
// noise. In strict mode the scan stops at the first malformed line and Err
// returns the typed *parse.Error with its line number.
type Scanner struct {
	lr     *parse.LineReader
	mode   parse.Mode
	line   Line
	lineNo int
	stats  parse.LineStats
	err    error
}

// NewScanner wraps r in lenient mode.
func NewScanner(r io.Reader) *Scanner {
	return NewScannerMode(r, parse.Lenient)
}

// NewScannerMode wraps r with an explicit malformed-line policy.
func NewScannerMode(r io.Reader, mode parse.Mode) *Scanner {
	return &Scanner{lr: parse.NewLineReader(r), mode: mode}
}

// Scan advances to the next well-formed line. It returns false at end of
// input, on a read error, or (strict mode) at the first malformed line.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		text, no, ok := s.lr.Next()
		if !ok {
			s.err = s.lr.Err()
			return false
		}
		l, skip, perr := CheckLine(text)
		if skip {
			continue
		}
		if perr != nil {
			perr.Line = no
			if s.mode == parse.Strict {
				s.err = perr
				return false
			}
			s.stats.Record(perr)
			continue
		}
		s.line, s.lineNo = l, no
		return true
	}
}

// Line returns the most recently scanned line.
func (s *Scanner) Line() Line { return s.line }

// LineNo returns the 1-based archive line number of the most recently
// scanned line.
func (s *Scanner) LineNo() int { return s.lineNo }

// ParseBlock parses every line of a newline-separated block, applying the
// exact per-line semantics of a lenient Scanner: blank (whitespace-only)
// lines are skipped silently and unparseable lines are counted as
// malformed rather than failing the block.
func ParseBlock(block []byte) (lines []Line, malformed int) {
	lines, _, stats, _ := ParseBlockMode(block, 1, parse.Lenient)
	return lines, stats.Malformed()
}

// ParseBlockMode is the unit of work of the parallel ingestion path: it
// parses every line of a block whose first line is archive line firstLine,
// with the exact per-line semantics of a sequential Scanner in the same
// mode. nums carries the archive line number of each returned Line (needed
// by the apsys layer to report message-level provenance). In lenient mode
// malformed lines are accounted in stats (with archive line numbers, so
// concatenating per-block stats in block order reproduces a sequential
// scan); in strict mode the first malformed line fails the block with its
// typed error. CheckLine is pure, so blocks parse safely on concurrent
// goroutines.
func ParseBlockMode(block []byte, firstLine int, mode parse.Mode) (lines []Line, nums []int, stats parse.LineStats, err error) {
	lines = make([]Line, 0, len(block)/64)
	nums = make([]int, 0, len(block)/64)
	no := firstLine - 1
	var failed *parse.Error
	stream.ForEachLine(block, func(raw []byte) {
		no++
		if failed != nil {
			return
		}
		v, skip, perr := CheckLineBytes(raw)
		if skip {
			return
		}
		if perr != nil {
			perr.Line = no
			if mode == parse.Strict {
				failed = perr
				return
			}
			stats.Record(perr)
			return
		}
		lines = append(lines, v.Materialize())
		nums = append(nums, no)
	})
	if failed != nil {
		return nil, nil, parse.LineStats{}, failed
	}
	return lines, nums, stats, nil
}

// Malformed returns the number of lines skipped as unparseable (lenient
// mode).
func (s *Scanner) Malformed() int { return s.stats.Malformed() }

// Stats returns the malformed-line accounting of the scan so far.
func (s *Scanner) Stats() parse.LineStats { return s.stats }

// Err returns the first read error encountered, if any; in strict mode the
// first malformed line surfaces here as a *parse.Error.
func (s *Scanner) Err() error { return s.err }
