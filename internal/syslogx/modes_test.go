package syslogx

import (
	"errors"
	"strings"
	"testing"

	"logdiver/internal/parse"
)

// Error-path cases shared by the strict and lenient mode tests. Every entry
// is one malformed syslog line plus the Kind the parsers must report.
var syslogErrorCases = []struct {
	name string
	line string
	kind parse.Kind
}{
	{"truncated record", "2013-04-03T12:34:56.123456-05:00", parse.KindStructure},
	{"missing host", "2013-04-03T12:34:56.123456-05:00 ", parse.KindStructure},
	{"missing tag separator", "2013-04-03T12:34:56.123456-05:00 host no colon here", parse.KindStructure},
	{"bad timestamp", "99/99/99 host kernel: msg", parse.KindTimestamp},
	{"oversized line", "2013-04-03T12:34:56.123456-05:00 host kernel: " + strings.Repeat("x", parse.MaxLineBytes), parse.KindOversize},
	{"invalid utf8", "2013-04-03T12:34:56.123456-05:00 host kernel: \xff\xfe", parse.KindEncoding},
	{"nul byte", "2013-04-03T12:34:56.123456-05:00 host kernel: a\x00b", parse.KindEncoding},
}

const syslogGoodLine = "2013-04-03T12:34:57.000000-05:00 c0-0c0s0n1 kernel: machine check"

// TestScannerModesErrorPaths drives every malformed-line class through the
// sequential scanner in both modes: strict fails at the bad line with a
// typed, line-numbered error; lenient skips it, still yields the well-formed
// line, and accounts the failure under the right kind with provenance.
func TestScannerModesErrorPaths(t *testing.T) {
	for _, tc := range syslogErrorCases {
		t.Run(tc.name, func(t *testing.T) {
			input := tc.line + "\n" + syslogGoodLine + "\n"

			strict := NewScannerMode(strings.NewReader(input), parse.Strict)
			if strict.Scan() {
				t.Fatal("strict mode scanned past the malformed line")
			}
			var perr *parse.Error
			if !errors.As(strict.Err(), &perr) {
				t.Fatalf("strict error %v is not a *parse.Error", strict.Err())
			}
			if perr.Kind != tc.kind || perr.Line != 1 {
				t.Errorf("strict error kind=%v line=%d, want kind=%v line=1", perr.Kind, perr.Line, tc.kind)
			}

			lenient := NewScannerMode(strings.NewReader(input), parse.Lenient)
			var lines int
			for lenient.Scan() {
				lines++
			}
			if err := lenient.Err(); err != nil {
				t.Fatalf("lenient mode failed: %v", err)
			}
			if lines != 1 {
				t.Errorf("lenient mode yielded %d lines, want 1", lines)
			}
			st := lenient.Stats()
			if got := st.Kinds.Count(tc.kind); got != 1 {
				t.Errorf("kind %v counted %d times, want 1", tc.kind, got)
			}
			samples := st.Samples.All()
			if len(samples) != 1 || samples[0].Line != 1 || samples[0].Kind != tc.kind {
				t.Errorf("sample provenance %+v, want line 1 kind %v", samples, tc.kind)
			}
		})
	}
}

// TestParseBlockModeMatchesScanner pins the parallel block parser to the
// sequential scanner for every error class in both modes.
func TestParseBlockModeMatchesScanner(t *testing.T) {
	for _, tc := range syslogErrorCases {
		t.Run(tc.name, func(t *testing.T) {
			input := syslogGoodLine + "\n" + tc.line + "\n"

			lines, nums, stats, err := ParseBlockMode([]byte(input), 1, parse.Lenient)
			if err != nil {
				t.Fatalf("lenient block failed: %v", err)
			}
			if len(lines) != 1 || len(nums) != 1 || nums[0] != 1 {
				t.Errorf("lenient block: %d lines, nums %v", len(lines), nums)
			}
			if stats.Kinds.Count(tc.kind) != 1 {
				t.Errorf("kind %v counted %d times, want 1", tc.kind, stats.Kinds.Count(tc.kind))
			}
			samples := stats.Samples.All()
			if len(samples) != 1 || samples[0].Line != 2 {
				t.Errorf("block sample %+v, want line 2", samples)
			}

			_, _, _, err = ParseBlockMode([]byte(input), 1, parse.Strict)
			var perr *parse.Error
			if !errors.As(err, &perr) {
				t.Fatalf("strict block error %v is not a *parse.Error", err)
			}
			if perr.Kind != tc.kind || perr.Line != 2 {
				t.Errorf("strict block error kind=%v line=%d, want kind=%v line=2", perr.Kind, perr.Line, tc.kind)
			}

			// A nonzero block offset shifts reported line numbers.
			_, _, _, err = ParseBlockMode([]byte(input), 50, parse.Strict)
			if !errors.As(err, &perr) || perr.Line != 51 {
				t.Errorf("offset block error %v, want line 51", err)
			}
		})
	}
}
