package syslogx

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	tm, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestFormatParseRoundTrip(t *testing.T) {
	tests := []Line{
		{
			Time:    mustTime(t, "2013-04-03T12:34:56.123456-05:00"),
			Host:    "c1-3c2s7n1",
			Tag:     "kernel",
			Message: "Machine Check Exception: corrected DRAM error",
		},
		{
			Time:    mustTime(t, "2013-04-03T00:00:00Z"),
			Host:    "smw",
			Tag:     "xtevent",
			Message: "HSS alert: node heartbeat fault on c2-1c0s4n2, declaring node dead",
		},
		{
			Time:    mustTime(t, "2014-01-01T01:02:03.000004Z"),
			Host:    "sdb",
			Tag:     "apsys",
			Message: "",
		},
		{
			Time:    mustTime(t, "2013-06-30T23:59:59.999999-05:00"),
			Host:    "c0-0c0s0n0",
			Tag:     "xtnlrd",
			Message: "msg with: colons: inside",
		},
	}
	for _, l := range tests {
		wire := Format(l)
		got, err := Parse(wire)
		if err != nil {
			t.Fatalf("Parse(%q): %v", wire, err)
		}
		if !got.Time.Equal(l.Time) || got.Host != l.Host || got.Tag != l.Tag || got.Message != l.Message {
			t.Errorf("round trip %q:\n got %+v\nwant %+v", wire, got, l)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"nota timestamp at all",
		"2013-04-03T12:34:56.123456-05:00",      // timestamp only
		"2013-04-03T12:34:56.123456-05:00 host", // no tag
		"2013-04-03T12:34:56.123456-05:00 host no colon", // tag without colon
		"99/99/99 host kernel: msg",                      // bad timestamp
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q) error %T, want *ParseError", s, err)
			}
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("garbage")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if !strings.Contains(pe.Error(), "garbage") {
		t.Errorf("error %q does not include offending line", pe.Error())
	}
	pe.Line = 7
	if !strings.Contains(pe.Error(), "line 7") {
		t.Errorf("error %q does not include line number", pe.Error())
	}
	pe.Archive = "syslog"
	if !strings.HasPrefix(pe.Error(), "syslog: ") {
		t.Errorf("error %q does not lead with the archive name", pe.Error())
	}
}

func TestParsePropertyRoundTrip(t *testing.T) {
	base := time.Date(2013, 4, 3, 0, 0, 0, 0, time.UTC)
	f := func(hostSeed, tagSeed uint8, msg string, offset uint32) bool {
		// Hosts and tags must be non-empty and space-free; messages must
		// be newline-free for the line format.
		hosts := []string{"c0-0c0s0n0", "smw", "sdb", "nid00123"}
		tags := []string{"kernel", "xtevent", "apsys", "HWERR"}
		msg = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, msg)
		l := Line{
			Time:    base.Add(time.Duration(offset) * time.Microsecond),
			Host:    hosts[int(hostSeed)%len(hosts)],
			Tag:     tags[int(tagSeed)%len(tags)],
			Message: msg,
		}
		got, err := Parse(Format(l))
		return err == nil && got.Time.Equal(l.Time) && got.Host == l.Host &&
			got.Tag == l.Tag && got.Message == l.Message
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriterScannerStream(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	base := time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC)
	const n = 100
	for i := 0; i < n; i++ {
		err := w.Write(Line{
			Time:    base.Add(time.Duration(i) * time.Second),
			Host:    "c0-0c0s0n1",
			Tag:     "kernel",
			Message: "event " + strings.Repeat("x", i%7),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Errorf("Count = %d, want %d", w.Count(), n)
	}

	sc := NewScanner(strings.NewReader(buf.String()))
	var got int
	var last Line
	for sc.Scan() {
		got++
		last = sc.Line()
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("scanned %d lines, want %d", got, n)
	}
	if sc.Malformed() != 0 {
		t.Errorf("Malformed = %d, want 0", sc.Malformed())
	}
	if wantTime := base.Add((n - 1) * time.Second); !last.Time.Equal(wantTime) {
		t.Errorf("last line time %v, want %v", last.Time, wantTime)
	}
}

func TestScannerSkipsNoise(t *testing.T) {
	good := Format(Line{
		Time: time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC),
		Host: "smw", Tag: "xtevent", Message: "ok",
	})
	input := strings.Join([]string{
		"totally broken line",
		good,
		"",
		"   ",
		"another bad one",
		good,
	}, "\n")
	sc := NewScanner(strings.NewReader(input))
	var got int
	for sc.Scan() {
		got++
	}
	if got != 2 {
		t.Errorf("scanned %d lines, want 2", got)
	}
	if sc.Malformed() != 2 {
		t.Errorf("Malformed = %d, want 2 (blank lines are not malformed)", sc.Malformed())
	}
}

func TestScannerLongLines(t *testing.T) {
	long := Format(Line{
		Time: time.Date(2013, 4, 3, 12, 0, 0, 0, time.UTC),
		Host: "c0-0c0s0n1", Tag: "kernel",
		Message: strings.Repeat("a", 200000),
	})
	sc := NewScanner(strings.NewReader(long))
	if !sc.Scan() {
		t.Fatalf("Scan failed on long line: %v", sc.Err())
	}
	if len(sc.Line().Message) != 200000 {
		t.Errorf("message truncated to %d bytes", len(sc.Line().Message))
	}
}

type failingWriter struct{ fail bool }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.fail {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriterSticksOnError(t *testing.T) {
	fw := &failingWriter{}
	w := NewWriter(fw)
	line := Line{Time: time.Now(), Host: "smw", Tag: "t", Message: strings.Repeat("x", 1<<17)}
	fw.fail = true
	err1 := w.Write(line) // large write forces a flush through the buffer
	if err1 == nil {
		// The bufio buffer may have absorbed it; force the error out.
		err1 = w.Flush()
	}
	if err1 == nil {
		t.Fatal("expected write error")
	}
	if err2 := w.Write(line); err2 == nil {
		t.Error("write after error succeeded")
	}
	if err3 := w.Flush(); err3 == nil {
		t.Error("flush after error succeeded")
	}
}
