package syslogx

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/parse"
)

// fastDiffLines covers the acceptance surface the byte scanner must
// reproduce bit-for-bit: the canonical Zulu stamp (fast path), numeric
// offsets (fallback through time.Parse), fractional-second and structure
// variants, and the malformed classes from syslogErrorCases.
var fastDiffLines = []string{
	"2013-04-03T12:34:56.123456Z c0-0c0s0n1 kernel: machine check",
	"2013-04-03T12:34:56.123456-05:00 c0-0c0s0n1 kernel: Lustre: request timed out",
	"2013-04-03T12:34:56.123456+01:30 sdb xtevent: heartbeat fault",
	"2013-04-03T23:59:59.999999Z nid00012 apsys: apid=1, Starting",
	"2013-02-28T00:00:00.000000Z host tag: leap boundary",
	"2012-02-29T00:00:00.000000Z host tag: leap day",
	"2013-04-03T12:34:56Z host kernel: no fractional seconds",
	"2013-04-31T12:34:56.000000Z host kernel: impossible day",
	"2013-04-03T12:34:56.123456Z host kernel:",
	"2013-04-03T12:34:56.123456Z host tag: message: with: colons",
	"2013-04-03T12:34:56.123456Z host  kernel: double space",
	"", "   ",
}

// TestCheckLineBytesMatchesCheckLine pins the byte scanner to the string
// reference line by line: same skips, same typed errors, and — through
// Materialize — identical Line values.
func TestCheckLineBytesMatchesCheckLine(t *testing.T) {
	lines := append([]string{}, fastDiffLines...)
	for _, tc := range syslogErrorCases {
		lines = append(lines, tc.line)
	}
	for _, line := range lines {
		want, wantSkip, wantErr := CheckLine(line)
		view, gotSkip, gotErr := CheckLineBytes([]byte(line))
		if gotSkip != wantSkip {
			t.Errorf("CheckLineBytes(%q) skip = %v, want %v", line, gotSkip, wantSkip)
			continue
		}
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("CheckLineBytes(%q) err = %v, string path %v", line, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			if gotErr.Kind != wantErr.Kind || gotErr.Error() != wantErr.Error() {
				t.Errorf("CheckLineBytes(%q) err = %q (%v), string path %q (%v)",
					line, gotErr.Error(), gotErr.Kind, wantErr.Error(), wantErr.Kind)
			}
			continue
		}
		if wantSkip {
			continue
		}
		got := view.Materialize()
		if !got.Time.Equal(want.Time) {
			t.Errorf("CheckLineBytes(%q) Time = %v, want %v", line, got.Time, want.Time)
		}
		got.Time = want.Time
		if !reflect.DeepEqual(got, want) {
			t.Errorf("CheckLineBytes(%q) = %+v, want %+v", line, got, want)
		}
	}
}

// TestParseStampFastAgreesWithLayout: every stamp the fast path accepts
// must decode to the same instant the layout parse produces, and the fast
// path must never accept a stamp the layout rejects.
func TestParseStampFastAgreesWithLayout(t *testing.T) {
	stamps := []string{
		"2013-04-03T12:34:56.123456Z",
		"2012-02-29T00:00:00.000000Z",
		"2013-02-29T00:00:00.000000Z", // not a leap year
		"2013-00-03T12:34:56.123456Z",
		"2013-13-03T12:34:56.123456Z",
		"2013-04-00T12:34:56.123456Z",
		"2013-04-31T12:34:56.123456Z",
		"2013-04-03T24:00:00.000000Z",
		"2013-04-03T12:60:00.000000Z",
		"2013-04-03T12:34:60.000000Z",
		"2013-04-03T12:34:56.12345Z",
		"2013-04-03 12:34:56.123456Z",
	}
	for _, s := range stamps {
		at, ok := parseStampFast([]byte(s))
		want, err := time.Parse(timeLayout, s)
		if ok && err != nil {
			t.Errorf("parseStampFast(%q) accepted a stamp the layout rejects (%v)", s, err)
			continue
		}
		if ok && !at.Equal(want) {
			t.Errorf("parseStampFast(%q) = %v, layout = %v", s, at, want)
		}
	}
}

// TestCheckLineBytesZeroAlloc gates the per-line fast path: a canonical
// Zulu-stamped line must scan without allocating.
func TestCheckLineBytesZeroAlloc(t *testing.T) {
	line := []byte("2013-04-03T12:34:56.123456Z c0-0c0s0n1 kernel: machine check exception")
	if n := testing.AllocsPerRun(200, func() {
		_, skip, perr := CheckLineBytes(line)
		if skip || perr != nil {
			t.Fatal("canonical line rejected")
		}
	}); n != 0 {
		t.Errorf("CheckLineBytes allocates %.1f allocs/op on the fast path, want 0", n)
	}
}

// TestBlockModesMatch pins the byte-backed block parser against per-line
// CheckLine over a mixed block in lenient mode (the strict half is covered
// by TestCheckLineBytesMatchesCheckLine since ParseBlockMode reports the
// first CheckLineBytes error).
func TestBlockModesMatch(t *testing.T) {
	var b strings.Builder
	for _, l := range fastDiffLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	lines, nums, _, err := ParseBlockMode([]byte(b.String()), 1, parse.Lenient)
	if err != nil {
		t.Fatal(err)
	}
	var wantLines []Line
	var wantNums []int
	for i, l := range fastDiffLines {
		ln, skip, perr := CheckLine(l)
		if skip || perr != nil {
			continue
		}
		wantLines = append(wantLines, ln)
		wantNums = append(wantNums, i+1)
	}
	if !reflect.DeepEqual(lines, wantLines) || !reflect.DeepEqual(nums, wantNums) {
		t.Errorf("block parse = %+v %v\nper-line   = %+v %v", lines, nums, wantLines, wantNums)
	}
}
