// Byte-oriented fast path of the syslog line parser. CheckLineBytes applies
// the exact per-line semantics of CheckLine over a byte view without
// materializing strings; the string implementation (Parse/CheckLine) stays
// as the reference, and the differential tests in fast_test.go pin the two
// to each other. Timestamps in the canonical wire form take a manual
// fixed-width parse; any deviation falls back to time.Parse, so acceptance
// and error text are authoritative in all cases.

package syslogx

import (
	"bytes"
	"strings"
	"time"

	"logdiver/internal/parse"
)

// LineView is one parsed syslog record as byte views into the caller's
// buffer. Views are valid only as long as the underlying buffer; callers
// that retain fields must copy them (see Materialize).
type LineView struct {
	Time time.Time
	// Host, Tag and Msg alias the input line.
	Host, Tag, Msg []byte
}

// Materialize copies the view into a Line with one string allocation
// backing all three fields.
func (v LineView) Materialize() Line {
	var sb strings.Builder
	sb.Grow(len(v.Host) + len(v.Tag) + len(v.Msg))
	sb.Write(v.Host)
	sb.Write(v.Tag)
	sb.Write(v.Msg)
	s := sb.String()
	hostEnd := len(v.Host)
	tagEnd := hostEnd + len(v.Tag)
	return Line{
		Time:    v.Time,
		Host:    s[:hostEnd],
		Tag:     s[hostEnd:tagEnd],
		Message: s[tagEnd:],
	}
}

// CheckLineBytes is CheckLine over a byte view: blank lines are skipped
// (skip == true), lines failing the shared encoding/oversize checks or the
// format parse return a typed *parse.Error, and everything else yields the
// parsed LineView. It allocates only on malformed or non-canonical input.
//
//ldvet:pooled
//ldvet:hotpath
func CheckLineBytes(b []byte) (v LineView, skip bool, perr *parse.Error) {
	if parse.Blank(b) {
		return LineView{}, true, nil
	}
	if e := parse.CheckLineBytes(b); e != nil {
		return LineView{}, false, e
	}
	sp := bytes.IndexByte(b, ' ')
	if sp < 0 {
		return LineView{}, false, errBytes(parse.KindStructure, b, "missing timestamp field")
	}
	ts, rest := b[:sp], b[sp+1:]
	t, ok := parseStampFast(ts)
	if !ok {
		// Non-canonical timestamp: time.Parse is authoritative for both
		// acceptance and error text.
		var err error
		t, err = time.Parse(timeLayout, string(ts))
		if err != nil {
			return LineView{}, false, parse.Errorf(parse.KindTimestamp, truncLine(b), "bad timestamp: %s", err.Error())
		}
	}
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 || sp == 0 {
		return LineView{}, false, errBytes(parse.KindStructure, b, "missing host field")
	}
	host, rest := rest[:sp], rest[sp+1:]
	var tag, msg []byte
	if i := bytes.Index(rest, []byte(": ")); i >= 0 {
		tag, msg = rest[:i], rest[i+2:]
	} else if n := len(rest); n > 0 && rest[n-1] == ':' && bytes.IndexByte(rest[:n-1], ' ') < 0 {
		// Accept a tag with no message body ("tag:").
		tag, msg = rest[:n-1], nil
	} else {
		return LineView{}, false, errBytes(parse.KindStructure, b, "missing tag separator")
	}
	if len(tag) == 0 || bytes.IndexByte(tag, ' ') >= 0 {
		return LineView{}, false, errBytes(parse.KindStructure, b, "malformed tag")
	}
	return LineView{Time: t, Host: host, Tag: tag, Msg: msg}, false, nil
}

// errBytes builds the typed error with the line text truncated exactly as
// the string path's parse.Errorf would.
func errBytes(kind parse.Kind, line []byte, reason string) *parse.Error {
	return parse.Errorf(kind, truncLine(line), "%s", reason)
}

func truncLine(b []byte) string {
	if len(b) > parse.SampleTextBytes {
		b = b[:parse.SampleTextBytes]
	}
	return string(b)
}

// parseStampFast parses the canonical wire form of timeLayout —
// "2006-01-02T15:04:05.000000Z07:00" with a literal 'Z' zone — without
// allocating. ok is false for anything else (including numeric zone
// offsets, which are rare and routed through time.Parse so Local-zone
// resolution matches exactly).
//
//ldvet:pooled
//ldvet:hotpath
func parseStampFast(b []byte) (time.Time, bool) {
	if len(b) != 27 || b[26] != 'Z' {
		return time.Time{}, false
	}
	if b[4] != '-' || b[7] != '-' || b[10] != 'T' || b[13] != ':' || b[16] != ':' || b[19] != '.' {
		return time.Time{}, false
	}
	year, ok := digits4(b[0:4])
	if !ok {
		return time.Time{}, false
	}
	mo, ok1 := digits2(b[5], b[6])
	day, ok2 := digits2(b[8], b[9])
	hour, ok3 := digits2(b[11], b[12])
	min, ok4 := digits2(b[14], b[15])
	sec, ok5 := digits2(b[17], b[18])
	micro, ok6 := digits6(b[20:26])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, false
	}
	if mo < 1 || mo > 12 || day < 1 || day > daysIn(mo, year) || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(mo), day, hour, min, sec, micro*1000, time.UTC), true
}

//ldvet:hotpath
func digits2(a, b byte) (int, bool) {
	if a < '0' || a > '9' || b < '0' || b > '9' {
		return 0, false
	}
	return int(a-'0')*10 + int(b-'0'), true
}

//ldvet:hotpath
func digits4(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

//ldvet:hotpath
func digits6(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// daysIn returns the day count of month m in year y (Gregorian).
func daysIn(m, y int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
		return 29
	}
	return 28
}
