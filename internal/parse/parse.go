// Package parse defines the shared vocabulary of corruption-tolerant
// ingestion: the strict/lenient parse mode, the typed malformed-line error
// every format parser reports, per-kind malformed counters with first-N
// provenance samples, and a line reader that tolerates oversized lines
// instead of aborting the scan. The format parsers (internal/wlm,
// internal/alps, internal/syslogx) produce these types; internal/core
// aggregates them into ParseStats and threads the mode through both the
// sequential and the parallel ingestion paths.
package parse

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Mode selects the malformed-input policy of the ingestion pipeline.
type Mode int

const (
	// Lenient (the zero value, and the field default) skips unparseable
	// lines while accounting them: per-kind counters plus first-N samples
	// with line provenance. Real archives always contain noise; this is the
	// graceful-degradation mode the study's measurements ran under.
	Lenient Mode = iota
	// Strict surfaces the first malformed line as a typed *Error carrying
	// the archive name and line number, for pipelines that would rather
	// fail fast than measure on a silently degraded input.
	Strict
)

// String names the mode as accepted by ParseModeFlag.
func (m Mode) String() string {
	//ldvet:exhaustive
	switch m {
	case Lenient:
		return "lenient"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ModeFromString parses the -parse-mode flag vocabulary.
func ModeFromString(s string) (Mode, error) {
	switch s {
	case "lenient", "":
		return Lenient, nil
	case "strict":
		return Strict, nil
	default:
		return Lenient, fmt.Errorf("parse: unknown mode %q (want lenient or strict)", s)
	}
}

// Kind classifies why a line failed to parse. The per-kind counters in
// ParseStats let the robustness suite reconcile injected corruption
// (internal/mutate records what it injected; the pipeline must account it).
type Kind int

const (
	// KindStructure: the line's field skeleton is wrong (missing separator,
	// wrong field count, bad record type, inconsistent counts).
	KindStructure Kind = iota
	// KindTimestamp: the timestamp field failed to parse.
	KindTimestamp
	// KindField: a key=value field is malformed, missing or non-numeric.
	KindField
	// KindEncoding: the line carries NUL bytes or invalid UTF-8.
	KindEncoding
	// KindOversize: the line exceeds MaxLineBytes.
	KindOversize
)

// String names the kind.
func (k Kind) String() string {
	//ldvet:exhaustive
	switch k {
	case KindStructure:
		return "structure"
	case KindTimestamp:
		return "timestamp"
	case KindField:
		return "field"
	case KindEncoding:
		return "encoding"
	case KindOversize:
		return "oversize"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MaxLineBytes is the per-line acceptance cap: longer lines are malformed
// (KindOversize) rather than fatal. It matches the former bufio.Scanner
// buffer limit of the pre-ParseMode scanners, so well-formed archives parse
// identically.
const MaxLineBytes = 1 << 20

// AbsMaxLineBytes is the hard abort threshold: a "line" this long means the
// input is not line-structured at all (or the reader is walking a binary
// blob), and both modes fail the scan with bufio.ErrTooLong. A variable so
// tests can exercise the abort path without 64 MiB fixtures.
var AbsMaxLineBytes = 64 << 20

// SampleTextBytes caps the offending-line text retained in errors and
// samples; provenance should be greppable, not a second copy of the archive.
const SampleTextBytes = 160

// Truncate caps s to SampleTextBytes for retention in errors and samples.
func Truncate(s string) string {
	if len(s) <= SampleTextBytes {
		return s
	}
	return s[:SampleTextBytes]
}

// Error is the typed malformed-line error shared by every format parser.
// Parsers fill Kind, Reason and Text; the scanners add Line; the core
// pipeline stamps Archive before surfacing it in strict mode.
type Error struct {
	// Archive names the log source ("accounting", "apsys", "syslog");
	// empty until the pipeline attaches it.
	Archive string
	// Line is the 1-based line number in the archive; 0 when unknown.
	Line int
	// Kind classifies the failure.
	Kind Kind
	// Reason is the human-readable parser detail.
	Reason string
	// Text is the offending line, truncated to SampleTextBytes.
	Text string
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	if e.Archive != "" {
		b.WriteString(e.Archive)
		b.WriteString(": ")
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", e.Line)
	}
	b.WriteString(e.Reason)
	if e.Text != "" {
		fmt.Fprintf(&b, ": %.80q", e.Text)
	}
	return b.String()
}

// Errorf builds an *Error of the given kind with a formatted reason.
func Errorf(kind Kind, text, format string, args ...any) *Error {
	return &Error{Kind: kind, Reason: fmt.Sprintf(format, args...), Text: Truncate(text)}
}

// CheckLine applies the format-independent acceptance checks every parser
// shares: the line must fit MaxLineBytes, carry no NUL bytes, and be valid
// UTF-8. Returns nil when the line passes.
func CheckLine(text string) *Error {
	if len(text) > MaxLineBytes {
		return Errorf(KindOversize, text, "line exceeds %d bytes (%d)", MaxLineBytes, len(text))
	}
	if strings.IndexByte(text, 0) >= 0 {
		return Errorf(KindEncoding, text, "NUL byte in line")
	}
	if !utf8.ValidString(text) {
		return Errorf(KindEncoding, text, "invalid UTF-8")
	}
	return nil
}

// KindCounts is the per-kind malformed-line breakdown of one archive.
type KindCounts struct {
	Structure, Timestamp, Field, Encoding, Oversize int
}

// Add increments the counter for kind k.
func (c *KindCounts) Add(k Kind) {
	//ldvet:exhaustive
	switch k {
	case KindStructure:
		c.Structure++
	case KindTimestamp:
		c.Timestamp++
	case KindField:
		c.Field++
	case KindEncoding:
		c.Encoding++
	case KindOversize:
		c.Oversize++
	default:
		c.Structure++
	}
}

// Merge folds o into c.
func (c *KindCounts) Merge(o KindCounts) {
	c.Structure += o.Structure
	c.Timestamp += o.Timestamp
	c.Field += o.Field
	c.Encoding += o.Encoding
	c.Oversize += o.Oversize
}

// Total is the malformed-line count across all kinds.
func (c KindCounts) Total() int {
	return c.Structure + c.Timestamp + c.Field + c.Encoding + c.Oversize
}

// Count returns the counter for kind k.
func (c KindCounts) Count(k Kind) int {
	//ldvet:exhaustive
	switch k {
	case KindStructure:
		return c.Structure
	case KindTimestamp:
		return c.Timestamp
	case KindField:
		return c.Field
	case KindEncoding:
		return c.Encoding
	case KindOversize:
		return c.Oversize
	default:
		return 0
	}
}

// Sample is one retained malformed-line provenance record.
type Sample struct {
	Archive string
	Line    int
	Kind    Kind
	Reason  string
	Text    string
}

// String renders the sample like the equivalent strict-mode error.
func (s Sample) String() string {
	e := Error{Archive: s.Archive, Line: s.Line, Kind: s.Kind, Reason: s.Reason, Text: s.Text}
	return e.Error()
}

// MaxSamples bounds the provenance samples retained per archive. A fixed
// array (not a slice) keeps LineStats — and hence core.ParseStats —
// comparable with ==, which the serial/parallel differential tests rely on.
const MaxSamples = 8

// SampleSet retains the first MaxSamples malformed-line samples in archive
// order.
type SampleSet struct {
	// N is the number of filled entries.
	N int
	// Samples holds the first N samples; entries beyond N are zero.
	Samples [MaxSamples]Sample
}

// Add retains s if capacity remains.
func (s *SampleSet) Add(x Sample) {
	if s.N < MaxSamples {
		s.Samples[s.N] = x
		s.N++
	}
}

// Merge appends o's samples (in order) until capacity.
func (s *SampleSet) Merge(o SampleSet) {
	for i := 0; i < o.N; i++ {
		s.Add(o.Samples[i])
	}
}

// All returns the retained samples.
func (s *SampleSet) All() []Sample {
	return s.Samples[:s.N]
}

// LineStats is the malformed-line accounting of one archive: per-kind
// counters plus first-N provenance samples. The sequential scanners and the
// parallel block parsers produce identical LineStats for identical input —
// the per-block stats travel with each block and merge on the single
// consumer goroutine in archive order.
type LineStats struct {
	Kinds   KindCounts
	Samples SampleSet
}

// Record accounts one malformed line.
func (s *LineStats) Record(e *Error) {
	s.Kinds.Add(e.Kind)
	s.Samples.Add(Sample{Archive: e.Archive, Line: e.Line, Kind: e.Kind, Reason: e.Reason, Text: e.Text})
}

// Merge folds o into s in archive order.
func (s *LineStats) Merge(o LineStats) {
	s.Kinds.Merge(o.Kinds)
	s.Samples.Merge(o.Samples)
}

// Malformed is the total malformed-line count.
func (s LineStats) Malformed() int { return s.Kinds.Total() }

// SetArchive stamps the archive name onto every retained sample.
func (s *LineStats) SetArchive(name string) {
	for i := 0; i < s.Samples.N; i++ {
		s.Samples.Samples[i].Archive = name
	}
}

// LineReader yields lines from r with their 1-based line numbers. Unlike
// bufio.Scanner it does not abort on long lines: lines up to AbsMaxLineBytes
// are returned whole (the parsers flag those beyond MaxLineBytes as
// KindOversize); only beyond AbsMaxLineBytes does the scan fail with
// bufio.ErrTooLong. Semantics otherwise match bufio.ScanLines: '\n'
// terminates a line, one trailing '\r' is stripped, and a final
// unterminated line is still yielded.
type LineReader struct {
	r      *bufio.Reader
	spill  []byte // reused accumulator for lines spanning buffer boundaries
	lineNo int
	err    error
	done   bool
}

// NewLineReader wraps r.
func NewLineReader(r io.Reader) *LineReader {
	return &LineReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next line (without its terminator) and its 1-based line
// number. ok is false at end of input or on error; check Err.
func (l *LineReader) Next() (line string, lineNo int, ok bool) {
	b, no, ok := l.NextBytes()
	if !ok {
		return "", 0, false
	}
	return string(b), no, true
}

// NextBytes is the zero-allocation form of Next: the returned slice is a
// view into the reader's internal buffer and is only valid until the next
// NextBytes (or Next) call. Callers that retain line content must copy it.
//
//ldvet:pooled
//ldvet:hotpath
func (l *LineReader) NextBytes() (line []byte, lineNo int, ok bool) {
	if l.err != nil || l.done {
		return nil, 0, false
	}
	frag, err := l.r.ReadSlice('\n')
	if err == nil {
		if len(frag) > AbsMaxLineBytes {
			l.err = bufio.ErrTooLong
			return nil, 0, false
		}
		l.lineNo++
		return trimEOL(frag), l.lineNo, true
	}
	return l.nextSlow(frag, err)
}

// nextSlow handles the uncommon cases of NextBytes: lines spanning the
// buffered reader's internal buffer (accumulated into the reused spill
// buffer), end of input, and read errors.
func (l *LineReader) nextSlow(frag []byte, err error) (line []byte, lineNo int, ok bool) {
	l.spill = append(l.spill[:0], frag...)
	for {
		if len(l.spill) > AbsMaxLineBytes {
			l.err = bufio.ErrTooLong
			return nil, 0, false
		}
		switch err {
		case nil:
			l.lineNo++
			return trimEOL(l.spill), l.lineNo, true
		case bufio.ErrBufferFull:
			// Keep accumulating.
		case io.EOF:
			if len(l.spill) == 0 {
				l.done = true
				return nil, 0, false
			}
			l.done = true
			l.lineNo++
			return trimEOL(l.spill), l.lineNo, true
		default:
			l.err = err
			return nil, 0, false
		}
		frag, err = l.r.ReadSlice('\n')
		l.spill = append(l.spill, frag...)
	}
}

// trimEOL strips one trailing '\n' and then one trailing '\r', matching
// bufio.ScanLines.
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// Err returns the first read error, if any.
func (l *LineReader) Err() error { return l.err }
