package parse

import (
	"strconv"
	"strings"
	"testing"
)

// numCorpus exercises every acceptance edge of the numeric parsers: signs,
// leading zeros, the 18/19-digit fast-path cutovers, int64/uint64 overflow
// boundaries, and inputs strconv rejects.
var numCorpus = []string{
	"", "0", "1", "-1", "+1", "42", "007", "-007", "+007",
	"123456789012345678",   // 18 digits: fast path
	"1234567890123456789",  // 19 digits: strconv path for signed
	"12345678901234567890", // 20 digits
	"9223372036854775807", "9223372036854775808",
	"-9223372036854775808", "-9223372036854775809",
	"18446744073709551615", "18446744073709551616",
	"1.5", "1e3", " 1", "1 ", "--1", "+-1", "-+1", "++1",
	"0x10", "abc", "12a", "a12", "-", "+", "٣", "١٢٣",
	"000000000000000000000000000000000001",
}

func TestAtoiMatchesStrconv(t *testing.T) {
	for _, s := range numCorpus {
		want, err := strconv.Atoi(s)
		got, ok := Atoi([]byte(s))
		if ok != (err == nil) {
			t.Errorf("Atoi(%q) ok=%v, strconv err=%v", s, ok, err)
			continue
		}
		if ok && got != want {
			t.Errorf("Atoi(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

func TestParseInt64MatchesStrconv(t *testing.T) {
	for _, s := range numCorpus {
		want, err := strconv.ParseInt(s, 10, 64)
		got, ok := ParseInt64([]byte(s))
		if ok != (err == nil) {
			t.Errorf("ParseInt64(%q) ok=%v, strconv err=%v", s, ok, err)
			continue
		}
		if ok && got != want {
			t.Errorf("ParseInt64(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

func TestParseUint64MatchesStrconv(t *testing.T) {
	for _, s := range numCorpus {
		want, err := strconv.ParseUint(s, 10, 64)
		got, ok := ParseUint64([]byte(s))
		if ok != (err == nil) {
			t.Errorf("ParseUint64(%q) ok=%v, strconv err=%v", s, ok, err)
			continue
		}
		if ok && got != want {
			t.Errorf("ParseUint64(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

func TestBlankMatchesTrimSpace(t *testing.T) {
	for _, s := range []string{"", " ", "\t", " \t \n", " ", "a", " a ", ".", "0"} {
		if got, want := Blank([]byte(s)), strings.TrimSpace(s) == ""; got != want {
			t.Errorf("Blank(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestCheckLineBytesMatchesCheckLine(t *testing.T) {
	lines := []string{
		"a perfectly fine line",
		"",
		strings.Repeat("x", MaxLineBytes),
		strings.Repeat("x", MaxLineBytes+1),
		"nul\x00byte",
		"bad utf8 \xff\xfe",
		"unicode ok ☃",
	}
	for _, s := range lines {
		want := CheckLine(s)
		got := CheckLineBytes([]byte(s))
		if (want == nil) != (got == nil) {
			t.Errorf("CheckLineBytes(%q) = %v, CheckLine = %v", s, got, want)
			continue
		}
		if want == nil {
			continue
		}
		if got.Kind != want.Kind || got.Error() != want.Error() {
			t.Errorf("CheckLineBytes(%q) = %v (%v), CheckLine = %v (%v)",
				s, got, got.Kind, want, want.Kind)
		}
	}
}

// TestNumericParsersZeroAlloc gates the steady-state hot path: parsing a
// well-formed in-range number must not allocate.
func TestNumericParsersZeroAlloc(t *testing.T) {
	in := []byte("1365000000")
	neg := []byte("-265")
	if n := testing.AllocsPerRun(200, func() {
		Atoi(in)
		Atoi(neg)
		ParseInt64(in)
		ParseInt64(neg)
		ParseUint64(in)
	}); n != 0 {
		t.Errorf("numeric fast paths allocate %.1f allocs/op, want 0", n)
	}
	line := []byte("04/03/2013 12:00:01;E;9.bw;Exit_status=0 user=alice")
	if n := testing.AllocsPerRun(200, func() {
		if CheckLineBytes(line) != nil {
			t.Fatal("well-formed line rejected")
		}
		if Blank(line) {
			t.Fatal("non-blank line reported blank")
		}
	}); n != 0 {
		t.Errorf("line acceptance fast path allocates %.1f allocs/op, want 0", n)
	}
}
