// Byte-oriented counterparts of the per-line acceptance checks and numeric
// field parsing, used by the zero-allocation ingestion hot path. The string
// forms (CheckLine, strconv) remain the reference implementations; the
// differential tests in bytes_test.go pin the byte forms to them so the two
// cannot drift.

package parse

import (
	"bytes"
	"strconv"
	"unicode/utf8"
)

// Blank reports whether the line is empty or whitespace-only, matching
// strings.TrimSpace(string(b)) == "".
//
//ldvet:pooled
//ldvet:hotpath
func Blank(b []byte) bool {
	return len(bytes.TrimSpace(b)) == 0
}

// truncString converts at most SampleTextBytes of b to a string, for error
// text retention without materializing a whole oversized line.
func truncString(b []byte) string {
	if len(b) > SampleTextBytes {
		b = b[:SampleTextBytes]
	}
	return string(b)
}

// CheckLineBytes is CheckLine over a byte view: the line must fit
// MaxLineBytes, carry no NUL bytes, and be valid UTF-8. It allocates only
// when building an error.
//
//ldvet:pooled
//ldvet:hotpath
func CheckLineBytes(b []byte) *Error {
	if len(b) > MaxLineBytes {
		return Errorf(KindOversize, truncString(b), "line exceeds %d bytes (%d)", MaxLineBytes, len(b))
	}
	if bytes.IndexByte(b, 0) >= 0 {
		return Errorf(KindEncoding, truncString(b), "NUL byte in line")
	}
	if !utf8.Valid(b) {
		return Errorf(KindEncoding, truncString(b), "invalid UTF-8")
	}
	return nil
}

// Atoi parses b with the exact acceptance of strconv.Atoi, without
// allocating. ok is false on any input strconv.Atoi would reject.
//
//ldvet:pooled
//ldvet:hotpath
func Atoi(b []byte) (int, bool) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	// 18 digits cannot overflow int64; longer (or empty) inputs take the
	// strconv path so overflow and error behavior match exactly.
	if len(s) == 0 || len(s) > 18 {
		n, err := strconv.Atoi(string(b))
		return n, err == nil
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// ParseInt64 parses b with the exact acceptance of
// strconv.ParseInt(string(b), 10, 64), without allocating.
//
//ldvet:pooled
//ldvet:hotpath
func ParseInt64(b []byte) (int64, bool) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		n, err := strconv.ParseInt(string(b), 10, 64)
		return n, err == nil
	}
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// ParseUint64 parses b with the exact acceptance of
// strconv.ParseUint(string(b), 10, 64), without allocating.
//
//ldvet:pooled
//ldvet:hotpath
func ParseUint64(b []byte) (uint64, bool) {
	// 19 digits cannot overflow uint64.
	if len(b) == 0 || len(b) > 19 {
		n, err := strconv.ParseUint(string(b), 10, 64)
		return n, err == nil
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}
