package store

import (
	"slices"
	"time"

	"logdiver/internal/coalesce"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
	"logdiver/internal/parse"
	"logdiver/internal/wlm"
)

// Snapshot merge: the fleet-scale building block. Each machine shard runs
// its own incremental pipeline and publishes ordinary per-shard snapshots;
// Merge folds any number of them (two at a time) into one fleet snapshot
// carrying a composite epoch vector.
//
// The algebra is exact, not approximate: Merge is associative and
// commutative with Zero as identity, byte-for-byte — including the
// floating-point aggregates. That holds because a merged snapshot is a pure
// function of the canonical run sequence: shard groups are interleaved by
// machine name (each shard's own run order preserved within its group), and
// every aggregate is recomputed from that sequence with the same metrics
// code Build uses. Any merge tree over the same shard set therefore yields
// the same sequence and the same bytes, which is what lets the scatter-
// gather plane fold shards in arbitrary order and still serve views
// identical to a from-scratch analysis of the combined input.
//
// Merging two snapshots that contain the same machine name is a misuse;
// the result is deterministic (left argument's group first) but the
// algebraic laws are not guaranteed.

// ShardEpoch is one component of a fleet epoch vector: the install epoch of
// one machine shard's contribution.
type ShardEpoch struct {
	Machine string `json:"machine"`
	Epoch   uint64 `json:"epoch"`
}

// shardSpans records how many runs/jobs/events each shard contributed to a
// merged snapshot's concatenated Result slices, aligned with Shards.
type shardSpans struct {
	runs, jobs, events, tuples, groups []int
}

// shardGroup is one shard's contribution during a merge walk.
type shardGroup struct {
	se     ShardEpoch
	runs   []correlate.AttributedRun
	jobs   []wlm.Job
	events []errlog.Event
	tuples []coalesce.Tuple
	groups []coalesce.Group
}

// EpochVector returns the snapshot's fleet epoch vector. For a merged
// snapshot it is the stored per-shard vector; for an unmerged snapshot it
// is the single implicit {Machine, Epoch} pair.
func (s *Snapshot) EpochVector() []ShardEpoch {
	if s.Shards != nil {
		return s.Shards
	}
	return []ShardEpoch{{Machine: s.Machine, Epoch: s.Epoch}}
}

// Zero returns the identity element of Merge: a snapshot of no shards at
// all. Merging it with any snapshot s yields a snapshot with s's vector,
// runs and aggregates. Note the difference from an *empty shard* snapshot
// (a real machine whose archives held no runs yet): that one carries a
// machine name and an epoch and contributes a vector entry when merged.
func Zero() *Snapshot {
	return &Snapshot{
		Result:   &core.Result{},
		Shards:   []ShardEpoch{},
		runIndex: map[uint64]int{},
	}
}

// isZero reports whether s is the Merge identity: nil, or an explicitly
// empty epoch vector (only Zero constructs that).
func isZero(s *Snapshot) bool {
	return s == nil || (s.Shards != nil && len(s.Shards) == 0)
}

// cloneMerged lifts s into canonical merged form without copying any bulk
// data: a fresh top-level struct (so installing the result into a fleet
// Store never mutates the shard's own snapshot) whose vector is s's epoch
// vector and whose epoch is unassigned.
func cloneMerged(s *Snapshot) *Snapshot {
	c := *s
	c.Epoch = 0
	c.Machine = ""
	c.Shards = slices.Clone(s.EpochVector())
	if c.spans == nil {
		c.spans = &shardSpans{
			runs:   []int{len(s.Result.Runs)},
			jobs:   []int{len(s.Result.Jobs)},
			events: []int{len(s.Result.Events)},
			tuples: []int{len(s.Result.Tuples)},
			groups: []int{len(s.Result.Groups)},
		}
	}
	return &c
}

// shardGroups slices the snapshot's Result into its per-shard groups, in
// vector order.
func (s *Snapshot) shardGroups() []shardGroup {
	v := s.EpochVector()
	if s.spans == nil {
		return []shardGroup{{
			se:     v[0],
			runs:   s.Result.Runs,
			jobs:   s.Result.Jobs,
			events: s.Result.Events,
			tuples: s.Result.Tuples,
			groups: s.Result.Groups,
		}}
	}
	out := make([]shardGroup, len(v))
	var ro, jo, eo, to, go_ int
	for i := range v {
		nr, nj, ne := s.spans.runs[i], s.spans.jobs[i], s.spans.events[i]
		nt, ng := s.spans.tuples[i], s.spans.groups[i]
		out[i] = shardGroup{
			se:     v[i],
			runs:   s.Result.Runs[ro : ro+nr],
			jobs:   s.Result.Jobs[jo : jo+nj],
			events: s.Result.Events[eo : eo+ne],
			tuples: s.Result.Tuples[to : to+nt],
			groups: s.Result.Groups[go_ : go_+ng],
		}
		ro, jo, eo, to, go_ = ro+nr, jo+nj, eo+ne, to+nt, go_+ng
	}
	return out
}

// mergeGroups interleaves two ordered group lists by machine name. Groups
// only ever reference the source snapshots' slices; no run is copied here.
//
//ldvet:hotpath
func mergeGroups(x, y []shardGroup) []shardGroup {
	out := make([]shardGroup, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i].se.Machine <= y[j].se.Machine {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// Merge combines two snapshots into one fleet snapshot. It is associative
// and commutative with Zero() as identity (see the package comment above);
// nil arguments are treated as Zero. The result is always a fresh snapshot
// — never an alias of an argument — with Epoch zero until a fleet Store
// installs it, and Partial the OR of the inputs' flags.
func Merge(a, b *Snapshot) *Snapshot {
	if isZero(a) {
		if isZero(b) {
			return Zero()
		}
		return cloneMerged(b)
	}
	if isZero(b) {
		return cloneMerged(a)
	}

	groups := mergeGroups(a.shardGroups(), b.shardGroups())
	var nr, nj, ne, nt, ng int
	for _, g := range groups {
		nr += len(g.runs)
		nj += len(g.jobs)
		ne += len(g.events)
		nt += len(g.tuples)
		ng += len(g.groups)
	}
	ar, br := a.Result, b.Result
	res := &core.Result{
		Runs:   make([]correlate.AttributedRun, 0, nr),
		Jobs:   make([]wlm.Job, 0, nj),
		Events: make([]errlog.Event, 0, ne),
		Tuples: make([]coalesce.Tuple, 0, nt),
		Groups: make([]coalesce.Group, 0, ng),
		Coalesce: coalesce.Stats{
			Raw:     ar.Coalesce.Raw + br.Coalesce.Raw,
			Deduped: ar.Coalesce.Deduped + br.Coalesce.Deduped,
			Tuples:  ar.Coalesce.Tuples + br.Coalesce.Tuples,
			Groups:  ar.Coalesce.Groups + br.Coalesce.Groups,
		},
		Parse: mergeParse(ar.Parse, br.Parse),
		Start: minNonZero(ar.Start, br.Start),
		End:   maxTime(ar.End, br.End),
	}
	spans := &shardSpans{
		runs:   make([]int, 0, len(groups)),
		jobs:   make([]int, 0, len(groups)),
		events: make([]int, 0, len(groups)),
		tuples: make([]int, 0, len(groups)),
		groups: make([]int, 0, len(groups)),
	}
	vec := make([]ShardEpoch, 0, len(groups))
	for _, g := range groups {
		res.Runs = append(res.Runs, g.runs...)
		res.Jobs = append(res.Jobs, g.jobs...)
		res.Events = append(res.Events, g.events...)
		res.Tuples = append(res.Tuples, g.tuples...)
		res.Groups = append(res.Groups, g.groups...)
		spans.runs = append(spans.runs, len(g.runs))
		spans.jobs = append(spans.jobs, len(g.jobs))
		spans.events = append(spans.events, len(g.events))
		spans.tuples = append(spans.tuples, len(g.tuples))
		spans.groups = append(spans.groups, len(g.groups))
		vec = append(vec, g.se)
	}

	m := &Snapshot{
		BuiltAt:    maxTime(a.BuiltAt, b.BuiltAt),
		Result:     res,
		Outcomes:   metrics.Outcomes(res.Runs),
		Categories: metrics.ByCategory(res.Runs),
		Ingest:     mergeIngest(a.Ingest, b.Ingest),
		Shards:     vec,
		Partial:    a.Partial || b.Partial,
		NumNodes:   max(a.NumNodes, b.NumNodes),
		NumXE:      max(a.NumXE, b.NumXE),
		NumXK:      max(a.NumXK, b.NumXK),
		spans:      spans,
		runIndex:   make(map[uint64]int, nr),
	}
	m.ScalingXE = rebucketScale(res.Runs, m.NumXE, machine.ClassXE)
	m.ScalingXK = rebucketScale(res.Runs, m.NumXK, machine.ClassXK)
	m.MTTI = rebucketMTTI(res.Runs, m.NumNodes)

	// First occurrence in canonical order wins the drill-down index; a
	// cross-shard apid collision (a misconfigured fleet) still counts every
	// run in the aggregates, it just resolves /v1/runs/{apid} to one of
	// them deterministically.
	for i, r := range res.Runs {
		if _, ok := m.runIndex[r.ApID]; !ok {
			m.runIndex[r.ApID] = i
		}
	}
	m.apidsSorted = make([]uint64, 0, len(m.runIndex))
	for apid := range m.runIndex {
		m.apidsSorted = append(m.apidsSorted, apid)
	}
	slices.Sort(m.apidsSorted)
	return m
}

// rebucketScale recomputes a failure-probability curve over the merged runs
// with bounds sized to the union topology. For equal-topology shards the
// bounds equal each shard's own, so the curve matches what a single-machine
// Build would produce over the same runs.
func rebucketScale(runs []correlate.AttributedRun, maxNodes int, class machine.NodeClass) []metrics.ScaleBucket {
	if maxNodes <= 0 {
		return nil
	}
	buckets, err := metrics.FailureProbabilityByScale(runs, metrics.GeometricBuckets(maxNodes), class)
	if err != nil {
		// GeometricBuckets(n>0) is ascending by construction; an error here
		// is a programming bug, not an input condition.
		panic("store: merge scaling: " + err.Error())
	}
	return buckets
}

// rebucketMTTI recomputes the MTTI-by-scale curve over the merged runs.
func rebucketMTTI(runs []correlate.AttributedRun, maxNodes int) []metrics.MTTIBucket {
	if maxNodes <= 0 {
		return nil
	}
	buckets, err := metrics.MTTIByScale(runs, metrics.GeometricBuckets(maxNodes), 0)
	if err != nil {
		panic("store: merge mtti: " + err.Error())
	}
	return buckets
}

// mergeParse sums two hygiene reports. Per-kind counters add; the retained
// malformed-line samples are per-shard provenance and are dropped from the
// merged view (fetch a ?machine= view to see them), which keeps the merge
// independent of fold order.
//
//ldvet:hotpath
func mergeParse(a, b core.ParseStats) core.ParseStats {
	return core.ParseStats{
		AccountingRecords:   a.AccountingRecords + b.AccountingRecords,
		AccountingMalformed: a.AccountingMalformed + b.AccountingMalformed,
		ApsysLines:          a.ApsysLines + b.ApsysLines,
		ApsysMalformed:      a.ApsysMalformed + b.ApsysMalformed,
		OpenRuns:            a.OpenRuns + b.OpenRuns,
		UnmatchedExits:      a.UnmatchedExits + b.UnmatchedExits,
		DuplicateStarts:     a.DuplicateStarts + b.DuplicateStarts,
		ClampedRuns:         a.ClampedRuns + b.ClampedRuns,
		SyslogLines:         a.SyslogLines + b.SyslogLines,
		SyslogMalformed:     a.SyslogMalformed + b.SyslogMalformed,
		Unclassified:        a.Unclassified + b.Unclassified,
		AccountingDetail:    mergeDetail(a.AccountingDetail, b.AccountingDetail),
		ApsysDetail:         mergeDetail(a.ApsysDetail, b.ApsysDetail),
		SyslogDetail:        mergeDetail(a.SyslogDetail, b.SyslogDetail),
	}
}

//ldvet:hotpath
func mergeDetail(a, b parse.LineStats) parse.LineStats {
	k := a.Kinds
	k.Merge(b.Kinds)
	return parse.LineStats{Kinds: k}
}

// mergeIngest sums ingestion history: the merged snapshot's build cost is
// the total cost of building its parts.
//
//ldvet:hotpath
func mergeIngest(a, b IngestStats) IngestStats {
	return IngestStats{
		Rounds:          a.Rounds + b.Rounds,
		AccountingLines: a.AccountingLines + b.AccountingLines,
		ApsysLines:      a.ApsysLines + b.ApsysLines,
		SyslogLines:     a.SyslogLines + b.SyslogLines,
		Reattributed:    a.Reattributed + b.Reattributed,
		BuildDuration:   a.BuildDuration + b.BuildDuration,
	}
}

func minNonZero(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() || a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
