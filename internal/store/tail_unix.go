//go:build unix

package store

import (
	"io/fs"
	"syscall"
)

// fileID returns a stable identity for the file behind fi (the inode
// number), so the tailer can detect rotation to a replacement file that is
// not smaller than the original.
func fileID(fi fs.FileInfo) (uint64, bool) {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino, true
	}
	return 0, false
}
