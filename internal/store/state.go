package store

// Durable-state plumbing for warm restarts. The serializable types here are
// plain data (internal/persist gob-encodes them); the semantic rule is the
// same as in internal/core: state files carry positions and accumulated
// results, never configuration. Paths, topology and parse options come from
// the restoring process and are fingerprinted by the persistence layer.

import (
	"fmt"

	"logdiver/internal/core"
)

// TailFileState is the persisted tail position of one archive.
type TailFileState struct {
	// Offset is the byte position already consumed, including Carry.
	Offset int64
	// Carry is the held-back trailing partial line.
	Carry []byte
	// Inode identifies the file the offset belongs to; InodeOK is false
	// when the platform offers no stable file identity or the file had not
	// appeared yet. A restored inode lets the tailer detect rotation that
	// happened while the process was down, even to a larger file.
	Inode   uint64
	InodeOK bool
}

// TailerState is the persisted position of all three archives, in the fixed
// order accounting, apsys, syslog. Paths are deliberately absent: the
// restoring daemon supplies its own -data-dir, and offsets apply wherever
// the archives live now.
type TailerState struct {
	Files [3]TailFileState
}

// State exports the tailer's positions for persistence.
func (t *Tailer) State() TailerState {
	var st TailerState
	for i := range t.files {
		f := &t.files[i]
		st.Files[i] = TailFileState{
			Offset:  f.offset,
			Carry:   append([]byte(nil), f.carry...),
			Inode:   f.inode,
			InodeOK: f.inodeOK,
		}
	}
	return st
}

// RestoreState seeds the tailer with persisted positions so the next Poll
// resumes where the previous process stopped. Rotation while the process
// was down is handled by the normal read path: a shrunken file or a changed
// inode restarts that archive from the top.
func (t *Tailer) RestoreState(st TailerState) error {
	for i := range st.Files {
		if st.Files[i].Offset < 0 {
			return fmt.Errorf("store: restore: negative tail offset %d for archive %d", st.Files[i].Offset, i)
		}
	}
	for i := range t.files {
		f := &t.files[i]
		f.offset = st.Files[i].Offset
		f.carry = append([]byte(nil), st.Files[i].Carry...)
		f.inode = st.Files[i].Inode
		f.inodeOK = st.Files[i].InodeOK
	}
	return nil
}

// SyncerState is the full resume state of an ingestion sequence: the
// pipeline, the tail positions it has consumed up to, and the cumulative
// ingestion counters. The three are persisted together because they are
// only consistent together — offsets ahead of the pipeline would skip
// lines, offsets behind it would double-ingest.
type SyncerState struct {
	Pipeline *core.IncrementalState
	Tailer   TailerState
	Ingest   IngestStats
}

// ExportState captures the syncer for persistence. It must be called from
// the ingestion goroutine (between Sync rounds); a poisoned pipeline
// returns its error.
func (s *Syncer) ExportState() (*SyncerState, error) {
	pst, err := s.inc.State()
	if err != nil {
		return nil, err
	}
	return &SyncerState{
		Pipeline: pst,
		Tailer:   s.tail.State(),
		Ingest:   s.ing,
	}, nil
}
