package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
)

// smallDataset generates a small synthetic archive set, optionally offset
// in time and reseeded so successive datasets model an archive growing with
// fresh activity.
func smallDataset(t *testing.T, startOffsetDays int, seed int64) *gen.Dataset {
	t.Helper()
	cfg := gen.Default()
	cfg.Machine = machine.Small()
	cfg.Days = 1
	cfg.Seed = seed
	cfg.Start = cfg.Start.AddDate(0, 0, startOffsetDays)
	cfg.Workload.JobsPerDay = 150
	cfg.Workload.XECapabilityJobsPerDay = 2
	cfg.Workload.XKCapabilityJobsPerDay = 1
	cfg.Workload.XECapabilitySizes = []int{256, 512}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.NodeBenignPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 100
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// writeArchives appends the dataset's three archives to the conventional
// file names under dir.
func writeArchives(t *testing.T, dir string, ds *gen.Dataset) {
	t.Helper()
	appendTo := func(name string, write func(*strings.Builder) error) {
		var b strings.Builder
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(b.String()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	appendTo(AccountingFile, func(b *strings.Builder) error { return ds.WriteAccounting(b) })
	appendTo(ApsysFile, func(b *strings.Builder) error { return ds.WriteApsys(b) })
	appendTo(SyslogFile, func(b *strings.Builder) error { return ds.WriteErrorLog(b) })
}

func TestTailerAppendAndPartialLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SyslogFile)
	tl := NewTailer(dir)

	// Absent files are empty, not errors.
	d, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("poll of absent files returned data: %+v", d)
	}

	// A write ending mid-line: only the complete lines are released.
	if err := os.WriteFile(path, []byte("line one\nline two\npartial"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Syslog), "line one\nline two\n"; got != want {
		t.Errorf("first poll: %q, want %q", got, want)
	}

	// Nothing new: no data, and the partial line is still held back.
	d, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("idle poll returned %q", d.Syslog)
	}

	// Completing the line releases it joined with the held-back fragment.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(" done\nnext\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Syslog), "partial done\nnext\n"; got != want {
		t.Errorf("after completion: %q, want %q", got, want)
	}
}

func TestTailerRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ApsysFile)
	tl := NewTailer(dir)

	if err := os.WriteFile(path, []byte("old one\nold two\nold partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// Rotation: the file is replaced by a shorter one. The old partial
	// line is gone with the old file; reading restarts from the top.
	if err := os.WriteFile(path, []byte("new one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Apsys), "new one\n"; got != want {
		t.Errorf("after rotation: %q, want %q", got, want)
	}
}

func TestStoreEpochsAndHeartbeat(t *testing.T) {
	st := New()
	if st.Current() != nil {
		t.Fatal("fresh store has a snapshot")
	}
	if st.Epoch() != 0 {
		t.Fatalf("fresh store epoch %d", st.Epoch())
	}
	if _, ok := st.LastSync(); ok {
		t.Fatal("fresh store has a sync heartbeat")
	}
	s1, s2 := &Snapshot{}, &Snapshot{}
	if e := st.Install(s1); e != 1 {
		t.Fatalf("first install epoch %d", e)
	}
	if e := st.Install(s2); e != 2 {
		t.Fatalf("second install epoch %d", e)
	}
	if cur := st.Current(); cur != s2 || cur.Epoch != 2 {
		t.Fatalf("current = %+v", cur)
	}
	at := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	st.MarkSync(at)
	got, ok := st.LastSync()
	if !ok || !got.Equal(at) {
		t.Fatalf("LastSync = %v, %v", got, ok)
	}
}

// TestSyncerLifecycle drives the full tail → append → snapshot loop over a
// real generated archive set, then appends more data and asserts the epoch
// advances and the new snapshot equals a from-scratch Analyze.
func TestSyncerLifecycle(t *testing.T) {
	dir := t.TempDir()
	st := New()
	clock := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	sy, err := NewSyncer(SyncerConfig{
		Tailer:   NewTailer(dir),
		Store:    st,
		Topology: smallDataset(t, 0, 21).Topology,
		Location: time.UTC,
		Now: func() time.Time {
			clock = clock.Add(time.Second)
			return clock
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First sync over an empty directory: installs the empty ready snapshot.
	installed, err := sy.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !installed {
		t.Fatal("first sync did not install")
	}
	empty := st.Current()
	if empty.Epoch != 1 || empty.Outcomes.Total != 0 {
		t.Fatalf("empty snapshot: epoch %d, %d runs", empty.Epoch, empty.Outcomes.Total)
	}
	if _, ok := st.LastSync(); !ok {
		t.Fatal("no heartbeat after sync")
	}

	// Data arrives.
	ds1 := smallDataset(t, 0, 21)
	writeArchives(t, dir, ds1)
	if installed, err = sy.Sync(); err != nil || !installed {
		t.Fatalf("sync after data: %v, %v", installed, err)
	}
	s1 := st.Current()
	if s1.Epoch != 2 {
		t.Fatalf("epoch %d after first data", s1.Epoch)
	}
	if got, want := s1.Outcomes.Total, len(ds1.Runs); got != want {
		t.Fatalf("runs %d, want %d", got, want)
	}
	if s1.Ingest.Rounds != 1 || s1.Ingest.SyslogLines == 0 {
		t.Fatalf("ingest stats: %+v", s1.Ingest)
	}

	// A quiet poll installs nothing and leaves the snapshot alone, but the
	// heartbeat still advances.
	before, _ := st.LastSync()
	if installed, err = sy.Sync(); err != nil || installed {
		t.Fatalf("quiet sync: %v, %v", installed, err)
	}
	after, _ := st.LastSync()
	if st.Current() != s1 || !after.After(before) {
		t.Fatal("quiet sync disturbed snapshot or skipped heartbeat")
	}

	// The archive grows: a later day of activity lands.
	ds2 := smallDataset(t, 2, 22)
	writeArchives(t, dir, ds2)
	if installed, err = sy.Sync(); err != nil || !installed {
		t.Fatalf("sync after growth: %v, %v", installed, err)
	}
	s2 := st.Current()
	if s2.Epoch != 3 {
		t.Fatalf("epoch %d after growth", s2.Epoch)
	}
	if s2.Outcomes.Total <= s1.Outcomes.Total {
		t.Fatalf("run count did not grow: %d -> %d", s1.Outcomes.Total, s2.Outcomes.Total)
	}
	// (No windowed-win assertion here: the independently generated ds2
	// reuses ds1's batch job IDs, so every job is dirty and a full redo is
	// the correct answer. Round 3 below shows the windowed path.)

	// Windowed re-attribution: a syslog-only append two further days out
	// touches no jobs and completes no runs, so nothing settled needs redo.
	var sysOnly strings.Builder
	if err := smallDataset(t, 4, 23).WriteErrorLog(&sysOnly); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, SyslogFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(sysOnly.String()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if installed, err = sy.Sync(); err != nil || !installed {
		t.Fatalf("sync after syslog growth: %v, %v", installed, err)
	}
	s3 := st.Current()
	if s3.Epoch != 4 {
		t.Fatalf("epoch %d after syslog growth", s3.Epoch)
	}
	if s3.Ingest.Reattributed >= s3.Outcomes.Total {
		t.Errorf("syslog-only round re-attributed %d of %d runs", s3.Ingest.Reattributed, s3.Outcomes.Total)
	}

	// The installed snapshot matches a from-scratch Analyze of the files.
	files := core.Archives{Location: time.UTC}
	acc, err := os.Open(filepath.Join(dir, AccountingFile))
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	aps, err := os.Open(filepath.Join(dir, ApsysFile))
	if err != nil {
		t.Fatal(err)
	}
	defer aps.Close()
	sys, err := os.Open(filepath.Join(dir, SyslogFile))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	files.Accounting, files.Apsys, files.Syslog = acc, aps, sys
	want, err := core.Analyze(files, ds1.Topology, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Outcomes.Total; got != len(want.Runs) {
		t.Fatalf("snapshot runs %d, from-scratch %d", got, len(want.Runs))
	}
	for i, r := range want.Runs {
		if s3.Result.Runs[i].Outcome != r.Outcome || s3.Result.Runs[i].ApID != r.ApID {
			t.Fatalf("run %d diverged from batch analyze", i)
		}
	}

	// Drill-down index covers every run.
	for _, r := range want.Runs {
		if _, ok := s3.Run(r.ApID); !ok {
			t.Fatalf("apid %d missing from run index", r.ApID)
		}
	}
	if _, ok := s3.Run(0xdeadbeef); ok {
		t.Fatal("bogus apid resolved")
	}
}

func TestBuildValidation(t *testing.T) {
	ds := smallDataset(t, 0, 21)
	if _, err := Build(nil, ds.Topology, IngestStats{}, time.Time{}); err == nil {
		t.Error("Build accepted nil result")
	}
	if _, err := Build(&core.Result{}, nil, IngestStats{}, time.Time{}); err == nil {
		t.Error("Build accepted nil topology")
	}
}
