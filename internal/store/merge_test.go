package store

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
)

// fleetFixture returns a small, fast fleet: k machines, one day each, with
// the workload thinned so the whole suite stays in test-friendly time.
func fleetFixture(t testing.TB, k int) []gen.FleetMachine {
	t.Helper()
	machines := gen.Fleet(k, 1, 7)
	for i := range machines {
		machines[i].Config.Workload.JobsPerDay = 120
		machines[i].Config.Rates.NodeFatalPerNodeHour *= 20
		machines[i].Config.Rates.GPUFatalPerNodeHour *= 50
	}
	return machines
}

// scratchShard analyzes one machine's windows from scratch — the oracle's
// reference path — and returns the per-shard snapshot stamped with the
// machine name and epoch.
func scratchShard(t testing.TB, m gen.FleetMachine, windows int, par int, epoch uint64) *Snapshot {
	t.Helper()
	var acc, aps, sys strings.Builder
	for w := 0; w < windows; w++ {
		ds, err := gen.Generate(m.Window(w))
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteAccounting(&acc); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteApsys(&aps); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteErrorLog(&sys); err != nil {
			t.Fatal(err)
		}
	}
	top, err := machine.New(m.Config.Machine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(core.Archives{
		Accounting: strings.NewReader(acc.String()),
		Apsys:      strings.NewReader(aps.String()),
		Syslog:     strings.NewReader(sys.String()),
	}, top, core.Options{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Build(res, top, IngestStats{}, time.Unix(0, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	snap.Machine = m.Name
	snap.Epoch = epoch
	return snap
}

// syncedShard drives the incremental path over the same windows: a tailer
// and syncer against real archive files, appending one window per round.
func syncedShard(t *testing.T, m gen.FleetMachine, windows int, par int) *Snapshot {
	t.Helper()
	dir := t.TempDir()
	top, err := machine.New(m.Config.Machine)
	if err != nil {
		t.Fatal(err)
	}
	st := New()
	sy, err := NewSyncer(SyncerConfig{
		Tailer:   NewTailer(dir),
		Store:    st,
		Topology: top,
		Machine:  m.Name,
		Options:  core.Options{Parallelism: par},
		Now:      func() time.Time { return time.Unix(0, 0).UTC() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < windows; w++ {
		ds, err := gen.Generate(m.Window(w))
		if err != nil {
			t.Fatal(err)
		}
		writeArchives(t, dir, ds)
		if _, err := sy.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Current()
	if snap == nil {
		t.Fatal("no snapshot installed")
	}
	return snap
}

// mustJSON marshals v the way the serving layer does, for byte-identity
// comparisons between merged and from-scratch views.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMergeOracle is the differential oracle: merging N per-machine
// snapshots built incrementally (tailer + syncer, window appends) must be
// byte-identical to analyzing each machine's concatenated input from
// scratch and aggregating over the combined run sequence — at parallelism
// 1 and 4.
func TestMergeOracle(t *testing.T) {
	machines := fleetFixture(t, 3)
	const windows = 2
	for _, par := range []int{1, 4} {
		par := par
		t.Run(map[int]string{1: "par1", 4: "par4"}[par], func(t *testing.T) {
			t.Parallel()
			// Scatter side: incremental shards folded left-to-right.
			merged := Zero()
			var vector []ShardEpoch
			for _, m := range machines {
				snap := syncedShard(t, m, windows, par)
				vector = append(vector, ShardEpoch{Machine: m.Name, Epoch: snap.Epoch})
				merged = Merge(merged, snap)
			}

			// Gather side: from-scratch per-machine analyses concatenated
			// in machine-name order, aggregated directly.
			var runs []correlate.AttributedRun
			for _, m := range machines {
				runs = append(runs, scratchShard(t, m, windows, par, 1).Result.Runs...)
			}
			top, err := machine.New(machines[0].Config.Machine)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := len(merged.Result.Runs), len(runs); got != want {
				t.Fatalf("merged runs = %d, from scratch = %d", got, want)
			}
			if !reflect.DeepEqual(merged.Result.Runs, runs) {
				t.Fatal("merged run sequence differs from from-scratch concatenation")
			}
			if !reflect.DeepEqual(merged.Shards, vector) {
				t.Fatalf("epoch vector = %+v, want %+v", merged.Shards, vector)
			}

			wantOut := metrics.Outcomes(runs)
			wantCat := metrics.ByCategory(runs)
			wantXE, err := metrics.FailureProbabilityByScale(runs, metrics.GeometricBuckets(top.NumXE()), machine.ClassXE)
			if err != nil {
				t.Fatal(err)
			}
			wantXK, err := metrics.FailureProbabilityByScale(runs, metrics.GeometricBuckets(top.NumXK()), machine.ClassXK)
			if err != nil {
				t.Fatal(err)
			}
			wantMTTI, err := metrics.MTTIByScale(runs, metrics.GeometricBuckets(top.NumNodes()), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, cmp := range []struct {
				name      string
				got, want any
			}{
				{"outcomes", merged.Outcomes, wantOut},
				{"categories", merged.Categories, wantCat},
				{"scaling_xe", merged.ScalingXE, wantXE},
				{"scaling_xk", merged.ScalingXK, wantXK},
				{"mtti", merged.MTTI, wantMTTI},
			} {
				got, want := mustJSON(t, cmp.got), mustJSON(t, cmp.want)
				if !bytes.Equal(got, want) {
					t.Errorf("%s view not byte-identical to from-scratch:\n got: %s\nwant: %s", cmp.name, got, want)
				}
			}

			// Every run resolves through the merged drill-down index.
			for _, r := range runs {
				got, ok := merged.Run(r.ApID)
				if !ok {
					t.Fatalf("merged snapshot missing run %d", r.ApID)
				}
				if !reflect.DeepEqual(got, r) {
					t.Fatalf("run %d differs through merged index", r.ApID)
				}
			}
			if merged.TotalRuns() != len(runs) {
				t.Fatalf("TotalRuns = %d, want %d", merged.TotalRuns(), len(runs))
			}
		})
	}
}

// TestMergeLaws proves the algebra: associative, commutative, identity.
func TestMergeLaws(t *testing.T) {
	machines := fleetFixture(t, 3)
	snaps := make([]*Snapshot, len(machines))
	for i, m := range machines {
		snaps[i] = scratchShard(t, m, 1, 1, uint64(i+1))
	}
	s0, s1, s2 := snaps[0], snaps[1], snaps[2]

	t.Run("associative", func(t *testing.T) {
		left := Merge(Merge(s0, s1), s2)
		right := Merge(s0, Merge(s1, s2))
		if !reflect.DeepEqual(left, right) {
			t.Fatal("(s0+s1)+s2 != s0+(s1+s2)")
		}
	})
	t.Run("commutative", func(t *testing.T) {
		for _, pair := range [][2]*Snapshot{{s0, s1}, {s1, s2}, {s0, s2}} {
			ab := Merge(pair[0], pair[1])
			ba := Merge(pair[1], pair[0])
			if !reflect.DeepEqual(ab, ba) {
				t.Fatalf("merge of %s/%s not commutative", pair[0].Machine, pair[1].Machine)
			}
		}
	})
	t.Run("identity", func(t *testing.T) {
		for name, id := range map[string]*Snapshot{"zero": Zero(), "nil": nil} {
			for _, m := range []*Snapshot{Merge(id, s0), Merge(s0, id)} {
				if m == s0 {
					t.Fatalf("%s identity merge aliases its argument", name)
				}
				if !reflect.DeepEqual(m.Result.Runs, s0.Result.Runs) {
					t.Fatalf("%s identity merge changed the runs", name)
				}
				want := []ShardEpoch{{Machine: s0.Machine, Epoch: s0.Epoch}}
				if !reflect.DeepEqual(m.EpochVector(), want) {
					t.Fatalf("%s identity vector = %+v, want %+v", name, m.EpochVector(), want)
				}
				if !reflect.DeepEqual(m.Outcomes, s0.Outcomes) {
					t.Fatalf("%s identity merge changed the outcomes", name)
				}
			}
		}
		z := Merge(nil, nil)
		if !isZero(z) {
			t.Fatal("merge of two identities is not the identity")
		}
	})
	t.Run("never_aliases", func(t *testing.T) {
		// Installing a merged (even single-shard) snapshot into a fleet
		// store must not disturb the shard's own epoch.
		before := s0.Epoch
		fleet := New()
		fleet.Install(Merge(Zero(), s0))
		if s0.Epoch != before {
			t.Fatalf("installing the merged snapshot changed the shard epoch: %d -> %d", before, s0.Epoch)
		}
	})
	t.Run("partial_propagates", func(t *testing.T) {
		p := cloneMerged(s0)
		p.Partial = true
		if m := Merge(p, s1); !m.Partial {
			t.Fatal("partial flag lost in merge")
		}
		if m := Merge(s1, p); !m.Partial {
			t.Fatal("partial flag lost in merge (right argument)")
		}
	})
}

// BenchmarkMerge measures one pairwise fleet merge; BENCH_merge.json gates
// its ns/op and allocs/op ceilings in CI.
func BenchmarkMerge(b *testing.B) {
	machines := fleetFixture(b, 2)
	a := scratchShard(b, machines[0], 1, 0, 1)
	c := scratchShard(b, machines[1], 1, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := Merge(a, c); m.TotalRuns() == 0 {
			b.Fatal("empty merge")
		}
	}
}
