package store

import (
	"math/rand"
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
)

// pageSnapshot builds a snapshot over n runs whose apids are deliberately
// NOT in slice order, so the pagination tests prove RunsPage sorts rather
// than echoing ingestion order.
func pageSnapshot(t *testing.T, apids []uint64) *Snapshot {
	t.Helper()
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	runs := make([]correlate.AttributedRun, len(apids))
	for i, apid := range apids {
		runs[i] = correlate.AttributedRun{
			AppRun: alps.AppRun{
				ApID:  apid,
				Nodes: []machine.NodeID{machine.NodeID(i % 8)},
				Start: base.Add(time.Duration(i) * time.Minute),
				End:   base.Add(time.Duration(i+1) * time.Minute),
			},
			Class:   machine.ClassXE,
			Outcome: correlate.OutcomeSuccess,
		}
	}
	snap, err := Build(&core.Result{Runs: runs}, top, IngestStats{}, base)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestRunsPage(t *testing.T) {
	// Apids 2,4,...,40 shuffled: pages must come back sorted ascending.
	apids := make([]uint64, 20)
	for i := range apids {
		apids[i] = uint64(2 * (i + 1))
	}
	rand.New(rand.NewSource(7)).Shuffle(len(apids), func(i, j int) {
		apids[i], apids[j] = apids[j], apids[i]
	})
	snap := pageSnapshot(t, apids)
	if snap.TotalRuns() != 20 {
		t.Fatalf("TotalRuns = %d, want 20", snap.TotalRuns())
	}

	tests := []struct {
		name      string
		after     uint64
		limit     int
		wantFirst uint64
		wantN     int
		wantLast  uint64
	}{
		{"first page", 0, 5, 2, 5, 10},
		{"middle page", 10, 5, 12, 5, 20},
		{"cursor between apids", 11, 5, 12, 5, 20},
		{"last partial page", 36, 5, 38, 2, 40},
		{"exactly at end", 40, 5, 0, 0, 0},
		{"beyond end", 1000, 5, 0, 0, 0},
		{"max cursor", ^uint64(0), 5, 0, 0, 0},
		{"limit covers all", 0, 100, 2, 20, 40},
		{"zero limit", 0, 0, 0, 0, 0},
		{"negative limit", 0, -3, 0, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			runs, last := snap.RunsPage(tc.after, tc.limit)
			if len(runs) != tc.wantN || last != tc.wantLast {
				t.Fatalf("RunsPage(%d, %d) = %d runs, last %d; want %d runs, last %d",
					tc.after, tc.limit, len(runs), last, tc.wantN, tc.wantLast)
			}
			if tc.wantN == 0 {
				return
			}
			if runs[0].ApID != tc.wantFirst {
				t.Errorf("first apid %d, want %d", runs[0].ApID, tc.wantFirst)
			}
			for i := 1; i < len(runs); i++ {
				if runs[i].ApID <= runs[i-1].ApID {
					t.Fatalf("page not strictly ascending at %d: %d then %d", i, runs[i-1].ApID, runs[i].ApID)
				}
			}
		})
	}

	// A full traversal via cursors visits every run exactly once.
	seen := make(map[uint64]bool)
	cursor := uint64(0)
	for {
		runs, last := snap.RunsPage(cursor, 3)
		if len(runs) == 0 {
			break
		}
		for _, r := range runs {
			if seen[r.ApID] {
				t.Fatalf("apid %d returned twice", r.ApID)
			}
			seen[r.ApID] = true
		}
		cursor = last
	}
	if len(seen) != 20 {
		t.Fatalf("traversal saw %d runs, want 20", len(seen))
	}
}
