package store

import (
	"fmt"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/machine"
)

// SyncerConfig wires a Syncer.
type SyncerConfig struct {
	// Tailer supplies the raw archive deltas. Required.
	Tailer *Tailer
	// Store receives the built snapshots. Required.
	Store *Store
	// Topology is the machine the archives describe. Required.
	Topology *machine.Topology
	// Location interprets accounting timestamps (UTC when nil).
	Location *time.Location
	// Options follows core.Analyze semantics (zero value = study defaults).
	Options core.Options
	// Machine, when set, stamps every built snapshot with the shard name
	// it was analyzed for. The fleet manager sets it so merged views can
	// identify each contribution; the single-machine daemon leaves it
	// empty.
	Machine string
	// Resume, when non-nil, warm-starts the syncer from persisted state:
	// the pipeline picks up its assemblers and attribution carry, the
	// tailer its offsets, and the ingest counters their history. The
	// configuration above still governs — Resume carries data, not policy.
	Resume *SyncerState
	// Now injects the clock (time.Now when nil); tests pin it.
	Now func() time.Time
}

// Syncer drives ingestion rounds: poll the tailer, append the delta to the
// incremental pipeline, rebuild the snapshot and install it. One Syncer
// owns one ingestion sequence; it is not safe for concurrent use — the
// daemon runs Sync from a single goroutine and readers see the results
// through the Store.
type Syncer struct {
	tail    *Tailer
	inc     *core.Incremental
	store   *Store
	top     *machine.Topology
	machine string
	now     func() time.Time
	ing     IngestStats
}

// NewSyncer validates cfg and returns a Syncer with an empty pipeline.
func NewSyncer(cfg SyncerConfig) (*Syncer, error) {
	if cfg.Tailer == nil {
		return nil, fmt.Errorf("store: nil tailer")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("store: nil store")
	}
	var (
		inc *core.Incremental
		err error
		ing IngestStats
	)
	if cfg.Resume != nil {
		inc, err = core.RestoreIncremental(cfg.Topology, cfg.Location, cfg.Options, cfg.Resume.Pipeline)
		if err == nil {
			err = cfg.Tailer.RestoreState(cfg.Resume.Tailer)
		}
		ing = cfg.Resume.Ingest
	} else {
		inc, err = core.NewIncremental(cfg.Topology, cfg.Location, cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Syncer{
		tail:    cfg.Tailer,
		inc:     inc,
		store:   cfg.Store,
		top:     cfg.Topology,
		machine: cfg.Machine,
		now:     now,
		ing:     ing,
	}, nil
}

// Sync runs one ingestion round and reports whether a new snapshot was
// installed. A poll that finds no new data is a no-op (the sync heartbeat
// still advances) — except for the very first round, which installs an
// empty snapshot so the API becomes ready even over empty archives.
func (s *Syncer) Sync() (installed bool, err error) {
	defer func() {
		// Heartbeat even on failed or empty rounds: ingestion lag measures
		// the poll loop being alive, not data arriving.
		s.store.MarkSync(s.now())
	}()
	d, err := s.tail.Poll()
	if err != nil {
		return false, err
	}
	if d.Empty() && s.store.Current() != nil {
		return false, nil
	}
	began := s.now()
	ast, err := s.inc.Append(d)
	if err != nil {
		return false, err
	}
	res, err := s.inc.Result()
	if err != nil {
		return false, err
	}
	if !d.Empty() {
		s.ing.Rounds++
	}
	s.ing.AccountingLines += ast.AccountingLines
	s.ing.ApsysLines += ast.ApsysLines
	s.ing.SyslogLines += ast.SyslogLines
	s.ing.Reattributed = s.inc.Reattributed()
	s.ing.BuildDuration = s.now().Sub(began)
	snap, err := Build(res, s.top, s.ing, s.now())
	if err != nil {
		return false, err
	}
	snap.Machine = s.machine
	s.store.Install(snap)
	return true, nil
}
