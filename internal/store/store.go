package store

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Store publishes snapshots to concurrent readers. One writer (the
// ingestion goroutine) Installs; any number of readers call Current. The
// swap is a single atomic pointer store: a reader holding a snapshot keeps
// a fully consistent view for as long as it wants, and a reader arriving
// mid-install sees either the old or the new snapshot, never a mixture.
type Store struct {
	cur   atomic.Pointer[Snapshot]
	epoch atomic.Uint64
	// lastSync is the unix-nano wall time of the last ingestion poll
	// (including no-op polls); 0 before the first. It backs the
	// ingestion-lag gauge: a wedged tail loop shows up as growing lag even
	// while the snapshot epoch sits still.
	lastSync atomic.Int64
}

// New returns an empty store. Current returns nil until the first Install.
func New() *Store { return &Store{} }

// Current returns the latest installed snapshot, or nil before the first
// Install. The returned snapshot is immutable; callers must read it as-is.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Install assigns the next epoch to s and publishes it, returning the
// epoch. Install must be called from a single writer goroutine; epochs are
// assigned in call order and start at 1.
func (st *Store) Install(s *Snapshot) uint64 {
	s.Epoch = st.epoch.Add(1)
	st.cur.Store(s)
	return s.Epoch
}

// Epoch returns the epoch of the latest installed snapshot (0 before the
// first Install).
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// Restore seeds the epoch counter from persisted state so the first Install
// after a warm restart continues the sequence (epoch+1) instead of
// restarting at 1. Readers rely on epochs being monotonic across the life
// of a state directory. Restore must run before the first Install.
func (st *Store) Restore(epoch uint64) error {
	if st.cur.Load() != nil || st.epoch.Load() != 0 {
		return fmt.Errorf("store: restore into a store that already installed snapshots")
	}
	st.epoch.Store(epoch)
	return nil
}

// MarkSync records a completed ingestion poll at t.
func (st *Store) MarkSync(t time.Time) { st.lastSync.Store(t.UnixNano()) }

// LastSync returns the time of the last recorded ingestion poll; ok is
// false before the first.
func (st *Store) LastSync() (t time.Time, ok bool) {
	n := st.lastSync.Load()
	if n == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, n), true
}
