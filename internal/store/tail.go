package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"logdiver/internal/core"
)

// Archive file names a Tailer expects inside its data directory — the same
// names `logdiver generate` writes.
const (
	AccountingFile = "accounting.log"
	ApsysFile      = "apsys.log"
	SyslogFile     = "syslog.log"
)

// maxPollBytes bounds how much one Poll reads per archive, so a huge
// backlog is ingested in bounded-memory rounds instead of one giant slurp.
const maxPollBytes = 64 << 20

// tailFile is the per-archive tail state.
type tailFile struct {
	path string
	// offset is the byte position already consumed (including carry).
	offset int64
	// carry holds a trailing partial line read but not yet released; it is
	// prepended to the next read so Deltas always end on line boundaries.
	carry []byte
	// inode identifies the file the offset belongs to (inodeOK false on
	// platforms without stable file IDs). It catches rotation to a file that
	// is not smaller than the old one — in particular rotation while the
	// process was down, where the size heuristic alone would silently resume
	// mid-way into unrelated content.
	inode   uint64
	inodeOK bool
}

// Tailer incrementally reads the three growing archives of a data
// directory. Files may be absent (treated as empty until they appear),
// grow, or be rotated (truncated/replaced by a smaller file), in which case
// reading restarts from the top of the new file. Partial trailing lines are
// held back until the writer completes them. Tailer is not safe for
// concurrent use.
type Tailer struct {
	files [3]tailFile
}

// NewTailer tails the conventional archive names under dir.
func NewTailer(dir string) *Tailer {
	return NewTailerPaths(
		filepath.Join(dir, AccountingFile),
		filepath.Join(dir, ApsysFile),
		filepath.Join(dir, SyslogFile),
	)
}

// NewTailerPaths tails explicit archive paths. An empty path disables that
// archive.
func NewTailerPaths(accounting, apsys, syslog string) *Tailer {
	return &Tailer{files: [3]tailFile{
		{path: accounting},
		{path: apsys},
		{path: syslog},
	}}
}

// Poll reads whatever every archive has grown since the previous Poll and
// returns it as a line-aligned Delta. A Delta with no bytes means nothing
// new arrived.
func (t *Tailer) Poll() (core.Delta, error) {
	var d core.Delta
	for i := range t.files {
		b, err := t.files[i].read()
		if err != nil {
			return core.Delta{}, err
		}
		switch i {
		case 0:
			d.Accounting = b
		case 1:
			d.Apsys = b
		case 2:
			d.Syslog = b
		}
	}
	return d, nil
}

// read returns the new complete lines of one archive.
func (f *tailFile) read() ([]byte, error) {
	if f.path == "" {
		return nil, nil
	}
	fh, err := os.Open(f.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // not written yet (or rotated away mid-switch)
	}
	if err != nil {
		return nil, fmt.Errorf("store: tail %s: %w", f.path, err)
	}
	defer fh.Close()

	fi, err := fh.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: tail %s: %w", f.path, err)
	}
	id, idOK := fileID(fi)
	rotated := fi.Size() < f.offset
	if !rotated && idOK && f.inodeOK && id != f.inode {
		// Same-or-larger replacement file: the size heuristic is blind to
		// it, but the identity changed, so the offset refers to bytes of a
		// file that no longer exists.
		rotated = true
	}
	if rotated {
		// Rotation: the held-back partial line belonged to the old file and
		// its completion is gone; drop it and restart from the top.
		f.offset = 0
		f.carry = nil
	}
	f.inode, f.inodeOK = id, idOK
	if fi.Size() == f.offset {
		return nil, nil
	}
	if _, err := fh.Seek(f.offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: tail %s: %w", f.path, err)
	}
	want := fi.Size() - f.offset
	if want > maxPollBytes {
		want = maxPollBytes
	}
	buf := make([]byte, want)
	n, err := io.ReadFull(fh, buf)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("store: tail %s: %w", f.path, err)
	}
	buf = buf[:n]
	f.offset += int64(n)

	// Prepend the held-back fragment, then hold back the new trailing
	// fragment (bytes after the last newline).
	if len(f.carry) > 0 {
		buf = append(f.carry, buf...)
		f.carry = nil
	}
	cut := len(buf)
	for cut > 0 && buf[cut-1] != '\n' {
		cut--
	}
	if cut < len(buf) {
		f.carry = append([]byte(nil), buf[cut:]...)
		buf = buf[:cut]
	}
	if len(buf) == 0 {
		return nil, nil
	}
	return buf, nil
}
