package store

import (
	"os"
	"path/filepath"
	"testing"
)

// restartTailer simulates a daemon restart: it exports the tailer's state
// and restores it into a fresh Tailer over the same directory, the way
// logdiverd persists TailerState and warm-starts from it.
func restartTailer(t *testing.T, dir string, tl *Tailer) *Tailer {
	t.Helper()
	st := tl.State()
	fresh := NewTailer(dir)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	return fresh
}

// replaceFile writes content to a NEW file and renames it over path, so the
// replacement has a different inode — the log-rotation move pattern, as
// opposed to os.WriteFile's truncate-in-place which reuses the inode.
func replaceFile(t *testing.T, path, content string) {
	t.Helper()
	tmp := path + ".rotate"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

func TestTailerRestoreResumesAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SyslogFile)
	tl := NewTailer(dir)

	if err := os.WriteFile(path, []byte("one\ntwo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// The archive grows while the process is down. The restored tailer must
	// deliver exactly the appended lines: resuming at offset 0 would
	// double-read one/two, resuming past the append would skip three.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("three\nfour\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tl2 := restartTailer(t, dir, tl)
	d, err := tl2.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Syslog), "three\nfour\n"; got != want {
		t.Errorf("restored poll after append: %q, want %q", got, want)
	}
}

func TestTailerRestoreCarryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, AccountingFile)
	tl := NewTailer(dir)

	if err := os.WriteFile(path, []byte("whole\npartial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// The writer completes the held-back line while the process is down; the
	// restored tailer joins its persisted carry with the completion.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(" line done\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tl2 := restartTailer(t, dir, tl)
	d, err := tl2.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Accounting), "partial line done\n"; got != want {
		t.Errorf("restored poll with carry: %q, want %q", got, want)
	}
}

func TestTailerRotationWhileDownSmaller(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ApsysFile)
	tl := NewTailer(dir)

	if err := os.WriteFile(path, []byte("old one\nold two\nold three\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// Rotated to a shorter file while down: the size heuristic alone
	// catches this; everything in the new file must be delivered once.
	replaceFile(t, path, "new one\n")

	tl2 := restartTailer(t, dir, tl)
	d, err := tl2.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(d.Apsys), "new one\n"; got != want {
		t.Errorf("after smaller rotation: %q, want %q", got, want)
	}
}

func TestTailerRotationWhileDownSameSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ApsysFile)
	tl := NewTailer(dir)

	old := "old one\nold two\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// Rotated to an equal-length replacement: the size heuristic is blind
	// (size == persisted offset would look like "nothing new"), so only the
	// persisted inode identifies the swap. Skipping here would lose the
	// whole replacement file.
	replacement := "NEW ONE\nNEW TWO\n"
	if len(replacement) != len(old) {
		t.Fatalf("test bug: replacement length %d != old length %d", len(replacement), len(old))
	}
	replaceFile(t, path, replacement)

	tl2 := restartTailer(t, dir, tl)
	d, err := tl2.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d.Apsys); got != replacement {
		t.Errorf("after same-size rotation: %q, want %q", got, replacement)
	}
}

func TestTailerRotationWhileDownLarger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SyslogFile)
	tl := NewTailer(dir)

	if err := os.WriteFile(path, []byte("old one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}

	// Rotated to a LARGER file while down. Without the persisted inode the
	// tailer would resume at the old offset and deliver a mid-line tail of
	// unrelated content; with it, the whole new file is read from the top.
	replacement := "fresh one\nfresh two\nfresh three\n"
	replaceFile(t, path, replacement)

	tl2 := restartTailer(t, dir, tl)
	d, err := tl2.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d.Syslog); got != replacement {
		t.Errorf("after larger rotation: %q, want %q", got, replacement)
	}
}

func TestTailerRestoreRejectsNegativeOffset(t *testing.T) {
	tl := NewTailer(t.TempDir())
	st := TailerState{}
	st.Files[1].Offset = -1
	if err := tl.RestoreState(st); err == nil {
		t.Error("negative offset accepted")
	}
}
