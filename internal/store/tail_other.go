//go:build !unix

package store

import "io/fs"

// fileID has no stable file identity to offer on this platform; the tailer
// falls back to size-only rotation detection.
func fileID(fs.FileInfo) (uint64, bool) { return 0, false }
