// Package store holds the serving state of the online subsystem: immutable,
// epoch-versioned snapshots of the full pipeline output, installed by atomic
// pointer swap so query handlers never block on — and never observe a torn
// state from — the ingestion goroutine. The package also provides the
// Tailer (chunked reading of growing, rotating archives) and the Syncer
// that drives one tail-append-rebuild-install round.
package store

import (
	"fmt"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
)

// IngestStats describes the ingestion history behind a snapshot.
type IngestStats struct {
	// Rounds counts Sync rounds that appended data (not no-op polls).
	Rounds int `json:"rounds"`
	// AccountingLines, ApsysLines and SyslogLines are cumulative raw line
	// counts consumed from each archive.
	AccountingLines int `json:"accounting_lines"`
	ApsysLines      int `json:"apsys_lines"`
	SyslogLines     int `json:"syslog_lines"`
	// Reattributed is the number of runs the snapshot's build round
	// re-attributed (the windowed-reattribution cost of the round).
	Reattributed int `json:"reattributed"`
	// BuildDuration is the wall-clock cost of the snapshot rebuild.
	BuildDuration time.Duration `json:"build_duration_ns"`
}

// Snapshot is one immutable view of the analyzed archive state. All fields
// are computed at build time; readers share the snapshot freely and must
// not mutate it.
type Snapshot struct {
	// Epoch is the monotonically increasing install sequence number,
	// assigned by Store.Install (1 for the first snapshot).
	Epoch uint64
	// BuiltAt is when the snapshot was materialized.
	BuiltAt time.Time
	// Result is the full pipeline output the views below derive from.
	Result *core.Result
	// Outcomes is the E2 outcome breakdown over all runs.
	Outcomes metrics.OutcomeBreakdown
	// Categories is the per-category failure attribution (E7 shape).
	Categories []metrics.CategoryShare
	// ScalingXE and ScalingXK are the failure-probability-versus-scale
	// curves per node class (E4/E5 shape), over geometric buckets sized to
	// the topology.
	ScalingXE, ScalingXK []metrics.ScaleBucket
	// MTTI is mean-time-to-interrupt by scale over all classes.
	MTTI []metrics.MTTIBucket
	// Ingest describes how the data got here.
	Ingest IngestStats

	// runIndex maps apid to Result.Runs index for the drill-down endpoint.
	runIndex map[uint64]int
}

// Build derives a Snapshot from a pipeline Result. The epoch is zero until
// Store.Install assigns it.
func Build(res *core.Result, top *machine.Topology, ing IngestStats, at time.Time) (*Snapshot, error) {
	if res == nil {
		return nil, fmt.Errorf("store: nil result")
	}
	if top == nil {
		return nil, fmt.Errorf("store: nil topology")
	}
	s := &Snapshot{
		BuiltAt:    at,
		Result:     res,
		Outcomes:   metrics.Outcomes(res.Runs),
		Categories: metrics.ByCategory(res.Runs),
		Ingest:     ing,
		runIndex:   make(map[uint64]int, len(res.Runs)),
	}
	var err error
	allBounds := metrics.GeometricBuckets(top.NumNodes())
	if s.ScalingXE, err = metrics.FailureProbabilityByScale(res.Runs, metrics.GeometricBuckets(top.NumXE()), machine.ClassXE); err != nil {
		return nil, fmt.Errorf("store: xe scaling: %w", err)
	}
	if s.ScalingXK, err = metrics.FailureProbabilityByScale(res.Runs, metrics.GeometricBuckets(top.NumXK()), machine.ClassXK); err != nil {
		return nil, fmt.Errorf("store: xk scaling: %w", err)
	}
	if s.MTTI, err = metrics.MTTIByScale(res.Runs, allBounds, 0); err != nil {
		return nil, fmt.Errorf("store: mtti: %w", err)
	}
	for i, r := range res.Runs {
		s.runIndex[r.ApID] = i
	}
	return s, nil
}

// Run returns the attributed run with the given apid, if present.
func (s *Snapshot) Run(apid uint64) (correlate.AttributedRun, bool) {
	i, ok := s.runIndex[apid]
	if !ok {
		return correlate.AttributedRun{}, false
	}
	return s.Result.Runs[i], true
}
