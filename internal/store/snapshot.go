// Package store holds the serving state of the online subsystem: immutable,
// epoch-versioned snapshots of the full pipeline output, installed by atomic
// pointer swap so query handlers never block on — and never observe a torn
// state from — the ingestion goroutine. The package also provides the
// Tailer (chunked reading of growing, rotating archives) and the Syncer
// that drives one tail-append-rebuild-install round.
package store

import (
	"fmt"
	"slices"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
)

// IngestStats describes the ingestion history behind a snapshot.
type IngestStats struct {
	// Rounds counts Sync rounds that appended data (not no-op polls).
	Rounds int `json:"rounds"`
	// AccountingLines, ApsysLines and SyslogLines are cumulative raw line
	// counts consumed from each archive.
	AccountingLines int `json:"accounting_lines"`
	ApsysLines      int `json:"apsys_lines"`
	SyslogLines     int `json:"syslog_lines"`
	// Reattributed is the number of runs the snapshot's build round
	// re-attributed (the windowed-reattribution cost of the round).
	Reattributed int `json:"reattributed"`
	// BuildDuration is the wall-clock cost of the snapshot rebuild.
	BuildDuration time.Duration `json:"build_duration_ns"`
}

// Snapshot is one immutable view of the analyzed archive state. All fields
// are computed at build time; readers share the snapshot freely and must
// not mutate it.
type Snapshot struct {
	// Epoch is the monotonically increasing install sequence number,
	// assigned by Store.Install (1 for the first snapshot).
	Epoch uint64
	// BuiltAt is when the snapshot was materialized.
	BuiltAt time.Time
	// Result is the full pipeline output the views below derive from.
	Result *core.Result
	// Outcomes is the E2 outcome breakdown over all runs.
	Outcomes metrics.OutcomeBreakdown
	// Categories is the per-category failure attribution (E7 shape).
	Categories []metrics.CategoryShare
	// ScalingXE and ScalingXK are the failure-probability-versus-scale
	// curves per node class (E4/E5 shape), over geometric buckets sized to
	// the topology.
	ScalingXE, ScalingXK []metrics.ScaleBucket
	// MTTI is mean-time-to-interrupt by scale over all classes.
	MTTI []metrics.MTTIBucket
	// Ingest describes how the data got here.
	Ingest IngestStats

	// Machine names the shard this snapshot was built from. Empty for
	// merged (fleet) snapshots and for legacy single-machine callers that
	// never set it; the Syncer stamps its configured shard name.
	Machine string
	// Shards is the fleet epoch vector of a merged snapshot: one
	// {machine, epoch} pair per contributing shard, sorted by machine
	// name. Nil on unmerged snapshots (their implicit vector is the
	// single {Machine, Epoch} pair — see EpochVector). Because the vector
	// is part of the immutable snapshot, a fleet read can never observe a
	// mix of per-shard epochs: every view is rendered from exactly one
	// vector.
	Shards []ShardEpoch
	// Partial marks a merged snapshot that is missing one or more
	// configured shards (failed or not yet synced). Always false on
	// unmerged snapshots.
	Partial bool
	// NumNodes, NumXE and NumXK are the topology extents the scaling and
	// MTTI bucket bounds were derived from. Merge uses them to rebucket
	// when two snapshots were built against different topologies.
	NumNodes, NumXE, NumXK int

	// spans records, aligned with Shards, how many runs/jobs/events each
	// shard contributed to the concatenated Result slices. Nil on
	// unmerged snapshots (the whole Result is one implicit span). Merge
	// needs the boundaries to re-interleave shard groups canonically.
	spans *shardSpans

	// runIndex maps apid to Result.Runs index for the drill-down endpoint.
	runIndex map[uint64]int
	// apidsSorted holds every run apid in ascending order. It backs the
	// paginated /v1/runs listing: apids are assigned at submission and never
	// renumbered by re-attribution, so this ordering is stable across
	// epochs — a client paging through runs while the epoch advances sees
	// each run at most once per traversal, plus any newly ingested runs
	// whose apids sort after its cursor.
	apidsSorted []uint64
}

// Build derives a Snapshot from a pipeline Result. The epoch is zero until
// Store.Install assigns it.
func Build(res *core.Result, top *machine.Topology, ing IngestStats, at time.Time) (*Snapshot, error) {
	if res == nil {
		return nil, fmt.Errorf("store: nil result")
	}
	if top == nil {
		return nil, fmt.Errorf("store: nil topology")
	}
	s := &Snapshot{
		BuiltAt:    at,
		Result:     res,
		Outcomes:   metrics.Outcomes(res.Runs),
		Categories: metrics.ByCategory(res.Runs),
		Ingest:     ing,
		NumNodes:   top.NumNodes(),
		NumXE:      top.NumXE(),
		NumXK:      top.NumXK(),
		runIndex:   make(map[uint64]int, len(res.Runs)),
	}
	var err error
	allBounds := metrics.GeometricBuckets(top.NumNodes())
	if s.ScalingXE, err = metrics.FailureProbabilityByScale(res.Runs, metrics.GeometricBuckets(top.NumXE()), machine.ClassXE); err != nil {
		return nil, fmt.Errorf("store: xe scaling: %w", err)
	}
	if s.ScalingXK, err = metrics.FailureProbabilityByScale(res.Runs, metrics.GeometricBuckets(top.NumXK()), machine.ClassXK); err != nil {
		return nil, fmt.Errorf("store: xk scaling: %w", err)
	}
	if s.MTTI, err = metrics.MTTIByScale(res.Runs, allBounds, 0); err != nil {
		return nil, fmt.Errorf("store: mtti: %w", err)
	}
	s.apidsSorted = make([]uint64, len(res.Runs))
	for i, r := range res.Runs {
		s.runIndex[r.ApID] = i
		s.apidsSorted[i] = r.ApID
	}
	slices.Sort(s.apidsSorted)
	return s, nil
}

// TotalRuns is the number of runs in the snapshot.
func (s *Snapshot) TotalRuns() int { return len(s.apidsSorted) }

// RunsPage returns up to limit runs whose apid is strictly greater than
// afterApID, in ascending apid order, plus the apid of the last returned run
// (0 when the page is empty). Page with afterApID=0 for the first page and
// feed each page's last apid back in for the next; the ordering is stable
// across epochs, so a traversal never shows the same run twice.
func (s *Snapshot) RunsPage(afterApID uint64, limit int) (runs []correlate.AttributedRun, last uint64) {
	if limit <= 0 {
		return nil, 0
	}
	if afterApID == ^uint64(0) { // cursor at the maximum apid: nothing follows
		return nil, 0
	}
	// First apid strictly greater than the cursor.
	i, _ := slices.BinarySearch(s.apidsSorted, afterApID+1)
	end := min(i+limit, len(s.apidsSorted))
	if i >= end {
		return nil, 0
	}
	runs = make([]correlate.AttributedRun, 0, end-i)
	for _, apid := range s.apidsSorted[i:end] {
		runs = append(runs, s.Result.Runs[s.runIndex[apid]])
	}
	return runs, s.apidsSorted[end-1]
}

// Run returns the attributed run with the given apid, if present.
func (s *Snapshot) Run(apid uint64) (correlate.AttributedRun, bool) {
	i, ok := s.runIndex[apid]
	if !ok {
		return correlate.AttributedRun{}, false
	}
	return s.Result.Runs[i], true
}
