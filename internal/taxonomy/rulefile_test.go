package taxonomy_test

import (
	"strings"
	"testing"

	"logdiver/internal/taxonomy"
)

func TestReadRulesBasic(t *testing.T) {
	input := `
# site-specific additions
gpu-thermal GPU_BUS CRIT (?i)gpu thermal shutdown
raid-fault FS_UNAVAIL ERROR raid array degraded
`
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	cls := taxonomy.NewClassifier(rules)
	cat, sev := cls.Classify("GPU Thermal Shutdown initiated")
	if cat != taxonomy.GPUBusOff || sev != taxonomy.SevCritical {
		t.Errorf("got (%v,%v)", cat, sev)
	}
	cat, sev = cls.Classify("raid array degraded on oss12")
	if cat != taxonomy.FilesystemUnavail || sev != taxonomy.SevError {
		t.Errorf("got (%v,%v)", cat, sev)
	}
}

func TestReadRulesSeverityTokenInName(t *testing.T) {
	// A rule whose NAME contains a severity/category token must still
	// split correctly.
	input := "CRIT-watcher KERNEL_PANIC CRIT panic pattern here\n"
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Name != "CRIT-watcher" {
		t.Errorf("Name = %q", rules[0].Name)
	}
	if got := rules[0].Pattern.String(); got != "panic pattern here" {
		t.Errorf("pattern = %q", got)
	}
}

func TestReadRulesRegexWithSpaces(t *testing.T) {
	input := "r1 KERNEL_PANIC CRIT kernel panic - not syncing\n"
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := rules[0].Pattern.String(); got != "kernel panic - not syncing" {
		t.Errorf("pattern = %q", got)
	}
}

func TestReadRulesErrors(t *testing.T) {
	bad := []string{
		"too few fields\n",
		"r1 NOT_A_CATEGORY CRIT x\n",
		"r1 KERNEL_PANIC LOUD x\n",
		"r1 KERNEL_PANIC CRIT [unclosed\n",
		"",          // empty file
		"# only\n ", // comments only
	}
	for _, input := range bad {
		if _, err := taxonomy.ReadRules(strings.NewReader(input)); err == nil {
			t.Errorf("ReadRules(%q) succeeded, want error", input)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := taxonomy.Default().Rules()
	var buf strings.Builder
	if err := taxonomy.WriteRules(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := taxonomy.ReadRules(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d rules, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Category != orig[i].Category || back[i].Severity != orig[i].Severity {
			t.Errorf("rule %d changed: %v/%v vs %v/%v", i,
				back[i].Category, back[i].Severity, orig[i].Category, orig[i].Severity)
		}
		if back[i].Pattern.String() != orig[i].Pattern.String() {
			t.Errorf("rule %d pattern changed", i)
		}
	}
	// The round-tripped classifier behaves identically on every template.
	a := taxonomy.NewClassifier(orig)
	b := taxonomy.NewClassifier(back)
	for _, msg := range []string{
		"Machine Check Exception: uncorrected DRAM error on c0-0c0s0n0 bank 1 addr 0x2",
		"NVRM: Xid (PCI:0000:02:00): 79, GPU has fallen off the bus.",
		"random chatter",
	} {
		ca, sa := a.Classify(msg)
		cb, sb := b.Classify(msg)
		if ca != cb || sa != sb {
			t.Errorf("classifiers disagree on %q: (%v,%v) vs (%v,%v)", msg, ca, sa, cb, sb)
		}
	}
}

func TestParseSeverity(t *testing.T) {
	tests := []struct {
		give string
		want taxonomy.Severity
		ok   bool
	}{
		{"INFO", taxonomy.SevInfo, true},
		{"warn", taxonomy.SevWarning, true},
		{"WARNING", taxonomy.SevWarning, true},
		{"Error", taxonomy.SevError, true},
		{"CRIT", taxonomy.SevCritical, true},
		{"CRITICAL", taxonomy.SevCritical, true},
		{"LOUD", 0, false},
	}
	for _, tt := range tests {
		got, ok := taxonomy.ParseSeverity(tt.give)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("ParseSeverity(%q) = (%v,%v)", tt.give, got, ok)
		}
	}
}
