package taxonomy_test

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"logdiver/internal/taxonomy"
)

func TestReadRulesBasic(t *testing.T) {
	input := `
# site-specific additions
gpu-thermal GPU_BUS CRIT (?i)gpu thermal shutdown
raid-fault FS_UNAVAIL ERROR raid array degraded
`
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	cls := taxonomy.NewClassifier(rules)
	cat, sev := cls.Classify("GPU Thermal Shutdown initiated")
	if cat != taxonomy.GPUBusOff || sev != taxonomy.SevCritical {
		t.Errorf("got (%v,%v)", cat, sev)
	}
	cat, sev = cls.Classify("raid array degraded on oss12")
	if cat != taxonomy.FilesystemUnavail || sev != taxonomy.SevError {
		t.Errorf("got (%v,%v)", cat, sev)
	}
}

func TestReadRulesSeverityTokenInName(t *testing.T) {
	// A rule whose NAME contains a severity/category token must still
	// split correctly.
	input := "CRIT-watcher KERNEL_PANIC CRIT panic pattern here\n"
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Name != "CRIT-watcher" {
		t.Errorf("Name = %q", rules[0].Name)
	}
	if got := rules[0].Pattern.String(); got != "panic pattern here" {
		t.Errorf("pattern = %q", got)
	}
}

func TestReadRulesRegexWithSpaces(t *testing.T) {
	input := "r1 KERNEL_PANIC CRIT kernel panic - not syncing\n"
	rules, err := taxonomy.ReadRules(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := rules[0].Pattern.String(); got != "kernel panic - not syncing" {
		t.Errorf("pattern = %q", got)
	}
}

func TestReadRulesErrors(t *testing.T) {
	bad := []string{
		"too few fields\n",
		"r1 NOT_A_CATEGORY CRIT x\n",
		"r1 KERNEL_PANIC LOUD x\n",
		"r1 KERNEL_PANIC CRIT [unclosed\n",
		"",          // empty file
		"# only\n ", // comments only
	}
	for _, input := range bad {
		if _, err := taxonomy.ReadRules(strings.NewReader(input)); err == nil {
			t.Errorf("ReadRules(%q) succeeded, want error", input)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := taxonomy.Default().Rules()
	var buf strings.Builder
	if err := taxonomy.WriteRules(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := taxonomy.ReadRules(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d rules, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Category != orig[i].Category || back[i].Severity != orig[i].Severity {
			t.Errorf("rule %d changed: %v/%v vs %v/%v", i,
				back[i].Category, back[i].Severity, orig[i].Category, orig[i].Severity)
		}
		if back[i].Pattern.String() != orig[i].Pattern.String() {
			t.Errorf("rule %d pattern changed", i)
		}
	}
	// The round-tripped classifier behaves identically on every template.
	a := taxonomy.NewClassifier(orig)
	b := taxonomy.NewClassifier(back)
	for _, msg := range []string{
		"Machine Check Exception: uncorrected DRAM error on c0-0c0s0n0 bank 1 addr 0x2",
		"NVRM: Xid (PCI:0000:02:00): 79, GPU has fallen off the bus.",
		"random chatter",
	} {
		ca, sa := a.Classify(msg)
		cb, sb := b.Classify(msg)
		if ca != cb || sa != sb {
			t.Errorf("classifiers disagree on %q: (%v,%v) vs (%v,%v)", msg, ca, sa, cb, sb)
		}
	}
}

func TestReadRuleFileLines(t *testing.T) {
	input := `
# comment
r1 KERNEL_PANIC CRIT panic

r2 HW_MEM_UE CRIT uncorrect(ed|able)
`
	rules, err := taxonomy.ReadRuleFile(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Line != 3 || rules[1].Line != 5 {
		t.Errorf("lines = %d,%d, want 3,5", rules[0].Line, rules[1].Line)
	}
}

func TestWriteRulesRejectsUnparseableRules(t *testing.T) {
	mk := func(name, pat string) []taxonomy.Rule {
		return []taxonomy.Rule{{
			Name: name, Pattern: regexp.MustCompile(pat),
			Category: taxonomy.KernelPanic, Severity: taxonomy.SevCritical,
		}}
	}
	bad := []struct {
		label string
		rules []taxonomy.Rule
	}{
		{"space in name", mk("bad name", "x")},
		{"tab in name", mk("bad\tname", "x")},
		{"comment name", mk("#silent", "x")},
		{"empty pattern", mk("r", "")},
		{"newline in pattern", mk("r", "a\nb")},
		{"leading space in pattern", mk("r", " x")},
		{"nil pattern", []taxonomy.Rule{{Name: "r", Category: taxonomy.KernelPanic, Severity: taxonomy.SevCritical}}},
	}
	for _, tt := range bad {
		var buf strings.Builder
		if err := taxonomy.WriteRules(&buf, tt.rules); err == nil {
			t.Errorf("%s: WriteRules succeeded, want error (wrote %q)", tt.label, buf.String())
		}
	}
	// The same shapes must still be writable once sanitized.
	var buf strings.Builder
	if err := taxonomy.WriteRules(&buf, mk("good-name", `a\nb|[ ]x`)); err != nil {
		t.Errorf("sanitized rule rejected: %v", err)
	}
}

// TestWriteReadPropertyRoundTrip drives WriteRules→ReadRules with
// pseudo-random rule sets: every set WriteRules accepts must parse back to
// the identical names, categories, severities and pattern texts.
func TestWriteReadPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nameAlpha := []string{"r", "CRIT", "KERNEL_PANIC", "x-1", "a_b.c", "#tail", "0"}
	patterns := []string{
		`(?i)machine check.*uncorrected`, `a b c`, `x{1,3}`, `[0-9a-fx-]+`,
		`foo|bar baz`, `\bpanic\b`, `a\nb`, `lcb.*(lane|link)`,
	}
	cats := taxonomy.Categories()
	sevs := []taxonomy.Severity{taxonomy.SevInfo, taxonomy.SevWarning, taxonomy.SevError, taxonomy.SevCritical}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		rules := make([]taxonomy.Rule, n)
		for i := range rules {
			// Names are 1-3 fragments joined without separators; "#tail"
			// is only corrupting in first position, which CheckName
			// rejects, so it may appear as a suffix.
			name := nameAlpha[rng.Intn(len(nameAlpha))]
			for k := rng.Intn(3); k > 0; k-- {
				name += nameAlpha[rng.Intn(len(nameAlpha))]
			}
			rules[i] = taxonomy.Rule{
				Name:     name,
				Pattern:  regexp.MustCompile(patterns[rng.Intn(len(patterns))]),
				Category: cats[rng.Intn(len(cats))],
				Severity: sevs[rng.Intn(len(sevs))],
			}
		}
		var buf strings.Builder
		if err := taxonomy.WriteRules(&buf, rules); err != nil {
			// Only the documented round-trip hazards may be rejected.
			ok := false
			for _, r := range rules {
				if taxonomy.CheckName(r.Name) != nil {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: WriteRules rejected clean rules: %v", trial, err)
			}
			continue
		}
		back, err := taxonomy.ReadRules(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("trial %d: written set does not parse: %v\n%s", trial, err, buf.String())
		}
		if len(back) != len(rules) {
			t.Fatalf("trial %d: %d rules round-tripped to %d", trial, len(rules), len(back))
		}
		for i := range rules {
			if back[i].Name != rules[i].Name ||
				back[i].Category != rules[i].Category ||
				back[i].Severity != rules[i].Severity ||
				back[i].Pattern.String() != rules[i].Pattern.String() {
				t.Fatalf("trial %d rule %d changed: %+v -> %+v", trial, i, rules[i], back[i])
			}
		}
	}
}

func TestParseSeverity(t *testing.T) {
	tests := []struct {
		give string
		want taxonomy.Severity
		ok   bool
	}{
		{"INFO", taxonomy.SevInfo, true},
		{"warn", taxonomy.SevWarning, true},
		{"WARNING", taxonomy.SevWarning, true},
		{"Error", taxonomy.SevError, true},
		{"CRIT", taxonomy.SevCritical, true},
		{"CRITICAL", taxonomy.SevCritical, true},
		{"LOUD", 0, false},
	}
	for _, tt := range tests {
		got, ok := taxonomy.ParseSeverity(tt.give)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("ParseSeverity(%q) = (%v,%v)", tt.give, got, ok)
		}
	}
}
