// Package taxonomy defines the error taxonomy used to categorize raw log
// messages, mirroring the category structure a Cray XE/XK field study works
// with: machine-check (memory/CPU) hardware errors, power and blade faults,
// GPU errors on hybrid nodes, Gemini high-speed-network errors, Lustre
// filesystem errors, node heartbeat failures and kernel panics, and
// system-software errors. A rule-based Classifier maps free-form message
// text onto (Category, Severity) pairs; the rules are anchored on the
// message shapes produced by the Cray system software and reproduced by
// internal/errlog.
package taxonomy

import (
	"regexp"
	"strconv"
)

// Category identifies a leaf of the error taxonomy. The zero value
// Unclassified is the meaningful default for messages no rule matches.
type Category int

// Taxonomy leaves. Grouped by the top-level classes used in the analysis.
const (
	Unclassified Category = iota

	// Hardware (CPU/memory/power).
	HardwareMemoryCE // corrected memory error (machine check, DIMM)
	HardwareMemoryUE // uncorrected memory error
	HardwareCPU      // processor machine check (cache, TLB)
	HardwarePower    // voltage fault / power supply
	HardwareBlade    // blade-level mezzanine or controller fault

	// GPU (XK hybrid nodes only).
	GPUMemoryDBE // double-bit ECC error in GPU memory
	GPUBusOff    // GPU has fallen off the bus / Xid fatal
	GPUPageRetir // single-bit ECC page retirement (benign)

	// Interconnect (Gemini HSN).
	InterconnectLink    // LCB lane failure / link inactive
	InterconnectRouting // routing table / warm swap / HSN quiesce

	// Filesystem (Lustre).
	FilesystemLBUG    // Lustre kernel bug assertion
	FilesystemUnavail // OST/MDT unavailable, client eviction
	FilesystemTimeout // request timeouts, slow response

	// Node liveness.
	NodeHeartbeat // heartbeat fault declared by the HSS
	KernelPanic   // kernel panic / LBUG-induced crash
	NodeRecovered // node returned to service after repair (informational)

	// System software.
	SoftwareALPS // ALPS/apsched/apinit errors
	SoftwareOS   // other OS-level software errors

	numCategories // sentinel; keep last
)

var categoryNames = map[Category]string{
	Unclassified:        "UNCLASSIFIED",
	HardwareMemoryCE:    "HW_MEM_CE",
	HardwareMemoryUE:    "HW_MEM_UE",
	HardwareCPU:         "HW_CPU",
	HardwarePower:       "HW_POWER",
	HardwareBlade:       "HW_BLADE",
	GPUMemoryDBE:        "GPU_DBE",
	GPUBusOff:           "GPU_BUS",
	GPUPageRetir:        "GPU_PAGE_RETIRE",
	InterconnectLink:    "HSN_LINK",
	InterconnectRouting: "HSN_ROUTING",
	FilesystemLBUG:      "FS_LBUG",
	FilesystemUnavail:   "FS_UNAVAIL",
	FilesystemTimeout:   "FS_TIMEOUT",
	NodeHeartbeat:       "NODE_HEARTBEAT",
	KernelPanic:         "KERNEL_PANIC",
	NodeRecovered:       "NODE_RECOVERED",
	SoftwareALPS:        "SW_ALPS",
	SoftwareOS:          "SW_OS",
}

// String returns the stable uppercase mnemonic for the category.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return "CATEGORY(" + strconv.Itoa(int(c)) + ")"
}

// ParseCategory resolves a mnemonic produced by String.
func ParseCategory(s string) (Category, bool) {
	for c, name := range categoryNames {
		if name == s {
			return c, true
		}
	}
	return Unclassified, false
}

// Categories returns all defined categories (excluding Unclassified) in
// declaration order.
func Categories() []Category {
	out := make([]Category, 0, int(numCategories)-1)
	for c := Category(1); c < numCategories; c++ {
		out = append(out, c)
	}
	return out
}

// Group is the top-level class of a category, used for the headline
// breakdowns (which subsystem caused the failure).
type Group int

// Top-level groups.
const (
	GroupUnknown Group = iota
	GroupHardware
	GroupGPU
	GroupInterconnect
	GroupFilesystem
	GroupNode
	GroupSoftware
)

var groupNames = map[Group]string{
	GroupUnknown:      "UNKNOWN",
	GroupHardware:     "HARDWARE",
	GroupGPU:          "GPU",
	GroupInterconnect: "INTERCONNECT",
	GroupFilesystem:   "FILESYSTEM",
	GroupNode:         "NODE",
	GroupSoftware:     "SOFTWARE",
}

// String returns the group mnemonic.
func (g Group) String() string {
	if s, ok := groupNames[g]; ok {
		return s
	}
	return "GROUP(" + strconv.Itoa(int(g)) + ")"
}

// Groups returns all defined groups (excluding GroupUnknown).
func Groups() []Group {
	return []Group{GroupHardware, GroupGPU, GroupInterconnect, GroupFilesystem, GroupNode, GroupSoftware}
}

// Group returns the top-level class of the category.
func (c Category) Group() Group {
	//ldvet:exhaustive
	switch c {
	case Unclassified:
		return GroupUnknown
	case HardwareMemoryCE, HardwareMemoryUE, HardwareCPU, HardwarePower, HardwareBlade:
		return GroupHardware
	case GPUMemoryDBE, GPUBusOff, GPUPageRetir:
		return GroupGPU
	case InterconnectLink, InterconnectRouting:
		return GroupInterconnect
	case FilesystemLBUG, FilesystemUnavail, FilesystemTimeout:
		return GroupFilesystem
	case NodeHeartbeat, KernelPanic, NodeRecovered:
		return GroupNode
	case SoftwareALPS, SoftwareOS:
		return GroupSoftware
	default:
		return GroupUnknown
	}
}

// Severity grades how disruptive an event is to the applications running on
// the affected component.
type Severity int

// Severity levels. Benign events (corrected errors, page retirements) are
// logged in volume on a healthy machine; only SevError and SevCritical
// events can terminate an application.
const (
	SevInfo Severity = iota + 1
	SevWarning
	SevError
	SevCritical
)

// String returns the severity mnemonic.
func (s Severity) String() string {
	//ldvet:exhaustive
	switch s {
	case SevInfo:
		return "INFO"
	case SevWarning:
		return "WARN"
	case SevError:
		return "ERROR"
	case SevCritical:
		return "CRIT"
	default:
		return "SEVERITY(" + strconv.Itoa(int(s)) + ")"
	}
}

// Benign reports whether events of this category never terminate an
// application by themselves (they matter for error-rate characterization,
// not for failure attribution).
func (c Category) Benign() bool {
	switch c {
	case HardwareMemoryCE, GPUPageRetir, NodeRecovered:
		return true
	default:
		return false
	}
}

// Rule maps a message pattern to a category and severity. Rules are applied
// in order; the first match wins.
type Rule struct {
	Name     string
	Pattern  *regexp.Regexp
	Category Category
	Severity Severity
}

// Classifier applies an ordered rule list to raw message text.
//
// A Classifier is safe for concurrent use by multiple goroutines: Classify
// only reads the rule list, and regexp.Regexp is documented as goroutine-
// safe. The parallel ingestion workers in internal/core share one instance.
// Clone exists for callers that prefer fully disjoint per-worker state (the
// regexp machine cache is shared per-pattern; cloning recompiles patterns so
// nothing at all is shared).
type Classifier struct {
	rules []Rule
	// filters holds the per-rule literal prefilters (see prefilter.go):
	// filters[i] == nil means rule i cannot be prefiltered and its regexp
	// always runs. Computed once at construction; read-only afterwards.
	filters []*prefilter
}

// NewClassifier builds a classifier from rules. The rule slice is copied.
func NewClassifier(rules []Rule) *Classifier {
	c := &Classifier{rules: make([]Rule, len(rules))}
	copy(c.rules, rules)
	c.filters = make([]*prefilter, len(c.rules))
	for i := range c.rules {
		c.filters[i] = filterOf(c.rules[i].Pattern.String())
	}
	return c
}

// Default returns the classifier with the built-in Cray-style rule set.
func Default() *Classifier {
	return NewClassifier(defaultRules())
}

// Classify returns the category and severity of msg. Unmatched messages
// return (Unclassified, SevInfo).
func (c *Classifier) Classify(msg string) (Category, Severity) {
	for i := range c.rules {
		if c.rules[i].Pattern.MatchString(msg) {
			return c.rules[i].Category, c.rules[i].Severity
		}
	}
	return Unclassified, SevInfo
}

// Clone returns a deep copy of the classifier with freshly compiled
// patterns, sharing no state (not even regexp internals) with the receiver.
// Use it to give each worker goroutine a fully private classifier;
// classification behavior is identical because compilation is
// deterministic.
func (c *Classifier) Clone() *Classifier {
	rules := make([]Rule, len(c.rules))
	copy(rules, c.rules)
	for i := range rules {
		//ldvet:allow regexp-compile — recompiling is the point of Clone
		rules[i].Pattern = regexp.MustCompile(rules[i].Pattern.String())
	}
	return NewClassifier(rules)
}

// Rules returns a copy of the classifier's rule list.
func (c *Classifier) Rules() []Rule {
	out := make([]Rule, len(c.rules))
	copy(out, c.rules)
	return out
}

// defaultRules encodes the message shapes emitted by the Cray system
// software stack (HSS event router, xtconsole, Lustre, the NVIDIA driver)
// as reproduced by internal/errlog. Order matters: more specific patterns
// come first.
func defaultRules() []Rule {
	mk := func(name, pat string, cat Category, sev Severity) Rule {
		//ldvet:allow regexp-compile — runs once at package init via DefaultClassifier
		return Rule{Name: name, Pattern: regexp.MustCompile(pat), Category: cat, Severity: sev}
	}
	return []Rule{
		// Machine checks. Uncorrected before corrected: both mention
		// "Machine Check".
		mk("mce-uncorrected", `(?i)machine check.*uncorrected|uncorrect(ed|able).*(dram|memory|ecc)`, HardwareMemoryUE, SevCritical),
		mk("mce-corrected", `(?i)machine check.*corrected|correct(ed|able).*(dram|memory|ecc)`, HardwareMemoryCE, SevWarning),
		mk("mce-cpu", `(?i)machine check.*(cache|tlb|bus|processor)`, HardwareCPU, SevCritical),

		// Power / blade.
		mk("voltage-fault", `(?i)voltage fault|vrm fault|power supply fail`, HardwarePower, SevCritical),
		mk("blade-fault", `(?i)(blade|mezzanine|l0c?) (controller )?(fault|failure|unresponsive)`, HardwareBlade, SevCritical),

		// GPU. Double-bit before generic Xid.
		mk("gpu-dbe", `(?i)double[- ]bit (ecc )?error|dbe.*gpu|xid.*48`, GPUMemoryDBE, SevCritical),
		mk("gpu-bus", `(?i)gpu.*(fallen off the bus|has fallen off)|xid.*79`, GPUBusOff, SevCritical),
		mk("gpu-page-retire", `(?i)(page retirement|retiring page)|dynamic page (retirement|blacklist)`, GPUPageRetir, SevInfo),

		// Gemini interconnect.
		mk("hsn-lcb", `(?i)lcb.*(lane (degrade|failure)|inactive)|link inactive|channel fail`, InterconnectLink, SevError),
		mk("hsn-route", `(?i)(hsn|network) quiesce|warm swap|rerout(e|ing) (started|complete)|routing table`, InterconnectRouting, SevError),

		// Lustre.
		mk("fs-lbug", `(?i)lbug|lustre.*assertion fail`, FilesystemLBUG, SevCritical),
		mk("fs-unavail", `(?i)(ost|mdt)[0-9a-fx-]*.*(unavailable|inactive)|client.*evict|lost contact with (ost|mds)`, FilesystemUnavail, SevError),
		mk("fs-timeout", `(?i)lustre.*(timed? ?out|slow reply)|request.*timed out.*lustre`, FilesystemTimeout, SevWarning),

		// Node liveness. Recovery before heartbeat: both mention "node".
		mk("node-recovered", `(?i)node (available|returned to service)|warm boot complete|ec_node_(available|up)`, NodeRecovered, SevInfo),
		mk("node-heartbeat", `(?i)heartbeat fault|node heartbeat.*(fault|stopped)|alert.*node_failed`, NodeHeartbeat, SevCritical),
		mk("kernel-panic", `(?i)kernel panic|oops:|fatal exception`, KernelPanic, SevCritical),

		// System software.
		mk("sw-alps", `(?i)(apsched|apinit|apsys|alps).*(error|fail|timeout)`, SoftwareALPS, SevError),
		mk("sw-os", `(?i)(segfault in kernel|scheduling while atomic|hung task|watchdog.*(soft lockup|hard lockup))`, SoftwareOS, SevError),
	}
}
