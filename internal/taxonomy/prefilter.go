// Literal prefilters for classification: before running a rule's regexp,
// decide cheaply whether the message can possibly match by scanning for the
// rule's required literals with bytes.Index over a case-folded copy. The
// literals are extracted from the compiled pattern's syntax tree, so they
// are sound by construction: a rule is skipped only when the regexp provably
// cannot match.
//
// Extraction has two tiers:
//
//  1. Ordered chains. When the pattern decomposes into an alternation of
//     literal chains — literals joined by ".*" gaps, e.g.
//     `machine check.*(cache|tlb)` — the decomposition is EXACT: the
//     unanchored regexp matches iff some chain's literals appear in order
//     (case-folded), so a chain hit classifies the message with no regexp
//     call at all. The only caveat is a message containing '\n' (".*"
//     cannot cross it); those fall back to the regexp, with the chain hit
//     demoted to a prefilter.
//
//  2. Unordered DNF. Otherwise the tree is folded into branches of
//     literals that must ALL appear for the pattern to match (one branch
//     per alternation arm): a literal requires itself; a concatenation
//     AND-combines its children (cross product, capped); an alternation
//     unions its branches and fails if any branch yields none; x+ and
//     min>=1 repeats require whatever x requires; optional forms require
//     nothing. A branch hit here only admits the rule — the regexp remains
//     the confirmation step.
//
// Rules whose tree yields no usable filter (or any non-ASCII literal)
// simply run their regexp unconditionally, so external rule files degrade
// to the unfiltered behavior instead of misclassifying.

package taxonomy

import (
	"bytes"
	"regexp/syntax"
	"strings"
	"sync"
	"unicode"
)

// maxBranches bounds the per-rule chain/branch count; wider alternations
// are not selective enough to be worth scanning.
const maxBranches = 12

// maxBranchLits bounds the literals per unordered branch; beyond that the
// extra bytes.Contains scans cost more than the regexp calls they save.
const maxBranchLits = 4

// prefilter is one rule's literal filter: either an exact ordered-chain
// decomposition or an unordered required-literal DNF.
type prefilter struct {
	branches [][][]byte
	// ordered marks branches as ordered chains (tier 1): a branch passes
	// when its literals appear in order, and a pass IS a match for
	// newline-free messages. Unordered branches (tier 2) pass on
	// containment of all literals and only admit the rule's regexp.
	ordered bool
}

// match reports whether any branch passes against the folded message.
//
//ldvet:pooled
//ldvet:hotpath
func (f *prefilter) match(folded []byte) bool {
	for _, br := range f.branches {
		if f.ordered {
			if chainMatch(br, folded) {
				return true
			}
			continue
		}
		all := true
		for _, lit := range br {
			if !bytes.Contains(folded, lit) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// chainMatch reports whether the chain's literals appear in order, each
// starting at or after the end of the previous one.
//
//ldvet:pooled
//ldvet:hotpath
func chainMatch(chain [][]byte, folded []byte) bool {
	pos := 0
	for _, lit := range chain {
		i := bytes.Index(folded[pos:], lit)
		if i < 0 {
			return false
		}
		pos += i + len(lit)
	}
	return true
}

// litString renders a literal node as a lowercase ASCII string. ok is false
// for empty or non-ASCII literals, or — because chain hits decide matches
// against folded text — literals with letters that the pattern matches
// case-sensitively.
func litString(re *syntax.Regexp) (string, bool) {
	folded := re.Flags&syntax.FoldCase != 0
	var b strings.Builder
	for _, r := range re.Rune {
		lr := unicode.ToLower(r)
		if lr >= 0x80 {
			return "", false
		}
		if lr != unicode.ToUpper(lr) && !folded {
			return "", false // cased letter outside (?i)
		}
		b.WriteRune(lr)
	}
	if b.Len() == 0 {
		return "", false
	}
	return b.String(), true
}

// isGap reports whether the node is a ".*"-style unbounded gap.
func isGap(re *syntax.Regexp) bool {
	return re.Op == syntax.OpStar &&
		(re.Sub[0].Op == syntax.OpAnyCharNotNL || re.Sub[0].Op == syntax.OpAnyChar)
}

// orderedChains decomposes a pattern into an alternation of literal chains,
// ok == false when the pattern has any other structure. Each chain is a
// sequence of literals separated by ".*" gaps; adjacent literals (no gap)
// are glued into one.
func orderedChains(re *syntax.Regexp) (chains [][]string, ok bool) {
	switch re.Op {
	case syntax.OpLiteral:
		l, ok := litString(re)
		if !ok {
			return nil, false
		}
		return [][]string{{l}}, true
	case syntax.OpConcat:
		acc := [][]string{{}}
		gap := false
		for _, sub := range re.Sub {
			if isGap(sub) {
				gap = true
				continue
			}
			sc, ok := orderedChains(sub)
			if !ok {
				return nil, false
			}
			if len(acc)*len(sc) > maxBranches {
				return nil, false
			}
			next := make([][]string, 0, len(acc)*len(sc))
			for _, p := range acc {
				for _, s := range sc {
					next = append(next, glueChains(p, s, gap))
				}
			}
			acc = next
			gap = false
		}
		for _, c := range acc {
			if len(c) == 0 {
				return nil, false // no literal at all (e.g. pure ".*")
			}
		}
		return acc, true
	case syntax.OpAlternate:
		var union [][]string
		for _, sub := range re.Sub {
			sc, ok := orderedChains(sub)
			if !ok {
				return nil, false
			}
			union = append(union, sc...)
		}
		if len(union) == 0 || len(union) > maxBranches {
			return nil, false
		}
		return union, true
	case syntax.OpCapture:
		return orderedChains(re.Sub[0])
	default:
		return nil, false
	}
}

// glueChains concatenates chain s onto chain p: across a gap the chains
// join as-is; without one, the boundary literals are contiguous in any
// match and merge into a single search string.
func glueChains(p, s []string, gap bool) []string {
	if len(p) == 0 {
		return s
	}
	out := make([]string, 0, len(p)+len(s))
	out = append(out, p...)
	if gap || len(s) == 0 {
		return append(out, s...)
	}
	out[len(out)-1] += s[0]
	return append(out, s[1:]...)
}

// literalDNF walks a parsed pattern and returns its required-literal DNF:
// lowercase ASCII literal branches of which at least one must be fully
// present in any match. ok is false when no sound filter exists.
func literalDNF(re *syntax.Regexp) (dnf [][]string, ok bool) {
	switch re.Op {
	case syntax.OpLiteral:
		var b strings.Builder
		for _, r := range re.Rune {
			r = unicode.ToLower(r)
			if r >= 0x80 {
				return nil, false
			}
			b.WriteRune(r)
		}
		if b.Len() == 0 {
			return nil, false
		}
		return [][]string{{b.String()}}, true
	case syntax.OpConcat:
		// AND together whatever the children require. Children yielding no
		// filter (x*, char classes, ...) impose no extractable requirement
		// and are skipped — sound, since the remaining requirements are
		// still necessary conditions.
		var acc [][]string
		for _, sub := range re.Sub {
			cand, ok := literalDNF(sub)
			if !ok {
				continue
			}
			if acc == nil {
				acc = cand
				continue
			}
			if merged := andDNF(acc, cand); merged != nil {
				acc = merged
			} else if dnfMoreSelective(cand, acc) {
				acc = cand
			}
		}
		return acc, acc != nil
	case syntax.OpAlternate:
		var union [][]string
		for _, sub := range re.Sub {
			cand, ok := literalDNF(sub)
			if !ok {
				return nil, false
			}
			union = append(union, cand...)
		}
		if len(union) == 0 || len(union) > maxBranches {
			return nil, false
		}
		return union, true
	case syntax.OpCapture:
		return literalDNF(re.Sub[0])
	case syntax.OpPlus:
		return literalDNF(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return literalDNF(re.Sub[0])
		}
		return nil, false
	default:
		return nil, false
	}
}

// andDNF distributes (a1|a2|...) AND (b1|b2|...) into DNF, returning nil
// when the cross product would exceed the branch cap.
func andDNF(a, b [][]string) [][]string {
	if len(a)*len(b) > maxBranches {
		return nil
	}
	out := make([][]string, 0, len(a)*len(b))
	for _, ba := range a {
		for _, bb := range b {
			out = append(out, andBranch(ba, bb))
		}
	}
	return out
}

// andBranch merges two required-literal sets, dropping literals that are
// substrings of another (their presence is implied) and capping the set at
// maxBranchLits by keeping the longest literals.
func andBranch(a, b []string) []string {
	merged := make([]string, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	out := make([]string, 0, len(merged))
next:
	for i, l := range merged {
		for j, o := range merged {
			if i == j || !strings.Contains(o, l) {
				continue
			}
			// Drop l if it's a strict substring, or a duplicate not first.
			if len(l) < len(o) || (l == o && i > j) {
				continue next
			}
		}
		out = append(out, l)
	}
	for len(out) > maxBranchLits {
		short := 0
		for i, l := range out {
			if len(l) < len(out[short]) {
				short = i
			}
		}
		out = append(out[:short], out[short+1:]...)
	}
	return out
}

// dnfMoreSelective reports whether filter a is a better prefilter than b:
// its weakest branch carries a longer strongest literal, with fewer
// branches breaking the tie.
func dnfMoreSelective(a, b [][]string) bool {
	am, bm := weakestBranch(a), weakestBranch(b)
	if am != bm {
		return am > bm
	}
	return len(a) < len(b)
}

// weakestBranch returns the minimum over branches of the branch's longest
// literal length.
func weakestBranch(dnf [][]string) int {
	m := -1
	for _, br := range dnf {
		longest := 0
		for _, l := range br {
			if len(l) > longest {
				longest = len(l)
			}
		}
		if m < 0 || longest < m {
			m = longest
		}
	}
	return m
}

// filterOf extracts the literal prefilter for one compiled rule pattern.
// It returns nil when the pattern yields no sound filter, in which case the
// rule's regexp must always run.
func filterOf(pattern string) *prefilter {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return nil
	}
	re = re.Simplify()
	dnf, ordered := orderedChains(re)
	if !ordered {
		var ok bool
		dnf, ok = literalDNF(re)
		if !ok {
			return nil
		}
	}
	f := &prefilter{branches: make([][][]byte, len(dnf)), ordered: ordered}
	for i, br := range dnf {
		f.branches[i] = make([][]byte, len(br))
		for j, l := range br {
			f.branches[i][j] = []byte(l)
		}
	}
	return f
}

// LiteralAnchors reports the extracted anchor literals of a pattern: the
// union of its filter branches, of which at least one literal must appear
// in any matching message, or nil when no sound filter exists (the rule
// cannot be prefiltered). Exported for rule linting: a rule without anchors
// forces the regexp slow path on every message.
func LiteralAnchors(pattern string) []string {
	f := filterOf(pattern)
	if f == nil {
		return nil
	}
	var out []string
	for _, br := range f.branches {
		for _, l := range br {
			out = append(out, string(l))
		}
	}
	return out
}

// Prefilter is the exported view of one rule's literal prefilter, for
// soundness cross-checking (internal/rulecheck) and fuzzing. It evaluates
// with exactly the code the classifier hot path runs, so a verifier
// exercising it proves something about classification itself.
type Prefilter struct {
	f prefilter
}

// ExtractPrefilter extracts the literal prefilter the classifier would use
// for pattern, or nil when the pattern yields no sound filter (the rule's
// regexp always runs, so there is nothing to verify).
func ExtractPrefilter(pattern string) *Prefilter {
	f := filterOf(pattern)
	if f == nil {
		return nil
	}
	return &Prefilter{f: *f}
}

// NewPrefilter builds a prefilter from explicit branches, bypassing
// extraction. It exists so verifier tests can construct a deliberately
// desynchronized filter and prove the soundness check rejects it; the
// classifier itself only ever uses ExtractPrefilter.
func NewPrefilter(branches [][]string, ordered bool) *Prefilter {
	p := &Prefilter{f: prefilter{ordered: ordered}}
	p.f.branches = make([][][]byte, len(branches))
	for i, br := range branches {
		p.f.branches[i] = make([][]byte, len(br))
		for j, l := range br {
			p.f.branches[i][j] = []byte(l)
		}
	}
	return p
}

// Ordered reports whether the filter is a tier-1 ordered-chain
// decomposition: a branch hit classifies a newline-free message outright,
// with no regexp call. Unordered (tier-2) filters only admit the regexp.
func (p *Prefilter) Ordered() bool { return p.f.ordered }

// Branches returns the filter's literal branches (ordered chains or
// unordered required-literal sets, per Ordered).
func (p *Prefilter) Branches() [][]string {
	out := make([][]string, len(p.f.branches))
	for i, br := range p.f.branches {
		out[i] = make([]string, len(br))
		for j, l := range br {
			out[i][j] = string(l)
		}
	}
	return out
}

// Match reports whether the filter passes on msg, applying the same
// case-folding the classifier applies before its branch scan.
func (p *Prefilter) Match(msg []byte) bool {
	return p.f.match(appendFolded(nil, msg))
}

// foldPool holds reusable scratch buffers for case-folding messages.
var foldPool = sync.Pool{New: func() any { return new(foldBuf) }}

type foldBuf struct{ b []byte }

// appendFolded lowercases ASCII letters of src into dst. The two non-ASCII
// runes that case-fold onto ASCII under (?i) — U+212A KELVIN SIGN (folds
// with 'k') and U+017F LATIN SMALL LETTER LONG S (folds with 's') — are
// rewritten to their ASCII folds so the prefilter cannot miss a message the
// regexp would match. All other bytes pass through unchanged.
//
//ldvet:pooled
//ldvet:hotpath
func appendFolded(dst, src []byte) []byte {
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c < 0x80:
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
		case c == 0xe2 && i+2 < len(src) && src[i+1] == 0x84 && src[i+2] == 0xaa:
			dst = append(dst, 'k') // U+212A
			i += 2
		case c == 0xc5 && i+1 < len(src) && src[i+1] == 0xbf:
			dst = append(dst, 's') // U+017F
			i++
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// ClassifyBytes is Classify over a byte view of the message; it does not
// retain msg and does not allocate on the steady-state path.
//
//ldvet:pooled
//ldvet:hotpath
func (c *Classifier) ClassifyBytes(msg []byte) (Category, Severity) {
	fb := foldPool.Get().(*foldBuf)
	//ldvet:allow pooled-retain — appendFolded copies msg into the fold buffer
	fb.b = appendFolded(fb.b[:0], msg)
	// Ordered-chain hits decide the match outright only on newline-free
	// messages: ".*" gaps cannot cross a '\n', which ordered search ignores.
	exact := bytes.IndexByte(fb.b, '\n') < 0
	for i := range c.rules {
		if f := c.filters[i]; f != nil {
			if !f.match(fb.b) {
				continue
			}
			if f.ordered && exact {
				foldPool.Put(fb)
				return c.rules[i].Category, c.rules[i].Severity
			}
		}
		if c.rules[i].Pattern.Match(msg) {
			foldPool.Put(fb)
			return c.rules[i].Category, c.rules[i].Severity
		}
	}
	foldPool.Put(fb)
	return Unclassified, SevInfo
}
