package taxonomy_test

import (
	"math/rand"
	"strings"
	"testing"

	"logdiver/internal/errlog"
	"logdiver/internal/taxonomy"
)

// classifyDiffCorpus builds the message set the byte classifier is pinned
// against: every rendered variant of every category, hand-written known
// messages, and adversarial mutations of each — uppercasing (exercises the
// fold path), an injected newline (demotes ordered-chain hits to
// prefilter + regexp confirmation), the two non-ASCII runes that case-fold
// onto ASCII, and reversed text (literals present, order destroyed).
func classifyDiffCorpus() []string {
	rng := rand.New(rand.NewSource(7))
	var base []string
	for _, cat := range taxonomy.Categories() {
		for i := 0; i < 25; i++ {
			base = append(base, errlog.Render(cat, "c1-3c2s7n1", rng))
		}
	}
	base = append(base,
		"Machine Check Exception: corrected DRAM error on c1-2c0s3n1 bank 4 DIMM 9 syndrome 0x1a2b",
		"Machine Check Exception: uncorrected DRAM error on c1-2c0s3n1 bank 4 addr 0x00000a",
		"NVRM: Xid (PCI:0000:02:00): 79, GPU has fallen off the bus.",
		"Lustre: request x99 timed out after 100s, resending",
		"Kernel panic - not syncing: Fatal exception in interrupt on c2-1c0s4n2",
		"user application wrote something weird",
		"",
	)
	out := make([]string, 0, len(base)*5)
	for _, m := range base {
		out = append(out, m, strings.ToUpper(m))
		if len(m) > 4 {
			mid := len(m) / 2
			out = append(out, m[:mid]+"\n"+m[mid:])
		}
		out = append(out,
			strings.NewReplacer("k", "\u212a", "s", "\u017f").Replace(m))
		words := strings.Fields(m)
		for i, j := 0, len(words)-1; i < j; i, j = i+1, j-1 {
			words[i], words[j] = words[j], words[i]
		}
		out = append(out, strings.Join(words, " "))
	}
	return out
}

// TestClassifyBytesMatchesClassify pins ClassifyBytes to the string
// reference over the full corpus: identical category and severity on every
// message, including the mutations designed to break each fast-path tier.
func TestClassifyBytesMatchesClassify(t *testing.T) {
	cls := taxonomy.Default()
	for _, msg := range classifyDiffCorpus() {
		wantCat, wantSev := cls.Classify(msg)
		gotCat, gotSev := cls.ClassifyBytes([]byte(msg))
		if gotCat != wantCat || gotSev != wantSev {
			t.Errorf("ClassifyBytes(%q) = (%v, %v), Classify = (%v, %v)",
				msg, gotCat, gotSev, wantCat, wantSev)
		}
	}
}
