package taxonomy

import (
	"strings"
	"testing"
)

// TestCategoryTablesExhaustive pins the add-a-category checklist: anyone
// inserting a new leaf before numCategories must also extend categoryNames
// (and therefore ParseCategory, which iterates it) and assign the leaf to a
// top-level group. The static half of this guarantee — switch statements
// over Category staying exhaustive — is enforced by cmd/ldvet; this is the
// dynamic half for the map-driven lookups a switch analyzer cannot see.
func TestCategoryTablesExhaustive(t *testing.T) {
	if len(categoryNames) != int(numCategories) {
		t.Errorf("categoryNames has %d entries, want %d (one per category incl. Unclassified)",
			len(categoryNames), int(numCategories))
	}
	seen := make(map[string]Category, int(numCategories))
	for c := Unclassified; c < numCategories; c++ {
		s := c.String()
		if strings.HasPrefix(s, "CATEGORY(") {
			t.Errorf("category %d has no name in categoryNames", int(c))
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("categories %d and %d share the name %q", int(prev), int(c), s)
		}
		seen[s] = c
		back, ok := ParseCategory(s)
		if !ok || back != c {
			t.Errorf("ParseCategory(%q) = (%v,%v), want (%v,true)", s, back, ok, c)
		}
		if c != Unclassified && c.Group() == GroupUnknown {
			t.Errorf("category %v is not assigned to a top-level group", c)
		}
	}
	if _, ok := ParseCategory("CATEGORY(1)"); ok {
		t.Error("ParseCategory accepted the fallback rendering")
	}
}

// TestSeverityTablesExhaustive is the same guarantee for Severity.
func TestSeverityTablesExhaustive(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarning, SevError, SevCritical} {
		name := s.String()
		if strings.HasPrefix(name, "SEVERITY(") {
			t.Errorf("severity %d has no mnemonic", int(s))
			continue
		}
		back, ok := ParseSeverity(name)
		if !ok || back != s {
			t.Errorf("ParseSeverity(%q) = (%v,%v), want (%v,true)", name, back, ok, s)
		}
	}
}
