package taxonomy

import (
	"reflect"
	"regexp/syntax"
	"testing"
)

func parsed(t *testing.T, pattern string) *syntax.Regexp {
	t.Helper()
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		t.Fatalf("parse %q: %v", pattern, err)
	}
	return re.Simplify()
}

// TestOrderedChainsExtraction pins the tier-1 decompositions: gap-separated
// literals become multi-literal chains, adjacent literals glue into one
// search string, and structures the decomposition cannot represent exactly
// are rejected (falling back to tier 2).
func TestOrderedChainsExtraction(t *testing.T) {
	tests := []struct {
		pattern string
		want    [][]string
		ok      bool
	}{
		{`(?i)machine check.*(cache|tlb)`, [][]string{
			{"machine check", "cache"}, {"machine check", "tlb"},
		}, true},
		{`(?i)rerout(e|ing) (started|complete)`, [][]string{
			{"reroute started"}, {"reroute complete"},
			{"rerouting started"}, {"rerouting complete"},
		}, true},
		{`(?i)kernel panic`, [][]string{{"kernel panic"}}, true},
		{`(?i)a.*b.*c`, [][]string{{"a", "b", "c"}}, true},
		{`(?i)err[0-9]+`, nil, false},    // char class: tier 2 only
		{`(?i)time(d)? out`, nil, false}, // optional group: not exact
		{`(?i).*`, nil, false},           // no literal at all
		{`Cache`, nil, false},            // case-sensitive letters: fold-unsafe
	}
	for _, tt := range tests {
		got, ok := orderedChains(parsed(t, tt.pattern))
		if ok != tt.ok {
			t.Errorf("orderedChains(%q) ok = %v, want %v", tt.pattern, ok, tt.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("orderedChains(%q) = %v, want %v", tt.pattern, got, tt.want)
		}
	}
}

// TestChainMatchOrdering: literals must appear in order, each beginning at
// or after the end of the previous hit.
func TestChainMatchOrdering(t *testing.T) {
	chain := func(ls ...string) [][]byte {
		out := make([][]byte, len(ls))
		for i, l := range ls {
			out[i] = []byte(l)
		}
		return out
	}
	tests := []struct {
		chain []string
		text  string
		want  bool
	}{
		{[]string{"ab", "cd"}, "xx ab yy cd zz", true},
		{[]string{"ab", "cd"}, "cd ab", false}, // wrong order
		{[]string{"aa", "a"}, "aaa", true},     // second starts after first ends
		{[]string{"aa", "a"}, "aa", false},     // no room left
		{[]string{"x"}, "", false},
	}
	for _, tt := range tests {
		if got := chainMatch(chain(tt.chain...), []byte(tt.text)); got != tt.want {
			t.Errorf("chainMatch(%v, %q) = %v, want %v", tt.chain, tt.text, got, tt.want)
		}
	}
}

// TestAppendFolded: ASCII letters lowercase, the two non-ASCII runes that
// case-fold onto ASCII rewrite to their folds, everything else is unchanged.
func TestAppendFolded(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Machine Check", "machine check"},
		{"ABCxyz019;=", "abcxyz019;="},
		{"\u212aelvin", "kelvin"}, // U+212A KELVIN SIGN -> k
		{"\u017fignal", "signal"}, // U+017F LONG S -> s
		{"café Ü", "café Ü"},      // other non-ASCII passes through
		{"", ""},
	}
	for _, tt := range tests {
		if got := string(appendFolded(nil, []byte(tt.in))); got != tt.want {
			t.Errorf("appendFolded(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestLitStringCaseSensitivity: literals with cased letters are usable only
// under (?i), because chain hits are decided against folded text.
func TestLitStringCaseSensitivity(t *testing.T) {
	if _, ok := litString(parsed(t, "Cache")); ok {
		t.Error("litString accepted case-sensitive cased literal")
	}
	got, ok := litString(parsed(t, "(?i)Cache"))
	if !ok || got != "cache" {
		t.Errorf("litString((?i)Cache) = (%q, %v), want (cache, true)", got, ok)
	}
	if _, ok := litString(parsed(t, "123;=")); !ok {
		t.Error("litString rejected caseless literal outside (?i)")
	}
	if _, ok := litString(parsed(t, "(?i)café")); ok {
		t.Error("litString accepted non-ASCII literal")
	}
}

// TestDefaultRulesAllPrefiltered: every built-in rule must extract a sound
// literal filter — a nil filter forces the regexp slow path on every
// message — and the bulk of them must reach the exact ordered tier.
func TestDefaultRulesAllPrefiltered(t *testing.T) {
	rules := defaultRules()
	ordered := 0
	for _, r := range rules {
		f := filterOf(r.Pattern.String())
		if f == nil {
			t.Errorf("rule %s (%s) has no prefilter", r.Name, r.Pattern)
			continue
		}
		if f.ordered {
			ordered++
		}
		if len(f.branches) == 0 || len(f.branches) > maxBranches {
			t.Errorf("rule %s: %d branches", r.Name, len(f.branches))
		}
	}
	if ordered*2 < len(rules) {
		t.Errorf("only %d/%d default rules reach the ordered tier", ordered, len(rules))
	}
}

// TestClassifyBytesZeroAlloc gates the classification fast path for both a
// rule hit (ordered tier, no regexp) and an unclassified message.
func TestClassifyBytesZeroAlloc(t *testing.T) {
	cls := Default()
	hit := []byte("Machine Check Exception: corrected DRAM error on c1-2c0s3n1 bank 4 DIMM 9 syndrome 0x1a2b")
	miss := []byte("user application wrote something weird")
	cls.ClassifyBytes(hit) // warm the fold pool
	if n := testing.AllocsPerRun(200, func() {
		cls.ClassifyBytes(hit)
		cls.ClassifyBytes(miss)
	}); n != 0 {
		t.Errorf("ClassifyBytes allocates %.1f allocs/op on the fast path, want 0", n)
	}
}
