package taxonomy_test

import (
	"strings"
	"testing"

	"logdiver/internal/taxonomy"
)

// FuzzReadRules checks the rule-file parser never panics, and that every
// accepted rule set survives a WriteRules→ReadRules round trip: parsed
// names can never contain whitespace or a leading '#', so the writer must
// accept them, and the re-parsed rules must be identical. This pins the
// round-trip contract the two functions share.
func FuzzReadRules(f *testing.F) {
	for _, seed := range []string{
		"",
		"# only a comment\n",
		"r1 KERNEL_PANIC CRIT panic pattern here\n",
		"gpu-thermal GPU_BUS CRIT (?i)gpu thermal shutdown\nraid FS_UNAVAIL ERROR raid degraded\n",
		"r1 NOT_A_CATEGORY CRIT x\n",
		"r1 KERNEL_PANIC LOUD x\n",
		"r1 KERNEL_PANIC CRIT [unclosed\n",
		"too few fields\n",
		"a HW_MEM_UE CRIT x{1,3} y | z\n",
		"\tr2   HW_MEM_CE\tWARN   correct(ed|able)\n",
		"r3 SW_OS ERROR .*\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rules, err := taxonomy.ReadRules(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := taxonomy.WriteRules(&buf, rules); err != nil {
			t.Fatalf("accepted rules from %q but WriteRules failed: %v", s, err)
		}
		back, err := taxonomy.ReadRules(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip of %q failed to parse: %v\nwritten: %q", s, err, buf.String())
		}
		if len(back) != len(rules) {
			t.Fatalf("round trip of %q: %d rules became %d", s, len(rules), len(back))
		}
		for i := range rules {
			if back[i].Name != rules[i].Name ||
				back[i].Category != rules[i].Category ||
				back[i].Severity != rules[i].Severity ||
				back[i].Pattern.String() != rules[i].Pattern.String() {
				t.Fatalf("round trip of %q changed rule %d: %+v -> %+v", s, i, rules[i], back[i])
			}
		}
	})
}
