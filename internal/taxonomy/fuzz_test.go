package taxonomy_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"logdiver/internal/taxonomy"
)

// FuzzReadRules checks the rule-file parser never panics, and that every
// accepted rule set survives a WriteRules→ReadRules round trip: parsed
// names can never contain whitespace or a leading '#', so the writer must
// accept them, and the re-parsed rules must be identical. This pins the
// round-trip contract the two functions share.
func FuzzReadRules(f *testing.F) {
	for _, seed := range []string{
		"",
		"# only a comment\n",
		"r1 KERNEL_PANIC CRIT panic pattern here\n",
		"gpu-thermal GPU_BUS CRIT (?i)gpu thermal shutdown\nraid FS_UNAVAIL ERROR raid degraded\n",
		"r1 NOT_A_CATEGORY CRIT x\n",
		"r1 KERNEL_PANIC LOUD x\n",
		"r1 KERNEL_PANIC CRIT [unclosed\n",
		"too few fields\n",
		"a HW_MEM_UE CRIT x{1,3} y | z\n",
		"\tr2   HW_MEM_CE\tWARN   correct(ed|able)\n",
		"r3 SW_OS ERROR .*\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rules, err := taxonomy.ReadRules(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := taxonomy.WriteRules(&buf, rules); err != nil {
			t.Fatalf("accepted rules from %q but WriteRules failed: %v", s, err)
		}
		back, err := taxonomy.ReadRules(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip of %q failed to parse: %v\nwritten: %q", s, err, buf.String())
		}
		if len(back) != len(rules) {
			t.Fatalf("round trip of %q: %d rules became %d", s, len(rules), len(back))
		}
		for i := range rules {
			if back[i].Name != rules[i].Name ||
				back[i].Category != rules[i].Category ||
				back[i].Severity != rules[i].Severity ||
				back[i].Pattern.String() != rules[i].Pattern.String() {
				t.Fatalf("round trip of %q changed rule %d: %+v -> %+v", s, i, rules[i], back[i])
			}
		}
	})
}

// FuzzLiteralAnchors throws random patterns and messages at the prefilter
// extractor and checks the two invariants the classifier relies on:
//
//   - Necessity: whenever the compiled regexp matches a message, the
//     extracted filter must pass it too — a filter that rejects a matching
//     message silently misroutes that message to Unclassified.
//   - Tier-1 exactness: an ordered-chain hit on a newline-free message is
//     trusted as a match without running the regexp, so an ordered filter
//     passing a message the regexp rejects is equally unsound.
//
// internal/rulecheck proves the same properties analytically for the
// shipped rules; this target searches for extractor bugs on arbitrary
// patterns.
func FuzzLiteralAnchors(f *testing.F) {
	seeds := []struct {
		pattern, msg string
	}{
		{`machine check exception`, "Machine Check Exception on nid 1"},
		{`(?i)lustre(fs)? (error|timeout)`, "LustreFS TIMEOUT: recovery"},
		{`kernel panic - not syncing`, "Kernel panic - not syncing: fatal"},
		{`L[0-3] cache error`, "L2 cache error detected"},
		{`ec_node_(failed|halt)`, "event ec_node_halt received"},
		{`ap(kill|sys) .* exit`, "apsys x exit"},
		{`nmi .* received`, "nmi\nreceived"},
		{`(?i)emergency power off`, "EMERGENCY POWER OFFK"},
		{`seg(fault|v) at 0x[0-9a-f]+`, "segv at 0xdeadbeef"},
		{`a{2,5}b?c`, "aaac"},
	}
	for _, s := range seeds {
		f.Add(s.pattern, []byte(s.msg))
	}
	f.Fuzz(func(t *testing.T, pattern string, msg []byte) {
		re, err := regexp.Compile(pattern)
		if err != nil {
			return
		}
		pf := taxonomy.ExtractPrefilter(pattern)
		if pf == nil {
			return // no filter extracted: the regexp always runs, nothing to verify
		}
		if re.Match(msg) && !pf.Match(msg) {
			t.Fatalf("prefilter not necessary: pattern %q matches %q but filter %v rejects it",
				pattern, msg, pf.Branches())
		}
		if pf.Ordered() && bytes.IndexByte(msg, '\n') < 0 &&
			pf.Match(msg) && !re.Match(msg) {
			t.Fatalf("ordered prefilter not exact: filter %v passes %q but pattern %q rejects it",
				pf.Branches(), msg, pattern)
		}
	})
}
