package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// Rule-file format: one rule per line,
//
//	<name> <CATEGORY> <SEVERITY> <regex...>
//
// whitespace-separated; the regex is everything after the third field and
// may contain spaces. Blank lines and lines starting with '#' are skipped.
// Rules apply in file order (first match wins), exactly like the built-in
// set. This lets a deployment extend or replace the taxonomy without
// recompiling — the knob a log-analysis tool must expose, because every
// site's message zoo differs.

// ParseSeverity resolves a severity mnemonic produced by Severity.String.
func ParseSeverity(s string) (Severity, bool) {
	switch strings.ToUpper(s) {
	case "INFO":
		return SevInfo, true
	case "WARN", "WARNING":
		return SevWarning, true
	case "ERROR":
		return SevError, true
	case "CRIT", "CRITICAL":
		return SevCritical, true
	default:
		return 0, false
	}
}

// ReadRules parses a rule file. It fails on the first malformed line with
// a line-numbered error.
func ReadRules(r io.Reader) ([]Rule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var rules []Rule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split off exactly three leading fields; the rest is the regex
		// (which may itself contain spaces or the same tokens).
		rest := line
		var head [3]string
		ok := true
		for i := range head {
			rest = strings.TrimLeft(rest, " \t")
			cut := strings.IndexAny(rest, " \t")
			if cut < 0 {
				ok = false
				break
			}
			head[i] = rest[:cut]
			rest = rest[cut:]
		}
		pattern := strings.TrimSpace(rest)
		if !ok || pattern == "" {
			return nil, fmt.Errorf("taxonomy: rule file line %d: want 'name CATEGORY SEVERITY regex', got %q", lineNo, line)
		}
		name := head[0]
		cat, ok := ParseCategory(head[1])
		if !ok {
			return nil, fmt.Errorf("taxonomy: rule file line %d: unknown category %q", lineNo, head[1])
		}
		sev, ok := ParseSeverity(head[2])
		if !ok {
			return nil, fmt.Errorf("taxonomy: rule file line %d: unknown severity %q", lineNo, head[2])
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("taxonomy: rule file line %d: bad regex: %w", lineNo, err)
		}
		rules = append(rules, Rule{Name: name, Pattern: re, Category: cat, Severity: sev})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taxonomy: rule file: %w", err)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("taxonomy: rule file contains no rules")
	}
	return rules, nil
}

// WriteRules renders rules in the rule-file format, one per line.
func WriteRules(w io.Writer, rules []Rule) error {
	bw := bufio.NewWriter(w)
	for _, r := range rules {
		name := r.Name
		if name == "" {
			name = "unnamed"
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s %s\n",
			name, r.Category, r.Severity, r.Pattern.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
