package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
	"unicode"
)

// Rule-file format: one rule per line,
//
//	<name> <CATEGORY> <SEVERITY> <regex...>
//
// whitespace-separated; the regex is everything after the third field and
// may contain spaces. Blank lines and lines starting with '#' are skipped.
// Rules apply in file order (first match wins), exactly like the built-in
// set. This lets a deployment extend or replace the taxonomy without
// recompiling — the knob a log-analysis tool must expose, because every
// site's message zoo differs.
//
// Because the first three fields are whitespace-delimited, a rule name must
// not contain whitespace (and must not start with '#', which would turn the
// line into a comment). ReadRules can never produce such a name; WriteRules
// rejects them so that every written rule set parses back to the same rules.

// ParseSeverity resolves a severity mnemonic produced by Severity.String.
func ParseSeverity(s string) (Severity, bool) {
	switch strings.ToUpper(s) {
	case "INFO":
		return SevInfo, true
	case "WARN", "WARNING":
		return SevWarning, true
	case "ERROR":
		return SevError, true
	case "CRIT", "CRITICAL":
		return SevCritical, true
	default:
		return 0, false
	}
}

// LocatedRule is a Rule together with the 1-based line of the rule file it
// was parsed from. Rules built in memory (the built-in set, programmatic
// sets) have Line 0; diagnostics fall back to the rule's position in the
// list.
type LocatedRule struct {
	Rule
	Line int
}

// Locate wraps an in-memory rule list as LocatedRules with no file
// positions (Line 0).
func Locate(rules []Rule) []LocatedRule {
	out := make([]LocatedRule, len(rules))
	for i, r := range rules {
		out[i].Rule = r
	}
	return out
}

// Rules strips the positions off a located rule list.
func Rules(located []LocatedRule) []Rule {
	out := make([]Rule, len(located))
	for i, lr := range located {
		out[i] = lr.Rule
	}
	return out
}

// ReadRuleFile parses a rule file, keeping the source line of every rule so
// that lint diagnostics can point back into the file. It fails on the first
// malformed line with a line-numbered error.
func ReadRuleFile(r io.Reader) ([]LocatedRule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var rules []LocatedRule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split off exactly three leading fields; the rest is the regex
		// (which may itself contain spaces or the same tokens).
		rest := line
		var head [3]string
		ok := true
		for i := range head {
			rest = strings.TrimLeft(rest, " \t")
			cut := strings.IndexAny(rest, " \t")
			if cut < 0 {
				ok = false
				break
			}
			head[i] = rest[:cut]
			rest = rest[cut:]
		}
		pattern := strings.TrimSpace(rest)
		if !ok || pattern == "" {
			return nil, fmt.Errorf("taxonomy: rule file line %d: want 'name CATEGORY SEVERITY regex', got %q", lineNo, line)
		}
		name := head[0]
		// The field splitter only breaks on space and tab, so a name could
		// still smuggle in other whitespace (\v, \r, U+00A0, ...) that the
		// writer could not round-trip; hold both sides to the same contract.
		if err := CheckName(name); err != nil {
			return nil, fmt.Errorf("taxonomy: rule file line %d: %w", lineNo, err)
		}
		cat, ok := ParseCategory(head[1])
		if !ok {
			return nil, fmt.Errorf("taxonomy: rule file line %d: unknown category %q", lineNo, head[1])
		}
		sev, ok := ParseSeverity(head[2])
		if !ok {
			return nil, fmt.Errorf("taxonomy: rule file line %d: unknown severity %q", lineNo, head[2])
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("taxonomy: rule file line %d: bad regex: %w", lineNo, err)
		}
		rules = append(rules, LocatedRule{
			Rule: Rule{Name: name, Pattern: re, Category: cat, Severity: sev},
			Line: lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taxonomy: rule file: %w", err)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("taxonomy: rule file contains no rules")
	}
	return rules, nil
}

// ReadRules parses a rule file. It fails on the first malformed line with
// a line-numbered error. Use ReadRuleFile to keep source positions.
func ReadRules(r io.Reader) ([]Rule, error) {
	located, err := ReadRuleFile(r)
	if err != nil {
		return nil, err
	}
	return Rules(located), nil
}

// CheckName reports why name cannot be used as a rule name in the rule-file
// format, or nil if it can. Whitespace inside a name would shift the
// CATEGORY/SEVERITY/regex fields on the written line; a leading '#' would
// turn the whole line into a comment. Both silently corrupt a
// WriteRules→ReadRules round trip, so they are rejected up front.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("empty rule name")
	}
	if strings.HasPrefix(name, "#") {
		return fmt.Errorf("rule name %q starts with '#' (the written line would parse as a comment)", name)
	}
	if strings.ContainsFunc(name, unicode.IsSpace) {
		return fmt.Errorf("rule name %q contains whitespace (the rule-file format is whitespace-delimited)", name)
	}
	return nil
}

// WriteRules renders rules in the rule-file format, one per line. It
// guarantees the output parses back to the same rules: names that cannot
// survive the round trip (whitespace, leading '#'), nil or empty patterns,
// and patterns containing a newline are rejected with an error instead of
// being written corrupted. Use a '\n' escape inside the pattern where a
// literal newline is meant.
func WriteRules(w io.Writer, rules []Rule) error {
	bw := bufio.NewWriter(w)
	for i, r := range rules {
		name := r.Name
		if name == "" {
			name = "unnamed"
		}
		if err := CheckName(name); err != nil {
			return fmt.Errorf("taxonomy: rule %d: %w", i, err)
		}
		if r.Pattern == nil {
			return fmt.Errorf("taxonomy: rule %d (%s): nil pattern", i, name)
		}
		pat := r.Pattern.String()
		if pat == "" {
			return fmt.Errorf("taxonomy: rule %d (%s): empty pattern cannot be written (and would match every message)", i, name)
		}
		// Interior '\r' survives the line scanner; only '\n' breaks the
		// one-rule-per-line invariant (edge whitespace, including '\r', is
		// caught by the TrimSpace check below).
		if strings.Contains(pat, "\n") {
			return fmt.Errorf("taxonomy: rule %d (%s): pattern contains a literal newline; use a \\n escape", i, name)
		}
		if pat != strings.TrimSpace(pat) {
			return fmt.Errorf("taxonomy: rule %d (%s): pattern has leading/trailing whitespace, which the rule-file parser strips; use [ ] or \\s", i, name)
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s %s\n",
			name, r.Category, r.Severity, pat); err != nil {
			return err
		}
	}
	return bw.Flush()
}
