package taxonomy_test

import (
	"math/rand"
	"testing"

	"logdiver/internal/errlog"
	"logdiver/internal/taxonomy"
)

func TestCategoryStringRoundTrip(t *testing.T) {
	for _, c := range taxonomy.Categories() {
		s := c.String()
		back, ok := taxonomy.ParseCategory(s)
		if !ok || back != c {
			t.Errorf("ParseCategory(%q) = (%v,%v), want (%v,true)", s, back, ok, c)
		}
	}
	if _, ok := taxonomy.ParseCategory("NOT_A_CATEGORY"); ok {
		t.Error("ParseCategory accepted garbage")
	}
	if got := taxonomy.Category(999).String(); got != "CATEGORY(999)" {
		t.Errorf("unknown category String = %q", got)
	}
}

func TestEveryCategoryHasAGroup(t *testing.T) {
	for _, c := range taxonomy.Categories() {
		if c.Group() == taxonomy.GroupUnknown {
			t.Errorf("category %v has no group", c)
		}
	}
	if taxonomy.Unclassified.Group() != taxonomy.GroupUnknown {
		t.Error("Unclassified should map to GroupUnknown")
	}
}

func TestGroupString(t *testing.T) {
	for _, g := range taxonomy.Groups() {
		if g.String() == "UNKNOWN" {
			t.Errorf("group %d renders as UNKNOWN", g)
		}
	}
	if got := taxonomy.Group(99).String(); got != "GROUP(99)" {
		t.Errorf("unknown group String = %q", got)
	}
}

func TestSeverityString(t *testing.T) {
	tests := []struct {
		give taxonomy.Severity
		want string
	}{
		{taxonomy.SevInfo, "INFO"},
		{taxonomy.SevWarning, "WARN"},
		{taxonomy.SevError, "ERROR"},
		{taxonomy.SevCritical, "CRIT"},
		{taxonomy.Severity(42), "SEVERITY(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Severity(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestBenignCategories(t *testing.T) {
	benign := map[taxonomy.Category]bool{
		taxonomy.HardwareMemoryCE: true,
		taxonomy.GPUPageRetir:     true,
		taxonomy.NodeRecovered:    true,
	}
	for _, c := range taxonomy.Categories() {
		if got, want := c.Benign(), benign[c]; got != want {
			t.Errorf("%v.Benign() = %v, want %v", c, got, want)
		}
	}
}

func TestClassifyKnownMessages(t *testing.T) {
	cls := taxonomy.Default()
	tests := []struct {
		msg  string
		want taxonomy.Category
	}{
		{"Machine Check Exception: corrected DRAM error on c1-2c0s3n1 bank 4 DIMM 9 syndrome 0x1a2b", taxonomy.HardwareMemoryCE},
		{"Machine Check Exception: uncorrected DRAM error on c1-2c0s3n1 bank 4 addr 0x00000a", taxonomy.HardwareMemoryUE},
		{"EDAC MC0: uncorrectable ECC memory error, node halted", taxonomy.HardwareMemoryUE},
		{"Machine Check Exception: L2 cache error, processor 12, status 0xdead", taxonomy.HardwareCPU},
		{"HSS event: voltage fault on c0-0c1s2n3 VRM 1, threshold exceeded", taxonomy.HardwarePower},
		{"blade controller fault on c0-0c1s2: L0 unresponsive, heartbeat missed 4 times", taxonomy.HardwareBlade},
		{"NVRM: Xid (PCI:0000:02:00): 48, Double-Bit ECC error detected, address 0xbeef", taxonomy.GPUMemoryDBE},
		{"NVRM: Xid (PCI:0000:02:00): 79, GPU has fallen off the bus.", taxonomy.GPUBusOff},
		{"NVRM: retiring page 0x1f00 due to single-bit ECC error", taxonomy.GPUPageRetir},
		{"HSN: LCB 12 lane degrade on c0-0c1s2g0, link inactive, recovery initiated", taxonomy.InterconnectLink},
		{"warm swap initiated: routing table update in progress", taxonomy.InterconnectRouting},
		{"LustreError: 1234:0:(ldlm_lock.c:847) LBUG", taxonomy.FilesystemLBUG},
		{"Lustre: lost contact with OST01a3, client evicted by server", taxonomy.FilesystemUnavail},
		{"Lustre: request x99 timed out after 100s, resending", taxonomy.FilesystemTimeout},
		{"HSS alert: node heartbeat fault on c2-1c0s4n2, declaring node dead", taxonomy.NodeHeartbeat},
		{"ec_node_available: node c2-1c0s4n2 returned to service after repair", taxonomy.NodeRecovered},
		{"warm boot complete, node c2-1c0s4n2 available", taxonomy.NodeRecovered},
		{"Kernel panic - not syncing: Fatal exception in interrupt on c2-1c0s4n2", taxonomy.KernelPanic},
		{"apsched: error: placement request failed for apid 123, resource unavailable", taxonomy.SoftwareALPS},
		{"watchdog: BUG: soft lockup - CPU#3 stuck for 23s", taxonomy.SoftwareOS},
		{"user application wrote something weird", taxonomy.Unclassified},
	}
	for _, tt := range tests {
		got, _ := cls.Classify(tt.msg)
		if got != tt.want {
			t.Errorf("Classify(%q) = %v, want %v", tt.msg, got, tt.want)
		}
	}
}

// TestRenderClassifyRoundTrip is the contract between the synthesizer's
// message templates and the classifier: every rendered variant of every
// category must classify back to exactly that category.
func TestRenderClassifyRoundTrip(t *testing.T) {
	cls := taxonomy.Default()
	rng := rand.New(rand.NewSource(99))
	const cname = "c12-3c2s7n1"
	for _, cat := range taxonomy.Categories() {
		for i := 0; i < 100; i++ {
			msg := errlog.Render(cat, cname, rng)
			got, sev := cls.Classify(msg)
			if got != cat {
				t.Fatalf("Render(%v) produced %q, classified as %v", cat, msg, got)
			}
			if cat.Benign() && sev > taxonomy.SevWarning {
				t.Fatalf("benign category %v classified with severity %v", cat, sev)
			}
			if !cat.Benign() && sev < taxonomy.SevWarning {
				t.Fatalf("non-benign category %v classified with severity %v", cat, sev)
			}
		}
	}
}

func TestClassifierRulesCopied(t *testing.T) {
	cls := taxonomy.Default()
	rules := cls.Rules()
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	rules[0].Category = taxonomy.SoftwareOS
	fresh := cls.Rules()
	if fresh[0].Category == taxonomy.SoftwareOS && taxonomy.Default().Rules()[0].Category != taxonomy.SoftwareOS {
		t.Error("Rules() exposes internal slice")
	}
}

func TestTagCoversAllGroups(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range taxonomy.Categories() {
		tag := errlog.Tag(c)
		if tag == "" {
			t.Errorf("Tag(%v) is empty", c)
		}
		seen[tag] = true
	}
	if len(seen) < 4 {
		t.Errorf("expected several distinct tags, got %v", seen)
	}
	if errlog.Tag(taxonomy.Unclassified) == "" {
		t.Error("Tag(Unclassified) is empty")
	}
}
